(* Quickstart: build a simulated SPARCstation-era machine with a
   clustered UFS, use the file system like a normal one, and look at
   what the clustering machinery did.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A machine is one value: CPU + 8MB RAM + a 400MB disk + mounted UFS.
     Config.config_a is the paper's clustered configuration (120KB
     clusters, no rotational delay, free-behind, 240KB write limit). *)
  let machine = Clusterfs.Machine.create Clusterfs.Config.config_a in

  (* Everything that touches the file system runs inside a simulated
     process: Machine.run drives the simulation until it finishes. *)
  Clusterfs.Machine.run machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in

      (* ordinary file system calls *)
      Ufs.Fs.mkdir fs "/projects";
      let file = Ufs.Fs.creat fs "/projects/report.dat" in
      let mb = 4 in
      let block = Bytes.make 8192 'r' in
      for i = 0 to (mb * 128) - 1 do
        Ufs.Fs.write fs file ~off:(i * 8192) ~buf:block ~len:8192
      done;
      Ufs.Fs.fsync fs file;
      Printf.printf "wrote %d MB in %s of simulated time\n" mb
        (Sim.Time.to_string (Sim.Engine.now m.Clusterfs.Machine.engine));

      (* read it back with a cold cache, so the clustered read-ahead
         machinery (not the page cache) serves the data *)
      Vm.Pool.invalidate_vnode fs.Ufs.Types.pool file.Ufs.Types.inum;
      Ufs.Types.reset_rstreams file;
      let t0 = Sim.Engine.now m.Clusterfs.Machine.engine in
      let buf = Bytes.create 8192 in
      for i = 0 to (mb * 128) - 1 do
        ignore (Ufs.Fs.read fs file ~off:(i * 8192) ~buf ~len:8192)
      done;
      let dt = Sim.Engine.now m.Clusterfs.Machine.engine - t0 in
      Printf.printf "read it back at %.0f KB/s\n"
        (float_of_int (mb * 1024) /. Sim.Time.to_sec_float dt);
      Ufs.Iops.iput fs file;

      (* what did clustering do? *)
      let s = fs.Ufs.Types.stats in
      Printf.printf "\ndisk I/O shape:\n";
      Printf.printf "  write requests: %4d (avg %.1f blocks each)\n"
        s.Ufs.Types.push_ios
        (float_of_int s.Ufs.Types.push_blocks
        /. float_of_int (max 1 s.Ufs.Types.push_ios));
      Printf.printf "  read requests:  %4d (avg %.1f blocks each)\n"
        (s.Ufs.Types.pgin_ios + s.Ufs.Types.ra_ios)
        (float_of_int (s.Ufs.Types.pgin_blocks + s.Ufs.Types.ra_blocks)
        /. float_of_int (max 1 (s.Ufs.Types.pgin_ios + s.Ufs.Types.ra_ios)));
      Printf.printf "  read-aheads:    %4d\n" s.Ufs.Types.ra_ios;

      (* the file's physical layout *)
      Printf.printf "\nphysical extents of /projects/report.dat:\n";
      List.iter
        (fun (lbn, frag, blocks) ->
          Printf.printf "  lbn %4d -> frag %6d, %3d blocks (%d KB)\n" lbn frag
            blocks
            (blocks * 8))
        (Ufs.Fs.extent_map fs "/projects/report.dat");

      Ufs.Fs.unmount fs);

  (* offline consistency check of the disk image we just unmounted *)
  let report = Ufs.Fsck.check machine.Clusterfs.Machine.dev in
  Format.printf "@.%a@." Ufs.Fsck.pp report
