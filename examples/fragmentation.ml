(* The allocator study from the paper's "Allocator details" section:
   does the FFS allocator lay files out contiguously enough that
   clustering works without preallocation?

   We write a large file on a fresh file system, then age the file
   system with create/delete churn and squeeze another large file into
   what is left, printing extent statistics and the effect on actual
   sequential-read throughput.

   Run with:  dune exec examples/fragmentation.exe *)

let small_disk_config =
  (* a 100MB drive keeps the churn quick *)
  {
    Clusterfs.Config.config_a with
    Clusterfs.Config.disk =
      {
        Disk.Device.default_config with
        Disk.Device.geom =
          Disk.Geom.create ~rpm:4316 ~nheads:14
            ~zones:[ { Disk.Geom.cyls = 300; spt = 48 } ]
            ();
      };
  }

let show label (meas : Workload.Extents.measurement) =
  Printf.printf "%s\n" label;
  Printf.printf "  file size:      %d KB\n" (meas.Workload.Extents.file_bytes / 1024);
  Printf.printf "  extents:        %d\n" meas.Workload.Extents.extents;
  Printf.printf "  average extent: %.0f KB\n" meas.Workload.Extents.avg_extent_kb;
  Printf.printf "  largest:        %.0f KB   smallest: %.0f KB\n\n"
    meas.Workload.Extents.largest_extent_kb
    meas.Workload.Extents.smallest_extent_kb

let read_rate fs path =
  let ip = Ufs.Fs.namei fs path in
  Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
  Ufs.Types.reset_rstreams ip;
  let engine = fs.Ufs.Types.engine in
  let t0 = Sim.Engine.now engine in
  let buf = Bytes.create 8192 in
  let size = ip.Ufs.Types.size in
  let rec loop off =
    if off < size then begin
      ignore (Ufs.Fs.read fs ip ~off ~buf ~len:8192);
      loop (off + 8192)
    end
  in
  loop 0;
  let dt = Sim.Engine.now engine - t0 in
  Ufs.Iops.iput fs ip;
  float_of_int (size / 1024) /. Sim.Time.to_sec_float dt

let () =
  let m = Clusterfs.Machine.create small_disk_config in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in

      (* best case: one file on an empty file system (the paper saw an
         average extent of ~1.5MB in a 13MB file) *)
      let fresh = Workload.Extents.write_and_measure fs ~path:"/fresh" ~mb:13 in
      show "fresh file system, 13MB file (paper: ~1.5MB average extent):"
        fresh;
      let fresh_rate = read_rate fs "/fresh" in
      Ufs.Fs.unlink fs "/fresh";

      (* age it: fill to ~80%, churn, repeat *)
      Printf.printf "ageing the file system (create/delete churn)...\n%!";
      let rng = Sim.Rng.create ~seed:1991 in
      let live =
        Ufs.Ager.age fs ~rng
          ~opts:
            {
              Ufs.Ager.defaults with
              Ufs.Ager.target_util = 0.8;
              churn_rounds = 3;
            }
          ()
      in
      let s = Ufs.Fs.statfs fs in
      Printf.printf "  %d files live, %d%% full\n\n" live
        (100
        * (s.Ufs.Fs.f_frags - ((s.Ufs.Fs.f_bfree * 8) + s.Ufs.Fs.f_ffree))
        / s.Ufs.Fs.f_frags);

      (* worst case: squeeze one more big file into the remnants
         (the paper saw ~62KB average extents) *)
      let aged = Workload.Extents.write_and_measure fs ~path:"/squeezed" ~mb:16 in
      show "aged file system, squeezed file (paper: ~62KB average extent):"
        aged;
      let aged_rate = read_rate fs "/squeezed" in

      Printf.printf "sequential read throughput:\n";
      Printf.printf "  fresh layout: %.0f KB/s\n" fresh_rate;
      Printf.printf "  aged layout:  %.0f KB/s (%.0f%% of fresh)\n" aged_rate
        (100. *. aged_rate /. fresh_rate);
      Printf.printf
        "\n(clustering degrades gracefully: bmap returns shorter runs, the\n\
        \ cluster size follows, and the file is still read correctly)\n";
      Ufs.Fs.unmount fs);
  let report = Ufs.Fsck.check m.Clusterfs.Machine.dev in
  Printf.printf "\nfsck after the whole ordeal: %s\n"
    (if Ufs.Fsck.ok report then "clean" else "PROBLEMS FOUND")
