(* "Some users, mostly those running database applications, actually
   [use the raw disk]...  The fact that users resort to the raw disk is
   usually an indication that the file system is too slow."

   A miniature database with the three classic I/O shapes:
     - bulk load:   sequential writes of the whole table (+ fsync)
     - table scan:  sequential read of the whole table
     - OLTP:        random 8KB page updates + a write-ahead log that is
                    appended and fsync'd per group commit
   run on the old (D) and the clustered (A) file system.  The paper's
   prediction holds per phase: the sequential phases gain ~1.6-2x, the
   random phase is untouched — exactly the profile that decides whether
   a database can live on the file system instead of the raw disk.

   Run with:  dune exec examples/database.exe *)

let table_mb = 12
let commits = 60
let pages_per_txn = 3
let log_bytes_per_commit = 64 * 1024

type outcome = {
  load_kbps : float;
  scan_kbps : float;
  txn_per_sec : float;
  commit_ms : float;
}

let run_db (config : Clusterfs.Config.t) =
  let m = Clusterfs.Machine.create config in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let engine = m.Clusterfs.Machine.engine in
      let now () = Sim.Engine.now engine in
      Ufs.Fs.mkdir fs "/db";
      let table = Ufs.Fs.creat fs "/db/table" in
      let log = Ufs.Fs.creat fs "/db/wal" in

      (* ---- bulk load ---- *)
      let page = Bytes.make 8192 'T' in
      let t0 = now () in
      for i = 0 to (table_mb * 128) - 1 do
        Ufs.Fs.write fs table ~off:(i * 8192) ~buf:page ~len:8192
      done;
      Ufs.Fs.fsync fs table;
      let load_time = now () - t0 in

      (* ---- table scan (cold) ---- *)
      Vm.Pool.invalidate_vnode fs.Ufs.Types.pool table.Ufs.Types.inum;
      Ufs.Types.reset_rstreams table;
      let t0 = now () in
      let buf = Bytes.create 8192 in
      for i = 0 to (table_mb * 128) - 1 do
        ignore (Ufs.Fs.read fs table ~off:(i * 8192) ~buf ~len:8192)
      done;
      let scan_time = now () - t0 in

      (* ---- OLTP ---- *)
      let rng = Sim.Rng.create ~seed:7 in
      let logrec = Bytes.make log_bytes_per_commit 'L' in
      let log_off = ref 0 in
      let commit_time = ref 0 in
      let t0 = now () in
      for _ = 1 to commits do
        for _ = 1 to pages_per_txn do
          let p = Sim.Rng.int rng (table_mb * 128) in
          ignore (Ufs.Fs.read fs table ~off:(p * 8192) ~buf ~len:8192);
          Bytes.set buf 0 'U';
          Ufs.Fs.write fs table ~off:(p * 8192) ~buf ~len:8192
        done;
        let c0 = now () in
        Ufs.Fs.write fs log ~off:!log_off ~buf:logrec ~len:log_bytes_per_commit;
        log_off := !log_off + log_bytes_per_commit;
        Ufs.Fs.fsync fs log;
        commit_time := !commit_time + (now () - c0)
      done;
      Ufs.Fs.fsync fs table;
      let oltp_time = now () - t0 in
      Ufs.Iops.iput fs table;
      Ufs.Iops.iput fs log;
      let kb = float_of_int (table_mb * 1024) in
      {
        load_kbps = kb /. Sim.Time.to_sec_float load_time;
        scan_kbps = kb /. Sim.Time.to_sec_float scan_time;
        txn_per_sec = float_of_int commits /. Sim.Time.to_sec_float oltp_time;
        commit_ms = Sim.Time.to_ms_float !commit_time /. float_of_int commits;
      })

let () =
  Printf.printf
    "mini database on a %dMB table: bulk load, full scan, then %d OLTP\n\
     group commits (%d random page updates + %dKB fsync'd WAL each)\n\n"
    table_mb commits pages_per_txn (log_bytes_per_commit / 1024);
  let results =
    List.map
      (fun (label, config) -> (label, run_db config))
      [
        ("old UFS (D)", Clusterfs.Config.config_d);
        ("clustered UFS (A)", Clusterfs.Config.config_a);
      ]
  in
  Printf.printf "%-18s %12s %12s %10s %12s\n" "configuration" "load KB/s"
    "scan KB/s" "txn/s" "commit ms";
  List.iter
    (fun (label, o) ->
      Printf.printf "%-18s %12.0f %12.0f %10.2f %12.1f\n" label o.load_kbps
        o.scan_kbps o.txn_per_sec o.commit_ms)
    results;
  match results with
  | [ (_, d); (_, a) ] ->
      Printf.printf
        "\nload %.2fx, scan %.2fx, OLTP %.2fx — sequential database work gets\n\
         the clustering win; random page traffic neither gains nor loses.\n"
        (a.load_kbps /. d.load_kbps)
        (a.scan_kbps /. d.scan_kbps)
        (a.txn_per_sec /. d.txn_per_sec)
  | _ -> ()
