(* The paper's motivating workload: "Applications such as video and
   sound require much higher data rates than are available today
   through UFS."

   A video recorder produces frames at a fixed rate into a ring of
   capture buffers and writes them to a file; if the file system cannot
   drain the buffers fast enough the recorder drops frames.  We run the
   same recorder against the old (SunOS 4.1, config D) and the new
   (clustered, config A) file systems and report the sustained rate and
   the drop count, then play the recording back.

   Run with:  dune exec examples/video_stream.exe *)

let frame_bytes = 32 * 1024 (* a quarter-resolution greyscale frame *)
let fps = 30
let seconds = 90 (* ~84 MB of video: the page cache cannot absorb the overrun *)
let ring_frames = 8 (* capture buffers the hardware can hold *)

type outcome = {
  captured : int;
  dropped : int;
  write_rate_kbps : float;
  playback_rate_kbps : float;
}

let record_and_play (config : Clusterfs.Config.t) =
  let m = Clusterfs.Machine.create config in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let engine = m.Clusterfs.Machine.engine in
      let ip = Ufs.Fs.creat fs "/capture.vid" in
      let frame_period = Sim.Time.sec 1 / fps in
      let total_frames = fps * seconds in
      (* the camera ticks on its own; the writer drains the ring *)
      let ring = ref 0 (* frames waiting in capture buffers *) in
      let produced = ref 0 and dropped = ref 0 in
      let camera_done = ref false in
      let wakeup = Sim.Condition.create engine "frames" in
      Sim.Engine.spawn engine ~name:"camera" (fun () ->
          for _ = 1 to total_frames do
            Sim.Engine.sleep engine frame_period;
            if !ring >= ring_frames then incr dropped
            else begin
              incr ring;
              incr produced
            end;
            Sim.Condition.signal wakeup
          done;
          camera_done := true;
          Sim.Condition.broadcast wakeup);
      let frame = Bytes.make frame_bytes '\177' in
      let written = ref 0 in
      let t0 = Sim.Engine.now engine in
      while (not !camera_done) || !ring > 0 do
        if !ring = 0 then Sim.Condition.wait wakeup
        else begin
          decr ring;
          Ufs.Fs.write fs ip ~off:(!written * frame_bytes) ~buf:frame
            ~len:frame_bytes;
          incr written
        end
      done;
      Ufs.Fs.fsync fs ip;
      let record_time = Sim.Engine.now engine - t0 in
      (* playback: stream the recording back at full speed *)
      Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
      Ufs.Types.reset_rstreams ip;
      let t1 = Sim.Engine.now engine in
      let buf = Bytes.create frame_bytes in
      for i = 0 to !written - 1 do
        ignore (Ufs.Fs.read fs ip ~off:(i * frame_bytes) ~buf ~len:frame_bytes)
      done;
      let playback_time = Sim.Engine.now engine - t1 in
      Ufs.Iops.iput fs ip;
      let kb n = float_of_int (n * frame_bytes) /. 1024. in
      {
        captured = !produced;
        dropped = !dropped;
        write_rate_kbps = kb !written /. Sim.Time.to_sec_float record_time;
        playback_rate_kbps = kb !written /. Sim.Time.to_sec_float playback_time;
      })

let () =
  let need = float_of_int (fps * frame_bytes) /. 1024. in
  Printf.printf
    "video capture: %d fps x %dKB frames = %.0f KB/s required, %ds of video\n\n"
    fps (frame_bytes / 1024) need seconds;
  List.iter
    (fun (label, config) ->
      let o = record_and_play config in
      Printf.printf "%s\n" label;
      Printf.printf "  frames captured: %d   dropped: %d (%.1f%%)\n" o.captured
        o.dropped
        (100. *. float_of_int o.dropped
        /. float_of_int (max 1 (o.captured + o.dropped)));
      Printf.printf "  sustained write rate: %.0f KB/s\n" o.write_rate_kbps;
      Printf.printf "  playback rate:        %.0f KB/s (%.1fx real time)\n\n"
        o.playback_rate_kbps
        (o.playback_rate_kbps /. need))
    [
      ("old UFS (SunOS 4.1, config D):", Clusterfs.Config.config_d);
      ("clustered UFS (config A):", Clusterfs.Config.config_a);
    ]
