(* RAID: mount the clustered UFS on a 4-disk stripe set and compare a
   sequential write and a cold sequential read against the single-disk
   machine.

   The volume manager slots in underneath the file system: the same
   Config.config_a, same workload — only Config.with_vol changes where
   the sectors land.  With a 128KB stripe unit each 120KB cluster stays
   one member I/O.  The asynchronous write stream fans out across the
   members and scales with spindle count; the cold read gains less —
   a single sequential reader has one synchronous cluster plus one
   read-ahead in flight, so at most two members overlap.

   Run with:  dune exec examples/raid.exe *)

let measure config =
  let machine = Clusterfs.Machine.create config in
  let mb = 8 in
  let rates =
    Clusterfs.Machine.run machine (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        let file = Ufs.Fs.creat fs "/big.dat" in
        let block = Bytes.make 8192 's' in
        let w0 = Sim.Engine.now m.Clusterfs.Machine.engine in
        for i = 0 to (mb * 128) - 1 do
          Ufs.Fs.write fs file ~off:(i * 8192) ~buf:block ~len:8192
        done;
        Ufs.Fs.fsync fs file;
        let wdt = Sim.Engine.now m.Clusterfs.Machine.engine - w0 in

        (* drop the cache so the timed read hits the disks *)
        Vm.Pool.invalidate_vnode fs.Ufs.Types.pool file.Ufs.Types.inum;
        Ufs.Types.reset_rstreams file;

        let t0 = Sim.Engine.now m.Clusterfs.Machine.engine in
        let buf = Bytes.create 8192 in
        for i = 0 to (mb * 128) - 1 do
          ignore (Ufs.Fs.read fs file ~off:(i * 8192) ~buf ~len:8192)
        done;
        let dt = Sim.Engine.now m.Clusterfs.Machine.engine - t0 in
        Ufs.Iops.iput fs file;
        ( float_of_int (mb * 1024) /. Sim.Time.to_sec_float wdt,
          float_of_int (mb * 1024) /. Sim.Time.to_sec_float dt ))
  in
  (* how the volume spread the work over its members *)
  Array.iteri
    (fun i d ->
      let s = Disk.Device.stats d in
      Printf.printf "    disk %d: %4d reads, %6d sectors\n" i
        s.Disk.Device.reads s.Disk.Device.sectors_read)
    machine.Clusterfs.Machine.disks;
  rates

let () =
  print_endline "8MB sequential write + cold read, config A (120KB clusters):";
  print_endline "  one disk:";
  let w1, r1 = measure Clusterfs.Config.config_a in
  print_endline "  4-disk stripe, 128KB stripe unit:";
  let w4, r4 =
    measure
      (Clusterfs.Config.with_vol Clusterfs.Config.config_a ~layout:Vol.Stripe
         ~stripe_kb:128 4)
  in
  Printf.printf "  write: one disk %.0f KB/s  ->  stripe %.0f KB/s (%.2fx)\n"
    w1 w4 (w4 /. w1);
  Printf.printf "  read:  one disk %.0f KB/s  ->  stripe %.0f KB/s (%.2fx)\n"
    r1 r4 (r4 /. r1)
