(* NFS quickstart: one server machine exporting its clustered UFS to
   two client nodes over simulated Ethernet-class links.

   Client 0 streams a file out; client 1 reads it back through its own
   mount — the data crosses the wire twice, and on both trips the
   client's biod daemons run the paper's clustering machinery: the
   sequential stream becomes cluster-sized (120 KB) READ/WRITE RPCs
   with read-ahead in flight, instead of one RPC per 8 KB block.

   Run with:  dune exec examples/nfs_demo.exe *)

let mb = 4

(* a name in the exported root directory (NFS names are directory
   entries relative to the exported file handle, not absolute paths) *)
let path = "shared.dat"

let () =
  (* one server (a full Machine: disk, page cache, pageout, UFS) plus
     two light client nodes, all in one deterministic simulation *)
  let t =
    Clusterfs.Topology.create ~clients:2
      (Clusterfs.Config.with_name Clusterfs.Config.config_a "example")
  in
  let engine = Clusterfs.Topology.engine t in

  (* both clients run concurrently as simulated processes *)
  Clusterfs.Topology.run_clients t (fun c ->
      match c.Clusterfs.Topology.id with
      | 0 ->
          (* writer: ordinary file API against the mount *)
          let f = Nfs.Client.create c.Clusterfs.Topology.mount path in
          let block = Bytes.make 8192 'n' in
          let t0 = Sim.Engine.now engine in
          for i = 0 to (mb * 128) - 1 do
            Nfs.Client.write f ~off:(i * 8192) ~buf:block ~len:8192
          done;
          Nfs.Client.fsync f;
          let dt = Sim.Engine.now engine - t0 in
          Printf.printf "client 0 wrote %d MB at %.0f KB/s\n" mb
            (float_of_int (mb * 1024) /. Sim.Time.to_sec_float dt)
      | _ -> (
          (* reader: poll until the writer's file appears, then stream *)
          let mount = c.Clusterfs.Topology.mount in
          let rec await () =
            (* getattr honours the attribute-cache TTL, so the reader
               sees the server-side size advance as the writer streams *)
            match Nfs.Client.lookup mount path with
            | Some f
              when (Nfs.Client.getattr f).Nfs.Proto.size >= mb * 1024 * 1024
              ->
                f
            | _ ->
                Sim.Engine.sleep engine (Sim.Time.ms 500);
                await ()
          in
          let f = await () in
          let buf = Bytes.create 8192 in
          let t0 = Sim.Engine.now engine in
          for i = 0 to (mb * 128) - 1 do
            ignore (Nfs.Client.read f ~off:(i * 8192) ~buf ~len:8192)
          done;
          let dt = Sim.Engine.now engine - t0 in
          Printf.printf "client 1 read it back at %.0f KB/s\n"
            (float_of_int (mb * 1024) /. Sim.Time.to_sec_float dt)));

  (* what did the client-side clustering machinery do? *)
  Array.iter
    (fun c ->
      let s = Nfs.Client.stats c.Clusterfs.Topology.mount in
      let r = Nfs.Rpc.stats c.Clusterfs.Topology.rpc in
      Printf.printf
        "client %d: %d RPCs (%d READ, %d WRITE), ra issued %d, gathers %d\n"
        c.Clusterfs.Topology.id r.Nfs.Rpc.calls
        (Nfs.Rpc.op_calls c.Clusterfs.Topology.rpc "read")
        (Nfs.Rpc.op_calls c.Clusterfs.Topology.rpc "write")
        s.Nfs.Client.ra_issued s.Nfs.Client.write_gathers)
    t.Clusterfs.Topology.clients;
  let sv = Nfs.Server.stats t.Clusterfs.Topology.service in
  Printf.printf "server: %d calls, mean nfsd queue wait %.1f ms\n"
    sv.Nfs.Server.received
    (Sim.Stats.Summary.mean sv.Nfs.Server.queue_wait_us /. 1000.)
