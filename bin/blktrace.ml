(* blktrace — run a workload on a simulated machine and dump the disk
   request trace as CSV (virtual time, member disk, kind, sector, count,
   track-buffer hit), for studying the I/O patterns the paper draws as
   figures.  With --disks > 1 the machine mounts on a volume and the
   member column shows which spindle served each request — e.g. how an
   8 KB stripe unit shatters 120 KB clusters into per-member fragments.

   Examples:
     dune exec bin/blktrace.exe -- --config a --workload fsw | head
     dune exec bin/blktrace.exe -- --config d --workload fsr --file-mb 2
     dune exec bin/blktrace.exe -- --config a --workload fsr --disks 4 --layout stripe --stripe-kb 8 *)

open Cmdliner

let base_config name =
  match String.lowercase_ascii name with
  | "a" -> Ok Clusterfs.Config.config_a
  | "b" -> Ok Clusterfs.Config.config_b
  | "c" -> Ok Clusterfs.Config.config_c
  | "d" -> Ok Clusterfs.Config.config_d
  | other -> Error (Printf.sprintf "unknown config %S (want a|b|c|d)" other)

let full_config config_name disks layout stripe_kb =
  match base_config config_name with
  | Error _ as e -> e
  | Ok base -> (
      match Vol.layout_of_string (String.lowercase_ascii layout) with
      | exception Invalid_argument _ ->
          Error
            (Printf.sprintf "unknown layout %S (want concat|stripe|mirror)"
               layout)
      | l ->
          if disks < 1 then Error "--disks must be >= 1"
          else if stripe_kb < 1 then Error "--stripe-kb must be >= 1"
          else Ok (Clusterfs.Config.with_vol base ~layout:l ~stripe_kb disks))

let run config_name workload file_mb disks layout stripe_kb metrics_path =
  match full_config config_name disks layout stripe_kb with
  | Error e ->
      prerr_endline e;
      1
  | Ok config ->
      let m = Clusterfs.Machine.create config in
      let reg = Sim.Metrics.create () in
      Clusterfs.Machine.register_metrics m reg;
      let dev = m.Clusterfs.Machine.dev in
      let cfg =
        { Workload.Iobench.default_config with Workload.Iobench.file_mb }
      in
      let body (m : Clusterfs.Machine.t) =
        let fs = m.Clusterfs.Machine.fs in
        match String.lowercase_ascii workload with
        | "fsw" ->
            Disk.Blkdev.set_tracing dev true;
            ignore (Workload.Iobench.run_phase fs cfg Workload.Iobench.FSW)
        | "fsr" ->
            Workload.Iobench.prepare fs cfg;
            Disk.Blkdev.set_tracing dev true;
            ignore (Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR)
        | "fru" ->
            Workload.Iobench.prepare fs cfg;
            Disk.Blkdev.set_tracing dev true;
            ignore (Workload.Iobench.run_phase fs cfg Workload.Iobench.FRU)
        | "rm" ->
            ignore (Workload.Metaops.create_many fs ~dir:"/many" ~n:100 ());
            Disk.Blkdev.set_tracing dev true;
            ignore (Workload.Metaops.remove_all fs ~dir:"/many")
        | other -> failwith (Printf.sprintf "unknown workload %S" other)
      in
      (match Clusterfs.Machine.run m body with
      | () ->
          print_endline "time_us,disk,kind,sector,count,track_buffer_hit";
          List.iter
            (fun (member, (e : Disk.Device.event)) ->
              Printf.printf "%d,%d,%s,%d,%d,%b\n" e.Disk.Device.at member
                (match e.Disk.Device.kind with
                | Disk.Request.Read -> "R"
                | Disk.Request.Write -> "W")
                e.Disk.Device.sector e.Disk.Device.count
                e.Disk.Device.buffered_hit)
            (Disk.Blkdev.events dev)
      | exception Failure msg ->
          prerr_endline msg;
          exit 1);
      (match metrics_path with
      | None -> ()
      | Some path ->
          let json =
            Sim.Metrics.to_json reg
              ~meta:
                [
                  ("tool", "blktrace");
                  ("config", config_name);
                  ("workload", workload);
                ]
          in
          let oc = open_out path in
          output_string oc json;
          output_char oc '\n';
          close_out oc;
          Printf.eprintf "metrics -> %s\n%!" path);
      0

let config_t =
  Arg.(value & opt string "a" & info [ "config"; "c" ] ~doc:"Paper config: a, b, c or d.")

let workload_t =
  Arg.(
    value & opt string "fsw"
    & info [ "workload"; "w" ] ~doc:"One of fsw, fsr, fru, rm.")

let file_mb_t =
  Arg.(value & opt int 4 & info [ "file-mb" ] ~doc:"Benchmark file size in MB.")

let disks_t =
  Arg.(value & opt int 1 & info [ "disks" ] ~doc:"Number of member disks.")

let layout_t =
  Arg.(
    value & opt string "stripe"
    & info [ "layout" ] ~doc:"Volume layout: concat, stripe or mirror.")

let stripe_kb_t =
  Arg.(value & opt int 128 & info [ "stripe-kb" ] ~doc:"Stripe unit in KB.")

let metrics_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ]
        ~doc:
          "Write the machine's per-layer metrics (disk, vm, ufs) as JSON to \
           $(docv) after the run."
        ~docv:"FILE")

let cmd =
  Cmd.v
    (Cmd.info "blktrace" ~doc:"Dump a simulated disk's request trace as CSV")
    Term.(
      const run $ config_t $ workload_t $ file_mb_t $ disks_t $ layout_t
      $ stripe_kb_t $ metrics_t)

let () = exit (Cmd.eval' cmd)
