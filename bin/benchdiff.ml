(* benchdiff — the bench regression gate.

   The simulator is deterministic, so every number in a BENCH_*.json
   metrics snapshot is reproducible bit-for-bit; what changes them is a
   code change.  This tool pins a snapshot as a committed baseline and
   compares later runs against it, metric by metric, with per-metric
   tolerances — CI runs the check and goes red when a change moves a
   gated number beyond its tolerance.  Intentional changes re-record.

     benchdiff record BENCH_fio.json -o bench/baselines/fio.json
     benchdiff check  BENCH_fio.json -b bench/baselines/fio.json

   Baselines are plain JSON and hand-editable: loosen one metric's
   rel_tol / abs_tol, or delete an entry to stop gating it. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match Sim.Json.parse (read_file path) with
  | Ok j -> j
  | Error e -> failwith (Printf.sprintf "%s: %s" path e)

(* ---------- flattening a metrics snapshot ---------- *)

(* One gatable scalar: a metric value, or one scalar field of a summary
   ("queue_wait_us.p99"); histograms contribute their count. *)
type entry = { layer : string; instance : string; metric : string; v : float }

let summary_fields =
  [ "count"; "mean"; "min"; "max"; "total"; "p50"; "p95"; "p99" ]

let flatten (j : Sim.Json.t) =
  let entries = ref [] in
  let push layer instance metric v =
    entries := { layer; instance; metric; v } :: !entries
  in
  List.iter
    (fun src ->
      let field name = Option.bind (Sim.Json.member name src) Sim.Json.str in
      match (field "layer", field "instance", Sim.Json.member "metrics" src) with
      | Some layer, Some instance, Some (Sim.Json.Obj metrics) ->
          List.iter
            (fun (name, v) ->
              match v with
              | Sim.Json.Num f -> push layer instance name f
              | Sim.Json.Obj _ when Sim.Json.member "buckets" v <> None -> (
                  (* histogram: gate on the count *)
                  match Option.bind (Sim.Json.member "count" v) Sim.Json.num with
                  | Some c -> push layer instance (name ^ ".count") c
                  | None -> ())
              | Sim.Json.Obj _ ->
                  List.iter
                    (fun fld ->
                      match
                        Option.bind (Sim.Json.member fld v) Sim.Json.num
                      with
                      | Some f -> push layer instance (name ^ "." ^ fld) f
                      | None -> () (* null: nan/inf — not gatable *))
                    summary_fields
              | _ -> ())
            metrics
      | _ -> ())
    (match Sim.Json.member "sources" j with
    | Some l -> Sim.Json.to_list l
    | None -> failwith "not a metrics snapshot (no \"sources\")");
  (* a snapshot with duplicate keys (same layer/instance/metric twice)
     must still gate deterministically: disambiguate repeats in document
     order, identically at record and check time *)
  let seen = Hashtbl.create 256 in
  List.rev !entries
  |> List.map (fun e ->
         let k = (e.layer, e.instance, e.metric) in
         match Hashtbl.find_opt seen k with
         | None ->
             Hashtbl.replace seen k 1;
             e
         | Some n ->
             Hashtbl.replace seen k (n + 1);
             { e with metric = Printf.sprintf "%s#%d" e.metric (n + 1) })

(* ---------- record ---------- *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let record bench_path out rel_tol abs_tol =
  let j = parse_file bench_path in
  let section =
    match Option.bind (Sim.Json.member "section" j) Sim.Json.str with
    | Some s -> s
    | None -> Filename.remove_extension (Filename.basename bench_path)
  in
  let entries = flatten j in
  let b = Buffer.create 4096 in
  Printf.bprintf b "{\"section\": \"%s\",\n" (esc section);
  Printf.bprintf b " \"rel_tol\": %g, \"abs_tol\": %g,\n \"entries\": ["
    rel_tol abs_tol;
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "\n  {\"layer\": \"%s\", \"instance\": \"%s\", \"metric\": \"%s\", \
         \"value\": %.17g}"
        (esc e.layer) (esc e.instance) (esc e.metric) e.v)
    entries;
  Buffer.add_string b "\n]}\n";
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Buffer.contents b);
      close_out oc;
      Printf.printf "recorded %d metrics from %s -> %s\n" (List.length entries)
        bench_path path
  | None -> print_string (Buffer.contents b));
  0

(* ---------- check ---------- *)

let check bench_path baseline_path =
  let cur = flatten (parse_file bench_path) in
  let base = parse_file baseline_path in
  let def name d =
    Option.value ~default:d (Option.bind (Sim.Json.member name base) Sim.Json.num)
  in
  let default_rel = def "rel_tol" 0. and default_abs = def "abs_tol" 0. in
  let lookup e =
    List.find_opt
      (fun c ->
        c.layer = e.layer && c.instance = e.instance && c.metric = e.metric)
      cur
  in
  let checked = ref 0 and breaches = ref [] in
  List.iter
    (fun bj ->
      let field name = Option.bind (Sim.Json.member name bj) Sim.Json.str in
      let numf name = Option.bind (Sim.Json.member name bj) Sim.Json.num in
      match (field "layer", field "instance", field "metric", numf "value") with
      | Some layer, Some instance, Some metric, Some expect ->
          incr checked;
          let rel = Option.value ~default:default_rel (numf "rel_tol") in
          let abs = Option.value ~default:default_abs (numf "abs_tol") in
          let e = { layer; instance; metric; v = expect } in
          let tol = Float.max abs (rel *. Float.abs expect) in
          (match lookup e with
          | None -> breaches := (e, None, tol) :: !breaches
          | Some c ->
              if Float.abs (c.v -. expect) > tol then
                breaches := (e, Some c.v, tol) :: !breaches)
      | _ -> failwith (Printf.sprintf "%s: malformed entry" baseline_path))
    (match Sim.Json.member "entries" base with
    | Some l -> Sim.Json.to_list l
    | None -> failwith (Printf.sprintf "%s: no \"entries\"" baseline_path));
  let breaches = List.rev !breaches in
  Printf.printf "benchdiff: %s vs %s: %d gated, %d breached\n" bench_path
    baseline_path !checked (List.length breaches);
  if breaches <> [] then begin
    Printf.printf "  %-10s %-14s %-26s %14s %14s %10s\n" "layer" "instance"
      "metric" "baseline" "current" "tol";
    List.iter
      (fun (e, cv, tol) ->
        Printf.printf "  %-10s %-14s %-26s %14.6g %14s %10.4g\n" e.layer
          e.instance e.metric e.v
          (match cv with Some v -> Printf.sprintf "%.6g" v | None -> "MISSING")
          tol)
      breaches;
    Printf.printf
      "  (intentional change?  re-record: benchdiff record %s -o %s)\n"
      bench_path baseline_path;
    1
  end
  else 0

(* ---------- CLI ---------- *)

let bench_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BENCH.json" ~doc:"Metrics snapshot from a bench run.")

let record_cmd =
  let out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Baseline destination (default: stdout).")
  in
  let rel_t =
    Arg.(
      value & opt float 0.01
      & info [ "rel-tol" ] ~doc:"Default relative tolerance baked in.")
  in
  let abs_t =
    Arg.(
      value & opt float 0.
      & info [ "abs-tol" ] ~doc:"Default absolute tolerance baked in.")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"pin a bench snapshot as a baseline")
    Term.(const record $ bench_t $ out_t $ rel_t $ abs_t)

let check_cmd =
  let baseline_t =
    Arg.(
      required
      & opt (some file) None
      & info [ "b"; "baseline" ] ~docv:"FILE" ~doc:"Committed baseline.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"compare a bench snapshot against a baseline; exit 1 on breach")
    Term.(const check $ bench_t $ baseline_t)

let cmd =
  Cmd.group
    (Cmd.info "benchdiff" ~doc:"bench metrics regression gate")
    [ record_cmd; check_cmd ]

let () =
  match Cmd.eval_value' cmd with
  | `Exit c -> exit c
  | `Ok c -> exit c
