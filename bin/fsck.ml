(* fsck — check a UFS image file.

   Example:
     dune exec bin/fsck.exe -- /tmp/disk.img *)

open Cmdliner

let run path =
  let store = Disk.Store.load path in
  (* wrap the image in a device of matching capacity *)
  let bytes_per_cyl = 14 * 48 * 512 in
  let cyls = Disk.Store.size store / bytes_per_cyl in
  let geom =
    Disk.Geom.create ~rpm:4316 ~nheads:14
      ~zones:[ { Disk.Geom.cyls = max 1 cyls; spt = 48 } ]
      ()
  in
  let engine = Sim.Engine.create () in
  let dev =
    Disk.Device.create engine { Disk.Device.default_config with Disk.Device.geom }
  in
  (if Disk.Geom.capacity_bytes geom = Disk.Store.size store then
     Disk.Store.copy_into store (Disk.Device.store dev)
   else begin
     (* sizes differ by the truncated partial cylinder: copy what fits *)
     let buf = Bytes.create 65536 in
     let n = min (Disk.Geom.capacity_bytes geom) (Disk.Store.size store) in
     let rec loop off =
       if off < n then begin
         let len = min 65536 (n - off) in
         Disk.Store.read store ~off ~len buf 0;
         Disk.Store.write (Disk.Device.store dev) ~off ~len buf 0;
         loop (off + len)
       end
     in
     loop 0
   end);
  match Ufs.Fsck.check (Disk.Blkdev.of_device dev) with
  | report ->
      Format.printf "%a@." Ufs.Fsck.pp report;
      if Ufs.Fsck.ok report then 0 else 2
  | exception Vfs.Errno.Error (code, msg) ->
      Format.eprintf "fsck: cannot read file system: %a (%s)@." Vfs.Errno.pp
        code msg;
      2

let path_t =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE" ~doc:"Disk image to check.")

let cmd =
  Cmd.v (Cmd.info "fsck" ~doc:"Check a simulated-UFS disk image") Term.(const run $ path_t)

let () = exit (Cmd.eval' cmd)
