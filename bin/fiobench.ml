(* fiobench — run declarative fio-style workload specs against the
   simulated file system, locally or over NFS, with a per-layer cost
   breakdown of where the simulated op time went.

   Examples:
     dune exec bin/fiobench.exe                      # canned scenarios, both targets
     dune exec bin/fiobench.exe -- db-oltp --target local
     dune exec bin/fiobench.exe -- 'name=x file=x rw=randread bs=4k size=2m'
     dune exec bin/fiobench.exe -- job.fio --clients 4 --json out.json *)

open Cmdliner

let base_config name =
  match String.lowercase_ascii name with
  | "a" -> Ok Clusterfs.Config.config_a
  | "b" -> Ok Clusterfs.Config.config_b
  | "c" -> Ok Clusterfs.Config.config_c
  | "d" -> Ok Clusterfs.Config.config_d
  | other -> Error (Printf.sprintf "unknown config %S (want a|b|c|d)" other)

let scenario_of_name name =
  List.find_opt
    (fun s -> s.Fio.Spec.name = name)
    Fio.Scenarios.all

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let resolve_specs = function
  | [] -> Ok Fio.Scenarios.all
  | args ->
      List.fold_right
        (fun arg acc ->
          match acc with
          | Error _ as e -> e
          | Ok specs -> (
              match scenario_of_name arg with
              | Some s -> Ok (s :: specs)
              | None -> (
                  let text = if Sys.file_exists arg then read_file arg else arg in
                  match Fio.Spec.parse text with
                  | Ok s -> Ok (s :: specs)
                  | Error e ->
                      Error (Printf.sprintf "spec %S: %s" arg e))))
        args (Ok [])

let run_target config clients servers topology ports_buffer spec = function
  | `Local -> [ Fio.Scenarios.run_local ~config spec ]
  | `Remote ->
      [
        Fio.Scenarios.run_remote ~config ~clients ~servers ?topology
          ?ports_buffer spec;
      ]
  | `Both ->
      [
        Fio.Scenarios.run_local ~config spec;
        Fio.Scenarios.run_remote ~config ~clients ~servers ?topology
          ?ports_buffer spec;
      ]

let topology_of_string = function
  | "p2p" -> Ok (Some Clusterfs.Topology.Point_to_point)
  | "shared" -> Ok (Some Clusterfs.Topology.Shared_medium)
  | "switched" -> Ok (Some Clusterfs.Topology.Switched)
  | other ->
      Error (Printf.sprintf "unknown topology %S (want p2p|shared|switched)" other)

let run specs config_name clients servers topology ports_buffer target json
    trace =
  match
    ( resolve_specs specs,
      base_config config_name,
      (match String.lowercase_ascii target with
      | "local" -> Ok `Local
      | "remote" -> Ok `Remote
      | "both" -> Ok `Both
      | other ->
          Error (Printf.sprintf "unknown target %S (want local|remote|both)" other)),
      topology_of_string (String.lowercase_ascii topology) )
  with
  | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e
    ->
      prerr_endline e;
      1
  | Ok specs, Ok config, Ok target, Ok topology ->
      let recorder =
        Option.map (fun _ -> Sim.Span.create_recorder ()) trace
      in
      let go () =
        List.concat_map
          (fun s ->
            run_target config clients servers topology ports_buffer s target)
          specs
      in
      let reports =
        match recorder with
        | Some r -> Sim.Span.with_recorder r go
        | None -> go ()
      in
      List.iter (fun r -> print_string (Fio.Report.to_text r)) reports;
      (match (trace, recorder) with
      | Some path, Some r ->
          let oc = open_out path in
          output_string oc (Sim.Span.to_chrome r);
          close_out oc;
          Printf.printf "wrote %s (%d traces)\n" path
            (List.length (Sim.Span.export_roots r));
          print_string (Sim.Span.render_slowest r)
      | _ -> ());
      (match json with
      | None -> ()
      | Some path ->
          let oc = open_out path in
          output_string oc "[\n";
          List.iteri
            (fun i r ->
              if i > 0 then output_string oc ",\n";
              output_string oc (Fio.Report.to_json r))
            reports;
          output_string oc "]\n";
          close_out oc;
          Printf.printf "wrote %s\n" path);
      0

let specs_t =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"SPEC"
        ~doc:
          "Workload: a canned scenario name (db-oltp, backup, mixed, \
           ilv-single, ilv-pair, strided), a spec file, or an inline \
           'key=value ...' spec.  Default: all canned scenarios.")

let config_t =
  Arg.(
    value & opt string "a"
    & info [ "config"; "c" ] ~doc:"Paper config: a, b, c or d.")

let clients_t =
  Arg.(
    value & opt int 2
    & info [ "clients" ] ~doc:"Client nodes for the remote target.")

let servers_t =
  Arg.(
    value & opt int 1
    & info [ "servers" ]
        ~doc:
          "Server machines for the remote target; private-file jobs \
           round-robin over them, shared files land where the namespace \
           hash says.")

let topology_fio_t =
  Arg.(
    value & opt string "p2p"
    & info [ "topology" ]
        ~doc:"Remote wiring: p2p, shared or switched.")

let ports_buffer_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "ports-buffer" ]
        ~doc:"Switch output-port buffer in frames (switched topology).")

let target_t =
  Arg.(
    value & opt string "both"
    & info [ "target"; "t" ] ~doc:"Where to run: local, remote or both.")

let json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"Also write reports as JSON.")

let trace_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record span trees for every op and write a Chrome trace-event \
           JSON file (load it in Perfetto / chrome://tracing); also prints \
           the slowest captured op trees.  Simulated results are identical \
           with or without tracing.")

let cmd =
  let doc = "declarative fio-style workloads with per-layer cost attribution" in
  Cmd.v
    (Cmd.info "fiobench" ~doc)
    Term.(
      const run $ specs_t $ config_t $ clients_t $ servers_t $ topology_fio_t
      $ ports_buffer_t $ target_t $ json_t $ trace_t)

let () = exit (Cmd.eval' cmd)
