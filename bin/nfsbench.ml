(* nfsbench — run the paper's I/O benchmark over the simulated network:
   N clients against one NFS server machine.

   Examples:
     dune exec bin/nfsbench.exe -- --config a
     dune exec bin/nfsbench.exe -- --clients 4 --nfsd 8 --phases fsw,fsr
     dune exec bin/nfsbench.exe -- --bandwidth-kb 600 --loss 0.01 -v *)

open Cmdliner

let ( let* ) = Result.bind

let base_config name =
  match String.lowercase_ascii name with
  | "a" -> Ok Clusterfs.Config.config_a
  | "b" -> Ok Clusterfs.Config.config_b
  | "c" -> Ok Clusterfs.Config.config_c
  | "d" -> Ok Clusterfs.Config.config_d
  | other -> Error (Printf.sprintf "unknown config %S (want a|b|c|d)" other)

let phase_of_string s =
  match String.uppercase_ascii s with
  | "FSR" -> Ok Workload.Iobench.FSR
  | "FSU" -> Ok Workload.Iobench.FSU
  | "FSW" -> Ok Workload.Iobench.FSW
  | "FRR" -> Ok Workload.Iobench.FRR
  | "FRU" -> Ok Workload.Iobench.FRU
  | other -> Error (Printf.sprintf "unknown phase %S" other)

let client_path id = Printf.sprintf "/bench%d" id

(* drop a file from the owning server's page cache so the next phase
   pays the same disk reads a local cold-start phase does *)
let cool_server t path =
  Clusterfs.Topology.run t (fun t ->
      let server = Clusterfs.Topology.server_of_path t path in
      let fs = t.Clusterfs.Topology.servers.(server).Clusterfs.Machine.fs in
      let ip = Ufs.Fs.namei fs path in
      Workload.Iobench.reset_file_state fs ip;
      Ufs.Iops.iput fs ip)

let cool_all t clients =
  for id = 0 to clients - 1 do
    cool_server t (client_path id)
  done

let transport_of_string = function
  | "fixed" -> Ok Nfs.Rpc.Fixed
  | "adaptive" -> Ok Nfs.Rpc.Adaptive
  | other -> Error (Printf.sprintf "unknown transport %S (want fixed|adaptive)" other)

let topology_of_string = function
  | "p2p" -> Ok Clusterfs.Topology.Point_to_point
  | "shared" -> Ok Clusterfs.Topology.Shared_medium
  | "switched" -> Ok Clusterfs.Topology.Switched
  | other ->
      Error (Printf.sprintf "unknown topology %S (want p2p|shared|switched)" other)

let run config_name clients servers nfsd biods ra_depth file_mb bandwidth_kb
    latency_us loss seed transport topology ports_buffer phases verbose =
  match
    let* config = base_config config_name in
    let* transport = transport_of_string transport in
    let* topology = topology_of_string topology in
    Ok (config, transport, topology)
  with
  | Error e ->
      prerr_endline e;
      1
  | Ok (config, transport, topology) -> (
      let phases =
        match phases with
        | [] -> Ok [ Workload.Iobench.FSW; Workload.Iobench.FSR ]
        | ps ->
            List.fold_right
              (fun p acc ->
                match (phase_of_string p, acc) with
                | Ok p, Ok acc -> Ok (p :: acc)
                | Error e, _ -> Error e
                | _, (Error _ as e) -> e)
              ps (Ok [])
      in
      match phases with
      | Error e ->
          prerr_endline e;
          1
      | Ok phases ->
          let net =
            {
              Net.default_config with
              Net.bandwidth = bandwidth_kb * 1000;
              latency = Sim.Time.us latency_us;
              loss;
            }
          in
          Printf.printf
            "server%s: config %s, %d nfsd; %d client%s, %d KB/s %s, %d us \
             latency, %.2f%% loss, %s transport\n"
            (if servers = 1 then "" else Printf.sprintf "s x%d" servers)
            (String.uppercase_ascii config_name)
            nfsd clients
            (if clients = 1 then "" else "s")
            bandwidth_kb
            (match topology with
            | Clusterfs.Topology.Point_to_point -> "links"
            | Clusterfs.Topology.Shared_medium -> "shared wire"
            | Clusterfs.Topology.Switched -> "switched fabric")
            latency_us (loss *. 100.)
            (match transport with
            | Nfs.Rpc.Fixed -> "fixed-timeout"
            | Nfs.Rpc.Adaptive -> "adaptive");
          let t =
            Clusterfs.Topology.create ~net ~seed ~topology ~transport ~nfsd
              ?biods ?ra_depth ~servers ?ports_buffer ~clients config
          in
          let engine = Clusterfs.Topology.engine t in
          let cfg id =
            {
              Workload.Iobench.default_config with
              Workload.Iobench.file_mb;
              path = client_path id;
            }
          in
          (* non-FSW-first phase lists need the files to exist *)
          (match phases with
          | Workload.Iobench.FSW :: _ -> ()
          | _ ->
              Clusterfs.Topology.run_clients t (fun c ->
                  let id = c.Clusterfs.Topology.id in
                  Workload.Remote_iobench.prepare
                    (Clusterfs.Topology.shard t c (client_path id))
                    (cfg id));
              cool_all t clients);
          Printf.printf "\n%-6s %12s %12s %12s %12s\n" "phase" "agg KB/s"
            "KB/s min" "KB/s mean" "KB/s max";
          List.iter
            (fun phase ->
              let results =
                Array.make clients
                  {
                    Workload.Iobench.kind = phase;
                    bytes_moved = 0;
                    elapsed = Sim.Time.zero;
                    kb_per_sec = 0.;
                    sys_cpu = Sim.Time.zero;
                  }
              in
              Clusterfs.Topology.run_clients t (fun c ->
                  let id = c.Clusterfs.Topology.id in
                  results.(id) <-
                    Workload.Remote_iobench.run_phase ~engine
                      ~cpu:c.Clusterfs.Topology.cpu
                      (Clusterfs.Topology.shard t c (client_path id))
                      (cfg id) phase);
              cool_all t clients;
              let bytes =
                Array.fold_left
                  (fun a r -> a + r.Workload.Iobench.bytes_moved)
                  0 results
              in
              let window =
                Array.fold_left
                  (fun a r -> max a r.Workload.Iobench.elapsed)
                  Sim.Time.zero results
              in
              let rates =
                Array.map (fun r -> r.Workload.Iobench.kb_per_sec) results
              in
              let agg =
                if window = Sim.Time.zero then 0.
                else float_of_int bytes /. 1024. /. Sim.Time.to_sec_float window
              in
              Printf.printf "%-6s %12.0f %12.0f %12.0f %12.0f\n"
                (Workload.Iobench.kind_to_string phase)
                agg
                (Array.fold_left min rates.(0) rates)
                (Array.fold_left ( +. ) 0. rates /. float_of_int clients)
                (Array.fold_left max rates.(0) rates))
            phases;
          if verbose then begin
            Array.iter
              (fun c ->
                let id = c.Clusterfs.Topology.id in
                let calls, retrans, late =
                  Array.fold_left
                    (fun (cl, rt, lt) m ->
                      let r = Nfs.Rpc.stats m.Clusterfs.Topology.m_rpc in
                      ( cl + r.Nfs.Rpc.calls,
                        rt + r.Nfs.Rpc.retransmits,
                        lt + r.Nfs.Rpc.late_replies ))
                    (0, 0, 0) c.Clusterfs.Topology.mounts
                in
                let hits, misses, rai, rau, gath, dsl =
                  Array.fold_left
                    (fun (h, m, ri, ru, g, d) mp ->
                      let s = Nfs.Client.stats mp.Clusterfs.Topology.m_mount in
                      ( h + s.Nfs.Client.cache_hits,
                        m + s.Nfs.Client.cache_misses,
                        ri + s.Nfs.Client.ra_issued,
                        ru + s.Nfs.Client.ra_used,
                        g + s.Nfs.Client.write_gathers,
                        d + s.Nfs.Client.dirty_sleeps ))
                    (0, 0, 0, 0, 0, 0) c.Clusterfs.Topology.mounts
                in
                (match Clusterfs.Topology.client_link c with
                | Some link ->
                    let l = Net.stats link in
                    Printf.printf
                      "\nclient %d: %d calls (%d retrans, %d late), link %d \
                       msgs / %d KB, %d drops\n"
                      id calls retrans late l.Net.msgs_sent
                      (l.Net.bytes_sent / 1024) l.Net.drops
                | None ->
                    Printf.printf "\nclient %d: %d calls (%d retrans, %d late)\n"
                      id calls retrans late);
                Printf.printf
                  "  cache: %d hits / %d misses, ra %d issued (%d used), %d \
                   gathers, %d dirty sleeps\n"
                  hits misses rai rau gath dsl)
              t.Clusterfs.Topology.clients;
            Array.iteri
              (fun j svc ->
                let sv = Nfs.Server.stats svc in
                Printf.printf
                  "\nserver %d: %d calls received, %d dup hits, %d busy drops, \
                   queue wait %.2f ms mean\n"
                  j sv.Nfs.Server.received sv.Nfs.Server.dup_hits
                  sv.Nfs.Server.dup_busy_drops
                  (Sim.Stats.Summary.mean sv.Nfs.Server.queue_wait_us /. 1000.);
                List.iter
                  (fun op ->
                    let n = Nfs.Server.applied svc op in
                    if n > 0 then Printf.printf "  %-8s applied %6d\n" op n)
                  Nfs.Proto.op_names)
              t.Clusterfs.Topology.services;
            match Clusterfs.Topology.switch t with
            | Some sw ->
                let st = Net.Switch.stats sw in
                Printf.printf
                  "\nswitch: %d frames, %d overflow drops, occupancy high-water \
                   %d, max port util %.1f%%\n"
                  st.Net.Switch.frames_sent st.Net.Switch.overflows
                  st.Net.Switch.occ_hwm
                  (Net.Switch.max_port_utilization sw *. 100.)
            | None -> ()
          end;
          0)

let config_t =
  Arg.(
    value & opt string "a" & info [ "config"; "c" ] ~doc:"Paper config: a, b, c or d.")

let clients_t =
  Arg.(value & opt int 1 & info [ "clients" ] ~doc:"Number of client nodes.")

let servers_t =
  Arg.(
    value & opt int 1
    & info [ "servers" ]
        ~doc:
          "Number of server machines; the namespace is spread across them \
           by a hash of the path.")

let nfsd_t =
  Arg.(value & opt int 4 & info [ "nfsd" ] ~doc:"Server worker pool size.")

let biods_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "biods" ] ~doc:"Client I/O daemons (default 4).")

let ra_depth_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "ra-depth" ] ~doc:"Client read-ahead depth in clusters (default 2).")

let file_mb_t =
  Arg.(value & opt int 4 & info [ "file-mb" ] ~doc:"Per-client file size in MB.")

let bandwidth_t =
  Arg.(
    value
    & opt int 12_500
    & info [ "bandwidth-kb" ] ~doc:"Link bandwidth in KB/s per client.")

let latency_t =
  Arg.(value & opt int 500 & info [ "latency-us" ] ~doc:"Link latency in us.")

let loss_t =
  Arg.(
    value
    & opt float 0.
    & info [ "loss" ] ~doc:"Per-message drop probability, 0 <= p < 1.")

let seed_t =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Fault-injection seed.")

let transport_t =
  Arg.(
    value
    & opt string "fixed"
    & info [ "transport" ]
        ~doc:
          "RPC retransmission strategy: fixed (NFSv2 timers) or adaptive \
           (srtt/rttvar RTO + AIMD congestion window).")

let topology_t =
  Arg.(
    value
    & opt string "p2p"
    & info [ "topology" ]
        ~doc:
          "Network wiring: p2p (a private link per client), shared (one \
           Ethernet-class medium all stations contend for) or switched (a \
           store-and-forward switch with a full-duplex port per machine).")

let ports_buffer_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "ports-buffer" ]
        ~doc:
          "Switch output-port buffer in frames (default 64); overflowing \
           frames are tail-dropped.")

let phases_t =
  Arg.(
    value
    & opt (list string) []
    & info [ "phases" ]
        ~doc:"Comma-separated subset of fsw,fsu,fsr,frr,fru (default fsw,fsr).")

let verbose_t =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Print per-client, server and link statistics.")

let cmd =
  let doc = "IObench over simulated NFS: clustered UFS served to many clients" in
  Cmd.v
    (Cmd.info "nfsbench" ~doc)
    Term.(
      const run $ config_t $ clients_t $ servers_t $ nfsd_t $ biods_t
      $ ra_depth_t $ file_mb_t $ bandwidth_t $ latency_t $ loss_t $ seed_t
      $ transport_t $ topology_t $ ports_buffer_t $ phases_t $ verbose_t)

let () = exit (Cmd.eval' cmd)
