(* mkfs — build a UFS image file.

   Examples:
     dune exec bin/mkfs.exe -- /tmp/disk.img
     dune exec bin/mkfs.exe -- /tmp/disk.img --size-mb 100 --rotdelay 0 --maxcontig 15 *)

open Cmdliner

let run path size_mb rotdelay maxcontig maxbpg minfree fpg ipg journal journal_frags =
  let cyls =
    (* 14 heads x 48 spt x 512B = 344064 bytes per cylinder *)
    max 10 (size_mb * 1_000_000 / (14 * 48 * 512))
  in
  let geom =
    Disk.Geom.create ~rpm:4316 ~nheads:14 ~zones:[ { Disk.Geom.cyls; spt = 48 } ] ()
  in
  let engine = Sim.Engine.create () in
  let dev =
    Disk.Device.create engine { Disk.Device.default_config with Disk.Device.geom }
  in
  let opts =
    {
      Ufs.Fs.rotdelay_ms = rotdelay;
      maxcontig;
      maxbpg;
      minfree_pct = minfree;
      fpg;
      ipg;
      journal_frags =
        (if journal_frags > 0 then journal_frags
         else if journal then Ufs.Fs.journal_frags_default
         else 0);
    }
  in
  Ufs.Fs.mkfs (Disk.Blkdev.of_device dev) ~opts ();
  Disk.Store.save (Disk.Device.store dev) path;
  let b = Bytes.create Ufs.Layout.bsize in
  Disk.Store.read (Disk.Device.store dev)
    ~off:(Ufs.Layout.frag_to_byte Ufs.Layout.sb_frag)
    ~len:Ufs.Layout.bsize b 0;
  Format.printf "%a@.image written to %s (%d MB)@."
    Ufs.Superblock.pp (Ufs.Superblock.decode b) path
    (Disk.Geom.capacity_bytes geom / 1_000_000);
  0

let path_t =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"IMAGE" ~doc:"Output image file.")

let size_t = Arg.(value & opt int 400 & info [ "size-mb" ] ~doc:"Device size in MB.")
let rotdelay_t = Arg.(value & opt int 4 & info [ "rotdelay" ] ~doc:"Rotational delay (ms).")
let maxcontig_t = Arg.(value & opt int 1 & info [ "maxcontig" ] ~doc:"Cluster size in blocks.")
let maxbpg_t = Arg.(value & opt int 256 & info [ "maxbpg" ] ~doc:"Max blocks per file per group.")
let minfree_t = Arg.(value & opt int 10 & info [ "minfree" ] ~doc:"Reserved space (percent).")
let fpg_t = Arg.(value & opt int 16384 & info [ "fpg" ] ~doc:"Fragments per cylinder group.")
let ipg_t = Arg.(value & opt int 2048 & info [ "ipg" ] ~doc:"Inodes per cylinder group.")

let journal_t =
  Arg.(
    value & flag
    & info [ "journal" ]
        ~doc:"Reserve a write-ahead intent journal (default size).")

let journal_frags_t =
  Arg.(
    value & opt int 0
    & info [ "journal-frags" ]
        ~doc:"Journal size in fragments (implies --journal).")

let cmd =
  Cmd.v
    (Cmd.info "mkfs" ~doc:"Create a simulated-UFS disk image")
    Term.(
      const run $ path_t $ size_t $ rotdelay_t $ maxcontig_t $ maxbpg_t
      $ minfree_t $ fpg_t $ ipg_t $ journal_t $ journal_frags_t)

let () = exit (Cmd.eval' cmd)
