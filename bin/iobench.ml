(* iobench — run the paper's I/O benchmark on a simulated machine.

   Examples:
     dune exec bin/iobench.exe -- --config a
     dune exec bin/iobench.exe -- --config d --file-mb 8 --phases fsw,fsr
     dune exec bin/iobench.exe -- --cluster-kb 56 --rotdelay 0 --memory-mb 16 *)

open Cmdliner

let base_config name =
  match String.lowercase_ascii name with
  | "a" -> Ok Clusterfs.Config.config_a
  | "b" -> Ok Clusterfs.Config.config_b
  | "c" -> Ok Clusterfs.Config.config_c
  | "d" -> Ok Clusterfs.Config.config_d
  | other -> Error (Printf.sprintf "unknown config %S (want a|b|c|d)" other)

let phase_of_string s =
  match String.uppercase_ascii s with
  | "FSR" -> Ok Workload.Iobench.FSR
  | "FSU" -> Ok Workload.Iobench.FSU
  | "FSW" -> Ok Workload.Iobench.FSW
  | "FRR" -> Ok Workload.Iobench.FRR
  | "FRU" -> Ok Workload.Iobench.FRU
  | other -> Error (Printf.sprintf "unknown phase %S" other)

let run config_name file_mb random_ops cluster_kb rotdelay memory_mb
    no_free_behind write_limit_kb phases verbose =
  match base_config config_name with
  | Error e ->
      prerr_endline e;
      1
  | Ok config -> (
      let config =
        Option.fold ~none:config
          ~some:(Clusterfs.Config.with_cluster_kb config)
          cluster_kb
      in
      let config =
        Option.fold ~none:config
          ~some:(Clusterfs.Config.with_rotdelay config)
          rotdelay
      in
      let config = Clusterfs.Config.with_memory_mb config memory_mb in
      let config =
        if no_free_behind then Clusterfs.Config.with_free_behind config false
        else config
      in
      let config =
        match write_limit_kb with
        | None -> config
        | Some 0 -> Clusterfs.Config.with_write_limit config None
        | Some kb -> Clusterfs.Config.with_write_limit config (Some (kb * 1024))
      in
      let phases =
        match phases with
        | [] -> Ok [ Workload.Iobench.FSW; FSU; FSR; FRR; FRU ]
        | ps ->
            List.fold_right
              (fun p acc ->
                match (phase_of_string p, acc) with
                | Ok p, Ok acc -> Ok (p :: acc)
                | Error e, _ -> Error e
                | _, (Error _ as e) -> e)
              ps (Ok [])
      in
      match phases with
      | Error e ->
          prerr_endline e;
          1
      | Ok phases ->
          let bench_cfg =
            { Workload.Iobench.default_config with Workload.Iobench.file_mb; random_ops }
          in
          Printf.printf
            "machine: %dMB RAM, %s disk; fs: cluster %dKB, rotdelay %dms, \
             free-behind %b, write limit %s\n"
            config.Clusterfs.Config.memory_mb
            (Printf.sprintf "%dMB"
               (Disk.Geom.capacity_bytes config.Clusterfs.Config.disk.Disk.Device.geom
               / 1_000_000))
            (config.Clusterfs.Config.mkfs.Ufs.Fs.maxcontig * Ufs.Layout.bsize / 1024)
            config.Clusterfs.Config.mkfs.Ufs.Fs.rotdelay_ms
            config.Clusterfs.Config.features.Ufs.Types.free_behind
            (match config.Clusterfs.Config.features.Ufs.Types.write_limit with
            | None -> "none"
            | Some n -> Printf.sprintf "%dKB" (n / 1024));
          let m = Clusterfs.Machine.create config in
          let results =
            Clusterfs.Machine.run m (fun m ->
                let fs = m.Clusterfs.Machine.fs in
                (* non-FSW phases need the file to exist *)
                if not (List.mem Workload.Iobench.FSW phases) then
                  Workload.Iobench.prepare fs bench_cfg;
                List.map (Workload.Iobench.run_phase fs bench_cfg) phases)
          in
          Printf.printf "\n%-6s %12s %12s %12s\n" "phase" "KB/s" "elapsed"
            "sys CPU";
          List.iter
            (fun (r : Workload.Iobench.result) ->
              Printf.printf "%-6s %12.0f %12s %12s\n"
                (Workload.Iobench.kind_to_string r.Workload.Iobench.kind)
                r.Workload.Iobench.kb_per_sec
                (Sim.Time.to_string r.Workload.Iobench.elapsed)
                (Sim.Time.to_string r.Workload.Iobench.sys_cpu))
            results;
          if verbose then begin
            let s = m.Clusterfs.Machine.fs.Ufs.Types.stats in
            Printf.printf
              "\nfs: pgin %d I/Os (%d blocks), ra %d (%d), push %d (%d), \
               free-behind %d, wlimit sleeps %d\n"
              s.Ufs.Types.pgin_ios s.Ufs.Types.pgin_blocks s.Ufs.Types.ra_ios
              s.Ufs.Types.ra_blocks s.Ufs.Types.push_ios s.Ufs.Types.push_blocks
              s.Ufs.Types.freebehind_pages s.Ufs.Types.wlimit_sleeps;
            let d = Disk.Blkdev.stats m.Clusterfs.Machine.dev in
            Printf.printf
              "disk: %d reads, %d writes, busy %s (seek %s, rot %s, xfer %s)\n"
              d.Disk.Blkdev.reads d.Disk.Blkdev.writes
              (Sim.Time.to_string d.Disk.Blkdev.busy_time)
              (Sim.Time.to_string d.Disk.Blkdev.seek_time)
              (Sim.Time.to_string d.Disk.Blkdev.rot_wait)
              (Sim.Time.to_string d.Disk.Blkdev.transfer_time)
          end;
          0)

let config_t =
  Arg.(value & opt string "a" & info [ "config"; "c" ] ~doc:"Paper config: a, b, c or d.")

let file_mb_t =
  Arg.(value & opt int 16 & info [ "file-mb" ] ~doc:"Benchmark file size in MB.")

let random_ops_t =
  Arg.(value & opt int 2048 & info [ "random-ops" ] ~doc:"Requests per random phase.")

let cluster_kb_t =
  Arg.(value & opt (some int) None & info [ "cluster-kb" ] ~doc:"Override cluster size (KB).")

let rotdelay_t =
  Arg.(value & opt (some int) None & info [ "rotdelay" ] ~doc:"Override rotdelay (ms).")

let memory_mb_t =
  Arg.(value & opt int 8 & info [ "memory-mb" ] ~doc:"Machine memory in MB.")

let no_free_behind_t =
  Arg.(value & flag & info [ "no-free-behind" ] ~doc:"Disable free-behind.")

let write_limit_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "write-limit-kb" ] ~doc:"Per-file write limit in KB (0 = none).")

let phases_t =
  Arg.(
    value
    & opt (list string) []
    & info [ "phases" ] ~doc:"Comma-separated subset of fsw,fsu,fsr,frr,fru.")

let verbose_t = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print I/O statistics.")

let cmd =
  let doc = "IObench on a simulated SunOS machine (McVoy & Kleiman, USENIX 1991)" in
  Cmd.v
    (Cmd.info "iobench" ~doc)
    Term.(
      const run $ config_t $ file_mb_t $ random_ops_t $ cluster_kb_t
      $ rotdelay_t $ memory_mb_t $ no_free_behind_t $ write_limit_t $ phases_t
      $ verbose_t)

let () = exit (Cmd.eval' cmd)
