(** Canned workload scenarios and ready-made drivers.

    Three specs cover the corners two fixed recipes (IObench, MusBus)
    could not: small random OLTP I/O where clustering is irrelevant,
    big sequential backup streams where it is everything, and a 70/30
    mixed load in between.  Each runs against a local machine or an
    NFS topology; the write-gathering ablation expresses the
    carried-over experiment as a spec. *)

val db_oltp : Spec.t
(** 4 KB random 70/30 read/write mix, iodepth 4, two jobs. *)

val backup : Spec.t
(** 1 MB sequential read, one job streaming 16 MB. *)

val mixed : Spec.t
(** 8 KB sequential 70/30 mix, iodepth 2, two jobs. *)

val ilv_single : Spec.t
(** One 8 KB sequential reader with 20 ms mean think time (so the
    stream is latency-bound, not disk-bound): the baseline the
    interleaved pair is judged against. *)

val ilv_pair : Spec.t
(** Two 8 KB sequential readers interleaving over disjoint 4 MB halves
    of one shared file ([share=1 offset_increment=4m]), same think time
    as {!ilv_single}.  With per-stream read-ahead windows the pair's
    aggregate bandwidth approaches twice the single stream's. *)

val strided : Spec.t
(** 8 KB reads every 64 KB: sequentially predictable to a naive
    detector but touching one block in eight, so cluster read-ahead is
    mostly waste. *)

val all : Spec.t list
(** The canned scenarios, in the order above. *)

val run_local : ?config:Clusterfs.Config.t -> Spec.t -> Report.t
(** Build a machine (default {!Clusterfs.Config.config_a}), run the
    spec against its local UFS, report.  If a metrics sink is
    installed, the machine and the run register into it. *)

val run_remote :
  ?config:Clusterfs.Config.t ->
  ?clients:int ->
  ?servers:int ->
  ?topology:Clusterfs.Topology.kind ->
  ?ports_buffer:int ->
  Spec.t ->
  Report.t
(** Run the spec over NFS: a topology of [clients] (default 2) client
    nodes mounting [servers] (default 1) server machines (default
    config A), jobs round-robin across client mounts and servers (see
    {!Target.remote}).  [topology] picks the wiring (default
    point-to-point links) and [ports_buffer] sizes the switch's
    output-port buffers when it is {!Clusterfs.Topology.Switched}. *)

type gather_point = {
  clients : int;
  write_rpcs : int;  (** WRITE RPCs the server applied *)
  disk_writes : int;  (** write I/Os the server disk serviced *)
  blocks_per_disk_write : float;  (** 8 KB blocks per disk write *)
  gather_kb_mean : float;  (** mean client WRITE payload, KB *)
  elapsed : Sim.Time.t;
}

val register_gather : gather_point -> unit
(** Register the point as a ["fio"]-layer metrics source (instance
    ["write-gather.<n>c"]) into the current sink, if one is installed.
    {!write_gather} already calls this. *)

val write_gather : ?config:Clusterfs.Config.t -> clients:int -> unit -> gather_point
(** The server-side write-gathering ablation: [clients] nodes each
    write one file sequentially (8 KB ops, 2 MB per job) through their
    own mount, so cluster-sized WRITE RPCs from different files
    interleave at the server.  The point records how well the server's
    own write path (delayed writes + clustering) keeps the interleaved
    streams forming full-cluster disk writes. *)
