(** Declarative workload specifications, modeled on fio's job files.

    A spec is a flat set of [key=value] assignments:

    {v
    name=db-oltp file=oltp rw=randrw rwmixread=70 bs=4k size=4m
    iodepth=4 numjobs=2 think=0 seed=7
    v}

    Whitespace (spaces or newlines) separates assignments; [#] starts a
    comment running to end of line.  Sizes ([bs], [size], [stride])
    accept [k]/[m]/[g] binary suffixes.

    Keys:
    - [rw]: [read] | [write] | [randread] | [randwrite] | [rw] |
      [randrw] — direction and access pattern, as in fio
    - [rwmixread]: percent of ops that are reads for [rw]/[randrw]
      (default 50)
    - [bs]: bytes per op (default 8k)
    - [size]: total bytes each job covers (default 1m)
    - [stride]: for sequential patterns, advance this many bytes per op
      instead of [bs] (0 = plain sequential)
    - [iodepth]: concurrent ops in flight per job (default 1)
    - [numjobs]: identical jobs, each on its own file [<file>.<j>]
      (default 1)
    - [share]: [1] makes every job operate on one shared file named
      [<file>] instead of a private [<file>.<j>] (default 0) — how
      interleaved multi-stream workloads against a single file are
      expressed
    - [offset_increment]: with [share=1], job [j]'s ops are shifted by
      [j * offset_increment] bytes, giving each job a disjoint region
      of the shared file (default 0 — all jobs cover the same bytes)
    - [think]: mean think time between ops, microseconds, exponentially
      distributed (default 0)
    - [seed]: base of every random stream the spec uses (default 0)
    - [name], [file]: labels; [file] names the target file (a single
      path component — job [j] works on [<file>.<j>]) *)

type dir =
  | Read
  | Write
  | Mix of int  (** percent of ops that are reads, 0..100 *)

type pattern = Seq | Rand

type t = {
  name : string;
  file : string;
  dir : dir;
  pattern : pattern;
  stride : int;  (** bytes; 0 = none (sequential advances by [bs]) *)
  bs : int;
  size : int;
  iodepth : int;
  numjobs : int;
  share : bool;  (** all jobs operate on one shared file *)
  offset_increment : int;  (** per-job base offset = job * this *)
  think_us : int;
  seed : int;
}

val default : t
(** [name=job file=fio rw=read bs=8k size=1m stride=0 iodepth=1
    numjobs=1 think=0 seed=0]. *)

val ops_per_job : t -> int
(** [max 1 (size / bs)]. *)

val span : t -> int
(** Bytes the whole job table covers inside one shared file:
    [(numjobs - 1) * offset_increment + size].  Equals [size] when
    nothing is shared or shifted. *)

val to_string : t -> string
(** One-line canonical form; {!parse} o {!to_string} is the identity on
    valid specs. *)

val parse : string -> (t, string) result
(** Parse a spec, starting from {!default} for unassigned keys.
    Unknown keys, malformed assignments and invalid values (zero block
    size, [size < bs], …) are errors. *)
