type job_result = {
  job : int;
  read_ops : int;
  write_ops : int;
  bytes : int;
  wall_us : Sim.Time.t;
  lat_us : int array;
  fsync_us : Sim.Time.t;
  cost : (string * Sim.Time.t) list;
  lat_total_us : Sim.Time.t;
}

(* One lane: pull the next op off the job's shared cursor, run it under
   a fresh attribution clock, record latency by op index (so results
   are identical whatever order lanes interleave in), think, repeat. *)
let lane (tgt : Target.t) (s : Spec.t) ~job ~lane:lane_id ~(file : Target.file)
    ~ops ~cursor ~lat ~job_clock ~read_ops ~write_ops ~bytes () =
  let engine = tgt.Target.engine in
  let buf = Bytes.create s.Spec.bs in
  let think = Stream.think_rng s ~job ~lane:lane_id in
  let track = Printf.sprintf "fio.job%d/lane%d" job lane_id in
  while !cursor < Array.length ops do
    let op = ops.(!cursor) in
    incr cursor;
    let clk = Sim.Attrib.create () in
    let t0 = Sim.Engine.now engine in
    (* each op is the root of its own trace: everything below —
       UFS or NFS client, RPC, server, disk — hangs off this span *)
    Sim.Span.root
      ~name:(match op.Stream.kind with
            | Stream.R -> "fio.read"
            | Stream.W -> "fio.write")
      ~track
      ~attrs:
        [
          ("index", Sim.Span.I op.Stream.index);
          ("off", Sim.Span.I op.Stream.off);
          ("len", Sim.Span.I op.Stream.len);
        ]
      (fun () ->
        match op.Stream.kind with
        | Stream.R ->
            let n =
              Sim.Attrib.with_clock clk (fun () ->
                  file.Target.read ~off:op.Stream.off ~buf ~len:op.Stream.len)
            in
            incr read_ops;
            bytes := !bytes + n
        | Stream.W ->
            Stream.fill s ~job ~off:op.Stream.off buf ~len:op.Stream.len;
            Sim.Attrib.with_clock clk (fun () ->
                file.Target.write ~off:op.Stream.off ~buf ~len:op.Stream.len);
            incr write_ops;
            bytes := !bytes + op.Stream.len);
    lat.(op.Stream.index) <- Sim.Engine.now engine - t0;
    Sim.Attrib.merge_into ~dst:job_clock clk;
    if s.Spec.think_us > 0 then
      Sim.Engine.sleep engine
        (int_of_float
           (Sim.Rng.exponential think ~mean:(float_of_int s.Spec.think_us)))
  done

let run_job (tgt : Target.t) (s : Spec.t) ~job ~(file : Target.file) =
  let engine = tgt.Target.engine in
  let ops = Stream.ops s ~job in
  let cursor = ref 0 in
  let lat = Array.make (Array.length ops) 0 in
  let job_clock = Sim.Attrib.create () in
  let read_ops = ref 0 and write_ops = ref 0 and bytes = ref 0 in
  let t0 = Sim.Engine.now engine in
  let lanes = min s.Spec.iodepth (Array.length ops) in
  let lanes_done = ref 0 in
  let join = Sim.Condition.create engine (Printf.sprintf "fio.job%d" job) in
  for l = 0 to lanes - 1 do
    Sim.Engine.spawn engine
      ~name:(Printf.sprintf "fio.j%d.l%d" job l)
      (fun () ->
        lane tgt s ~job ~lane:l ~file ~ops ~cursor ~lat ~job_clock ~read_ops
          ~write_ops ~bytes ();
        incr lanes_done;
        Sim.Condition.broadcast join)
  done;
  while !lanes_done < lanes do
    Sim.Condition.wait join
  done;
  (* the closing fsync drains the job's asynchronous writes inside the
     measured window, charged like one more op *)
  let fclk = Sim.Attrib.create () in
  let tf = Sim.Engine.now engine in
  Sim.Span.root ~name:"fio.fsync"
    ~track:(Printf.sprintf "fio.job%d/fsync" job)
    (fun () -> Sim.Attrib.with_clock fclk (fun () -> file.Target.fsync ()));
  let fsync_us = Sim.Engine.now engine - tf in
  Sim.Attrib.merge_into ~dst:job_clock fclk;
  let lat_total_us = Array.fold_left ( + ) fsync_us lat in
  {
    job;
    read_ops = !read_ops;
    write_ops = !write_ops;
    bytes = !bytes;
    wall_us = Sim.Engine.now engine - t0;
    lat_us = lat;
    fsync_us;
    cost = Sim.Attrib.read job_clock;
    lat_total_us;
  }

let execute (tgt : Target.t) (s : Spec.t) =
  let engine = tgt.Target.engine in
  let files =
    Array.init s.Spec.numjobs (fun job -> tgt.Target.prepare ~job s)
  in
  let results = Array.make s.Spec.numjobs None in
  let jobs_done = ref 0 in
  let join = Sim.Condition.create engine "fio.jobs" in
  Array.iteri
    (fun job file ->
      Sim.Engine.spawn engine
        ~name:(Printf.sprintf "fio.job%d" job)
        (fun () ->
          results.(job) <- Some (run_job tgt s ~job ~file);
          incr jobs_done;
          Sim.Condition.broadcast join))
    files;
  while !jobs_done < s.Spec.numjobs do
    Sim.Condition.wait join
  done;
  Array.to_list (Array.map Option.get results)
