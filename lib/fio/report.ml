type t = {
  spec : Spec.t;
  target : string;
  jobs : Run.job_result list;
}

let make spec ~target jobs = { spec; target; jobs }

let floats_of (j : Run.job_result) =
  Array.map float_of_int j.Run.lat_us

let job_percentile (j : Run.job_result) p =
  if Array.length j.Run.lat_us = 0 then 0.
  else Sim.Stats.percentile (floats_of j) p

let pooled t =
  Array.concat (List.map floats_of t.jobs)

let aggregate_percentile t p =
  let all = pooled t in
  if Array.length all = 0 then 0. else Sim.Stats.percentile all p

let total_ops t =
  List.fold_left
    (fun acc (j : Run.job_result) -> acc + j.Run.read_ops + j.Run.write_ops)
    0 t.jobs

let total_bytes t =
  List.fold_left (fun acc (j : Run.job_result) -> acc + j.Run.bytes) 0 t.jobs

(* jobs start together, so the slowest job's wall time is the run's *)
let wall_us t =
  List.fold_left
    (fun acc (j : Run.job_result) -> max acc j.Run.wall_us)
    0 t.jobs

let iops t =
  let w = wall_us t in
  if w = 0 then 0.
  else float_of_int (total_ops t) /. Sim.Time.to_sec_float w

let bandwidth_kbps t =
  let w = wall_us t in
  if w = 0 then 0.
  else float_of_int (total_bytes t) /. 1024. /. Sim.Time.to_sec_float w

let cost_rows t =
  let tbl = Hashtbl.create 16 in
  let denom = ref 0 in
  List.iter
    (fun (j : Run.job_result) ->
      denom := !denom + j.Run.lat_total_us;
      List.iter
        (fun (phase, us) ->
          let cur =
            match Hashtbl.find_opt tbl phase with Some r -> r | None ->
              let r = ref 0 in
              Hashtbl.replace tbl phase r;
              r
          in
          cur := !cur + us)
        j.Run.cost)
    t.jobs;
  let charged = Hashtbl.fold (fun _ r acc -> acc + !r) tbl 0 in
  let rows =
    Hashtbl.fold (fun phase r acc -> (phase, !r) :: acc) tbl []
  in
  (* the remainder is time the op was not blocked anywhere we meter:
     its own CPU charges and client-cache copies *)
  let rows = ("client.cache", max 0 (!denom - charged)) :: rows in
  let pct us =
    if !denom = 0 then 0. else 100. *. float_of_int us /. float_of_int !denom
  in
  List.map (fun (phase, us) -> (phase, us, pct us))
    (List.sort
       (fun (pa, a) (pb, b) ->
         let c = compare b a in
         if c <> 0 then c else compare pa pb)
       rows)

(* ---------- text ---------- *)

let to_text t =
  let b = Buffer.create 1024 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "fio %s [%s]: %s\n" t.spec.Spec.name t.target (Spec.to_string t.spec);
  List.iter
    (fun (j : Run.job_result) ->
      let ops = j.Run.read_ops + j.Run.write_ops in
      let secs = Sim.Time.to_sec_float j.Run.wall_us in
      p
        "  job %d: %d ops (%dr/%dw), %.1f KB/s, %.0f iops, lat p50=%.0fus \
         p95=%.0fus p99=%.0fus, fsync=%dus\n"
        j.Run.job ops j.Run.read_ops j.Run.write_ops
        (if secs = 0. then 0. else float_of_int j.Run.bytes /. 1024. /. secs)
        (if secs = 0. then 0. else float_of_int ops /. secs)
        (job_percentile j 50.) (job_percentile j 95.) (job_percentile j 99.)
        j.Run.fsync_us)
    t.jobs;
  p "  aggregate: %d ops, %.1f KB/s, %.0f iops, lat p50=%.0fus p95=%.0fus \
     p99=%.0fus\n"
    (total_ops t) (bandwidth_kbps t) (iops t) (aggregate_percentile t 50.)
    (aggregate_percentile t 95.) (aggregate_percentile t 99.);
  p "  cost breakdown (%% of op time):\n";
  List.iter
    (fun (phase, us, pct) ->
      if us > 0 then p "    %-16s %8dus  %5.1f%%\n" phase us pct)
    (cost_rows t);
  Buffer.contents b

(* ---------- json ---------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jf f =
  if f <> f then "0"
  else if Float.is_integer f then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let to_json t =
  let b = Buffer.create 2048 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "{\"name\":\"%s\",\"target\":\"%s\",\"spec\":\"%s\",\n"
    (json_escape t.spec.Spec.name) (json_escape t.target)
    (json_escape (Spec.to_string t.spec));
  p
    "\"aggregate\":{\"ops\":%d,\"bytes\":%d,\"wall_us\":%d,\"iops\":%s,\"bw_kbps\":%s,\"lat_us\":{\"p50\":%s,\"p95\":%s,\"p99\":%s}},\n"
    (total_ops t) (total_bytes t) (wall_us t) (jf (iops t))
    (jf (bandwidth_kbps t))
    (jf (aggregate_percentile t 50.))
    (jf (aggregate_percentile t 95.))
    (jf (aggregate_percentile t 99.));
  p "\"jobs\":[";
  List.iteri
    (fun i (j : Run.job_result) ->
      if i > 0 then p ",";
      p
        "\n \
         {\"job\":%d,\"read_ops\":%d,\"write_ops\":%d,\"bytes\":%d,\"wall_us\":%d,\"fsync_us\":%d,\"lat_us\":{\"p50\":%s,\"p95\":%s,\"p99\":%s}}"
        j.Run.job j.Run.read_ops j.Run.write_ops j.Run.bytes j.Run.wall_us
        j.Run.fsync_us
        (jf (job_percentile j 50.))
        (jf (job_percentile j 95.))
        (jf (job_percentile j 99.)))
    t.jobs;
  p "],\n\"cost_pct\":{";
  List.iteri
    (fun i (phase, _us, pct) ->
      if i > 0 then p ",";
      p "\"%s\":%s" (json_escape phase) (jf pct))
    (cost_rows t);
  p "}}\n";
  Buffer.contents b

let register_metrics t reg ~instance =
  Sim.Metrics.register reg ~layer:"fio" ~instance (fun () ->
      let job_summaries =
        List.map
          (fun (j : Run.job_result) ->
            let s = Sim.Stats.Summary.create () in
            Array.iter
              (fun l -> Sim.Stats.Summary.add s (float_of_int l))
              j.Run.lat_us;
            ( Printf.sprintf "job%d_lat_us" j.Run.job,
              Sim.Metrics.Summary s ))
          t.jobs
      in
      let cost =
        List.filter_map
          (fun (phase, us, pct) ->
            if us = 0 then None
            else Some ("cost_" ^ phase ^ "_pct", Sim.Metrics.Float pct))
          (cost_rows t)
      in
      [
        ("ops", Sim.Metrics.Int (total_ops t));
        ("bytes", Sim.Metrics.Int (total_bytes t));
        ("wall_us", Sim.Metrics.Int (wall_us t));
        ("iops", Sim.Metrics.Float (iops t));
        ("bw_kbps", Sim.Metrics.Float (bandwidth_kbps t));
      ]
      @ job_summaries @ cost)
