type file = {
  read : off:int -> buf:bytes -> len:int -> int;
  write : off:int -> buf:bytes -> len:int -> unit;
  fsync : unit -> unit;
}

type t = {
  kind : string;
  engine : Sim.Engine.t;
  prepare : job:int -> Spec.t -> file;
}

let job_name (s : Spec.t) ~job = Printf.sprintf "%s.%d" s.Spec.file job

(* Write the job's deterministic contents in cluster-sized chunks —
   setup, not measurement, but still simulated I/O (the file must be
   laid out on the disk like any other). *)
let prewrite (s : Spec.t) ~job ~write ~fsync =
  let chunk = 64 * 1024 in
  let buf = Bytes.create chunk in
  let off = ref 0 in
  while !off < s.Spec.size do
    let n = min chunk (s.Spec.size - !off) in
    Stream.fill s ~job ~off:!off buf ~len:n;
    write ~off:!off ~buf ~len:n;
    off := !off + n
  done;
  fsync ()

let local (m : Clusterfs.Machine.t) =
  let fs = m.Clusterfs.Machine.fs in
  let prepare ~job (s : Spec.t) =
    let ip = Ufs.Fs.creat fs ("/" ^ job_name s ~job) in
    let read ~off ~buf ~len = Ufs.Fs.read fs ip ~off ~buf ~len in
    let write ~off ~buf ~len = Ufs.Fs.write fs ip ~off ~buf ~len in
    let fsync () = Ufs.Fs.fsync fs ip in
    if Stream.needs_data s then begin
      prewrite s ~job ~write ~fsync;
      Workload.Iobench.reset_file_state fs ip
    end;
    { read; write; fsync }
  in
  { kind = "local"; engine = m.Clusterfs.Machine.engine; prepare }

let remote (topo : Clusterfs.Topology.t) =
  let clients = topo.Clusterfs.Topology.clients in
  let n = Array.length clients in
  let prepare ~job (s : Spec.t) =
    let mount = clients.(job mod n).Clusterfs.Topology.mount in
    let f = Nfs.Client.create mount (job_name s ~job) in
    let read ~off ~buf ~len = Nfs.Client.read f ~off ~buf ~len in
    let write ~off ~buf ~len = Nfs.Client.write f ~off ~buf ~len in
    let fsync () = Nfs.Client.fsync f in
    if Stream.needs_data s then begin
      prewrite s ~job ~write ~fsync;
      (* cold client cache; the server's page cache stays warm — it is
         the mount's second-level cache, part of what NFS runs measure *)
      Nfs.Client.invalidate f
    end;
    { read; write; fsync }
  in
  {
    kind = "remote";
    engine = Clusterfs.Topology.engine topo;
    prepare;
  }
