type file = {
  read : off:int -> buf:bytes -> len:int -> int;
  write : off:int -> buf:bytes -> len:int -> unit;
  fsync : unit -> unit;
}

type t = {
  kind : string;
  engine : Sim.Engine.t;
  prepare : job:int -> Spec.t -> file;
}

(* A shared file is one file every job opens; private files carry the
   job number in their name. *)
let job_name (s : Spec.t) ~job =
  if s.Spec.share then s.Spec.file
  else Printf.sprintf "%s.%d" s.Spec.file job

(* Write [bytes] of deterministic contents in cluster-sized chunks —
   setup, not measurement, but still simulated I/O (the file must be
   laid out on the disk like any other). *)
let prewrite (s : Spec.t) ~job ~bytes ~write ~fsync =
  let chunk = 64 * 1024 in
  let buf = Bytes.create chunk in
  let off = ref 0 in
  while !off < bytes do
    let n = min chunk (bytes - !off) in
    Stream.fill s ~job ~off:!off buf ~len:n;
    write ~off:!off ~buf ~len:n;
    off := !off + n
  done;
  fsync ()

(* Whether this job does the data setup: every job of a private-file
   spec lays out its own file; with [share] job 0 prewrites the whole
   span once (jobs are prepared in order) and the rest just open it. *)
let prewrites (s : Spec.t) ~job =
  Stream.needs_data s && ((not s.Spec.share) || job = 0)

let local (m : Clusterfs.Machine.t) =
  let fs = m.Clusterfs.Machine.fs in
  let prepare ~job (s : Spec.t) =
    let path = "/" ^ job_name s ~job in
    let ip =
      (* jobs > 0 of a shared spec must not truncate what job 0 built *)
      if s.Spec.share && job > 0 then Ufs.Fs.namei fs path
      else Ufs.Fs.creat fs path
    in
    let read ~off ~buf ~len = Ufs.Fs.read fs ip ~off ~buf ~len in
    let write ~off ~buf ~len = Ufs.Fs.write fs ip ~off ~buf ~len in
    let fsync () = Ufs.Fs.fsync fs ip in
    if prewrites s ~job then begin
      prewrite s ~job ~bytes:(Spec.span s) ~write ~fsync;
      Workload.Iobench.reset_file_state fs ip
    end;
    { read; write; fsync }
  in
  { kind = "local"; engine = m.Clusterfs.Machine.engine; prepare }

let remote (topo : Clusterfs.Topology.t) =
  let clients = topo.Clusterfs.Topology.clients in
  let n = Array.length clients in
  let nsrv = Clusterfs.Topology.nservers topo in
  let prepare ~job (s : Spec.t) =
    (* a shared file lives behind one mount: all its jobs go through
       the same client cache, like processes sharing a kernel — and on
       one server, the one the namespace hash assigns the path.
       Private files round-robin over servers as well as clients, so a
       numjobs=8 spec on a 2-server fleet loads both machines *)
    let c = clients.((if s.Spec.share then 0 else job) mod n) in
    let mount =
      if s.Spec.share then Clusterfs.Topology.shard topo c (job_name s ~job)
      else Clusterfs.Topology.mount_of c ~server:(job mod nsrv)
    in
    let f =
      if s.Spec.share && job > 0 then
        match Nfs.Client.lookup mount (job_name s ~job) with
        | Some f -> f
        | None -> failwith "fio: shared file not prepared"
      else Nfs.Client.create mount (job_name s ~job)
    in
    let read ~off ~buf ~len = Nfs.Client.read f ~off ~buf ~len in
    let write ~off ~buf ~len = Nfs.Client.write f ~off ~buf ~len in
    let fsync () = Nfs.Client.fsync f in
    if prewrites s ~job then begin
      prewrite s ~job ~bytes:(Spec.span s) ~write ~fsync;
      (* cold client cache; the server's page cache stays warm — it is
         the mount's second-level cache, part of what NFS runs measure *)
      Nfs.Client.invalidate f
    end;
    { read; write; fsync }
  in
  {
    kind = "remote";
    engine = Clusterfs.Topology.engine topo;
    prepare;
  }
