(** Where a spec's ops land: a local UFS mount or an NFS client mount
    of a simulated topology, behind one closure-record interface so the
    runner is target-agnostic.

    Job [j] of a spec works on file [<spec.file>.<j>].  On a remote
    target, jobs are assigned to the topology's client mounts round
    robin ([j mod clients]) {e and}, on a multi-server fleet, to
    servers round robin ([j mod servers]), so one spec can load many
    client machines and every server.  A [share=1] spec instead puts
    its one file behind client 0's mount to whichever server the
    namespace hash ({!Clusterfs.Topology.shard}) assigns the path.

    All functions must run inside a simulation process. *)

type file = {
  read : off:int -> buf:bytes -> len:int -> int;
  write : off:int -> buf:bytes -> len:int -> unit;
  fsync : unit -> unit;
}

type t = {
  kind : string;  (** ["local"] or ["remote"], for reports *)
  engine : Sim.Engine.t;
  prepare : job:int -> Spec.t -> file;
      (** Create the job's file; when the spec can read
          ({!Stream.needs_data}), also write its [size] bytes of
          deterministic content ({!Stream.fill}) and drop the caches
          the target controls, so the measured phase starts cold. *)
}

val local : Clusterfs.Machine.t -> t
val remote : Clusterfs.Topology.t -> t
