(** Rendering a run: per-job and aggregate IOPS, bandwidth, latency
    percentiles, and the per-layer cost-attribution table.

    The cost table answers "where did the simulated op time go".  The
    denominator is the sum of every op's issue-to-completion latency
    (plus each job's closing fsync); the charged phases are what the
    ops' {!Sim.Attrib} clocks accumulated while blocked in each layer;
    the remainder — time the op spent on its own CPU, copying through
    the client cache — is the ["client.cache"] row.  By construction
    the rows sum to exactly 100%. *)

type t = {
  spec : Spec.t;
  target : string;  (** ["local"] or ["remote"] *)
  jobs : Run.job_result list;
}

val make : Spec.t -> target:string -> Run.job_result list -> t

val job_percentile : Run.job_result -> float -> float
(** Exact percentile of one job's op latencies, microseconds. *)

val aggregate_percentile : t -> float -> float
(** Exact percentile over all jobs' op latencies pooled. *)

val total_ops : t -> int

val wall_us : t -> Sim.Time.t
(** The slowest job's wall time (jobs start together). *)

val iops : t -> float
(** Total ops over the slowest job's wall time. *)

val bandwidth_kbps : t -> float
(** Total bytes moved over the slowest job's wall time, KB/s. *)

val cost_rows : t -> (string * Sim.Time.t * float) list
(** [(phase, charged_us, percent)] rows, percent of the attribution
    denominator, descending by time, ["client.cache"] holding the
    uncharged remainder.  Percents sum to 100 (up to rounding). *)

val to_text : t -> string

val to_json : t -> string
(** Self-contained JSON document: spec string, target, per-job and
    aggregate iops/bandwidth/latency percentiles, cost table. *)

val register_metrics : t -> Sim.Metrics.t -> instance:string -> unit
(** Register the run as a ["fio"] source: aggregate iops/bandwidth,
    per-job latency summaries (percentiles ride the Summary export)
    and per-phase cost percentages. *)
