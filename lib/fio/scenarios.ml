let mk s =
  match Spec.parse s with
  | Ok spec -> spec
  | Error e -> invalid_arg ("fio scenario: " ^ e)

let db_oltp =
  mk
    "name=db-oltp file=oltp rw=randrw rwmixread=70 bs=4k size=4m iodepth=4 \
     numjobs=2 seed=11"

let backup = mk "name=backup file=backup rw=read bs=1m size=16m seed=12"

let mixed =
  mk
    "name=mixed file=mixed rw=rw rwmixread=70 bs=8k size=8m iodepth=2 \
     numjobs=2 seed=13"

(* The interleaved pair and its one-stream baseline: same file size per
   stream, same think time (think makes each stream latency-bound, so a
   healthy per-stream predictor lets two streams overlap their stalls
   and the pair's aggregate bandwidth approaches twice the single's). *)
let ilv_single = mk "name=ilv-single file=ilv rw=read bs=8k size=4m think=20000 seed=21"

let ilv_pair =
  mk
    "name=ilv-pair file=ilv rw=read bs=8k size=4m numjobs=2 share=1 \
     offset_increment=4m think=20000 seed=21"

(* 64 KB stride: touches one block in eight, so cluster read-ahead is
   pure waste — the adaptive window should shrink rather than keep
   prefetching blocks the reader skips *)
let strided = mk "name=strided file=str rw=read bs=8k size=4m stride=64k seed=22"

let all = [ db_oltp; backup; mixed; ilv_single; ilv_pair; strided ]

let register report =
  match Clusterfs.Machine.current_metrics_sink () with
  | Some reg ->
      Report.register_metrics report reg
        ~instance:(report.Report.spec.Spec.name ^ "." ^ report.Report.target)
  | None -> ()

let run_local ?(config = Clusterfs.Config.config_a) spec =
  let m = Clusterfs.Machine.create config in
  let jobs =
    Clusterfs.Machine.run m (fun m -> Run.execute (Target.local m) spec)
  in
  let report = Report.make spec ~target:"local" jobs in
  register report;
  report

let run_remote ?(config = Clusterfs.Config.config_a) ?(clients = 2)
    ?(servers = 1) ?topology ?ports_buffer spec =
  let topo =
    Clusterfs.Topology.create ?topology ?ports_buffer ~servers ~clients config
  in
  let jobs =
    Clusterfs.Topology.run topo (fun topo ->
        Run.execute (Target.remote topo) spec)
  in
  let report = Report.make spec ~target:"remote" jobs in
  register report;
  report

(* ---------- server-side write-gathering ablation ---------- *)

type gather_point = {
  clients : int;
  write_rpcs : int;
  disk_writes : int;
  blocks_per_disk_write : float;
  gather_kb_mean : float;
  elapsed : Sim.Time.t;
}

let register_gather (g : gather_point) =
  match Clusterfs.Machine.current_metrics_sink () with
  | Some reg ->
      Sim.Metrics.register reg ~layer:"fio"
        ~instance:(Printf.sprintf "write-gather.%dc" g.clients)
        (fun () ->
          Sim.Metrics.
            [
              ("clients", Int g.clients);
              ("write_rpcs", Int g.write_rpcs);
              ("disk_writes", Int g.disk_writes);
              ("blocks_per_disk_write", Float g.blocks_per_disk_write);
              ("gather_kb_mean", Float g.gather_kb_mean);
              ("elapsed_us", Int g.elapsed);
            ])
  | None -> ()

let write_gather ?(config = Clusterfs.Config.config_a) ~clients () =
  let spec =
    mk
      (Printf.sprintf
         "name=write-gather file=wg rw=write bs=8k size=2m numjobs=%d seed=17"
         clients)
  in
  let topo = Clusterfs.Topology.create ~clients config in
  let jobs =
    Clusterfs.Topology.run topo (fun topo ->
        Run.execute (Target.remote topo) spec)
  in
  let report = Report.make spec ~target:"remote" jobs in
  let service = topo.Clusterfs.Topology.service in
  let write_rpcs = Nfs.Server.applied service "write" in
  let dst =
    Disk.Device.stats topo.Clusterfs.Topology.server.Clusterfs.Machine.disks.(0)
  in
  let disk_writes = dst.Disk.Device.writes in
  let sectors = dst.Disk.Device.sectors_written in
  let bsize_sectors = Ufs.Layout.bsize / 512 in
  let g =
    {
      clients;
      write_rpcs;
      disk_writes;
      blocks_per_disk_write =
        (if disk_writes = 0 then 0.
         else
           float_of_int sectors
           /. float_of_int bsize_sectors
           /. float_of_int disk_writes);
      gather_kb_mean =
        (if write_rpcs = 0 then 0.
         else
           float_of_int (clients * spec.Spec.size)
           /. 1024. /. float_of_int write_rpcs);
      elapsed = Report.wall_us report;
    }
  in
  register_gather g;
  g
