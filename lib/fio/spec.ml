type dir = Read | Write | Mix of int
type pattern = Seq | Rand

type t = {
  name : string;
  file : string;
  dir : dir;
  pattern : pattern;
  stride : int;
  bs : int;
  size : int;
  iodepth : int;
  numjobs : int;
  share : bool;  (** all jobs operate on one shared file *)
  offset_increment : int;  (** per-job base offset = job * this *)
  think_us : int;
  seed : int;
}

let default =
  {
    name = "job";
    file = "fio";
    dir = Read;
    pattern = Seq;
    stride = 0;
    bs = 8 * 1024;
    size = 1024 * 1024;
    iodepth = 1;
    numjobs = 1;
    share = false;
    offset_increment = 0;
    think_us = 0;
    seed = 0;
  }

let ops_per_job t = max 1 (t.size / t.bs)

(* Bytes the job table spans inside one shared file: the last job's
   base offset plus its region.  Equals [size] when nothing is shared
   or shifted. *)
let span t = ((t.numjobs - 1) * t.offset_increment) + t.size

(* ---------- printing ---------- *)

let rw_string t =
  match (t.dir, t.pattern) with
  | Read, Seq -> "read"
  | Write, Seq -> "write"
  | Read, Rand -> "randread"
  | Write, Rand -> "randwrite"
  | Mix _, Seq -> "rw"
  | Mix _, Rand -> "randrw"

let size_string n =
  let k = 1024 and m = 1024 * 1024 and g = 1024 * 1024 * 1024 in
  if n > 0 && n mod g = 0 then Printf.sprintf "%dg" (n / g)
  else if n > 0 && n mod m = 0 then Printf.sprintf "%dm" (n / m)
  else if n > 0 && n mod k = 0 then Printf.sprintf "%dk" (n / k)
  else string_of_int n

let to_string t =
  let mix =
    match t.dir with Mix p -> Printf.sprintf " rwmixread=%d" p | _ -> ""
  in
  (* non-default keys only: specs that never share keep their old
     canonical form (and their old report/metric labels) *)
  let share = if t.share then " share=1" else "" in
  let oi =
    if t.offset_increment > 0 then
      Printf.sprintf " offset_increment=%s" (size_string t.offset_increment)
    else ""
  in
  Printf.sprintf
    "name=%s file=%s rw=%s%s bs=%s size=%s stride=%s iodepth=%d numjobs=%d%s%s \
     think=%d seed=%d"
    t.name t.file (rw_string t) mix (size_string t.bs) (size_string t.size)
    (size_string t.stride) t.iodepth t.numjobs share oi t.think_us t.seed

(* ---------- parsing ---------- *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let parse_size key v =
  let n = String.length v in
  if n = 0 then bad "%s: empty size" key;
  let mult, digits =
    match v.[n - 1] with
    | 'k' | 'K' -> (1024, String.sub v 0 (n - 1))
    | 'm' | 'M' -> (1024 * 1024, String.sub v 0 (n - 1))
    | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub v 0 (n - 1))
    | _ -> (1, v)
  in
  match int_of_string_opt digits with
  | Some d when d >= 0 -> d * mult
  | _ -> bad "%s: bad size %S" key v

let parse_int key v =
  match int_of_string_opt v with
  | Some d -> d
  | None -> bad "%s: bad integer %S" key v

let strip_comments s =
  let b = Buffer.create (String.length s) in
  let in_comment = ref false in
  String.iter
    (fun c ->
      if c = '#' then in_comment := true
      else if c = '\n' then begin
        in_comment := false;
        Buffer.add_char b '\n'
      end
      else if not !in_comment then Buffer.add_char b c)
    s;
  Buffer.contents b

let tokens s =
  String.split_on_char '\n' (strip_comments s)
  |> List.concat_map (String.split_on_char ' ')
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun tok -> tok <> "")

let parse s =
  try
    (* [rw] fixes direction+pattern; [rwmixread] refines a mixed
       direction whichever order the two keys appear in *)
    let rwmix = ref None in
    let spec =
      List.fold_left
        (fun acc tok ->
          match String.index_opt tok '=' with
          | None -> bad "expected key=value, got %S" tok
          | Some i -> (
              let key = String.sub tok 0 i in
              let v = String.sub tok (i + 1) (String.length tok - i - 1) in
              match key with
              | "name" -> { acc with name = v }
              | "file" -> { acc with file = v }
              | "rw" -> (
                  match v with
                  | "read" -> { acc with dir = Read; pattern = Seq }
                  | "write" -> { acc with dir = Write; pattern = Seq }
                  | "randread" -> { acc with dir = Read; pattern = Rand }
                  | "randwrite" -> { acc with dir = Write; pattern = Rand }
                  | "rw" | "readwrite" -> { acc with dir = Mix 50; pattern = Seq }
                  | "randrw" -> { acc with dir = Mix 50; pattern = Rand }
                  | _ -> bad "rw: unknown mode %S" v)
              | "rwmixread" ->
                  rwmix := Some (parse_int key v);
                  acc
              | "bs" -> { acc with bs = parse_size key v }
              | "size" -> { acc with size = parse_size key v }
              | "stride" -> { acc with stride = parse_size key v }
              | "iodepth" -> { acc with iodepth = parse_int key v }
              | "numjobs" -> { acc with numjobs = parse_int key v }
              | "share" -> (
                  match v with
                  | "0" -> { acc with share = false }
                  | "1" -> { acc with share = true }
                  | _ -> bad "share: expected 0 or 1, got %S" v)
              | "offset_increment" ->
                  { acc with offset_increment = parse_size key v }
              | "think" -> { acc with think_us = parse_int key v }
              | "seed" -> { acc with seed = parse_int key v }
              | _ -> bad "unknown key %S" key))
        default (tokens s)
    in
    let spec =
      match (spec.dir, !rwmix) with
      | Mix _, Some p ->
          if p < 0 || p > 100 then bad "rwmixread: %d out of [0,100]" p;
          { spec with dir = Mix p }
      | Mix _, None -> spec
      | _, Some _ -> bad "rwmixread only applies to rw=rw / rw=randrw"
      | _, None -> spec
    in
    if spec.bs <= 0 then bad "bs must be positive";
    if spec.size < spec.bs then bad "size must be at least one block";
    if spec.stride < 0 then bad "stride must be non-negative";
    if spec.iodepth < 1 then bad "iodepth must be at least 1";
    if spec.numjobs < 1 then bad "numjobs must be at least 1";
    if spec.offset_increment < 0 then bad "offset_increment must be non-negative";
    if spec.offset_increment > 0 && not spec.share then
      bad "offset_increment requires share=1 (per-job files are already disjoint)";
    if spec.think_us < 0 then bad "think must be non-negative";
    if spec.name = "" || spec.file = "" then bad "name and file must be set";
    Ok spec
  with Bad e -> Error e
