type kind = R | W

type op = { index : int; kind : kind; off : int; len : int }

(* Distinct deterministic sub-seeds: SplitMix-style mixing of the base
   seed with fixed per-purpose tags keeps the offset, direction, think
   and payload streams independent of one another. *)
let sub_seed base tag job = (base * 0x9e3779b9) lxor (tag * 0x85ebca6b) lxor job

let needs_data (s : Spec.t) =
  match s.Spec.dir with Spec.Read | Spec.Mix _ -> true | Spec.Write -> false

let ops (s : Spec.t) ~job =
  let n = Spec.ops_per_job s in
  let blocks = max 1 (s.Spec.size / s.Spec.bs) in
  let region = blocks * s.Spec.bs in
  (* sharing a file: each job works its own region of it *)
  let base = job * s.Spec.offset_increment in
  let off_rng = Sim.Rng.create ~seed:(sub_seed s.Spec.seed 1 job) in
  let dir_rng = Sim.Rng.create ~seed:(sub_seed s.Spec.seed 2 job) in
  let step = if s.Spec.stride > 0 then s.Spec.stride else s.Spec.bs in
  Array.init n (fun i ->
      let off =
        match s.Spec.pattern with
        | Spec.Seq ->
            let off = i * step mod region in
            (* a non-block stride can land past the last whole block *)
            min off (s.Spec.size - s.Spec.bs)
        | Spec.Rand -> Sim.Rng.int off_rng blocks * s.Spec.bs
      in
      let off = base + off in
      let kind =
        match s.Spec.dir with
        | Spec.Read -> R
        | Spec.Write -> W
        | Spec.Mix p ->
            (* draw unconditionally: the direction stream must advance
               identically whatever [p] is *)
            if Sim.Rng.int dir_rng 100 < p then R else W
      in
      { index = i; kind; off; len = s.Spec.bs })

let fill (s : Spec.t) ~job ~off buf ~len =
  let base = sub_seed s.Spec.seed 3 job land 0xff in
  for k = 0 to len - 1 do
    let v = (base + ((off + k) * 131)) land 0xff in
    Bytes.unsafe_set buf k (Char.unsafe_chr v)
  done

let think_rng (s : Spec.t) ~job ~lane =
  Sim.Rng.create ~seed:(sub_seed s.Spec.seed 4 ((job * 1024) + lane))
