(** Lowering a {!Spec} into per-job op streams.

    Everything here is a pure function of (spec, job index): two
    processes lowering the same spec see byte-identical streams, which
    is what makes local-vs-remote content checks and seeded-determinism
    tests possible. *)

type kind = R | W

type op = { index : int; kind : kind; off : int; len : int }

val ops : Spec.t -> job:int -> op array
(** The job's full op stream: {!Spec.ops_per_job} ops of [spec.bs]
    bytes each, offsets from the spec's pattern (sequential, strided or
    uniform block-aligned random over [0, size)), directions from the
    read/write mix — all drawn from streams seeded by
    [(spec.seed, job)]. *)

val needs_data : Spec.t -> bool
(** Whether the stream can read ([dir] is [Read] or [Mix]) and the
    file must therefore exist with [size] bytes of content before the
    measured phase. *)

val fill : Spec.t -> job:int -> off:int -> bytes -> len:int -> unit
(** Deterministic payload for the write at [off]: a function of
    (seed, job, absolute byte offset) only, so any target executing the
    same spec produces identical file contents. *)

val think_rng : Spec.t -> job:int -> lane:int -> Sim.Rng.t
(** The think-time stream of one lane of one job. *)
