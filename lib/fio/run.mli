(** Executing a spec against a target: the job compiler.

    Each job becomes one controller process that spawns [iodepth]
    lanes; the lanes share the job's op cursor, so together they keep
    up to [iodepth] ops in flight while preserving the spec's op order
    at issue time.  Every op runs under its own {!Sim.Attrib} clock —
    the layers the op blocks in (disk queue/seek/rot/xfer, RPC window,
    wire, nfsd queue and CPU, dirty-cap throttle) charge it — and the
    clocks are merged per job for the report's cost-breakdown table.

    Must be called inside a simulation process ({!Clusterfs.Machine.run}
    or {!Clusterfs.Topology.run} provide one). *)

type job_result = {
  job : int;
  read_ops : int;
  write_ops : int;
  bytes : int;  (** actually moved (reads can come up short at EOF) *)
  wall_us : Sim.Time.t;  (** measured-phase start to after final fsync *)
  lat_us : int array;  (** per-op issue-to-completion, in op order *)
  fsync_us : Sim.Time.t;  (** the job's closing fsync *)
  cost : (string * Sim.Time.t) list;
      (** merged per-phase charges, ops + closing fsync *)
  lat_total_us : Sim.Time.t;
      (** attribution denominator: Σ op latencies + closing fsync *)
}

val execute : Target.t -> Spec.t -> job_result list
(** Prepare every job's file (untimed), then run all jobs concurrently
    and return per-job results in job order. *)
