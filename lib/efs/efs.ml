let bsize = Ufs.Layout.bsize
let sectors_per_block = bsize / 512

type extent = { lbn : int; sector : int; blocks : int }

type file = {
  vid : int;
  mutable fname : string;
  mutable fsize : int;
  mutable extents : extent list; (* ascending lbn *)
  mutable nextr : int; (* sequential-read predictor, bytes *)
  mutable nextrio : int; (* start of the last prefetched extent, bytes *)
  mutable dirty_from : int; (* delayed-write accumulator, bytes *)
  mutable dirty_len : int;
  mutable outstanding : int;
  iodone : Sim.Condition.t;
}

type stats = {
  mutable read_calls : int;
  mutable write_calls : int;
  mutable extent_ins : int;  (** extent-sized read requests issued *)
  mutable extent_in_blocks : int;
  mutable ra_extents : int;  (** of which asynchronous read-ahead *)
  mutable ra_used_blocks : int;
  mutable push_ios : int;
  mutable push_blocks : int;
  mutable extent_allocs : int;
}

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  pool : Vm.Pool.t;
  dev : Disk.Blkdev.t;
  extent_blocks : int;
  costs : Ufs.Costs.t;
  files : (string, file) Hashtbl.t;
  mutable next_vid : int;
  (* first-fit free list of (sector, sectors), ascending *)
  mutable free : (int * int) list;
  stats : stats;
}

let charge t ~label d = Sim.Cpu.charge t.cpu ~label d

let create engine cpu pool dev ~extent_kb ?(costs = Ufs.Costs.default) () =
  if extent_kb <= 0 || extent_kb * 1024 mod bsize <> 0 then
    invalid_arg "Efs.create: extent size must be a positive multiple of 8KB";
  let total_sectors = Disk.Blkdev.capacity_bytes dev / 512 in
  {
    engine;
    cpu;
    pool;
    dev;
    extent_blocks = extent_kb * 1024 / bsize;
    costs;
    files = Hashtbl.create 64;
    next_vid = 1_000_000 (* clear of any UFS inode numbers on the pool *);
    free = [ (0, total_sectors) ];
    stats =
      {
        read_calls = 0;
        write_calls = 0;
        extent_ins = 0;
        extent_in_blocks = 0;
        ra_extents = 0;
        ra_used_blocks = 0;
        push_ios = 0;
        push_blocks = 0;
        extent_allocs = 0;
      };
  }

let stats t = t.stats

let register_metrics t reg ~instance =
  Sim.Metrics.register reg ~layer:"efs" ~instance (fun () ->
      let s = t.stats in
      Sim.Metrics.
        [
          ("read_calls", Int s.read_calls);
          ("write_calls", Int s.write_calls);
          ("extent_ins", Int s.extent_ins);
          ("extent_in_blocks", Int s.extent_in_blocks);
          ("ra_extents", Int s.ra_extents);
          ("ra_used_blocks", Int s.ra_used_blocks);
          ("push_ios", Int s.push_ios);
          ("push_blocks", Int s.push_blocks);
          ("extent_allocs", Int s.extent_allocs);
          ("files", Int (Hashtbl.length t.files));
          ("free_segments", Int (List.length t.free));
        ])

(* ---------- extent allocation (first fit) ---------- *)

let alloc_sectors t n =
  charge t ~label:"alloc" t.costs.Ufs.Costs.alloc_block;
  t.stats.extent_allocs <- t.stats.extent_allocs + 1;
  let rec take acc = function
    | [] -> Vfs.Errno.raise_err Vfs.Errno.ENOSPC "efs: no free extent"
    | (s, len) :: rest when len >= n ->
        let remainder = if len = n then [] else [ (s + n, len - n) ] in
        t.free <- List.rev_append acc (remainder @ rest);
        s
    | seg :: rest -> take (seg :: acc) rest
  in
  take [] t.free

let free_sectors t sector n =
  (* insert and coalesce *)
  let rec insert = function
    | [] -> [ (sector, n) ]
    | (s, len) :: rest when sector < s -> (sector, n) :: (s, len) :: rest
    | seg :: rest -> seg :: insert rest
  in
  let rec coalesce = function
    | (a, la) :: (b, lb) :: rest when a + la = b -> coalesce ((a, la + lb) :: rest)
    | seg :: rest -> seg :: coalesce rest
    | [] -> []
  in
  t.free <- coalesce (insert t.free)

(* ---------- mapping ---------- *)

(* O(#extents) walk: the cost structure the paper notes for extent maps *)
let map_lookup t f lbn =
  charge t ~label:"emap" (Sim.Time.us (10 + (2 * List.length f.extents)));
  List.find_opt
    (fun e -> lbn >= e.lbn && lbn < e.lbn + e.blocks)
    f.extents

(* the extent containing lbn, allocating it (and nothing else: holes are
   legal) when missing *)
let map_ensure t f lbn =
  match map_lookup t f lbn with
  | Some e -> e
  | None ->
      let base = lbn - (lbn mod t.extent_blocks) in
      let sector = alloc_sectors t (t.extent_blocks * sectors_per_block) in
      let e = { lbn = base; sector; blocks = t.extent_blocks } in
      f.extents <-
        List.sort (fun a b -> compare a.lbn b.lbn) (e :: f.extents);
      e

(* ---------- page I/O in extent units ---------- *)

let ident f off : Vm.Page.ident = { Vm.Page.vid = f.vid; off }

let charge_io t =
  charge t ~label:"driver" (t.costs.Ufs.Costs.driver_submit + t.costs.Ufs.Costs.intr)

(* read the whole extent [e] into the cache with one request *)
let extent_in t f (e : extent) ~sync =
  let mine = ref [] in
  for k = 0 to e.blocks - 1 do
    let off = (e.lbn + k) * bsize in
    match Vm.Pool.lookup t.pool (ident f off) with
    | Some _ -> ()
    | None -> (
        match Vm.Pool.alloc t.pool (ident f off) with
        | `Fresh p ->
            charge t ~label:"getpage" t.costs.Ufs.Costs.page_setup;
            mine := (p, k) :: !mine
        | `Existing _ -> ())
  done;
  match !mine with
  | [] -> ()
  | mine ->
      let bytes = e.blocks * bsize in
      let buf = Bytes.create bytes in
      let req =
        Disk.Request.make ~kind:Disk.Request.Read ~sector:e.sector
          ~count:(e.blocks * sectors_per_block) ~buf ~buf_off:0 ()
      in
      Disk.Request.on_complete req (fun () ->
          List.iter
            (fun ((p : Vm.Page.t), k) ->
              Bytes.blit buf (k * bsize) p.Vm.Page.data 0 bsize;
              Vm.Page.set_valid p true;
              Vm.Page.unbusy p)
            mine);
      charge_io t;
      t.stats.extent_ins <- t.stats.extent_ins + 1;
      t.stats.extent_in_blocks <- t.stats.extent_in_blocks + e.blocks;
      if not sync then begin
        t.stats.ra_extents <- t.stats.ra_extents + 1;
        List.iter (fun ((p : Vm.Page.t), _) -> Vm.Page.set_prefetched p true) mine
      end;
      Disk.Blkdev.submit t.dev req;
      if sync then Disk.Request.wait t.engine req

(* write back the dirty byte range with one request per covered extent *)
let push_range t f ~from ~len =
  let rec per_extent off =
    if off < from + len then begin
      match map_lookup t f (off / bsize) with
      | None -> per_extent (off + bsize)
      | Some e ->
          (* collect consecutive dirty pages of this extent *)
          let first_blk = off / bsize in
          let last_blk = min ((from + len - 1) / bsize) (e.lbn + e.blocks - 1) in
          let pages = ref [] in
          for b = first_blk to last_blk do
            match Vm.Pool.lookup t.pool (ident f (b * bsize)) with
            | Some p
              when p.Vm.Page.valid && p.Vm.Page.dirty && not p.Vm.Page.busy ->
                pages := (p, b) :: !pages
            | Some _ | None -> ()
          done;
          (match List.rev !pages with
          | [] -> ()
          | pages ->
              let nblocks = List.length pages in
              let buf = Bytes.create (nblocks * bsize) in
              List.iteri
                (fun k ((p : Vm.Page.t), _) ->
                  Bytes.blit p.Vm.Page.data 0 buf (k * bsize) bsize;
                  assert (Vm.Page.try_lock p))
                pages;
              let _, blk0 = List.hd pages in
              let sector = e.sector + ((blk0 - e.lbn) * sectors_per_block) in
              let req =
                Disk.Request.make ~kind:Disk.Request.Write ~sector
                  ~count:(nblocks * sectors_per_block) ~buf ~buf_off:0 ()
              in
              f.outstanding <- f.outstanding + nblocks;
              t.stats.push_ios <- t.stats.push_ios + 1;
              t.stats.push_blocks <- t.stats.push_blocks + nblocks;
              Disk.Request.on_complete req (fun () ->
                  f.outstanding <- f.outstanding - nblocks;
                  List.iter
                    (fun ((p : Vm.Page.t), _) ->
                      Vm.Page.set_dirty p false;
                      Vm.Page.unbusy p)
                    pages;
                  Sim.Condition.broadcast f.iodone);
              charge_io t;
              Disk.Blkdev.submit t.dev req);
          per_extent ((last_blk + 1) * bsize)
    end
  in
  per_extent (from - (from mod bsize))

let flush_delayed t f =
  if f.dirty_len > 0 then begin
    let from = f.dirty_from and len = f.dirty_len in
    f.dirty_from <- 0;
    f.dirty_len <- 0;
    push_range t f ~from ~len
  end

(* ---------- public API ---------- *)

let mk_file t name =
  t.next_vid <- t.next_vid + 1;
  {
    vid = t.next_vid;
    fname = name;
    fsize = 0;
    extents = [];
    nextr = 0;
    nextrio = 0;
    dirty_from = 0;
    dirty_len = 0;
    outstanding = 0;
    iodone = Sim.Condition.create t.engine ("efs-" ^ name);
  }

let wait_writes f =
  while f.outstanding > 0 do
    Sim.Condition.wait f.iodone
  done

let release_file t f =
  wait_writes f;
  Vm.Pool.invalidate_vnode t.pool f.vid;
  List.iter
    (fun e -> free_sectors t e.sector (e.blocks * sectors_per_block))
    f.extents;
  f.extents <- [];
  f.fsize <- 0

let creat t name =
  charge t ~label:"syscall" t.costs.Ufs.Costs.syscall;
  match Hashtbl.find_opt t.files name with
  | Some f ->
      release_file t f;
      f
  | None ->
      let f = mk_file t name in
      Hashtbl.replace t.files name f;
      f

let lookup t name =
  match Hashtbl.find_opt t.files name with
  | Some f -> f
  | None -> Vfs.Errno.raise_err Vfs.Errno.ENOENT name

let size f = f.fsize

let delete t name =
  let f = lookup t name in
  flush_delayed t f;
  release_file t f;
  Hashtbl.remove t.files name

let fsync t f =
  flush_delayed t f;
  wait_writes f

let reset_readahead t f =
  fsync t f;
  Vm.Pool.invalidate_vnode t.pool f.vid;
  f.nextr <- 0;
  f.nextrio <- 0

(* find-or-create the cache page at [off]; zero-fill fresh pages *)
let consume_prefetch t (p : Vm.Page.t) =
  if p.Vm.Page.prefetched then begin
    t.stats.ra_used_blocks <- t.stats.ra_used_blocks + 1;
    Vm.Page.set_prefetched p false
  end

let rec grab_page t f off =
  match Vm.Pool.lookup t.pool (ident f off) with
  | Some p when p.Vm.Page.busy ->
      Vm.Page.wait_unbusy t.engine p;
      grab_page t f off
  | Some p when p.Vm.Page.valid ->
      consume_prefetch t p;
      p
  | Some _ | None -> (
      match Vm.Pool.alloc t.pool (ident f off) with
      | `Fresh p ->
          charge t ~label:"getpage" t.costs.Ufs.Costs.page_setup;
          Bytes.fill p.Vm.Page.data 0 bsize '\000';
          Vm.Page.set_valid p true;
          Vm.Page.unbusy p;
          p
      | `Existing _ -> grab_page t f off)

let write t f ~off ~buf ~len =
  charge t ~label:"syscall" t.costs.Ufs.Costs.syscall;
  t.stats.write_calls <- t.stats.write_calls + 1;
  let pos = ref 0 in
  while !pos < len do
    let o = off + !pos in
    let po = o - (o mod bsize) in
    let n = min (len - !pos) (bsize - (o - po)) in
    ignore (map_ensure t f (po / bsize));
    let page = grab_page t f po in
    charge t ~label:"rdwr" (t.costs.Ufs.Costs.map_block + t.costs.Ufs.Costs.fault);
    charge t ~label:"copy" (Ufs.Costs.copy_cost t.costs ~bytes:n);
    Bytes.blit buf !pos page.Vm.Page.data (o - po) n;
    Vm.Page.set_dirty page true;
    f.fsize <- max f.fsize (o + n);
    (* delayed writes flush one extent at a time *)
    if f.dirty_len = 0 then begin
      f.dirty_from <- po;
      f.dirty_len <- bsize
    end
    else if po = f.dirty_from + f.dirty_len then f.dirty_len <- f.dirty_len + bsize
    else if po >= f.dirty_from && po < f.dirty_from + f.dirty_len then ()
    else begin
      flush_delayed t f;
      f.dirty_from <- po;
      f.dirty_len <- bsize
    end;
    if f.dirty_len >= t.extent_blocks * bsize then flush_delayed t f;
    pos := !pos + n
  done

let rec wait_valid t f po =
  match Vm.Pool.lookup t.pool (ident f po) with
  | Some p when p.Vm.Page.busy ->
      Vm.Page.wait_unbusy t.engine p;
      wait_valid t f po
  | Some p when p.Vm.Page.valid ->
      consume_prefetch t p;
      Some p
  | Some _ | None -> None

let read t f ~off ~buf ~len =
  charge t ~label:"syscall" t.costs.Ufs.Costs.syscall;
  t.stats.read_calls <- t.stats.read_calls + 1;
  let len = max 0 (min len (f.fsize - off)) in
  let pos = ref 0 in
  while !pos < len do
    let o = off + !pos in
    let po = o - (o mod bsize) in
    let n = min (len - !pos) (bsize - (o - po)) in
    charge t ~label:"rdwr" (t.costs.Ufs.Costs.map_block + t.costs.Ufs.Costs.fault);
    (match wait_valid t f po with
    | Some p ->
        charge t ~label:"copy" (Ufs.Costs.copy_cost t.costs ~bytes:n);
        Bytes.blit p.Vm.Page.data (o - po) buf !pos n;
        Vm.Page.set_referenced p true
    | None -> (
        (* miss: bring in the whole extent *)
        match map_lookup t f (po / bsize) with
        | None ->
            (* hole *)
            Bytes.fill buf !pos n '\000'
        | Some e ->
            extent_in t f e ~sync:true;
            (match wait_valid t f po with
            | Some p ->
                charge t ~label:"copy" (Ufs.Costs.copy_cost t.costs ~bytes:n);
                Bytes.blit p.Vm.Page.data (o - po) buf !pos n;
                Vm.Page.set_referenced p true
            | None -> Vfs.Errno.raise_err Vfs.Errno.EIO "efs: lost page")));
    (* extent read-ahead, with the same boundary trigger the paper gave
       UFS: when the access reaches the last prefetched extent, fetch
       the one after it *)
    (if po = f.nextrio then
       match map_lookup t f (po / bsize) with
       | Some e -> (
           let next_lbn = e.lbn + e.blocks in
           match map_lookup t f next_lbn with
           | Some nxt ->
               extent_in t f nxt ~sync:false;
               f.nextrio <- next_lbn * bsize
           | None -> ())
       | None -> ());
    f.nextr <- po + bsize;
    pos := !pos + n
  done;
  len


let extent_count f = List.length f.extents
