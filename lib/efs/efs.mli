(** A minimal extent-based file system — the comparator the paper argues
    against.

    "Replace UFS with a new file system type, an extent based file
    system.  This is a popular answer to file system performance
    issues.  The basic idea is to allocate file data in large,
    physically contiguous chunks, called extents.  Most I/O is done in
    units of an extent...  Typically, the user can control the size of
    these extents on a per-file basis."

    This implementation exists to measure the paper's title claim —
    that clustered UFS delivers {e extent-like} performance — and its
    counter-argument, that a user-chosen extent size is a trap.  It is
    a {e performance} comparator on the same substrate (disk, page
    pool, CPU cost table), faithful in I/O behaviour:

    - files are runs of ⟨logical block, physical sector, length⟩
      extents, allocated contiguously at the user-declared extent size;
    - reads and writes are issued in whole extents: one file-system
      traversal, one disk request per extent (with one-extent-ahead
      read-ahead on sequential reads);
    - the mapping lookup is an O(#extents) walk of the in-memory extent
      list (the cost a bmap cache would avoid in UFS).

    Unlike the UFS implementation next door it does not persist its
    metadata (no mkfs/fsck story): the paper's comparison is about
    transfer rates and CPU, not durability — and the lack of an on-disk
    format is, after all, half the reason the authors rejected it. *)

type t

(** I/O and allocation counters, mirroring the UFS set where the
    concepts line up (so the metrics export is comparable across the
    two file systems). *)
type stats = {
  mutable read_calls : int;
  mutable write_calls : int;
  mutable extent_ins : int;  (** extent-sized read requests issued *)
  mutable extent_in_blocks : int;
  mutable ra_extents : int;  (** of which asynchronous read-ahead *)
  mutable ra_used_blocks : int;
  mutable push_ios : int;
  mutable push_blocks : int;
  mutable extent_allocs : int;
}

val stats : t -> stats

val register_metrics : t -> Sim.Metrics.t -> instance:string -> unit
(** Register the counters (plus file/free-list gauges) as an ["efs"]
    source. *)

val create :
  Sim.Engine.t -> Sim.Cpu.t -> Vm.Pool.t -> Disk.Blkdev.t ->
  extent_kb:int -> ?costs:Ufs.Costs.t -> unit -> t
(** An empty extent file system using the whole device.  [extent_kb] is
    the (fixed, "user-chosen") extent size; must be a multiple of 8 KB.
    Raises [Invalid_argument] otherwise. *)

type file

val creat : t -> string -> file
(** Create (or truncate) a file.  Raises [EISDIR]-free: EFS has a flat
    namespace, one more simplification the real contenders shared with
    raw partitions. *)

val lookup : t -> string -> file
(** Raises [ENOENT]. *)

val size : file -> int

val write : t -> file -> off:int -> buf:bytes -> len:int -> unit
(** Extends the file as needed, allocating whole extents.
    Raises [ENOSPC] when the device is exhausted. *)

val read : t -> file -> off:int -> buf:bytes -> len:int -> int
(** Returns bytes read (short at EOF). *)

val fsync : t -> file -> unit
(** Push the file's dirty pages (extent-sized requests) and wait. *)

val delete : t -> string -> unit
(** Remove the file and free its extents. *)

val reset_readahead : t -> file -> unit
(** Forget the sequential predictor and drop cached pages (cold-start a
    benchmark phase). *)

val extent_count : file -> int
