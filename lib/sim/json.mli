(** A minimal JSON reader.

    Just enough to read back the documents this codebase itself writes
    ({!Metrics.to_json} bench exports, {!Span.to_chrome} traces) in
    the regression-gate and trace-shape tooling — the toolchain has no
    JSON dependency, and pulling one in for a reader would be heavier
    than the reader.  Numbers are parsed as floats (the exports only
    contain numbers a float holds exactly); no serializer is provided
    because writers already exist where they are needed. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** members in document order *)

val parse : string -> (t, string) result
(** Errors carry a character offset and a short description. *)

val member : string -> t -> t option
(** First member of that name of an [Obj]; [None] otherwise. *)

val to_list : t -> t list
(** Elements of a [List]; [[]] otherwise. *)

val num : t -> float option
val str : t -> string option
