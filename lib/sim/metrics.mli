(** Unified observability registry.

    Every layer of the stack (disk drives, volume manager, VM pool and
    pageout daemon, UFS, EFS) registers a {e source}: a closure that
    reads the layer's live counters, summaries and histograms on
    demand.  Sources are labeled [layer] (which subsystem) and
    [instance] (which machine/config — experiments often build several
    machines per table), so one registry can hold an entire bench
    section and export it as a machine-readable perf trajectory.

    Exports are dependency-free JSON and CSV; the bench harness writes
    one [BENCH_<section>.json] per section, and [blktrace --metrics]
    dumps the same shape for ad-hoc runs.  Policy decisions that used to
    be invisible (prefetch waste, free-behind firing on random reads)
    are first-class quantities here. *)

type value =
  | Int of int
  | Float of float
  | Summary of Stats.Summary.t
      (** exported as count/mean/stddev/min/max/total/p50/p95/p99 *)
  | Hist of Stats.Hist.t  (** exported as [[lo, hi, n], ...] buckets *)

type t

val create : unit -> t

val register :
  t -> layer:string -> ?instance:string -> (unit -> (string * value) list) -> unit
(** Add a source.  The closure is invoked at each export/snapshot, so
    registration is cheap and values are always current.  A duplicate
    ([layer], [instance]) pair is kept and deterministically renamed
    ["instance#2"], ["instance#3"], … in registration order. *)

val snapshot : t -> (string * string * (string * value) list) list
(** [(layer, instance, metrics)] in registration order. *)

val get : t -> layer:string -> ?instance:string -> string -> value option
(** Look up one metric of one source (after instance disambiguation). *)

val to_json : ?meta:(string * string) list -> t -> string
(** The whole registry as a JSON document:
    [{..meta.., "sources": [{"layer", "instance", "metrics": {..}}]}].
    Nan/infinite floats (which no metric should produce) render as
    [null] rather than corrupting the document. *)

val to_csv : t -> string
(** Long-format CSV: [layer,instance,metric,field,value] with one row
    per scalar, nine rows per summary, one per histogram bucket. *)
