type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* exports only escape control characters; encode the
                 code point as UTF-8 without surrogate handling *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char b
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    let tok = String.sub s start (!pos - start) in
    (* OCaml's float parser is laxer than JSON: it accepts "01", "+1",
       "1." and ".5".  Enforce the JSON number grammar on the token. *)
    let grammar_ok =
      let len = String.length tok in
      let i = ref (if len > 0 && tok.[0] = '-' then 1 else 0) in
      let digit c = c >= '0' && c <= '9' in
      let digits () =
        let st = !i in
        while !i < len && digit tok.[!i] do
          incr i
        done;
        !i > st
      in
      let int_ok =
        if !i < len && tok.[!i] = '0' then begin
          incr i;
          true
        end
        else digits ()
      in
      let frac_ok =
        if !i < len && tok.[!i] = '.' then begin
          incr i;
          digits ()
        end
        else true
      in
      let exp_ok =
        if !i < len && (tok.[!i] = 'e' || tok.[!i] = 'E') then begin
          incr i;
          if !i < len && (tok.[!i] = '+' || tok.[!i] = '-') then incr i;
          digits ()
        end
        else true
      in
      int_ok && frac_ok && exp_ok && !i = len
    in
    if not grammar_ok then fail "bad number";
    match float_of_string_opt tok with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          go ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let elems = ref [] in
          let rec go () =
            let v = parse_value () in
            elems := v :: !elems;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          go ();
          List (List.rev !elems)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "at offset %d: %s" at msg)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_list = function List l -> l | _ -> []
let num = function Num f -> Some f | _ -> None
let str = function Str s -> Some s | _ -> None
