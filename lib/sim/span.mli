(** Structured distributed tracing: per-operation span trees.

    Where {!Attrib} answers "how much time did ops spend per layer in
    aggregate", a span tree answers "what did {e this} op do, in what
    order, on which daemon": every operation of interest opens a root
    span, layers it passes through open child spans (or record
    [interval]s after the fact, from timestamps they already keep), and
    the finished tree carries trace/span/parent ids, start/stop stamps
    in simulated time, and typed attributes.

    The current span travels fiber-locally exactly like the attribution
    clock: {!Get_span}/{!Set_span} effects handled by a per-process slot
    in {!Engine.spawn}, so it survives suspensions and never leaks
    between processes.  Crossing the RPC wire, a caller ships its
    {!ctx} (trace id + parent span id) as call metadata; the server
    builds a detached {!subtree} under that ctx and ships the finished
    tree back in the reply, where {!graft} reattaches it under the
    caller's RPC span — the client's span then {e brackets} the
    server-side subtree in one tree.

    Tracing is pure bookkeeping: with no recorder installed (the
    default) every entry point is a passthrough that performs no
    effects, allocates nothing, and schedules nothing, so simulated
    timing is byte-identical with tracing on or off.

    Two consumers: a bounded ring log of finished trees exported as
    Chrome trace-event JSON ({!to_chrome}, loadable in Perfetto), and a
    deterministic slow-op sampler that retains the complete tree of any
    sampled root whose duration reaches the configured threshold or the
    current streaming p99 ({!slow}, {!render_slowest}). *)

type attr = I of int | S of string | B of bool

type t = {
  trace_id : int;  (** the root span's id, shared by the whole tree *)
  span_id : int;  (** globally unique (one id well per recorder) *)
  parent_id : int;  (** 0 for roots *)
  name : string;
  track : string;  (** ["process/thread"] label for the exporter *)
  start_us : Time.t;
  mutable stop_us : Time.t;
  mutable attrs : (string * attr) list;  (** oldest first *)
  mutable kids : t list;  (** newest first; use {!children} *)
}

val children : t -> t list
(** Child spans, oldest first. *)

val duration : t -> Time.t

val iter : (t -> unit) -> t -> unit
(** Depth-first, parent before children, children oldest first. *)

(** {1 Recorder} *)

type recorder

val create_recorder :
  ?log_capacity:int ->
  ?slow_keep:int ->
  ?threshold_us:Time.t ->
  unit ->
  recorder
(** [log_capacity] bounds the ring of finished root trees (default
    2048; overflow counts as [log_dropped]).  The slow-op sampler keeps
    at most [slow_keep] trees (default 32), retaining a sampled root
    when its duration reaches [threshold_us] {e or} the streaming p99
    of all sampled roots so far; evictions count as [slow_drops].
    Everything inside is deterministic — two identical runs retain
    identical trees. *)

val set_clock : recorder -> (unit -> Time.t) -> unit
(** Bind the recorder to a virtual clock (normally [Engine.now]).
    Machines rebind on build, so one recorder can observe a sequence of
    runs. *)

val install : recorder option -> unit
(** Make the recorder ambient (like [Machine]'s metrics sink). *)

val installed : unit -> recorder option

val with_recorder : recorder -> (unit -> 'a) -> 'a
(** Install for the duration of [f], restoring the previous recorder. *)

val enabled : unit -> bool
(** A recorder is installed and switched on. *)

val enable : recorder -> bool -> unit
(** Recorders start enabled; switch off to freeze their contents. *)

(** {1 Fiber-local current span} *)

type _ Effect.t +=
  | Get_span : t option Effect.t
  | Set_span : t option -> unit Effect.t
        (** Handled by {!Engine.spawn}'s per-process slot.  Outside a
            spawned process they fall back to "no current span". *)

val current : unit -> t option

(** {1 Instrumentation} *)

val root :
  name:string ->
  track:string ->
  ?attrs:(string * attr) list ->
  ?sample:bool ->
  (unit -> 'a) ->
  'a
(** Open a new trace around [f]: the span becomes the fiber's current
    span; on exit the finished tree goes to the ring log and — when
    [sample] (default true) — to the slow-op sampler.  Background work
    (read-ahead, write-behind daemons) passes [~sample:false] so it is
    visible in the timeline without polluting the op-latency p99. *)

val span :
  name:string ->
  ?track:string ->
  ?attrs:(string * attr) list ->
  (unit -> 'a) ->
  'a
(** Child span of the current span around [f]; a passthrough when
    there is no current span (setup traffic stays untraced).  [track]
    defaults to the parent's. *)

val interval :
  name:string ->
  ?track:string ->
  ?attrs:(string * attr) list ->
  start_us:Time.t ->
  stop_us:Time.t ->
  unit ->
  unit
(** Record an already-elapsed child of the current span from the
    timestamps the instrumented layer kept anyway (queue entry/exit,
    transmit stamps).  No-op without a current span. *)

val add_attr : string -> attr -> unit
(** Attach an attribute to the current span, if any. *)

(** {1 Wire propagation} *)

type ctx = { trace : int; parent : int }
(** What crosses the wire in a call: enough to parent the server-side
    subtree into the caller's trace. *)

val ctx : unit -> ctx option
(** The current span as a wire context ([None] when untraced — the
    server then skips its subtree entirely). *)

val subtree :
  ctx ->
  name:string ->
  track:string ->
  ?attrs:(string * attr) list ->
  ?start_us:Time.t ->
  (unit -> 'a) ->
  'a * t option
(** Run [f] under a detached span parented on [ctx] (the server side of
    a traced call).  The finished tree is returned — not logged — so
    the callee can ship it back in its reply.  [start_us] backdates the
    span (default: now): the server opens its subtree at the client's
    transmit stamp so the inbound-wire and queue intervals it then
    records nest inside it. *)

val graft : t -> unit
(** Reattach a received subtree under the current span (the client side
    of reply processing).  No-op without a current span. *)

(** {1 Consumers} *)

val roots : recorder -> t list
(** Finished root trees still in the ring, oldest first. *)

val slow : recorder -> t list
(** Retained slow-op trees, slowest first (ties: older first). *)

val export_roots : recorder -> t list
(** Ring roots plus any retained slow trees the ring has already
    dropped, sorted by start time then span id — the exporter's view. *)

val to_chrome : recorder -> string
(** Chrome trace-event JSON (Perfetto-loadable): one complete ["X"]
    event per span with [ts]/[dur] in simulated microseconds, plus
    ["M"] metadata naming every process and thread.  Tracks map to
    pid/tid: the part of {!t.track} before ['/'] is the process, the
    rest the thread; ids are assigned deterministically in first-seen
    order. *)

val render_slowest : ?limit:int -> recorder -> string
(** Text tree of the slowest retained ops (default up to 3). *)

val register_metrics : recorder -> Metrics.t -> instance:string -> unit
(** Register a ["sim.span"] source: roots/spans recorded, ring length
    and drops, sampler retained/drops. *)
