type _ Effect.t +=
  | Get_slot : int option Effect.t
  | Set_slot : int option -> unit Effect.t

(* Outside a spawned process nothing handles these effects; the slot
   then reads as empty rather than erroring, so code paths shared with
   setup code (mkfs, mount) need no special casing. *)
let get () = try Effect.perform Get_slot with Effect.Unhandled _ -> None
let set v = try Effect.perform (Set_slot v) with Effect.Unhandled _ -> ()

let with_value v f =
  let prev = get () in
  set (Some v);
  Fun.protect ~finally:(fun () -> set prev) f
