let percentile values p =
  if Array.length values = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let values = Array.copy values in
  Array.sort compare values;
  let n = Array.length values in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then values.(lo)
  else
    let frac = rank -. float_of_int lo in
    values.(lo) +. (frac *. (values.(hi) -. values.(lo)))

module Summary = struct
  (* Percentiles need samples, not moments; [reservoir_cap] bounds the
     memory.  Decimation is deterministic: once the reservoir fills,
     keep every 2nd retained sample and double the stride — a uniformly
     spaced subsample of the stream, so long-run percentiles stay
     representative without any RNG. *)
  let reservoir_cap = 4096

  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable mn : float;
    mutable mx : float;
    mutable total : float;
    mutable samples : float array;
    mutable slen : int;
    mutable stride : int;
    mutable skip : int;  (** stream samples to pass over before keeping one *)
  }

  let create () =
    {
      n = 0;
      mean = 0.;
      m2 = 0.;
      mn = nan;
      mx = nan;
      total = 0.;
      samples = [||];
      slen = 0;
      stride = 1;
      skip = 0;
    }

  let keep_sample t x =
    if t.skip > 0 then t.skip <- t.skip - 1
    else begin
      let cap = Array.length t.samples in
      if t.slen = cap then
        if cap < reservoir_cap then begin
          let bigger = Array.make (max 64 (min reservoir_cap (cap * 2))) 0. in
          Array.blit t.samples 0 bigger 0 t.slen;
          t.samples <- bigger
        end
        else begin
          let half = cap / 2 in
          for i = 0 to half - 1 do
            t.samples.(i) <- t.samples.(2 * i)
          done;
          t.slen <- half;
          t.stride <- t.stride * 2
        end;
      t.samples.(t.slen) <- x;
      t.slen <- t.slen + 1;
      t.skip <- t.stride - 1
    end

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    keep_sample t x;
    if t.n = 1 then begin
      t.mn <- x;
      t.mx <- x
    end
    else begin
      if x < t.mn then t.mn <- x;
      if x > t.mx then t.mx <- x
    end

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  (* like [mean], an empty summary reads 0., not nan: these values feed
     printed tables and the metrics JSON export, where nan is invalid *)
  let min t = if t.n = 0 then 0. else t.mn
  let max t = if t.n = 0 then 0. else t.mx
  let total t = t.total

  let percentile_of t p =
    if t.slen = 0 then 0. else percentile (Array.sub t.samples 0 t.slen) p
end

module Hist = struct
  (* bucket i holds values v with 2^(i-1) < v <= 2^i; bucket 0 holds 0 and 1 *)
  type t = { counts : int array; mutable n : int }

  let nbuckets = 63

  let create () = { counts = Array.make nbuckets 0; n = 0 }

  let bucket_of v =
    if v <= 1 then 0
    else
      let rec loop i acc = if acc >= v then i else loop (i + 1) (acc * 2) in
      loop 1 2

  let add t v =
    if v < 0 then invalid_arg "Hist.add: negative value";
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.n <- t.n + 1

  let count t = t.n

  let bounds i = if i = 0 then (0, 1) else ((1 lsl (i - 1)) + 1, 1 lsl i)

  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.counts.(i) > 0 then
        let lo, hi = bounds i in
        acc := (lo, hi, t.counts.(i)) :: !acc
    done;
    !acc

  let pp ppf t =
    List.iter
      (fun (lo, hi, n) -> Format.fprintf ppf "[%d..%d]: %d@." lo hi n)
      (buckets t)
end
