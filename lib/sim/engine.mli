(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue.  Simulated
    activities ("processes": benchmark drivers, the pageout daemon, the
    disk service loop) are ordinary OCaml functions run as one-shot
    effect-handler coroutines: inside a process, {!sleep} and {!suspend}
    yield control back to the engine, which resumes the process when the
    requested virtual time arrives or when another process wakes it.

    Determinism: events scheduled for the same instant fire in FIFO
    order (a monotonically increasing sequence number breaks ties), and
    nothing in the engine consults wall-clock time or [Random]. *)

type t

exception Deadlock of string
(** Raised by {!check_quiescent} when processes remain blocked but no
    event can ever wake them. *)

val create : unit -> t

val now : t -> Time.t
(** Current virtual time. *)

val spawn : t -> ?name:string -> (unit -> unit) -> unit
(** [spawn t f] schedules process [f] to start at the current virtual
    time.  Exceptions escaping [f] abort the whole simulation run (they
    propagate out of {!run}).  [name] is used in error messages. *)

val sleep : t -> Time.t -> unit
(** Advance virtual time by the given duration.  Must be called from
    within a process. *)

val suspend : t -> register:((unit -> unit) -> unit) -> unit
(** [suspend t ~register] parks the calling process.  [register] is
    called immediately with a [resume] thunk; stashing [resume] somewhere
    (a wait queue, a completion callback) and calling it later — from any
    process or event — reschedules the parked process at that moment's
    virtual time.  Calling [resume] more than once is an error. *)

val schedule : t -> ?delay:Time.t -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs callback [f] (not a process: it must not
    sleep or suspend) at [now t + delay].  [delay] defaults to zero. *)

type timer
(** A cancellable scheduled event (an RPC retransmission timer). *)

val schedule_cancellable : t -> ?delay:Time.t -> (unit -> unit) -> timer
(** Like {!schedule}, but returns a handle.  {!cancel} before the
    deadline and the event fires as a no-op; the callback (and whatever
    it captures) is released at cancel time, not at the deadline —
    without this, every answered RPC would pin its timeout closure in
    the heap for the full retransmission interval. *)

val cancel : timer -> unit
(** Idempotent; a timer that already fired is a no-op to cancel. *)

val cancelled : timer -> bool
(** True once the timer was cancelled {e or} has fired. *)

val run : t -> unit
(** Run until the event queue is empty.  Suspended processes that are
    never resumed are simply abandoned (as in a real deadlock); use
    {!live_processes} or {!check_quiescent} to detect that in tests. *)

val run_for : t -> Time.t -> unit
(** Run events until virtual time reaches [now + duration]; the clock is
    advanced to exactly that instant even if the queue empties sooner. *)

val live_processes : t -> int
(** Number of spawned processes that have neither returned nor are
    queued to run — i.e. currently suspended. *)

val check_quiescent : t -> unit
(** After {!run}: raise {!Deadlock} if any process is still suspended. *)

(** {1 Self-observability}

    The engine's own hot paths (heap, dispatch loop, timer churn) are
    what fleet-scale sweeps stress; these counters are the profiling
    baseline. *)

val events_dispatched : t -> int
(** Events popped and run by {!run}/{!run_for} so far. *)

val heap_max_depth : t -> int
(** High-water mark of the event heap. *)

val cancellations : t -> int
(** Timers cancelled before firing (each was a dead heap slot). *)

val processes_spawned : t -> int

val effect_suspends : t -> int
(** [Suspend] effects handled — one per process park (sleep, I/O wait,
    condition wait). *)

val effect_attrib_ops : t -> int
(** Attribution-clock slot gets/sets handled. *)

val effect_span_ops : t -> int
(** Current-span slot gets/sets handled. *)

val effect_fls_ops : t -> int
(** Fiber-local slot gets/sets handled. *)

val register_metrics : t -> Metrics.t -> instance:string -> unit
(** Register a ["sim.engine"] metrics source over the counters above. *)
