(** Streaming statistics and histograms for experiment reporting. *)

module Summary : sig
  (** Welford streaming mean/variance plus min/max. *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0.0 when empty. *)

  val variance : t -> float
  (** Sample variance; 0.0 with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** 0.0 when empty, like [mean] — empty summaries must not leak nan
      into tables or the metrics JSON export. *)

  val max : t -> float
  (** 0.0 when empty. *)

  val total : t -> float

  val percentile_of : t -> float -> float
  (** [percentile_of t p] for [p] in [0,100], 0.0 when empty.  Exact
      while at most 4096 values have been observed; beyond that the
      summary keeps a deterministically decimated subsample (every
      2nd, 4th, … value), so long-run percentiles are approximate but
      reproducible.  Computed with the non-mutating {!percentile}. *)
end

module Hist : sig
  (** Power-of-two bucketed histogram for latencies/sizes. *)

  type t

  val create : unit -> t
  val add : t -> int -> unit
  val count : t -> int

  val buckets : t -> (int * int * int) list
  (** [(lo, hi, n)] triples for non-empty buckets, ascending;
      values fall in [lo <= v <= hi]. *)

  val pp : Format.formatter -> t -> unit
end

val percentile : float array -> float -> float
(** [percentile values p] for [p] in [0,100]; linear interpolation
    between closest ranks.  Sorts a copy — the caller's array is left
    untouched.  Raises [Invalid_argument] on an empty array. *)
