(** Per-operation cost attribution: a fiber-local phase clock.

    A {!clock} accumulates simulated time per named phase
    (["disk.seek"], ["rpc.wait"], ["wire"], …).  The clock travels with
    the simulated process that owns the current operation: {!with_clock}
    installs it for the dynamic extent of the operation, and any layer
    the operation blocks in charges the {e current} clock via
    {!charge_current} — the disk layer when the process waits on a
    request, the RPC layer when it waits on a reply, the NFS client
    when it waits on an in-flight page.

    "Current" is per-{e process} (fiber), not global: the engine keeps
    one clock slot per spawned process, so two concurrent benchmark
    jobs each see only their own waits.  Processes the operation never
    blocks in (biods, nfsds working on someone else's call) charge
    their own clocks or none at all.  Outside any simulated process
    there is no clock and charging is a no-op.

    Charging is pure bookkeeping — it never schedules events, sleeps or
    otherwise perturbs the simulation, so instrumented and
    uninstrumented runs are time-step identical. *)

type clock

val create : unit -> clock

val charge : clock -> string -> Time.t -> unit
(** Accumulate a duration against a phase name.  Non-positive
    durations are ignored. *)

val read : clock -> (string * Time.t) list
(** Accumulated [(phase, total)] pairs, sorted by phase name. *)

val find : clock -> string -> Time.t
(** One phase's total; 0 if never charged. *)

val total : clock -> Time.t
(** Sum over all phases. *)

val merge_into : dst:clock -> clock -> unit
(** Add every phase of the source clock into [dst]. *)

val current : unit -> clock option
(** The calling process's installed clock, if any.  [None] when called
    outside a simulated process or when no clock is installed. *)

val charge_current : string -> Time.t -> unit
(** [charge clock phase d] on the current clock; no-op without one. *)

val with_clock : clock -> (unit -> 'a) -> 'a
(** Install a clock for the extent of the callback (restoring the
    previous one on exit, including on exceptions).  Must be called
    inside a simulated process for the installation to stick; outside
    one it just runs the callback. *)

(**/**)

(** Effects the engine's process handler interprets; not for direct
    use. *)
type _ Effect.t +=
  | Get_clock : clock option Effect.t
  | Set_clock : clock option -> unit Effect.t
