(** One fiber-local integer slot per simulated process.

    Each process spawned by {!Engine.spawn} owns a private slot that
    survives suspensions and is invisible to every other process — the
    same effect-handler mechanism as {!Attrib} and {!Span}.  Users store
    a key (an operation id, a transaction handle index) and look their
    state up in a side table; the engine itself neither knows nor cares
    what the value means.

    Outside a process the slot reads as [None] and writes are dropped,
    so setup code that runs before the simulation starts can share code
    paths with process bodies. *)

type _ Effect.t +=
  | Get_slot : int option Effect.t
  | Set_slot : int option -> unit Effect.t

val get : unit -> int option
(** Current process's slot value; [None] outside a process. *)

val set : int option -> unit
(** Store into the current process's slot; no-op outside a process. *)

val with_value : int -> (unit -> 'a) -> 'a
(** Run with the slot set, restoring the previous value on exit (even
    by exception). *)
