type clock = { mutable entries : (string * Time.t) list }
(* a handful of phases per operation: an assoc list beats a table *)

let create () = { entries = [] }

let charge c phase d =
  if d > 0 then
    let rec bump = function
      | [] -> [ (phase, d) ]
      | (p, t) :: rest when p = phase -> (p, t + d) :: rest
      | kv :: rest -> kv :: bump rest
    in
    c.entries <- bump c.entries

let read c = List.sort (fun (a, _) (b, _) -> compare a b) c.entries
let find c phase = match List.assoc_opt phase c.entries with Some t -> t | None -> 0
let total c = List.fold_left (fun acc (_, t) -> acc + t) 0 c.entries
let merge_into ~dst src = List.iter (fun (p, t) -> charge dst p t) src.entries

type _ Effect.t +=
  | Get_clock : clock option Effect.t
  | Set_clock : clock option -> unit Effect.t

(* Outside a spawned process nothing handles these effects; attribution
   is then simply off rather than an error. *)
let current () = try Effect.perform Get_clock with Effect.Unhandled _ -> None
let set c = try Effect.perform (Set_clock c) with Effect.Unhandled _ -> ()

let charge_current phase d =
  if d > 0 then match current () with Some c -> charge c phase d | None -> ()

let with_clock c f =
  let prev = current () in
  set (Some c);
  Fun.protect ~finally:(fun () -> set prev) f
