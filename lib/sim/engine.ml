open Effect
open Effect.Deep

type t = {
  mutable now : Time.t;
  mutable seq : int;
  events : (int * int, unit -> unit) Heap.t;
  mutable blocked : int; (* processes currently suspended *)
  (* self-observability: fleet-scale runs stress the engine itself, so
     the hot paths keep cheap counters a metrics source can read *)
  mutable dispatched : int;
  mutable heap_max : int;
  mutable cancellations : int;
  mutable spawned : int;
}

exception Deadlock of string

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let cmp_key (t1, s1) (t2, s2) =
  let c = compare (t1 : int) t2 in
  if c <> 0 then c else compare (s1 : int) s2

let create () =
  {
    now = 0;
    seq = 0;
    events = Heap.create ~cmp:cmp_key;
    blocked = 0;
    dispatched = 0;
    heap_max = 0;
    cancellations = 0;
    spawned = 0;
  }

let now t = t.now

let schedule t ?(delay = 0) f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  t.seq <- t.seq + 1;
  Heap.push t.events (t.now + delay, t.seq) f;
  let depth = Heap.length t.events in
  if depth > t.heap_max then t.heap_max <- depth

(* A cancellable event is a heap entry indirected through a mutable
   cell.  Cancelling empties the cell: the heap slot itself stays (the
   heap has no removal), but it fires as a no-op and — the point — the
   cancelled closure and everything it captures are released
   immediately instead of being pinned until the deadline. *)
type timer = { mutable cb : (unit -> unit) option; owner : t }

let schedule_cancellable t ?delay f =
  let h = { cb = Some f; owner = t } in
  schedule t ?delay (fun () ->
      match h.cb with
      | Some f ->
          h.cb <- None;
          f ()
      | None -> ());
  h

let cancel h =
  if h.cb <> None then begin
    h.owner.cancellations <- h.owner.cancellations + 1;
    h.cb <- None
  end

let cancelled h = h.cb = None

(* Run [f] as a process: effects performed by [f] are interpreted here.
   A [Suspend register] effect hands the continuation, wrapped as a
   plain thunk, to [register]; resuming the thunk re-enters the handler.
   Each process also owns one attribution-clock slot ([Attrib]), one
   current-span slot ([Span]) and one fiber-local value slot ([Fls]):
   the handler closure holds them, so they survive suspensions and are
   invisible to every other process. *)
let spawn t ?name f =
  let name = Option.value name ~default:"process" in
  t.spawned <- t.spawned + 1;
  let clock : Attrib.clock option ref = ref None in
  let span : Span.t option ref = ref None in
  let fls : int option ref = ref None in
  let body () =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc =
          (fun e ->
            raise
              (Failure
                 (Printf.sprintf "process %s died: %s" name (Printexc.to_string e))));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, _) continuation) ->
                    t.blocked <- t.blocked + 1;
                    let resumed = ref false in
                    let resume () =
                      if !resumed then
                        invalid_arg "Engine: process resumed twice";
                      resumed := true;
                      t.blocked <- t.blocked - 1;
                      schedule t (fun () -> continue k ())
                    in
                    register resume)
            | Attrib.Get_clock ->
                Some (fun (k : (a, _) continuation) -> continue k !clock)
            | Attrib.Set_clock c ->
                Some
                  (fun (k : (a, _) continuation) ->
                    clock := c;
                    continue k ())
            | Span.Get_span ->
                Some (fun (k : (a, _) continuation) -> continue k !span)
            | Span.Set_span s ->
                Some
                  (fun (k : (a, _) continuation) ->
                    span := s;
                    continue k ())
            | Fls.Get_slot ->
                Some (fun (k : (a, _) continuation) -> continue k !fls)
            | Fls.Set_slot v ->
                Some
                  (fun (k : (a, _) continuation) ->
                    fls := v;
                    continue k ())
            | _ -> None);
      }
  in
  schedule t body

let suspend _t ~register = perform (Suspend register)

let sleep t d =
  if d < 0 then invalid_arg "Engine.sleep: negative duration";
  if d = 0 then ()
  else suspend t ~register:(fun resume -> schedule t ~delay:d resume)

let run t =
  let rec loop () =
    match Heap.pop t.events with
    | None -> ()
    | Some ((at, _), f) ->
        assert (at >= t.now);
        t.now <- at;
        t.dispatched <- t.dispatched + 1;
        f ();
        loop ()
  in
  loop ()

let run_for t d =
  let stop = t.now + d in
  let rec loop () =
    match Heap.peek t.events with
    | Some ((at, _), _) when at <= stop ->
        (match Heap.pop t.events with
        | Some ((at, _), f) ->
            t.now <- at;
            t.dispatched <- t.dispatched + 1;
            f ();
            loop ()
        | None -> assert false)
    | Some _ | None -> t.now <- stop
  in
  loop ()

let live_processes t = t.blocked

let check_quiescent t =
  if t.blocked > 0 then
    raise
      (Deadlock
         (Printf.sprintf "%d process(es) still suspended at %s" t.blocked
            (Time.to_string t.now)))

let events_dispatched t = t.dispatched
let heap_max_depth t = t.heap_max
let cancellations t = t.cancellations
let processes_spawned t = t.spawned

let register_metrics t reg ~instance =
  Metrics.register reg ~layer:"sim.engine" ~instance (fun () ->
      [
        ("events_dispatched", Metrics.Int t.dispatched);
        ("heap_max_depth", Metrics.Int t.heap_max);
        ("heap_len", Metrics.Int (Heap.length t.events));
        ("cancellations", Metrics.Int t.cancellations);
        ("processes_spawned", Metrics.Int t.spawned);
        ("now_us", Metrics.Int t.now);
      ])
