open Effect
open Effect.Deep

(* Specialized event heap.  The generic [Heap] keyed every event with a
   boxed [(time, seq)] tuple and compared through a closure — at fleet
   scale (millions of events for a 1024-client sweep) the tuple
   allocations and indirect compares dominate the dispatch loop.  Here
   the keys live in two parallel unboxed [int array]s (no per-event
   allocation) and the comparison is inlined int arithmetic.  Ordering
   is identical to the old [cmp_key]: strictly by time, ties broken by
   the monotone sequence number, so same-instant events stay FIFO and
   goldens stay byte-identical. *)
type events = {
  mutable times : int array;
  mutable seqs : int array;
  mutable cbs : (unit -> unit) array;
  mutable len : int;
}

let nop () = ()

let ev_create () =
  { times = Array.make 256 0; seqs = Array.make 256 0; cbs = Array.make 256 nop; len = 0 }

let ev_grow e =
  let cap = Array.length e.times in
  let cap' = cap * 2 in
  let times = Array.make cap' 0 and seqs = Array.make cap' 0 and cbs = Array.make cap' nop in
  Array.blit e.times 0 times 0 cap;
  Array.blit e.seqs 0 seqs 0 cap;
  Array.blit e.cbs 0 cbs 0 cap;
  e.times <- times;
  e.seqs <- seqs;
  e.cbs <- cbs

(* [before] is the heap order: (t1,s1) < (t2,s2) lexicographically. *)
let[@inline] before e i j =
  let ti = Array.unsafe_get e.times i and tj = Array.unsafe_get e.times j in
  ti < tj || (ti = tj && Array.unsafe_get e.seqs i < Array.unsafe_get e.seqs j)

let[@inline] ev_swap e i j =
  let t = Array.unsafe_get e.times i in
  Array.unsafe_set e.times i (Array.unsafe_get e.times j);
  Array.unsafe_set e.times j t;
  let s = Array.unsafe_get e.seqs i in
  Array.unsafe_set e.seqs i (Array.unsafe_get e.seqs j);
  Array.unsafe_set e.seqs j s;
  let c = Array.unsafe_get e.cbs i in
  Array.unsafe_set e.cbs i (Array.unsafe_get e.cbs j);
  Array.unsafe_set e.cbs j c

let ev_push e ~time ~seq cb =
  if e.len = Array.length e.times then ev_grow e;
  let i = ref e.len in
  e.times.(!i) <- time;
  e.seqs.(!i) <- seq;
  e.cbs.(!i) <- cb;
  e.len <- e.len + 1;
  (* sift up *)
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before e !i parent then begin
      ev_swap e !i parent;
      i := parent
    end
    else continue_ := false
  done

(* Remove the root (callers read [times.(0)]/[cbs.(0)] first).  Clears
   the vacated closure slot so it isn't pinned until the next grow. *)
let ev_drop_root e =
  let last = e.len - 1 in
  e.len <- last;
  e.times.(0) <- e.times.(last);
  e.seqs.(0) <- e.seqs.(last);
  e.cbs.(0) <- e.cbs.(last);
  e.cbs.(last) <- nop;
  (* sift down *)
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 in
    if l >= last then continue_ := false
    else begin
      let r = l + 1 in
      let m = if r < last && before e r l then r else l in
      if before e m !i then begin
        ev_swap e !i m;
        i := m
      end
      else continue_ := false
    end
  done

type t = {
  mutable now : Time.t;
  mutable seq : int;
  events : events;
  mutable blocked : int; (* processes currently suspended *)
  (* self-observability: fleet-scale runs stress the engine itself, so
     the hot paths keep cheap counters a metrics source can read *)
  mutable dispatched : int;
  mutable heap_max : int;
  mutable cancellations : int;
  mutable spawned : int;
  (* per-effect dispatch counters: how often each effect class crosses
     the handler — the effect-handler half of the hot path *)
  mutable eff_suspends : int;
  mutable eff_attrib : int;
  mutable eff_span : int;
  mutable eff_fls : int;
}

exception Deadlock of string

type _ Effect.t += Suspend : ((unit -> unit) -> unit) -> unit Effect.t

let create () =
  {
    now = 0;
    seq = 0;
    events = ev_create ();
    blocked = 0;
    dispatched = 0;
    heap_max = 0;
    cancellations = 0;
    spawned = 0;
    eff_suspends = 0;
    eff_attrib = 0;
    eff_span = 0;
    eff_fls = 0;
  }

let now t = t.now

let schedule t ?(delay = 0) f =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  t.seq <- t.seq + 1;
  ev_push t.events ~time:(t.now + delay) ~seq:t.seq f;
  if t.events.len > t.heap_max then t.heap_max <- t.events.len

(* A cancellable event is a heap entry indirected through a mutable
   cell.  Cancelling empties the cell: the heap slot itself stays (the
   heap has no removal), but it fires as a no-op and — the point — the
   cancelled closure and everything it captures are released
   immediately instead of being pinned until the deadline. *)
type timer = { mutable cb : (unit -> unit) option; owner : t }

let schedule_cancellable t ?delay f =
  let h = { cb = Some f; owner = t } in
  schedule t ?delay (fun () ->
      match h.cb with
      | Some f ->
          h.cb <- None;
          f ()
      | None -> ());
  h

let cancel h =
  if h.cb <> None then begin
    h.owner.cancellations <- h.owner.cancellations + 1;
    h.cb <- None
  end

let cancelled h = h.cb = None

(* Run [f] as a process: effects performed by [f] are interpreted here.
   A [Suspend register] effect hands the continuation, wrapped as a
   plain thunk, to [register]; resuming the thunk re-enters the handler.
   Each process also owns one attribution-clock slot ([Attrib]), one
   current-span slot ([Span]) and one fiber-local value slot ([Fls]):
   the handler closure holds them, so they survive suspensions and are
   invisible to every other process. *)
let spawn t ?name f =
  let name = Option.value name ~default:"process" in
  t.spawned <- t.spawned + 1;
  let clock : Attrib.clock option ref = ref None in
  let span : Span.t option ref = ref None in
  let fls : int option ref = ref None in
  let body () =
    match_with f ()
      {
        retc = (fun () -> ());
        exnc =
          (fun e ->
            raise
              (Failure
                 (Printf.sprintf "process %s died: %s" name (Printexc.to_string e))));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Suspend register ->
                Some
                  (fun (k : (a, _) continuation) ->
                    t.eff_suspends <- t.eff_suspends + 1;
                    t.blocked <- t.blocked + 1;
                    let resumed = ref false in
                    let resume () =
                      if !resumed then
                        invalid_arg "Engine: process resumed twice";
                      resumed := true;
                      t.blocked <- t.blocked - 1;
                      schedule t (fun () -> continue k ())
                    in
                    register resume)
            | Attrib.Get_clock ->
                Some
                  (fun (k : (a, _) continuation) ->
                    t.eff_attrib <- t.eff_attrib + 1;
                    continue k !clock)
            | Attrib.Set_clock c ->
                Some
                  (fun (k : (a, _) continuation) ->
                    t.eff_attrib <- t.eff_attrib + 1;
                    clock := c;
                    continue k ())
            | Span.Get_span ->
                Some
                  (fun (k : (a, _) continuation) ->
                    t.eff_span <- t.eff_span + 1;
                    continue k !span)
            | Span.Set_span s ->
                Some
                  (fun (k : (a, _) continuation) ->
                    t.eff_span <- t.eff_span + 1;
                    span := s;
                    continue k ())
            | Fls.Get_slot ->
                Some
                  (fun (k : (a, _) continuation) ->
                    t.eff_fls <- t.eff_fls + 1;
                    continue k !fls)
            | Fls.Set_slot v ->
                Some
                  (fun (k : (a, _) continuation) ->
                    t.eff_fls <- t.eff_fls + 1;
                    fls := v;
                    continue k ())
            | _ -> None);
      }
  in
  schedule t body

let suspend _t ~register = perform (Suspend register)

let sleep t d =
  if d < 0 then invalid_arg "Engine.sleep: negative duration";
  if d = 0 then ()
  else suspend t ~register:(fun resume -> schedule t ~delay:d resume)

(* The dispatch loop reads the root in place and drops it — no option,
   no tuple, no pair allocation per event. *)
let run t =
  let e = t.events in
  while e.len > 0 do
    let at = Array.unsafe_get e.times 0 in
    let f = Array.unsafe_get e.cbs 0 in
    ev_drop_root e;
    assert (at >= t.now);
    t.now <- at;
    t.dispatched <- t.dispatched + 1;
    f ()
  done

let run_for t d =
  let stop = t.now + d in
  let e = t.events in
  let continue_ = ref true in
  while !continue_ do
    if e.len > 0 && Array.unsafe_get e.times 0 <= stop then begin
      let at = Array.unsafe_get e.times 0 in
      let f = Array.unsafe_get e.cbs 0 in
      ev_drop_root e;
      t.now <- at;
      t.dispatched <- t.dispatched + 1;
      f ()
    end
    else begin
      t.now <- stop;
      continue_ := false
    end
  done

let live_processes t = t.blocked

let check_quiescent t =
  if t.blocked > 0 then
    raise
      (Deadlock
         (Printf.sprintf "%d process(es) still suspended at %s" t.blocked
            (Time.to_string t.now)))

let events_dispatched t = t.dispatched
let heap_max_depth t = t.heap_max
let cancellations t = t.cancellations
let processes_spawned t = t.spawned
let effect_suspends t = t.eff_suspends
let effect_attrib_ops t = t.eff_attrib
let effect_span_ops t = t.eff_span
let effect_fls_ops t = t.eff_fls

let register_metrics t reg ~instance =
  Metrics.register reg ~layer:"sim.engine" ~instance (fun () ->
      [
        ("events_dispatched", Metrics.Int t.dispatched);
        ("heap_max_depth", Metrics.Int t.heap_max);
        ("heap_len", Metrics.Int t.events.len);
        ("cancellations", Metrics.Int t.cancellations);
        ("processes_spawned", Metrics.Int t.spawned);
        ("eff_suspends", Metrics.Int t.eff_suspends);
        ("eff_attrib_ops", Metrics.Int t.eff_attrib);
        ("eff_span_ops", Metrics.Int t.eff_span);
        ("eff_fls_ops", Metrics.Int t.eff_fls);
        ("now_us", Metrics.Int t.now);
      ])
