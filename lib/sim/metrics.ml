type value =
  | Int of int
  | Float of float
  | Summary of Stats.Summary.t
  | Hist of Stats.Hist.t

type source = {
  layer : string;
  instance : string;
  read : unit -> (string * value) list;
}

type t = {
  mutable sources : source list;  (* newest first *)
  keys : (string * string, int) Hashtbl.t;  (* (layer, instance) uses *)
}

let create () = { sources = []; keys = Hashtbl.create 16 }

let register t ~layer ?(instance = "-") read =
  (* several machines in one run may carry the same config name; keep
     every source, deterministically disambiguated in creation order *)
  let instance =
    match Hashtbl.find_opt t.keys (layer, instance) with
    | None ->
        Hashtbl.replace t.keys (layer, instance) 1;
        instance
    | Some n ->
        Hashtbl.replace t.keys (layer, instance) (n + 1);
        Printf.sprintf "%s#%d" instance (n + 1)
  in
  t.sources <- { layer; instance; read } :: t.sources

let snapshot t =
  List.rev_map (fun s -> (s.layer, s.instance, s.read ())) t.sources

let get t ~layer ?(instance = "-") name =
  let matches s = s.layer = layer && s.instance = instance in
  match List.find_opt matches (List.rev t.sources) with
  | None -> None
  | Some s -> List.assoc_opt name (s.read ())

(* ---------- export ---------- *)

let buf_add_json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_float f =
  (* nan/inf are not JSON; no metric should produce them, but a corrupt
     value must not corrupt the whole file *)
  if f <> f || f = infinity || f = neg_infinity then "null"
  else Printf.sprintf "%.6g" f

let buf_add_summary b s =
  Buffer.add_string b
    (Printf.sprintf
       "{\"count\":%d,\"mean\":%s,\"stddev\":%s,\"min\":%s,\"max\":%s,\"total\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
       (Stats.Summary.count s)
       (json_float (Stats.Summary.mean s))
       (json_float (Stats.Summary.stddev s))
       (json_float (Stats.Summary.min s))
       (json_float (Stats.Summary.max s))
       (json_float (Stats.Summary.total s))
       (json_float (Stats.Summary.percentile_of s 50.))
       (json_float (Stats.Summary.percentile_of s 95.))
       (json_float (Stats.Summary.percentile_of s 99.)))

let buf_add_hist b h =
  Buffer.add_string b
    (Printf.sprintf "{\"count\":%d,\"buckets\":[" (Stats.Hist.count h));
  List.iteri
    (fun i (lo, hi, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "[%d,%d,%d]" lo hi n))
    (Stats.Hist.buckets h);
  Buffer.add_string b "]}"

let buf_add_value b = function
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f -> Buffer.add_string b (json_float f)
  | Summary s -> buf_add_summary b s
  | Hist h -> buf_add_hist b h

let to_json ?(meta = []) t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  List.iter
    (fun (k, v) ->
      buf_add_json_string b k;
      Buffer.add_string b ": ";
      buf_add_json_string b v;
      Buffer.add_string b ",\n")
    meta;
  Buffer.add_string b "\"sources\": [";
  List.iteri
    (fun i (layer, instance, kvs) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  {\"layer\": ";
      buf_add_json_string b layer;
      Buffer.add_string b ", \"instance\": ";
      buf_add_json_string b instance;
      Buffer.add_string b ", \"metrics\": {";
      List.iteri
        (fun j (name, v) ->
          if j > 0 then Buffer.add_string b ", ";
          buf_add_json_string b name;
          Buffer.add_string b ": ";
          buf_add_value b v)
        kvs;
      Buffer.add_string b "}}")
    (snapshot t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "layer,instance,metric,field,value\n";
  let row layer instance name field v =
    Buffer.add_string b
      (Printf.sprintf "%s,%s,%s,%s,%s\n" (csv_escape layer)
         (csv_escape instance) (csv_escape name) field v)
  in
  List.iter
    (fun (layer, instance, kvs) ->
      List.iter
        (fun (name, v) ->
          match v with
          | Int n -> row layer instance name "value" (string_of_int n)
          | Float f -> row layer instance name "value" (json_float f)
          | Summary s ->
              row layer instance name "count"
                (string_of_int (Stats.Summary.count s));
              row layer instance name "mean" (json_float (Stats.Summary.mean s));
              row layer instance name "stddev"
                (json_float (Stats.Summary.stddev s));
              row layer instance name "min" (json_float (Stats.Summary.min s));
              row layer instance name "max" (json_float (Stats.Summary.max s));
              row layer instance name "total"
                (json_float (Stats.Summary.total s));
              row layer instance name "p50"
                (json_float (Stats.Summary.percentile_of s 50.));
              row layer instance name "p95"
                (json_float (Stats.Summary.percentile_of s 95.));
              row layer instance name "p99"
                (json_float (Stats.Summary.percentile_of s 99.))
          | Hist h ->
              List.iter
                (fun (lo, hi, n) ->
                  row layer instance name
                    (Printf.sprintf "bucket_%d_%d" lo hi)
                    (string_of_int n))
                (Stats.Hist.buckets h))
        kvs)
    (snapshot t);
  Buffer.contents b
