type attr = I of int | S of string | B of bool

type t = {
  trace_id : int;
  span_id : int;
  parent_id : int;
  name : string;
  track : string;
  start_us : Time.t;
  mutable stop_us : Time.t;
  mutable attrs : (string * attr) list;
  mutable kids : t list;
}

let children sp = List.rev sp.kids
let duration sp = sp.stop_us - sp.start_us

let rec iter f sp =
  f sp;
  List.iter (iter f) (children sp)

type recorder = {
  mutable on : bool;
  mutable clock : unit -> Time.t;
  mutable next_id : int;
  mutable spans_made : int;
  (* ring of finished root trees *)
  log_capacity : int;
  log : t Queue.t;
  mutable log_dropped : int;
  mutable roots_done : int;
  (* slow-op sampler *)
  slow_keep : int;
  threshold_us : Time.t option;
  lat : Stats.Summary.t;
  mutable sampled : int;
  mutable slowset : (Time.t * int * t) list;  (* (duration, arrival seq, tree) *)
  mutable slow_seq : int;
  mutable slow_drops : int;
}

let create_recorder ?(log_capacity = 2048) ?(slow_keep = 32) ?threshold_us () =
  {
    on = true;
    clock = (fun () -> 0);
    next_id = 0;
    spans_made = 0;
    log_capacity = max 1 log_capacity;
    log = Queue.create ();
    log_dropped = 0;
    roots_done = 0;
    slow_keep = max 1 slow_keep;
    threshold_us;
    lat = Stats.Summary.create ();
    sampled = 0;
    slowset = [];
    slow_seq = 0;
    slow_drops = 0;
  }

let set_clock r now = r.clock <- now

(* Ambient recorder, like Machine's metrics sink: experiments build
   machines internally, so the caller that wants traces installs one
   recorder here instead of threading it through every layer. *)
let ambient : recorder option ref = ref None

let install r = ambient := r
let installed () = !ambient

let with_recorder r f =
  let saved = !ambient in
  ambient := Some r;
  Fun.protect ~finally:(fun () -> ambient := saved) f

let enable r v = r.on <- v

(* The disabled fast path is this one read of a global ref: no effect
   is performed, nothing is allocated. *)
let active () =
  match !ambient with Some r when r.on -> Some r | _ -> None

let enabled () = active () <> None

type _ Effect.t +=
  | Get_span : t option Effect.t
  | Set_span : t option -> unit Effect.t

(* Outside a spawned process nothing handles these effects; tracing is
   then simply off for that code, not an error. *)
let current () = try Effect.perform Get_span with Effect.Unhandled _ -> None
let set sp = try Effect.perform (Set_span sp) with Effect.Unhandled _ -> ()

let fresh_id r =
  r.next_id <- r.next_id + 1;
  r.next_id

let mk r ~trace ~parent ~name ~track ~attrs ~start_us =
  r.spans_made <- r.spans_made + 1;
  let span_id = fresh_id r in
  {
    trace_id = (if trace = 0 then span_id else trace);
    span_id;
    parent_id = parent;
    name;
    track;
    start_us;
    stop_us = start_us;
    attrs;
    kids = [];
  }

let close r sp = sp.stop_us <- max sp.start_us (r.clock ())

(* ---------- sinking finished roots ---------- *)

(* Retention is by (duration, then arrival order), all simulated-time
   quantities: two identical runs retain identical trees. *)
let sample_slow r sp =
  let dur = duration sp in
  r.sampled <- r.sampled + 1;
  Stats.Summary.add r.lat (float_of_int dur);
  let qualifies =
    (match r.threshold_us with Some th -> dur >= th | None -> false)
    || float_of_int dur >= Stats.Summary.percentile_of r.lat 99.
  in
  if qualifies then begin
    r.slow_seq <- r.slow_seq + 1;
    r.slowset <- (dur, r.slow_seq, sp) :: r.slowset;
    if List.length r.slowset > r.slow_keep then begin
      (* evict the least slow; on equal durations keep the older tree *)
      let victim =
        List.fold_left
          (fun best ((d, s, _) as e) ->
            match best with
            | Some (bd, bs, _) when bd < d || (bd = d && bs < s) -> best
            | _ -> Some e)
          None r.slowset
      in
      match victim with
      | Some (_, vs, _) ->
          r.slowset <- List.filter (fun (_, s, _) -> s <> vs) r.slowset;
          r.slow_drops <- r.slow_drops + 1
      | None -> ()
    end
  end

let complete_root r ~sample sp =
  r.roots_done <- r.roots_done + 1;
  if Queue.length r.log >= r.log_capacity then begin
    ignore (Queue.pop r.log);
    r.log_dropped <- r.log_dropped + 1
  end;
  Queue.push sp r.log;
  if sample then sample_slow r sp

(* ---------- instrumentation entry points ---------- *)

let root ~name ~track ?(attrs = []) ?(sample = true) f =
  match active () with
  | None -> f ()
  | Some r ->
      let sp =
        mk r ~trace:0 ~parent:0 ~name ~track ~attrs ~start_us:(r.clock ())
      in
      let prev = current () in
      set (Some sp);
      Fun.protect
        ~finally:(fun () ->
          set prev;
          close r sp;
          complete_root r ~sample sp)
        f

let span ~name ?track ?(attrs = []) f =
  match active () with
  | None -> f ()
  | Some r -> (
      match current () with
      | None -> f ()
      | Some parent ->
          let track = Option.value track ~default:parent.track in
          let sp =
            mk r ~trace:parent.trace_id ~parent:parent.span_id ~name ~track
              ~attrs ~start_us:(r.clock ())
          in
          parent.kids <- sp :: parent.kids;
          set (Some sp);
          Fun.protect
            ~finally:(fun () ->
              set (Some parent);
              close r sp)
            f)

let interval ~name ?track ?(attrs = []) ~start_us ~stop_us () =
  match active () with
  | None -> ()
  | Some r -> (
      match current () with
      | None -> ()
      | Some parent ->
          let track = Option.value track ~default:parent.track in
          let sp =
            mk r ~trace:parent.trace_id ~parent:parent.span_id ~name ~track
              ~attrs ~start_us
          in
          sp.stop_us <- max start_us stop_us;
          parent.kids <- sp :: parent.kids)

let add_attr k v =
  match active () with
  | None -> ()
  | Some _ -> (
      match current () with
      | None -> ()
      | Some sp -> sp.attrs <- sp.attrs @ [ (k, v) ])

(* ---------- wire propagation ---------- *)

type ctx = { trace : int; parent : int }

let ctx () =
  match active () with
  | None -> None
  | Some _ -> (
      match current () with
      | None -> None
      | Some sp -> Some { trace = sp.trace_id; parent = sp.span_id })

let subtree c ~name ~track ?(attrs = []) ?start_us f =
  match active () with
  | None -> (f (), None)
  | Some r ->
      let start_us = Option.value start_us ~default:(r.clock ()) in
      let sp = mk r ~trace:c.trace ~parent:c.parent ~name ~track ~attrs ~start_us in
      let prev = current () in
      set (Some sp);
      let result =
        Fun.protect
          ~finally:(fun () ->
            set prev;
            close r sp)
          f
      in
      (result, Some sp)

let graft sub =
  match active () with
  | None -> ()
  | Some _ -> (
      match current () with
      | None -> ()
      | Some parent -> parent.kids <- sub :: parent.kids)

(* ---------- consumers ---------- *)

let roots r = List.of_seq (Queue.to_seq r.log)

let slow r =
  List.map
    (fun (_, _, sp) -> sp)
    (List.sort
       (fun (d1, s1, _) (d2, s2, _) ->
         if d1 <> d2 then compare d2 d1 else compare s1 s2)
       r.slowset)

let export_roots r =
  let ring = roots r in
  let seen = Hashtbl.create 64 in
  List.iter (fun sp -> Hashtbl.replace seen sp.span_id ()) ring;
  let extra =
    List.filter (fun sp -> not (Hashtbl.mem seen sp.span_id)) (slow r)
  in
  List.sort
    (fun a b ->
      if a.start_us <> b.start_us then compare a.start_us b.start_us
      else compare a.span_id b.span_id)
    (ring @ extra)

(* ---------- Chrome trace-event export ---------- *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let attr_json = function
  | I n -> string_of_int n
  | S s -> Printf.sprintf "\"%s\"" (esc s)
  | B b -> if b then "true" else "false"

let split_track track =
  match String.index_opt track '/' with
  | Some i ->
      ( String.sub track 0 i,
        String.sub track (i + 1) (String.length track - i - 1) )
  | None -> (track, track)

(* pids and tids are assigned in first-seen order over the
   deterministic export walk, so the same run yields the same file. *)
let to_chrome r =
  let b = Buffer.create 4096 in
  let pids = Hashtbl.create 8 and tids = Hashtbl.create 16 in
  let pid_order = ref [] and tid_order = ref [] in
  let pid_of proc =
    match Hashtbl.find_opt pids proc with
    | Some p -> p
    | None ->
        let p = Hashtbl.length pids + 1 in
        Hashtbl.replace pids proc p;
        pid_order := (p, proc) :: !pid_order;
        p
  in
  let tid_of track =
    match Hashtbl.find_opt tids track with
    | Some pt -> pt
    | None ->
        let proc, thread = split_track track in
        let p = pid_of proc in
        let t = Hashtbl.length tids + 1 in
        Hashtbl.replace tids track (p, t);
        tid_order := (p, t, thread) :: !tid_order;
        (p, t)
  in
  let exported = export_roots r in
  List.iter (fun sp -> iter (fun s -> ignore (tid_of s.track)) sp) exported;
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let event s =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b s
  in
  List.iter
    (fun (p, proc) ->
      event
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
           p (esc proc)))
    (List.rev !pid_order);
  List.iter
    (fun (p, t, thread) ->
      event
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
           p t (esc thread)))
    (List.rev !tid_order);
  (* each track's slices in time order: trees from separate runs in one
     recorder session (a local and a remote run both owning "fio.job0")
     interleave on shared tracks, and viewers expect sorted slices *)
  let slices = ref [] in
  List.iter
    (fun root ->
      iter
        (fun s ->
          let p, t = tid_of s.track in
          slices := (p, t, s) :: !slices)
        root)
    exported;
  let slices =
    List.sort
      (fun (p1, t1, s1) (p2, t2, s2) ->
        if p1 <> p2 then compare p1 p2
        else if t1 <> t2 then compare t1 t2
        else if s1.start_us <> s2.start_us then compare s1.start_us s2.start_us
        else if duration s1 <> duration s2 then
          compare (duration s2) (duration s1) (* enclosing slice first *)
        else compare s1.span_id s2.span_id)
      (List.rev !slices)
  in
  List.iter
    (fun (p, t, s) ->
      let args =
        String.concat ","
          (Printf.sprintf "\"trace\":%d,\"span\":%d,\"parent\":%d" s.trace_id
             s.span_id s.parent_id
          :: List.map
               (fun (k, v) -> Printf.sprintf "\"%s\":%s" (esc k) (attr_json v))
               s.attrs)
      in
      event
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":\"%s\",\"cat\":\"sim\",\"args\":{%s}}"
           p t s.start_us (duration s) (esc s.name) args))
    slices;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* ---------- text renderer ---------- *)

let render_attrs attrs =
  String.concat " "
    (List.map
       (fun (k, v) ->
         Printf.sprintf "%s=%s" k
           (match v with
           | I n -> string_of_int n
           | S s -> s
           | B b -> string_of_bool b))
       attrs)

let render_tree b root =
  let rec go depth parent_track sp =
    let track =
      if sp.track = parent_track then "" else Printf.sprintf " [%s]" sp.track
    in
    let attrs = render_attrs sp.attrs in
    Buffer.add_string b
      (Printf.sprintf "%s%-*s @+%dus %dus%s%s\n" (String.make (2 * depth) ' ')
         (max 1 (30 - (2 * depth)))
         sp.name
         (sp.start_us - root.start_us)
         (duration sp) track
         (if attrs = "" then "" else " " ^ attrs));
    List.iter (go (depth + 1) sp.track) (children sp)
  in
  go 0 "" root

let render_slowest ?(limit = 3) r =
  let b = Buffer.create 1024 in
  let retained = slow r in
  Buffer.add_string b
    (Printf.sprintf "slowest ops: %d retained of %d sampled (%d roots)\n"
       (List.length retained) r.sampled r.roots_done);
  List.iteri
    (fun i sp ->
      if i < limit then begin
        Buffer.add_string b
          (Printf.sprintf "#%d  %s  %dus  trace=%d  track=%s\n" (i + 1)
             sp.name (duration sp) sp.trace_id sp.track);
        render_tree b sp
      end)
    retained;
  Buffer.contents b

let register_metrics r reg ~instance =
  Metrics.register reg ~layer:"sim.span" ~instance (fun () ->
      [
        ("roots", Metrics.Int r.roots_done);
        ("spans", Metrics.Int r.spans_made);
        ("log_len", Metrics.Int (Queue.length r.log));
        ("log_dropped", Metrics.Int r.log_dropped);
        ("sampled", Metrics.Int r.sampled);
        ("slow_retained", Metrics.Int (List.length r.slowset));
        ("slow_drops", Metrics.Int r.slow_drops);
      ])
