type flusher = Page.t -> free_after:bool -> int

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable allocs : int;
  mutable alloc_waits : int;
  mutable frees : int;
  mutable prefetch_wasted : int;
}

type t = {
  engine : Sim.Engine.t;
  param : Param.t;
  frames : Page.t array;
  cache : (Page.ident, Page.t) Hashtbl.t;
  by_vnode : (int, (int, Page.t) Hashtbl.t) Hashtbl.t;
  free : int Queue.t;  (** frame numbers *)
  memwait : Sim.Condition.t;
  need_pageout : Sim.Condition.t;
  flushers : (int, flusher) Hashtbl.t;
  stats : stats;
}

let create engine param =
  Param.validate param;
  let frames =
    Array.init param.Param.physmem_pages (fun i ->
        Page.make ~frameno:i ~pagesize:param.Param.pagesize)
  in
  let free = Queue.create () in
  Array.iter (fun (p : Page.t) -> Queue.push p.Page.frameno free) frames;
  {
    engine;
    param;
    frames;
    cache = Hashtbl.create 4096;
    by_vnode = Hashtbl.create 64;
    free;
    memwait = Sim.Condition.create engine "memwait";
    need_pageout = Sim.Condition.create engine "need-pageout";
    flushers = Hashtbl.create 64;
    stats =
      {
        lookups = 0;
        hits = 0;
        allocs = 0;
        alloc_waits = 0;
        frees = 0;
        prefetch_wasted = 0;
      };
  }

let engine t = t.engine
let param t = t.param
let freecnt t = Queue.length t.free
let shortage t = max 0 (t.param.Param.lotsfree - freecnt t)
let need_pageout t = t.need_pageout
let frames t = t.frames

let lookup t ident =
  t.stats.lookups <- t.stats.lookups + 1;
  match Hashtbl.find_opt t.cache ident with
  | Some p ->
      t.stats.hits <- t.stats.hits + 1;
      Page.set_referenced p true;
      Some p
  | None -> None

let vnode_tbl t vid =
  match Hashtbl.find_opt t.by_vnode vid with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.add t.by_vnode vid tbl;
      tbl

let alloc t ident =
  if Hashtbl.mem t.cache ident then
    invalid_arg "Pool.alloc: ident already cached";
  t.stats.allocs <- t.stats.allocs + 1;
  if freecnt t <= t.param.Param.lotsfree then
    Sim.Condition.signal t.need_pageout;
  let waited = ref false in
  while Queue.is_empty t.free && not (Hashtbl.mem t.cache ident) do
    waited := true;
    Sim.Condition.signal t.need_pageout;
    Sim.Condition.wait t.memwait
  done;
  if !waited then t.stats.alloc_waits <- t.stats.alloc_waits + 1;
  match Hashtbl.find_opt t.cache ident with
  | Some p ->
      (* someone else entered it while we slept for memory *)
      Page.set_referenced p true;
      `Existing p
  | None ->
      let frameno = Queue.pop t.free in
      let p = t.frames.(frameno) in
      assert (p.Page.ident = None);
      let ok = Page.try_lock p in
      assert ok;
      Page.set_ident p (Some ident);
      Page.set_valid p false;
      Page.set_dirty p false;
      Page.set_referenced p true;
      Hashtbl.replace t.cache ident p;
      Hashtbl.replace (vnode_tbl t ident.Page.vid) ident.Page.off p;
      `Fresh p

let free_page t (p : Page.t) =
  if not p.Page.busy then invalid_arg "Pool.free_page: caller must hold page";
  (match p.Page.ident with
  | Some ident ->
      Hashtbl.remove t.cache ident;
      (match Hashtbl.find_opt t.by_vnode ident.Page.vid with
      | Some tbl -> Hashtbl.remove tbl ident.Page.off
      | None -> ())
  | None -> invalid_arg "Pool.free_page: page already free");
  if p.Page.prefetched then
    t.stats.prefetch_wasted <- t.stats.prefetch_wasted + 1;
  Page.set_ident p None;
  Page.set_valid p false;
  Page.set_dirty p false;
  Page.set_referenced p false;
  Page.set_prefetched p false;
  Queue.push p.Page.frameno t.free;
  t.stats.frees <- t.stats.frees + 1;
  Page.unbusy p;
  Sim.Condition.broadcast t.memwait

let pages_of_vnode t vid =
  match Hashtbl.find_opt t.by_vnode vid with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun _ p acc -> p :: acc) tbl []
      |> List.sort (fun (a : Page.t) b ->
             match (a.Page.ident, b.Page.ident) with
             | Some ia, Some ib -> compare ia.Page.off ib.Page.off
             | _ -> 0)

let invalidate_vnode t vid =
  (* Busy pages may be mid-I/O: wait each one out, then re-check that it
     still belongs to the vnode (completion may already have freed it). *)
  let rec drain () =
    match pages_of_vnode t vid with
    | [] -> ()
    | p :: _ ->
        Page.lock t.engine p;
        (match p.Page.ident with
        | Some i when i.Page.vid = vid -> free_page t p
        | Some _ | None -> Page.unbusy p);
        drain ()
  in
  drain ()

let invalidate_all t =
  (* server reboot: every cached page belongs to the pre-crash file
     system instance and must not survive into the recovered one *)
  let vids = Hashtbl.fold (fun vid _ acc -> vid :: acc) t.by_vnode [] in
  List.iter (fun vid -> invalidate_vnode t vid) vids;
  Hashtbl.reset t.flushers

let register_flusher t vid f = Hashtbl.replace t.flushers vid f
let unregister_flusher t vid = Hashtbl.remove t.flushers vid
let flusher_for t vid = Hashtbl.find_opt t.flushers vid
let stats t = t.stats

let register_metrics t reg ~instance =
  Sim.Metrics.register reg ~layer:"vm.pool" ~instance (fun () ->
      let s = t.stats in
      Sim.Metrics.
        [
          ("lookups", Int s.lookups);
          ("hits", Int s.hits);
          ("allocs", Int s.allocs);
          ("alloc_waits", Int s.alloc_waits);
          ("frees", Int s.frees);
          ("prefetch_wasted_pages", Int s.prefetch_wasted);
          ("freecnt", Int (freecnt t));
          ("physmem_pages", Int t.param.Param.physmem_pages);
        ])
