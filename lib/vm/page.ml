type ident = { vid : int; off : int }

type t = {
  frameno : int;
  data : bytes;
  mutable ident : ident option;
  mutable valid : bool;
  mutable dirty : bool;
  mutable referenced : bool;
  mutable busy : bool;
  mutable prefetched : bool;
  mutable waiters : (unit -> unit) list;
}

let make ~frameno ~pagesize =
  {
    frameno;
    data = Bytes.make pagesize '\000';
    ident = None;
    valid = false;
    dirty = false;
    referenced = false;
    busy = false;
    prefetched = false;
    waiters = [];
  }

let set_ident t i = t.ident <- i
let set_valid t b = t.valid <- b
let set_dirty t b = t.dirty <- b
let set_referenced t b = t.referenced <- b
let set_prefetched t b = t.prefetched <- b

let rec lock engine t =
  if t.busy then begin
    Sim.Engine.suspend engine ~register:(fun resume ->
        t.waiters <- resume :: t.waiters);
    lock engine t
  end
  else t.busy <- true

let wait_unbusy engine t =
  let before = Sim.Engine.now engine in
  while t.busy do
    Sim.Engine.suspend engine ~register:(fun resume ->
        t.waiters <- resume :: t.waiters)
  done;
  let after = Sim.Engine.now engine in
  Sim.Attrib.charge_current "disk.wait" (after - before);
  if after > before then
    Sim.Span.interval ~name:"vm.wait_page" ~start_us:before ~stop_us:after ()

let unbusy t =
  if not t.busy then invalid_arg "Page.unbusy: not busy";
  t.busy <- false;
  let ws = List.rev t.waiters in
  t.waiters <- [];
  List.iter (fun w -> w ()) ws

let try_lock t =
  if t.busy then false
  else begin
    t.busy <- true;
    true
  end
