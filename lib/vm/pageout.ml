type config = {
  tick : Sim.Time.t;
  front_cost : Sim.Time.t;
  back_cost : Sim.Time.t;
  free_cost : Sim.Time.t;
}

let default_config =
  {
    tick = Sim.Time.ms 20;
    front_cost = Sim.Time.us 20;
    back_cost = Sim.Time.us 30;
    free_cost = Sim.Time.us 60;
  }

type stats = {
  mutable scans : int;
  mutable freed : int;
  mutable flushed : int;
  mutable wakeups : int;
  mutable skipped_no_flusher : int;
}

type t = {
  pool : Pool.t;
  cpu : Sim.Cpu.t;
  cfg : config;
  stats : stats;
  mutable fronthand : int;
  mutable backhand : int;
}

let cpu_label = "pageout"

let front_hand d p =
  ignore d;
  if (p : Page.t).Page.ident <> None && not p.Page.busy then
    Page.set_referenced p false

let back_hand d (p : Page.t) =
  d.stats.scans <- d.stats.scans + 1;
  if p.Page.ident <> None && (not p.Page.busy) && not p.Page.referenced then
    if p.Page.dirty then begin
      match p.Page.ident with
      | Some ident -> begin
          match Pool.flusher_for d.pool ident.Page.vid with
          | Some flush ->
              if Page.try_lock p then
                (* the flusher may kluster contiguous dirty neighbours
                   into the same I/O; count what actually went out *)
                d.stats.flushed <- d.stats.flushed + flush p ~free_after:true
          | None -> d.stats.skipped_no_flusher <- d.stats.skipped_no_flusher + 1
        end
      | None -> ()
    end
    else if Page.try_lock p then begin
      d.stats.freed <- d.stats.freed + 1;
      Sim.Cpu.charge d.cpu ~label:cpu_label d.cfg.free_cost;
      Pool.free_page d.pool p
    end

let scan_batch d n =
  let frames = Pool.frames d.pool in
  let nframes = Array.length frames in
  for _ = 1 to n do
    front_hand d frames.(d.fronthand);
    back_hand d frames.(d.backhand);
    d.fronthand <- (d.fronthand + 1) mod nframes;
    d.backhand <- (d.backhand + 1) mod nframes
  done;
  Sim.Cpu.charge d.cpu ~label:cpu_label
    (n * (d.cfg.front_cost + d.cfg.back_cost))

let rate d =
  let prm = Pool.param d.pool in
  let s = Pool.shortage d.pool in
  if s = 0 then 0
  else
    let lf = prm.Param.lotsfree in
    prm.Param.slowscan
    + ((prm.Param.fastscan - prm.Param.slowscan) * s / max 1 lf)

let rec daemon d () =
  if Pool.shortage d.pool = 0 then begin
    Sim.Condition.wait (Pool.need_pageout d.pool);
    d.stats.wakeups <- d.stats.wakeups + 1;
    daemon d ()
  end
  else begin
    let per_tick =
      max 1 (rate d * d.cfg.tick / Sim.Time.sec 1)
    in
    scan_batch d per_tick;
    Sim.Engine.sleep (Pool.engine d.pool) d.cfg.tick;
    daemon d ()
  end

let start ?(config = default_config) pool cpu =
  let prm = Pool.param pool in
  let d =
    {
      pool;
      cpu;
      cfg = config;
      stats =
        { scans = 0; freed = 0; flushed = 0; wakeups = 0; skipped_no_flusher = 0 };
      fronthand = prm.Param.handspread mod prm.Param.physmem_pages;
      backhand = 0;
    }
  in
  Sim.Engine.spawn (Pool.engine pool) ~name:"pageout" (daemon d);
  d

let stats d = d.stats

let register_metrics d reg ~instance =
  Sim.Metrics.register reg ~layer:"vm.pageout" ~instance (fun () ->
      let s = d.stats in
      Sim.Metrics.
        [
          ("scans", Int s.scans);
          ("freed", Int s.freed);
          ("flushed", Int s.flushed);
          ("wakeups", Int s.wakeups);
          ("skipped_no_flusher", Int s.skipped_no_flusher);
        ])
