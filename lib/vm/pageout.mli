(** The pageout daemon: the "basic two handed clock".

    "The first hand of the clock clears reference bits and the second
    hand frees the page if the reference bit is still clear.  The hands
    move, in unison, only when the amount of free memory drops below a
    low water mark."

    The daemon is a simulated process.  It sleeps until the allocator
    signals a shortage, then scans in ticks: per tick both hands advance
    by a batch sized from the current scan rate (interpolated between
    [slowscan] and [fastscan] by the severity of the shortage), charging
    CPU per page examined — which is precisely the overhead the paper's
    free-behind heuristic exists to avoid. *)

type config = {
  tick : Sim.Time.t;  (** scan granularity (default 20 ms) *)
  front_cost : Sim.Time.t;  (** CPU per front-hand examination *)
  back_cost : Sim.Time.t;  (** CPU per back-hand examination *)
  free_cost : Sim.Time.t;  (** CPU per page freed *)
}

val default_config : config

type stats = {
  mutable scans : int;  (** pages examined by the back hand *)
  mutable freed : int;
  mutable flushed : int;  (** dirty pages pushed *)
  mutable wakeups : int;
  mutable skipped_no_flusher : int;
}

type t

val start : ?config:config -> Pool.t -> Sim.Cpu.t -> t
(** Spawn the daemon. *)

val stats : t -> stats

val register_metrics : t -> Sim.Metrics.t -> instance:string -> unit
(** Register the daemon's scan/free/flush counters as a
    ["vm.pageout"] source. *)

val cpu_label : string
(** The {!Sim.Cpu} accounting label under which daemon time is charged
    (["pageout"]). *)
