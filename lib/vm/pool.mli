(** The unified page pool: every frame in the machine, the ⟨vnode,
    offset⟩ name cache over the in-use ones, and the free list.

    Allocation takes a frame from the free list; when free memory is
    short the allocator kicks the pageout daemon (via {!need_pageout})
    and, if the list is empty, blocks the caller until somebody frees a
    frame — this is exactly the back-pressure through which a big writer
    "locks down all of memory" in the paper's fairness discussion.

    File systems register a {e flusher} per vnode so the pageout daemon
    can push dirty pages without knowing anything about file systems. *)

type flusher = Page.t -> free_after:bool -> int
(** Write a dirty page to backing store.  Called with the page lock
    (busy) held by the caller; the flusher owns the page until the I/O
    completes, then marks it clean, unbusies it and, when [free_after],
    frees it.  Returns the number of pages written: a file system may
    kluster physically contiguous dirty neighbours into the same I/O
    (locking them itself), and the count keeps the daemon's flush
    accounting honest. *)

type stats = {
  mutable lookups : int;
  mutable hits : int;
  mutable allocs : int;
  mutable alloc_waits : int;  (** allocations that had to sleep *)
  mutable frees : int;
  mutable prefetch_wasted : int;
      (** pages freed with the prefetched flag still set: read ahead
          but never consumed *)
}

type t

val create : Sim.Engine.t -> Param.t -> t
val engine : t -> Sim.Engine.t
val param : t -> Param.t

val lookup : t -> Page.ident -> Page.t option
(** Find a cached page; sets its reference bit.  The page may be busy —
    callers that need the contents must {!Page.wait_unbusy} and then
    re-check [valid]/[ident]. *)

val alloc : t -> Page.ident -> [ `Fresh of Page.t | `Existing of Page.t ]
(** Take a free frame and enter it in the cache under [ident].  A
    [`Fresh] page is busy (caller-owned), invalid and clean.  Blocks
    when no frame is free; because that sleep can race with another
    process faulting the same page, the cache is re-checked afterwards
    and the already-entered page returned as [`Existing] (not locked by
    the caller). *)

val free_page : t -> Page.t -> unit
(** Return a frame to the free list.  The caller must hold the page
    busy; the page leaves the cache, loses its identity and is marked
    not busy.  Wakes processes sleeping in {!alloc}. *)

val freecnt : t -> int

val shortage : t -> int
(** [lotsfree - freecnt], clamped at 0: how far below the pageout
    threshold we are. *)

val need_pageout : t -> Sim.Condition.t
(** Signalled by the allocator when free memory drops below
    [lotsfree]. *)

val frames : t -> Page.t array
(** All frames, for the clock hands. *)

val pages_of_vnode : t -> int -> Page.t list
(** Snapshot of cached pages of a vnode, ascending offset. *)

val invalidate_vnode : t -> int -> unit
(** Free every cached page of the vnode (waiting out busy ones).
    Used by unlink and truncate.  Must run in a process. *)

val invalidate_all : t -> unit
(** Free every cached page and drop every registered flusher — the
    page cache of a machine whose file system just went away (server
    reboot).  Must run in a process. *)

val register_flusher : t -> int -> flusher -> unit
val unregister_flusher : t -> int -> unit

val flusher_for : t -> int -> flusher option

val stats : t -> stats

val register_metrics : t -> Sim.Metrics.t -> instance:string -> unit
(** Register the pool's cache/allocation counters (including wasted
    prefetch and the free-list gauge) as a ["vm.pool"] source. *)
