(** Page frames.

    "There is no longer a distinction between process pages and I/O
    pages...  This unified naming scheme allows all of memory to be used
    for any purpose, based on demand."  Every frame is named, when in
    use, by a ⟨vnode id, file offset⟩ pair and carries the actual data
    bytes.

    Flag protocol (as in the SunOS/BSD page layer):
    - [busy]: I/O in flight or otherwise locked; waiters queue on the
      page and are woken by {!unbusy}.
    - [valid]: contents reflect the file (set after read or zero-fill).
    - [dirty]: modified since last written.
    - [referenced]: software reference bit, cleared by the clock's front
      hand, set by every lookup.
    - [prefetched]: brought in by read-ahead and not yet consumed; the
      consumer clears it on first access (counting the prefetch as
      used), the pool counts a still-set flag at free time as wasted
      prefetch. *)

type ident = { vid : int; off : int }
(** [off] is page-aligned. *)

type t = private {
  frameno : int;
  data : bytes;
  mutable ident : ident option;  (** [None] = on the free list *)
  mutable valid : bool;
  mutable dirty : bool;
  mutable referenced : bool;
  mutable busy : bool;
  mutable prefetched : bool;
  mutable waiters : (unit -> unit) list;
}

val make : frameno:int -> pagesize:int -> t

val set_ident : t -> ident option -> unit
val set_valid : t -> bool -> unit
val set_dirty : t -> bool -> unit
val set_referenced : t -> bool -> unit
val set_prefetched : t -> bool -> unit

val lock : Sim.Engine.t -> t -> unit
(** Wait until not busy, then mark busy (the caller owns the page). *)

val wait_unbusy : Sim.Engine.t -> t -> unit
(** Wait until not busy without acquiring it. *)

val unbusy : t -> unit
(** Clear busy and wake all waiters. *)

val try_lock : t -> bool
