let bsize = Ufs.Layout.bsize

type stats = {
  mutable read_calls : int;
  mutable write_calls : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable ra_issued : int;
  mutable ra_used : int;
  mutable ra_streams : int;  (** read-ahead windows created beyond the first *)
  mutable ra_wasted : int;  (** prefetched pages dropped before any use *)
  mutable write_gathers : int;
  mutable dirty_sleeps : int;
  mutable attr_hits : int;
  mutable attr_misses : int;
  mutable evictions : int;
  gather_bytes : Sim.Stats.Hist.t;
}

type cpage = {
  pdata : bytes;
  mutable pvalid : bool;
  mutable pdirty : bool;
  mutable pbusy : bool;  (** a fill RPC is in flight *)
  mutable pflush : int;  (** in-flight WRITE payloads covering this page *)
  mutable pprefetched : bool;
  pcond : Sim.Condition.t;  (** unbusy waiters *)
}

(* One sequential reader's footprint in a file (the client analogue of
   [Ufs.Types.rstream]): its predicted next offset and its own
   read-ahead high-water mark.  Giving each stream a private frontier
   is also the fix for the old single-predictor bug where [nextrio]
   only ever grew — a reader that seeked backwards got no read-ahead at
   all until it crawled past its previous high-water mark. *)
type rwin = {
  mutable w_nextr : int;  (** predicted next block offset *)
  mutable w_raio : int;  (** read-ahead frontier (grows per window) *)
  mutable w_hits : int;
  mutable w_born : int;  (** miss-clock value at creation / last refresh *)
  mutable w_stamp : int;  (** recency, for LRU eviction *)
}

type file = {
  cl : t;
  fh : Proto.fh;
  mutable attr : Proto.attr;
  mutable attr_at : Sim.Time.t option;  (** [None] = stale *)
  mutable fsize : int;  (** client view: local writes extend it now *)
  pages : (int, cpage) Hashtbl.t;  (** block offset -> page *)
  (* read clustering state: one window per concurrent sequential stream *)
  mutable rwins : rwin list;
  mutable rw_clock : int;  (** access counter, stamps windows *)
  mutable rw_misses : int;  (** miss counter, ages speculative windows *)
  (* write gathering (client-side delayoff / delaylen) *)
  mutable delayoff : int;
  mutable delaylen : int;
  (* push bookkeeping *)
  mutable pending_pushes : int;
  mutable pushing : bool;  (** a WRITE RPC of this file is in flight *)
  push_cond : Sim.Condition.t;
}

and job =
  | Ra of file * int * int  (** read-ahead: file, offset, length *)
  | Push of file * int * int * bytes * cpage list
      (** write-behind: file, off, dirty credit, payload, covered pages *)

and t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  rpc : Rpc.t;
  cluster : int;
  ra_depth : int;
  dirty_limit : int;
  attr_ttl : Sim.Time.t;
  cache_pages : int;
  readdir_count : int;
  costs : Ufs.Costs.t;
  jobs : job Queue.t;
  work : Sim.Condition.t;
  mutable dirty_bytes : int;  (** dirty pages + in-flight WRITE payloads *)
  dirty_cond : Sim.Condition.t;
  lru : (file * int) Queue.t;  (** eviction candidates, oldest first *)
  mutable resident : int;
  files : (string, file) Hashtbl.t;
  st : stats;
}

let mk_stats () =
  {
    read_calls = 0;
    write_calls = 0;
    cache_hits = 0;
    cache_misses = 0;
    ra_issued = 0;
    ra_used = 0;
    ra_streams = 0;
    ra_wasted = 0;
    write_gathers = 0;
    dirty_sleeps = 0;
    attr_hits = 0;
    attr_misses = 0;
    evictions = 0;
    gather_bytes = Sim.Stats.Hist.create ();
  }

let charge t c = Sim.Cpu.charge t.cpu ~label:"nfs.client" c

(* run a blocking section and charge the caller's attribution clock
   (if any) with the time it actually spent blocked; a traced caller
   additionally gets the wait as a span interval *)
let charged t phase f =
  let before = Sim.Engine.now t.engine in
  f ();
  let after = Sim.Engine.now t.engine in
  Sim.Attrib.charge_current phase (after - before);
  if after > before then
    Sim.Span.interval ~name:phase ~start_us:before ~stop_us:after ()

(* ---------- read-ahead windows ---------- *)

let max_rwins = 8
let rwin_miss_ttl = 4

let mk_rwin ~nextr ~born ~stamp =
  { w_nextr = nextr; w_raio = 0; w_hits = 0; w_born = born; w_stamp = stamp }

let reset_rwins f =
  f.rw_clock <- 0;
  f.rw_misses <- 0;
  f.rwins <- [ mk_rwin ~nextr:0 ~born:0 ~stamp:0 ]

(* The window predicting this access: either the access starts the
   block the window expects, or it continues inside the block just
   before the window's prediction (a sub-block reader part way through
   its current block).  Prefer established, recent windows when several
   match. *)
let find_rwin f ~po ~cur =
  let matches w = w.w_nextr = po || (cur > po && w.w_nextr = po + bsize) in
  List.fold_left
    (fun best w ->
      if not (matches w) then best
      else
        match best with
        | Some b when (b.w_hits, b.w_stamp) >= (w.w_hits, w.w_stamp) -> best
        | _ -> Some w)
    None f.rwins

let touch_rwin f w ~po =
  f.rw_clock <- f.rw_clock + 1;
  w.w_hits <- w.w_hits + 1;
  w.w_stamp <- f.rw_clock;
  w.w_born <- f.rw_misses;
  w.w_nextr <- po + bsize

(* No window predicted [po]: a new stream may be starting.  Repoint the
   scratch window (never-hit, so nothing is lost) if there is one;
   otherwise grow the table, evicting the least-recent window at the
   cap.  Speculative windows that never collected two hits expire after
   a few misses so a random reader cannot fill the table. *)
let note_miss_rwin t f ~po =
  f.rw_clock <- f.rw_clock + 1;
  f.rw_misses <- f.rw_misses + 1;
  let live w = w.w_hits >= 2 || f.rw_misses - w.w_born <= rwin_miss_ttl in
  f.rwins <- List.filter live f.rwins;
  let scratch =
    List.fold_left
      (fun best w ->
        if w.w_hits > 0 then best
        else
          match best with
          | Some b when b.w_stamp >= w.w_stamp -> best
          | _ -> Some w)
      None f.rwins
  in
  match scratch with
  | Some w ->
      w.w_stamp <- f.rw_clock;
      w.w_born <- f.rw_misses;
      w.w_nextr <- po + bsize;
      (* restart the frontier: read-ahead for the repointed stream must
         begin at its new position, not at some stale high-water mark *)
      w.w_raio <- 0
  | None ->
      (if List.length f.rwins >= max_rwins then
         let lru =
           List.fold_left
             (fun best w ->
               match best with
               | Some b when b.w_stamp <= w.w_stamp -> best
               | _ -> Some w)
             None f.rwins
         in
         match lru with
         | Some lw -> f.rwins <- List.filter (fun w -> w != lw) f.rwins
         | None -> ());
      t.st.ra_streams <- t.st.ra_streams + 1;
      f.rwins <-
        mk_rwin ~nextr:(po + bsize) ~born:f.rw_misses ~stamp:f.rw_clock
        :: f.rwins

(* ---------- page cache ---------- *)

(* Make room: pop eviction candidates until a valid, clean, idle page
   turns up.  Entries can be stale (the page was already dropped) and
   dirty/busy pages are skipped and re-queued, as are pages whose only
   up-to-date copy rides in a still-in-flight WRITE payload (pflush >
   0): dropping one of those and refetching would resurrect the
   server's pre-write data.  If one full sweep finds nothing evictable
   the cache is allowed to grow past the cap. *)
let evict_one t =
  let attempts = ref (Queue.length t.lru) in
  let evicted = ref false in
  while (not !evicted) && !attempts > 0 do
    decr attempts;
    let f, po = Queue.pop t.lru in
    match Hashtbl.find_opt f.pages po with
    | None -> ()  (* stale entry *)
    | Some p ->
        if p.pvalid && (not p.pdirty) && (not p.pbusy) && p.pflush = 0
        then begin
          (* read ahead but dropped before anybody read it: the RPC and
             the frame were spent for nothing *)
          if p.pprefetched then t.st.ra_wasted <- t.st.ra_wasted + 1;
          Hashtbl.remove f.pages po;
          t.resident <- t.resident - 1;
          t.st.evictions <- t.st.evictions + 1;
          evicted := true
        end
        else Queue.push (f, po) t.lru
  done

let insert_page t f po =
  if t.resident >= t.cache_pages then evict_one t;
  let p =
    {
      pdata = Bytes.create bsize;
      pvalid = false;
      pdirty = false;
      pbusy = false;
      pflush = 0;
      pprefetched = false;
      pcond = Sim.Condition.create t.engine "nfs.page";
    }
  in
  Hashtbl.replace f.pages po p;
  Queue.push (f, po) t.lru;
  t.resident <- t.resident + 1;
  p

(* Fetch [off, off+len) into the cache with one READ RPC, filling only
   the pages this call claimed (pages already valid or being filled by
   someone else are left alone).  Pages past the server's EOF are
   dropped again.  Runs in whatever process called it: the reader for
   a demand miss, a biod for read-ahead. *)
let fetch_range t f ~off ~len ~prefetched =
  let claims = ref [] in
  let po = ref off in
  while !po < off + len do
    (match Hashtbl.find_opt f.pages !po with
    | Some p when p.pvalid || p.pbusy -> ()
    | Some p ->
        p.pbusy <- true;
        claims := (!po, p) :: !claims
    | None ->
        let p = insert_page t f !po in
        p.pbusy <- true;
        claims := (!po, p) :: !claims);
    po := !po + bsize
  done;
  match List.rev !claims with
  | [] -> ()
  | claims ->
      let lo = List.fold_left (fun a (po, _) -> min a po) max_int claims in
      let hi = List.fold_left (fun a (po, _) -> max a (po + bsize)) 0 claims in
      let data, _eof =
        match Rpc.call t.rpc (Proto.Read { fh = f.fh; off = lo; len = hi - lo }) with
        | Proto.R_read { data; eof } -> (data, eof)
        | Proto.R_err e -> failwith ("nfs read: " ^ e)
        | _ -> assert false
      in
      let n = Bytes.length data in
      List.iter
        (fun (po, p) ->
          let k = po - lo in
          if k < n then begin
            let avail = min bsize (n - k) in
            Bytes.blit data k p.pdata 0 avail;
            if avail < bsize then
              Bytes.fill p.pdata avail (bsize - avail) '\000';
            p.pvalid <- true;
            p.pprefetched <- prefetched
          end
          else begin
            (* past server EOF: forget the placeholder *)
            Hashtbl.remove f.pages po;
            t.resident <- t.resident - 1
          end;
          p.pbusy <- false;
          Sim.Condition.broadcast p.pcond)
        claims

(* ---------- biod pool ---------- *)

let do_push t f ~credit ~pages ~call =
  (* WRITE pushes of one file are strictly serialized: with
     retransmission in play, two overlapping writes in flight could
     land in either order on the server.  Waiters resume FIFO, so the
     dispatch order (= write order) is preserved. *)
  while f.pushing do
    Sim.Condition.wait f.push_cond
  done;
  f.pushing <- true;
  (match Rpc.call t.rpc call with
  | Proto.R_attr _ -> ()
  | Proto.R_err e -> failwith ("nfs write: " ^ e)
  | _ -> assert false);
  f.pushing <- false;
  List.iter (fun p -> p.pflush <- p.pflush - 1) pages;
  t.dirty_bytes <- t.dirty_bytes - credit;
  f.pending_pushes <- f.pending_pushes - 1;
  Sim.Condition.broadcast t.dirty_cond;
  Sim.Condition.broadcast f.push_cond

(* Background biod work opens its own (unsampled) traces: read-ahead
   and write-behind are visible on the client's biod track without
   polluting the op-latency p99 the slow-op sampler watches. *)
let biod_track t = Printf.sprintf "client%d/biod" (Rpc.client_id t.rpc)

let biod t () =
  while true do
    while Queue.is_empty t.jobs do
      Sim.Condition.wait t.work
    done;
    match Queue.pop t.jobs with
    | Ra (f, off, len) ->
        Sim.Span.root ~name:"biod.ra" ~track:(biod_track t) ~sample:false
          ~attrs:[ ("off", Sim.Span.I off); ("len", Sim.Span.I len) ]
          (fun () -> fetch_range t f ~off ~len ~prefetched:true)
    | Push (f, off, credit, data, pages) ->
        Sim.Span.root ~name:"biod.push" ~track:(biod_track t) ~sample:false
          ~attrs:
            [ ("off", Sim.Span.I off); ("len", Sim.Span.I (Bytes.length data)) ]
          (fun () ->
            do_push t f ~credit ~pages
              ~call:(Proto.Write { fh = f.fh; off; data }))
  done

let enqueue t job =
  Queue.push job t.jobs;
  Sim.Condition.signal t.work

(* ---------- mount / namespace ---------- *)

let mount engine ~cpu ~rpc ?(biods = 4) ?(cluster_bytes = 120 * 1024)
    ?(ra_depth = 2) ?(dirty_limit = 240 * 1024)
    ?(attr_ttl = Sim.Time.sec 3) ?(cache_pages = 1024)
    ?(readdir_count = 32) ?(costs = Ufs.Costs.default) () =
  let t =
    {
      engine;
      cpu;
      rpc;
      cluster = cluster_bytes;
      ra_depth;
      dirty_limit;
      attr_ttl;
      cache_pages;
      readdir_count;
      costs;
      jobs = Queue.create ();
      work = Sim.Condition.create engine "biod.work";
      dirty_bytes = 0;
      dirty_cond = Sim.Condition.create engine "nfs.dirty";
      lru = Queue.create ();
      resident = 0;
      files = Hashtbl.create 16;
      st = mk_stats ();
    }
  in
  for i = 1 to biods do
    Sim.Engine.spawn engine ~name:(Printf.sprintf "biod.%d" i) (fun () ->
        biod t ())
  done;
  t

let mk_file t ~fh ~name ~(attr : Proto.attr) =
  let f =
    {
      cl = t;
      fh;
      attr;
      attr_at = Some (Sim.Engine.now t.engine);
      fsize = attr.Proto.size;
      pages = Hashtbl.create 64;
      rwins = [ mk_rwin ~nextr:0 ~born:0 ~stamp:0 ];
      rw_clock = 0;
      rw_misses = 0;
      delayoff = 0;
      delaylen = 0;
      pending_pushes = 0;
      pushing = false;
      push_cond = Sim.Condition.create t.engine ("push." ^ name);
    }
  in
  Hashtbl.replace t.files name f;
  f

(* NFS names are entries in the exported root directory; accept a
   "/name" spelling too so callers can't miss the server by passing the
   path form. *)
let basename name =
  if String.length name > 0 && name.[0] = '/' then
    String.sub name 1 (String.length name - 1)
  else name

let lookup t name =
  let name = basename name in
  charge t t.costs.Ufs.Costs.syscall;
  match Hashtbl.find_opt t.files name with
  | Some f -> Some f
  | None -> (
      match Rpc.call t.rpc (Proto.Lookup { dir = Proto.root_fh; name }) with
      | Proto.R_fh { fh; attr } -> Some (mk_file t ~fh ~name ~attr)
      | Proto.R_err _ -> None
      | _ -> assert false)

(* Page through the directory with the resume cookie; the caller sees
   one flat listing however many RPCs it took. *)
let readdir t =
  charge t t.costs.Ufs.Costs.syscall;
  let rec go cookie acc =
    match
      Rpc.call t.rpc
        (Proto.Readdir { fh = Proto.root_fh; cookie; count = t.readdir_count })
    with
    | Proto.R_names { names; cookie = next; eof } ->
        let acc = List.rev_append names acc in
        if eof then List.rev acc else go next acc
    | Proto.R_err e -> failwith ("nfs readdir: " ^ e)
    | _ -> assert false
  in
  go 0 []

(* ---------- attributes ---------- *)

let getattr f =
  let t = f.cl in
  let fresh =
    match f.attr_at with
    | Some ts -> Sim.Engine.now t.engine - ts <= t.attr_ttl
    | None -> false
  in
  if fresh then begin
    t.st.attr_hits <- t.st.attr_hits + 1;
    f.attr
  end
  else begin
    t.st.attr_misses <- t.st.attr_misses + 1;
    match Rpc.call t.rpc (Proto.Getattr { fh = f.fh }) with
    | Proto.R_attr a ->
        f.attr <- a;
        f.attr_at <- Some (Sim.Engine.now t.engine);
        (* dirty or in-flight local writes may be ahead of the server's
           size — never let a stale server attr shrink our view *)
        f.fsize <-
          (if f.pending_pushes > 0 || f.delaylen > 0 then
             max f.fsize a.Proto.size
           else a.Proto.size);
        a
    | Proto.R_err e -> failwith ("nfs getattr: " ^ e)
    | _ -> assert false
  end

let size f = f.fsize

(* ---------- read ---------- *)

(* Keep [ra_depth] clusters in flight beyond the stream's position.
   The frontier lives in the stream's own window, so each interleaved
   reader maintains its own pipeline — and a stream repointed by a
   backward seek starts a fresh frontier instead of inheriting one it
   can never catch. *)
let schedule_readahead t f (w : rwin) ~po =
  if w.w_raio < po + t.cluster then w.w_raio <- po + t.cluster;
  let window_end = po + ((t.ra_depth + 1) * t.cluster) in
  while w.w_raio < window_end && w.w_raio < f.fsize do
    let len = min t.cluster (f.fsize - w.w_raio) in
    t.st.ra_issued <- t.st.ra_issued + 1;
    enqueue t (Ra (f, w.w_raio, len));
    w.w_raio <- w.w_raio + t.cluster
  done

(* The page at [po], fetching on a miss: a whole cluster when the
   stream looks sequential, a single block when it doesn't.  [None]
   when the server's file ends before [po]. *)
let rec ensure_resident t f ~po ~seq ~retried =
  match Hashtbl.find_opt f.pages po with
  | Some p when p.pvalid ->
      if not retried then t.st.cache_hits <- t.st.cache_hits + 1;
      if p.pprefetched then begin
        t.st.ra_used <- t.st.ra_used + 1;
        p.pprefetched <- false
      end;
      Some p
  | Some p when p.pbusy ->
      charged t "rpc.wait" (fun () -> Sim.Condition.wait p.pcond);
      ensure_resident t f ~po ~seq ~retried
  | _ ->
      if retried then None
      else begin
        t.st.cache_misses <- t.st.cache_misses + 1;
        let len =
          if seq then min t.cluster (max bsize (f.fsize - po)) else bsize
        in
        fetch_range t f ~off:po ~len ~prefetched:false;
        ensure_resident t f ~po ~seq ~retried:true
      end

let read_body f ~off ~buf ~len =
  let t = f.cl in
  t.st.read_calls <- t.st.read_calls + 1;
  charge t t.costs.Ufs.Costs.syscall;
  ignore (getattr f);
  let total = ref 0 in
  let cur = ref off in
  let continue = ref true in
  while !continue && !total < len && !cur < f.fsize do
    let po = !cur - (!cur mod bsize) in
    let n = min (len - !total) (min (bsize - (!cur - po)) (f.fsize - !cur)) in
    if n <= 0 then continue := false
    else begin
      (* sequentiality judged before the windows advance, as in
         ufs_rdwr: did any stream predict this access? *)
      let w = find_rwin f ~po ~cur:!cur in
      let seq = w <> None in
      charge t t.costs.Ufs.Costs.map_block;
      (match ensure_resident t f ~po ~seq ~retried:false with
      | None -> continue := false
      | Some p ->
          charge t (Ufs.Costs.copy_cost t.costs ~bytes:n);
          Bytes.blit p.pdata (!cur - po) buf !total n;
          (match w with
          | Some w ->
              touch_rwin f w ~po;
              schedule_readahead t f w ~po
          | None -> note_miss_rwin t f ~po);
          total := !total + n;
          cur := !cur + n)
    end
  done;
  !total

let read f ~off ~buf ~len =
  Sim.Span.span ~name:"nfs.read"
    ~attrs:[ ("off", Sim.Span.I off); ("len", Sim.Span.I len) ]
    (fun () -> read_body f ~off ~buf ~len)

(* ---------- write ---------- *)

let flush_gather t f =
  if f.delaylen > 0 then begin
    (* the run is block-granular; the file may end mid-block *)
    let off = f.delayoff in
    let len = min f.delaylen (f.fsize - off) in
    f.delayoff <- 0;
    f.delaylen <- 0;
    let data = Bytes.create len in
    let pages = ref [] in
    let cleaned = ref 0 in
    let po = ref off in
    while !po < off + len do
      (match Hashtbl.find_opt f.pages !po with
      | Some p when p.pvalid ->
          let n = min bsize (off + len - !po) in
          Bytes.blit p.pdata 0 data (!po - off) n;
          (* the payload now owns the bytes: the page is clean but
             stays pinned (pflush) until the WRITE RPC completes, so
             eviction can't drop it and refetch stale server data *)
          p.pflush <- p.pflush + 1;
          pages := p :: !pages;
          if p.pdirty then begin
            p.pdirty <- false;
            incr cleaned
          end
      | _ -> assert false);
      po := !po + bsize
    done;
    f.pending_pushes <- f.pending_pushes + 1;
    t.st.write_gathers <- t.st.write_gathers + 1;
    Sim.Stats.Hist.add t.st.gather_bytes len;
    (* dirty_bytes moved bsize per page when it was dirtied, so credit
       bsize per page cleaned — crediting the truncated payload length
       would leak the tail of a run ending mid-block *)
    enqueue t (Push (f, off, !cleaned * bsize, data, !pages))
  end

let write_body f ~off ~buf ~len =
  let t = f.cl in
  t.st.write_calls <- t.st.write_calls + 1;
  charge t t.costs.Ufs.Costs.syscall;
  let cur = ref off in
  let copied = ref 0 in
  while !copied < len do
    let po = !cur - (!cur mod bsize) in
    let n = min (len - !copied) (bsize - (!cur - po)) in
    (* dirty cap: the write-limit analogue.  Flushing the current run
       first guarantees in-flight bytes exist to wait on. *)
    while t.dirty_bytes >= t.dirty_limit do
      flush_gather t f;
      t.st.dirty_sleeps <- t.st.dirty_sleeps + 1;
      charged t "client.throttle" (fun () -> Sim.Condition.wait t.dirty_cond)
    done;
    let page =
      match Hashtbl.find_opt f.pages po with
      | Some p when p.pvalid -> p
      | Some p when p.pbusy ->
          (* a fill is in flight; wait it out rather than racing it *)
          charged t "rpc.wait" (fun () ->
              while p.pbusy do
                Sim.Condition.wait p.pcond
              done);
          p
      | _ ->
          let partial = not (!cur = po && n = bsize) in
          if partial && po < f.fsize then begin
            (* read-modify-write of a block the server already has *)
            fetch_range t f ~off:po ~len:bsize ~prefetched:false;
            match Hashtbl.find_opt f.pages po with
            | Some p when p.pvalid -> p
            | _ ->
                let p = insert_page t f po in
                Bytes.fill p.pdata 0 bsize '\000';
                p.pvalid <- true;
                p
          end
          else begin
            let p = insert_page t f po in
            Bytes.fill p.pdata 0 bsize '\000';
            p.pvalid <- true;
            p
          end
    in
    if not page.pdirty then begin
      page.pdirty <- true;
      t.dirty_bytes <- t.dirty_bytes + bsize
    end;
    charge t t.costs.Ufs.Costs.map_block;
    charge t (Ufs.Costs.copy_cost t.costs ~bytes:n);
    Bytes.blit buf !copied page.pdata (!cur - po) n;
    if !cur + n > f.fsize then f.fsize <- !cur + n;
    (* gather: extend the run while the stream stays contiguous *)
    if f.delaylen = 0 then begin
      f.delayoff <- po;
      f.delaylen <- bsize
    end
    else if po = f.delayoff + f.delaylen then f.delaylen <- f.delaylen + bsize
    else if po >= f.delayoff && po < f.delayoff + f.delaylen then ()
      (* rewrite inside the current run: already gathered *)
    else begin
      flush_gather t f;
      f.delayoff <- po;
      f.delaylen <- bsize
    end;
    if f.delaylen >= t.cluster then flush_gather t f;
    copied := !copied + n;
    cur := !cur + n
  done

let write f ~off ~buf ~len =
  Sim.Span.span ~name:"nfs.write"
    ~attrs:[ ("off", Sim.Span.I off); ("len", Sim.Span.I len) ]
    (fun () -> write_body f ~off ~buf ~len)

let fsync f =
  Sim.Span.span ~name:"nfs.fsync" (fun () ->
      let t = f.cl in
      flush_gather t f;
      charged t "rpc.wait" (fun () ->
          while f.pending_pushes > 0 do
            Sim.Condition.wait f.push_cond
          done))

(* Drop the whole cached image of [f] (truncation, invalidation),
   charging never-used read-ahead pages to the wasted count. *)
let drop_all_pages t f =
  Hashtbl.iter
    (fun _ p -> if p.pvalid && p.pprefetched then
        t.st.ra_wasted <- t.st.ra_wasted + 1)
    f.pages;
  let n = Hashtbl.length f.pages in
  Hashtbl.reset f.pages;
  t.resident <- t.resident - n

let create t name =
  let name = basename name in
  charge t t.costs.Ufs.Costs.syscall;
  (* Re-creating an open file: settle every outstanding WRITE first, or
     a queued push could race the CREATE and land after the truncation. *)
  (match Hashtbl.find_opt t.files name with
  | Some f -> fsync f
  | None -> ());
  match Rpc.call t.rpc (Proto.Create { dir = Proto.root_fh; name }) with
  | Proto.R_fh { fh; attr } -> (
      match Hashtbl.find_opt t.files name with
      | Some f ->
          (* creat truncates: drop the cached pages and predictor state *)
          drop_all_pages t f;
          reset_rwins f;
          f.delayoff <- 0;
          f.delaylen <- 0;
          f.attr <- attr;
          f.attr_at <- Some (Sim.Engine.now t.engine);
          f.fsize <- attr.Proto.size;
          f
      | None -> mk_file t ~fh ~name ~attr)
  | Proto.R_err e -> failwith ("nfs create: " ^ e)
  | _ -> assert false

let invalidate f =
  let t = f.cl in
  fsync f;
  drop_all_pages t f;
  reset_rwins f;
  f.delayoff <- 0;
  f.delaylen <- 0;
  f.attr_at <- None

let stats t = t.st

let register_metrics t reg ~instance =
  Sim.Metrics.register reg ~layer:"nfs" ~instance (fun () ->
      let rpc = Rpc.stats t.rpc in
      (* "rpc_" prefix: "read"/"write" RPC counts must not collide with
         the vnode-level read_calls/write_calls below — duplicate keys
         in one metrics object would make the export ambiguous *)
      let per_op =
        List.concat_map
          (fun op ->
            [
              ("rpc_" ^ op ^ "_calls", Sim.Metrics.Int (Rpc.op_calls t.rpc op));
              ("rpc_" ^ op ^ "_rtt_us", Sim.Metrics.Summary (Rpc.rtt_of t.rpc op));
            ])
          Proto.op_names
      in
      [
        ("read_calls", Sim.Metrics.Int t.st.read_calls);
        ("write_calls", Sim.Metrics.Int t.st.write_calls);
        ("cache_hits", Sim.Metrics.Int t.st.cache_hits);
        ("cache_misses", Sim.Metrics.Int t.st.cache_misses);
        ("ra_issued", Sim.Metrics.Int t.st.ra_issued);
        ("ra_used", Sim.Metrics.Int t.st.ra_used);
        ("ra_streams", Sim.Metrics.Int t.st.ra_streams);
        ("ra_wasted", Sim.Metrics.Int t.st.ra_wasted);
        ("write_gathers", Sim.Metrics.Int t.st.write_gathers);
        ("gather_bytes", Sim.Metrics.Hist t.st.gather_bytes);
        ("dirty_sleeps", Sim.Metrics.Int t.st.dirty_sleeps);
        ("attr_hits", Sim.Metrics.Int t.st.attr_hits);
        ("attr_misses", Sim.Metrics.Int t.st.attr_misses);
        ("evictions", Sim.Metrics.Int t.st.evictions);
        ("rpc_retransmits", Sim.Metrics.Int rpc.Rpc.retransmits);
        ("rpc_late_replies", Sim.Metrics.Int rpc.Rpc.late_replies);
        ("rpc_srtt_us", Sim.Metrics.Float (Rpc.srtt_us t.rpc));
        ("rpc_rto_us", Sim.Metrics.Float (Rpc.rto_us t.rpc));
        ("rpc_cwnd", Sim.Metrics.Float (Rpc.cwnd t.rpc));
        ("rpc_in_flight", Sim.Metrics.Int (Rpc.in_flight t.rpc));
        ("rpc_backoffs", Sim.Metrics.Int (Rpc.backoffs t.rpc));
        ("rpc_window_wait_us", Sim.Metrics.Summary (Rpc.window_wait_us t.rpc));
      ]
      @ per_op)
