type stats = {
  mutable received : int;
  mutable dup_hits : int;
  mutable dup_busy_drops : int;
  mutable dup_evictions : int;
  queue_wait_us : Sim.Stats.Summary.t;
}

type dup_entry = In_progress | Done of Proto.reply

type item = {
  ep : Proto.msg Net.endpoint;
  xid : int;
  client : int;
  call : Proto.call;
  sent : Sim.Time.t;  (* client transmit stamp, for cost attribution *)
  arrived : Sim.Time.t;
  span : Sim.Span.ctx option;  (* caller's tracing context, if traced *)
}

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  mutable fs : Ufs.Types.fs;  (* replaced by restart after a crash *)
  mutable down : bool;
  mutable restarts : int;
  nfsd : int;
  queue : item Queue.t;
  work : Sim.Condition.t;
  dup : (int * int, dup_entry) Hashtbl.t;
  dup_order : (int * int) Queue.t;  (* completed non-idempotent keys, oldest first *)
  dup_cache_size : int;
  fh_inode : (int, Ufs.Types.inode) Hashtbl.t;
  fh_path : (int, string) Hashtbl.t;  (* for path-based create *)
  st : stats;
  op_applied : (string, int ref) Hashtbl.t;
  op_service : (string, Sim.Stats.Summary.t) Hashtbl.t;
}

let root_fh = Ufs.Types.rootino

(* hard server-side cap on entries per READDIR reply, whatever the
   client asked for — the reply must fit a datagram-sized message *)
let readdir_max_entries = 64

let nonidempotent = function
  | Proto.Create _ | Proto.Write _ -> true
  | Proto.Lookup _ | Proto.Getattr _ | Proto.Read _ | Proto.Readdir _ -> false

(* ---------- op execution ---------- *)

let attr_of (ip : Ufs.Types.inode) =
  { Proto.size = ip.Ufs.Types.size; is_dir = ip.Ufs.Types.kind = Ufs.Dinode.Dir }

(* The server holds one long-lived reference per handed-out handle, so
   a handle stays valid however long a client caches it. *)
let inode_of t fh =
  match Hashtbl.find_opt t.fh_inode fh with
  | Some ip -> ip
  | None ->
      let ip = Ufs.Iops.iget t.fs fh in
      Hashtbl.replace t.fh_inode fh ip;
      ip

let path_of t fh =
  match Hashtbl.find_opt t.fh_path fh with
  | Some p -> p
  | None -> if fh = root_fh then "/" else Vfs.Errno.raise_err Vfs.Errno.ENOENT "nfs fh"

let join dir name = if dir = "/" then "/" ^ name else dir ^ "/" ^ name

let execute t (call : Proto.call) : Proto.reply =
  match call with
  | Proto.Lookup { dir; name } -> (
      let dip = inode_of t dir in
      match Ufs.Dir.lookup t.fs dip name with
      | None -> Proto.R_err "ENOENT"
      | Some inum ->
          let ip = inode_of t inum in
          Hashtbl.replace t.fh_path inum (join (path_of t dir) name);
          Proto.R_fh { fh = inum; attr = attr_of ip })
  | Proto.Create { dir; name } ->
      let path = join (path_of t dir) name in
      let ip = Ufs.Fs.creat t.fs path in
      let fh = ip.Ufs.Types.inum in
      (* keep exactly one pinned reference per handle *)
      if Hashtbl.mem t.fh_inode fh then Ufs.Iops.iput t.fs ip
      else Hashtbl.replace t.fh_inode fh ip;
      Hashtbl.replace t.fh_path fh path;
      Proto.R_fh { fh; attr = attr_of (inode_of t fh) }
  | Proto.Getattr { fh } -> Proto.R_attr (attr_of (inode_of t fh))
  | Proto.Read { fh; off; len } ->
      let ip = inode_of t fh in
      let buf = Bytes.create len in
      let n = Ufs.Fs.read t.fs ip ~off ~buf ~len in
      Proto.R_read
        {
          data = (if n = len then buf else Bytes.sub buf 0 n);
          eof = off + n >= ip.Ufs.Types.size;
        }
  | Proto.Write { fh; off; data } ->
      let ip = inode_of t fh in
      Ufs.Fs.write t.fs ip ~off ~buf:data ~len:(Bytes.length data);
      Proto.R_attr (attr_of ip)
  | Proto.Readdir { fh; cookie; count } ->
      (* One bounded page per call: [Dir.iter] enumerates in stable
         slot order, so an entry index is a stable resume cookie for an
         unchanged directory (NFSv2's actual guarantee — no stronger). *)
      let dip = inode_of t fh in
      let all = ref [] in
      Ufs.Dir.iter t.fs dip (fun name _ -> all := name :: !all);
      let all = List.rev !all in
      let total = List.length all in
      let cookie = max 0 cookie in
      let count =
        if count <= 0 then readdir_max_entries
        else min count readdir_max_entries
      in
      let page =
        List.filteri (fun i _ -> i >= cookie && i < cookie + count) all
      in
      let next = min total (cookie + count) in
      Proto.R_names { names = page; cookie = next; eof = next >= total }

let execute t call =
  try execute t call with
  | Vfs.Errno.Error (code, _) -> Proto.R_err (Vfs.Errno.to_string code)

(* ---------- dup cache ---------- *)

let dup_store t key reply =
  Hashtbl.replace t.dup key (Done reply);
  Queue.push key t.dup_order;
  while Queue.length t.dup_order > t.dup_cache_size do
    let victim = Queue.pop t.dup_order in
    Hashtbl.remove t.dup victim;
    t.st.dup_evictions <- t.st.dup_evictions + 1
  done

let send_reply t (it : item) ~cost ~spans reply =
  let cost = ("srv.sent_at", Sim.Engine.now t.engine) :: cost in
  let msg =
    Proto.Reply { xid = it.xid; client = it.client; reply; cost; spans }
  in
  Net.send it.ep ~size:(Proto.msg_size msg) msg

(* The server side of a traced call runs under a detached span parented
   on the client's wire context, backdated to the client's transmit
   stamp so the inbound wire leg and the nfsd queue wait nest inside
   it; the finished subtree rides back in the reply.  Untraced calls
   ([span = None]) skip all of this. *)
let traced (it : item) ~dq ~name f =
  match it.span with
  | None -> (f (), None)
  | Some c ->
      Sim.Span.subtree c ~name ~track:"server/nfsd" ~start_us:it.sent
        (fun () ->
          Sim.Span.interval ~name:"wire.call" ~track:"net/wire"
            ~start_us:it.sent ~stop_us:it.arrived ();
          Sim.Span.interval ~name:"nfsd.queue" ~start_us:it.arrived
            ~stop_us:dq ();
          f ())

(* ---------- processes ---------- *)

let svc_overhead = Sim.Time.us 60

let worker t () =
  while true do
    while Queue.is_empty t.queue do
      Sim.Condition.wait t.work
    done;
    let it = Queue.pop t.queue in
    if t.down then () (* queue drained at crash; drop stragglers *)
    else
    let dq = Sim.Engine.now t.engine in
    Sim.Stats.Summary.add t.st.queue_wait_us (float_of_int (dq - it.arrived));
    Sim.Cpu.charge t.cpu ~label:"nfsd" svc_overhead;
    (* phase breakdown shipped back in the reply: outbound wire+medium
       time from the client's transmit stamp, time queued for an nfsd,
       then whatever [execute] spends (disk waits land on the clock,
       the rest of the wall time is nfsd CPU) *)
    let base_cost =
      [
        ("wire.out", max 0 (it.arrived - it.sent));
        ("nfsd.queue", max 0 (dq - it.arrived));
      ]
    in
    let key = (it.client, it.xid) in
    let ni = nonidempotent it.call in
    match if ni then Hashtbl.find_opt t.dup key else None with
    | Some (Done reply) ->
        t.st.dup_hits <- t.st.dup_hits + 1;
        let reply, spans =
          traced it ~dq
            ~name:("srv.dup." ^ Proto.op_name it.call)
            (fun () -> reply)
        in
        send_reply t it
          ~cost:
            (base_cost @ [ ("nfsd.cpu", Sim.Engine.now t.engine - dq) ])
          ~spans reply
    | Some In_progress -> t.st.dup_busy_drops <- t.st.dup_busy_drops + 1
    | None ->
        if ni then Hashtbl.replace t.dup key In_progress;
        let op = Proto.op_name it.call in
        incr (Hashtbl.find t.op_applied op);
        let t0 = Sim.Engine.now t.engine in
        let clk = Sim.Attrib.create () in
        let reply, spans =
          traced it ~dq ~name:("srv." ^ op) (fun () ->
              Sim.Attrib.with_clock clk (fun () -> execute t it.call))
        in
        Sim.Stats.Summary.add
          (Hashtbl.find t.op_service op)
          (float_of_int (Sim.Engine.now t.engine - t0));
        (* the server may have died while this nfsd slept on disk: the
           op's effects (if its writes beat the power cut) are on the
           platter, but the reply — and, after reboot, the dup-cache
           entry that would have suppressed the retransmit — are lost.
           This is exactly NFSv2's non-idempotent replay window. *)
        if t.down then ()
        else begin
          if ni then dup_store t key reply;
          let disk = Sim.Attrib.read clk in
          let cpu =
            max 0 (Sim.Engine.now t.engine - dq - Sim.Attrib.total clk)
          in
          send_reply t it
            ~cost:(base_cost @ disk @ [ ("nfsd.cpu", cpu) ])
            ~spans reply
        end
  done

let dispatcher t ep () =
  while true do
    match Net.recv ep with
    | Proto.Call _ when t.down ->
        (* dead server: the datagram vanishes; the client's RPC layer
           times out and retransmits until the reboot answers *)
        ()
    | Proto.Call { xid; client; call; sent; span } ->
        t.st.received <- t.st.received + 1;
        Queue.push
          { ep; xid; client; call; sent; span;
            arrived = Sim.Engine.now t.engine }
          t.queue;
        Sim.Condition.signal t.work
    | Proto.Reply _ -> assert false
  done

let create engine ~cpu ~fs ?(nfsd = 4) ?dup_cache_size ~endpoints () =
  (* the cache is shared across clients, so a fixed size gets easier to
     evict out of as clients multiply — and an evicted entry is exactly
     a delayed retransmit re-applying a CREATE/WRITE.  Scale the
     default with the client count (one endpoint per client). *)
  let dup_cache_size =
    match dup_cache_size with
    | Some n -> n
    | None -> 256 * max 1 (List.length endpoints)
  in
  let t =
    {
      engine;
      cpu;
      fs;
      down = false;
      restarts = 0;
      nfsd;
      queue = Queue.create ();
      work = Sim.Condition.create engine "nfsd.work";
      dup = Hashtbl.create 512;
      dup_order = Queue.create ();
      dup_cache_size;
      fh_inode = Hashtbl.create 64;
      fh_path = Hashtbl.create 64;
      st =
        {
          received = 0;
          dup_hits = 0;
          dup_busy_drops = 0;
          dup_evictions = 0;
          queue_wait_us = Sim.Stats.Summary.create ();
        };
      op_applied = Hashtbl.create 8;
      op_service = Hashtbl.create 8;
    }
  in
  List.iter
    (fun op ->
      Hashtbl.replace t.op_applied op (ref 0);
      Hashtbl.replace t.op_service op (Sim.Stats.Summary.create ()))
    Proto.op_names;
  List.iteri
    (fun i ep ->
      Sim.Engine.spawn engine ~name:(Printf.sprintf "nfs.dispatch.%d" i)
        (dispatcher t ep))
    endpoints;
  for i = 1 to nfsd do
    Sim.Engine.spawn engine ~name:(Printf.sprintf "nfsd.%d" i) (worker t)
  done;
  t

let add_endpoint t ep =
  Sim.Engine.spawn t.engine ~name:"nfs.dispatch.extra" (dispatcher t ep)

(* ---------- crash / restart ---------- *)

let crash t =
  t.down <- true;
  (* volatile server state dies with the power: queued calls, the
     handle table (its inode references belong to the dead fs instance)
     — and, critically, nothing here touches the dup cache yet: it dies
     at restart, modelling that the REBOOTED server has no memory of
     what it applied before the crash *)
  Queue.clear t.queue;
  Hashtbl.reset t.fh_inode;
  Hashtbl.reset t.fh_path

let restart t ~fs =
  if not t.down then invalid_arg "Nfs.Server.restart: server is not down";
  t.fs <- fs;
  Hashtbl.reset t.dup;
  Queue.clear t.dup_order;
  t.restarts <- t.restarts + 1;
  t.down <- false

let is_down t = t.down
let restarts t = t.restarts

let applied t op =
  match Hashtbl.find_opt t.op_applied op with Some r -> !r | None -> 0

let stats t = t.st

let service_us t op =
  match Hashtbl.find_opt t.op_service op with
  | Some s -> s
  | None -> Sim.Stats.Summary.create ()

let register_metrics t reg ~instance =
  Sim.Metrics.register reg ~layer:"nfs" ~instance (fun () ->
      let per_op =
        List.concat_map
          (fun op ->
            [
              (op ^ "_applied", Sim.Metrics.Int (applied t op));
              (op ^ "_service_us", Sim.Metrics.Summary (service_us t op));
            ])
          Proto.op_names
      in
      [
        ("received", Sim.Metrics.Int t.st.received);
        ("nfsd", Sim.Metrics.Int t.nfsd);
        ("restarts", Sim.Metrics.Int t.restarts);
        ("dup_cache_hits", Sim.Metrics.Int t.st.dup_hits);
        ("dup_busy_drops", Sim.Metrics.Int t.st.dup_busy_drops);
        ("dup_evictions", Sim.Metrics.Int t.st.dup_evictions);
        ("queue_wait_us", Sim.Metrics.Summary t.st.queue_wait_us);
      ]
      @ per_op)
