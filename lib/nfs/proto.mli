(** The wire protocol: an NFSv2-shaped stateless file service.

    File handles are server inode numbers.  READ replies and WRITE
    calls carry real bytes — the data a client reads back through the
    network is the data that lives in the server's UFS image, so
    content checks (the duplicate-apply property tests) are real.

    [call_size]/[reply_size] give the wire size of each message: a
    fixed RPC header plus the payload, which is what the {!Net} layer
    charges to the wire and to the sender's CPU. *)

type fh = int
(** Server inode number. *)

val root_fh : fh
(** The exported root directory (the server pins this mapping). *)

type attr = { size : int; is_dir : bool }

type call =
  | Lookup of { dir : fh; name : string }
  | Create of { dir : fh; name : string }
      (** creates or truncates, like creat(2) — deliberately
          non-idempotent so the duplicate-request cache is load-bearing *)
  | Getattr of { fh : fh }
  | Read of { fh : fh; off : int; len : int }
  | Write of { fh : fh; off : int; data : bytes }
  | Readdir of { fh : fh; cookie : int; count : int }
      (** one page of directory entries: up to [count] names starting
          at opaque position [cookie] (0 = from the top) *)

type reply =
  | R_fh of { fh : fh; attr : attr }  (** lookup / create *)
  | R_attr of attr  (** getattr / write *)
  | R_read of { data : bytes; eof : bool }
  | R_names of { names : string list; cookie : int; eof : bool }
      (** readdir page; resume from [cookie] unless [eof] *)
  | R_err of string  (** errno name *)

type msg =
  | Call of {
      xid : int;
      client : int;
      call : call;
      sent : Sim.Time.t;
      span : Sim.Span.ctx option;
    }
      (** [sent] is the transmit timestamp — legal out-of-band metadata
          in a simulation sharing one clock; the server uses it to
          compute outbound wire+queue time for cost attribution.
          [span] is the caller's tracing context ([None] when the call
          is untraced): the server parents its span subtree under it.
          Neither counts in {!msg_size}. *)
  | Reply of {
      xid : int;
      client : int;
      reply : reply;
      cost : (string * Sim.Time.t) list;
      spans : Sim.Span.t option;
    }
      (** [cost] is the server's per-phase breakdown of this call's
          life (["wire.out"], ["nfsd.queue"], ["disk.*"], ["nfsd.cpu"],
          plus the absolute ["srv.sent_at"] stamp so the client can
          compute inbound wire time).  [spans] is the server-side span
          subtree of a traced call, grafted back into the caller's
          trace on receipt.  Attribution metadata only — excluded from
          {!msg_size}, so wire timing is unchanged. *)

val header_bytes : int
(** Fixed per-message RPC/XDR framing overhead. *)

val call_size : call -> int
val reply_size : reply -> int
val msg_size : msg -> int

val op_name : call -> string
(** ["lookup" | "create" | "getattr" | "read" | "write" | "readdir"] —
    the metric key for per-op counters. *)

val op_names : string list
(** All op names, in a fixed order (metrics export). *)
