type fh = int

let root_fh = Ufs.Types.rootino

type attr = { size : int; is_dir : bool }

type call =
  | Lookup of { dir : fh; name : string }
  | Create of { dir : fh; name : string }
  | Getattr of { fh : fh }
  | Read of { fh : fh; off : int; len : int }
  | Write of { fh : fh; off : int; data : bytes }
  | Readdir of { fh : fh; cookie : int; count : int }

type reply =
  | R_fh of { fh : fh; attr : attr }
  | R_attr of attr
  | R_read of { data : bytes; eof : bool }
  | R_names of { names : string list; cookie : int; eof : bool }
  | R_err of string

type msg =
  | Call of {
      xid : int;
      client : int;
      call : call;
      sent : Sim.Time.t;
      span : Sim.Span.ctx option;
    }
  | Reply of {
      xid : int;
      client : int;
      reply : reply;
      cost : (string * Sim.Time.t) list;
      spans : Sim.Span.t option;
    }

(* RPC + XDR framing: credentials, verifier, program/proc numbers.
   Small against an 8 KB block, noticeable against a GETATTR. *)
let header_bytes = 128

let call_size = function
  | Lookup { name; _ } | Create { name; _ } ->
      header_bytes + 8 + String.length name
  | Getattr _ -> header_bytes + 8
  | Read _ -> header_bytes + 24
  | Write { data; _ } -> header_bytes + 24 + Bytes.length data
  | Readdir _ -> header_bytes + 24

let attr_bytes = 32

let reply_size = function
  | R_fh _ -> header_bytes + 8 + attr_bytes
  | R_attr _ -> header_bytes + attr_bytes
  | R_read { data; _ } -> header_bytes + 8 + attr_bytes + Bytes.length data
  | R_names { names; _ } ->
      List.fold_left
        (fun acc n -> acc + 8 + String.length n)
        (header_bytes + 12) names
  | R_err _ -> header_bytes + 4

let msg_size = function
  | Call { call; _ } -> call_size call
  | Reply { reply; _ } -> reply_size reply

let op_name = function
  | Lookup _ -> "lookup"
  | Create _ -> "create"
  | Getattr _ -> "getattr"
  | Read _ -> "read"
  | Write _ -> "write"
  | Readdir _ -> "readdir"

let op_names = [ "lookup"; "create"; "getattr"; "read"; "write"; "readdir" ]
