(** Client-side RPC: xid assignment, reply matching, and timeout-driven
    retransmission with exponential backoff (an NFS hard mount: a call
    retries forever, so any loss rate below 1 eventually completes).

    One {!t} serves a whole client machine — the benchmark process and
    every biod daemon call through it concurrently; a single receiver
    process demultiplexes replies by xid.  A reply that arrives after
    its call already completed (the call was retransmitted and both
    copies were answered) is counted and dropped. *)

type t

val create :
  Sim.Engine.t ->
  cpu:Sim.Cpu.t ->
  ep:Proto.msg Net.endpoint ->
  client_id:int ->
  ?timeout:Sim.Time.t ->
  ?max_timeout:Sim.Time.t ->
  unit ->
  t
(** [timeout] (default 1.1 s) is the initial retransmission timeout;
    it doubles on every retry up to [max_timeout] (default 20 s). *)

val client_id : t -> int

val call : t -> Proto.call -> Proto.reply
(** Send the call, block until its reply arrives, retransmitting on
    timeout.  Must run inside a simulation process. *)

type stats = {
  mutable calls : int;
  mutable retransmits : int;
  mutable late_replies : int;
}

val stats : t -> stats

val op_calls : t -> string -> int
(** Completed calls of one op ({!Proto.op_name}). *)

val rtt_of : t -> string -> Sim.Stats.Summary.t
(** Round-trip latency summary of one op, including retransmission
    waits. *)
