(** Client-side RPC: xid assignment, reply matching, and timeout-driven
    retransmission (an NFS hard mount: a call retries forever, so any
    loss rate below 1 eventually completes).

    One {!t} serves a whole client machine — the benchmark process and
    every biod daemon call through it concurrently; a single receiver
    process demultiplexes replies by xid.  A reply that arrives after
    its call already completed (the call was retransmitted and both
    copies were answered) is counted and dropped.  Reply-answered
    timeout timers are cancelled, not abandoned — an answered call
    leaves nothing behind in the engine heap.

    Two transports share that machinery:

    - {!Fixed} — the NFSv2 default: every call starts from the same
      configured timeout and doubles per retry.  Under overload every
      client times out at the same fixed interval and re-injects
      duplicates, which is exactly the congestion collapse the [nfscc]
      experiment reproduces.
    - {!Adaptive} — a per-server estimator in the TCP style.  The RTO
      tracks [srtt + 4*rttvar] from Jacobson's EWMAs, fed only by
      never-retransmitted calls (Karn's rule: an ambiguous sample could
      be the echo of either copy); a timed-out call backs its own timer
      off exponentially and publishes the backed-off value as the
      channel RTO until a clean sample retires it.  An AIMD congestion
      window bounds the client's outstanding RPCs: additive increase
      (+1/cwnd) per clean reply, halve on timeout — at most once per
      RTO, so one loss burst is one decrease — with callers over the
      window parked FIFO on a condition. *)

type transport = Fixed | Adaptive

type t

type cstate
(** The congestion/timer state of one {e server channel}: RTT estimator,
    RTO, AIMD window, in-flight count and the window wait queue.
    Several {!t}s (one per mount) share one [cstate] when they target
    the same server — the window then bounds the union of their
    outstanding calls and every mount feeds one estimator, per-server
    rather than per-mount, the way a real client keeps one transport
    handle per server. *)

val make_cstate :
  Sim.Engine.t ->
  ?timeout:Sim.Time.t ->
  ?max_timeout:Sim.Time.t ->
  ?min_rto:Sim.Time.t ->
  ?cwnd_limit:float ->
  ?name:string ->
  unit ->
  cstate
(** Same defaults as {!create}; [name] labels the window condition in
    deadlock diagnostics. *)

val create :
  Sim.Engine.t ->
  cpu:Sim.Cpu.t ->
  ep:Proto.msg Net.endpoint ->
  client_id:int ->
  ?transport:transport ->
  ?timeout:Sim.Time.t ->
  ?max_timeout:Sim.Time.t ->
  ?min_rto:Sim.Time.t ->
  ?cwnd_limit:float ->
  ?cstate:cstate ->
  unit ->
  t
(** [transport] defaults to {!Fixed}.  [timeout] (default 1.1 s) is the
    initial retransmission timeout — for {!Adaptive} it seeds the RTO
    until the first valid sample; it doubles on every retry up to
    [max_timeout] (default 20 s).  [min_rto] (default 200 ms) floors
    the adaptive RTO; [cwnd_limit] (default 8) caps the congestion
    window.  [cstate] shares an existing server channel's congestion
    state instead of building a private one; the four timer parameters
    are then ignored (they live in the [cstate]). *)

val cstate_of : t -> cstate

val shares_cstate : t -> t -> bool
(** Physical identity: do the two channels share one congestion
    state? *)

val client_id : t -> int
val transport : t -> transport

val call : t -> Proto.call -> Proto.reply
(** Send the call, block until its reply arrives, retransmitting on
    timeout.  Must run inside a simulation process. *)

type stats = {
  mutable calls : int;
  mutable retransmits : int;
  mutable late_replies : int;
}

val stats : t -> stats

val op_calls : t -> string -> int
(** Completed calls of one op ({!Proto.op_name}). *)

val rtt_of : t -> string -> Sim.Stats.Summary.t
(** Round-trip latency summary of one op, including retransmission
    waits. *)

val srtt_us : t -> float
(** Smoothed RTT estimate in microseconds; 0 until the first valid
    sample (always 0 for {!Fixed}). *)

val rto_us : t -> float
(** Current retransmission timeout.  For {!Fixed} this is the
    configured initial timeout. *)

val cwnd : t -> float
(** Current congestion window; 0 for {!Fixed} (unbounded). *)

val in_flight : t -> int
(** Outstanding window-counted RPCs right now. *)

val backoffs : t -> int
(** Timeout events that backed the RTO off (adaptive transport). *)

val window_wait_us : t -> Sim.Stats.Summary.t
(** Time callers spent parked waiting for congestion-window space. *)

val retransmits_since : t -> Sim.Time.t -> int
(** Retransmissions at or after the given instant — the steady-state
    retransmit count once the estimator has converged. *)
