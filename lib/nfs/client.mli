(** The client side of the mount: a vnode-ish file layer with the
    paper's clustering machinery transplanted across the wire.

    Once a network separates the reader from the disk, sequential
    detection has to move to the client: the server sees whatever
    request stream the client emits.  So the client keeps per-file
    [nextr]/[nextrio] analogues and a pool of [biod] daemons:

    - {b read-ahead}: a sequential read that misses fetches a whole
      cluster in one READ RPC and keeps [ra_depth] further clusters in
      flight through the biods, so the app copies cluster [k] while the
      wire and the server disk work on [k+1] — the client-side
      [nextrio];
    - {b write-behind gathering}: dirty pages accumulate in a
      [delayoff]/[delaylen] run and are pushed as one cluster-sized
      WRITE RPC by a biod — the client-side [delayoff]/[delaylen];
    - {b dirty cap}: a write-limit-style bound on dirty + in-flight
      write bytes per mount, so one writer cannot fill the client cache
      with unpushed data;
    - {b attribute cache}: GETATTR answers are reused for [attr_ttl].

    Overlapping WRITE pushes of one file are serialized (a retransmitted
    older write must never land after a newer one); non-overlapping
    pushes ride different biods concurrently.

    Random (non-sequential) misses fetch a single block — clustering
    must not punish random I/O, on the wire as on the disk. *)

type t

val mount :
  Sim.Engine.t ->
  cpu:Sim.Cpu.t ->
  rpc:Rpc.t ->
  ?biods:int ->
  ?cluster_bytes:int ->
  ?ra_depth:int ->
  ?dirty_limit:int ->
  ?attr_ttl:Sim.Time.t ->
  ?cache_pages:int ->
  ?readdir_count:int ->
  ?costs:Ufs.Costs.t ->
  unit ->
  t
(** Defaults: 4 biods, 120 KB clusters, 2 clusters of read-ahead,
    240 KB dirty cap, 3 s attribute TTL, 1024 cached pages (8 MB),
    32 directory entries requested per READDIR page. *)

type file

val create : t -> string -> file
(** CREATE in the root directory (creat semantics: truncates).  Names
    are entries in the exported root; a leading ["/"] is accepted and
    stripped. *)

val lookup : t -> string -> file option

val readdir : t -> string list
(** The whole root directory, paged through the READDIR resume cookie
    [readdir_count] entries at a time. *)

val size : file -> int
(** The client's view: local writes extend it immediately. *)

val getattr : file -> Proto.attr
(** Served from the attribute cache when fresh. *)

val read : file -> off:int -> buf:bytes -> len:int -> int
val write : file -> off:int -> buf:bytes -> len:int -> unit

val fsync : file -> unit
(** Push the current gather run and wait for every outstanding WRITE
    of this file to be acknowledged. *)

val invalidate : file -> unit
(** Drop the file's cached pages, predictor state and attribute cache
    entry (benchmarks use this to start phases cold).  The file must
    have no dirty pages ({!fsync} first). *)

type stats = {
  mutable read_calls : int;
  mutable write_calls : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable ra_issued : int;  (** read-ahead clusters handed to biods *)
  mutable ra_used : int;  (** prefetched pages later consumed *)
  mutable ra_streams : int;  (** read-ahead windows created beyond the first *)
  mutable ra_wasted : int;  (** prefetched pages dropped before any use *)
  mutable write_gathers : int;  (** WRITE RPCs pushed *)
  mutable dirty_sleeps : int;  (** blocked on the dirty cap *)
  mutable attr_hits : int;
  mutable attr_misses : int;
  mutable evictions : int;
  gather_bytes : Sim.Stats.Hist.t;  (** WRITE payload sizes *)
}

val stats : t -> stats

val register_metrics : t -> Sim.Metrics.t -> instance:string -> unit
(** Register cache/biod counters, gather-size histogram and the RPC
    layer's per-op counts and round-trip summaries as an ["nfs"]
    source. *)
