(** The NFS server: a pool of [nfsd] worker processes serving a mounted
    UFS to several client links.

    One dispatcher process per link receives calls and appends them to
    a single FIFO request queue; [nfsd] workers pop and execute them
    against the file system, so the pool size bounds how many disk
    operations the server overlaps — exactly the knob the [nfsscale]
    bench sweeps.

    Retransmitted requests are filtered by a {e duplicate-request
    cache} keyed by (client, xid).  Non-idempotent ops (CREATE, WRITE)
    are cached: a duplicate of a completed one replays the saved reply
    without re-applying, and a duplicate of one still executing is
    dropped (the client will retry).  Idempotent ops are simply
    re-executed, as real nfsds do.

    File handles are inode numbers; the server pins each handed-out
    inode with one reference for its lifetime. *)

type t

val create :
  Sim.Engine.t ->
  cpu:Sim.Cpu.t ->
  fs:Ufs.Types.fs ->
  ?nfsd:int ->
  ?dup_cache_size:int ->
  endpoints:Proto.msg Net.endpoint list ->
  unit ->
  t
(** Start dispatchers and workers.  [nfsd] defaults to 4 workers,
    [dup_cache_size] to 256 retained non-idempotent replies {e per
    client link} — the cache is shared, and an entry evicted before the
    last retransmit of its call arrives is a duplicate apply waiting to
    happen, so the default scales with the endpoint count. *)

val add_endpoint : t -> Proto.msg Net.endpoint -> unit
(** Start a dispatcher over one more endpoint — an extra mount attached
    after the server came up ({!Clusterfs.Topology.add_mount}).  The dup
    cache does not grow; it was sized at {!create}. *)

val root_fh : Proto.fh
(** The exported root directory. *)

val crash : t -> unit
(** Power-fail the server {e process}: incoming calls are dropped on
    the floor (clients see a dead wire and retransmit), the request
    queue and the file-handle table vanish.  Replies for calls already
    executing are suppressed — their effects may be on disk, but the
    client never hears so.  The dup cache is volatile too: it is reset
    by {!restart}, which is what opens NFSv2's non-idempotent replay
    window across a reboot.  Pair with a disk-level crash
    ({!Disk.Blkdev.crash_cut}) for a whole-machine power cut. *)

val restart : t -> fs:Ufs.Types.fs -> unit
(** Bring the server back up over a freshly recovered and remounted
    file system, with an {e empty} dup cache.  Raises [Invalid_argument]
    unless {!crash} came first. *)

val is_down : t -> bool

val restarts : t -> int
(** Completed crash/restart cycles. *)

val applied : t -> string -> int
(** How many times an op ({!Proto.op_name}) was actually {e executed}
    against the file system — the duplicate-apply detector: with the
    dup cache working, [applied t "write"] equals the number of
    distinct WRITE xids the clients issued, however lossy the links. *)

type stats = {
  mutable received : int;  (** calls arriving off the links *)
  mutable dup_hits : int;  (** duplicates answered from the cache *)
  mutable dup_busy_drops : int;  (** duplicates of in-progress ops *)
  mutable dup_evictions : int;
  queue_wait_us : Sim.Stats.Summary.t;  (** arrival -> worker pickup *)
}

val stats : t -> stats

val service_us : t -> string -> Sim.Stats.Summary.t
(** Per-op execution-time summary (dup-cache replays excluded). *)

val register_metrics : t -> Sim.Metrics.t -> instance:string -> unit
(** Register per-op applied counts and service summaries, queue wait
    and dup-cache counters as an ["nfs"] source. *)
