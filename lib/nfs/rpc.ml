type stats = {
  mutable calls : int;
  mutable retransmits : int;
  mutable late_replies : int;
}

type pending = { mutable reply : Proto.reply option; mutable wake : (unit -> unit) option }

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  ep : Proto.msg Net.endpoint;
  id : int;
  timeout : Sim.Time.t;
  max_timeout : Sim.Time.t;
  mutable next_xid : int;
  pending : (int, pending) Hashtbl.t;
  st : stats;
  op_calls : (string, int ref) Hashtbl.t;
  op_rtt : (string, Sim.Stats.Summary.t) Hashtbl.t;
}

let create engine ~cpu ~ep ~client_id ?(timeout = Sim.Time.of_ms_float 1100.)
    ?(max_timeout = Sim.Time.sec 20) () =
  let t =
    {
      engine;
      cpu;
      ep;
      id = client_id;
      timeout;
      max_timeout;
      next_xid = 1;
      pending = Hashtbl.create 32;
      st = { calls = 0; retransmits = 0; late_replies = 0 };
      op_calls = Hashtbl.create 8;
      op_rtt = Hashtbl.create 8;
    }
  in
  List.iter
    (fun op ->
      Hashtbl.replace t.op_calls op (ref 0);
      Hashtbl.replace t.op_rtt op (Sim.Stats.Summary.create ()))
    Proto.op_names;
  Sim.Engine.spawn engine ~name:(Printf.sprintf "rpc.recv.%d" client_id)
    (fun () ->
      while true do
        match Net.recv t.ep with
        | Proto.Reply { xid; reply; _ } -> (
            match Hashtbl.find_opt t.pending xid with
            | Some p ->
                Hashtbl.remove t.pending xid;
                p.reply <- Some reply;
                (match p.wake with Some w -> w () | None -> ())
            | None -> t.st.late_replies <- t.st.late_replies + 1)
        | Proto.Call _ -> assert false
      done);
  t

let client_id t = t.id

(* Park the caller until the reply lands or [timeout] passes, whichever
   first; both wakers funnel through a fire-once guard because resuming
   a parked process twice is an engine error.  The reply may already
   have landed while [Net.send]'s CPU charge yielded — with no waker
   registered yet the receiver couldn't wake us, so suspending then
   would sleep the whole timeout on top of an answered call. *)
let wait_reply_or_timeout t (p : pending) ~timeout =
  if p.reply = None then begin
    Sim.Engine.suspend t.engine ~register:(fun resume ->
        let fired = ref false in
        let once () =
          if not !fired then begin
            fired := true;
            resume ()
          end
        in
        p.wake <- Some once;
        Sim.Engine.schedule t.engine ~delay:timeout (fun () -> once ()));
    p.wake <- None
  end

let call t (call : Proto.call) =
  let xid = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  t.st.calls <- t.st.calls + 1;
  let msg = Proto.Call { xid; client = t.id; call } in
  let size = Proto.msg_size msg in
  let p = { reply = None; wake = None } in
  Hashtbl.replace t.pending xid p;
  let t0 = Sim.Engine.now t.engine in
  let timeout = ref t.timeout in
  let rec attempt ~retry =
    if retry then t.st.retransmits <- t.st.retransmits + 1;
    Net.send t.ep ~size msg;
    wait_reply_or_timeout t p ~timeout:!timeout;
    match p.reply with
    | Some r -> r
    | None ->
        timeout := min (!timeout * 2) t.max_timeout;
        attempt ~retry:true
  in
  let r = attempt ~retry:false in
  (* reply deserialization + wakeup dispatch on the client CPU *)
  Sim.Cpu.charge t.cpu ~label:"rpc" (Sim.Time.us 30);
  let op = Proto.op_name call in
  incr (Hashtbl.find t.op_calls op);
  Sim.Stats.Summary.add (Hashtbl.find t.op_rtt op)
    (float_of_int (Sim.Engine.now t.engine - t0));
  r

let stats t = t.st
let op_calls t op = match Hashtbl.find_opt t.op_calls op with Some r -> !r | None -> 0

let rtt_of t op =
  match Hashtbl.find_opt t.op_rtt op with
  | Some s -> s
  | None -> Sim.Stats.Summary.create ()
