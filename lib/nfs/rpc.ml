type transport = Fixed | Adaptive

type stats = {
  mutable calls : int;
  mutable retransmits : int;
  mutable late_replies : int;
}

type pending = {
  mutable reply : Proto.reply option;
  mutable cost : (string * Sim.Time.t) list;
  mutable spans : Sim.Span.t option;  (** server-side span subtree *)
  mutable wake : (unit -> unit) option;
  mutable retransmitted : bool;
}

(* The congestion/timer state of one {e server channel}: RTT estimator,
   RTO, AIMD window, in-flight count and the window wait queue.  It is a
   separate heap object so several [t]s — one per mount — can share it
   when they target the same server: the window then bounds the union of
   their outstanding calls and every mount feeds (and benefits from) one
   estimator, the way a real client shares one transport handle per
   server rather than per mount. *)
type cstate = {
  cs_timeout : Sim.Time.t;
  cs_max_timeout : Sim.Time.t;
  cs_min_rto : Sim.Time.t;
  cs_cwnd_limit : float;
  mutable srtt : float;  (** us; negative until the first valid sample *)
  mutable rttvar : float;
  mutable rto : Sim.Time.t;  (** current RTO, Karn backoff included *)
  mutable cwnd : float;
  mutable in_flight : int;
  mutable next_decrease_at : Sim.Time.t;
  mutable backoffs : int;
  window_wait_us : Sim.Stats.Summary.t;
  win_cond : Sim.Condition.t;
}

let make_cstate engine ?(timeout = Sim.Time.of_ms_float 1100.)
    ?(max_timeout = Sim.Time.sec 20) ?(min_rto = Sim.Time.ms 200)
    ?(cwnd_limit = 8.) ?(name = "rpc.win") () =
  {
    cs_timeout = timeout;
    cs_max_timeout = max_timeout;
    cs_min_rto = min_rto;
    cs_cwnd_limit = cwnd_limit;
    srtt = -1.;
    rttvar = 0.;
    rto = timeout;
    cwnd = 2.;
    in_flight = 0;
    next_decrease_at = Sim.Time.zero;
    backoffs = 0;
    window_wait_us = Sim.Stats.Summary.create ();
    win_cond = Sim.Condition.create engine name;
  }

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  ep : Proto.msg Net.endpoint;
  id : int;
  transport : transport;
  cs : cstate;  (** shared with other mounts to the same server, or private *)
  mutable next_xid : int;
  pending : (int, pending) Hashtbl.t;
  st : stats;
  op_calls : (string, int ref) Hashtbl.t;
  op_rtt : (string, Sim.Stats.Summary.t) Hashtbl.t;
  mutable retrans_log : Sim.Time.t list;  (** newest first *)
}

let create engine ~cpu ~ep ~client_id ?(transport = Fixed)
    ?(timeout = Sim.Time.of_ms_float 1100.) ?(max_timeout = Sim.Time.sec 20)
    ?(min_rto = Sim.Time.ms 200) ?(cwnd_limit = 8.) ?cstate () =
  let cs =
    match cstate with
    | Some cs -> cs
    | None ->
        make_cstate engine ~timeout ~max_timeout ~min_rto ~cwnd_limit
          ~name:(Printf.sprintf "rpc.win.%d" client_id)
          ()
  in
  let t =
    {
      engine;
      cpu;
      ep;
      id = client_id;
      transport;
      cs;
      next_xid = 1;
      pending = Hashtbl.create 32;
      st = { calls = 0; retransmits = 0; late_replies = 0 };
      op_calls = Hashtbl.create 8;
      op_rtt = Hashtbl.create 8;
      retrans_log = [];
    }
  in
  List.iter
    (fun op ->
      Hashtbl.replace t.op_calls op (ref 0);
      Hashtbl.replace t.op_rtt op (Sim.Stats.Summary.create ()))
    Proto.op_names;
  Sim.Engine.spawn engine ~name:(Printf.sprintf "rpc.recv.%d" client_id)
    (fun () ->
      while true do
        match Net.recv t.ep with
        | Proto.Reply { xid; reply; cost; spans; _ } -> (
            match Hashtbl.find_opt t.pending xid with
            | Some p ->
                Hashtbl.remove t.pending xid;
                p.reply <- Some reply;
                p.cost <- cost;
                p.spans <- spans;
                (match p.wake with Some w -> w () | None -> ())
            | None -> t.st.late_replies <- t.st.late_replies + 1)
        | Proto.Call _ -> assert false
      done);
  t

let client_id t = t.id
let transport t = t.transport

(* Park the caller until the reply lands or [timeout] passes, whichever
   first; both wakers funnel through a fire-once guard because resuming
   a parked process twice is an engine error.  The reply may already
   have landed while [Net.send]'s CPU charge yielded — with no waker
   registered yet the receiver couldn't wake us, so suspending then
   would sleep the whole timeout on top of an answered call.  When the
   reply wins the race the timeout timer is cancelled, releasing its
   closure — otherwise every answered call would pin a dead event in
   the engine heap for the full retransmission interval. *)
let wait_reply_or_timeout t (p : pending) ~timeout =
  if p.reply = None then begin
    let timer = ref None in
    Sim.Engine.suspend t.engine ~register:(fun resume ->
        let fired = ref false in
        let once () =
          if not !fired then begin
            fired := true;
            resume ()
          end
        in
        p.wake <- Some once;
        timer := Some (Sim.Engine.schedule_cancellable t.engine ~delay:timeout once));
    p.wake <- None;
    if p.reply <> None then Option.iter Sim.Engine.cancel !timer
  end

let finish_call t (call : Proto.call) ~t0 r =
  (* reply deserialization + wakeup dispatch on the client CPU *)
  Sim.Cpu.charge t.cpu ~label:"rpc" (Sim.Time.us 30);
  let op = Proto.op_name call in
  incr (Hashtbl.find t.op_calls op);
  Sim.Stats.Summary.add (Hashtbl.find t.op_rtt op)
    (float_of_int (Sim.Engine.now t.engine - t0));
  r

let mk_pending t xid =
  let p =
    { reply = None; cost = []; spans = None; wake = None; retransmitted = false }
  in
  Hashtbl.replace t.pending xid p;
  p

(* Charge the caller's attribution clock (if any) with this call's life:
   the server's phase breakdown from the reply, inbound wire time from
   the server's transmit stamp, congestion-window wait, and whatever is
   left of the blocked interval (timeout slack, retransmit waits, send
   CPU) as generic RPC wait.  Every addition is capped at the remaining
   un-attributed blocked time, so the phases can never sum past what
   the caller actually waited. *)
let charge_cost t ~entry ~window_wait (p : pending) =
  match Sim.Attrib.current () with
  | None -> ()
  | Some clk ->
      let now = Sim.Engine.now t.engine in
      let elapsed = now - entry in
      let charged = ref 0 in
      let add phase d =
        let d = min (max 0 d) (elapsed - !charged) in
        if d > 0 then begin
          Sim.Attrib.charge clk phase d;
          charged := !charged + d
        end
      in
      add "rpc.wait" window_wait;
      List.iter
        (fun (k, v) ->
          if k = "wire.out" then add "wire" v
          else if k <> "srv.sent_at" then add k v)
        p.cost;
      (match List.assoc_opt "srv.sent_at" p.cost with
      | Some sent_at -> add "wire" (now - sent_at)
      | None -> ());
      add "rpc.wait" (elapsed - !charged)

let note_retransmit t p =
  t.st.retransmits <- t.st.retransmits + 1;
  t.retrans_log <- Sim.Engine.now t.engine :: t.retrans_log;
  p.retransmitted <- true

(* Reply-side tracing: the server's span subtree (shipped back in the
   reply, parented under this call's RPC span by construction) is
   grafted into the caller's tree, and the inbound wire leg gets its
   own interval from the server's transmit stamp.  Pure bookkeeping:
   nothing here reads or advances simulated time paths. *)
let trace_reply t (p : pending) ~attempts =
  if Sim.Span.enabled () then begin
    (match p.spans with Some sub -> Sim.Span.graft sub | None -> ());
    (match List.assoc_opt "srv.sent_at" p.cost with
    | Some sent_at ->
        Sim.Span.interval ~name:"wire.reply" ~track:"net/wire"
          ~start_us:sent_at
          ~stop_us:(Sim.Engine.now t.engine)
          ()
    | None -> ());
    if attempts > 1 then Sim.Span.add_attr "attempts" (Sim.Span.I attempts)
  end

(* ---------- fixed-timeout transport (the NFSv2 default) ---------- *)

let call_fixed_body t (call : Proto.call) =
  let xid = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  t.st.calls <- t.st.calls + 1;
  Sim.Span.add_attr "xid" (Sim.Span.I xid);
  let size = Proto.call_size call in
  let p = mk_pending t xid in
  let t0 = Sim.Engine.now t.engine in
  let timeout = ref t.cs.cs_timeout in
  let attempts = ref 0 in
  let rec attempt ~retry =
    if retry then note_retransmit t p;
    incr attempts;
    let send_at = Sim.Engine.now t.engine in
    Net.send t.ep ~size
      (Proto.Call
         { xid; client = t.id; call; sent = send_at; span = Sim.Span.ctx () });
    wait_reply_or_timeout t p ~timeout:!timeout;
    match p.reply with
    | Some r -> r
    | None ->
        Sim.Span.interval ~name:"rpc.rto"
          ~attrs:[ ("attempt", Sim.Span.I !attempts) ]
          ~start_us:send_at
          ~stop_us:(Sim.Engine.now t.engine)
          ();
        timeout := min (!timeout * 2) t.cs.cs_max_timeout;
        attempt ~retry:true
  in
  let r = attempt ~retry:false in
  trace_reply t p ~attempts:!attempts;
  charge_cost t ~entry:t0 ~window_wait:0 p;
  finish_call t call ~t0 r

let call_fixed t (call : Proto.call) =
  Sim.Span.span
    ~name:("rpc." ^ Proto.op_name call)
    (fun () -> call_fixed_body t call)

(* ---------- adaptive transport (Jacobson/Karn + AIMD window) ---------- *)

let window cs = max 1 (int_of_float cs.cwnd)

let clamp_rto cs v = max cs.cs_min_rto (min v cs.cs_max_timeout)

(* Valid (un-retransmitted, Karn) samples drive the standard
   srtt/rttvar estimator: srtt += err/8, rttvar += (|err|-rttvar)/4,
   rto = srtt + 4*rttvar — and recomputing rto here is also what
   retires a Karn backoff once a clean exchange proves the network. *)
let sample_rtt cs rtt =
  let sample = float_of_int rtt in
  if cs.srtt < 0. then begin
    cs.srtt <- sample;
    cs.rttvar <- sample /. 2.
  end
  else begin
    let err = sample -. cs.srtt in
    cs.srtt <- cs.srtt +. (err /. 8.);
    cs.rttvar <- cs.rttvar +. ((Float.abs err -. cs.rttvar) /. 4.)
  end;
  cs.rto <- clamp_rto cs (int_of_float (cs.srtt +. (4. *. cs.rttvar)))

let call_adaptive_body t (call : Proto.call) =
  let cs = t.cs in
  (* congestion window: bound the channel's outstanding RPCs across
     every mount sharing this cstate *)
  let entry = Sim.Engine.now t.engine in
  while cs.in_flight >= window cs do
    Sim.Condition.wait cs.win_cond
  done;
  let waited = Sim.Engine.now t.engine - entry in
  if waited > 0 then begin
    Sim.Stats.Summary.add cs.window_wait_us (float_of_int waited);
    Sim.Span.interval ~name:"rpc.window" ~start_us:entry
      ~stop_us:(Sim.Engine.now t.engine)
      ()
  end;
  cs.in_flight <- cs.in_flight + 1;
  let xid = t.next_xid in
  t.next_xid <- t.next_xid + 1;
  t.st.calls <- t.st.calls + 1;
  Sim.Span.add_attr "xid" (Sim.Span.I xid);
  let size = Proto.call_size call in
  let p = mk_pending t xid in
  let t0 = Sim.Engine.now t.engine in
  let cur = ref cs.rto in
  let attempts = ref 0 in
  let rec attempt ~retry =
    if retry then note_retransmit t p;
    incr attempts;
    let send_at = Sim.Engine.now t.engine in
    Net.send t.ep ~size
      (Proto.Call
         { xid; client = t.id; call; sent = send_at; span = Sim.Span.ctx () });
    wait_reply_or_timeout t p ~timeout:!cur;
    match p.reply with
    | Some r -> r
    | None ->
        (* timeout: exponential backoff for this call, published as the
           channel RTO (Karn: the backed-off value holds until a clean
           sample), and a multiplicative window decrease at most once
           per RTO so one loss burst doesn't zero the window *)
        Sim.Span.interval ~name:"rpc.rto"
          ~attrs:[ ("attempt", Sim.Span.I !attempts) ]
          ~start_us:send_at
          ~stop_us:(Sim.Engine.now t.engine)
          ();
        cs.backoffs <- cs.backoffs + 1;
        cur := min (!cur * 2) cs.cs_max_timeout;
        cs.rto <- max cs.rto !cur;
        let now = Sim.Engine.now t.engine in
        if now >= cs.next_decrease_at then begin
          cs.cwnd <- Float.max 1. (cs.cwnd /. 2.);
          cs.next_decrease_at <- now + !cur
        end;
        attempt ~retry:true
  in
  let r = attempt ~retry:false in
  if not p.retransmitted then begin
    sample_rtt cs (Sim.Engine.now t.engine - t0);
    (* additive increase on clean replies only *)
    cs.cwnd <- Float.min cs.cs_cwnd_limit (cs.cwnd +. (1. /. cs.cwnd))
  end;
  cs.in_flight <- cs.in_flight - 1;
  Sim.Condition.signal cs.win_cond;
  trace_reply t p ~attempts:!attempts;
  charge_cost t ~entry ~window_wait:waited p;
  finish_call t call ~t0 r

let call_adaptive t (call : Proto.call) =
  Sim.Span.span
    ~name:("rpc." ^ Proto.op_name call)
    (fun () -> call_adaptive_body t call)

let call t (call : Proto.call) =
  match t.transport with
  | Fixed -> call_fixed t call
  | Adaptive -> call_adaptive t call

(* ---------- observability ---------- *)

let stats t = t.st
let op_calls t op = match Hashtbl.find_opt t.op_calls op with Some r -> !r | None -> 0

let rtt_of t op =
  match Hashtbl.find_opt t.op_rtt op with
  | Some s -> s
  | None -> Sim.Stats.Summary.create ()

let srtt_us t = if t.cs.srtt < 0. then 0. else t.cs.srtt
let rto_us t = float_of_int t.cs.rto
let cwnd t = match t.transport with Fixed -> 0. | Adaptive -> t.cs.cwnd
let in_flight t = t.cs.in_flight
let backoffs t = t.cs.backoffs
let window_wait_us t = t.cs.window_wait_us
let cstate_of t = t.cs
let shares_cstate a b = a.cs == b.cs

let retransmits_since t since =
  List.length (List.filter (fun at -> at >= since) t.retrans_log)
