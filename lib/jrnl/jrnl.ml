(* Write-ahead intent log: circular, checksummed, sector-granular.
   See the .mli for the on-disk contract. *)

exception Full of string

(* --- little-endian codec (kept local: ufs depends on us, not vice
   versa) --- *)

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff
let put_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get_u64 b off =
  let v = Bytes.get_int64_le b off in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    invalid_arg "Jrnl: u64 out of range";
  Int64.to_int v

let put_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)

(* FNV-1a, 32-bit: deterministic, cheap, good enough to detect torn
   writes (we are not defending against adversarial corruption). *)
let fnv1a b off len =
  let h = ref 0x811c9dc5 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.get b i)) * 0x01000193 land 0xffffffff
  done;
  !h

(* --- on-disk layout --- *)

let sector = 512
let header_reserved = sector
let hdr_magic = 0x4c4e524a (* "JRNL" *)
let entry_magic = 0x454e524a (* "JRNE" *)
let version = 1
let entry_hdr = 32
let kind_txn = 0
let kind_wrap = 1
let pad_up n = (n + sector - 1) / sector * sector

(* header sector: magic u32 | version u32 | data_bytes u64 | head_off
   u64 | head_seq u64 | checksum u32 (over bytes [0,32)) *)
let encode_header ~data_bytes ~head_off ~head_seq =
  let b = Bytes.make header_reserved '\000' in
  put_u32 b 0 hdr_magic;
  put_u32 b 4 version;
  put_u64 b 8 data_bytes;
  put_u64 b 16 head_off;
  put_u64 b 24 head_seq;
  put_u32 b 32 (fnv1a b 0 32);
  b

let decode_header b =
  if get_u32 b 0 <> hdr_magic then failwith "Jrnl: bad header magic";
  if get_u32 b 4 <> version then failwith "Jrnl: bad header version";
  if get_u32 b 32 <> fnv1a b 0 32 then failwith "Jrnl: header checksum";
  (get_u64 b 8, get_u64 b 16, get_u64 b 24)

(* entry header: magic u32 | seq u64 | kind u8 | pad*3 | payload_len
   u32 | nrecs u32 | payload cksum u32 | header cksum u32 (over
   [0,28)) *)
let encode_entry_header ~seq ~kind ~payload_len ~nrecs ~pck =
  let b = Bytes.make entry_hdr '\000' in
  put_u32 b 0 entry_magic;
  put_u64 b 4 seq;
  Bytes.set b 12 (Char.chr kind);
  put_u32 b 16 payload_len;
  put_u32 b 20 nrecs;
  put_u32 b 24 pck;
  put_u32 b 28 (fnv1a b 0 28);
  b

type stats = {
  mutable commits : int;
  mutable commit_records : int;
  mutable log_bytes : int;
  mutable wraps : int;
  mutable checkpoints : int;
}

type t = {
  dev : Disk.Blkdev.t;
  off_bytes : int;  (* region start on the device *)
  data_bytes : int;  (* capacity of the circular data area *)
  mutable head_off : int;  (* durable: oldest live entry *)
  mutable head_seq : int;
  mutable tail_off : int;  (* next append position *)
  mutable next_seq : int;
  mutable used_bytes : int;
  mutable open_recs : bytes list;  (* reversed *)
  mutable open_nrecs : int;
  mutable open_bytes : int;  (* payload bytes of the open txn *)
  stats : stats;
}

let mk_stats () =
  { commits = 0; commit_records = 0; log_bytes = 0; wraps = 0; checkpoints = 0 }

let data_of_len len_bytes =
  let d = len_bytes - header_reserved in
  if d < 4 * sector then invalid_arg "Jrnl: region too small";
  d / sector * sector

let format store ~off_bytes ~len_bytes =
  let data_bytes = data_of_len len_bytes in
  let h = encode_header ~data_bytes ~head_off:0 ~head_seq:1 in
  Disk.Store.write store ~off:off_bytes ~len:header_reserved h 0;
  (* poison the first entry slot so a stale entry from a previous log
     generation cannot masquerade as seq 1 *)
  let z = Bytes.make sector '\000' in
  Disk.Store.write store ~off:(off_bytes + header_reserved) ~len:sector z 0

let free_bytes t = t.data_bytes - t.used_bytes
let capacity_bytes t = t.data_bytes
let stats t = t.stats
let pending t = t.open_nrecs > 0
let pending_bytes t = t.open_bytes + (4 * t.open_nrecs)

(* --- scanning ---

   [mk_reader] wraps a byte-range fetch in a one-block cache and counts
   distinct 8 KB block fetches; both the mount-time tail search and the
   recovery replay go through it, so "blocks read" in the report is the
   honest I/O count. *)

let scan_block = 8192

type reader = {
  fetch : int -> int -> bytes -> unit;  (* off len dst: region-relative *)
  mutable cached : int;  (* block index, -1 = none *)
  buf : bytes;
  mutable nread : int;
  region_len : int;
}

let mk_reader ~region_len fetch =
  { fetch; cached = -1; buf = Bytes.create scan_block; nread = 0; region_len }

let reader_get r ~off ~len dst dst_off =
  let pos = ref off and d = ref dst_off and remaining = ref len in
  while !remaining > 0 do
    let bi = !pos / scan_block in
    let boff = !pos mod scan_block in
    let n = min !remaining (scan_block - boff) in
    if r.cached <> bi then begin
      let blen = min scan_block (r.region_len - (bi * scan_block)) in
      Bytes.fill r.buf 0 scan_block '\000';
      r.fetch (bi * scan_block) blen r.buf;
      r.cached <- bi;
      r.nread <- r.nread + 1
    end;
    Bytes.blit r.buf boff dst !d n;
    pos := !pos + n;
    d := !d + n;
    remaining := !remaining - n
  done

type report = {
  entries : int;
  records : int;
  payload_bytes : int;
  blocks_read : int;
  torn : bool;
  head_seq : int;
}

(* Walk the log from the durable head.  Returns the report plus the
   writer-side resume state (tail offset, next seq, used bytes) so
   [attach] can reuse the same walk. *)
let scan_reader r ~on_record =
  let hb = Bytes.create header_reserved in
  reader_get r ~off:0 ~len:header_reserved hb 0;
  let data_bytes, head_off, head_seq = decode_header hb in
  let pos = ref head_off and seq = ref head_seq in
  let entries = ref 0 and records = ref 0 and payload = ref 0 in
  let used = ref 0 and torn = ref false and stop = ref false in
  let eh = Bytes.create entry_hdr in
  while not !stop do
    if !used >= data_bytes then stop := true (* full circle *)
    else begin
      let remaining = data_bytes - !pos in
      if remaining < entry_hdr then begin
        (* implicit wrap: too little room even for a header *)
        used := !used + remaining;
        pos := 0
      end
      else begin
        reader_get r ~off:(header_reserved + !pos) ~len:entry_hdr eh 0;
        let ok =
          get_u32 eh 0 = entry_magic
          && get_u32 eh 28 = fnv1a eh 0 28
          && get_u64 eh 4 = !seq
        in
        if not ok then begin
          torn := get_u32 eh 0 = entry_magic;
          stop := true
        end
        else
          let kind = Char.code (Bytes.get eh 12) in
          if kind = kind_wrap then begin
            used := !used + remaining;
            pos := 0;
            incr seq
          end
          else begin
            let plen = get_u32 eh 16 in
            let nrecs = get_u32 eh 20 in
            if plen > remaining - entry_hdr then begin
              torn := true;
              stop := true
            end
            else begin
              let pb = Bytes.create plen in
              reader_get r ~off:(header_reserved + !pos + entry_hdr) ~len:plen
                pb 0;
              if fnv1a pb 0 plen <> get_u32 eh 24 then begin
                torn := true;
                stop := true
              end
              else begin
                let o = ref 0 in
                for _ = 1 to nrecs do
                  let rl = get_u32 pb !o in
                  on_record (Bytes.sub pb (!o + 4) rl);
                  o := !o + 4 + rl
                done;
                incr entries;
                records := !records + nrecs;
                payload := !payload + plen;
                let esz = pad_up (entry_hdr + plen) in
                used := !used + esz;
                pos := !pos + esz;
                if !pos = data_bytes then pos := 0;
                incr seq
              end
            end
          end
      end
    end
  done;
  ( {
      entries = !entries;
      records = !records;
      payload_bytes = !payload;
      blocks_read = r.nread;
      torn = !torn;
      head_seq;
    },
    (head_off, head_seq, !pos, !seq, !used) )

let store_fetch store ~off_bytes ~len_bytes =
  fun off len dst ->
  if off + len <= len_bytes then
    Disk.Store.read store ~off:(off_bytes + off) ~len dst 0

let blkdev_fetch dev ~off_bytes ~len_bytes =
  let sb = Disk.Blkdev.sector_bytes dev in
  fun off len dst ->
    if off + len <= len_bytes then begin
      (* region start is sector-aligned by construction *)
      assert ((off_bytes + off) mod sb = 0);
      let count = (len + sb - 1) / sb in
      let buf = Bytes.create (count * sb) in
      Disk.Blkdev.read_sync dev
        ~sector:((off_bytes + off) / sb)
        ~count ~buf ~buf_off:0;
      Bytes.blit buf 0 dst 0 len
    end

let scan_store store ~off_bytes ~len_bytes ~on_record =
  let r =
    mk_reader ~region_len:len_bytes (store_fetch store ~off_bytes ~len_bytes)
  in
  fst (scan_reader r ~on_record)

let scan_blkdev dev ~off_bytes ~len_bytes ~on_record =
  let r =
    mk_reader ~region_len:len_bytes (blkdev_fetch dev ~off_bytes ~len_bytes)
  in
  fst (scan_reader r ~on_record)

(* --- writer --- *)

(* Attach scans untimed, straight off the backing store: mount runs
   outside any simulated process (no context to sleep in), and on a
   clean image the log is empty anyway. *)
let attach dev ~off_bytes ~len_bytes =
  let store = Disk.Blkdev.store dev in
  let r =
    mk_reader ~region_len:len_bytes (store_fetch store ~off_bytes ~len_bytes)
  in
  let _, (head_off, head_seq, tail_off, next_seq, used) =
    scan_reader r ~on_record:(fun _ -> ())
  in
  {
    dev;
    off_bytes;
    data_bytes = data_of_len len_bytes;
    head_off;
    head_seq;
    tail_off;
    next_seq;
    used_bytes = used;
    open_recs = [];
    open_nrecs = 0;
    open_bytes = 0;
    stats = mk_stats ();
  }

let append t rec_ =
  t.open_recs <- rec_ :: t.open_recs;
  t.open_nrecs <- t.open_nrecs + 1;
  t.open_bytes <- t.open_bytes + Bytes.length rec_

let write_bytes t ~off b =
  (* [off] is data-area-relative and sector-aligned *)
  let abs = t.off_bytes + header_reserved + off in
  assert (abs mod sector = 0);
  let len = Bytes.length b in
  assert (len mod sector = 0);
  Disk.Blkdev.write_sync t.dev ~sector:(abs / sector) ~count:(len / sector)
    ~buf:b ~buf_off:0

let write_header t =
  let h =
    encode_header ~data_bytes:t.data_bytes ~head_off:t.head_off
      ~head_seq:t.head_seq
  in
  assert (t.off_bytes mod sector = 0);
  Disk.Blkdev.write_sync t.dev ~sector:(t.off_bytes / sector)
    ~count:(header_reserved / sector) ~buf:h ~buf_off:0

let commit t =
  if t.open_nrecs > 0 then begin
    let plen = pending_bytes t in
    let esz = pad_up (entry_hdr + plen) in
    if esz > t.data_bytes - t.used_bytes then
      raise
        (Full
           (Printf.sprintf "Jrnl: entry %d B > free %d B" esz
              (t.data_bytes - t.used_bytes)));
    let remaining = t.data_bytes - t.tail_off in
    let wrap = esz > remaining in
    if wrap && esz > t.data_bytes - t.used_bytes - remaining then
      raise (Full "Jrnl: entry does not fit after wrap");
    (* Snapshot and reset the open transaction, and reserve log space,
       BEFORE the (sleeping) writes: records appended by other
       processes while the commit I/O is in flight belong to the next
       transaction, not to this entry.  Callers serialise commits, so
       reserving up front also keeps entries in sequence order. *)
    let recs = List.rev t.open_recs and nrecs = t.open_nrecs in
    t.open_recs <- [];
    t.open_nrecs <- 0;
    t.open_bytes <- 0;
    let wrap_off = t.tail_off and wrap_seq = t.next_seq in
    let wrap_marker = wrap && remaining >= entry_hdr in
    if wrap then begin
      if wrap_marker then begin
        t.next_seq <- t.next_seq + 1;
        t.stats.wraps <- t.stats.wraps + 1
      end;
      t.used_bytes <- t.used_bytes + remaining;
      t.tail_off <- 0
    end;
    let entry_off = t.tail_off and entry_seq = t.next_seq in
    t.tail_off <- t.tail_off + esz;
    if t.tail_off = t.data_bytes then t.tail_off <- 0;
    t.used_bytes <- t.used_bytes + esz;
    t.next_seq <- t.next_seq + 1;
    t.stats.commits <- t.stats.commits + 1;
    t.stats.commit_records <- t.stats.commit_records + nrecs;
    t.stats.log_bytes <- t.stats.log_bytes + esz;
    let payload = Bytes.create plen in
    let o = ref 0 in
    List.iter
      (fun r ->
        put_u32 payload !o (Bytes.length r);
        Bytes.blit r 0 payload (!o + 4) (Bytes.length r);
        o := !o + 4 + Bytes.length r)
      recs;
    let eh =
      encode_entry_header ~seq:entry_seq ~kind:kind_txn ~payload_len:plen
        ~nrecs ~pck:(fnv1a payload 0 plen)
    in
    let b = Bytes.make esz '\000' in
    Bytes.blit eh 0 b 0 entry_hdr;
    Bytes.blit payload 0 b entry_hdr plen;
    if wrap_marker then begin
      let wh =
        encode_entry_header ~seq:wrap_seq ~kind:kind_wrap ~payload_len:0
          ~nrecs:0 ~pck:0
      in
      let wb = Bytes.make sector '\000' in
      Bytes.blit wh 0 wb 0 entry_hdr;
      write_bytes t ~off:wrap_off wb
    end;
    write_bytes t ~off:entry_off b
  end

let reset_blkdev dev ~off_bytes ~len_bytes =
  let data_bytes = data_of_len len_bytes in
  let h = encode_header ~data_bytes ~head_off:0 ~head_seq:1 in
  assert (off_bytes mod sector = 0);
  Disk.Blkdev.write_sync dev ~sector:(off_bytes / sector)
    ~count:(header_reserved / sector) ~buf:h ~buf_off:0;
  let z = Bytes.make sector '\000' in
  Disk.Blkdev.write_sync dev
    ~sector:((off_bytes + header_reserved) / sector)
    ~count:1 ~buf:z ~buf_off:0

let checkpoint t =
  if t.head_off <> t.tail_off || t.head_seq <> t.next_seq then begin
    t.head_off <- t.tail_off;
    t.head_seq <- t.next_seq;
    t.used_bytes <- 0;
    write_header t;
    t.stats.checkpoints <- t.stats.checkpoints + 1
  end

let register_metrics t m ~instance =
  Sim.Metrics.register m ~layer:"jrnl" ~instance (fun () ->
      [
        ("commits", Sim.Metrics.Int t.stats.commits);
        ("commit_records", Sim.Metrics.Int t.stats.commit_records);
        ("log_bytes", Sim.Metrics.Int t.stats.log_bytes);
        ("wraps", Sim.Metrics.Int t.stats.wraps);
        ("checkpoints", Sim.Metrics.Int t.stats.checkpoints);
        ("free_bytes", Sim.Metrics.Int (free_bytes t));
        ("pending_records", Sim.Metrics.Int t.open_nrecs);
      ])
