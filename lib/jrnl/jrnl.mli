(** Write-ahead intent log in a reserved region of a block device.

    The log is payload-agnostic: callers append opaque records into an
    open transaction and {!commit} makes the whole transaction durable
    with one sequential write into the region.  The region is circular:

    - the first sector holds a versioned, checksummed header with the
      durable {e head} (offset + sequence number of the oldest live
      entry); everything after it is the data area;
    - each committed transaction is one {e entry}: a checksummed header,
      the concatenated records, padding to sector granularity;
    - entries never straddle the region end — a wrap marker (or, when
      fewer than a header's worth of bytes remain, nothing at all)
      sends both writer and scanner back to offset zero.

    Recovery ({!scan_store}/{!scan_blkdev}) starts at the durable head
    and walks forward, validating magic, sequence number and checksums;
    the first invalid entry is the torn tail and scanning stops — a
    crash mid-commit loses at most the uncommitted transaction.  The
    scan reads only the log region, block at a time, so recovery cost
    is O(log size), never O(disk).

    {!checkpoint} durably advances the head past every committed entry.
    The caller must have applied (or be about to re-apply idempotently)
    those entries in place first: the contract is that any entry still
    live in the log can be redone safely at any time. *)

type t

exception Full of string
(** Raised by {!commit} when the open transaction does not fit in the
    free span of the region.  Callers are expected to watch
    {!free_bytes} and checkpoint before this can happen. *)

val header_reserved : int
(** Bytes reserved at the start of the region for the durable header. *)

val format : Disk.Store.t -> off_bytes:int -> len_bytes:int -> unit
(** Write a fresh (empty-log) header directly into the image — untimed,
    for mkfs and post-recovery reset. *)

val attach : Disk.Blkdev.t -> off_bytes:int -> len_bytes:int -> t
(** Open the log for appending: read the header, then scan forward from
    the head to locate the tail.  The scan is untimed (straight off the
    backing store): mount runs outside any simulated process, and on a
    cleanly unmounted image the log is empty anyway. *)

val reset_blkdev : Disk.Blkdev.t -> off_bytes:int -> len_bytes:int -> unit
(** Timed post-recovery reset: rewrite a fresh (empty-log) header and
    poison the first entry slot through the device, so the reset cost
    shows up in the recovery time like every other replay write. *)

val append : t -> bytes -> unit
(** Add a record to the open transaction (buffered in memory). *)

val pending : t -> bool
(** True when the open transaction holds at least one record. *)

val pending_bytes : t -> int
val commit : t -> unit
(** Durably write the open transaction as one entry (timed, through the
    device).  No-op when nothing is pending. *)

val checkpoint : t -> unit
(** Durably advance the head past every committed entry (one header
    write).  Call only after the entries' effects are in place. *)

val free_bytes : t -> int
val capacity_bytes : t -> int

(** {1 Recovery-side scanning} *)

type report = {
  entries : int;  (** committed transactions redone *)
  records : int;
  payload_bytes : int;
  blocks_read : int;  (** 8 KB blocks fetched from the log region *)
  torn : bool;  (** a torn tail was discarded *)
  head_seq : int;  (** sequence number at the durable head *)
}

val scan_store :
  Disk.Store.t ->
  off_bytes:int ->
  len_bytes:int ->
  on_record:(bytes -> unit) ->
  report
(** Untimed scan straight off the image (tests, offline inspection). *)

val scan_blkdev :
  Disk.Blkdev.t ->
  off_bytes:int ->
  len_bytes:int ->
  on_record:(bytes -> unit) ->
  report
(** Timed scan through the device — the replay path whose cost the
    recovery bench measures.  Must run inside a simulation process. *)

(** {1 Observability} *)

type stats = {
  mutable commits : int;
  mutable commit_records : int;
  mutable log_bytes : int;  (** entry bytes written, padding included *)
  mutable wraps : int;
  mutable checkpoints : int;
}

val stats : t -> stats

val register_metrics : t -> Sim.Metrics.t -> instance:string -> unit
(** Register commit/checkpoint counters and the live free-space gauge
    as a ["jrnl"] source. *)
