(** Central mutable state of a mounted UFS: the file system record, the
    in-memory inode, kernel-behaviour feature switches, statistics and
    trace events.  The operation modules (Alloc, Bmap, Getpage, Putpage,
    Rdwr, Dir, Fs) are all functions over these records. *)

(** Kernel-side behaviour switches — everything the paper adds is here,
    so every experiment config is a value of this type.  On-disk tuning
    (rotdelay, maxcontig) lives in {!Superblock.t} instead, because
    that is where FFS keeps it. *)
type features = {
  clustering : bool;
      (** transfer sequential I/O in bmap-sized clusters (the paper's
          core change); off = one-block-at-a-time SunOS 4.1 behaviour *)
  free_behind : bool;  (** the page-thrashing compromise *)
  write_limit : int option;  (** per-file in-flight write bytes cap *)
  bmap_cache : bool;  (** future work: last-translation cache *)
  small_in_inode : bool;
      (** future work: serve files <= 2 KB from the in-memory inode *)
  getpage_hint : bool;
      (** future work: "random clustering" — cluster big random reads *)
  skip_bmap_if_no_holes : bool;
      (** future work: "UFS_HOLE" — skip the bmap call when the
          requested page is cached and the file has no holes *)
  ordered_metadata : bool;
      (** future work: "B_ORDER" — directory updates issue asynchronous
          {e ordered} writes instead of synchronous ones; the disk queue
          preserves their order, keeping crash consistency without
          stalling the process *)
}

val features_sunos41 : features
(** Plain SunOS 4.1: everything off (config "D"). *)

val features_clustered : features
(** The paper's shipping configuration: clustering + free-behind +
    240 KB write limit; future-work items off (config "A"). *)

val write_limit_default : int
(** 240 KB, "currently 240KB". *)

(** Trace events emitted by the I/O paths; tests replay the paper's
    figures 3, 6 and 7 against these. *)
type event =
  | Ev_getpage of { off : int; cached : bool }
  | Ev_read_sync of { lbn : int; blocks : int }  (** blocking page-in *)
  | Ev_read_ahead of { lbn : int; blocks : int }
  | Ev_write_delay of { off : int }  (** putpage "lied" *)
  | Ev_write_push of { off : int; bytes : int; ios : int }
  | Ev_free_behind of { off : int }
  | Ev_pageout_flush of { off : int }

type stats = {
  mutable getpage_calls : int;
  mutable getpage_hits : int;  (** requested page already cached *)
  mutable pgin_ios : int;
  mutable pgin_blocks : int;
  mutable ra_ios : int;
  mutable ra_blocks : int;
  mutable ra_streams : int;
      (** stream windows created beyond a file's initial one: how often
          a second (third, ...) concurrent sequential reader appeared *)
  mutable ra_stream_hits : int;
      (** accesses that matched some stream window's prediction *)
  mutable ra_shrinks : int;
      (** adaptive cluster-size halvings driven by the pool's
          wasted-prefetch counter *)
  mutable flush_runs : int;
      (** multi-block (>= 2) write I/Os issued: the write-gathering
          effectiveness counter *)
  mutable putpage_calls : int;
  mutable delayed_pages : int;
  mutable push_ios : int;
  mutable push_blocks : int;
  mutable freebehind_pages : int;
  mutable freebehind_suppressed : int;
      (** reads under memory pressure past the offset threshold where
          free-behind did {e not} fire because the stream was not
          sequential — the counter that makes the FRR bug visible *)
  mutable ra_used_blocks : int;
      (** prefetched pages consumed by a later access (see
          {!Vm.Page.t.prefetched}; the wasted side is counted by the
          pool at free time) *)
  mutable bmap_calls : int;
  mutable bmap_cache_hits : int;
  mutable block_allocs : int;
  mutable frag_allocs : int;
  mutable cg_switches : int;
  mutable wlimit_sleeps : int;
  mutable idata_reads : int;  (** small-file reads served from inode *)
  mutable oldest_dirty : Sim.Time.t;
      (** stamp of the oldest unflushed dirtying; -1 when clean.
          {!note_dirty} arms it, the syncer reads and re-arms it. *)
  read_call_us : Sim.Stats.Summary.t;  (** per-read(2) wall time *)
  write_call_us : Sim.Stats.Summary.t;  (** per-write(2) wall time *)
  pgin_wait_us : Sim.Stats.Summary.t;
      (** time a reader slept on a synchronous page-in *)
  read_io_blocks : Sim.Stats.Hist.t;
      (** issued read-I/O sizes (sync + read-ahead), in blocks: the
          clustering histogram *)
  push_io_blocks : Sim.Stats.Hist.t;  (** issued write-I/O sizes *)
}

val mk_stats : unit -> stats

(** One sequential-access window: the per-stream generalisation of the
    paper's single nextr/nextrio pair, so N interleaved readers stop
    destroying each other's sequentiality hint. *)
type rstream = {
  mutable s_nextr : int;  (** predicted next read offset, bytes *)
  mutable s_ra_off : int;
      (** read-ahead frontier (the paper's nextrio); -1 = not yet
          established for a mid-file stream *)
  mutable s_hits : int;  (** consecutive-prediction matches *)
  mutable s_born : int;
      (** inode miss-count at creation/refresh, for TTL pruning *)
  mutable s_stamp : int;  (** LRU clock stamp *)
  mutable s_cbs : int;
      (** adaptive cluster-size cap in bytes; max_int = uncapped (use
          the file system's cluster size) *)
  mutable s_waste_mark : int;
      (** pool wasted-prefetch count at the last sizing decision;
          -1 = not yet sampled *)
}

val max_rstreams : int
(** Window-table capacity per file (8). *)

val rstream_miss_ttl : int
(** Unestablished windows are dropped after this many file-level misses
    since their creation/refresh (4). *)

val mk_rstream : nextr:int -> ra_off:int -> born:int -> stamp:int -> rstream

type inode = {
  inum : int;
  mutable kind : Dinode.kind;
  mutable nlink : int;
  mutable size : int;
  mutable blocks : int;  (** fragments allocated, incl. indirect blocks *)
  mutable gen : int;
  db : int array;
  ib : int array;
  mutable immediate : string;
  (* --- read clustering state (paper: nextr/nextrio, per stream) --- *)
  mutable rstreams : rstream list;  (** at most {!max_rstreams} windows *)
  mutable rs_clock : int;  (** LRU stamp source *)
  mutable rs_misses : int;  (** accesses matching no window *)
  (* --- write clustering state (paper: delayoff, delaylen) --- *)
  mutable delayoff : int;
  mutable delaylen : int;
  (* --- write limit + fsync bookkeeping --- *)
  wlimit : Sim.Semaphore.t option;
  mutable outstanding_writes : int;  (** in-flight write bytes *)
  iodone : Sim.Condition.t;  (** signalled as writes complete *)
  (* --- caches --- *)
  mutable bmap_cache : (int * int * int) option;  (** lbn, frag, frags *)
  mutable idata : bytes option;  (** small-file data, when cached *)
  (* --- plumbing --- *)
  ilock : Sim.Mutex.t;
  dlock : Sim.Mutex.t;
      (** serialises name-space updates within this directory *)
  mutable vnode : Vfs.Vnode.t option;
  mutable meta_dirty : bool;  (** dinode needs writing back *)
  mutable refcnt : int;
}

(** One open journalled operation: a namespace update, a block
    allocation or a truncate.  Records accumulate here and enter the
    shared open transaction atomically at operation end (together with
    the images of every touched inode), so a commit can never capture
    half an operation. *)
type wal_op = {
  op_id : int;
  mutable op_recs : bytes list;  (** this op's records, newest first *)
  mutable op_inodes : (int * inode) list;  (** touched inodes, deduped *)
  mutable op_pins : int list;  (** frags freed by this op *)
  mutable op_meta : int list;  (** metabuf frags this op made unstable *)
  mutable op_pushes : (inode * int) list;
      (** directory pages dirtied by this op, pushed only after the
          op's transaction commits *)
}

(** Write-ahead intent-journal state (see {!Wal} for the operations).
    Lives here, data-only, so every operation module can consult it
    without a dependency cycle. *)
type wal = {
  wj : Jrnl.t;  (** the on-disk circular log *)
  w_lock : Sim.Mutex.t;  (** serialises log commits *)
  w_ckpt_lock : Sim.Mutex.t;  (** one checkpoint at a time *)
  w_ops : (int, wal_op) Hashtbl.t;  (** open operations by id *)
  mutable w_next_op : int;
  w_pinned : (int, int) Hashtbl.t;
      (** fragments freed by a not-yet-committed free record, barred
          from reallocation until the free commits: data writes are
          unlogged, so reuse before commit could overwrite bytes that
          committed metadata still references *)
  mutable w_txn_pins : int list;
      (** pins released when the open transaction commits *)
  w_unstable : (int, int) Hashtbl.t;
      (** metabuf frag -> open-op refs; the metabuf pre-write hook
          refuses to write these in place (invariant W1) *)
  w_active : (int, int) Hashtbl.t;
      (** inum -> open-op refs; putpage/pageout skip these inodes *)
  w_idle : Sim.Condition.t;  (** signalled when [w_ops] drains empty *)
  mutable w_stalled : bool;  (** checkpoint quiesce: new ops wait *)
  w_resume : Sim.Condition.t;
  mutable w_kick : unit -> unit;
      (** schedule an asynchronous checkpoint when the log runs low *)
  mutable w_push : inode -> int -> unit;
      (** asynchronous page push, for [op_pushes] *)
  mutable w_txns : int;  (** transactions committed *)
  mutable w_barrier_commits : int;
      (** commits forced by an in-place metadata write (invariant W1) *)
  mutable w_pin_commits : int;
      (** commits forced to release pinned fragments under allocation
          pressure *)
  mutable w_ckpt_waits : int;  (** ops delayed by a checkpoint quiesce *)
  mutable w_stall_commits : int;  (** commits delayed by a quiesce *)
}

type fs = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  dev : Disk.Blkdev.t;
  pool : Vm.Pool.t;
  sb : Superblock.t;
  cgs : Cg.t array;
  feat : features;
  costs : Costs.t;
  metabuf : Metabuf.t;
  icache : (int, inode) Hashtbl.t;
  alloc_lock : Sim.Mutex.t;
  iget_lock : Sim.Mutex.t;
      (** serialises inode-cache misses: the dinode read sleeps, and two
          processes faulting the same inode must not both instantiate it *)
  resv : (int, int * int) Hashtbl.t;
      (** advisory per-file allocation runs, inum -> (next fragment,
          limit fragment): the block allocator extends a file's current
          run preferentially and steers other files around it, so
          interleaved writers stop shredding each other's extents *)
  stats : stats;
  trace : event Sim.Trace.t;
  mutable wal : wal option;  (** intent journal, when the volume has one *)
}

val reset_rstreams : inode -> unit
(** Back to the initial single window predicting offset 0 — the
    per-stream equivalent of the old [nextr <- 0; nextrio <- 0]. *)

val mru_rstream : inode -> rstream option
(** Most recently touched window (tests and benches introspect it). *)

val mk_inode : fs -> inum:int -> Dinode.t -> inode
(** Wrap a decoded dinode, initialising clustering state ("when the
    inode is initialized, nextr is set to zero, predicting that the
    first read will be the first block of the file") and the write-limit
    semaphore when the feature is on. *)

val to_dinode : inode -> Dinode.t
(** Snapshot for writing back. *)

val cluster_bytes : fs -> int
(** [sb.maxcontig * bsize]: the desired cluster size in bytes. *)

val charge : fs -> label:string -> Sim.Time.t -> unit
(** Charge system CPU. *)

val note_dirty : fs -> unit
(** Arm [stats.oldest_dirty] with now if the file system was clean —
    call wherever dirty state is first created. *)

val rootino : int
(** Inode number of the root directory (2, as in FFS). *)
