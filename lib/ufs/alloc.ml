open Types

let total_free_frags (fs : fs) =
  (fs.sb.Superblock.nbfree * Layout.fpb) + fs.sb.Superblock.nffree

let block_pass_us (fs : fs) =
  let geom = Disk.Blkdev.geom fs.dev in
  let spt =
    match geom.Disk.Geom.zones with
    | z :: _ -> z.Disk.Geom.spt
    | [] -> assert false
  in
  let sectors = Layout.bsize / Layout.sector_bytes in
  sectors * Disk.Geom.sector_time geom ~spt

let rotdelay_gap_blocks (fs : fs) =
  let rd = fs.sb.Superblock.rotdelay_ms in
  if rd = 0 then 0
  else
    let pass = block_pass_us fs in
    max 1 (((rd * 1000) + pass - 1) / pass)

(* ---------- count-preserving bitmap mutation ---------- *)

let free_bits_in_block (cg : Cg.t) (sb : Superblock.t) block_base =
  let n = ref 0 in
  for i = 0 to Layout.fpb - 1 do
    if Cg.frag_free cg sb (block_base + i) then incr n
  done;
  !n

(* Mutate bits of fragments inside one block while keeping the group and
   superblock summary counts consistent. *)
let with_block_counts (fs : fs) (cg : Cg.t) block_base f =
  let sb = fs.sb in
  let before = free_bits_in_block cg sb block_base in
  f ();
  let after = free_bits_in_block cg sb block_base in
  let sub n = if n = Layout.fpb then (1, 0) else (0, n) in
  let b_blk, b_frag = sub before and a_blk, a_frag = sub after in
  cg.Cg.nbfree <- cg.Cg.nbfree - b_blk + a_blk;
  cg.Cg.nffree <- cg.Cg.nffree - b_frag + a_frag;
  sb.Superblock.nbfree <- sb.Superblock.nbfree - b_blk + a_blk;
  sb.Superblock.nffree <- sb.Superblock.nffree - b_frag + a_frag;
  cg.Cg.dirty <- true

let block_base_of frag = frag - (frag mod Layout.fpb)

let take_frags fs cg ~frag ~n =
  with_block_counts fs cg (block_base_of frag) (fun () ->
      for i = 0 to n - 1 do
        assert (Cg.frag_free cg fs.sb (frag + i));
        Cg.set_frag cg fs.sb (frag + i) ~free:false
      done);
  Wal.log_frag_alloc fs ~frag ~n

let release_frags fs cg ~frag ~n =
  with_block_counts fs cg (block_base_of frag) (fun () ->
      for i = 0 to n - 1 do
        assert (not (Cg.frag_free cg fs.sb (frag + i)));
        Cg.set_frag cg fs.sb (frag + i) ~free:true
      done);
  (* also pins the fragments until the free record commits *)
  Wal.log_frag_free fs ~frag ~n

(* ---------- placement policy ---------- *)

(* Average free blocks per group; groups above average are attractive
   targets for a fresh run. *)
let avg_bfree (fs : fs) = fs.sb.Superblock.nbfree / fs.sb.Superblock.ncg

let find_spacious_cg (fs : fs) ~start =
  let ncg = fs.sb.Superblock.ncg in
  let avg = avg_bfree fs in
  let rec loop i =
    if i = ncg then None
    else
      let c = (start + i) mod ncg in
      if fs.cgs.(c).Cg.nbfree >= max 1 avg then Some c else loop (i + 1)
  in
  loop 0

let blkpref (fs : fs) (ip : inode) ~lbn ~prev_frag =
  let sb = fs.sb in
  if lbn = 0 || prev_frag = 0 || (sb.Superblock.maxbpg > 0 && lbn mod sb.Superblock.maxbpg = 0)
  then begin
    (* start of a run: choose a cylinder group *)
    let home = Superblock.cg_of_inum sb ip.inum in
    let c =
      if lbn = 0 then home
      else begin
        fs.stats.cg_switches <- fs.stats.cg_switches + 1;
        match
          find_spacious_cg fs
            ~start:((home + (lbn / max 1 sb.Superblock.maxbpg)) mod sb.Superblock.ncg)
        with
        | Some c -> c
        | None -> home
      end
    in
    Cg.data_begin sb c + fs.cgs.(c).Cg.rotor
  end
  else begin
    let gap = rotdelay_gap_blocks fs in
    let mc = max 1 sb.Superblock.maxcontig in
    if gap > 0 && lbn mod mc = 0 then
      prev_frag + ((1 + gap) * Layout.fpb)
    else prev_frag + Layout.fpb
  end

(* ---------- allocation ---------- *)

let reserve_ok fs ~nfrags =
  total_free_frags fs - nfrags >= Superblock.minfree_frags fs.sb

let data_range_ok (fs : fs) cg frag n =
  frag >= Cg.data_begin fs.sb cg.Cg.cgx && frag + n <= Cg.cg_end fs.sb cg.Cg.cgx

(* ---------- advisory per-file run reservations ---------- *)

(* How far past a file's write frontier its advisory run extends: one
   cluster's worth of blocks, at least 8.  The run is not taken from the
   free counts — other files merely avoid it while easier space exists,
   so interleaved writers lay down contiguous extents instead of
   shredding each other's runs block by block. *)
let resv_frags (fs : fs) =
  max 8 (max 1 fs.sb.Superblock.maxcontig) * Layout.fpb

(* (Re)point the file's advisory run at the blocks just past [frag],
   clamped to the group (runs never span groups).  Every successful
   block allocation slides the window forward. *)
let arm_resv (fs : fs) (ip : inode) ~frag =
  let c = Superblock.cg_of_frag fs.sb frag in
  let next = frag + Layout.fpb in
  let limit = min (next + resv_frags fs) (Cg.cg_end fs.sb c) in
  if next < limit then Hashtbl.replace fs.resv ip.inum (next, limit)
  else Hashtbl.remove fs.resv ip.inum

let reserved_by_other (fs : fs) inum frag =
  Hashtbl.fold
    (fun i (next, limit) hit ->
      hit || (i <> inum && frag >= next && frag < limit))
    fs.resv false

(* Walk the file's own advisory run for a free block: the path that
   keeps an interleaved writer extending its current extent after other
   writers have dragged the group rotor elsewhere. *)
let scan_own_resv (fs : fs) (ip : inode) =
  match Hashtbl.find_opt fs.resv ip.inum with
  | None -> None
  | Some (next, limit) ->
      let sb = fs.sb in
      let cg = fs.cgs.(Superblock.cg_of_frag sb next) in
      let rec loop f =
        if f + Layout.fpb > limit then None
        else if
          data_range_ok fs cg f Layout.fpb
          && Cg.block_free cg sb f
          && not (Wal.span_pinned fs ~frag:f ~n:Layout.fpb)
        then Some (cg, f)
        else loop (f + Layout.fpb)
      in
      loop next

(* Scan group [cg] for a free whole block, starting near its rotor. *)
let scan_cg_for_block (fs : fs) (cg : Cg.t) ~avoid =
  if cg.Cg.nbfree = 0 then None
  else begin
    let sb = fs.sb in
    let lo = Cg.data_begin sb cg.Cg.cgx and hi = Cg.cg_end sb cg.Cg.cgx in
    let nblocks = (hi - lo) / Layout.fpb in
    (* the rotor is a group-relative fragment offset; convert it to a
       data-area block index for the scan start *)
    let rotor_abs = Cg.cg_begin sb cg.Cg.cgx + cg.Cg.rotor in
    let start_blk =
      if rotor_abs <= lo || nblocks = 0 then 0
      else (rotor_abs - lo) / Layout.fpb mod nblocks
    in
    let rec loop i =
      if i = nblocks then None
      else
        let b = lo + (((start_blk + i) mod nblocks) * Layout.fpb) in
        if
          Cg.block_free cg sb b
          && (not (avoid b))
          && not (Wal.span_pinned fs ~frag:b ~n:Layout.fpb)
        then Some b
        else loop (i + 1)
    in
    loop 0
  end

let do_take_block (fs : fs) (cg : Cg.t) (ip : inode) frag =
  take_frags fs cg ~frag ~n:Layout.fpb;
  cg.Cg.rotor <- frag + Layout.fpb - Cg.cg_begin fs.sb cg.Cg.cgx;
  if cg.Cg.rotor >= Cg.cg_end fs.sb cg.Cg.cgx - Cg.cg_begin fs.sb cg.Cg.cgx then
    cg.Cg.rotor <- Cg.data_begin fs.sb cg.Cg.cgx - Cg.cg_begin fs.sb cg.Cg.cgx;
  ip.blocks <- ip.blocks + Layout.fpb;
  fs.stats.block_allocs <- fs.stats.block_allocs + 1;
  frag

let alloc_block (fs : fs) (ip : inode) ~pref =
  Sim.Span.span ~name:"ufs.alloc" ~attrs:[ ("pref", Sim.Span.I pref) ]
  @@ fun () ->
  Sim.Mutex.with_lock fs.alloc_lock (fun () ->
      charge fs ~label:"alloc" fs.costs.Costs.alloc_block;
      if not (reserve_ok fs ~nfrags:Layout.fpb) then
        Vfs.Errno.raise_err Vfs.Errno.ENOSPC "alloc_block: below minfree";
      let sb = fs.sb in
      let try_exact () =
        if pref = 0 then None
        else
          let base = block_base_of pref in
          let c = Superblock.cg_of_frag sb base in
          if c >= sb.Superblock.ncg then None
          else
            let cg = fs.cgs.(c) in
            if
              data_range_ok fs cg base Layout.fpb
              && Cg.block_free cg sb base
              && not (Wal.span_pinned fs ~frag:base ~n:Layout.fpb)
            then Some (cg, base)
            else None
      in
      let search () =
        match try_exact () with
        | Some r -> Some r
        | None -> (
            (* the preferred block is gone (typically to another writer):
               before falling back to the rotor, try to keep extending
               this file's own advisory run *)
            match scan_own_resv fs ip with
            | Some r -> Some r
            | None ->
                let start_cg =
                  if pref <> 0 then
                    Superblock.cg_of_frag sb (block_base_of pref)
                  else Superblock.cg_of_inum sb ip.inum
                in
                let ncg = sb.Superblock.ncg in
                let scan ~respect =
                  let avoid b = respect && reserved_by_other fs ip.inum b in
                  let rec loop i =
                    if i = ncg then None
                    else
                      let c = (start_cg + i) mod ncg in
                      match scan_cg_for_block fs fs.cgs.(c) ~avoid with
                      | Some b -> Some (fs.cgs.(c), b)
                      | None -> loop (i + 1)
                  in
                  loop 0
                in
                (* pass 1 steers around other files' advisory runs; pass
                   2 is the unmodified rotor scan, so a nearly-full file
                   system still finds every last block (reservations are
                   advisory — ENOSPC behaviour is unchanged) *)
                (match scan ~respect:true with
                | Some r -> Some r
                | None -> scan ~respect:false))
      in
      let found =
        match search () with
        | Some r -> Some r
        | None ->
            (* every candidate may be pinned behind an uncommitted free
               record: commit to release the pins, then rescan once *)
            if Wal.unpin_commit fs then search () else None
      in
      match found with
      | Some (cg, frag) ->
          let frag = do_take_block fs cg ip frag in
          arm_resv fs ip ~frag;
          frag
      | None -> Vfs.Errno.raise_err Vfs.Errno.ENOSPC "alloc_block: no free block")

(* Find [n] free fragments inside one (preferably already broken) block
   of group [cg]. *)
let scan_cg_for_frags (fs : fs) (cg : Cg.t) ~n ~want_partial =
  let sb = fs.sb in
  let lo = Cg.data_begin sb cg.Cg.cgx and hi = Cg.cg_end sb cg.Cg.cgx in
  let nblocks = (hi - lo) / Layout.fpb in
  let rec loop b =
    if b = nblocks then None
    else begin
      let base = lo + (b * Layout.fpb) in
      let nfree = free_bits_in_block cg sb base in
      let partial = nfree < Layout.fpb in
      if nfree >= n && partial = want_partial then begin
        (* longest-fit within the block: find a run of >= n free bits *)
        let rec find i run start =
          if i = Layout.fpb then if run >= n then Some (base + start) else None
          else if Cg.frag_free cg sb (base + i) && not (Wal.pinned fs (base + i))
          then
            let start = if run = 0 then i else start in
            let run = run + 1 in
            if run >= n then Some (base + start) else find (i + 1) run start
          else find (i + 1) 0 0
        in
        match find 0 0 0 with Some f -> Some f | None -> loop (b + 1)
      end
      else loop (b + 1)
    end
  in
  loop 0

let alloc_frags (fs : fs) (ip : inode) ~pref ~nfrags =
  if nfrags <= 0 || nfrags >= Layout.fpb then
    invalid_arg "Alloc.alloc_frags: nfrags must be in 1..fpb-1";
  Sim.Span.span ~name:"ufs.alloc_frags"
    ~attrs:[ ("pref", Sim.Span.I pref); ("nfrags", Sim.Span.I nfrags) ]
  @@ fun () ->
  Sim.Mutex.with_lock fs.alloc_lock (fun () ->
      charge fs ~label:"alloc" fs.costs.Costs.alloc_block;
      if not (reserve_ok fs ~nfrags) then
        Vfs.Errno.raise_err Vfs.Errno.ENOSPC "alloc_frags: below minfree";
      let sb = fs.sb in
      let start_cg =
        if pref <> 0 then Superblock.cg_of_frag sb (block_base_of pref)
        else Superblock.cg_of_inum sb ip.inum
      in
      let ncg = sb.Superblock.ncg in
      let rec loop i want_partial =
        if i = ncg then if want_partial then loop 0 false else None
        else
          let c = (start_cg + i) mod ncg in
          match scan_cg_for_frags fs fs.cgs.(c) ~n:nfrags ~want_partial with
          | Some f -> Some (fs.cgs.(c), f)
          | None -> loop (i + 1) want_partial
      in
      let cg, frag =
        match loop 0 true with
        | Some r -> r
        | None -> (
            (* candidates may be pinned behind uncommitted free records *)
            match if Wal.unpin_commit fs then loop 0 true else None with
            | Some r -> r
            | None ->
                Vfs.Errno.raise_err Vfs.Errno.ENOSPC "alloc_frags: no space")
      in
      take_frags fs cg ~frag ~n:nfrags;
      ip.blocks <- ip.blocks + nfrags;
      fs.stats.frag_allocs <- fs.stats.frag_allocs + 1;
      frag)

let extend_frags (fs : fs) (ip : inode) ~frag ~old_n ~new_n =
  if new_n <= old_n || new_n > Layout.fpb then
    invalid_arg "Alloc.extend_frags: bad sizes";
  if (frag mod Layout.fpb) + new_n > Layout.fpb then false
  else
    Sim.Mutex.with_lock fs.alloc_lock (fun () ->
        charge fs ~label:"alloc" fs.costs.Costs.alloc_block;
        let grow = new_n - old_n in
        if not (reserve_ok fs ~nfrags:grow) then false
        else begin
          let cg = fs.cgs.(Superblock.cg_of_frag fs.sb frag) in
          let rec all_free i =
            i = new_n
            || Cg.frag_free cg fs.sb (frag + i)
               && (not (Wal.pinned fs (frag + i)))
               && all_free (i + 1)
          in
          if all_free old_n then begin
            take_frags fs cg ~frag:(frag + old_n) ~n:grow;
            ip.blocks <- ip.blocks + grow;
            true
          end
          else false
        end)

let free_frags (fs : fs) ip ~frag ~nfrags =
  if nfrags <= 0 || nfrags > Layout.fpb then
    invalid_arg "Alloc.free_frags: bad count";
  Sim.Mutex.with_lock fs.alloc_lock (fun () ->
      let cg = fs.cgs.(Superblock.cg_of_frag fs.sb frag) in
      release_frags fs cg ~frag ~n:nfrags;
      match ip with
      | Some ip -> ip.blocks <- ip.blocks - nfrags
      | None -> ())

let free_block fs ip frag =
  if frag mod Layout.fpb <> 0 then
    invalid_arg "Alloc.free_block: not block-aligned";
  free_frags fs ip ~frag ~nfrags:Layout.fpb

(* ---------- inodes ---------- *)

let alloc_inode (fs : fs) ~dir_hint ~kind =
  Sim.Mutex.with_lock fs.alloc_lock (fun () ->
      charge fs ~label:"alloc" fs.costs.Costs.alloc_block;
      let sb = fs.sb in
      let ncg = sb.Superblock.ncg in
      let start =
        match kind with
        | Dinode.Dir ->
            (* spread directories: group with above-average free inodes
               and fewest directories *)
            let avg_ifree = sb.Superblock.nifree / ncg in
            let best = ref None in
            for c = 0 to ncg - 1 do
              let g = fs.cgs.(c) in
              if g.Cg.nifree >= avg_ifree then
                match !best with
                | None -> best := Some c
                | Some b ->
                    if g.Cg.ndirs < fs.cgs.(b).Cg.ndirs then best := Some c
            done;
            Option.value !best ~default:0
        | Dinode.Reg | Dinode.Lnk | Dinode.Free ->
            Superblock.cg_of_inum sb dir_hint
      in
      let rec find_cg i =
        if i = ncg then
          Vfs.Errno.raise_err Vfs.Errno.ENOSPC "alloc_inode: no free inodes"
        else
          let c = (start + i) mod ncg in
          if fs.cgs.(c).Cg.nifree > 0 then c else find_cg (i + 1)
      in
      let c = find_cg 0 in
      let cg = fs.cgs.(c) in
      let rec find_idx idx =
        if idx = sb.Superblock.ipg then assert false
        else if Cg.inode_free cg idx then idx
        else find_idx (idx + 1)
      in
      let idx = find_idx 0 in
      Cg.set_inode cg idx ~free:false;
      cg.Cg.nifree <- cg.Cg.nifree - 1;
      sb.Superblock.nifree <- sb.Superblock.nifree - 1;
      if kind = Dinode.Dir then begin
        cg.Cg.ndirs <- cg.Cg.ndirs + 1;
        sb.Superblock.ndir <- sb.Superblock.ndir + 1
      end;
      let inum = (c * sb.Superblock.ipg) + idx in
      Wal.log_inode_alloc fs ~inum ~dir:(kind = Dinode.Dir);
      if kind = Dinode.Dir then Wal.log_cg_ndirs fs ~cgx:c ~value:cg.Cg.ndirs;
      inum)

let free_inode (fs : fs) inum =
  Sim.Mutex.with_lock fs.alloc_lock (fun () ->
      let sb = fs.sb in
      let c = Superblock.cg_of_inum sb inum in
      let idx = inum mod sb.Superblock.ipg in
      let cg = fs.cgs.(c) in
      if Cg.inode_free cg idx then
        invalid_arg "Alloc.free_inode: already free";
      Cg.set_inode cg idx ~free:true;
      cg.Cg.nifree <- cg.Cg.nifree + 1;
      sb.Superblock.nifree <- sb.Superblock.nifree + 1;
      Wal.log_inode_free fs ~inum)

let check_counts (fs : fs) =
  let problems = ref [] in
  let note what expected actual =
    if expected <> actual then problems := (what, expected, actual) :: !problems
  in
  let tb = ref 0 and tf = ref 0 and ti = ref 0 in
  Array.iter
    (fun (cg : Cg.t) ->
      let nb, nf, ni = Cg.recount cg fs.sb in
      note (Printf.sprintf "cg%d.nbfree" cg.Cg.cgx) nb cg.Cg.nbfree;
      note (Printf.sprintf "cg%d.nffree" cg.Cg.cgx) nf cg.Cg.nffree;
      note (Printf.sprintf "cg%d.nifree" cg.Cg.cgx) ni cg.Cg.nifree;
      tb := !tb + nb;
      tf := !tf + nf;
      ti := !ti + ni)
    fs.cgs;
  note "sb.nbfree" !tb fs.sb.Superblock.nbfree;
  note "sb.nffree" !tf fs.sb.Superblock.nffree;
  note "sb.nifree" !ti fs.sb.Superblock.nifree;
  List.rev !problems
