(** The superblock: file-system-wide geometry, tuning knobs and summary
    counts.

    The two tuning parameters at the heart of the paper live here, just
    as they do in FFS (settable by tunefs without reformatting — the
    "on-disk format remains the same" constraint):

    - [rotdelay_ms]: the inter-block gap the allocator leaves for
      non-clustered operation ("the minimum non-zero value is the
      rotational delay of one block time... typically 4 ms");
    - [maxcontig]: blocks laid out contiguously between gaps —
      re-purposed by the paper as the desired {e cluster} size
      ("previously, when rotdelay was zero, maxcontig had no meaning,
      but now it always indicates cluster size").

    Summary counts ([nbfree] etc.) are mirrored from the cylinder groups
    and checked by fsck. *)

type t = {
  magic : int;
  nfrags : int;  (** total fragments on the device *)
  ncg : int;
  fpg : int;  (** fragments per cylinder group *)
  ipg : int;  (** inodes per cylinder group *)
  minfree_pct : int;  (** reserve kept free (10% in the paper) *)
  mutable rotdelay_ms : int;
  mutable maxcontig : int;
  mutable maxbpg : int;
      (** max blocks a single file may claim in one cylinder group
          before the allocator moves it to another *)
  mutable nbfree : int;  (** free whole blocks, fs-wide *)
  mutable nffree : int;  (** free fragments outside free blocks *)
  mutable nifree : int;
  mutable ndir : int;
  mutable clean : bool;
  mutable jstart : int;
      (** first fragment of the intent-journal region; 0 = no journal *)
  mutable jfrags : int;  (** journal region length in fragments *)
}

val magic_value : int

val create :
  nfrags:int ->
  ncg:int ->
  fpg:int ->
  ipg:int ->
  ?minfree_pct:int ->
  ?rotdelay_ms:int ->
  ?maxcontig:int ->
  ?maxbpg:int ->
  ?jstart:int ->
  ?jfrags:int ->
  unit ->
  t
(** Fresh superblock with zeroed summary counts (mkfs fills them as it
    builds the groups).  Defaults: minfree 10, rotdelay 4 ms, maxcontig
    1, maxbpg 256, no journal. *)

val encode : t -> bytes
(** One [Layout.bsize] block. *)

val decode : bytes -> t
(** Raises [Vfs.Errno.Error EINVAL] on a bad magic number. *)

val data_frags : t -> int
(** Total fragments usable for data (excludes per-group metadata and
    the boot/superblock area). *)

val minfree_frags : t -> int
(** The allocator refuses to go below this many free fragments. *)

val cg_of_frag : t -> int -> int
val cg_of_inum : t -> int -> int
val pp : Format.formatter -> t -> unit
