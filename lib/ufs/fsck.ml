type report = {
  problems : string list;
  nfiles : int;
  ndirs : int;
  nsymlinks : int;
  used_frags : int;
}

let ok r = r.problems = []

let pp ppf r =
  Format.fprintf ppf "fsck: %d files, %d dirs, %d symlinks, %d frags used"
    r.nfiles r.ndirs r.nsymlinks r.used_frags;
  List.iter (fun p -> Format.fprintf ppf "@.  PROBLEM: %s" p) r.problems

type state = {
  st : Disk.Store.t;
  sb : Superblock.t;
  cgs : Cg.t array;
  usage : int array;  (** claims per fragment *)
  problems : string Queue.t;
  mutable nfiles : int;
  mutable ndirs : int;
  mutable nsymlinks : int;
}

let problem s fmt = Format.kasprintf (fun m -> Queue.push m s.problems) fmt

let read_block st ~frag =
  let b = Bytes.create Layout.bsize in
  Disk.Store.read st ~off:(Layout.frag_to_byte frag) ~len:Layout.bsize b 0;
  b

let in_data_area s frag n =
  frag > 0
  && frag + n <= s.sb.Superblock.nfrags
  &&
  let c = Superblock.cg_of_frag s.sb frag in
  c < s.sb.Superblock.ncg
  && frag >= Cg.data_begin s.sb c
  && frag + n <= Cg.cg_end s.sb c

let claim s inum frag n =
  if not (in_data_area s frag n) then
    problem s "inode %d: pointer %d (+%d frags) outside data area" inum frag n
  else
    for i = frag to frag + n - 1 do
      s.usage.(i) <- s.usage.(i) + 1;
      if s.usage.(i) = 2 then problem s "fragment %d multiply claimed" i
    done

let read_dinode s inum =
  let frag, byte = Cg.dinode_loc s.sb inum in
  let blk = read_block s.st ~frag:(frag - (frag mod Layout.fpb)) in
  Dinode.decode blk (((frag mod Layout.fpb) * Layout.fsize) + byte)

(* frags a data block at [lbn] should occupy, mirroring Bmap.block_frags *)
let expected_frags ~lbn ~size =
  if
    size <= Layout.ndaddr * Layout.bsize
    && size > 0
    && lbn = (size - 1) / Layout.bsize
    && size mod Layout.bsize <> 0
  then Layout.frags_of_bytes (size mod Layout.bsize)
  else Layout.fpb

(* Walk one inode's pointers; returns claimed fragment count. *)
let walk_inode s inum (d : Dinode.t) =
  let claimed = ref 0 in
  let data lbn frag =
    if frag <> 0 then begin
      let n = expected_frags ~lbn ~size:d.Dinode.size in
      claim s inum frag n;
      claimed := !claimed + n
    end
  in
  let max_lbn = Layout.blocks_of_size d.Dinode.size in
  for i = 0 to Layout.ndaddr - 1 do
    if d.Dinode.db.(i) <> 0 && i >= max_lbn then
      problem s "inode %d: direct pointer %d beyond size" inum i;
    data i d.Dinode.db.(i)
  done;
  let walk_indirect frag f =
    claim s inum frag Layout.fpb;
    claimed := !claimed + Layout.fpb;
    let b = read_block s.st ~frag in
    for i = 0 to Layout.nindir - 1 do
      f i (Codec.get_u32 b (4 * i))
    done
  in
  if d.Dinode.ib.(0) <> 0 then
    walk_indirect d.Dinode.ib.(0) (fun i p -> data (Layout.ndaddr + i) p);
  if d.Dinode.ib.(1) <> 0 then
    walk_indirect d.Dinode.ib.(1) (fun i p ->
        if p <> 0 then
          walk_indirect p (fun j q ->
              data (Layout.ndaddr + Layout.nindir + (i * Layout.nindir) + j) q));
  if !claimed <> d.Dinode.blocks then
    problem s "inode %d: di_blocks %d but %d fragments claimed" inum
      d.Dinode.blocks !claimed

(* ---------- directory walking ---------- *)

(* read [len] bytes at file offset [off] using the dinode's mapping *)
let file_read s (d : Dinode.t) ~off buf =
  let len = Bytes.length buf in
  let pos = ref 0 in
  while !pos < len do
    let o = off + !pos in
    let lbn = o / Layout.bsize in
    let ptr =
      if lbn < Layout.ndaddr then d.Dinode.db.(lbn)
      else if lbn < Layout.ndaddr + Layout.nindir then
        if d.Dinode.ib.(0) = 0 then 0
        else
          Codec.get_u32
            (read_block s.st ~frag:d.Dinode.ib.(0))
            (4 * (lbn - Layout.ndaddr))
      else 0
    in
    let n = min (len - !pos) (Layout.bsize - (o mod Layout.bsize)) in
    if ptr = 0 then Bytes.fill buf !pos n '\000'
    else
      Disk.Store.read s.st
        ~off:(Layout.frag_to_byte ptr + (o mod Layout.bsize))
        ~len:n buf !pos;
    pos := !pos + n
  done

let dir_entries s (d : Dinode.t) =
  let buf = Bytes.create d.Dinode.size in
  file_read s d ~off:0 buf;
  let entries = ref [] in
  let n = d.Dinode.size / Dir.entry_size in
  for i = 0 to n - 1 do
    let off = i * Dir.entry_size in
    let inum = Codec.get_u32 buf off in
    if inum <> 0 then begin
      let nl = Codec.get_u8 buf (off + 4) in
      let name = Bytes.sub_string buf (off + 5) nl in
      entries := (name, inum) :: !entries
    end
  done;
  List.rev !entries

let check dev =
  let st = Disk.Blkdev.store dev in
  let sb = Superblock.decode (read_block st ~frag:Layout.sb_frag) in
  let cgs =
    Array.init sb.Superblock.ncg (fun c ->
        Cg.decode (read_block st ~frag:(Cg.header_frag sb c)) sb c)
  in
  let s =
    {
      st;
      sb;
      cgs;
      usage = Array.make sb.Superblock.nfrags 0;
      problems = Queue.create ();
      nfiles = 0;
      ndirs = 0;
      nsymlinks = 0;
    }
  in
  if not sb.Superblock.clean then
    problem s "file system was not unmounted cleanly";
  (* the intent-journal region is carved out of the last group's data
     area and permanently allocated: claim it so phase 4 does not see
     "allocated but unclaimed" fragments *)
  if sb.Superblock.jfrags > 0 then
    for f = sb.Superblock.jstart to sb.Superblock.jstart + sb.Superblock.jfrags - 1
    do
      s.usage.(f) <- s.usage.(f) + 1
    done;
  let ninodes = sb.Superblock.ncg * sb.Superblock.ipg in
  (* phase 1: inodes and block pointers *)
  let dinodes = Array.init ninodes (fun i -> read_dinode s i) in
  Array.iteri
    (fun inum (d : Dinode.t) ->
      match d.Dinode.kind with
      | Dinode.Free -> ()
      | Dinode.Reg | Dinode.Dir | Dinode.Lnk ->
          (match d.Dinode.kind with
          | Dinode.Reg -> s.nfiles <- s.nfiles + 1
          | Dinode.Dir -> s.ndirs <- s.ndirs + 1
          | Dinode.Lnk -> s.nsymlinks <- s.nsymlinks + 1
          | Dinode.Free -> ());
          if inum < Types.rootino && inum <> 0 && inum <> 1 then
            problem s "inode %d: reserved inode in use" inum;
          walk_inode s inum d)
    dinodes;
  (* phase 2 + 3: connectivity and link counts *)
  let links = Array.make ninodes 0 in
  let visited = Array.make ninodes false in
  (if dinodes.(Types.rootino).Dinode.kind <> Dinode.Dir then
     problem s "root inode is not a directory"
   else
     let rec walk_dir inum parent =
       if not visited.(inum) then begin
         visited.(inum) <- true;
         let d = dinodes.(inum) in
         if d.Dinode.size mod Dir.entry_size <> 0 then
           problem s "dir %d: size %d not a multiple of entry size" inum
             d.Dinode.size;
         let entries = dir_entries s d in
         let saw_dot = ref false and saw_dotdot = ref false in
         List.iter
           (fun (name, target) ->
             if target >= ninodes then
               problem s "dir %d: entry %s -> bad inode %d" inum name target
             else if dinodes.(target).Dinode.kind = Dinode.Free then
               problem s "dir %d: entry %s -> free inode %d" inum name target
             else begin
               links.(target) <- links.(target) + 1;
               match name with
               | "." ->
                   saw_dot := true;
                   if target <> inum then problem s "dir %d: bad ." inum
               | ".." ->
                   saw_dotdot := true;
                   if target <> parent then problem s "dir %d: bad .." inum
               | _ ->
                   if dinodes.(target).Dinode.kind = Dinode.Dir then
                     walk_dir target inum
             end)
           entries;
         if not !saw_dot then problem s "dir %d: missing ." inum;
         if not !saw_dotdot then problem s "dir %d: missing .." inum
       end
     in
     walk_dir Types.rootino Types.rootino);
  Array.iteri
    (fun inum (d : Dinode.t) ->
      if d.Dinode.kind <> Dinode.Free then begin
        if d.Dinode.kind = Dinode.Dir && not visited.(inum) then
          problem s "dir %d: unreachable from root" inum;
        if links.(inum) = 0 && inum > Types.rootino then
          problem s "inode %d: allocated but not referenced" inum
        else if links.(inum) <> d.Dinode.nlink && inum >= Types.rootino then
          problem s "inode %d: nlink %d but %d references" inum d.Dinode.nlink
            links.(inum)
      end)
    dinodes;
  (* phase 4: fragment bitmaps and counts *)
  Array.iter
    (fun (cg : Cg.t) ->
      let c = cg.Cg.cgx in
      for f = Cg.data_begin sb c to Cg.cg_end sb c - 1 do
        let free = Cg.frag_free cg sb f in
        let used = s.usage.(f) > 0 in
        if used && free then problem s "fragment %d: in use but marked free" f
        else if (not used) && not free then
          problem s "fragment %d: marked allocated but unclaimed" f
      done;
      let nb, nf, ni = Cg.recount cg sb in
      if (nb, nf, ni) <> (cg.Cg.nbfree, cg.Cg.nffree, cg.Cg.nifree) then
        problem s "cg %d: summary counts (%d,%d,%d) != bitmap (%d,%d,%d)" c
          cg.Cg.nbfree cg.Cg.nffree cg.Cg.nifree nb nf ni)
    cgs;
  let tot (f : Cg.t -> int) = Array.fold_left (fun a cg -> a + f cg) 0 cgs in
  if tot (fun cg -> cg.Cg.nbfree) <> sb.Superblock.nbfree then
    problem s "superblock nbfree mismatch";
  if tot (fun cg -> cg.Cg.nffree) <> sb.Superblock.nffree then
    problem s "superblock nffree mismatch";
  if tot (fun cg -> cg.Cg.nifree) <> sb.Superblock.nifree then
    problem s "superblock nifree mismatch";
  (* phase 5: inode bitmaps *)
  Array.iteri
    (fun inum (d : Dinode.t) ->
      let c = Superblock.cg_of_inum sb inum in
      let idx = inum mod sb.Superblock.ipg in
      let bitmap_free = Cg.inode_free cgs.(c) idx in
      let actually_free = d.Dinode.kind = Dinode.Free in
      if bitmap_free && not actually_free then
        problem s "inode %d: in use but bitmap says free" inum
      else if (not bitmap_free) && actually_free && inum > Types.rootino then
        problem s "inode %d: bitmap says allocated but dinode is free" inum)
    dinodes;
  {
    problems = List.of_seq (Queue.to_seq s.problems);
    nfiles = s.nfiles;
    ndirs = s.ndirs;
    nsymlinks = s.nsymlinks;
    used_frags =
      Array.fold_left (fun a u -> if u > 0 then a + 1 else a) 0 s.usage;
  }
