open Types

let entry_size = 64
let max_name = entry_size - 5 - 1 (* u32 inum + u8 len, NUL-free storage *)

let check_name name =
  if name = "" || String.length name > max_name || String.contains name '/'
  then Vfs.Errno.raise_err Vfs.Errno.EINVAL ("bad name: " ^ name)

let read_at fs (ip : inode) ~off ~len ~buf =
  let uio = Vfs.Uio.make ~rw:Vfs.Uio.Read ~off ~len ~buf ~buf_off:0 in
  Rdwr.rdwr fs ip uio;
  len - uio.Vfs.Uio.resid

let write_at fs (ip : inode) ~off ~len ~buf =
  let uio = Vfs.Uio.make ~rw:Vfs.Uio.Write ~off ~len ~buf ~buf_off:0 in
  Rdwr.rdwr fs ip uio;
  assert (uio.Vfs.Uio.resid = 0)

(* Scan entries, returning the offset where [f] says to stop. *)
let scan fs (ip : inode) f =
  if ip.kind <> Dinode.Dir then
    Vfs.Errno.raise_err Vfs.Errno.ENOTDIR (Printf.sprintf "inode %d" ip.inum);
  let buf = Bytes.create Layout.bsize in
  let rec block_loop off =
    if off >= ip.size then None
    else begin
      charge fs ~label:"dir" fs.costs.Costs.dir_op;
      let n = read_at fs ip ~off ~len:(min Layout.bsize (ip.size - off)) ~buf in
      let rec entry_loop eoff =
        if eoff + entry_size > n then None
        else
          let inum = Codec.get_u32 buf eoff in
          let name =
            if inum = 0 then ""
            else
              let len = Codec.get_u8 buf (eoff + 4) in
              Bytes.sub_string buf (eoff + 5) len
          in
          match f ~off:(off + eoff) ~inum ~name with
          | Some r -> Some r
          | None -> entry_loop (eoff + entry_size)
      in
      match entry_loop 0 with Some r -> Some r | None -> block_loop (off + n)
    end
  in
  block_loop 0

let lookup fs ip name =
  check_name name;
  scan fs ip (fun ~off:_ ~inum ~name:n ->
      if inum <> 0 && n = name then Some inum else None)

(* Write one entry at [off] and push it: "a long standing problem with
   UFS is that it does many operations, such as directory updates,
   synchronously.  ...  If there was a way to insure the order of
   critical writes, the file system would be able to do many operations
   asynchronously."  With the B_ORDER feature the push is asynchronous
   but ordered; otherwise it is the classic synchronous write. *)
let write_entry fs (ip : inode) ~off ~inum ~name =
  let buf = Bytes.make entry_size '\000' in
  Codec.put_u32 buf 0 inum;
  Codec.put_u8 buf 4 (String.length name);
  Bytes.blit_string name 0 buf 5 (String.length name);
  write_at fs ip ~off ~len:entry_size ~buf;
  let po = off - (off mod Layout.bsize) in
  if Wal.journaled fs then begin
    (* The dirty page stays in memory until the enclosing operation's
       transaction commits: the slot travels in the log, and the page
       push is deferred to op end (putpage/pageout skip active inodes).
       write_at runs first so a slot landing in a freshly grown block
       has its allocation in the same operation. *)
    Wal.log_dir_entry fs ~dinum:ip.inum ~off ~slot:buf;
    Iops.iupdat fs ip ~sync:true;
    Wal.defer_push fs ip ~off:po
  end
  else begin
    let flags =
      if fs.feat.ordered_metadata then [ Vfs.Vnode.P_ASYNC; Vfs.Vnode.P_ORDER ]
      else [ Vfs.Vnode.P_SYNC ]
    in
    Putpage.putpage fs ip ~off:po ~len:Layout.bsize ~flags;
    Iops.iupdat fs ip ~sync:true
  end

let enter fs ip ~name ~inum =
  check_name name;
  let existing =
    scan fs ip (fun ~off ~inum:i ~name:n ->
        if i <> 0 && n = name then Some (`Exists off)
        else if i = 0 then Some (`Free off)
        else None)
  in
  (* the scan stops at the first free slot OR the name, whichever comes
     first; a name later in the directory must still be caught *)
  let existing =
    match existing with
    | Some (`Free _) as free -> (
        match lookup fs ip name with
        | Some _ -> Some (`Exists 0)
        | None -> free)
    | other -> other
  in
  match existing with
  | Some (`Exists _) -> Vfs.Errno.raise_err Vfs.Errno.EEXIST name
  | Some (`Free off) -> write_entry fs ip ~off ~inum ~name
  | None -> write_entry fs ip ~off:ip.size ~inum ~name

let remove fs ip name =
  check_name name;
  let found =
    scan fs ip (fun ~off ~inum ~name:n ->
        if inum <> 0 && n = name then Some (off, inum) else None)
  in
  match found with
  | None -> Vfs.Errno.raise_err Vfs.Errno.ENOENT name
  | Some (off, inum) ->
      write_entry fs ip ~off ~inum:0 ~name:"";
      inum

let rewrite fs ip ~name ~inum =
  check_name name;
  let found =
    scan fs ip (fun ~off ~inum:i ~name:n ->
        if i <> 0 && n = name then Some off else None)
  in
  match found with
  | None -> Vfs.Errno.raise_err Vfs.Errno.ENOENT name
  | Some off -> write_entry fs ip ~off ~inum ~name

let iter fs ip f =
  ignore
    (scan fs ip (fun ~off:_ ~inum ~name ->
         if inum <> 0 then f name inum;
         (None : unit option)))

let count fs ip =
  let n = ref 0 in
  iter fs ip (fun _ _ -> incr n);
  !n

let is_empty fs ip =
  let extra =
    scan fs ip (fun ~off:_ ~inum ~name ->
        if inum <> 0 && name <> "." && name <> ".." then Some () else None)
  in
  extra = None
