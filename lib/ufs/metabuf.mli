(** Metadata buffer cache.

    Superblock, cylinder-group headers, inode blocks and indirect blocks
    go through this small write-back cache of whole logical blocks —
    the residue of the old "buffer cache" that survives in a page-cache
    world.  Reads miss to the disk synchronously (the caller sleeps);
    dirty blocks are written back on {!sync}, on eviction, or
    synchronously on demand ({!flush_block}).

    A single lock serialises metadata I/O; this is coarser than the
    per-buffer locks of a real kernel but preserves what matters here:
    metadata I/O competes with data I/O in the same disk queue.

    Indirect-block reads through this cache are the "bmap gets more
    expensive for large files" cost the paper's bmap-cache future-work
    item attacks. *)

type stats = {
  mutable reads : int;  (** lookups *)
  mutable read_misses : int;  (** lookups that went to disk *)
  mutable writebacks : int;  (** blocks written to disk *)
}

type t

val create :
  ?capacity:int ->
  Sim.Engine.t ->
  Sim.Cpu.t ->
  Disk.Blkdev.t ->
  Costs.t ->
  t
(** [capacity] (default 64) is in blocks. *)

val set_write_gate : t -> (int -> (unit -> unit) -> bool) option -> unit
(** Interpose on every in-place write-back: [gate frag do_write] either
    runs [do_write] (after whatever ordering work it needs — the
    journalled mount commits its log first) and returns true, or returns
    false to refuse the write, leaving the block dirty in the cache.
    With a gate set, eviction prefers clean victims.  [None] (the
    default) writes back directly. *)

val read : t -> frag:int -> bytes
(** The cached block containing [frag] ([frag] must be block-aligned).
    The returned bytes are the live cache entry: mutate then call
    {!mark_dirty}.  Must run in a process (may sleep on disk I/O). *)

val zero : t -> frag:int -> bytes
(** Enter a zeroed block at [frag] without reading the disk (fresh
    indirect block or fresh inode block) and mark it dirty. *)

val mark_dirty : t -> frag:int -> unit
(** Raises [Invalid_argument] if the block is not resident. *)

val flush_block : t -> frag:int -> unit
(** Synchronously write the block back if resident and dirty. *)

val flush_block_ordered : t -> frag:int -> unit
(** Write the block back {e asynchronously} with the B_ORDER flag set:
    the caller continues immediately, but the disk queue may not reorder
    other requests across this one, so metadata ordering is preserved
    without a synchronous stall.  {!sync} waits for all such writes. *)

val invalidate : t -> frag:int -> unit
(** Drop the block without writing it back — for metadata blocks whose
    backing storage has been freed (a truncated file's indirect blocks).
    Writing such a block later would corrupt whoever reuses the
    fragments. *)

val sync : t -> unit
(** Write back every dirty block, waiting for completion. *)

val drop_clean : t -> unit
(** Evict all clean blocks (tests use this to force re-reads). *)

val stats : t -> stats
