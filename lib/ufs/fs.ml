open Types

type mkfs_options = {
  rotdelay_ms : int;
  maxcontig : int;
  maxbpg : int;
  minfree_pct : int;
  fpg : int;
  ipg : int;
  journal_frags : int;
}

let mkfs_defaults =
  {
    rotdelay_ms = 4;
    maxcontig = 1;
    maxbpg = 256;
    minfree_pct = 10;
    fpg = 16384;
    ipg = 2048;
    journal_frags = 0;
  }

let journal_frags_default = 1024 (* 1 MB *)

(* ---------- mkfs ---------- *)

let store_write_block st ~frag b =
  Disk.Store.write st ~off:(Layout.frag_to_byte frag) ~len:(Bytes.length b) b 0

let mkfs dev ?(opts = mkfs_defaults) () =
  let st = Disk.Blkdev.store dev in
  let nfrags = Disk.Blkdev.capacity_bytes dev / Layout.fsize in
  let min_cg_frags =
    Layout.fpb + (opts.ipg / Layout.inodes_per_block * Layout.fpb) + (8 * Layout.fpb)
  in
  (* drop a trailing group too small to be useful *)
  let nfrags =
    if nfrags mod opts.fpg <> 0 && nfrags mod opts.fpg < min_cg_frags then
      nfrags - (nfrags mod opts.fpg)
    else nfrags
  in
  let ncg = (nfrags + opts.fpg - 1) / opts.fpg in
  let sb =
    Superblock.create ~nfrags ~ncg ~fpg:opts.fpg ~ipg:opts.ipg
      ~minfree_pct:opts.minfree_pct ~rotdelay_ms:opts.rotdelay_ms
      ~maxcontig:opts.maxcontig ~maxbpg:opts.maxbpg ()
  in
  let cgs = Array.init ncg (fun c -> Cg.create_empty sb c) in
  (* free the data areas *)
  Array.iter
    (fun (cg : Cg.t) ->
      let c = cg.Cg.cgx in
      for f = Cg.data_begin sb c to Cg.cg_end sb c - 1 do
        Cg.set_frag cg sb f ~free:true
      done)
    cgs;
  (* intent-journal region: carved from the tail of the last group's
     data area and marked allocated, so no file ever lands there *)
  if opts.journal_frags > 0 then begin
    let last = ncg - 1 in
    let jend = Cg.cg_end sb last in
    let jstart = jend - opts.journal_frags in
    if jstart < Cg.data_begin sb last then
      invalid_arg "mkfs: journal larger than the last group's data area";
    for f = jstart to jend - 1 do
      Cg.set_frag cgs.(last) sb f ~free:false
    done;
    sb.Superblock.jstart <- jstart;
    sb.Superblock.jfrags <- opts.journal_frags;
    Jrnl.format st
      ~off_bytes:(Layout.frag_to_byte jstart)
      ~len_bytes:(opts.journal_frags * Layout.fsize)
  end;
  (* root directory: one fragment of data at the head of cg0 *)
  let root_frag = Cg.data_begin sb 0 in
  Cg.set_frag cgs.(0) sb root_frag ~free:false;
  (* inodes: all free except 0, 1 (reserved) and 2 (root) *)
  Array.iter
    (fun (cg : Cg.t) ->
      for i = 0 to sb.Superblock.ipg - 1 do
        Cg.set_inode cg i ~free:true
      done)
    cgs;
  List.iter (fun i -> Cg.set_inode cgs.(0) i ~free:false) [ 0; 1; rootino ];
  (* summary counts *)
  Array.iter
    (fun (cg : Cg.t) ->
      let nb, nf, ni = Cg.recount cg sb in
      cg.Cg.nbfree <- nb;
      cg.Cg.nffree <- nf;
      cg.Cg.nifree <- ni;
      sb.Superblock.nbfree <- sb.Superblock.nbfree + nb;
      sb.Superblock.nffree <- sb.Superblock.nffree + nf;
      sb.Superblock.nifree <- sb.Superblock.nifree + ni)
    cgs;
  cgs.(0).Cg.ndirs <- 1;
  sb.Superblock.ndir <- 1;
  (* root directory data: "." and ".." *)
  let dirdata = Bytes.make Layout.fsize '\000' in
  let put_entry off inum name =
    Codec.put_u32 dirdata off inum;
    Codec.put_u8 dirdata (off + 4) (String.length name);
    Bytes.blit_string name 0 dirdata (off + 5) (String.length name)
  in
  put_entry 0 rootino ".";
  put_entry Dir.entry_size rootino "..";
  Disk.Store.write st ~off:(Layout.frag_to_byte root_frag) ~len:Layout.fsize
    dirdata 0;
  (* root dinode *)
  let rootd = Dinode.empty () in
  rootd.Dinode.kind <- Dinode.Dir;
  rootd.Dinode.nlink <- 2;
  rootd.Dinode.size <- 2 * Dir.entry_size;
  rootd.Dinode.blocks <- 1;
  rootd.Dinode.db.(0) <- root_frag;
  let iblock = Bytes.make Layout.bsize '\000' in
  Dinode.encode rootd iblock (rootino * Layout.dinode_bytes);
  store_write_block st ~frag:(Cg.inode_area_frag sb 0) iblock;
  (* metadata *)
  Array.iter
    (fun (cg : Cg.t) ->
      cg.Cg.dirty <- false;
      store_write_block st ~frag:(Cg.header_frag sb cg.Cg.cgx) (Cg.encode cg sb))
    cgs;
  store_write_block st ~frag:Layout.sb_frag (Superblock.encode sb)

(* ---------- mount / unmount ---------- *)

let read_store_block st ~frag =
  let b = Bytes.create Layout.bsize in
  Disk.Store.read st ~off:(Layout.frag_to_byte frag) ~len:Layout.bsize b 0;
  b

let register_metrics (fs : fs) reg ~instance =
  Sim.Metrics.register reg ~layer:"ufs" ~instance (fun () ->
      let s = fs.stats in
      Sim.Metrics.
        [
          ("getpage_calls", Int s.getpage_calls);
          ("getpage_hits", Int s.getpage_hits);
          ("pgin_ios", Int s.pgin_ios);
          ("pgin_blocks", Int s.pgin_blocks);
          ("ra_ios", Int s.ra_ios);
          ("ra_blocks", Int s.ra_blocks);
          ("ra_used_blocks", Int s.ra_used_blocks);
          ("ra_streams", Int s.ra_streams);
          ("ra_stream_hits", Int s.ra_stream_hits);
          ("ra_shrinks", Int s.ra_shrinks);
          ("flush_runs", Int s.flush_runs);
          ("putpage_calls", Int s.putpage_calls);
          ("delayed_pages", Int s.delayed_pages);
          ("push_ios", Int s.push_ios);
          ("push_blocks", Int s.push_blocks);
          ("freebehind_pages", Int s.freebehind_pages);
          ("freebehind_suppressed", Int s.freebehind_suppressed);
          ("bmap_calls", Int s.bmap_calls);
          ("bmap_cache_hits", Int s.bmap_cache_hits);
          ("block_allocs", Int s.block_allocs);
          ("frag_allocs", Int s.frag_allocs);
          ("cg_switches", Int s.cg_switches);
          ("wlimit_sleeps", Int s.wlimit_sleeps);
          ("idata_reads", Int s.idata_reads);
          ("read_call_us", Summary s.read_call_us);
          ("write_call_us", Summary s.write_call_us);
          ("pgin_wait_us", Summary s.pgin_wait_us);
          ("read_io_blocks", Hist s.read_io_blocks);
          ("push_io_blocks", Hist s.push_io_blocks);
          ("trace_dropped", Int (Sim.Trace.dropped fs.trace));
        ]);
  Wal.register_metrics fs reg ~instance

let tunefs (fs : fs) ?rotdelay_ms ?maxcontig ?maxbpg () =
  Option.iter (fun v -> fs.sb.Superblock.rotdelay_ms <- v) rotdelay_ms;
  Option.iter (fun v -> fs.sb.Superblock.maxcontig <- v) maxcontig;
  Option.iter (fun v -> fs.sb.Superblock.maxbpg <- v) maxbpg

let flush_groups_and_sb ~timed (fs : fs) =
  let write_block ~frag b =
    if timed then begin
      charge fs ~label:"meta-io"
        (fs.costs.Costs.driver_submit + fs.costs.Costs.intr);
      Disk.Blkdev.write_sync fs.dev
        ~sector:(Layout.frag_to_sector frag)
        ~count:(Layout.bsize / Layout.sector_bytes)
        ~buf:b ~buf_off:0
    end
    else store_write_block (Disk.Blkdev.store fs.dev) ~frag b
  in
  Array.iter
    (fun (cg : Cg.t) ->
      if cg.Cg.dirty then begin
        cg.Cg.dirty <- false;
        write_block ~frag:(Cg.header_frag fs.sb cg.Cg.cgx) (Cg.encode cg fs.sb)
      end)
    fs.cgs;
  write_block ~frag:Layout.sb_frag (Superblock.encode fs.sb)

let sync_inodes (fs : fs) =
  let ips = Hashtbl.fold (fun _ ip acc -> ip :: acc) fs.icache [] in
  List.iter
    (fun ip ->
      Putpage.push_delayed fs ip ~sync:false ();
      Putpage.putpage fs ip ~off:0 ~len:0 ~flags:[ Vfs.Vnode.P_ASYNC ])
    ips;
  List.iter
    (fun ip ->
      Io.wait_writes fs ip;
      if ip.meta_dirty then Iops.iupdat fs ip ~sync:false)
    ips

let sync (fs : fs) =
  if Wal.journaled fs then
    (* checkpoint: quiesce ops, flush every cache, then commit the
       residual transaction, write the summaries and advance the log
       head (invariant W2) *)
    Wal.checkpoint fs
      ~flush:(fun () ->
        sync_inodes fs;
        Metabuf.sync fs.metabuf)
      ~write_meta:(fun () -> flush_groups_and_sb ~timed:true fs)
  else begin
    sync_inodes fs;
    Metabuf.sync fs.metabuf;
    flush_groups_and_sb ~timed:true fs
  end

let unmount (fs : fs) =
  if Wal.journaled fs then
    Wal.checkpoint fs
      ~flush:(fun () ->
        sync_inodes fs;
        Metabuf.sync fs.metabuf)
      ~write_meta:(fun () ->
        Hashtbl.reset fs.resv;
        fs.sb.Superblock.clean <- true;
        flush_groups_and_sb ~timed:true fs)
  else begin
    sync_inodes fs;
    Metabuf.sync fs.metabuf;
    Hashtbl.reset fs.resv;
    fs.sb.Superblock.clean <- true;
    flush_groups_and_sb ~timed:true fs
  end

(* ---------- mount ---------- *)

let mount engine cpu pool dev ~features ?(costs = Costs.default) () =
  let st = Disk.Blkdev.store dev in
  let sb = Superblock.decode (read_store_block st ~frag:Layout.sb_frag) in
  if not sb.Superblock.clean then
    Vfs.Errno.raise_err Vfs.Errno.EINVAL "mount: file system not clean";
  (* mark the on-disk superblock unclean for the duration of the mount,
     as the real UFS does: only a successful unmount clears it, so a
     crash leaves the evidence behind for fsck (or, with a journal, for
     replay) *)
  sb.Superblock.clean <- false;
  store_write_block st ~frag:Layout.sb_frag (Superblock.encode sb);
  let cgs =
    Array.init sb.Superblock.ncg (fun c ->
        Cg.decode (read_store_block st ~frag:(Cg.header_frag sb c)) sb c)
  in
  let wal =
    if sb.Superblock.jfrags > 0 then
      let j =
        Jrnl.attach dev
          ~off_bytes:(Layout.frag_to_byte sb.Superblock.jstart)
          ~len_bytes:(sb.Superblock.jfrags * Layout.fsize)
      in
      Some (Wal.mk engine j)
    else None
  in
  let fs =
    {
      engine;
      cpu;
      dev;
      pool;
      sb;
      cgs;
      feat = features;
      costs;
      metabuf = Metabuf.create engine cpu dev costs;
      icache = Hashtbl.create 512;
      alloc_lock = Sim.Mutex.create engine "ufs-alloc";
      iget_lock = Sim.Mutex.create engine "ufs-iget";
      resv = Hashtbl.create 16;
      stats = mk_stats ();
      trace = Sim.Trace.create ();
      wal;
    }
  in
  (match fs.wal with
  | None -> ()
  | Some w ->
      Metabuf.set_write_gate fs.metabuf (Some (Wal.write_gate fs));
      w.w_push <-
        (fun ip off ->
          Putpage.push_range fs ip ~off ~len:Layout.bsize ~free_after:false
            ~throttle:false ());
      (* low log space: checkpoint asynchronously — the committing
         process may hold locks the checkpoint's flush phase needs *)
      let kicking = ref false in
      w.w_kick <-
        (fun () ->
          if not !kicking then begin
            kicking := true;
            Sim.Engine.spawn engine ~name:"wal-checkpoint" (fun () ->
                Fun.protect
                  ~finally:(fun () -> kicking := false)
                  (fun () -> sync fs))
          end));
  fs

(* ---------- namespace ---------- *)

let split_path path =
  if path = "" || path.[0] <> '/' then
    Vfs.Errno.raise_err Vfs.Errno.EINVAL ("path must be absolute: " ^ path);
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

(* Walk [parts] from the root; returns a referenced inode. *)
let rec walk fs (ip : inode) parts =
  match parts with
  | [] -> ip
  | name :: rest -> (
      if ip.kind <> Dinode.Dir then begin
        Iops.iput fs ip;
        Vfs.Errno.raise_err Vfs.Errno.ENOTDIR name
      end;
      match Dir.lookup fs ip name with
      | None ->
          Iops.iput fs ip;
          Vfs.Errno.raise_err Vfs.Errno.ENOENT name
      | Some inum ->
          let next = Iops.iget fs inum in
          Iops.iput fs ip;
          walk fs next rest)

let namei fs path = walk fs (Iops.iget fs rootino) (split_path path)

(* Name-space updates in a directory must be atomic with respect to the
   slot scan inside Dir.enter: concurrent creates in one directory would
   otherwise pick the same free slot while one of them sleeps on disk
   I/O.  Composite operations therefore hold the parent's dlock. *)
let with_dir_locked (dir : inode) f = Sim.Mutex.with_lock dir.dlock f

let with_two_dirs_locked (a : inode) (b : inode) f =
  if a.inum = b.inum then with_dir_locked a f
  else
    let first, second = if a.inum < b.inum then (a, b) else (b, a) in
    Sim.Mutex.with_lock first.dlock (fun () ->
        Sim.Mutex.with_lock second.dlock f)

(* Parent directory (referenced) and final component. *)
let lookup_parent fs path =
  match List.rev (split_path path) with
  | [] -> Vfs.Errno.raise_err Vfs.Errno.EINVAL "path is the root"
  | name :: rev_parents ->
      let dir = walk fs (Iops.iget fs rootino) (List.rev rev_parents) in
      if dir.kind <> Dinode.Dir then begin
        Iops.iput fs dir;
        Vfs.Errno.raise_err Vfs.Errno.ENOTDIR path
      end;
      (dir, name)

let creat fs path =
  let dir, name = lookup_parent fs path in
  with_dir_locked dir (fun () ->
  match Dir.lookup fs dir name with
  | Some inum ->
      Iops.iput fs dir;
      let ip = Iops.iget fs inum in
      if ip.kind = Dinode.Dir then begin
        Iops.iput fs ip;
        Vfs.Errno.raise_err Vfs.Errno.EISDIR path
      end;
      Wal.with_op fs (fun () -> Iops.itrunc fs ip);
      ip
  | None ->
      Wal.with_op fs (fun () ->
          let ip = Iops.iget_new fs ~dir_hint:dir.inum ~kind:Dinode.Reg in
          ip.nlink <- 1;
          Dir.enter fs dir ~name ~inum:ip.inum;
          Iops.iupdat fs ip ~sync:true;
          Iops.iput fs dir;
          ip))

let mkdir fs path =
  let dir, name = lookup_parent fs path in
  with_dir_locked dir (fun () ->
  (match Dir.lookup fs dir name with
  | Some _ ->
      Iops.iput fs dir;
      Vfs.Errno.raise_err Vfs.Errno.EEXIST path
  | None -> ());
  Wal.with_op fs (fun () ->
      let ip = Iops.iget_new fs ~dir_hint:dir.inum ~kind:Dinode.Dir in
      ip.nlink <- 2;
      Dir.enter fs ip ~name:"." ~inum:ip.inum;
      Dir.enter fs ip ~name:".." ~inum:dir.inum;
      Dir.enter fs dir ~name ~inum:ip.inum;
      dir.nlink <- dir.nlink + 1;
      Iops.iupdat fs dir ~sync:true;
      Iops.iupdat fs ip ~sync:true;
      Iops.iput fs ip;
      Iops.iput fs dir))

let unlink fs path =
  let dir, name = lookup_parent fs path in
  with_dir_locked dir (fun () ->
  (match Dir.lookup fs dir name with
  | None ->
      Iops.iput fs dir;
      Vfs.Errno.raise_err Vfs.Errno.ENOENT path
  | Some inum ->
      let ip = Iops.iget fs inum in
      if ip.kind = Dinode.Dir then begin
        Iops.iput fs ip;
        Iops.iput fs dir;
        Vfs.Errno.raise_err Vfs.Errno.EISDIR path
      end;
      Wal.with_op fs (fun () ->
          ignore (Dir.remove fs dir name);
          ip.nlink <- ip.nlink - 1;
          Iops.iupdat fs ip ~sync:true;
          Iops.iput fs ip));
  Iops.iput fs dir)

let rmdir fs path =
  let dir, name = lookup_parent fs path in
  with_dir_locked dir (fun () ->
  match Dir.lookup fs dir name with
  | None ->
      Iops.iput fs dir;
      Vfs.Errno.raise_err Vfs.Errno.ENOENT path
  | Some inum ->
      let ip = Iops.iget fs inum in
      if ip.kind <> Dinode.Dir then begin
        Iops.iput fs ip;
        Iops.iput fs dir;
        Vfs.Errno.raise_err Vfs.Errno.ENOTDIR path
      end;
      if not (Dir.is_empty fs ip) then begin
        Iops.iput fs ip;
        Iops.iput fs dir;
        Vfs.Errno.raise_err Vfs.Errno.ENOTEMPTY path
      end;
      Wal.with_op fs (fun () ->
          ignore (Dir.remove fs dir name);
          dir.nlink <- dir.nlink - 1;
          Iops.iupdat fs dir ~sync:true;
          ip.nlink <- 0;
          let c = Superblock.cg_of_inum fs.sb ip.inum in
          fs.cgs.(c).Cg.ndirs <- fs.cgs.(c).Cg.ndirs - 1;
          fs.sb.Superblock.ndir <- fs.sb.Superblock.ndir - 1;
          if Wal.journaled fs then begin
            (* recovery recounts touched groups but preserves ndirs, so
               the decrement needs its own record (inode-free records
               say nothing about directory-ness) *)
            fs.cgs.(c).Cg.dirty <- true;
            Wal.log_cg_ndirs fs ~cgx:c ~value:fs.cgs.(c).Cg.ndirs
          end;
          Iops.iput fs ip;
          Iops.iput fs dir))

let link fs existing new_path =
  let ip = namei fs existing in
  if ip.kind = Dinode.Dir then begin
    Iops.iput fs ip;
    Vfs.Errno.raise_err Vfs.Errno.EISDIR existing
  end;
  let dir, name = lookup_parent fs new_path in
  with_dir_locked dir (fun () ->
      (match Dir.lookup fs dir name with
      | Some _ ->
          Iops.iput fs dir;
          Iops.iput fs ip;
          Vfs.Errno.raise_err Vfs.Errno.EEXIST new_path
      | None -> ());
      Wal.with_op fs (fun () ->
          Dir.enter fs dir ~name ~inum:ip.inum;
          ip.nlink <- ip.nlink + 1;
          Iops.iupdat fs ip ~sync:true;
          Iops.iput fs dir;
          Iops.iput fs ip))

let rename fs src dst =
  let sdir, sname = lookup_parent fs src in
  let inum =
    match Dir.lookup fs sdir sname with
    | Some i -> i
    | None ->
        Iops.iput fs sdir;
        Vfs.Errno.raise_err Vfs.Errno.ENOENT src
  in
  let ip = Iops.iget fs inum in
  let ddir, dname = lookup_parent fs dst in
  with_two_dirs_locked sdir ddir (fun () ->
  Wal.with_op fs @@ fun () ->
  (* replace an existing target *)
  (match Dir.lookup fs ddir dname with
  | Some tgt_inum when tgt_inum <> inum ->
      let tgt = Iops.iget fs tgt_inum in
      if tgt.kind = Dinode.Dir then begin
        if not (Dir.is_empty fs tgt) then begin
          Iops.iput fs tgt;
          Iops.iput fs ddir;
          Iops.iput fs sdir;
          Iops.iput fs ip;
          Vfs.Errno.raise_err Vfs.Errno.ENOTEMPTY dst
        end;
        ddir.nlink <- ddir.nlink - 1;
        tgt.nlink <- 0
      end
      else tgt.nlink <- tgt.nlink - 1;
      ignore (Dir.remove fs ddir dname);
      Iops.iupdat fs tgt ~sync:true;
      Iops.iput fs tgt
  | Some _ | None -> ());
  ignore (Dir.remove fs sdir sname);
  (match Dir.lookup fs ddir dname with
  | Some _ -> Dir.rewrite fs ddir ~name:dname ~inum
  | None -> Dir.enter fs ddir ~name:dname ~inum);
  if ip.kind = Dinode.Dir && sdir.inum <> ddir.inum then begin
    Dir.rewrite fs ip ~name:".." ~inum:ddir.inum;
    sdir.nlink <- sdir.nlink - 1;
    ddir.nlink <- ddir.nlink + 1;
    Iops.iupdat fs sdir ~sync:true;
    Iops.iupdat fs ddir ~sync:true
  end;
  Iops.iput fs ddir;
  Iops.iput fs sdir;
  Iops.iput fs ip)

let symlink fs ~target ~path =
  let dir, name = lookup_parent fs path in
  with_dir_locked dir (fun () ->
  (match Dir.lookup fs dir name with
  | Some _ ->
      Iops.iput fs dir;
      Vfs.Errno.raise_err Vfs.Errno.EEXIST path
  | None -> ());
  Wal.with_op fs @@ fun () ->
  let ip = Iops.iget_new fs ~dir_hint:dir.inum ~kind:Dinode.Lnk in
  ip.nlink <- 1;
  if String.length target <= Dinode.immediate_capacity then begin
    (* fast symlink: the target lives in the inode itself *)
    ip.immediate <- target;
    ip.size <- String.length target
  end
  else begin
    let buf = Bytes.of_string target in
    let uio =
      Vfs.Uio.make ~rw:Vfs.Uio.Write ~off:0 ~len:(Bytes.length buf) ~buf
        ~buf_off:0
    in
    Rdwr.rdwr fs ip uio
  end;
  Dir.enter fs dir ~name ~inum:ip.inum;
  Iops.iupdat fs ip ~sync:true;
  Iops.iput fs ip;
  Iops.iput fs dir)

let readlink fs path =
  let ip = namei fs path in
  if ip.kind <> Dinode.Lnk then begin
    Iops.iput fs ip;
    Vfs.Errno.raise_err Vfs.Errno.EINVAL (path ^ ": not a symlink")
  end;
  let r =
    if ip.immediate <> "" then ip.immediate
    else begin
      let buf = Bytes.create ip.size in
      let uio =
        Vfs.Uio.make ~rw:Vfs.Uio.Read ~off:0 ~len:ip.size ~buf ~buf_off:0
      in
      Rdwr.rdwr fs ip uio;
      Bytes.to_string buf
    end
  in
  Iops.iput fs ip;
  r

type stat = {
  st_ino : int;
  st_kind : Dinode.kind;
  st_size : int;
  st_blocks : int;
  st_nlink : int;
}

let stat fs path =
  let ip = namei fs path in
  let r =
    {
      st_ino = ip.inum;
      st_kind = ip.kind;
      st_size = ip.size;
      st_blocks = ip.blocks;
      st_nlink = ip.nlink;
    }
  in
  Iops.iput fs ip;
  r

type statfs = {
  f_frags : int;
  f_bfree : int;
  f_ffree : int;
  f_ifree : int;
  f_reserved : int;
}

let statfs (fs : fs) =
  {
    f_frags = Superblock.data_frags fs.sb;
    f_bfree = fs.sb.Superblock.nbfree;
    f_ffree = fs.sb.Superblock.nffree;
    f_ifree = fs.sb.Superblock.nifree;
    f_reserved = Superblock.minfree_frags fs.sb;
  }

(* ---------- file I/O ---------- *)

let read fs ip ~off ~buf ~len =
  let uio = Vfs.Uio.make ~rw:Vfs.Uio.Read ~off ~len ~buf ~buf_off:0 in
  Rdwr.rdwr fs ip uio;
  len - uio.Vfs.Uio.resid

let write fs ip ~off ~buf ~len =
  let uio = Vfs.Uio.make ~rw:Vfs.Uio.Write ~off ~len ~buf ~buf_off:0 in
  Rdwr.rdwr fs ip uio

let fsync fs ip = Iops.fsync_inode fs ip

let extent_map fs path =
  let ip = namei fs path in
  let m = Bmap.extent_map fs ip in
  Iops.iput fs ip;
  m
