open Types

let small_file_limit = 2048

(* "at a large enough offset": past the first couple of clusters, so
   the start of the file keeps its cache warmth *)
let free_behind_threshold fs = 2 * max (cluster_bytes fs) Layout.bsize

(* "free memory is close to the low water mark that turns on the pager" *)
let memory_pressure fs =
  Vm.Pool.freecnt fs.pool
  <= 2 * (Vm.Pool.param fs.pool).Vm.Param.lotsfree

(* [seq] is the stream's sequentiality as observed BEFORE getpage ran
   for this access: getpage's after_access unconditionally sets
   [nextr <- po + bsize], so testing nextr here would be vacuously true
   for every access — including random ones, which is exactly the bug
   that made free-behind evict a random reader's cache under memory
   pressure. *)
let maybe_free_behind fs (ip : inode) ~po ~seq =
  if
    fs.feat.free_behind
    && po >= free_behind_threshold fs
    && memory_pressure fs
  then
    if seq then begin
      fs.stats.freebehind_pages <- fs.stats.freebehind_pages + 1;
      Sim.Trace.emit fs.trace (fun () -> Ev_free_behind { off = po });
      charge fs ~label:"freebehind" fs.costs.Costs.freebehind;
      Putpage.putpage fs ip ~off:po ~len:Layout.bsize ~flags:[ Vfs.Vnode.P_FREE ]
    end
    else
      fs.stats.freebehind_suppressed <- fs.stats.freebehind_suppressed + 1

(* ---------- small-file fast path ---------- *)

let load_idata fs (ip : inode) =
  match ip.idata with
  | Some d -> d
  | None ->
      let d = Bytes.make small_file_limit '\000' in
      if ip.size > 0 then begin
        let frag_opt, _ = Bmap.read fs ip ~lbn:0 in
        match frag_opt with
        | Some frag ->
            charge fs ~label:"driver"
              (fs.costs.Costs.driver_submit + fs.costs.Costs.intr);
            let nfrags = Layout.frags_of_bytes ip.size in
            let buf = Bytes.create (nfrags * Layout.fsize) in
            Disk.Blkdev.read_sync fs.dev
              ~sector:(Layout.frag_to_sector frag)
              ~count:(nfrags * Layout.sectors_per_frag)
              ~buf ~buf_off:0;
            Bytes.blit buf 0 d 0 (min ip.size (Bytes.length buf))
        | None -> ()
      end;
      ip.idata <- Some d;
      d

let read_from_inode fs (ip : inode) (uio : Vfs.Uio.t) =
  let d = load_idata fs ip in
  fs.stats.idata_reads <- fs.stats.idata_reads + 1;
  let n = min uio.Vfs.Uio.resid (max 0 (ip.size - uio.Vfs.Uio.off)) in
  if n > 0 then begin
    charge fs ~label:"copy" (Costs.copy_cost fs.costs ~bytes:n);
    let data_off = uio.Vfs.Uio.off in
    Vfs.Uio.move uio ~src_or_dst:d ~data_off ~n
  end

(* ---------- read ---------- *)

let do_read fs (ip : inode) (uio : Vfs.Uio.t) =
  let hint = if fs.feat.getpage_hint then uio.Vfs.Uio.resid else 0 in
  if
    fs.feat.small_in_inode && ip.kind = Dinode.Reg
    && ip.size <= small_file_limit
    && ip.size > 0
    (* coherence: dirty/cached pages are newer than the disk copy the
       inode cache would load — fall back to the page path then *)
    && Vm.Pool.pages_of_vnode fs.pool ip.inum = []
  then read_from_inode fs ip uio
  else begin
    let continue = ref true in
    while !continue && uio.Vfs.Uio.resid > 0 && uio.Vfs.Uio.off < ip.size do
      let off = uio.Vfs.Uio.off in
      let po = off - Layout.blk_off off in
      let n =
        min uio.Vfs.Uio.resid
          (min (Layout.bsize - (off - po)) (ip.size - off))
      in
      if n <= 0 then continue := false
      else begin
        (* sequential read mode, judged before getpage moves the stream
           windows: the access either starts a block some window
           predicted, or continues inside a block whose start matched *)
        let seq = Rstream.peek_seq ip ~po ~off in
        charge fs ~label:"rdwr" fs.costs.Costs.map_block;
        (match Getpage.getpage fs ip ~off:po ~len:Layout.bsize ~hint with
        | [ p ] ->
            charge fs ~label:"rdwr" fs.costs.Costs.fault;
            charge fs ~label:"copy" (Costs.copy_cost fs.costs ~bytes:n);
            Vfs.Uio.move uio ~src_or_dst:p.Vm.Page.data ~data_off:(off - po) ~n;
            Vm.Page.set_referenced p true
        | _ -> assert false);
        (* unmap: free-behind fires once we leave the page *)
        if off + n >= po + Layout.bsize || uio.Vfs.Uio.off >= ip.size then
          maybe_free_behind fs ip ~po ~seq
      end
    done
  end

(* ---------- write ---------- *)

(* Find (or create, zero-filled) the cache page at [po] without doing
   any disk read — for full-block overwrites and fresh blocks. *)
let rec grab_page fs (ip : inode) po =
  match Vm.Pool.lookup fs.pool (Io.ident ip po) with
  | Some p when p.Vm.Page.busy ->
      Vm.Page.wait_unbusy fs.engine p;
      grab_page fs ip po
  | Some p when p.Vm.Page.valid ->
      Io.consume_prefetch fs p;
      p
  | Some _ | None -> (
      match Vm.Pool.alloc fs.pool (Io.ident ip po) with
      | `Fresh p ->
          charge fs ~label:"getpage" fs.costs.Costs.page_setup;
          Bytes.fill p.Vm.Page.data 0 Layout.bsize '\000';
          Vm.Page.set_valid p true;
          Vm.Page.unbusy p;
          p
      | `Existing _ -> grab_page fs ip po)

let do_write fs (ip : inode) (uio : Vfs.Uio.t) =
  ip.idata <- None;
  while uio.Vfs.Uio.resid > 0 do
    let off = uio.Vfs.Uio.off in
    let po = off - Layout.blk_off off in
    let n = min uio.Vfs.Uio.resid (Layout.bsize - (off - po)) in
    let new_size = max ip.size (off + n) in
    let old_size = ip.size in
    let lbn = po / Layout.bsize in
    (* whether this block was allocated BEFORE this write decides the
       page-in: a fresh block (including one filling a hole) must start
       as zeros — its fragments may hold another file's freed data *)
    let existed =
      match Bmap.read fs ip ~lbn with
      | Some _, _ -> true
      | None, _ -> false
    in
    (* when extending, an old fragment-allocated tail must grow first —
       unless this write lands on that very block, in which case the
       Bmap.ensure below performs the growth itself.  The page is paged
       in BEFORE the growth (so only the old, valid fragments are read),
       then zero-extended and dirtied: the fragments the block gains may
       hold another file's freed data on disk, and the page cache must
       shadow them until the full block is written back *)
    (if new_size > old_size && old_size > 0 then
       let old_tail_lbn = (old_size - 1) / Layout.bsize in
       if
         lbn <> old_tail_lbn
         && Bmap.block_frags ip ~lbn:old_tail_lbn ~size:old_size < Layout.fpb
       then begin
         let tpo = old_tail_lbn * Layout.bsize in
         let tpage =
           match Getpage.getpage fs ip ~off:tpo ~len:Layout.bsize ~hint:0 with
           | [ p ] -> p
           | _ -> assert false
         in
         Bmap.grow_old_tail fs ip ~new_size;
         let cut = old_size - tpo in
         Bytes.fill tpage.Vm.Page.data cut (Layout.bsize - cut) '\000';
         Vm.Page.set_dirty tpage true
       end);
    ignore (Bmap.ensure fs ip ~lbn ~new_size);
    let full_overwrite = off = po && n = Layout.bsize in
    let page =
      if
        existed && (not full_overwrite)
        && Vm.Pool.lookup fs.pool (Io.ident ip po) = None
      then begin
        match Getpage.getpage fs ip ~off:po ~len:Layout.bsize ~hint:0 with
        | [ p ] -> p
        | _ -> assert false
      end
      else grab_page fs ip po
    in
    (* if the old EOF fell inside this block, the bytes past it are
       logically zero but the paged-in fragments may carry stale data *)
    (if old_size > po && old_size < po + Layout.bsize then
       let cut = old_size - po in
       Bytes.fill page.Vm.Page.data cut (Layout.bsize - cut) '\000');
    charge fs ~label:"rdwr" fs.costs.Costs.map_block;
    charge fs ~label:"rdwr" fs.costs.Costs.fault;
    charge fs ~label:"copy" (Costs.copy_cost fs.costs ~bytes:n);
    Vfs.Uio.move uio ~src_or_dst:page.Vm.Page.data ~data_off:(off - po) ~n;
    Vm.Page.set_dirty page true;
    Vm.Page.set_referenced page true;
    if new_size > ip.size then begin
      ip.size <- new_size;
      ip.meta_dirty <- true
    end;
    Putpage.putpage fs ip ~off:po ~len:Layout.bsize ~flags:[ Vfs.Vnode.P_DELAY ]
  done

let rdwr_body fs (ip : inode) (uio : Vfs.Uio.t) =
  charge fs ~label:"syscall" fs.costs.Costs.syscall;
  let t0 = Sim.Engine.now fs.engine in
  Sim.Mutex.with_lock ip.ilock (fun () ->
      match uio.Vfs.Uio.rw with
      | Vfs.Uio.Read -> do_read fs ip uio
      | Vfs.Uio.Write -> do_write fs ip uio);
  let dt = float_of_int (Sim.Engine.now fs.engine - t0) in
  match uio.Vfs.Uio.rw with
  | Vfs.Uio.Read -> Sim.Stats.Summary.add fs.stats.read_call_us dt
  | Vfs.Uio.Write -> Sim.Stats.Summary.add fs.stats.write_call_us dt

let rdwr fs (ip : inode) (uio : Vfs.Uio.t) =
  let name =
    match uio.Vfs.Uio.rw with
    | Vfs.Uio.Read -> "ufs.read"
    | Vfs.Uio.Write -> "ufs.write"
  in
  Sim.Span.span ~name
    ~attrs:
      [
        ("ino", Sim.Span.I ip.inum);
        ("off", Sim.Span.I uio.Vfs.Uio.off);
        ("len", Sim.Span.I uio.Vfs.Uio.resid);
      ]
    (fun () -> rdwr_body fs ip uio)
