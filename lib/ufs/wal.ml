open Types

let journaled (fs : fs) = fs.wal <> None

(* ---------- record codec ---------- *)

type record =
  | Frag_alloc of { frag : int; n : int }
  | Frag_free of { frag : int; n : int }
  | Inode_alloc of { inum : int; dir : bool }
  | Inode_free of { inum : int }
  | Inode_update of { inum : int; image : bytes }
  | Ind_set of { frag : int; index : int; value : int }
  | Ind_zero of { frag : int }
  | Dir_entry of { dinum : int; off : int; slot : bytes }
  | Cg_ndirs of { cgx : int; value : int }

let dir_entry_size = 64 (* = Dir.entry_size; Dir sits above this module *)

let tag_frag_alloc = 1
let tag_frag_free = 2
let tag_inode_alloc = 3
let tag_inode_free = 4
let tag_inode_update = 5
let tag_ind_set = 6
let tag_ind_zero = 7
let tag_dir_entry = 8
let tag_cg_ndirs = 9

let enc_frag_run tag ~frag ~n =
  let b = Bytes.make 6 '\000' in
  Codec.put_u8 b 0 tag;
  Codec.put_u32 b 1 frag;
  Codec.put_u8 b 5 n;
  b

let enc_inode_alloc ~inum ~dir =
  let b = Bytes.make 6 '\000' in
  Codec.put_u8 b 0 tag_inode_alloc;
  Codec.put_u32 b 1 inum;
  Codec.put_u8 b 5 (if dir then 1 else 0);
  b

let enc_inode_free ~inum =
  let b = Bytes.make 5 '\000' in
  Codec.put_u8 b 0 tag_inode_free;
  Codec.put_u32 b 1 inum;
  b

let enc_inode_update ~inum ~image =
  if Bytes.length image <> Layout.dinode_bytes then
    invalid_arg "Wal: bad inode image";
  let b = Bytes.make (5 + Layout.dinode_bytes) '\000' in
  Codec.put_u8 b 0 tag_inode_update;
  Codec.put_u32 b 1 inum;
  Bytes.blit image 0 b 5 Layout.dinode_bytes;
  b

let enc_ind_set ~frag ~index ~value =
  let b = Bytes.make 13 '\000' in
  Codec.put_u8 b 0 tag_ind_set;
  Codec.put_u32 b 1 frag;
  Codec.put_u32 b 5 index;
  Codec.put_u32 b 9 value;
  b

let enc_ind_zero ~frag =
  let b = Bytes.make 5 '\000' in
  Codec.put_u8 b 0 tag_ind_zero;
  Codec.put_u32 b 1 frag;
  b

let enc_dir_entry ~dinum ~off ~slot =
  if Bytes.length slot <> dir_entry_size then
    invalid_arg "Wal: bad directory slot";
  let b = Bytes.make (13 + dir_entry_size) '\000' in
  Codec.put_u8 b 0 tag_dir_entry;
  Codec.put_u32 b 1 dinum;
  Codec.put_u64 b 5 off;
  Bytes.blit slot 0 b 13 dir_entry_size;
  b

let enc_cg_ndirs ~cgx ~value =
  let b = Bytes.make 9 '\000' in
  Codec.put_u8 b 0 tag_cg_ndirs;
  Codec.put_u32 b 1 cgx;
  Codec.put_u32 b 5 value;
  b

let decode_record b =
  let tag = Codec.get_u8 b 0 in
  if tag = tag_frag_alloc then
    Frag_alloc { frag = Codec.get_u32 b 1; n = Codec.get_u8 b 5 }
  else if tag = tag_frag_free then
    Frag_free { frag = Codec.get_u32 b 1; n = Codec.get_u8 b 5 }
  else if tag = tag_inode_alloc then
    Inode_alloc { inum = Codec.get_u32 b 1; dir = Codec.get_u8 b 5 = 1 }
  else if tag = tag_inode_free then Inode_free { inum = Codec.get_u32 b 1 }
  else if tag = tag_inode_update then
    Inode_update
      { inum = Codec.get_u32 b 1; image = Bytes.sub b 5 Layout.dinode_bytes }
  else if tag = tag_ind_set then
    Ind_set
      {
        frag = Codec.get_u32 b 1;
        index = Codec.get_u32 b 5;
        value = Codec.get_u32 b 9;
      }
  else if tag = tag_ind_zero then Ind_zero { frag = Codec.get_u32 b 1 }
  else if tag = tag_dir_entry then
    Dir_entry
      {
        dinum = Codec.get_u32 b 1;
        off = Codec.get_u64 b 5;
        slot = Bytes.sub b 13 dir_entry_size;
      }
  else if tag = tag_cg_ndirs then
    Cg_ndirs { cgx = Codec.get_u32 b 1; value = Codec.get_u32 b 5 }
  else failwith (Printf.sprintf "Wal: unknown record tag %d" tag)

(* ---------- state helpers ---------- *)

let ref_tbl tbl key =
  Hashtbl.replace tbl key
    (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

let unref_tbl tbl key =
  match Hashtbl.find_opt tbl key with
  | Some 1 -> Hashtbl.remove tbl key
  | Some n -> Hashtbl.replace tbl key (n - 1)
  | None -> ()

let mk engine j =
  {
    wj = j;
    w_lock = Sim.Mutex.create engine "wal-commit";
    w_ckpt_lock = Sim.Mutex.create engine "wal-ckpt";
    w_ops = Hashtbl.create 8;
    w_next_op = 1;
    w_pinned = Hashtbl.create 16;
    w_txn_pins = [];
    w_unstable = Hashtbl.create 16;
    w_active = Hashtbl.create 16;
    w_idle = Sim.Condition.create engine "wal-idle";
    w_stalled = false;
    w_resume = Sim.Condition.create engine "wal-resume";
    w_kick = (fun () -> ());
    w_push = (fun _ _ -> ());
    w_txns = 0;
    w_barrier_commits = 0;
    w_pin_commits = 0;
    w_ckpt_waits = 0;
    w_stall_commits = 0;
  }

let current_op (w : wal) =
  match Sim.Fls.get () with
  | Some id -> Hashtbl.find_opt w.w_ops id
  | None -> None

let in_op (fs : fs) =
  match fs.wal with None -> false | Some w -> current_op w <> None

(* ---------- commit ---------- *)

(* When the log runs low, ask the mount layer for an asynchronous
   checkpoint; committing threads cannot run one inline (they may hold
   locks the checkpoint's flush phase needs). *)
let maybe_kick (w : wal) =
  if Jrnl.free_bytes w.wj < Jrnl.capacity_bytes w.wj / 4 then w.w_kick ()

(* The commit core, not subject to the checkpoint quiesce: used by
   operation ends (the quiesce is *waiting* for those) and internal
   paths.  Pin release pairs with the record snapshot: records appended
   while the commit write is in flight belong to the next transaction,
   and so do their pins. *)
let commit_locked (w : wal) =
  let pins = w.w_txn_pins in
  w.w_txn_pins <- [];
  if Jrnl.pending w.wj then begin
    Jrnl.commit w.wj;
    w.w_txns <- w.w_txns + 1
  end;
  List.iter (fun f -> unref_tbl w.w_pinned f) pins

let commit_internal (w : wal) =
  if Jrnl.pending w.wj || w.w_txn_pins <> [] then begin
    Sim.Mutex.with_lock w.w_lock (fun () -> commit_locked w);
    maybe_kick w
  end

(* Public commit (fsync, sync): waits out a checkpoint quiesce first —
   committing between the checkpoint's cache flush and its head advance
   would let the head pass an entry whose in-place effects are only in
   memory. *)
let commit (fs : fs) =
  match fs.wal with
  | None -> ()
  | Some w ->
      if w.w_stalled then begin
        w.w_stall_commits <- w.w_stall_commits + 1;
        while w.w_stalled do
          Sim.Condition.wait w.w_resume
        done
      end;
      commit_internal w

(* ---------- operations ---------- *)

let op_end (w : wal) (op : wal_op) ~commit:do_commit =
  (* Move the op's records and the final images of its inodes into the
     open transaction.  Pure memory: the engine cannot preempt, so no
     commit can observe half of this operation. *)
  List.iter (fun r -> Jrnl.append w.wj r) (List.rev op.op_recs);
  List.iter
    (fun (inum, ip) ->
      let img = Bytes.create Layout.dinode_bytes in
      Dinode.encode (to_dinode ip) img 0;
      Jrnl.append w.wj (enc_inode_update ~inum ~image:img))
    (List.rev op.op_inodes);
  w.w_txn_pins <- op.op_pins @ w.w_txn_pins;
  (* Commit while the op still counts as open: a concurrent checkpoint
     must not advance the head past this entry before the flush phase
     that would write its in-place effects. *)
  if do_commit then commit_internal w;
  Hashtbl.remove w.w_ops op.op_id;
  List.iter (fun f -> unref_tbl w.w_unstable f) op.op_meta;
  List.iter (fun (inum, _) -> unref_tbl w.w_active inum) op.op_inodes;
  if Hashtbl.length w.w_ops = 0 then Sim.Condition.broadcast w.w_idle;
  (* records durable: the op's directory pages may now hit the disk *)
  if do_commit then
    List.iter (fun (ip, off) -> w.w_push ip off) (List.rev op.op_pushes)

let with_op (fs : fs) ?(commit = true) f =
  match fs.wal with
  | None -> f ()
  | Some w -> (
      match current_op w with
      | Some _ -> f () (* nested: the outer operation owns the commit *)
      | None ->
          if w.w_stalled then begin
            w.w_ckpt_waits <- w.w_ckpt_waits + 1;
            while w.w_stalled do
              Sim.Condition.wait w.w_resume
            done
          end;
          let id = w.w_next_op in
          w.w_next_op <- id + 1;
          let op =
            {
              op_id = id;
              op_recs = [];
              op_inodes = [];
              op_pins = [];
              op_meta = [];
              op_pushes = [];
            }
          in
          Hashtbl.replace w.w_ops id op;
          Sim.Fls.with_value id (fun () ->
              match f () with
              | v ->
                  op_end w op ~commit;
                  v
              | exception e ->
                  (* the op may have mutated metadata before failing
                     (ENOSPC mid-write): log what actually happened so
                     the journal stays consistent with memory *)
                  op_end w op ~commit;
                  raise e))

(* ---------- logging ---------- *)

let log (fs : fs) r =
  match fs.wal with
  | None -> ()
  | Some w -> (
      match current_op w with
      | Some op -> op.op_recs <- r :: op.op_recs
      | None -> Jrnl.append w.wj r)

let log_frag_alloc fs ~frag ~n =
  if journaled fs then log fs (enc_frag_run tag_frag_alloc ~frag ~n)

let log_frag_free (fs : fs) ~frag ~n =
  match fs.wal with
  | None -> ()
  | Some w ->
      let r = enc_frag_run tag_frag_free ~frag ~n in
      for i = 0 to n - 1 do
        ref_tbl w.w_pinned (frag + i)
      done;
      (match current_op w with
      | Some op ->
          op.op_recs <- r :: op.op_recs;
          for i = 0 to n - 1 do
            op.op_pins <- (frag + i) :: op.op_pins
          done
      | None ->
          Jrnl.append w.wj r;
          for i = 0 to n - 1 do
            w.w_txn_pins <- (frag + i) :: w.w_txn_pins
          done)

let log_inode_alloc fs ~inum ~dir =
  if journaled fs then log fs (enc_inode_alloc ~inum ~dir)

let log_inode_free fs ~inum =
  if journaled fs then log fs (enc_inode_free ~inum)

let log_ind_set fs ~frag ~index ~value =
  if journaled fs then log fs (enc_ind_set ~frag ~index ~value)

let log_ind_zero fs ~frag =
  if journaled fs then log fs (enc_ind_zero ~frag)

let log_dir_entry fs ~dinum ~off ~slot =
  if journaled fs then log fs (enc_dir_entry ~dinum ~off ~slot:(Bytes.copy slot))

let log_cg_ndirs fs ~cgx ~value =
  if journaled fs then log fs (enc_cg_ndirs ~cgx ~value)

let note (fs : fs) (ip : inode) =
  match fs.wal with
  | None -> ()
  | Some w -> (
      match current_op w with
      | Some op ->
          if not (List.mem_assoc ip.inum op.op_inodes) then begin
            op.op_inodes <- (ip.inum, ip) :: op.op_inodes;
            ref_tbl w.w_active ip.inum
          end
      | None ->
          (* no operation open: the caller's mutation stands alone, log
             the image immediately into the open transaction *)
          let img = Bytes.create Layout.dinode_bytes in
          Dinode.encode (to_dinode ip) img 0;
          Jrnl.append w.wj (enc_inode_update ~inum:ip.inum ~image:img))

let mark_meta (fs : fs) ~frag =
  match fs.wal with
  | None -> ()
  | Some w -> (
      match current_op w with
      | Some op ->
          if not (List.mem frag op.op_meta) then begin
            op.op_meta <- frag :: op.op_meta;
            ref_tbl w.w_unstable frag
          end
      | None -> ())

let defer_push (fs : fs) (ip : inode) ~off =
  match fs.wal with
  | None -> ()
  | Some w -> (
      match current_op w with
      | Some op -> op.op_pushes <- (ip, off) :: op.op_pushes
      | None -> w.w_push ip off)

(* ---------- queries used by the allocator and pageout ---------- *)

let pinned (fs : fs) frag =
  match fs.wal with None -> false | Some w -> Hashtbl.mem w.w_pinned frag

let span_pinned (fs : fs) ~frag ~n =
  match fs.wal with
  | None -> false
  | Some w ->
      if Hashtbl.length w.w_pinned = 0 then false
      else begin
        let hit = ref false in
        for i = 0 to n - 1 do
          if Hashtbl.mem w.w_pinned (frag + i) then hit := true
        done;
        !hit
      end

let unpin_commit (fs : fs) =
  match fs.wal with
  | None -> false
  | Some w ->
      if w.w_txn_pins = [] then false
      else begin
        w.w_pin_commits <- w.w_pin_commits + 1;
        commit_internal w;
        true
      end

let inode_active (fs : fs) inum =
  match fs.wal with None -> false | Some w -> Hashtbl.mem w.w_active inum

(* ---------- the metabuf write gate (invariant W1) ---------- *)

let write_gate (fs : fs) frag do_write =
  match fs.wal with
  | None ->
      do_write ();
      true
  | Some w ->
      if Hashtbl.mem w.w_unstable frag then false
      else begin
        (* Commit first (write-ahead), then write in place while still
           holding the commit lock: a checkpoint advancing the head
           between the two would orphan this block's log records. *)
        Sim.Mutex.with_lock w.w_lock (fun () ->
            if Jrnl.pending w.wj then begin
              w.w_barrier_commits <- w.w_barrier_commits + 1;
              commit_locked w
            end;
            do_write ());
        maybe_kick w;
        true
      end

(* ---------- checkpoint (invariant W2) ---------- *)

let checkpoint (fs : fs) ~flush ~write_meta =
  match fs.wal with
  | None -> ()
  | Some w ->
      Sim.Mutex.with_lock w.w_ckpt_lock (fun () ->
          w.w_stalled <- true;
          Fun.protect
            ~finally:(fun () ->
              w.w_stalled <- false;
              Sim.Condition.broadcast w.w_resume)
            (fun () ->
              (* quiesce: wait out every open operation, so the flush
                 below sees only stable blocks and complete pages *)
              while Hashtbl.length w.w_ops > 0 do
                Sim.Condition.wait w.w_idle
              done;
              flush ();
              Sim.Mutex.with_lock w.w_lock (fun () ->
                  commit_locked w;
                  write_meta ();
                  Jrnl.checkpoint w.wj)))

(* ---------- observability ---------- *)

let register_metrics (fs : fs) reg ~instance =
  match fs.wal with
  | None -> ()
  | Some w ->
      Jrnl.register_metrics w.wj reg ~instance;
      Sim.Metrics.register reg ~layer:"wal" ~instance (fun () ->
          [
            ("txns", Sim.Metrics.Int w.w_txns);
            ("barrier_commits", Sim.Metrics.Int w.w_barrier_commits);
            ("pin_commits", Sim.Metrics.Int w.w_pin_commits);
            ("ckpt_waits", Sim.Metrics.Int w.w_ckpt_waits);
            ("stall_commits", Sim.Metrics.Int w.w_stall_commits);
            ("open_ops", Sim.Metrics.Int (Hashtbl.length w.w_ops));
            ("pinned_frags", Sim.Metrics.Int (Hashtbl.length w.w_pinned));
          ])
