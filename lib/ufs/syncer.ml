type t = {
  fs : Types.fs;
  interval : Sim.Time.t;
  mutable running : bool;
  mutable passes : int;
  mutable flushed_bytes : int;
  dirty_age_us : Sim.Stats.Summary.t;
  mutable timer : Sim.Engine.timer option;
  tick : Sim.Condition.t;
}

(* The interval timer is a cancellable engine event, not a sleep inside
   the daemon: [stop] cancels it, so a stopped syncer dies now rather
   than dozing out the rest of a 30-second interval first. *)
let arm t =
  t.timer <-
    Some
      (Sim.Engine.schedule_cancellable t.fs.Types.engine ~delay:t.interval
         (fun () ->
           t.timer <- None;
           Sim.Condition.signal t.tick))

let daemon t () =
  while t.running do
    Sim.Condition.wait t.tick;
    if t.running then begin
      let fs = t.fs in
      (* how stale was the oldest dirty data when this pass caught it? *)
      let now = Sim.Engine.now fs.Types.engine in
      if fs.Types.stats.Types.oldest_dirty >= 0 then
        Sim.Stats.Summary.add t.dirty_age_us
          (float_of_int (now - fs.Types.stats.Types.oldest_dirty));
      (* re-arm before the (sleeping) sync: dirtying that happens while
         we flush belongs to the next pass *)
      fs.Types.stats.Types.oldest_dirty <- -1;
      let before = (Disk.Blkdev.stats fs.Types.dev).Disk.Blkdev.sectors_written in
      Fs.sync t.fs;
      let after = (Disk.Blkdev.stats fs.Types.dev).Disk.Blkdev.sectors_written in
      t.flushed_bytes <-
        t.flushed_bytes
        + ((after - before) * Disk.Blkdev.sector_bytes fs.Types.dev);
      t.passes <- t.passes + 1;
      (* stop may have arrived during the sync pass: don't re-arm, the
         while test will see [running] down and exit *)
      if t.running then arm t
    end
  done

let start fs ?(interval = Sim.Time.sec 30) () =
  if interval <= 0 then invalid_arg "Syncer.start: interval";
  let t =
    {
      fs;
      interval;
      running = true;
      passes = 0;
      flushed_bytes = 0;
      dirty_age_us = Sim.Stats.Summary.create ();
      timer = None;
      tick = Sim.Condition.create fs.Types.engine "syncer.tick";
    }
  in
  arm t;
  Sim.Engine.spawn fs.Types.engine ~name:"update" (daemon t);
  t

let stop t =
  if t.running then begin
    t.running <- false;
    (match t.timer with
    | Some tm ->
        Sim.Engine.cancel tm;
        t.timer <- None
    | None -> ());
    Sim.Condition.broadcast t.tick
  end

let passes t = t.passes
let flushed_bytes t = t.flushed_bytes
let dirty_age_us t = t.dirty_age_us

let register_metrics t reg ~instance =
  Sim.Metrics.register reg ~layer:"syncer" ~instance (fun () ->
      Sim.Metrics.
        [
          ("passes", Int t.passes);
          ("flushed_bytes", Int t.flushed_bytes);
          ("dirty_age_us", Summary t.dirty_age_us);
        ])
