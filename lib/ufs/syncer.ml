type t = {
  fs : Types.fs;
  interval : Sim.Time.t;
  mutable running : bool;
  mutable passes : int;
  mutable timer : Sim.Engine.timer option;
  tick : Sim.Condition.t;
}

(* The interval timer is a cancellable engine event, not a sleep inside
   the daemon: [stop] cancels it, so a stopped syncer dies now rather
   than dozing out the rest of a 30-second interval first. *)
let arm t =
  t.timer <-
    Some
      (Sim.Engine.schedule_cancellable t.fs.Types.engine ~delay:t.interval
         (fun () ->
           t.timer <- None;
           Sim.Condition.signal t.tick))

let daemon t () =
  while t.running do
    Sim.Condition.wait t.tick;
    if t.running then begin
      Fs.sync t.fs;
      t.passes <- t.passes + 1;
      (* stop may have arrived during the sync pass: don't re-arm, the
         while test will see [running] down and exit *)
      if t.running then arm t
    end
  done

let start fs ?(interval = Sim.Time.sec 30) () =
  if interval <= 0 then invalid_arg "Syncer.start: interval";
  let t =
    {
      fs;
      interval;
      running = true;
      passes = 0;
      timer = None;
      tick = Sim.Condition.create fs.Types.engine "syncer.tick";
    }
  in
  arm t;
  Sim.Engine.spawn fs.Types.engine ~name:"update" (daemon t);
  t

let stop t =
  if t.running then begin
    t.running <- false;
    (match t.timer with
    | Some tm ->
        Sim.Engine.cancel tm;
        t.timer <- None
    | None -> ());
    Sim.Condition.broadcast t.tick
  end

let passes t = t.passes
