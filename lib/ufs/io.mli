(** Shared page-I/O machinery under ufs_getpage/ufs_putpage: building
    single disk requests that cover whole clusters of pages, and the
    completion bookkeeping (validate/clean pages, release the write
    limit, wake fsync waiters).

    CPU accounting convention: the {e initiating} process is charged
    [driver_submit + intr] per disk request at submission time — the
    completion interrupt cannot be charged from a callback without a
    process context, and attributing it to the requester matches how
    the paper reasons about per-request overhead. *)

val ident : Types.inode -> int -> Vm.Page.ident

val consume_prefetch : Types.fs -> Vm.Page.t -> unit
(** If the page still carries the read-ahead flag, count it as a used
    prefetch and clear the flag (first-consumer accounting; see
    {!Vm.Page.t.prefetched}). *)

val page_in : Types.fs -> Types.inode -> off:int -> frag:int -> blocks:int ->
  sync:bool -> read_ahead:bool -> unit
(** Read [blocks] logical blocks of the file starting at page-aligned
    byte offset [off], located contiguously on disk at [frag], as one
    disk request.  Pages already cached inside the range keep their
    (possibly newer) contents; missing pages are allocated, filled from
    the request buffer at completion, validated and unbusied.  The tail
    block's transfer length respects its fragment allocation.
    When [sync], blocks until the data is in.  [read_ahead] selects
    statistics/trace classification and marks the freshly-claimed pages
    {!Vm.Page.t.prefetched} for used/wasted accounting. *)

val zero_fill : Types.fs -> Types.inode -> off:int -> blocks:int -> unit
(** Enter valid zeroed pages for a hole (no I/O). *)

val push_pages :
  Types.fs -> Types.inode -> Vm.Page.t list -> frag:int -> off:int ->
  sync:bool -> free_after:bool -> throttle:bool -> locked:bool ->
  ?ordered:bool -> unit -> unit
(** Write the given (consecutive, dirty, unlocked) pages as one disk
    request at [frag].  Marks them busy for the duration; on completion
    they are cleaned, unbusied (or freed when [free_after]) and the
    inode's outstanding-write count drops.  When [throttle], blocks on
    the inode's write-limit semaphore first (the paper's fairness
    semaphore); pageout-initiated pushes pass [false].  When [sync],
    waits for the I/O. *)

val wait_writes : Types.fs -> Types.inode -> unit
(** Block until the inode has no writes in flight (fsync tail). *)
