open Types

let inode_block_frag fs inum =
  let frag, _ = Cg.dinode_loc fs.sb inum in
  frag - (frag mod Layout.fpb)

(* offset of the dinode within its containing logical block *)
let dinode_offset fs inum =
  let frag, byte = Cg.dinode_loc fs.sb inum in
  ((frag mod Layout.fpb) * Layout.fsize) + byte

let read_dinode fs inum =
  let blk = Metabuf.read fs.metabuf ~frag:(inode_block_frag fs inum) in
  Dinode.decode blk (dinode_offset fs inum)

let iupdat fs (ip : inode) ~sync =
  note_dirty fs;
  let frag = inode_block_frag fs ip.inum in
  let blk = Metabuf.read fs.metabuf ~frag in
  Dinode.encode (to_dinode ip) blk (dinode_offset fs ip.inum);
  Metabuf.mark_dirty fs.metabuf ~frag;
  ip.meta_dirty <- false;
  if Wal.journaled fs then begin
    (* journalled: the dinode stays dirty in the cache and the *log*
       carries the durability; a synchronous update becomes a log commit
       (op ends commit for themselves) *)
    Wal.note fs ip;
    Wal.mark_meta fs ~frag;
    if sync && not (Wal.in_op fs) then Wal.commit fs
  end
  else if sync then
    if fs.feat.ordered_metadata then Metabuf.flush_block_ordered fs.metabuf ~frag
    else Metabuf.flush_block fs.metabuf ~frag

let itrunc fs (ip : inode) =
  Wal.with_op fs ~commit:false (fun () ->
      Wal.note fs ip;
      (* drop anything still accumulating, then wait for in-flight writes *)
      ip.delayoff <- 0;
      ip.delaylen <- 0;
      Io.wait_writes fs ip;
      Vm.Pool.invalidate_vnode fs.pool ip.inum;
      let chunks = ref [] in
      Bmap.iter_allocated fs ip (fun c -> chunks := c :: !chunks);
      List.iter
        (fun chunk ->
          match chunk with
          | Bmap.Data { frag; nfrags; _ } ->
              if nfrags = Layout.fpb then Alloc.free_block fs (Some ip) frag
              else Alloc.free_frags fs (Some ip) ~frag ~nfrags
          | Bmap.Indirect { frag } ->
              (* drop the cached (possibly dirty) pointer block: its
                 storage is going back to the allocator, and a later
                 write-back would corrupt whoever reuses it *)
              Metabuf.invalidate fs.metabuf ~frag;
              Alloc.free_block fs (Some ip) frag)
        !chunks;
      Array.fill ip.db 0 Layout.ndaddr 0;
      ip.ib.(0) <- 0;
      ip.ib.(1) <- 0;
      ip.size <- 0;
      ip.idata <- None;
      ip.bmap_cache <- None;
      reset_rstreams ip;
      Hashtbl.remove fs.resv ip.inum;
      assert (ip.blocks = 0);
      ip.meta_dirty <- true)

let fsync_inode fs (ip : inode) =
  Putpage.push_delayed fs ip ~sync:false ();
  Putpage.putpage fs ip ~off:0 ~len:0 ~flags:[ Vfs.Vnode.P_SYNC ];
  Io.wait_writes fs ip;
  iupdat fs ip ~sync:true

(* ---------- vnode glue ---------- *)

let rec vnode_of fs (ip : inode) =
  match ip.vnode with
  | Some vn -> vn
  | None ->
      let ops =
        {
          Vfs.Vnode.rdwr = (fun _vn uio -> Rdwr.rdwr fs ip uio);
          getpage =
            (fun _vn ~off ~len ~hint -> Getpage.getpage fs ip ~off ~len ~hint);
          putpage = (fun _vn ~off ~len ~flags -> Putpage.putpage fs ip ~off ~len ~flags);
          fsync = (fun _vn -> fsync_inode fs ip);
          inactive = (fun _vn -> iput fs ip);
          getsize = (fun _vn -> ip.size);
          setsize =
            (fun _vn n ->
              ip.size <- n;
              ip.meta_dirty <- true);
        }
      in
      let vn =
        Vfs.Vnode.make ~vid:ip.inum ~kind:(Dinode.kind_to_vnode ip.kind) ~ops
      in
      ip.vnode <- Some vn;
      vn

and iget fs inum =
  match Hashtbl.find_opt fs.icache inum with
  | Some ip ->
      ip.refcnt <- ip.refcnt + 1;
      ip
  | None ->
      (* the dinode read sleeps; serialise misses so two processes never
         instantiate the same inode twice *)
      Sim.Mutex.with_lock fs.iget_lock (fun () ->
          match Hashtbl.find_opt fs.icache inum with
          | Some ip ->
              ip.refcnt <- ip.refcnt + 1;
              ip
          | None ->
              let d = read_dinode fs inum in
              if d.Dinode.kind = Dinode.Free then
                Vfs.Errno.raise_err Vfs.Errno.ENOENT
                  (Printf.sprintf "iget: inode %d is free" inum);
              let ip = mk_inode fs ~inum d in
              ip.refcnt <- 1;
              Hashtbl.replace fs.icache inum ip;
              Vm.Pool.register_flusher fs.pool inum (Putpage.flusher fs ip);
              ignore (vnode_of fs ip);
              ip)

and iput fs (ip : inode) =
  if ip.refcnt <= 0 then invalid_arg "iput: no references";
  ip.refcnt <- ip.refcnt - 1;
  if ip.refcnt = 0 then
    if ip.nlink = 0 && ip.kind <> Dinode.Free then
      (* one journalled op: the crash window between the unlink commit
         (nlink 0) and this free commit is the orphan window recovery's
         reap pass closes *)
      Wal.with_op fs (fun () ->
          itrunc fs ip;
          ip.kind <- Dinode.Free;
          iupdat fs ip ~sync:false;
          Alloc.free_inode fs ip.inum;
          Vm.Pool.unregister_flusher fs.pool ip.inum;
          Hashtbl.remove fs.icache ip.inum)
    else begin
      Putpage.push_delayed fs ip ~sync:false ();
      if ip.meta_dirty then iupdat fs ip ~sync:false;
      (* nobody holds the file open: release its advisory run *)
      Hashtbl.remove fs.resv ip.inum
    end

let iget_new fs ~dir_hint ~kind =
  let inum = Alloc.alloc_inode fs ~dir_hint ~kind in
  (match Hashtbl.find_opt fs.icache inum with
  | Some _ -> invalid_arg "iget_new: allocated inode already cached"
  | None -> ());
  let d = Dinode.empty () in
  d.Dinode.kind <- kind;
  let ip = mk_inode fs ~inum d in
  ip.refcnt <- 1;
  ip.gen <- ip.gen + 1;
  ip.meta_dirty <- true;
  Hashtbl.replace fs.icache inum ip;
  Vm.Pool.register_flusher fs.pool inum (Putpage.flusher fs ip);
  ignore (vnode_of fs ip);
  ip
