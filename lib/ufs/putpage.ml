open Types

let lookup_page fs ip off = Vm.Pool.lookup fs.pool (Io.ident ip off)

let pushable (p : Vm.Page.t) =
  p.Vm.Page.valid && p.Vm.Page.dirty && not p.Vm.Page.busy

(* Push every dirty page in [off, off+len), cutting the range into
   physically contiguous chunks per bmap (the figure-8 while loop). *)
let push_range fs (ip : inode) ~off ~len ~free_after ~throttle ?(ordered = false) () =
  (* journalled: while an operation is mutating this inode its dirty
     pages must not reach the disk (their log records are not durable
     yet); op end pushes what it deferred *)
  if Wal.inode_active fs ip.inum then ()
  else
  let endoff = min (off + len) (((ip.size + Layout.bsize - 1) / Layout.bsize) * Layout.bsize) in
  let rec loop off =
    if off < endoff then begin
      match lookup_page fs ip off with
      | Some p when pushable p ->
          let lbn = off / Layout.bsize in
          let frag_opt, contig = Bmap.read fs ip ~lbn in
          (match frag_opt with
          | None ->
              (* a dirty page must have backing store: the write path
                 allocates before dirtying *)
              assert false
          | Some frag ->
              let max_blocks = min contig ((endoff - off) / Layout.bsize) in
              let max_blocks = max 1 max_blocks in
              (* re-collect after the (possibly sleeping) bmap call *)
              let rec collect k acc =
                if k = max_blocks then List.rev acc
                else
                  match lookup_page fs ip (off + (k * Layout.bsize)) with
                  | Some p when pushable p -> collect (k + 1) (p :: acc)
                  | Some _ | None -> List.rev acc
              in
              (match collect 0 [] with
              | [] -> loop (off + Layout.bsize)
              | pages ->
                  Io.push_pages fs ip pages ~frag ~off ~sync:false ~free_after
                    ~throttle ~locked:false ~ordered ();
                  loop (off + (List.length pages * Layout.bsize))))
      | Some _ | None -> loop (off + Layout.bsize)
    end
  in
  loop off

(* Free clean, unreferenced-by-I/O pages in the range (free-behind on
   already-clean data). *)
let free_clean_range fs (ip : inode) ~off ~len =
  let endoff = off + len in
  let rec loop off =
    if off < endoff then begin
      (match lookup_page fs ip off with
      | Some p when p.Vm.Page.valid && (not p.Vm.Page.dirty) && not p.Vm.Page.busy
        ->
          if Vm.Page.try_lock p then Vm.Pool.free_page fs.pool p
      | Some _ | None -> ());
      loop (off + Layout.bsize)
    end
  in
  loop off

let push_delayed fs (ip : inode) ~sync ?(ordered = false) () =
  if ip.delaylen > 0 then begin
    let off = ip.delayoff and len = ip.delaylen in
    ip.delayoff <- 0;
    ip.delaylen <- 0;
    push_range fs ip ~off ~len ~free_after:false ~throttle:(not ordered)
      ~ordered ()
  end;
  if sync then Io.wait_writes fs ip

(* The figure 7/8 delayed-write accumulator. *)
let delay fs (ip : inode) ~off ~free_after =
  note_dirty fs;
  fs.stats.delayed_pages <- fs.stats.delayed_pages + 1;
  Sim.Trace.emit fs.trace (fun () -> Ev_write_delay { off });
  if ip.delaylen = 0 then begin
    ip.delayoff <- off;
    ip.delaylen <- Layout.bsize
  end
  else if off = ip.delayoff + ip.delaylen && ip.delaylen < cluster_bytes fs
  then ip.delaylen <- ip.delaylen + Layout.bsize
  else begin
    (* sequentiality assumption wrong: write out the old pages, start
       over with the current page *)
    push_delayed fs ip ~sync:false ();
    ip.delayoff <- off;
    ip.delaylen <- Layout.bsize
  end;
  if ip.delaylen >= cluster_bytes fs then push_delayed fs ip ~sync:false ();
  if free_after then free_clean_range fs ip ~off ~len:Layout.bsize

let putpage_body fs (ip : inode) ~off ~len ~flags =
  fs.stats.putpage_calls <- fs.stats.putpage_calls + 1;
  charge fs ~label:"putpage" fs.costs.Costs.putpage;
  let has f = List.mem f flags in
  let free_after = has Vfs.Vnode.P_FREE in
  if has Vfs.Vnode.P_DELAY then begin
    if fs.feat.clustering then delay fs ip ~off ~free_after
    else begin
      (* SunOS 4.1: start the asynchronous block write immediately *)
      push_range fs ip ~off ~len:Layout.bsize ~free_after ~throttle:true ();
      if free_after then free_clean_range fs ip ~off ~len:Layout.bsize
    end
  end
  else begin
    let len =
      if len = 0 then
        max 0 ((Layout.blocks_of_size ip.size * Layout.bsize) - off)
      else len
    in
    let ordered = has Vfs.Vnode.P_ORDER in
    (* a range operation covers any pages sitting in the accumulator *)
    if ip.delaylen > 0 then push_delayed fs ip ~sync:false ~ordered ();
    (* ordered metadata writes are kernel-initiated: they bypass the
       per-file fairness limit (their volume is bounded by the number of
       metadata blocks, not by user data) *)
    push_range fs ip ~off ~len ~free_after ~throttle:(not ordered) ~ordered ();
    if free_after then free_clean_range fs ip ~off ~len;
    if has Vfs.Vnode.P_SYNC then Io.wait_writes fs ip
  end

let putpage fs (ip : inode) ~off ~len ~flags =
  Sim.Span.span ~name:"ufs.putpage"
    ~attrs:[ ("off", Sim.Span.I off); ("len", Sim.Span.I len) ]
    (fun () -> putpage_body fs ip ~off ~len ~flags)

let flusher fs (ip : inode) : Vm.Pool.flusher =
 fun page ~free_after ->
  match page.Vm.Page.ident with
  | None -> invalid_arg "Ufs flusher: free page"
  | Some _ when Wal.inode_active fs ip.inum ->
      (* an open journalled op owns this inode; pageout must not write
         its pages before the op's records commit *)
      Vm.Page.unbusy page;
      0
  | Some id ->
      let off = id.Vm.Page.off in
      Sim.Trace.emit fs.trace (fun () -> Ev_pageout_flush { off });
      charge fs ~label:"pageout" fs.costs.Costs.putpage;
      let lbn = off / Layout.bsize in
      let frag_opt, contig = Bmap.read fs ip ~lbn in
      (match frag_opt with
      | None -> assert false (* dirty pages always have backing store *)
      | Some frag ->
          (* kluster: sweep the physically contiguous dirty run behind
             the target page into the same write, like the sync path's
             push_range does — one seek then serves the whole run.  Only
             idle (unreferenced) neighbours come along: the back hand
             would have flushed them one revolution later anyway, each
             with its own seek *)
          let max_blocks =
            min contig (max 1 (cluster_bytes fs / Layout.bsize))
          in
          let rec collect k acc =
            if k >= max_blocks then List.rev acc
            else
              match lookup_page fs ip (off + (k * Layout.bsize)) with
              | Some p
                when pushable p
                     && (not p.Vm.Page.referenced)
                     && Vm.Page.try_lock p ->
                  collect (k + 1) (p :: acc)
              | _ -> List.rev acc
          in
          let pages = page :: collect 1 [] in
          Io.push_pages fs ip pages ~frag ~off ~sync:false ~free_after
            ~throttle:false ~locked:true ();
          List.length pages)
