open Types

let frag_tail_eligible ~size = size <= Layout.ndaddr * Layout.bsize

let block_frags (_ip : inode) ~lbn ~size =
  if
    frag_tail_eligible ~size
    && size > 0
    && lbn = (size - 1) / Layout.bsize
    && size mod Layout.bsize <> 0
  then Layout.frags_of_bytes (size mod Layout.bsize)
  else Layout.fpb

(* ---------- pointer access ---------- *)

let ind_get fs frag i = Codec.get_u32 (Metabuf.read fs.metabuf ~frag) (4 * i)

let ind_set fs frag i v =
  Codec.put_u32 (Metabuf.read fs.metabuf ~frag) (4 * i) v;
  Metabuf.mark_dirty fs.metabuf ~frag;
  Wal.log_ind_set fs ~frag ~index:i ~value:v;
  Wal.mark_meta fs ~frag

(* Pointer for [lbn], plus a function giving the pointer of [lbn + k]
   within the same structure (None past the boundary) — used by the
   contiguity scan without re-walking the tree. *)
let lookup fs (ip : inode) lbn =
  match Layout.classify lbn with
  | Layout.Direct i ->
      let get k =
        if i + k < Layout.ndaddr then Some ip.db.(i + k) else None
      in
      get
  | Layout.Single i ->
      if ip.ib.(0) = 0 then fun k ->
        if i + k < Layout.nindir then Some 0 else None
      else
        let frag = ip.ib.(0) in
        fun k ->
          if i + k < Layout.nindir then Some (ind_get fs frag (i + k)) else None
  | Layout.Double (i, j) ->
      if ip.ib.(1) = 0 then fun k ->
        if j + k < Layout.nindir then Some 0 else None
      else
        let l1 = ind_get fs ip.ib.(1) i in
        if l1 = 0 then fun k ->
          if j + k < Layout.nindir then Some 0 else None
        else fun k ->
          if j + k < Layout.nindir then Some (ind_get fs l1 (j + k)) else None

let maxcontig (fs : fs) = max 1 fs.sb.Superblock.maxcontig

let read (fs : fs) (ip : inode) ~lbn =
  fs.stats.bmap_calls <- fs.stats.bmap_calls + 1;
  let cap = maxcontig fs in
  let cached =
    if fs.feat.bmap_cache then
      match ip.bmap_cache with
      | Some (clbn, cfrag, clen) when lbn >= clbn && lbn < clbn + clen ->
          let d = lbn - clbn in
          Some (Some (cfrag + (d * Layout.fpb)), clen - d)
      | Some _ | None -> None
    else None
  in
  match cached with
  | Some r ->
      (* a cache hit skips the pointer walk: a few loads, not a lookup *)
      fs.stats.bmap_cache_hits <- fs.stats.bmap_cache_hits + 1;
      charge fs ~label:"bmap" (fs.costs.Costs.bmap / 8);
      r
  | None -> (
      charge fs ~label:"bmap" fs.costs.Costs.bmap;
      let get = lookup fs ip lbn in
      match get 0 with
      | None -> Vfs.Errno.raise_err Vfs.Errno.EFBIG "bmap: lbn out of range"
      | Some 0 ->
          (* hole: measure the run of consecutive holes *)
          let rec run k =
            if k >= cap then k
            else match get k with Some 0 -> run (k + 1) | Some _ | None -> k
          in
          (None, run 1)
      | Some frag ->
          let rec run k =
            if k >= cap then k
            else
              match get k with
              | Some p when p = frag + (k * Layout.fpb) -> run (k + 1)
              | Some _ | None -> k
          in
          let len = run 1 in
          if fs.feat.bmap_cache then ip.bmap_cache <- Some (lbn, frag, len);
          (Some frag, len))

(* ---------- allocation ---------- *)

let invalidate_cache (ip : inode) = ip.bmap_cache <- None

(* Grow a fragment run in place or by moving it (copying live data
   through the disk, timed). *)
let grow_run fs (ip : inode) ~frag ~old_n ~want =
  if Alloc.extend_frags fs ip ~frag ~old_n ~new_n:want then frag
  else begin
    let newfrag =
      if want = Layout.fpb then
        Alloc.alloc_block fs ip ~pref:(Alloc.blkpref fs ip ~lbn:0 ~prev_frag:frag)
      else Alloc.alloc_frags fs ip ~pref:frag ~nfrags:want
    in
    (* move the old fragments' contents *)
    let buf = Bytes.create (old_n * Layout.fsize) in
    charge fs ~label:"realloc"
      (fs.costs.Costs.driver_submit + fs.costs.Costs.intr);
    Disk.Blkdev.read_sync fs.dev
      ~sector:(Layout.frag_to_sector frag)
      ~count:(old_n * Layout.sectors_per_frag)
      ~buf ~buf_off:0;
    Disk.Blkdev.write_sync fs.dev
      ~sector:(Layout.frag_to_sector newfrag)
      ~count:(old_n * Layout.sectors_per_frag)
      ~buf ~buf_off:0;
    Alloc.free_frags fs (Some ip) ~frag ~nfrags:old_n;
    newfrag
  end

(* Allocate the single- or double-indirect block(s) needed to address
   [lbn], returning the indirect block (frag) holding its pointer and
   the index within. *)
let ensure_indirect fs (ip : inode) lbn =
  match Layout.classify lbn with
  | Layout.Direct _ -> invalid_arg "ensure_indirect: direct block"
  | Layout.Single i ->
      if ip.ib.(0) = 0 then begin
        let f =
          Alloc.alloc_block fs ip ~pref:(Alloc.blkpref fs ip ~lbn ~prev_frag:0)
        in
        ignore (Metabuf.zero fs.metabuf ~frag:f);
        Wal.log_ind_zero fs ~frag:f;
        Wal.mark_meta fs ~frag:f;
        ip.ib.(0) <- f;
        ip.meta_dirty <- true
      end;
      (ip.ib.(0), i)
  | Layout.Double (i, j) ->
      if ip.ib.(1) = 0 then begin
        let f =
          Alloc.alloc_block fs ip ~pref:(Alloc.blkpref fs ip ~lbn ~prev_frag:0)
        in
        ignore (Metabuf.zero fs.metabuf ~frag:f);
        Wal.log_ind_zero fs ~frag:f;
        Wal.mark_meta fs ~frag:f;
        ip.ib.(1) <- f;
        ip.meta_dirty <- true
      end;
      let l1 = ind_get fs ip.ib.(1) i in
      let l1 =
        if l1 <> 0 then l1
        else begin
          let f =
            Alloc.alloc_block fs ip
              ~pref:(Alloc.blkpref fs ip ~lbn ~prev_frag:0)
          in
          ignore (Metabuf.zero fs.metabuf ~frag:f);
          Wal.log_ind_zero fs ~frag:f;
          Wal.mark_meta fs ~frag:f;
          ind_set fs ip.ib.(1) i f;
          f
        end
      in
      (l1, j)

let prev_frag_of fs ip lbn =
  if lbn = 0 then 0
  else
    let get = lookup fs ip (lbn - 1) in
    match get 0 with Some p -> p | None -> 0

(* Journalled mounts advance [ip.size] as soon as the allocation covers
   it: the inode image is encoded at op end, and an image claiming more
   fragments than its size justifies (or vice versa) is an fsck error.
   The data for the gap arrives immediately after (the caller is mid
   write); without a journal the size moves only after the copyin, as
   before. *)
let note_growth (fs : fs) (ip : inode) ~new_size =
  if Wal.journaled fs then begin
    Wal.note fs ip;
    if new_size > ip.size then begin
      ip.size <- new_size;
      ip.meta_dirty <- true
    end
  end

let ensure (fs : fs) (ip : inode) ~lbn ~new_size =
  if new_size < ip.size then invalid_arg "Bmap.ensure: shrinking";
  Wal.with_op fs ~commit:false @@ fun () ->
  charge fs ~label:"bmap" fs.costs.Costs.bmap;
  invalidate_cache ip;
  let want = block_frags ip ~lbn ~size:new_size in
  let finish f =
    note_growth fs ip ~new_size;
    f
  in
  match Layout.classify lbn with
  | Layout.Direct i ->
      let cur = ip.db.(i) in
      if cur = 0 then begin
        let pref =
          Alloc.blkpref fs ip ~lbn ~prev_frag:(prev_frag_of fs ip lbn)
        in
        let f =
          if want = Layout.fpb then Alloc.alloc_block fs ip ~pref
          else Alloc.alloc_frags fs ip ~pref ~nfrags:want
        in
        ip.db.(i) <- f;
        ip.meta_dirty <- true;
        finish f
      end
      else begin
        let old_n = block_frags ip ~lbn ~size:ip.size in
        if want > old_n then begin
          let f = grow_run fs ip ~frag:cur ~old_n ~want in
          ip.db.(i) <- f;
          ip.meta_dirty <- true;
          finish f
        end
        else finish cur
      end
  | Layout.Single _ | Layout.Double _ ->
      let ind, idx = ensure_indirect fs ip lbn in
      let cur = ind_get fs ind idx in
      if cur <> 0 then finish cur
      else begin
        let pref =
          Alloc.blkpref fs ip ~lbn ~prev_frag:(prev_frag_of fs ip lbn)
        in
        let f = Alloc.alloc_block fs ip ~pref in
        ind_set fs ind idx f;
        finish f
      end

let grow_old_tail (fs : fs) (ip : inode) ~new_size =
  if ip.size > 0 then begin
    let tail_lbn = (ip.size - 1) / Layout.bsize in
    let old_n = block_frags ip ~lbn:tail_lbn ~size:ip.size in
    if old_n < Layout.fpb then begin
      (* under new_size, how many frags does that same block need? *)
      let want = block_frags ip ~lbn:tail_lbn ~size:new_size in
      if want > old_n then
        Wal.with_op fs ~commit:false (fun () ->
            match Layout.classify tail_lbn with
            | Layout.Direct i ->
                let f = grow_run fs ip ~frag:ip.db.(i) ~old_n ~want in
                ip.db.(i) <- f;
                ip.meta_dirty <- true;
                invalidate_cache ip;
                note_growth fs ip ~new_size
            | Layout.Single _ | Layout.Double _ ->
                (* fragged tails only exist in the direct range *)
                assert false)
    end
  end

(* ---------- walking ---------- *)

type chunk =
  | Data of { lbn : int; frag : int; nfrags : int }
  | Indirect of { frag : int }

let iter_allocated (fs : fs) (ip : inode) f =
  let size = ip.size in
  let emit_data lbn frag =
    if frag <> 0 then
      f (Data { lbn; frag; nfrags = block_frags ip ~lbn ~size })
  in
  for i = 0 to Layout.ndaddr - 1 do
    emit_data i ip.db.(i)
  done;
  if ip.ib.(0) <> 0 then begin
    f (Indirect { frag = ip.ib.(0) });
    for i = 0 to Layout.nindir - 1 do
      emit_data (Layout.ndaddr + i) (ind_get fs ip.ib.(0) i)
    done
  end;
  if ip.ib.(1) <> 0 then begin
    f (Indirect { frag = ip.ib.(1) });
    for i = 0 to Layout.nindir - 1 do
      let l1 = ind_get fs ip.ib.(1) i in
      if l1 <> 0 then begin
        f (Indirect { frag = l1 });
        for j = 0 to Layout.nindir - 1 do
          emit_data
            (Layout.ndaddr + Layout.nindir + (i * Layout.nindir) + j)
            (ind_get fs l1 j)
        done
      end
    done
  end

let extent_map (fs : fs) (ip : inode) =
  let nblocks = Layout.blocks_of_size ip.size in
  let extents = ref [] in
  let cur = ref None in
  for lbn = 0 to nblocks - 1 do
    let get = lookup fs ip lbn in
    let p = match get 0 with Some p -> p | None -> 0 in
    match (!cur, p) with
    | None, 0 -> ()
    | None, p -> cur := Some (lbn, p, 1)
    | Some (slbn, sfrag, n), p ->
        if p <> 0 && p = sfrag + (n * Layout.fpb) then
          cur := Some (slbn, sfrag, n + 1)
        else begin
          extents := (slbn, sfrag, n) :: !extents;
          cur := if p = 0 then None else Some (lbn, p, 1)
        end
  done;
  (match !cur with Some e -> extents := e :: !extents | None -> ());
  List.rev !extents
