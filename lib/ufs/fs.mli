(** The mounted file system: mkfs, mount/unmount, and the path-level
    operations (the "system call" surface the workloads drive).

    All operations except {!mkfs} and {!mount} must run inside a
    simulation process ({!Sim.Engine.spawn}): they sleep on disk I/O,
    memory and CPU.  mkfs and mount work offline, directly on the
    backing store — the cost of mounting is not part of any experiment.

    Every path here is absolute ("/a/b/c"); symbolic links are not
    followed implicitly (use {!readlink}). *)

type mkfs_options = {
  rotdelay_ms : int;  (** 4 for the old layout, 0 for clustering *)
  maxcontig : int;  (** desired cluster size, in blocks *)
  maxbpg : int;  (** blocks per file per group before moving on *)
  minfree_pct : int;
  fpg : int;  (** fragments per cylinder group *)
  ipg : int;  (** inodes per group *)
  journal_frags : int;
      (** size of the intent-journal region in fragments; 0 disables
          journaling (the classic UFS) *)
}

val mkfs_defaults : mkfs_options
(** rotdelay 4 ms, maxcontig 1, maxbpg 256 blocks (2 MB), minfree 10%,
    16 MB groups, 2048 inodes per group, no journal — a SunOS 4.1
    layout. *)

val journal_frags_default : int
(** 1024 fragments (1 MB): the journal size [--journal] uses when no
    explicit size is given. *)

val mkfs : Disk.Blkdev.t -> ?opts:mkfs_options -> unit -> unit
(** Build an empty file system (with the root directory) on the device.
    Offline: writes the backing store directly. *)

val mount :
  Sim.Engine.t ->
  Sim.Cpu.t ->
  Vm.Pool.t ->
  Disk.Blkdev.t ->
  features:Types.features ->
  ?costs:Costs.t ->
  unit ->
  Types.fs
(** Read the superblock and cylinder groups into memory.
    Raises [EINVAL] on a bad or unclean file system. *)

val register_metrics : Types.fs -> Sim.Metrics.t -> instance:string -> unit
(** Register the mounted file system's counters, call-latency summaries
    and I/O-size histograms as a ["ufs"] source. *)

val tunefs : Types.fs -> ?rotdelay_ms:int -> ?maxcontig:int -> ?maxbpg:int -> unit -> unit
(** Adjust the layout knobs of a mounted file system (tunefs(8) — this
    is exactly how the paper reconfigures between runs without
    reformatting). *)

val unmount : Types.fs -> unit
(** Flush everything (delayed writes, inodes, metadata, group bitmaps,
    superblock) with timed I/O and mark the file system clean. *)

val sync : Types.fs -> unit
(** sync(2): flush all dirty state without unmounting. *)

(* ---------- namespace ---------- *)

val namei : Types.fs -> string -> Types.inode
(** Resolve a path to a referenced inode ({!Iops.iput} it when done). *)

val creat : Types.fs -> string -> Types.inode
(** Create (or truncate) a regular file; returns it referenced. *)

val mkdir : Types.fs -> string -> unit
val rmdir : Types.fs -> string -> unit
val unlink : Types.fs -> string -> unit
val link : Types.fs -> string -> string -> unit
(** [link fs existing new_path] — hard link. *)

val rename : Types.fs -> string -> string -> unit
(** Replaces an existing target ([EEXIST]-free, Unix semantics). *)

val symlink : Types.fs -> target:string -> path:string -> unit
val readlink : Types.fs -> string -> string

type stat = {
  st_ino : int;
  st_kind : Dinode.kind;
  st_size : int;
  st_blocks : int;  (** fragments allocated *)
  st_nlink : int;
}

val stat : Types.fs -> string -> stat

type statfs = {
  f_frags : int;  (** data capacity, fragments *)
  f_bfree : int;  (** free full blocks *)
  f_ffree : int;  (** free loose fragments *)
  f_ifree : int;
  f_reserved : int;  (** the minfree reserve, fragments *)
}

val statfs : Types.fs -> statfs

(* ---------- file I/O ---------- *)

val read : Types.fs -> Types.inode -> off:int -> buf:bytes -> len:int -> int
(** Returns bytes actually read (short at EOF). *)

val write : Types.fs -> Types.inode -> off:int -> buf:bytes -> len:int -> unit
val fsync : Types.fs -> Types.inode -> unit

val extent_map : Types.fs -> string -> (int * int * int) list
(** {!Bmap.extent_map} by path: [(lbn, frag, blocks)] physical extents. *)
