(** ufs_putpage: the write side of the paper.

    The delayed path ([P_DELAY], called by ufs_rdwr as each block is
    unmapped) implements Figures 7/8: "We handle writes by assuming
    sequential I/O and pretending that the I/O completed immediately (in
    other words, do nothing).  If the sequentiality assumption is found
    to be wrong at the next call, we write the previous page out and
    then start over with the current page.  If the assumption is
    correct, we keep stalling until a cluster is built up and then write
    out the whole cluster."  The accumulator is the inode's
    [delayoff]/[delaylen] pair; a full cluster is pushed the moment the
    boundary is crossed, keeping the disk uniformly busy (the paper's
    argument against Peacock's flush-on-full-cache).

    Pushing honours the Figure 8 while-loop: the accumulated range is
    re-cut by what bmap says is actually contiguous, so fragmented files
    degrade to smaller I/Os rather than breaking.

    Without clustering the delayed path degenerates to an immediate
    asynchronous one-block write — SunOS 4.1 behaviour.

    The [flusher] is the hook the pageout daemon uses ({!Vm.Pool.flusher});
    it writes a single page and is exempt from the write limit. *)

val putpage :
  Types.fs -> Types.inode -> off:int -> len:int -> flags:Vfs.Vnode.putflag list ->
  unit
(** [len = 0] means "to end of file".  [P_DELAY] expects a single page
    at [off].  [P_SYNC]/[P_ASYNC] push every dirty page in the range
    (clustered when the feature is on); [P_SYNC] also waits for all of
    the inode's writes to drain.  [P_FREE] frees pages once clean (the
    free-behind and pageout paths). *)

val push_range :
  Types.fs ->
  Types.inode ->
  off:int ->
  len:int ->
  free_after:bool ->
  throttle:bool ->
  ?ordered:bool ->
  unit ->
  unit
(** Push every dirty page in [off, off+len), cut into physically
    contiguous chunks per bmap.  No-op while a journalled operation is
    mutating the inode (the Wal pushes deferred ranges at op end). *)

val push_delayed : Types.fs -> Types.inode -> sync:bool -> ?ordered:bool -> unit -> unit
(** Flush the delayed-write accumulator (cluster-boundary crossing,
    fsync, non-sequential write, or file close).  [ordered] issues the
    flush as unthrottled B_ORDER writes (metadata paths). *)

val flusher : Types.fs -> Types.inode -> Vm.Pool.flusher
(** Per-vnode flusher to register with the page pool. *)
