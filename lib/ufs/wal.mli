(** The UFS side of the write-ahead intent journal.

    {!Jrnl} provides the on-disk circular log; this module gives it a
    vocabulary (typed, idempotent metadata records) and enforces the two
    write-ahead invariants:

    - {b W1}: a cached metadata block never reaches its in-place
      location before every log record describing its content is
      durable.  The metabuf pre-write hook calls {!write_gate}, which
      refuses blocks still referenced by an open operation and commits
      the open transaction before any other metadata block goes down.
    - {b W2}: the log head only advances past entries whose effects are
      durably in place ({!checkpoint} quiesces open operations, flushes
      every cache, then advances the head).

    The unit of consistency is the {e operation} ({!with_op}): records
    accumulate op-locally and enter the shared open transaction
    atomically at op end, together with the final images of every inode
    the op touched — a commit can never capture half an operation.
    Fragments freed by an uncommitted record stay {!pinned} against
    reallocation, because data writes are unlogged. *)

open Types

val journaled : fs -> bool
(** True when the mount carries a journal. *)

(** Decoded journal records; replay ({!Recover}) consumes these.  All
    are idempotent: absolute values, full images, never deltas. *)
type record =
  | Frag_alloc of { frag : int; n : int }
  | Frag_free of { frag : int; n : int }
  | Inode_alloc of { inum : int; dir : bool }
  | Inode_free of { inum : int }
  | Inode_update of { inum : int; image : bytes }  (** full 128 B dinode *)
  | Ind_set of { frag : int; index : int; value : int }
  | Ind_zero of { frag : int }
  | Dir_entry of { dinum : int; off : int; slot : bytes }
  | Cg_ndirs of { cgx : int; value : int }  (** absolute value *)

val decode_record : bytes -> record

val dir_entry_size : int
(** = [Dir.entry_size] (64); duplicated because [Dir] sits above this
    module in the dependency order. *)

val mk : Sim.Engine.t -> Jrnl.t -> wal
(** Fresh journal state for a mount; the caller wires [w_kick] and
    [w_push] afterwards. *)

(** {1 Operations} *)

val with_op : fs -> ?commit:bool -> (unit -> 'a) -> 'a
(** Run [f] as one journalled operation.  Nested calls join the
    enclosing operation (the outer one owns the commit).  With
    [~commit:true] (default) the operation's transaction is committed at
    op end — the synchronous durability point that replaces the old
    synchronous metadata writes.  [~commit:false] leaves the records in
    the open transaction for a later barrier to flush (block
    allocations, truncates).  Without a journal, just runs [f]. *)

val in_op : fs -> bool
(** True when the calling process has an operation open on [fs]. *)

val commit : fs -> unit
(** Commit the open transaction (fsync/sync path).  Stalls while a
    checkpoint quiesce is in progress. *)

(** {1 Logging} — no-ops without a journal; inside an operation the
    record lands in the op buffer, otherwise directly in the open
    transaction. *)

val log_frag_alloc : fs -> frag:int -> n:int -> unit
val log_frag_free : fs -> frag:int -> n:int -> unit
(** Also pins [frag..frag+n-1] until the record commits. *)

val log_inode_alloc : fs -> inum:int -> dir:bool -> unit
val log_inode_free : fs -> inum:int -> unit
val log_ind_set : fs -> frag:int -> index:int -> value:int -> unit
val log_ind_zero : fs -> frag:int -> unit
val log_dir_entry : fs -> dinum:int -> off:int -> slot:bytes -> unit
val log_cg_ndirs : fs -> cgx:int -> value:int -> unit

val note : fs -> inode -> unit
(** Record that the current operation mutated [ip]; its image is
    encoded at op end.  Outside an operation, logs the image
    immediately. *)

val mark_meta : fs -> frag:int -> unit
(** The current operation dirtied metabuf block [frag] with
    not-yet-logged content; the block refuses in-place writes until the
    op ends (invariant W1). *)

val defer_push : fs -> inode -> off:int -> unit
(** Push the directory page at [off] only after the current operation's
    transaction commits. *)

(** {1 Allocator and pageout queries} *)

val pinned : fs -> int -> bool
val span_pinned : fs -> frag:int -> n:int -> bool
val unpin_commit : fs -> bool
(** Commit to release pinned fragments under allocation pressure;
    returns false when there was nothing to unpin. *)

val inode_active : fs -> int -> bool
(** True while an open operation is mutating this inode — putpage and
    pageout must skip its pages. *)

val write_gate : fs -> int -> (unit -> unit) -> bool
(** [write_gate fs frag do_write]: the metabuf pre-write hook.  Refuses
    (returns false, without running [do_write]) when [frag] carries an
    open operation's content; otherwise commits the open transaction and
    runs [do_write] under the commit lock, so a checkpoint cannot slip
    between the commit and the in-place write.  Without a journal, just
    runs [do_write]. *)

val checkpoint : fs -> flush:(unit -> unit) -> write_meta:(unit -> unit) -> unit
(** Quiesce open operations, run [flush] (inode + metabuf sync), then —
    under the commit lock — commit the residual transaction, run
    [write_meta] (cg headers + superblock) and durably advance the log
    head.  New operations and public commits wait until the quiesce
    ends. *)

val register_metrics : fs -> Sim.Metrics.t -> instance:string -> unit
(** Register the ["wal"] counters and the underlying ["jrnl"] source. *)
