open Types

(* Per-stream read-window table (adaptive readahead v2).

   The paper keeps one nextr/nextrio pair per file, so two interleaved
   sequential readers destroy each other's hint on every access.  Here
   the inode carries a small LRU table of access windows instead; the
   rules are chosen so that a single reader (and the random-access
   workloads of figure 10) behaves byte-identically to the single-pair
   original:

   - the table starts as one window predicting offset 0 with its
     read-ahead frontier at 0, exactly the paper's initial state;
   - an access matching no window repoints the (unique) never-hit
     "scratch" window, mutating precisely the state the single pair
     would have mutated — its frontier is left alone, as the paper
     leaves nextrio alone on a miss;
   - only when the scratch has started matching (it is some stream's
     window now) does a miss open a NEW window, which is what preserves
     the established streams;
   - windows that never reach two hits are dropped after a few more
     misses, so accidental matches in random workloads cannot
     accumulate stale predictors. *)

let bump (ip : inode) =
  ip.rs_clock <- ip.rs_clock + 1;
  ip.rs_clock

(* The window predicting an access at [po], preferring established
   windows, then the most recently used. *)
let find (ip : inode) ~po =
  List.fold_left
    (fun best w ->
      if w.s_nextr <> po then best
      else
        match best with
        | Some b when (b.s_hits, b.s_stamp) >= (w.s_hits, w.s_stamp) -> best
        | _ -> Some w)
    None ip.rstreams

(* The window whose read-ahead frontier sits at [po] (the paper's
   [po = nextrio] test, per window). *)
let find_ra (ip : inode) ~po =
  List.fold_left
    (fun best w ->
      if w.s_ra_off <> po then best
      else
        match best with
        | Some b when b.s_stamp >= w.s_stamp -> best
        | _ -> Some w)
    None ip.rstreams

(* Non-mutating sequentiality peek for free-behind: the access at file
   offset [off] inside block [po] rides a sequential stream if some
   window predicted the block's start — or already advanced past it
   while we were inside the block. *)
let peek_seq (ip : inode) ~po ~off =
  List.exists
    (fun w -> w.s_nextr = po || (off > po && w.s_nextr = po + Layout.bsize))
    ip.rstreams

(* This stream's cluster size in blocks, after the adaptive cap. *)
let cbs_blocks fs (w : rstream) =
  max 1 (min w.s_cbs (cluster_bytes fs) / Layout.bsize)

(* Feedback sizing, consulted when a window's frontier fires: shrink on
   fresh wasted prefetches, grow back toward the file system's cluster
   size on clean ones.  Inert while nothing is ever wasted. *)
let adapt fs (w : rstream) =
  let wasted = (Vm.Pool.stats fs.pool).Vm.Pool.prefetch_wasted in
  if w.s_waste_mark < 0 then w.s_waste_mark <- wasted
  else if wasted > w.s_waste_mark then begin
    w.s_cbs <- max Layout.bsize (min w.s_cbs (cluster_bytes fs) / 2);
    w.s_waste_mark <- wasted;
    fs.stats.ra_shrinks <- fs.stats.ra_shrinks + 1
  end
  else if w.s_cbs < cluster_bytes fs then
    w.s_cbs <- min (cluster_bytes fs) (w.s_cbs * 2)

(* The access at [po] matched window [w]. *)
let touch fs (ip : inode) (w : rstream) ~po =
  fs.stats.ra_stream_hits <- fs.stats.ra_stream_hits + 1;
  w.s_hits <- w.s_hits + 1;
  w.s_stamp <- bump ip;
  w.s_born <- ip.rs_misses;
  w.s_nextr <- po + Layout.bsize;
  (* Establishment: on the second match of a mid-file stream, boot its
     read-ahead frontier at the current block so the asynchronous
     cluster chain can start.  Strictly [<]: a frontier at or ahead of
     [po] is live and must not be pulled back. *)
  if fs.feat.clustering && w.s_hits = 2 && w.s_ra_off < po then
    w.s_ra_off <- po

let evict_lru (ip : inode) =
  match
    List.fold_left
      (fun worst w ->
        match worst with
        | Some b when b.s_stamp <= w.s_stamp -> worst
        | _ -> Some w)
      None ip.rstreams
  with
  | Some lru -> ip.rstreams <- List.filter (fun w -> w != lru) ip.rstreams
  | None -> ()

(* The access at [po] matched no window. *)
let note_miss fs (ip : inode) ~po =
  match
    List.find_opt (fun w -> w.s_nextr = po + Layout.bsize) ip.rstreams
  with
  | Some w ->
      (* sub-block re-access: a stream reading in < bsize chunks touches
         the same block several times; its window already advanced.
         Keep the window alive, count nothing. *)
      w.s_born <- ip.rs_misses
  | None -> (
      ip.rs_misses <- ip.rs_misses + 1;
      (* drop stale unestablished windows *)
      ip.rstreams <-
        List.filter
          (fun w ->
            w.s_hits >= 2 || ip.rs_misses - w.s_born <= rstream_miss_ttl)
          ip.rstreams;
      let scratch =
        List.fold_left
          (fun best w ->
            if w.s_hits > 0 then best
            else
              match best with
              | Some b when b.s_stamp >= w.s_stamp -> best
              | _ -> Some w)
          None ip.rstreams
      in
      match scratch with
      | Some w ->
          (* repoint, as the paper repoints its single nextr; the
             frontier stays, as the paper leaves nextrio *)
          w.s_nextr <- po + Layout.bsize;
          w.s_born <- ip.rs_misses;
          w.s_stamp <- bump ip
      | None ->
          if List.length ip.rstreams >= max_rstreams then evict_lru ip;
          let w =
            mk_rstream ~nextr:(po + Layout.bsize) ~ra_off:(-1)
              ~born:ip.rs_misses ~stamp:(bump ip)
          in
          ip.rstreams <- w :: ip.rstreams;
          fs.stats.ra_streams <- fs.stats.ra_streams + 1)
