(** The update daemon (the classic 30-second sync).

    "The system periodically flushes the cache to avoid file system
    inconsistencies in the event of a system crash or power failure" —
    the paper leans on this when arguing that its write clustering
    (push at each cluster boundary) keeps disk queues smooth, where
    Peacock's flush-on-full-cache produced periodic I/O bursts.

    The daemon is a simulated process that calls {!Fs.sync} every
    [interval].  It bounds how much buffered work a crash can lose:
    anything older than one interval is on the disk. *)

type t

val start : Types.fs -> ?interval:Sim.Time.t -> unit -> t
(** Spawn the daemon ([interval] defaults to 30 s).  It runs for the
    lifetime of the simulation; {!stop} parks it. *)

val stop : t -> unit
(** Stop the daemon.  The pending interval timer is cancelled and the
    daemon woken, so it exits immediately (finishing a pass already in
    progress) instead of sleeping out the rest of the interval. *)

val passes : t -> int
(** Completed sync passes. *)

val flushed_bytes : t -> int
(** Total bytes the daemon's passes put on the disk, measured as the
    device sector-counter delta across each {!Fs.sync} — so it includes
    metadata and (journalled) log writes the pass triggered, which is
    what the "how much does the 30-second sync cost" question wants. *)

val dirty_age_us : t -> Sim.Stats.Summary.t
(** Age of the oldest unflushed dirtying at the start of each pass
    (microseconds): how stale buffered data gets before the daemon
    catches it.  Clean passes contribute no sample. *)

val register_metrics : t -> Sim.Metrics.t -> instance:string -> unit
(** Register a ["syncer"] source exposing [passes], [flushed_bytes] and
    the [dirty_age_us] summary. *)
