(** The update daemon (the classic 30-second sync).

    "The system periodically flushes the cache to avoid file system
    inconsistencies in the event of a system crash or power failure" —
    the paper leans on this when arguing that its write clustering
    (push at each cluster boundary) keeps disk queues smooth, where
    Peacock's flush-on-full-cache produced periodic I/O bursts.

    The daemon is a simulated process that calls {!Fs.sync} every
    [interval].  It bounds how much buffered work a crash can lose:
    anything older than one interval is on the disk. *)

type t

val start : Types.fs -> ?interval:Sim.Time.t -> unit -> t
(** Spawn the daemon ([interval] defaults to 30 s).  It runs for the
    lifetime of the simulation; {!stop} parks it. *)

val stop : t -> unit
(** Stop the daemon.  The pending interval timer is cancelled and the
    daemon woken, so it exits immediately (finishing a pass already in
    progress) instead of sleeping out the rest of the interval. *)

val passes : t -> int
(** Completed sync passes. *)
