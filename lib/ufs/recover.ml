open Types

type report = {
  scan : Jrnl.report;
  frag_runs : int;
  inode_bits : int;
  images : int;
  ind_sets : int;
  dir_patches : int;
  dir_skipped : int;
  orphans : int;
  orphan_frags : int;
  cgs_written : int;
}

let pp ppf r =
  Format.fprintf ppf
    "recover: %d entries, %d records (%d B) replayed; %d log blocks read%s@.  \
     %d frag runs, %d inode bits, %d images, %d indirect sets, %d dir slots \
     patched (%d skipped)@.  %d orphans reaped (%d frags), %d groups rewritten"
    r.scan.Jrnl.entries r.scan.Jrnl.records r.scan.Jrnl.payload_bytes
    r.scan.Jrnl.blocks_read
    (if r.scan.Jrnl.torn then " (torn tail discarded)" else "")
    r.frag_runs r.inode_bits r.images r.ind_sets r.dir_patches r.dir_skipped
    r.orphans r.orphan_frags r.cgs_written

(* All I/O during replay goes through this pair so the same algorithm
   runs untimed (straight off the store, for tests and offline recovery)
   or timed (through the device, for the recovery-time bench). *)
type io = {
  read : frag:int -> len:int -> bytes;
  write : frag:int -> bytes -> unit;
}

let store_io st =
  {
    read =
      (fun ~frag ~len ->
        let b = Bytes.create len in
        Disk.Store.read st ~off:(Layout.frag_to_byte frag) ~len b 0;
        b);
    write =
      (fun ~frag b ->
        Disk.Store.write st ~off:(Layout.frag_to_byte frag)
          ~len:(Bytes.length b) b 0);
  }

let blkdev_io dev =
  {
    read =
      (fun ~frag ~len ->
        let b = Bytes.create len in
        Disk.Blkdev.read_sync dev
          ~sector:(Layout.frag_to_sector frag)
          ~count:(len / Layout.sector_bytes)
          ~buf:b ~buf_off:0;
        b);
    write =
      (fun ~frag b ->
        Disk.Blkdev.write_sync dev
          ~sector:(Layout.frag_to_sector frag)
          ~count:(Bytes.length b / Layout.sector_bytes)
          ~buf:b ~buf_off:0);
  }

(* frags a data block at [lbn] should occupy (fsck's rule, which mirrors
   Bmap.block_frags): only the tail block of a short file is partial *)
let expected_frags ~lbn ~size =
  if
    size <= Layout.ndaddr * Layout.bsize
    && size > 0
    && lbn = (size - 1) / Layout.bsize
    && size mod Layout.bsize <> 0
  then Layout.frags_of_bytes (size mod Layout.bsize)
  else Layout.fpb

let replay io scan =
  let sb = Superblock.decode (io.read ~frag:Layout.sb_frag ~len:Layout.bsize) in
  if sb.Superblock.jfrags = 0 then
    invalid_arg "Recover: file system has no journal";
  let cgs =
    Array.init sb.Superblock.ncg (fun c ->
        Cg.decode (io.read ~frag:(Cg.header_frag sb c) ~len:Layout.bsize) sb c)
  in
  let touched_cgs = Hashtbl.create 8 in
  let touch_cg c = Hashtbl.replace touched_cgs c () in
  (* cache of metadata blocks (inode-area and indirect), block-aligned *)
  let blocks : (int, bytes) Hashtbl.t = Hashtbl.create 64 in
  let dirty : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let get_block frag =
    match Hashtbl.find_opt blocks frag with
    | Some b -> b
    | None ->
        let b = io.read ~frag ~len:Layout.bsize in
        Hashtbl.replace blocks frag b;
        b
  in
  let images : (int, bytes) Hashtbl.t = Hashtbl.create 32 in
  let touched_inums = Hashtbl.create 32 in
  let dirents = ref [] in
  let frag_runs = ref 0
  and inode_bits = ref 0
  and ind_sets = ref 0
  and dir_patches = ref 0
  and dir_skipped = ref 0
  and orphans = ref 0
  and orphan_frags = ref 0 in
  let set_run frag n ~free =
    incr frag_runs;
    let cg = cgs.(Superblock.cg_of_frag sb frag) in
    for i = frag to frag + n - 1 do
      Cg.set_frag cg sb i ~free
    done;
    touch_cg cg.Cg.cgx
  in
  let set_ibit inum ~free =
    incr inode_bits;
    Hashtbl.replace touched_inums inum ();
    let c = Superblock.cg_of_inum sb inum in
    Cg.set_inode cgs.(c) (inum mod sb.Superblock.ipg) ~free;
    touch_cg c
  in
  (* pass 1: apply records in log order.  Everything is absolute, so
     re-running a prefix that already reached the disk is harmless. *)
  let apply r =
    match Wal.decode_record r with
    | Wal.Frag_alloc { frag; n } -> set_run frag n ~free:false
    | Wal.Frag_free { frag; n } -> set_run frag n ~free:true
    | Wal.Inode_alloc { inum; dir = _ } -> set_ibit inum ~free:false
    | Wal.Inode_free { inum } -> set_ibit inum ~free:true
    | Wal.Inode_update { inum; image } ->
        Hashtbl.replace touched_inums inum ();
        Hashtbl.replace images inum image
    | Wal.Ind_set { frag; index; value } ->
        incr ind_sets;
        Codec.put_u32 (get_block frag) (4 * index) value;
        Hashtbl.replace dirty frag ()
    | Wal.Ind_zero { frag } ->
        incr ind_sets;
        Hashtbl.replace blocks frag (Bytes.make Layout.bsize '\000');
        Hashtbl.replace dirty frag ()
    | Wal.Dir_entry { dinum; off; slot } ->
        (* deferred: needs the dinum's final block mapping *)
        dirents := (dinum, off, slot) :: !dirents
    | Wal.Cg_ndirs { cgx; value } ->
        cgs.(cgx).Cg.ndirs <- value;
        touch_cg cgx
  in
  let scan_report = scan ~on_record:apply in
  let dirents = List.rev !dirents in
  (* pass 2: the final image of every logged inode wins *)
  let dinode_patch inum img =
    let frag, byte = Cg.dinode_loc sb inum in
    let bfrag = frag - (frag mod Layout.fpb) in
    let b = get_block bfrag in
    Bytes.blit img 0 b
      (((frag mod Layout.fpb) * Layout.fsize) + byte)
      Layout.dinode_bytes;
    Hashtbl.replace dirty bfrag ()
  in
  Hashtbl.iter dinode_patch images;
  let read_dinode inum =
    match Hashtbl.find_opt images inum with
    | Some img -> Dinode.decode img 0
    | None ->
        let frag, byte = Cg.dinode_loc sb inum in
        let bfrag = frag - (frag mod Layout.fpb) in
        Dinode.decode (get_block bfrag)
          (((frag mod Layout.fpb) * Layout.fsize) + byte)
  in
  (* pass 3: directory slots.  The slot record carries the 64 B entry
     and its file offset; the final inode image resolves the offset to a
     fragment (dir data need not be block-aligned, so the patch is a
     fragment read-modify-write, not a block one). *)
  let map_frag (d : Dinode.t) off =
    let lbn = off / Layout.bsize in
    let ptr =
      if lbn < Layout.ndaddr then d.Dinode.db.(lbn)
      else
        let l = lbn - Layout.ndaddr in
        if l < Layout.nindir then
          if d.Dinode.ib.(0) = 0 then 0
          else Codec.get_u32 (get_block d.Dinode.ib.(0)) (4 * l)
        else
          let l = l - Layout.nindir in
          if d.Dinode.ib.(1) = 0 then 0
          else
            let p =
              Codec.get_u32 (get_block d.Dinode.ib.(1)) (4 * (l / Layout.nindir))
            in
            if p = 0 then 0
            else Codec.get_u32 (get_block p) (4 * (l mod Layout.nindir))
    in
    if ptr = 0 then None
    else
      let byte = off mod Layout.bsize in
      Some (ptr + (byte / Layout.fsize), byte mod Layout.fsize)
  in
  List.iter
    (fun (dinum, off, slot) ->
      match map_frag (read_dinode dinum) off with
      | None ->
          (* mapping never committed: the entry write belongs to the
             torn tail's operation and is correctly lost *)
          incr dir_skipped
      | Some (frag, foff) ->
          let fb = io.read ~frag ~len:Layout.fsize in
          Bytes.blit slot 0 fb foff Wal.dir_entry_size;
          io.write ~frag fb;
          incr dir_patches)
    dirents;
  (* pass 4: orphans.  An unlink commits nlink 0 while the (still open)
     file keeps its storage; the freeing op only commits at last close.
     A crash inside that window leaves an allocated, unreferenced inode:
     reap it exactly as the close would have. *)
  let reap inum (d : Dinode.t) =
    incr orphans;
    let free_run frag n =
      let cg = cgs.(Superblock.cg_of_frag sb frag) in
      for i = frag to frag + n - 1 do
        Cg.set_frag cg sb i ~free:true
      done;
      touch_cg cg.Cg.cgx;
      orphan_frags := !orphan_frags + n
    in
    let data lbn frag =
      if frag <> 0 then free_run frag (expected_frags ~lbn ~size:d.Dinode.size)
    in
    for i = 0 to Layout.ndaddr - 1 do
      data i d.Dinode.db.(i)
    done;
    if d.Dinode.ib.(0) <> 0 then begin
      let b = get_block d.Dinode.ib.(0) in
      for i = 0 to Layout.nindir - 1 do
        data (Layout.ndaddr + i) (Codec.get_u32 b (4 * i))
      done;
      free_run d.Dinode.ib.(0) Layout.fpb
    end;
    if d.Dinode.ib.(1) <> 0 then begin
      let b = get_block d.Dinode.ib.(1) in
      for i = 0 to Layout.nindir - 1 do
        let p = Codec.get_u32 b (4 * i) in
        if p <> 0 then begin
          let bb = get_block p in
          for j = 0 to Layout.nindir - 1 do
            data
              (Layout.ndaddr + Layout.nindir + (i * Layout.nindir) + j)
              (Codec.get_u32 bb (4 * j))
          done;
          free_run p Layout.fpb
        end
      done;
      free_run d.Dinode.ib.(1) Layout.fpb
    end;
    set_ibit inum ~free:true;
    (* directory orphans keep their Cg_ndirs accounting: the rmdir that
       zeroed nlink logged the decrement itself *)
    let img = Bytes.make Layout.dinode_bytes '\000' in
    Dinode.encode (Dinode.empty ()) img 0;
    Hashtbl.replace images inum img;
    dinode_patch inum img
  in
  Hashtbl.iter
    (fun inum () ->
      if inum > rootino then begin
        let d = read_dinode inum in
        if d.Dinode.kind <> Dinode.Free && d.Dinode.nlink = 0 then reap inum d
      end)
    (Hashtbl.copy touched_inums);
  (* pass 5: summaries.  Touched groups get their counts rebuilt from
     the bitmaps (recount leaves ndirs alone — the Cg_ndirs records own
     it); the superblock totals come from all groups. *)
  Hashtbl.iter
    (fun c () ->
      let cg = cgs.(c) in
      let nb, nf, ni = Cg.recount cg sb in
      cg.Cg.nbfree <- nb;
      cg.Cg.nffree <- nf;
      cg.Cg.nifree <- ni)
    touched_cgs;
  let tot f = Array.fold_left (fun a cg -> a + f cg) 0 cgs in
  sb.Superblock.nbfree <- tot (fun cg -> cg.Cg.nbfree);
  sb.Superblock.nffree <- tot (fun cg -> cg.Cg.nffree);
  sb.Superblock.nifree <- tot (fun cg -> cg.Cg.nifree);
  sb.Superblock.ndir <- tot (fun cg -> cg.Cg.ndirs);
  sb.Superblock.clean <- true;
  (* write-back: dirty metadata blocks, touched group headers, then the
     superblock (clean) last *)
  Hashtbl.iter (fun frag () -> io.write ~frag (Hashtbl.find blocks frag)) dirty;
  Hashtbl.iter
    (fun c () ->
      cgs.(c).Cg.dirty <- false;
      io.write ~frag:(Cg.header_frag sb c) (Cg.encode cgs.(c) sb))
    touched_cgs;
  io.write ~frag:Layout.sb_frag (Superblock.encode sb);
  ( sb,
    {
      scan = scan_report;
      frag_runs = !frag_runs;
      inode_bits = !inode_bits;
      images = Hashtbl.length images;
      ind_sets = !ind_sets;
      dir_patches = !dir_patches;
      dir_skipped = !dir_skipped;
      orphans = !orphans;
      orphan_frags = !orphan_frags;
      cgs_written = Hashtbl.length touched_cgs;
    } )

let run_store dev =
  let st = Disk.Blkdev.store dev in
  let sb, r =
    replay (store_io st) (fun ~on_record ->
        let sb =
          Superblock.decode
            ((store_io st).read ~frag:Layout.sb_frag ~len:Layout.bsize)
        in
        Jrnl.scan_store st
          ~off_bytes:(Layout.frag_to_byte sb.Superblock.jstart)
          ~len_bytes:(sb.Superblock.jfrags * Layout.fsize)
          ~on_record)
  in
  Jrnl.format st
    ~off_bytes:(Layout.frag_to_byte sb.Superblock.jstart)
    ~len_bytes:(sb.Superblock.jfrags * Layout.fsize);
  r

let run dev =
  let sb_region =
    let st = Disk.Blkdev.store dev in
    let sb =
      Superblock.decode ((store_io st).read ~frag:Layout.sb_frag ~len:Layout.bsize)
    in
    ( Layout.frag_to_byte sb.Superblock.jstart,
      sb.Superblock.jfrags * Layout.fsize )
  in
  let off_bytes, len_bytes = sb_region in
  let sb, r =
    replay (blkdev_io dev) (fun ~on_record ->
        Jrnl.scan_blkdev dev ~off_bytes ~len_bytes ~on_record)
  in
  ignore sb;
  Jrnl.reset_blkdev dev ~off_bytes ~len_bytes;
  r
