type stats = {
  mutable reads : int;
  mutable read_misses : int;
  mutable writebacks : int;
}

type entry = { frag : int; data : bytes; mutable dirty : bool; mutable lru : int }

type t = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  dev : Disk.Blkdev.t;
  costs : Costs.t;
  capacity : int;
  tbl : (int, entry) Hashtbl.t;
  lock : Sim.Mutex.t;
  mutable clock : int;
  mutable pending_ordered : int;
  ordered_done : Sim.Condition.t;
  mutable write_gate : (int -> (unit -> unit) -> bool) option;
  stats : stats;
}

let create ?(capacity = 64) engine cpu dev costs =
  if capacity <= 0 then invalid_arg "Metabuf.create: capacity";
  {
    engine;
    cpu;
    dev;
    costs;
    capacity;
    tbl = Hashtbl.create 128;
    lock = Sim.Mutex.create engine "metabuf";
    clock = 0;
    pending_ordered = 0;
    ordered_done = Sim.Condition.create engine "metabuf-ordered";
    write_gate = None;
    stats = { reads = 0; read_misses = 0; writebacks = 0 };
  }

let set_write_gate t gate = t.write_gate <- gate

let check_aligned frag =
  if frag mod Layout.fpb <> 0 then
    invalid_arg "Metabuf: fragment address not block-aligned"

let touch t e =
  t.clock <- t.clock + 1;
  e.lru <- t.clock

let do_write t (e : entry) =
  t.stats.writebacks <- t.stats.writebacks + 1;
  Sim.Cpu.charge t.cpu ~label:"meta-io" (t.costs.Costs.driver_submit + t.costs.Costs.intr);
  Disk.Blkdev.write_sync t.dev
    ~sector:(Layout.frag_to_sector e.frag)
    ~count:(Layout.bsize / Layout.sector_bytes)
    ~buf:e.data ~buf_off:0;
  e.dirty <- false

(* Write-ahead gate: a journalled mount interposes here so no metadata
   block reaches its in-place location before the log records covering
   its content are durable.  A [false] return means the block carries an
   open operation's mutations and must stay dirty in the cache. *)
let write_out t (e : entry) =
  match t.write_gate with
  | None ->
      do_write t e;
      true
  | Some gate -> gate e.frag (fun () -> do_write t e)

let evict_if_full t =
  if Hashtbl.length t.tbl >= t.capacity then begin
    let victim =
      match t.write_gate with
      | None ->
          Hashtbl.fold
            (fun _ e acc ->
              match acc with
              | None -> Some e
              | Some b -> if e.lru < b.lru then Some e else acc)
            t.tbl None
      | Some _ ->
          (* journalled: prefer the oldest *clean* victim, so eviction
             rarely forces a log commit; fall back to the oldest dirty
             block only when everything is dirty *)
          let best =
            Hashtbl.fold
              (fun _ e acc ->
                match acc with
                | None -> Some e
                | Some b ->
                    if e.dirty = b.dirty then
                      if e.lru < b.lru then Some e else acc
                    else if b.dirty && not e.dirty then Some e
                    else acc)
              t.tbl None
          in
          best
    in
    match victim with
    | None -> ()
    | Some e ->
        if e.dirty then begin
          (* a refused write (open-op content) leaves the block in the
             cache; capacity is exceeded until the op ends *)
          if write_out t e then Hashtbl.remove t.tbl e.frag
        end
        else Hashtbl.remove t.tbl e.frag
  end

let read t ~frag =
  check_aligned frag;
  Sim.Mutex.with_lock t.lock (fun () ->
      t.stats.reads <- t.stats.reads + 1;
      match Hashtbl.find_opt t.tbl frag with
      | Some e ->
          touch t e;
          e.data
      | None ->
          t.stats.read_misses <- t.stats.read_misses + 1;
          evict_if_full t;
          let data = Bytes.make Layout.bsize '\000' in
          Sim.Cpu.charge t.cpu ~label:"meta-io"
            (t.costs.Costs.driver_submit + t.costs.Costs.intr);
          Disk.Blkdev.read_sync t.dev
            ~sector:(Layout.frag_to_sector frag)
            ~count:(Layout.bsize / Layout.sector_bytes)
            ~buf:data ~buf_off:0;
          let e = { frag; data; dirty = false; lru = 0 } in
          touch t e;
          Hashtbl.replace t.tbl frag e;
          e.data)

let zero t ~frag =
  check_aligned frag;
  Sim.Mutex.with_lock t.lock (fun () ->
      (match Hashtbl.find_opt t.tbl frag with
      | Some _ -> Hashtbl.remove t.tbl frag
      | None -> evict_if_full t);
      let data = Bytes.make Layout.bsize '\000' in
      let e = { frag; data; dirty = true; lru = 0 } in
      touch t e;
      Hashtbl.replace t.tbl frag e;
      e.data)

let mark_dirty t ~frag =
  check_aligned frag;
  match Hashtbl.find_opt t.tbl frag with
  | Some e -> e.dirty <- true
  | None -> invalid_arg "Metabuf.mark_dirty: block not resident"

let flush_block t ~frag =
  check_aligned frag;
  Sim.Mutex.with_lock t.lock (fun () ->
      match Hashtbl.find_opt t.tbl frag with
      | Some e when e.dirty -> ignore (write_out t e)
      | Some _ | None -> ())

(* Asynchronous ordered write-back: snapshot the block, submit with
   B_ORDER, return.  The entry is marked clean now; a later dirtying
   issues another ordered write behind this one, preserving order. *)
let flush_block_ordered t ~frag =
  check_aligned frag;
  match Hashtbl.find_opt t.tbl frag with
  | Some e when e.dirty ->
      t.stats.writebacks <- t.stats.writebacks + 1;
      Sim.Cpu.charge t.cpu ~label:"meta-io"
        (t.costs.Costs.driver_submit + t.costs.Costs.intr);
      e.dirty <- false;
      let buf = Bytes.copy e.data in
      let req =
        Disk.Request.make ~ordered:true ~kind:Disk.Request.Write
          ~sector:(Layout.frag_to_sector frag)
          ~count:(Layout.bsize / Layout.sector_bytes)
          ~buf ~buf_off:0 ()
      in
      t.pending_ordered <- t.pending_ordered + 1;
      Disk.Request.on_complete req (fun () ->
          t.pending_ordered <- t.pending_ordered - 1;
          if t.pending_ordered = 0 then Sim.Condition.broadcast t.ordered_done);
      Disk.Blkdev.submit t.dev req
  | Some _ | None -> ()

let invalidate t ~frag =
  check_aligned frag;
  Sim.Mutex.with_lock t.lock (fun () -> Hashtbl.remove t.tbl frag)

let sync t =
  Sim.Mutex.with_lock t.lock (fun () ->
      let dirty =
        Hashtbl.fold (fun _ e acc -> if e.dirty then e :: acc else acc) t.tbl []
        |> List.sort (fun a b -> compare a.frag b.frag)
      in
      (* refused blocks (open-op content) simply stay dirty; the
         checkpoint path quiesces operations before calling sync *)
      List.iter (fun e -> ignore (write_out t e)) dirty);
  while t.pending_ordered > 0 do
    Sim.Condition.wait t.ordered_done
  done

let drop_clean t =
  Sim.Mutex.with_lock t.lock (fun () ->
      let clean =
        Hashtbl.fold (fun k e acc -> if e.dirty then acc else k :: acc) t.tbl []
      in
      List.iter (Hashtbl.remove t.tbl) clean)

let stats t = t.stats
