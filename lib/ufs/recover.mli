(** Journal replay: crash recovery in O(log size) instead of fsck's
    O(disk).

    The scan ({!Jrnl.scan_store}/{!Jrnl.scan_blkdev}) reads only the
    reserved log region; every surviving record is idempotent, so replay
    simply re-applies them in order:

    + bitmap runs and inode bits straight into the group headers;
    + the {e final} logged image of each inode into its dinode slot;
    + directory slots last, resolved through the final images (the data
      fragment might itself have been allocated by the same operation);
    + an orphan pass reaps allocated inodes with zero link count — the
      unlink-while-open window;
    + touched groups are recounted from their bitmaps, superblock totals
      rebuilt from all groups, and the file system marked clean.

    The log is then reset to empty.  After recovery the image passes
    {!Fsck.check} with no problems and mounts normally. *)

type report = {
  scan : Jrnl.report;  (** what the log-region scan found *)
  frag_runs : int;  (** fragment alloc/free runs applied *)
  inode_bits : int;  (** inode bitmap bits applied *)
  images : int;  (** dinode images written *)
  ind_sets : int;  (** indirect-block pointer records applied *)
  dir_patches : int;  (** directory slots patched in place *)
  dir_skipped : int;  (** slots whose mapping never committed *)
  orphans : int;  (** zero-link inodes reaped *)
  orphan_frags : int;  (** fragments reclaimed from orphans *)
  cgs_written : int;  (** group headers rewritten *)
}

val pp : Format.formatter -> report -> unit

val run : Disk.Blkdev.t -> report
(** Timed replay through the device — must run inside a simulation
    process; this is what the recovery bench measures.  Resets the log
    and marks the file system clean. *)

val run_store : Disk.Blkdev.t -> report
(** Untimed replay straight off the backing store (tests, offline
    recovery).  Same algorithm, same resulting image. *)
