type features = {
  clustering : bool;
  free_behind : bool;
  write_limit : int option;
  bmap_cache : bool;
  small_in_inode : bool;
  getpage_hint : bool;
  skip_bmap_if_no_holes : bool;
  ordered_metadata : bool;
}

let write_limit_default = 240 * 1024

let features_sunos41 =
  {
    clustering = false;
    free_behind = false;
    write_limit = None;
    bmap_cache = false;
    small_in_inode = false;
    getpage_hint = false;
    skip_bmap_if_no_holes = false;
    ordered_metadata = false;
  }

let features_clustered =
  {
    clustering = true;
    free_behind = true;
    write_limit = Some write_limit_default;
    bmap_cache = false;
    small_in_inode = false;
    getpage_hint = false;
    skip_bmap_if_no_holes = false;
    ordered_metadata = false;
  }

type event =
  | Ev_getpage of { off : int; cached : bool }
  | Ev_read_sync of { lbn : int; blocks : int }
  | Ev_read_ahead of { lbn : int; blocks : int }
  | Ev_write_delay of { off : int }
  | Ev_write_push of { off : int; bytes : int; ios : int }
  | Ev_free_behind of { off : int }
  | Ev_pageout_flush of { off : int }

type stats = {
  mutable getpage_calls : int;
  mutable getpage_hits : int;
  mutable pgin_ios : int;
  mutable pgin_blocks : int;
  mutable ra_ios : int;
  mutable ra_blocks : int;
  mutable ra_streams : int;
  mutable ra_stream_hits : int;
  mutable ra_shrinks : int;
  mutable flush_runs : int;
  mutable putpage_calls : int;
  mutable delayed_pages : int;
  mutable push_ios : int;
  mutable push_blocks : int;
  mutable freebehind_pages : int;
  mutable freebehind_suppressed : int;
  mutable ra_used_blocks : int;
  mutable bmap_calls : int;
  mutable bmap_cache_hits : int;
  mutable block_allocs : int;
  mutable frag_allocs : int;
  mutable cg_switches : int;
  mutable wlimit_sleeps : int;
  mutable idata_reads : int;
  mutable oldest_dirty : Sim.Time.t;
      (* when the oldest still-unflushed dirtying happened; -1 = clean.
         The syncer turns it into its dirty-age metric at each pass. *)
  read_call_us : Sim.Stats.Summary.t;
  write_call_us : Sim.Stats.Summary.t;
  pgin_wait_us : Sim.Stats.Summary.t;
  read_io_blocks : Sim.Stats.Hist.t;
  push_io_blocks : Sim.Stats.Hist.t;
}

let mk_stats () =
  {
    getpage_calls = 0;
    getpage_hits = 0;
    pgin_ios = 0;
    pgin_blocks = 0;
    ra_ios = 0;
    ra_blocks = 0;
    ra_streams = 0;
    ra_stream_hits = 0;
    ra_shrinks = 0;
    flush_runs = 0;
    putpage_calls = 0;
    delayed_pages = 0;
    push_ios = 0;
    push_blocks = 0;
    freebehind_pages = 0;
    freebehind_suppressed = 0;
    ra_used_blocks = 0;
    bmap_calls = 0;
    bmap_cache_hits = 0;
    block_allocs = 0;
    frag_allocs = 0;
    cg_switches = 0;
    wlimit_sleeps = 0;
    idata_reads = 0;
    oldest_dirty = -1;
    read_call_us = Sim.Stats.Summary.create ();
    write_call_us = Sim.Stats.Summary.create ();
    pgin_wait_us = Sim.Stats.Summary.create ();
    read_io_blocks = Sim.Stats.Hist.create ();
    push_io_blocks = Sim.Stats.Hist.create ();
  }

(* One sequential-access window: the per-stream generalisation of the
   paper's single nextr/nextrio pair.  s_cbs caps this stream's cluster
   size; max_int means "uncapped" (the file system's cluster size),
   which keeps a reset independent of the mount. *)
type rstream = {
  mutable s_nextr : int;
  mutable s_ra_off : int;
  mutable s_hits : int;
  mutable s_born : int;
  mutable s_stamp : int;
  mutable s_cbs : int;
  mutable s_waste_mark : int;
}

let max_rstreams = 8
let rstream_miss_ttl = 4

let mk_rstream ~nextr ~ra_off ~born ~stamp =
  {
    s_nextr = nextr;
    s_ra_off = ra_off;
    s_hits = 0;
    s_born = born;
    s_stamp = stamp;
    s_cbs = max_int;
    s_waste_mark = -1;
  }

type inode = {
  inum : int;
  mutable kind : Dinode.kind;
  mutable nlink : int;
  mutable size : int;
  mutable blocks : int;
  mutable gen : int;
  db : int array;
  ib : int array;
  mutable immediate : string;
  mutable rstreams : rstream list;
  mutable rs_clock : int;
  mutable rs_misses : int;
  mutable delayoff : int;
  mutable delaylen : int;
  wlimit : Sim.Semaphore.t option;
  mutable outstanding_writes : int;
  iodone : Sim.Condition.t;
  mutable bmap_cache : (int * int * int) option;
  mutable idata : bytes option;
  ilock : Sim.Mutex.t;
  dlock : Sim.Mutex.t;
  mutable vnode : Vfs.Vnode.t option;
  mutable meta_dirty : bool;
  mutable refcnt : int;
}

(* Write-ahead intent-journal state; data only — the operations live in
   the Wal module (above, since it needs inode images).

   The unit of consistency is the *operation* (one namespace update,
   one block allocation, one truncate): records accumulate in an
   op-local buffer and enter the shared open transaction atomically at
   op end, together with the images of every inode the op touched.  The
   engine only context-switches at sleep points, so that hand-off is
   indivisible — no commit can ever capture half an operation. *)
type wal_op = {
  op_id : int;
  mutable op_recs : bytes list;  (* this op's records, newest first *)
  mutable op_inodes : (int * inode) list;  (* touched inodes, deduped *)
  mutable op_pins : int list;  (* frags freed by this op *)
  mutable op_meta : int list;  (* metabuf frags this op made unstable *)
  mutable op_pushes : (inode * int) list;
      (* directory pages dirtied by this op, pushed only after the
         op's transaction commits (write-ahead for the page cache) *)
}

type wal = {
  wj : Jrnl.t;
  w_lock : Sim.Mutex.t;
      (* serialises log commits: a later entry must not become durable
         while an earlier one is still in flight, or a crash would
         discard both at the sequence break after the later entry's
         caller was already told it was durable *)
  w_ckpt_lock : Sim.Mutex.t;  (* one checkpoint at a time *)
  w_ops : (int, wal_op) Hashtbl.t;  (* open operations by id *)
  mutable w_next_op : int;
  w_pinned : (int, int) Hashtbl.t;
      (* frag -> pin count: fragments freed by a not-yet-committed
         free record, barred from reallocation — data writes are
         unlogged and land in place immediately, so reuse before the
         free commits would let a crash resurrect old committed
         metadata pointing at overwritten bytes *)
  mutable w_txn_pins : int list;  (* pins released when the txn commits *)
  w_unstable : (int, int) Hashtbl.t;
      (* metabuf frag -> open-op refs: blocks whose cached content
         includes an unfinished op's mutations; the metabuf pre-write
         hook refuses to write them in place (invariant W1) *)
  w_active : (int, int) Hashtbl.t;
      (* inum -> open-op refs: pageout and putpage skip these inodes'
         pages so a dirty directory page cannot reach the disk before
         its operation's records do *)
  w_idle : Sim.Condition.t;  (* signalled when w_ops drains empty *)
  mutable w_stalled : bool;  (* checkpoint quiesce: new ops wait *)
  w_resume : Sim.Condition.t;
  mutable w_kick : unit -> unit;
      (* set by mount: schedule an asynchronous sync/checkpoint when
         the log runs low (cannot run inline — the committer may hold
         locks the checkpoint needs) *)
  mutable w_push : inode -> int -> unit;
      (* set by mount: asynchronous page push, for op_pushes *)
  mutable w_txns : int;  (* transactions committed *)
  mutable w_barrier_commits : int;  (* forced by in-place meta writes *)
  mutable w_pin_commits : int;  (* forced to unpin frags under ENOSPC *)
  mutable w_ckpt_waits : int;  (* ops delayed by a checkpoint quiesce *)
  mutable w_stall_commits : int;  (* commits delayed by a quiesce *)
}

type fs = {
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  dev : Disk.Blkdev.t;
  pool : Vm.Pool.t;
  sb : Superblock.t;
  cgs : Cg.t array;
  feat : features;
  costs : Costs.t;
  metabuf : Metabuf.t;
  icache : (int, inode) Hashtbl.t;
  alloc_lock : Sim.Mutex.t;
  iget_lock : Sim.Mutex.t;
  resv : (int, int * int) Hashtbl.t;
  stats : stats;
  trace : event Sim.Trace.t;
  mutable wal : wal option;  (** intent journal, when the volume has one *)
}

let reset_rstreams (ip : inode) =
  ip.rs_clock <- 0;
  ip.rs_misses <- 0;
  ip.rstreams <- [ mk_rstream ~nextr:0 ~ra_off:0 ~born:0 ~stamp:0 ]

let mru_rstream (ip : inode) =
  List.fold_left
    (fun best w ->
      match best with
      | Some b when b.s_stamp >= w.s_stamp -> best
      | _ -> Some w)
    None ip.rstreams

let mk_inode fs ~inum (d : Dinode.t) =
  {
    inum;
    kind = d.Dinode.kind;
    nlink = d.Dinode.nlink;
    size = d.Dinode.size;
    blocks = d.Dinode.blocks;
    gen = d.Dinode.gen;
    db = Array.copy d.Dinode.db;
    ib = Array.copy d.Dinode.ib;
    immediate = d.Dinode.immediate;
    rstreams = [ mk_rstream ~nextr:0 ~ra_off:0 ~born:0 ~stamp:0 ];
    rs_clock = 0;
    rs_misses = 0;
    delayoff = 0;
    delaylen = 0;
    wlimit =
      (match fs.feat.write_limit with
      | Some n ->
          Some
            (Sim.Semaphore.create fs.engine
               (Printf.sprintf "wlimit-%d" inum)
               n)
      | None -> None);
    outstanding_writes = 0;
    iodone = Sim.Condition.create fs.engine (Printf.sprintf "iodone-%d" inum);
    bmap_cache = None;
    idata = None;
    ilock = Sim.Mutex.create fs.engine (Printf.sprintf "inode-%d" inum);
    dlock = Sim.Mutex.create fs.engine (Printf.sprintf "dir-%d" inum);
    vnode = None;
    meta_dirty = false;
    refcnt = 0;
  }

let to_dinode (ip : inode) =
  let d = Dinode.empty () in
  d.Dinode.kind <- ip.kind;
  d.Dinode.nlink <- ip.nlink;
  d.Dinode.size <- ip.size;
  d.Dinode.blocks <- ip.blocks;
  d.Dinode.gen <- ip.gen;
  Array.blit ip.db 0 d.Dinode.db 0 Layout.ndaddr;
  Array.blit ip.ib 0 d.Dinode.ib 0 2;
  d.Dinode.immediate <- ip.immediate;
  d

let cluster_bytes fs = fs.sb.Superblock.maxcontig * Layout.bsize
let charge fs ~label d = Sim.Cpu.charge fs.cpu ~label d

let note_dirty fs =
  if fs.stats.oldest_dirty < 0 then
    fs.stats.oldest_dirty <- Sim.Engine.now fs.engine
let rootino = 2
