open Types

let has_holes (ip : inode) =
  ip.blocks * Layout.fsize < ip.size
  && ip.blocks < Layout.frags_of_bytes ip.size

let file_blocks (ip : inode) = Layout.blocks_of_size ip.size

(* Cap a cluster so it never runs past EOF. *)
let cap_blocks ip ~lbn blocks = min blocks (max 0 (file_blocks ip - lbn))

(* Page in [blocks] logical blocks at [lbn]; holes zero-fill.  The bmap
   result for [lbn] is supplied by the caller. *)
let read_extent fs ip ~lbn ~frag_opt ~blocks ~sync ~read_ahead =
  let off = lbn * Layout.bsize in
  match frag_opt with
  | None -> Io.zero_fill fs ip ~off ~blocks
  | Some frag -> Io.page_in fs ip ~off ~frag ~blocks ~sync ~read_ahead

(* Prefetch the cluster starting at block [lbn] (clustered mode),
   bounded by the requesting stream's adaptive cluster size. *)
let prefetch_cluster fs ip ~lbn ~max_blocks =
  let blocks = cap_blocks ip ~lbn 1 in
  if blocks > 0 then begin
    let frag_opt, len = Bmap.read fs ip ~lbn in
    let blocks = cap_blocks ip ~lbn (min len max_blocks) in
    if blocks > 0 then
      read_extent fs ip ~lbn ~frag_opt ~blocks ~sync:false ~read_ahead:true;
    max blocks 1
  end
  else 0

(* One-block read-ahead (classic mode). *)
let prefetch_block fs ip ~lbn =
  if cap_blocks ip ~lbn 1 > 0 then begin
    let id = Io.ident ip (lbn * Layout.bsize) in
    if Vm.Pool.lookup fs.pool id = None then begin
      let frag_opt, _ = Bmap.read fs ip ~lbn in
      read_extent fs ip ~lbn ~frag_opt ~blocks:1 ~sync:false ~read_ahead:true
    end
  end

(* The per-page body: find or page in the page at byte offset [po], then
   run the read-ahead heuristic. *)
let rec handle_page fs (ip : inode) ~po ~hint =
  charge fs ~label:"getpage" fs.costs.Costs.pagecache_lookup;
  let lbn = po / Layout.bsize in
  let w = Rstream.find ip ~po in
  let sequential = w <> None in
  match Vm.Pool.lookup fs.pool (Io.ident ip po) with
  | Some p when p.Vm.Page.busy ->
      (* in transit (read-ahead or pageout): wait and retry *)
      Vm.Page.wait_unbusy fs.engine p;
      handle_page fs ip ~po ~hint
  | Some p when p.Vm.Page.valid ->
      fs.stats.getpage_hits <- fs.stats.getpage_hits + 1;
      Io.consume_prefetch fs p;
      Sim.Trace.emit fs.trace (fun () -> Ev_getpage { off = po; cached = true });
      (* figure 2: bmap is consulted even on a hit, to learn whether the
         page has backing store — unless the UFS_HOLE fast path applies *)
      if not (fs.feat.skip_bmap_if_no_holes && not (has_holes ip)) then
        ignore (Bmap.read fs ip ~lbn);
      after_access fs ip ~po ~w;
      p
  | Some _ | None ->
      Sim.Trace.emit fs.trace (fun () -> Ev_getpage { off = po; cached = false });
      let frag_opt, len = Bmap.read fs ip ~lbn in
      let hint_blocks =
        if fs.feat.getpage_hint then hint / Layout.bsize else 0
      in
      let blocks =
        if fs.feat.clustering && sequential then
          let cap = match w with Some w -> Rstream.cbs_blocks fs w | None -> len in
          cap_blocks ip ~lbn (min len cap)
        else if hint_blocks > 1 then
          (* "random clustering": a large request is its own evidence of
             locality — read min(bmap length, request size) at once *)
          cap_blocks ip ~lbn (min len hint_blocks)
        else cap_blocks ip ~lbn 1
      in
      let blocks = max blocks 1 in
      read_extent fs ip ~lbn ~frag_opt ~blocks ~sync:true ~read_ahead:false;
      after_access fs ip ~po ~w;
      (* the page is now valid (or another process raced us in) *)
      find_ready fs ip ~po ~hint

(* After a synchronous page-in: fetch the page without re-running the
   heuristics (they already ran for this access). *)
and find_ready fs ip ~po ~hint =
  match Vm.Pool.lookup fs.pool (Io.ident ip po) with
  | Some p when p.Vm.Page.busy ->
      Vm.Page.wait_unbusy fs.engine p;
      find_ready fs ip ~po ~hint
  | Some p when p.Vm.Page.valid ->
      Io.consume_prefetch fs p;
      p
  | Some _ | None ->
      (* freed or never entered (raced); start over *)
      handle_page fs ip ~po ~hint

and after_access fs (ip : inode) ~po ~w =
  let sequential = w <> None in
  (* window bookkeeping first: a stream's second hit may boot its
     read-ahead frontier at [po], which the frontier test below then
     sees *)
  (match w with
  | Some w -> Rstream.touch fs ip w ~po
  | None -> Rstream.note_miss fs ip ~po);
  if fs.feat.clustering then begin
    (* figure 6: when the access reaches a stream's read-ahead frontier
       (the start of its last prefetched cluster), prefetch the cluster
       after it *)
    match Rstream.find_ra ip ~po with
    | Some rw ->
        Rstream.adapt fs rw;
        let lbn = po / Layout.bsize in
        let cur_len =
          let _, len = Bmap.read fs ip ~lbn in
          max 1 (cap_blocks ip ~lbn (min len (Rstream.cbs_blocks fs rw)))
        in
        let next_lbn = lbn + cur_len in
        if cap_blocks ip ~lbn:next_lbn 1 > 0 then begin
          ignore
            (prefetch_cluster fs ip ~lbn:next_lbn
               ~max_blocks:(Rstream.cbs_blocks fs rw));
          rw.s_ra_off <- next_lbn * Layout.bsize
        end
    | None -> ()
  end
  else if sequential then
    (* figure 3: one page ahead *)
    prefetch_block fs ip ~lbn:((po / Layout.bsize) + 1)

and getpage fs ip ~off ~len ~hint =
  Sim.Span.span ~name:"ufs.getpage"
    ~attrs:[ ("off", Sim.Span.I off); ("len", Sim.Span.I len) ]
    (fun () -> getpage_body fs ip ~off ~len ~hint)

and getpage_body fs ip ~off ~len ~hint =
  if off mod Layout.bsize <> 0 then invalid_arg "Getpage: unaligned offset";
  fs.stats.getpage_calls <- fs.stats.getpage_calls + 1;
  charge fs ~label:"getpage" fs.costs.Costs.getpage;
  let npages = (len + Layout.bsize - 1) / Layout.bsize in
  let rec loop k acc =
    if k = npages then List.rev acc
    else
      let po = off + (k * Layout.bsize) in
      let p = handle_page fs ip ~po ~hint in
      loop (k + 1) (p :: acc)
  in
  loop 0 []
