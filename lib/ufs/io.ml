open Types

let ident (ip : inode) off : Vm.Page.ident = { Vm.Page.vid = ip.inum; off }

(* Fragments covered by [blocks] logical blocks starting at [lbn0],
   accounting for a fragment-allocated tail. *)
let extent_frags (ip : inode) ~lbn0 ~blocks =
  let last = lbn0 + blocks - 1 in
  ((blocks - 1) * Layout.fpb) + Bmap.block_frags ip ~lbn:last ~size:ip.size

let charge_io fs =
  charge fs ~label:"driver"
    (fs.costs.Costs.driver_submit + fs.costs.Costs.intr)

(* First access to a read-ahead page: the prefetch paid off.  Clearing
   the flag here is what keeps the pool's free-time "wasted" count
   honest. *)
let consume_prefetch fs (p : Vm.Page.t) =
  if p.Vm.Page.prefetched then begin
    fs.stats.ra_used_blocks <- fs.stats.ra_used_blocks + 1;
    Vm.Page.set_prefetched p false
  end

let page_in fs (ip : inode) ~off ~frag ~blocks ~sync ~read_ahead =
  assert (off mod Layout.bsize = 0);
  let lbn0 = off / Layout.bsize in
  let nfrags = extent_frags ip ~lbn0 ~blocks in
  let bytes = nfrags * Layout.fsize in
  (* claim the missing pages *)
  let mine = ref [] in
  for k = 0 to blocks - 1 do
    let id = ident ip (off + (k * Layout.bsize)) in
    match Vm.Pool.lookup fs.pool id with
    | Some _ -> ()
    | None -> (
        match Vm.Pool.alloc fs.pool id with
        | `Fresh p ->
            charge fs ~label:"getpage" fs.costs.Costs.page_setup;
            mine := (p, k) :: !mine
        | `Existing _ -> ())
  done;
  match !mine with
  | [] -> ()
  | mine ->
      let buf = Bytes.create bytes in
      let req =
        Disk.Request.make ~kind:Disk.Request.Read
          ~sector:(Layout.frag_to_sector frag)
          ~count:(nfrags * Layout.sectors_per_frag)
          ~buf ~buf_off:0 ()
      in
      Disk.Request.on_complete req (fun () ->
          List.iter
            (fun ((p : Vm.Page.t), k) ->
              let boff = k * Layout.bsize in
              let n = min Layout.bsize (bytes - boff) in
              Bytes.blit buf boff p.Vm.Page.data 0 n;
              if n < Layout.bsize then
                Bytes.fill p.Vm.Page.data n (Layout.bsize - n) '\000';
              Vm.Page.set_valid p true;
              Vm.Page.unbusy p)
            mine);
      charge_io fs;
      Sim.Stats.Hist.add fs.stats.read_io_blocks blocks;
      if read_ahead then begin
        fs.stats.ra_ios <- fs.stats.ra_ios + 1;
        fs.stats.ra_blocks <- fs.stats.ra_blocks + blocks;
        List.iter (fun ((p : Vm.Page.t), _) -> Vm.Page.set_prefetched p true) mine;
        Sim.Trace.emit fs.trace (fun () ->
            Ev_read_ahead { lbn = lbn0; blocks })
      end
      else begin
        fs.stats.pgin_ios <- fs.stats.pgin_ios + 1;
        fs.stats.pgin_blocks <- fs.stats.pgin_blocks + blocks;
        Sim.Trace.emit fs.trace (fun () -> Ev_read_sync { lbn = lbn0; blocks })
      end;
      Disk.Blkdev.submit fs.dev req;
      if sync then begin
        let t0 = Sim.Engine.now fs.engine in
        Disk.Request.wait fs.engine req;
        Sim.Stats.Summary.add fs.stats.pgin_wait_us
          (float_of_int (Sim.Engine.now fs.engine - t0))
      end

let zero_fill fs (ip : inode) ~off ~blocks =
  for k = 0 to blocks - 1 do
    let id = ident ip (off + (k * Layout.bsize)) in
    match Vm.Pool.lookup fs.pool id with
    | Some _ -> ()
    | None -> (
        match Vm.Pool.alloc fs.pool id with
        | `Fresh p ->
            charge fs ~label:"getpage" fs.costs.Costs.page_setup;
            Bytes.fill p.Vm.Page.data 0 Layout.bsize '\000';
            Vm.Page.set_valid p true;
            Vm.Page.unbusy p
        | `Existing _ -> ())
  done

let push_pages fs (ip : inode) pages ~frag ~off ~sync ~free_after ~throttle
    ~locked ?(ordered = false) () =
  assert (pages <> []);
  assert (off mod Layout.bsize = 0);
  let blocks = List.length pages in
  let lbn0 = off / Layout.bsize in
  let nfrags = extent_frags ip ~lbn0 ~blocks in
  let bytes = nfrags * Layout.fsize in
  if not locked then
    List.iter
      (fun p ->
        let ok = Vm.Page.try_lock p in
        if not ok then invalid_arg "Io.push_pages: page busy")
      pages;
  let buf = Bytes.create bytes in
  List.iteri
    (fun k (p : Vm.Page.t) ->
      let boff = k * Layout.bsize in
      let n = min Layout.bsize (bytes - boff) in
      Bytes.blit p.Vm.Page.data 0 buf boff n)
    pages;
  let throttled =
    match (throttle, ip.wlimit) with
    | true, Some sem ->
        let limit =
          match fs.feat.write_limit with Some l -> l | None -> max_int
        in
        let n = min bytes limit in
        if not (Sim.Semaphore.try_acquire sem ~n ()) then begin
          fs.stats.wlimit_sleeps <- fs.stats.wlimit_sleeps + 1;
          Sim.Semaphore.acquire sem ~n ()
        end;
        Some (sem, n)
    | _ -> None
  in
  ip.outstanding_writes <- ip.outstanding_writes + bytes;
  let req =
    Disk.Request.make ~ordered ~kind:Disk.Request.Write
      ~sector:(Layout.frag_to_sector frag)
      ~count:(nfrags * Layout.sectors_per_frag)
      ~buf ~buf_off:0 ()
  in
  (* Ordered writes carry a snapshot, so the pages can be released right
     away: a re-dirtied page just issues another ordered write that the
     queue keeps behind this one.  Plain writes hold the page busy until
     the I/O lands (writers must not mutate data in flight). *)
  if ordered then
    List.iter
      (fun (p : Vm.Page.t) ->
        Vm.Page.set_dirty p false;
        if free_after then Vm.Pool.free_page fs.pool p else Vm.Page.unbusy p)
      pages;
  Disk.Request.on_complete req (fun () ->
      (match throttled with
      | Some (sem, n) -> Sim.Semaphore.release sem ~n ()
      | None -> ());
      ip.outstanding_writes <- ip.outstanding_writes - bytes;
      if not ordered then
        List.iter
          (fun (p : Vm.Page.t) ->
            Vm.Page.set_dirty p false;
            if free_after then Vm.Pool.free_page fs.pool p
            else Vm.Page.unbusy p)
          pages;
      Sim.Condition.broadcast ip.iodone);
  charge_io fs;
  Sim.Stats.Hist.add fs.stats.push_io_blocks blocks;
  fs.stats.push_ios <- fs.stats.push_ios + 1;
  fs.stats.push_blocks <- fs.stats.push_blocks + blocks;
  if blocks > 1 then fs.stats.flush_runs <- fs.stats.flush_runs + 1;
  Sim.Trace.emit fs.trace (fun () ->
      Ev_write_push { off; bytes = blocks * Layout.bsize; ios = 1 });
  Disk.Blkdev.submit fs.dev req;
  if sync then Disk.Request.wait fs.engine req

let wait_writes fs (ip : inode) =
  let before = Sim.Engine.now fs.engine in
  while ip.outstanding_writes > 0 do
    Sim.Condition.wait ip.iodone
  done;
  let after = Sim.Engine.now fs.engine in
  Sim.Attrib.charge_current "disk.wait" (after - before);
  if after > before then
    Sim.Span.interval ~name:"vm.wait_writes" ~start_us:before ~stop_us:after ()
