(** Per-stream read windows (adaptive readahead v2).

    The paper's single nextr/nextrio pair per file collapses the moment
    two sequential readers interleave.  These helpers manage the small
    per-inode LRU table of {!Types.rstream} windows that replaces it,
    with rules arranged so a single reader — and the random workloads of
    figure 10 — behave exactly as the single pair did. *)

val find : Types.inode -> po:int -> Types.rstream option
(** The window predicting an access at page offset [po] (the
    sequentiality test), preferring established windows. *)

val find_ra : Types.inode -> po:int -> Types.rstream option
(** The window whose read-ahead frontier sits at [po] — the per-stream
    form of the paper's [po = nextrio] trigger. *)

val peek_seq : Types.inode -> po:int -> off:int -> bool
(** Non-mutating sequentiality check for free-behind: does any window
    predict block [po], or has one already advanced past it while the
    reader was inside the block at file offset [off]? *)

val cbs_blocks : Types.fs -> Types.rstream -> int
(** The stream's current cluster size in blocks (>= 1), i.e. its
    adaptive cap bounded by the file system's cluster size. *)

val adapt : Types.fs -> Types.rstream -> unit
(** Feedback sizing at a frontier firing: halve the stream's cluster
    size when the pool's wasted-prefetch count rose since the last
    decision, double it back (up to the file system's cluster size)
    otherwise. *)

val touch : Types.fs -> Types.inode -> Types.rstream -> po:int -> unit
(** Record a prediction match at [po]: advance the window, stamp it
    MRU, and on its second hit boot the read-ahead frontier of a
    mid-file stream. *)

val note_miss : Types.fs -> Types.inode -> po:int -> unit
(** Record an access matching no window: repoint the scratch window
    (or open a new one), pruning stale unestablished windows.  A
    sub-block re-access of a block some window already advanced past is
    recognised and left uncounted. *)
