type t = {
  magic : int;
  nfrags : int;
  ncg : int;
  fpg : int;
  ipg : int;
  minfree_pct : int;
  mutable rotdelay_ms : int;
  mutable maxcontig : int;
  mutable maxbpg : int;
  mutable nbfree : int;
  mutable nffree : int;
  mutable nifree : int;
  mutable ndir : int;
  mutable clean : bool;
  mutable jstart : int;
  mutable jfrags : int;
}

let magic_value = 0x00011954 (* FS_MAGIC, as a tip of the hat *)

let create ~nfrags ~ncg ~fpg ~ipg ?(minfree_pct = 10) ?(rotdelay_ms = 4)
    ?(maxcontig = 1) ?(maxbpg = 256) ?(jstart = 0) ?(jfrags = 0) () =
  if nfrags <= 0 || ncg <= 0 || fpg <= 0 || ipg <= 0 then
    invalid_arg "Superblock.create: bad geometry";
  if ipg mod Layout.inodes_per_block <> 0 then
    invalid_arg "Superblock.create: ipg must be a multiple of inodes per block";
  if fpg mod Layout.fpb <> 0 then
    invalid_arg "Superblock.create: fpg must be block-aligned";
  {
    magic = magic_value;
    nfrags;
    ncg;
    fpg;
    ipg;
    minfree_pct;
    rotdelay_ms;
    maxcontig;
    maxbpg;
    nbfree = 0;
    nffree = 0;
    nifree = 0;
    ndir = 0;
    clean = true;
    jstart;
    jfrags;
  }

let encode t =
  let b = Bytes.make Layout.bsize '\000' in
  Codec.put_u32 b 0 t.magic;
  Codec.put_u64 b 4 t.nfrags;
  Codec.put_u32 b 12 t.ncg;
  Codec.put_u32 b 16 t.fpg;
  Codec.put_u32 b 20 t.ipg;
  Codec.put_u32 b 24 t.minfree_pct;
  Codec.put_u32 b 28 t.rotdelay_ms;
  Codec.put_u32 b 32 t.maxcontig;
  Codec.put_u32 b 36 t.maxbpg;
  Codec.put_u64 b 40 t.nbfree;
  Codec.put_u64 b 48 t.nffree;
  Codec.put_u64 b 56 t.nifree;
  Codec.put_u64 b 64 t.ndir;
  Codec.put_u8 b 72 (if t.clean then 1 else 0);
  (* journal region: zeros when no journal, so non-journaled images are
     byte-identical to pre-journal ones *)
  Codec.put_u32 b 76 t.jstart;
  Codec.put_u32 b 80 t.jfrags;
  b

let decode b =
  let magic = Codec.get_u32 b 0 in
  if magic <> magic_value then
    Vfs.Errno.raise_err Vfs.Errno.EINVAL "superblock: bad magic";
  {
    magic;
    nfrags = Codec.get_u64 b 4;
    ncg = Codec.get_u32 b 12;
    fpg = Codec.get_u32 b 16;
    ipg = Codec.get_u32 b 20;
    minfree_pct = Codec.get_u32 b 24;
    rotdelay_ms = Codec.get_u32 b 28;
    maxcontig = Codec.get_u32 b 32;
    maxbpg = Codec.get_u32 b 36;
    nbfree = Codec.get_u64 b 40;
    nffree = Codec.get_u64 b 48;
    nifree = Codec.get_u64 b 56;
    ndir = Codec.get_u64 b 64;
    clean = Codec.get_u8 b 72 = 1;
    jstart = Codec.get_u32 b 76;
    jfrags = Codec.get_u32 b 80;
  }

let data_frags t =
  (* metadata per group: header block + inode blocks *)
  let inode_frags = t.ipg / Layout.inodes_per_block * Layout.fpb in
  let meta = t.ncg * (Layout.fpb + inode_frags) in
  t.nfrags - meta - Layout.bootblocks_frags

let minfree_frags t = data_frags t * t.minfree_pct / 100
let cg_of_frag t f = f / t.fpg
let cg_of_inum t i = i / t.ipg

let pp ppf t =
  Format.fprintf ppf
    "ufs: %d frags, %d cgs (fpg=%d ipg=%d), rotdelay=%dms maxcontig=%d \
     maxbpg=%d minfree=%d%%, free: %db+%df, %di"
    t.nfrags t.ncg t.fpg t.ipg t.rotdelay_ms t.maxcontig t.maxbpg
    t.minfree_pct t.nbfree t.nffree t.nifree
