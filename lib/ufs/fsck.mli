(** File system consistency check (offline).

    Reads the raw backing store — deliberately {e not} the mounted
    in-memory state — and cross-checks everything the format promises:

    - phase 1: every allocated inode's block pointers are in range,
      inside data areas, and claimed exactly once; the per-inode
      fragment count matches [di_blocks]; file sizes are addressable;
    - phase 2: the directory tree is connected from the root, entries
      point at allocated inodes, "." and ".." are correct;
    - phase 3: link counts match the directory tree;
    - phase 4: fragment bitmaps agree with the usage map built in
      phase 1 (used-but-free and free-but-marked-allocated both
      reported), and the per-group and superblock summary counts match
      recounts;
    - phase 5: the inode bitmaps agree with the dinodes.

    The report lists human-readable problems; an empty list means the
    file system is consistent.  Tests run fsck after every scenario, and
    a corruption-injection suite checks that fsck actually catches each
    class of damage. *)

type report = {
  problems : string list;
  nfiles : int;
  ndirs : int;
  nsymlinks : int;
  used_frags : int;
}

val check : Disk.Blkdev.t -> report
val ok : report -> bool
val pp : Format.formatter -> report -> unit
