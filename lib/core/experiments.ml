type iobench_row = {
  config : string;
  fsr : float;
  fsu : float;
  fsw : float;
  frr : float;
  fru : float;
}

let paper_figure10 =
  [
    { config = "A"; fsr = 1610.; fsu = 1364.; fsw = 1359.; frr = 383.; fru = 452. };
    { config = "B"; fsr = 805.; fsu = 799.; fsw = 790.; frr = 369.; fru = 431. };
    { config = "C"; fsr = 749.; fsu = 783.; fsw = 784.; frr = 366.; fru = 428. };
    { config = "D"; fsr = 749.; fsu = 722.; fsw = 718.; frr = 370.; fru = 545. };
  ]

let run_iobench (config : Config.t) ~file_mb ~random_ops =
  let m = Machine.create config in
  let cfg =
    { Workload.Iobench.default_config with Workload.Iobench.file_mb; random_ops }
  in
  let results = Machine.run m (fun m -> Workload.Iobench.run_all m.Machine.fs cfg) in
  let rate k =
    match
      List.find_opt (fun r -> r.Workload.Iobench.kind = k) results
    with
    | Some r -> r.Workload.Iobench.kb_per_sec
    | None -> nan
  in
  {
    config = config.Config.name;
    fsr = rate Workload.Iobench.FSR;
    fsu = rate Workload.Iobench.FSU;
    fsw = rate Workload.Iobench.FSW;
    frr = rate Workload.Iobench.FRR;
    fru = rate Workload.Iobench.FRU;
  }

let figure10 ?(file_mb = 16) ?(random_ops = 512) () =
  List.map
    (fun c -> run_iobench c ~file_mb ~random_ops)
    Config.all_figure9

let ratio_row ~label (a : iobench_row) (b : iobench_row) =
  {
    config = label;
    fsr = a.fsr /. b.fsr;
    fsu = a.fsu /. b.fsu;
    fsw = a.fsw /. b.fsw;
    frr = a.frr /. b.frr;
    fru = a.fru /. b.fru;
  }

let ratios rows ~base ~others =
  let find name = List.find (fun r -> r.config = name) rows in
  let a = find base in
  List.map
    (fun o -> (base ^ "/" ^ o, ratio_row ~label:(base ^ "/" ^ o) a (find o)))
    others

let cpu_utilization ?(file_mb = 16) () =
  List.map
    (fun (config : Config.t) ->
      let m = Machine.create config in
      Machine.run m (fun m ->
          let fs = m.Machine.fs in
          let cfg =
            { Workload.Iobench.default_config with Workload.Iobench.file_mb }
          in
          Workload.Iobench.prepare fs cfg;
          let r = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR in
          ( config.Config.name,
            r.Workload.Iobench.kb_per_sec,
            float_of_int r.Workload.Iobench.sys_cpu
            /. float_of_int r.Workload.Iobench.elapsed )))
    [ Config.config_a; Config.config_d ]

(* ---------- Figure 12 ---------- *)

type cpu_row = { label : string; sys_cpu_s : float; io_kb_per_sec : float }

let paper_figure12 =
  [
    { label = "4.1.1 UFS, no rotdelays, 16MB mmap read"; sys_cpu_s = 2.6; io_kb_per_sec = nan };
    { label = "4.1 UFS, rotdelays, 16MB mmap read"; sys_cpu_s = 3.4; io_kb_per_sec = nan };
  ]

let mmap_cpu (config : Config.t) ~file_mb =
  let m = Machine.create config in
  Machine.run m (fun m ->
      let fs = m.Machine.fs in
      let cfg =
        { Workload.Iobench.default_config with Workload.Iobench.file_mb }
      in
      Workload.Iobench.prepare fs cfg;
      Workload.Mmap_bench.run fs ~path:cfg.Workload.Iobench.path ~file_mb)

let figure12 ?(file_mb = 16) () =
  let new_ufs = mmap_cpu Config.config_a ~file_mb in
  let old_ufs = mmap_cpu Config.config_d ~file_mb in
  let row label (r : Workload.Mmap_bench.result) =
    {
      label;
      sys_cpu_s = Sim.Time.to_sec_float r.Workload.Mmap_bench.sys_cpu;
      io_kb_per_sec = r.Workload.Mmap_bench.kb_per_sec;
    }
  in
  [
    row "new UFS (A layout), 16MB mmap read" new_ufs;
    row "old UFS (D layout), 16MB mmap read" old_ufs;
  ]

(* ---------- Allocator extents ---------- *)

let allocator_best_case ?(mb = 13) () =
  let m = Machine.create Config.config_a in
  Machine.run m (fun m ->
      Workload.Extents.write_and_measure m.Machine.fs ~path:"/big" ~mb)

(* A small (100 MB) drive so the ageing churn stays cheap. *)
let small_disk_config =
  {
    Config.config_a with
    Config.name = "A/small-disk";
    disk =
      {
        Disk.Device.default_config with
        Disk.Device.geom =
          Disk.Geom.create ~nheads:9 ~zones:[ { Disk.Geom.cyls = 400; spt = 54 } ] ();
      };
  }

let allocator_worst_case () =
  let m = Machine.create small_disk_config in
  Machine.run m (fun m ->
      let fs = m.Machine.fs in
      let rng = Sim.Rng.create ~seed:1991 in
      let opts =
        { Ufs.Ager.defaults with Ufs.Ager.target_util = 0.82; churn_rounds = 3 }
      in
      ignore (Ufs.Ager.age fs ~rng ~opts ());
      (* now squeeze one more large file into what's left *)
      Workload.Extents.write_and_measure fs ~path:"/aged-big" ~mb:16)

(* ---------- I/O patterns ---------- *)

type io_pattern = {
  label : string;
  disk_reads : int;
  disk_writes : int;
  blocks_per_read : float;
  blocks_per_write : float;
}

let io_pattern_of (config : Config.t) ~file_mb =
  let m = Machine.create config in
  Machine.run m (fun m ->
      let fs = m.Machine.fs in
      let cfg =
        { Workload.Iobench.default_config with Workload.Iobench.file_mb }
      in
      ignore (Workload.Iobench.run_phase fs cfg Workload.Iobench.FSW);
      ignore (Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR);
      let s = fs.Ufs.Types.stats in
      let reads = s.Ufs.Types.pgin_ios + s.Ufs.Types.ra_ios in
      let read_blocks = s.Ufs.Types.pgin_blocks + s.Ufs.Types.ra_blocks in
      {
        label = config.Config.name;
        disk_reads = reads;
        disk_writes = s.Ufs.Types.push_ios;
        blocks_per_read =
          (if reads = 0 then 0. else float_of_int read_blocks /. float_of_int reads);
        blocks_per_write =
          (if s.Ufs.Types.push_ios = 0 then 0.
           else
             float_of_int s.Ufs.Types.push_blocks
             /. float_of_int s.Ufs.Types.push_ios);
      })

let io_patterns ?(file_mb = 16) () =
  [
    io_pattern_of Config.config_a ~file_mb;
    io_pattern_of Config.config_d ~file_mb;
  ]

(* ---------- ablations ---------- *)

let seq_rates (config : Config.t) ~file_mb =
  let m = Machine.create config in
  Machine.run m (fun m ->
      let fs = m.Machine.fs in
      let cfg =
        { Workload.Iobench.default_config with Workload.Iobench.file_mb }
      in
      let w = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSW in
      let r = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR in
      (r.Workload.Iobench.kb_per_sec, w.Workload.Iobench.kb_per_sec))

let cluster_size_sweep ?(file_mb = 16)
    ?(sizes_kb = [ 8; 16; 32; 56; 120; 240 ]) () =
  List.map
    (fun kb ->
      let r, w = seq_rates (Config.with_cluster_kb Config.config_a kb) ~file_mb in
      (kb, r, w))
    sizes_kb

let write_limit_sweep ?(file_mb = 16)
    ?(limits =
      [ Some 16384; Some 65536; Some 245760; Some 983040; None ]) () =
  List.map
    (fun limit ->
      (* a large-memory machine, so queue depth is set by the limit
         alone rather than capped by dirty-page back-pressure — this
         isolates the paper's disksort-window argument *)
      let config =
        Config.with_memory_mb (Config.with_write_limit Config.config_a limit) 64
      in
      let label =
        match limit with
        | None -> "unlimited"
        | Some n -> Printf.sprintf "%dKB" (n / 1024)
      in
      let m = Machine.create config in
      let fru, fsw =
        Machine.run m (fun m ->
            let fs = m.Machine.fs in
            let cfg =
              { Workload.Iobench.default_config with Workload.Iobench.file_mb }
            in
            let w = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSW in
            let u = Workload.Iobench.run_phase fs cfg Workload.Iobench.FRU in
            (u.Workload.Iobench.kb_per_sec, w.Workload.Iobench.kb_per_sec))
      in
      (label, fru, fsw))
    limits

let free_behind_ablation ?(file_mb = 16) () =
  List.map
    (fun fb ->
      let config =
        Config.with_name
          (Config.with_free_behind Config.config_a fb)
          (if fb then "free-behind on" else "free-behind off")
      in
      let m = Machine.create config in
      let fsr, scans, freed =
        Machine.run m (fun m ->
            let fs = m.Machine.fs in
            let cfg =
              { Workload.Iobench.default_config with Workload.Iobench.file_mb }
            in
            Workload.Iobench.prepare fs cfg;
            let r = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR in
            let ps = Vm.Pageout.stats m.Machine.pageout in
            ( r.Workload.Iobench.kb_per_sec,
              ps.Vm.Pageout.scans,
              ps.Vm.Pageout.freed ))
      in
      (config.Config.name, fsr, scans, freed))
    [ true; false ]

let rotdelay_tuning ?(file_mb = 16) () =
  List.map
    (fun (label, rd) ->
      let config =
        Config.with_name
          (Config.with_rotdelay Config.config_d rd)
          label
      in
      let r, w = seq_rates config ~file_mb in
      (label, r, w))
    [ ("rotdelay 4ms (stock 4.1)", 4); ("rotdelay 0 (tuned, no clustering)", 0) ]

let driver_clustering_ablation ?(file_mb = 16) () =
  let run (label, config) =
    let m = Machine.create config in
    Machine.run m (fun m ->
        let fs = m.Machine.fs in
        let cfg =
          { Workload.Iobench.default_config with Workload.Iobench.file_mb }
        in
        let w = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSW in
        let r = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR in
        let coalesced = (Disk.Blkdev.stats m.Machine.dev).Disk.Blkdev.coalesced in
        ( label,
          r.Workload.Iobench.kb_per_sec,
          w.Workload.Iobench.kb_per_sec,
          coalesced ))
  in
  List.map run
    [
      ("no clustering (D)", Config.config_d);
      ( "driver clustering (D + rotdelay 0 + coalescing)",
        Config.with_driver_clustering
          (Config.with_rotdelay Config.config_d 0)
          true );
      ("file system clustering (A)", Config.config_a);
    ]

let musbus_comparison () =
  let run (config : Config.t) =
    let m = Machine.create config in
    Machine.run m (fun m ->
        let r = Workload.Musbus.run m.Machine.fs Workload.Musbus.default_config in
        ( config.Config.name,
          r.Workload.Musbus.units_per_sec,
          Sim.Time.to_sec_float r.Workload.Musbus.sys_cpu ))
  in
  [ run Config.config_a; run Config.config_d ]

let border_ablation ?(nfiles = 200) () =
  let run label features =
    let config =
      Config.with_name (Config.with_features Config.config_a features) label
    in
    let m = Machine.create config in
    Machine.run m (fun m ->
        let fs = m.Machine.fs in
        let c = Workload.Metaops.create_many fs ~dir:"/many" ~n:nfiles () in
        let r = Workload.Metaops.remove_all fs ~dir:"/many" in
        ( label,
          (c.Workload.Metaops.ms_per_op, c.Workload.Metaops.ms_per_op_synced),
          (r.Workload.Metaops.ms_per_op, r.Workload.Metaops.ms_per_op_synced) ))
  in
  [
    run "synchronous metadata (stock UFS)" Ufs.Types.features_clustered;
    run "B_ORDER: async ordered metadata"
      { Ufs.Types.features_clustered with Ufs.Types.ordered_metadata = true };
  ]

let extent_fs_comparison ?(file_mb = 16) ?(extent_sizes_kb = [ 8; 56; 120; 1024 ])
    () =
  let efs_run extent_kb =
    let engine = Sim.Engine.create () in
    let cpu = Sim.Cpu.create engine in
    let pool = Vm.Pool.create engine (Vm.Param.default ~memory_mb:8 ()) in
    let _daemon = Vm.Pageout.start pool cpu in
    let dev =
      Disk.Blkdev.of_device
        (Disk.Device.create engine Disk.Device.default_config)
    in
    let efs = Efs.create engine cpu pool dev ~extent_kb () in
    (match Machine.current_metrics_sink () with
    | Some reg ->
        let instance = Printf.sprintf "efs-%dk" extent_kb in
        Efs.register_metrics efs reg ~instance;
        Vm.Pool.register_metrics pool reg ~instance
    | None -> ());
    let result = ref None in
    Sim.Engine.spawn engine (fun () ->
        let f = Efs.creat efs "bench" in
        let total = file_mb * 1024 * 1024 in
        let buf = Bytes.make Ufs.Layout.bsize 'e' in
        let t0 = Sim.Engine.now engine in
        let rec wloop off =
          if off < total then begin
            Efs.write efs f ~off ~buf ~len:Ufs.Layout.bsize;
            wloop (off + Ufs.Layout.bsize)
          end
        in
        wloop 0;
        Efs.fsync efs f;
        let wtime = Sim.Engine.now engine - t0 in
        Efs.reset_readahead efs f;
        let t1 = Sim.Engine.now engine in
        let rec rloop off =
          if off < total then begin
            ignore (Efs.read efs f ~off ~buf ~len:Ufs.Layout.bsize);
            rloop (off + Ufs.Layout.bsize)
          end
        in
        rloop 0;
        let rtime = Sim.Engine.now engine - t1 in
        let kb = float_of_int (total / 1024) in
        result :=
          Some
            ( kb /. Sim.Time.to_sec_float rtime,
              kb /. Sim.Time.to_sec_float wtime ));
    Sim.Engine.run engine;
    Option.get !result
  in
  let efs_rows =
    List.map
      (fun kb ->
        let r, w = efs_run kb in
        (Printf.sprintf "extent FS, %dKB extents" kb, r, w))
      extent_sizes_kb
  in
  let ufs_row (config : Config.t) label =
    let m = Machine.create config in
    let r, w =
      Machine.run m (fun m ->
          let fs = m.Machine.fs in
          let cfg =
            { Workload.Iobench.default_config with Workload.Iobench.file_mb }
          in
          let w = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSW in
          let r = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR in
          (r.Workload.Iobench.kb_per_sec, w.Workload.Iobench.kb_per_sec))
    in
    (label, r, w)
  in
  efs_rows
  @ [
      ufs_row Config.config_a "clustered UFS (A, 120KB clusters)";
      ufs_row Config.config_d "old UFS (D)";
    ]

let request_size_sweep ?(file_mb = 8) ?(sizes_kb = [ 1; 2; 4; 8; 16; 32; 64 ])
    () =
  List.map
    (fun kb ->
      let m = Machine.create Config.config_a in
      Machine.run m (fun m ->
          let fs = m.Machine.fs in
          let cfg =
            { Workload.Iobench.default_config with Workload.Iobench.file_mb }
          in
          Workload.Iobench.prepare fs cfg;
          let ip = Ufs.Fs.namei fs cfg.Workload.Iobench.path in
          let engine = m.Machine.engine in
          let req = kb * 1024 in
          let buf = Bytes.create req in
          let total = file_mb * 1024 * 1024 in
          let t0 = Sim.Engine.now engine in
          let c0 = Sim.Cpu.sys_time m.Machine.cpu in
          let rec loop off =
            if off < total then begin
              ignore (Ufs.Fs.read fs ip ~off ~buf ~len:req);
              loop (off + req)
            end
          in
          loop 0;
          let dt = Sim.Engine.now engine - t0 in
          let cpu = Sim.Cpu.sys_time m.Machine.cpu - c0 in
          Ufs.Iops.iput fs ip;
          ( kb,
            float_of_int (total / 1024) /. Sim.Time.to_sec_float dt,
            Sim.Time.to_sec_float cpu /. float_of_int file_mb )))
    sizes_kb

(* a small three-zone drive: 72/54/40 sectors per track *)
let zoned_geom =
  (* a wider track skew, sized for the fastest (outer) zone's switch
     time: 1 ms at 72 sectors/track is ~5.2 sectors *)
  Disk.Geom.create ~rpm:4316 ~nheads:6 ~track_skew:6 ~cyl_skew:16
    ~zones:
      [
        { Disk.Geom.cyls = 120; spt = 72 };
        { Disk.Geom.cyls = 140; spt = 54 };
        { Disk.Geom.cyls = 120; spt = 40 };
      ]
    ()

let zoned_disk ?(file_mb = 8) () =
  let config =
    {
      Config.config_a with
      Config.name = "A/zoned";
      disk = { Disk.Device.default_config with Disk.Device.geom = zoned_geom };
      mkfs =
        {
          Config.config_a.Config.mkfs with
          Ufs.Fs.fpg = 4096;
          ipg = 512;
          (* a small reserve, so the filler can push the test file all
             the way into the innermost zone *)
          minfree_pct = 2;
        };
    }
  in
  let m = Machine.create config in
  Machine.run m (fun m ->
      let fs = m.Machine.fs in
      let dev = m.Machine.dev in
      let engine = m.Machine.engine in
      (* raw media rate per zone: stream 2 MB off the device at each
         zone's start *)
      let raw_rate sector =
        let count = 4096 (* 2 MB in sectors *) in
        let buf = Bytes.create (count * 512) in
        let t0 = Sim.Engine.now engine in
        Disk.Blkdev.read_sync dev ~sector ~count ~buf ~buf_off:0;
        float_of_int (count * 512 / 1024) /. Sim.Time.to_sec_float (Sim.Engine.now engine - t0)
      in
      let z0 = raw_rate 0 in
      let z1 = raw_rate (120 * 6 * 72) in
      let z2 = raw_rate ((120 * 6 * 72) + (140 * 6 * 54)) in
      (* FSR of a file in the outer zone (fresh fs allocates low) *)
      let bench file =
        let cfg =
          { Workload.Iobench.default_config with Workload.Iobench.file_mb;
            path = file }
        in
        let ip = Ufs.Fs.creat fs file in
        let buf = Bytes.make Ufs.Layout.bsize 'z' in
        for i = 0 to (file_mb * 128) - 1 do
          Ufs.Fs.write fs ip ~off:(i * Ufs.Layout.bsize) ~buf ~len:Ufs.Layout.bsize
        done;
        Ufs.Fs.fsync fs ip;
        Ufs.Iops.iput fs ip;
        (Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR)
          .Workload.Iobench.kb_per_sec
      in
      let outer = bench "/outer" in
      (* consume the outer zones so the next file lands in the inner one *)
      let filler = Ufs.Fs.creat fs "/filler" in
      let buf = Bytes.make Ufs.Layout.bsize 'f' in
      (* leave room for the inner-zone test file (plus slack) above the
         minfree reserve *)
      let keep_frags = (file_mb + 1) * 1024 in
      (try
         let i = ref 0 in
         while
           Ufs.Alloc.total_free_frags fs
           - Ufs.Superblock.minfree_frags fs.Ufs.Types.sb
           > keep_frags
         do
           Ufs.Fs.write fs filler ~off:(!i * Ufs.Layout.bsize) ~buf
             ~len:Ufs.Layout.bsize;
           incr i
         done
       with Vfs.Errno.Error (Vfs.Errno.ENOSPC, _) -> ());
      Ufs.Fs.fsync fs filler;
      Ufs.Iops.iput fs filler;
      let inner = bench "/inner" in
      [
        ("raw media rate, outer zone (72 spt)", z0);
        ("raw media rate, middle zone (54 spt)", z1);
        ("raw media rate, inner zone (40 spt)", z2);
        ("FSR, file in outer zone", outer);
        ("FSR, file in inner zone", inner);
      ])

let future_work_ablation ?(file_mb = 16) () =
  let mmap_cpu_with label features =
    let config =
      Config.with_name (Config.with_features Config.config_a features) label
    in
    let r = mmap_cpu config ~file_mb in
    (label, Sim.Time.to_sec_float r.Workload.Mmap_bench.sys_cpu)
  in
  let base = Ufs.Types.features_clustered in
  let random_big_reads label features =
    (* 24 KB random reads: the paper's "random clustering" example *)
    let config =
      Config.with_name (Config.with_features Config.config_a features) label
    in
    let m = Machine.create config in
    let kbps =
      Machine.run m (fun m ->
          let fs = m.Machine.fs in
          let cfg =
            { Workload.Iobench.default_config with Workload.Iobench.file_mb }
          in
          Workload.Iobench.prepare fs cfg;
          let ip = Ufs.Fs.namei fs "/iobench" in
          let rng = Sim.Rng.create ~seed:3 in
          let req = 24 * 1024 in
          let buf = Bytes.create req in
          let span = (file_mb * 1024 * 1024 / req) - 1 in
          let t0 = Sim.Engine.now m.Machine.engine in
          let ops = 256 in
          for _ = 1 to ops do
            let off = Sim.Rng.int rng span * req in
            ignore (Ufs.Fs.read fs ip ~off ~buf ~len:req)
          done;
          Ufs.Iops.iput fs ip;
          let dt = Sim.Engine.now m.Machine.engine - t0 in
          float_of_int (ops * req) /. 1024. /. Sim.Time.to_sec_float dt)
    in
    (label, kbps)
  in
  [
    mmap_cpu_with "mmap CPU s: baseline clustered" base;
    mmap_cpu_with "mmap CPU s: + bmap cache"
      { base with Ufs.Types.bmap_cache = true };
    mmap_cpu_with "mmap CPU s: + UFS_HOLE bmap skip"
      { base with Ufs.Types.skip_bmap_if_no_holes = true };
    random_big_reads "24KB random read KB/s: no hint" base;
    random_big_reads "24KB random read KB/s: + getpage hint"
      { base with Ufs.Types.getpage_hint = true };
  ]

(* ---- volume manager (striping / mirroring) ---- *)

(* Start a file cold, as Iobench does between phases: drain its dirty
   pages, drop them from the pool and reset the read predictor. *)
let chill_file (fs : Ufs.Types.fs) (ip : Ufs.Types.inode) =
  Ufs.Putpage.push_delayed fs ip ~sync:true ();
  Ufs.Io.wait_writes fs ip;
  Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
  Ufs.Types.reset_rstreams ip;
  ip.Ufs.Types.bmap_cache <- None

let vol_stripe_sweep ?(file_mb = 8) ?(disk_counts = [ 1; 2; 4 ])
    ?(stripe_kbs = [ 8; 32; 128 ]) () =
  let row base disks stripe_kb =
    let config = Config.with_vol base ~layout:Vol.Stripe ~stripe_kb disks in
    let m = Machine.create config in
    Machine.run m (fun m ->
        let fs = m.Machine.fs in
        let cfg =
          { Workload.Iobench.default_config with Workload.Iobench.file_mb }
        in
        let w = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSW in
        let r = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR in
        ( base.Config.name,
          disks,
          stripe_kb,
          r.Workload.Iobench.kb_per_sec,
          w.Workload.Iobench.kb_per_sec ))
  in
  List.concat_map
    (fun base ->
      List.concat_map
        (fun disks ->
          if disks = 1 then
            (* stripe unit is moot on one disk: a single baseline row *)
            [ row base 1 (List.hd stripe_kbs) ]
          else List.map (row base disks) stripe_kbs)
        disk_counts)
    [ Config.config_a; Config.config_d ]

(* [readers] simulated processes each streaming a private file; the
   aggregate rate is what mirror read balancing (and its degraded-mode
   collapse) shows that a single-threaded FSR cannot: with one
   outstanding read there is nothing to send to the second copy. *)
let concurrent_read_kbps (m : Machine.t) ~readers ~file_mb =
  let fs = m.Machine.fs in
  let engine = m.Machine.engine in
  let bsize = Ufs.Layout.bsize in
  let per_file = file_mb * 1024 * 1024 in
  let files = List.init readers (Printf.sprintf "/reader%d") in
  let buf = Bytes.make bsize 'm' in
  List.iter
    (fun path ->
      let ip = Ufs.Fs.creat fs path in
      let rec wloop off =
        if off < per_file then begin
          Ufs.Fs.write fs ip ~off ~buf ~len:bsize;
          wloop (off + bsize)
        end
      in
      wloop 0;
      Ufs.Fs.fsync fs ip;
      chill_file fs ip;
      Ufs.Iops.iput fs ip)
    files;
  let done_cond = Sim.Condition.create engine "readers-done" in
  let remaining = ref readers in
  let t0 = Sim.Engine.now engine in
  List.iter
    (fun path ->
      Sim.Engine.spawn engine ~name:path (fun () ->
          let ip = Ufs.Fs.namei fs path in
          let rbuf = Bytes.create bsize in
          let rec rloop off =
            if off < per_file then begin
              ignore (Ufs.Fs.read fs ip ~off ~buf:rbuf ~len:bsize);
              rloop (off + bsize)
            end
          in
          rloop 0;
          Ufs.Iops.iput fs ip;
          decr remaining;
          if !remaining = 0 then Sim.Condition.broadcast done_cond))
    files;
  while !remaining > 0 do
    Sim.Condition.wait done_cond
  done;
  let dt = Sim.Engine.now engine - t0 in
  float_of_int (readers * per_file / 1024) /. Sim.Time.to_sec_float dt

let seq_write_kbps (m : Machine.t) ~path ~file_mb =
  let fs = m.Machine.fs in
  let engine = m.Machine.engine in
  let bsize = Ufs.Layout.bsize in
  let total = file_mb * 1024 * 1024 in
  let buf = Bytes.make bsize 'w' in
  let ip = Ufs.Fs.creat fs path in
  let t0 = Sim.Engine.now engine in
  let rec wloop off =
    if off < total then begin
      Ufs.Fs.write fs ip ~off ~buf ~len:bsize;
      wloop (off + bsize)
    end
  in
  wloop 0;
  Ufs.Fs.fsync fs ip;
  let dt = Sim.Engine.now engine - t0 in
  Ufs.Iops.iput fs ip;
  float_of_int (total / 1024) /. Sim.Time.to_sec_float dt

let vol_mirror ?(file_mb = 4) ?(readers = 4) () =
  let scenario label config ~degrade =
    let m = Machine.create config in
    Machine.run m (fun m ->
        let w_healthy = seq_write_kbps m ~path:"/wr" ~file_mb in
        (match (degrade, m.Machine.vol) with
        | true, Some v -> Vol.fail_member v 1
        | true, None -> invalid_arg "vol_mirror: cannot degrade a bare disk"
        | false, _ -> ());
        let r = concurrent_read_kbps m ~readers ~file_mb in
        let w, dropped =
          if degrade then
            let w = seq_write_kbps m ~path:"/wr2" ~file_mb in
            let d =
              match m.Machine.vol with
              | Some v -> Array.fold_left ( + ) 0 (Vol.dropped_writes v)
              | None -> 0
            in
            (w, d)
          else (w_healthy, 0)
        in
        (label, r, w, dropped))
  in
  let mirror n = Config.with_vol Config.config_a ~layout:Vol.Mirror n in
  [
    scenario "1 disk" Config.config_a ~degrade:false;
    scenario "mirror×2" (mirror 2) ~degrade:false;
    scenario "mirror×3" (mirror 3) ~degrade:false;
    scenario "mirror×2 degraded" (mirror 2) ~degrade:true;
  ]

(* ---------- NFS: the clustered UFS served over the wire ---------- *)

type nfs_row = {
  nfs_config : string;
  local_fsr : float;
  remote_fsr : float;
  local_fsw : float;
  remote_fsw : float;
  remote_ra_issued : int;
  read_rpcs : int;
  write_rpcs : int;
}

let nfs_local_pair (config : Config.t) ~file_mb =
  let m = Machine.create config in
  let cfg = { Workload.Iobench.default_config with Workload.Iobench.file_mb } in
  Machine.run m (fun m ->
      let fs = m.Machine.fs in
      let w = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSW in
      let r = Workload.Iobench.run_phase fs cfg Workload.Iobench.FSR in
      (r.Workload.Iobench.kb_per_sec, w.Workload.Iobench.kb_per_sec))

(* Drop a file from the *server's* page cache: push its delayed writes,
   invalidate its pages, reset its read-ahead state.  A remote write
   phase leaves the whole file in server RAM; without this a following
   remote read streams from server memory while the local baseline
   reads cold from disk, and "remote vs local" measures cache warmth
   instead of wire cost. *)
let cool_server_file ?(server = 0) t path =
  Topology.run t (fun t ->
      let fs = t.Topology.servers.(server).Machine.fs in
      let ip = Ufs.Fs.namei fs path in
      Workload.Iobench.reset_file_state fs ip;
      Ufs.Iops.iput fs ip)

let nfs_remote_pair (config : Config.t) ~file_mb ~net =
  let t = Topology.create ~net ~clients:1 config in
  let cfg = { Workload.Iobench.default_config with Workload.Iobench.file_mb } in
  let engine = Topology.engine t in
  let w_out = ref 0. in
  Topology.run_clients t (fun c ->
      let w =
        Workload.Remote_iobench.run_phase ~engine ~cpu:c.Topology.cpu
          c.Topology.mount cfg Workload.Iobench.FSW
      in
      w_out := w.Workload.Iobench.kb_per_sec);
  cool_server_file t cfg.Workload.Iobench.path;
  let out = ref (0., 0., 0, 0, 0) in
  Topology.run_clients t (fun c ->
      let r =
        Workload.Remote_iobench.run_phase ~engine ~cpu:c.Topology.cpu
          c.Topology.mount cfg Workload.Iobench.FSR
      in
      let st = Nfs.Client.stats c.Topology.mount in
      out :=
        ( r.Workload.Iobench.kb_per_sec,
          !w_out,
          st.Nfs.Client.ra_issued,
          Nfs.Rpc.op_calls c.Topology.rpc "read",
          Nfs.Rpc.op_calls c.Topology.rpc "write" ));
  !out

let nfs_local_vs_remote ?(file_mb = 8) ?(configs = Config.all_figure9)
    ?(net = Net.default_config) () =
  List.map
    (fun (config : Config.t) ->
      let lr, lw = nfs_local_pair config ~file_mb in
      let rr, rw, ra, reads, writes =
        nfs_remote_pair
          (Config.with_name config (config.Config.name ^ ".nfs"))
          ~file_mb ~net
      in
      {
        nfs_config = config.Config.name;
        local_fsr = lr;
        remote_fsr = rr;
        local_fsw = lw;
        remote_fsw = rw;
        remote_ra_issued = ra;
        read_rpcs = reads;
        write_rpcs = writes;
      })
    configs

type nfs_scale_row = {
  sc_clients : int;
  sc_nfsd : int;
  sc_bandwidth_mb : float;
  aggregate_kb_per_sec : float;
  per_client_kb_per_sec : float;
  sc_retransmits : int;
  server_queue_wait_ms : float;
  sc_dup_evictions : int;
}

(* A shared-Ethernet-class client link (1991: 10 Mbit/s Ethernet shared
   among the machine room) — slower than the server's disk, so a single
   client is link-limited and aggregate throughput climbs with the
   client count until the disk saturates.  On the default fast link one
   streaming client already saturates the disk and more clients only
   add seek interference. *)
let nfs_scale_net = { Net.default_config with Net.bandwidth = 600_000 }

let nfs_scaling ?(file_mb = 2) ?(nfsd = 4) ?(net = nfs_scale_net)
    ?(config = Config.config_a) ~clients () =
  let config =
    Config.with_name config
      (Printf.sprintf "%s.n%d.d%d.bw%dk" config.Config.name clients nfsd
         (net.Net.bandwidth / 1024))
  in
  (* under saturation the server queue can exceed the default 1.1 s
     retransmission timeout; a congested-server mount runs with timeo
     raised so queueing is not mistaken for loss *)
  let t =
    Topology.create ~net ~nfsd ~rpc_timeout:(Sim.Time.ms 4000) ~clients config
  in
  let engine = Topology.engine t in
  let scale_cfg id =
    {
      Workload.Iobench.default_config with
      Workload.Iobench.file_mb;
      path = Printf.sprintf "/scale%d" id;
    }
  in
  Topology.run_clients t (fun c ->
      Workload.Remote_iobench.prepare c.Topology.mount
        (scale_cfg c.Topology.id));
  for id = 0 to clients - 1 do
    cool_server_file t (scale_cfg id).Workload.Iobench.path
  done;
  (* all streams spawn at the same instant, so the timed window holds
     exactly [clients] concurrent readers against a cold server *)
  let t_start = Sim.Engine.now engine in
  let finishes = Array.make clients Sim.Time.zero in
  let bytes = Array.make clients 0 in
  Topology.run_clients t (fun c ->
      let id = c.Topology.id in
      let r =
        Workload.Remote_iobench.run_phase ~engine ~cpu:c.Topology.cpu
          c.Topology.mount (scale_cfg id) Workload.Iobench.FSR
      in
      bytes.(id) <- r.Workload.Iobench.bytes_moved;
      finishes.(id) <- Sim.Engine.now engine);
  let total_bytes = Array.fold_left ( + ) 0 bytes in
  let wall = Array.fold_left max Sim.Time.zero finishes - t_start in
  let aggregate =
    if wall = 0 then 0.
    else float_of_int total_bytes /. 1024. /. Sim.Time.to_sec_float wall
  in
  let retrans =
    Array.fold_left
      (fun acc c -> acc + (Nfs.Rpc.stats c.Topology.rpc).Nfs.Rpc.retransmits)
      0 t.Topology.clients
  in
  {
    sc_clients = clients;
    sc_nfsd = nfsd;
    sc_bandwidth_mb = float_of_int net.Net.bandwidth /. 1024. /. 1024.;
    aggregate_kb_per_sec = aggregate;
    per_client_kb_per_sec = aggregate /. float_of_int clients;
    sc_retransmits = retrans;
    server_queue_wait_ms =
      Sim.Stats.Summary.mean
        (Nfs.Server.stats t.Topology.service).Nfs.Server.queue_wait_us
      /. 1000.;
    sc_dup_evictions =
      (Nfs.Server.stats t.Topology.service).Nfs.Server.dup_evictions;
  }


(* ---------- fleet scale: M servers x N clients ---------- *)

let transport_name = function
  | Nfs.Rpc.Fixed -> "fixed"
  | Nfs.Rpc.Adaptive -> "adaptive"

let topology_name = function
  | Topology.Point_to_point -> "p2p"
  | Topology.Shared_medium -> "shared"
  | Topology.Switched -> "switched"

type fleet_row = {
  fl_clients : int;
  fl_servers : int;
  fl_topology : string;
  fl_aggregate_kb_per_sec : float;
  fl_per_client_kb_per_sec : float;
  fl_retransmits : int;
  fl_server_queue_ms : float;  (* worst server: mean nfsd queue wait *)
  fl_server_cpu_util : float;  (* worst server: CPU busy / window *)
  fl_disk_util : float;  (* worst server: disk busy / window *)
  fl_port_util : float;  (* worst server port or medium utilization *)
  fl_switch_drops : int;  (* output-buffer tail drops *)
  fl_occ_hwm : int;  (* worst output-buffer occupancy seen *)
  fl_dup_evictions : int;
  fl_bottleneck : string;  (* the binding resource at this scale *)
}

(* One rung of the bottleneck ladder: [clients] streaming readers over
   [servers] servers, files spread by {!Topology.server_of_path}.  The
   per-client file is deliberately small (1 MB): the point is where
   {e aggregate} goodput stops scaling, not per-stream behaviour, and a
   1024-client rung has to fit in CI.  Utilizations are measured over
   the concurrent-read window only (prepare traffic excluded), each as
   busy-time delta over window wall time; the bottleneck label names the
   most-utilized resource, or the switch when it dropped frames. *)
let nfs_fleet ?(file_mb = 1) ?(nfsd = 4) ?(net = Net.default_config)
    ?(topology = Topology.Switched) ?(transport = Nfs.Rpc.Adaptive)
    ?ports_buffer ?(config = Config.config_a) ~servers ~clients () =
  let config =
    Config.with_name config
      (Printf.sprintf "%s.fleet.%s.n%d.m%d" config.Config.name
         (topology_name topology) clients servers)
  in
  let t =
    Topology.create ~net ~nfsd ~topology ~transport ?ports_buffer
      ~rpc_timeout:(Sim.Time.ms 4000) ~servers ~register_clients:false
      ~clients config
  in
  let engine = Topology.engine t in
  let fleet_cfg id =
    {
      Workload.Iobench.default_config with
      Workload.Iobench.file_mb;
      path = Printf.sprintf "/fleet%d" id;
    }
  in
  Topology.run_clients t (fun c ->
      let cfg = fleet_cfg c.Topology.id in
      Workload.Remote_iobench.prepare
        (Topology.shard t c cfg.Workload.Iobench.path)
        cfg);
  for id = 0 to clients - 1 do
    let path = (fleet_cfg id).Workload.Iobench.path in
    cool_server_file ~server:(Topology.server_of_path t path) t path
  done;
  (* snapshot the busy counters, then hold [clients] concurrent readers
     against cold servers and measure over the max-finish window *)
  let t_start = Sim.Engine.now engine in
  let cpu0 =
    Array.map (fun m -> Sim.Cpu.sys_time m.Machine.cpu) t.Topology.servers
  in
  let disk_busy m =
    Array.fold_left
      (fun acc d -> acc + (Disk.Device.stats d).Disk.Device.busy)
      0 m.Machine.disks
  in
  let disk0 = Array.map disk_busy t.Topology.servers in
  let port_busy p =
    let st = Net.Switch.port_stats p in
    max st.Net.Switch.up_busy_us st.Net.Switch.down_busy_us
  in
  let port0 =
    match t.Topology.srv_ports with
    | Some ports -> Array.map port_busy ports
    | None -> [||]
  in
  let finishes = Array.make clients Sim.Time.zero in
  let bytes = Array.make clients 0 in
  Topology.run_clients t (fun c ->
      let id = c.Topology.id in
      let cfg = fleet_cfg id in
      let r =
        Workload.Remote_iobench.run_phase ~engine ~cpu:c.Topology.cpu
          (Topology.shard t c cfg.Workload.Iobench.path)
          cfg Workload.Iobench.FSR
      in
      bytes.(id) <- r.Workload.Iobench.bytes_moved;
      finishes.(id) <- Sim.Engine.now engine);
  let total_bytes = Array.fold_left ( + ) 0 bytes in
  let wall = Array.fold_left max Sim.Time.zero finishes - t_start in
  let aggregate =
    if wall = 0 then 0.
    else float_of_int total_bytes /. 1024. /. Sim.Time.to_sec_float wall
  in
  let fwall = float_of_int (max 1 wall) in
  let util_over f base =
    Array.mapi (fun i m -> float_of_int (f m - base.(i)) /. fwall)
      t.Topology.servers
    |> Array.fold_left max 0.
  in
  let cpu_util =
    util_over (fun m -> Sim.Cpu.sys_time m.Machine.cpu) cpu0
  in
  let disk_util = util_over disk_busy disk0 in
  let port_util =
    match t.Topology.srv_ports with
    | Some ports ->
        Array.mapi
          (fun i p -> float_of_int (port_busy p - port0.(i)) /. fwall)
          ports
        |> Array.fold_left max 0.
    | None -> (
        match Topology.medium t with
        | Some m -> Net.Medium.utilization m
        | None -> 0.)
  in
  let retrans =
    Array.fold_left
      (fun acc c ->
        Array.fold_left
          (fun acc m ->
            acc + (Nfs.Rpc.stats m.Topology.m_rpc).Nfs.Rpc.retransmits)
          acc c.Topology.mounts)
      0 t.Topology.clients
  in
  let worst_queue_ms =
    Array.fold_left
      (fun acc svc ->
        max acc
          (Sim.Stats.Summary.mean
             (Nfs.Server.stats svc).Nfs.Server.queue_wait_us
          /. 1000.))
      0. t.Topology.services
  in
  let dup_evictions =
    Array.fold_left
      (fun acc svc -> acc + (Nfs.Server.stats svc).Nfs.Server.dup_evictions)
      0 t.Topology.services
  in
  let switch_drops, occ_hwm =
    match Topology.switch t with
    | Some sw ->
        let st = Net.Switch.stats sw in
        (st.Net.Switch.overflows, st.Net.Switch.occ_hwm)
    | None -> (0, 0)
  in
  let bottleneck =
    (* drops trump utilization: a dropping switch is shedding the load
       the utilizations never see *)
    if switch_drops > 0 then "switch buffers"
    else
      let candidates =
        [
          (disk_util, "server disk");
          (cpu_util, "server cpu");
          ( port_util,
            match topology with
            | Topology.Switched -> "server port"
            | Topology.Shared_medium -> "shared wire"
            | Topology.Point_to_point -> "wire" );
        ]
      in
      let u, name =
        List.fold_left
          (fun (bu, bn) (u, n) -> if u > bu then (u, n) else (bu, bn))
          (0., "none") candidates
      in
      if u < 0.5 then "client links (offered load)" else name
  in
  {
    fl_clients = clients;
    fl_servers = servers;
    fl_topology = topology_name topology;
    fl_aggregate_kb_per_sec = aggregate;
    fl_per_client_kb_per_sec = aggregate /. float_of_int clients;
    fl_retransmits = retrans;
    fl_server_queue_ms = worst_queue_ms;
    fl_server_cpu_util = cpu_util;
    fl_disk_util = disk_util;
    fl_port_util = port_util;
    fl_switch_drops = switch_drops;
    fl_occ_hwm = occ_hwm;
    fl_dup_evictions = dup_evictions;
    fl_bottleneck = bottleneck;
  }

type nfs_cc_row = {
  cc_clients : int;
  cc_transport : string;
  cc_topology : string;
  cc_goodput_kb_per_sec : float;
  cc_retransmits : int;
  cc_steady_retransmits : int;
  cc_backoffs : int;
  cc_dup_hits : int;
  cc_dup_evictions : int;
  cc_srtt_ms : float;
  cc_rto_ms : float;
  cc_cwnd : float;
  cc_server_queue_ms : float;
  cc_medium_util : float;
}

(* One cell of the congestion sweep: [clients] concurrent streaming
   readers against a cold server on Ethernet-class links.  The fixed
   transport runs with the true NFSv2 default timeout (1.1 s) — at
   saturation the server queue exceeds it and every client re-injects
   duplicates on a fixed clock, which is the collapse; the adaptive
   transport must discover the same queueing delay through its
   estimator instead of being handed a safe [rpc_timeout].
   Steady-state retransmits are counted over the second half of the
   measured window, after the estimator has had time to converge. *)
let nfs_congestion_point ?(file_mb = 1) ?(net = nfs_scale_net) ~clients
    ~transport ~topology () =
  let config =
    Config.with_name Config.config_a
      (Printf.sprintf "A.cc.%s.%s.n%d" (transport_name transport)
         (topology_name topology) clients)
  in
  let t = Topology.create ~net ~topology ~transport ~clients config in
  let engine = Topology.engine t in
  let cc_cfg id =
    {
      Workload.Iobench.default_config with
      Workload.Iobench.file_mb;
      path = Printf.sprintf "/cc%d" id;
    }
  in
  Topology.run_clients t (fun c ->
      Workload.Remote_iobench.prepare c.Topology.mount (cc_cfg c.Topology.id));
  for id = 0 to clients - 1 do
    cool_server_file t (cc_cfg id).Workload.Iobench.path
  done;
  let t_start = Sim.Engine.now engine in
  let finishes = Array.make clients Sim.Time.zero in
  let bytes = Array.make clients 0 in
  Topology.run_clients t (fun c ->
      let id = c.Topology.id in
      let r =
        Workload.Remote_iobench.run_phase ~engine ~cpu:c.Topology.cpu
          c.Topology.mount (cc_cfg id) Workload.Iobench.FSR
      in
      bytes.(id) <- r.Workload.Iobench.bytes_moved;
      finishes.(id) <- Sim.Engine.now engine);
  let total_bytes = Array.fold_left ( + ) 0 bytes in
  let wall = Array.fold_left max Sim.Time.zero finishes - t_start in
  let mid = t_start + (wall / 2) in
  let sum f = Array.fold_left (fun a c -> a + f c) 0 t.Topology.clients in
  let sv = Nfs.Server.stats t.Topology.service in
  let rpc0 = t.Topology.clients.(0).Topology.rpc in
  {
    cc_clients = clients;
    cc_transport = transport_name transport;
    cc_topology = topology_name topology;
    cc_goodput_kb_per_sec =
      (if wall = 0 then 0.
       else float_of_int total_bytes /. 1024. /. Sim.Time.to_sec_float wall);
    cc_retransmits =
      sum (fun c -> (Nfs.Rpc.stats c.Topology.rpc).Nfs.Rpc.retransmits);
    cc_steady_retransmits =
      sum (fun c -> Nfs.Rpc.retransmits_since c.Topology.rpc mid);
    cc_backoffs = sum (fun c -> Nfs.Rpc.backoffs c.Topology.rpc);
    cc_dup_hits = sv.Nfs.Server.dup_hits;
    cc_dup_evictions = sv.Nfs.Server.dup_evictions;
    cc_srtt_ms = Nfs.Rpc.srtt_us rpc0 /. 1000.;
    cc_rto_ms = Nfs.Rpc.rto_us rpc0 /. 1000.;
    cc_cwnd = Nfs.Rpc.cwnd rpc0;
    cc_server_queue_ms =
      Sim.Stats.Summary.mean sv.Nfs.Server.queue_wait_us /. 1000.;
    cc_medium_util =
      (match Topology.medium t with
      | Some m -> Net.Medium.utilization m
      | None -> 0.);
  }

let nfs_congestion ?file_mb ?net ?(client_counts = [ 1; 4; 16 ]) () =
  List.concat_map
    (fun clients ->
      List.concat_map
        (fun topology ->
          List.map
            (fun transport ->
              nfs_congestion_point ?file_mb ?net ~clients ~transport ~topology
                ())
            [ Nfs.Rpc.Fixed; Nfs.Rpc.Adaptive ])
        [ Topology.Point_to_point; Topology.Shared_medium ])
    client_counts

type nfs_loss_row = {
  loss_pct : float;
  goodput_kb_per_sec : float;
  zl_retransmits : int;
  zl_drops : int;
  zl_dup_hits : int;
  creates_applied : int;
  creates_issued : int;
  writes_applied : int;
  writes_issued : int;
}

let nfs_loss ?(file_mb = 1) ?(losses = [ 0.; 0.001; 0.01; 0.05 ]) () =
  List.map
    (fun loss ->
      let config =
        Config.with_name Config.config_a
          (Printf.sprintf "A.loss%g" (loss *. 100.))
      in
      let t =
        Topology.create
          ~net:(Net.lossy Net.default_config loss)
          ~clients:1 config
      in
      let engine = Topology.engine t in
      let cfg =
        {
          Workload.Iobench.default_config with
          Workload.Iobench.file_mb;
          path = "/lossy";
        }
      in
      let moved = ref 0 in
      let spent = ref Sim.Time.zero in
      let run c k =
        Workload.Remote_iobench.run_phase ~engine ~cpu:c.Topology.cpu
          c.Topology.mount cfg k
      in
      Topology.run_clients t (fun c ->
          let w = run c Workload.Iobench.FSW in
          moved := w.Workload.Iobench.bytes_moved;
          spent := w.Workload.Iobench.elapsed);
      cool_server_file t cfg.Workload.Iobench.path;
      Topology.run_clients t (fun c ->
          let r = run c Workload.Iobench.FSR in
          moved := !moved + r.Workload.Iobench.bytes_moved;
          spent := !spent + r.Workload.Iobench.elapsed);
      let c = t.Topology.clients.(0) in
      {
        loss_pct = loss *. 100.;
        goodput_kb_per_sec =
          (if !spent = 0 then 0.
           else float_of_int !moved /. 1024. /. Sim.Time.to_sec_float !spent);
        zl_retransmits = (Nfs.Rpc.stats c.Topology.rpc).Nfs.Rpc.retransmits;
        zl_drops = Topology.client_drops c;
        zl_dup_hits = (Nfs.Server.stats t.Topology.service).Nfs.Server.dup_hits;
        creates_applied = Nfs.Server.applied t.Topology.service "create";
        creates_issued = Nfs.Rpc.op_calls c.Topology.rpc "create";
        writes_applied = Nfs.Server.applied t.Topology.service "write";
        writes_issued = Nfs.Rpc.op_calls c.Topology.rpc "write";
      })
    losses
