type t = {
  config : Config.t;
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  pool : Vm.Pool.t;
  pageout : Vm.Pageout.t;
  dev : Disk.Blkdev.t;
  disks : Disk.Device.t array;
  vol : Vol.t option;
  fs : Ufs.Types.fs;
}

let build (config : Config.t) ~format ~image =
  let engine = Sim.Engine.create () in
  let cpu = Sim.Cpu.create engine in
  let pool =
    Vm.Pool.create engine (Vm.Param.default ~memory_mb:config.Config.memory_mb ())
  in
  let pageout = Vm.Pageout.start pool cpu in
  let spec = config.Config.vol in
  let dev, disks, vol =
    if spec.Config.disks <= 1 then
      (* bare drive: identical code path (and numbers) to before the
         volume manager existed *)
      let d = Disk.Device.create engine config.Config.disk in
      (Disk.Blkdev.of_device d, [| d |], None)
    else
      let cfgs = Array.make spec.Config.disks config.Config.disk in
      let v =
        Vol.create engine spec.Config.layout cfgs
          ~stripe_bytes:(spec.Config.stripe_kb * 1024)
      in
      (Vol.blkdev v, Vol.devices v, Some v)
  in
  (match image with
  | Some src -> Disk.Store.copy_into src (Disk.Blkdev.store dev)
  | None -> ());
  if format then Ufs.Fs.mkfs dev ~opts:config.Config.mkfs ();
  let fs =
    Ufs.Fs.mount engine cpu pool dev ~features:config.Config.features
      ~costs:config.Config.costs ()
  in
  { config; engine; cpu; pool; pageout; dev; disks; vol; fs }

let create config = build config ~format:true ~image:None

let create_no_format config store =
  build config ~format:false ~image:(Some store)

let run t f =
  let result = ref None in
  Sim.Engine.spawn t.engine ~name:"experiment" (fun () ->
      match f t with
      | v -> result := Some (Ok v)
      | exception e ->
          result := Some (Error (e, Printexc.get_raw_backtrace ())));
  Sim.Engine.run t.engine;
  match !result with
  | Some (Ok v) -> v
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | None ->
      raise
        (Sim.Engine.Deadlock
           "experiment process never completed (blocked forever)")

let snapshot_store t = Disk.Blkdev.store t.dev

let crash t =
  let src = Disk.Blkdev.store t.dev in
  let copy = Disk.Store.create ~size:(Disk.Store.size src) in
  Disk.Store.copy_into src copy;
  copy
