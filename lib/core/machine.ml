type t = {
  config : Config.t;
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  pool : Vm.Pool.t;
  pageout : Vm.Pageout.t;
  dev : Disk.Blkdev.t;
  disks : Disk.Device.t array;
  vol : Vol.t option;
  mutable fs : Ufs.Types.fs;  (* remounted in place by a server reboot *)
}

(* Ambient sink: experiments build machines internally, so the caller
   that wants their metrics installs a registry here for the duration
   of the run rather than threading it through every build site. *)
let metrics_sink : Sim.Metrics.t option ref = ref None

let current_metrics_sink () = !metrics_sink

let with_metrics_sink reg f =
  let saved = !metrics_sink in
  metrics_sink := Some reg;
  Fun.protect ~finally:(fun () -> metrics_sink := saved) f

let register_metrics t reg =
  let instance = t.config.Config.name in
  Array.iteri
    (fun i d ->
      let di =
        if Array.length t.disks = 1 then instance
        else Printf.sprintf "%s.d%d" instance i
      in
      Disk.Device.register_metrics d reg ~instance:di)
    t.disks;
  (match t.vol with
  | Some v -> Vol.register_metrics v reg ~instance
  | None -> ());
  Vm.Pool.register_metrics t.pool reg ~instance;
  Vm.Pageout.register_metrics t.pageout reg ~instance;
  Ufs.Fs.register_metrics t.fs reg ~instance;
  Sim.Engine.register_metrics t.engine reg ~instance

let build ?engine (config : Config.t) ~format ~image =
  let engine = match engine with Some e -> e | None -> Sim.Engine.create () in
  (* an installed span recorder stamps spans off this machine's virtual
     clock (experiments build one machine per engine; multi-machine
     topologies share one engine, so the last bind wins harmlessly) *)
  (match Sim.Span.installed () with
  | Some r -> Sim.Span.set_clock r (fun () -> Sim.Engine.now engine)
  | None -> ());
  let cpu = Sim.Cpu.create engine in
  let pool =
    Vm.Pool.create engine (Vm.Param.default ~memory_mb:config.Config.memory_mb ())
  in
  let pageout = Vm.Pageout.start pool cpu in
  let spec = config.Config.vol in
  let dev, disks, vol =
    if spec.Config.disks <= 1 then
      (* bare drive: identical code path (and numbers) to before the
         volume manager existed *)
      let d = Disk.Device.create engine config.Config.disk in
      (Disk.Blkdev.of_device d, [| d |], None)
    else
      let cfgs = Array.make spec.Config.disks config.Config.disk in
      let v =
        Vol.create engine spec.Config.layout cfgs
          ~stripe_bytes:(spec.Config.stripe_kb * 1024)
      in
      (Vol.blkdev v, Vol.devices v, Some v)
  in
  (match image with
  | Some src -> Disk.Store.copy_into src (Disk.Blkdev.store dev)
  | None -> ());
  if format then Ufs.Fs.mkfs dev ~opts:config.Config.mkfs ();
  let fs =
    Ufs.Fs.mount engine cpu pool dev ~features:config.Config.features
      ~costs:config.Config.costs ()
  in
  let t = { config; engine; cpu; pool; pageout; dev; disks; vol; fs } in
  (match !metrics_sink with
  | Some reg -> register_metrics t reg
  | None -> ());
  t

let create ?engine config = build ?engine config ~format:true ~image:None

let create_no_format ?engine config store =
  build ?engine config ~format:false ~image:(Some store)

let run t f =
  let result = ref None in
  Sim.Engine.spawn t.engine ~name:"experiment" (fun () ->
      match f t with
      | v -> result := Some (Ok v)
      | exception e ->
          result := Some (Error (e, Printexc.get_raw_backtrace ())));
  Sim.Engine.run t.engine;
  match !result with
  | Some (Ok v) -> v
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | None ->
      raise
        (Sim.Engine.Deadlock
           "experiment process never completed (blocked forever)")

let snapshot_store t = Disk.Blkdev.store t.dev

let crash t =
  (* tally what the power cut loses (queued + in-flight requests) into
     the per-drive crash_dropped counters; the snapshot below never
     contained them, so the copy is unchanged — only now it's counted *)
  Array.iter
    (fun d ->
      let sb = Disk.Device.sector_bytes d in
      let s = Disk.Device.stats d in
      let drop (r : Disk.Request.t) =
        s.Disk.Device.crash_dropped_reqs <- s.Disk.Device.crash_dropped_reqs + 1;
        s.Disk.Device.crash_dropped_bytes <-
          s.Disk.Device.crash_dropped_bytes + (r.Disk.Request.count * sb)
      in
      Disk.Device.iter_queued d drop)
    t.disks;
  let src = Disk.Blkdev.store t.dev in
  let copy = Disk.Store.create ~size:(Disk.Store.size src) in
  Disk.Store.copy_into src copy;
  copy

let crash_dropped t =
  Array.fold_left
    (fun (ar, ab) d ->
      let r, b = Disk.Device.crash_dropped d in
      (ar + r, ab + b))
    (0, 0) t.disks
