(** Experiment drivers: one function per paper figure/table plus the
    ablations called out in DESIGN.md.  Each builds fresh machines from
    {!Config.t} values, runs the workloads, and returns plain data the
    bench harness formats (paper-reported values are included as
    constants so every table prints paper-vs-measured). *)

(* ---------- Figures 9/10/11: IObench ---------- *)

type iobench_row = {
  config : string;
  fsr : float;
  fsu : float;
  fsw : float;
  frr : float;
  fru : float;
}

val paper_figure10 : iobench_row list
(** The paper's measured KB/s (Figure 10). *)

val figure10 : ?file_mb:int -> ?random_ops:int -> unit -> iobench_row list
(** Run IObench on configs A-D.  Defaults: 16 MB file, 512 random ops. *)

val cpu_utilization : ?file_mb:int -> unit -> (string * float * float) list
(** (config, FSR KB/s, CPU utilisation during FSR) for A and D — the
    paper's motivation: "about half of a 12MIPS CPU was used to get half
    of the disk bandwidth of a 1.5MB/second disk". *)

val ratios : iobench_row list -> base:string -> others:string list ->
  (string * iobench_row) list
(** Figure 11: [base]/[other] ratio rows, labelled "A/B" etc. *)

(* ---------- Figure 12: system CPU ---------- *)

type cpu_row = { label : string; sys_cpu_s : float; io_kb_per_sec : float }

val paper_figure12 : cpu_row list

val figure12 : ?file_mb:int -> unit -> cpu_row list
(** 16 MB mmap read, new (A) vs old (D) UFS. *)

(* ---------- Allocator extents (E5) ---------- *)

val allocator_best_case : ?mb:int -> unit -> Workload.Extents.measurement
(** Fresh file system, one 13 MB file. *)

val allocator_worst_case : unit -> Workload.Extents.measurement
(** Heavily aged small file system filled to ~85%, then one more large
    file squeezed into the remaining space. *)

(* ---------- Read-ahead / write-cluster I/O patterns (E6/E7) ---------- *)

type io_pattern = {
  label : string;
  disk_reads : int;
  disk_writes : int;
  blocks_per_read : float;
  blocks_per_write : float;
}

val io_patterns : ?file_mb:int -> unit -> io_pattern list
(** Sequential read + write of a file under configs A and D: how many
    disk requests it takes and their average size — the figures 3/6/7
    behaviour as counts. *)

(* ---------- Ablations ---------- *)

val cluster_size_sweep : ?file_mb:int -> ?sizes_kb:int list -> unit ->
  (int * float * float) list
(** E11: (cluster KB, FSR KB/s, FSW KB/s). *)

val write_limit_sweep : ?file_mb:int -> ?limits:int option list -> unit ->
  (string * float * float) list
(** E9: (limit label, FRU KB/s, FSW KB/s).  [None] = unlimited. *)

val free_behind_ablation : ?file_mb:int -> unit ->
  (string * float * int * int) list
(** E10: (label, FSR KB/s, pageout scans, pages freed by daemon) with
    free-behind on and off, streaming 2x memory. *)

val rotdelay_tuning : ?file_mb:int -> unit -> (string * float * float) list
(** E12: the rejected "just set rotdelay to 0" tuning — (label, FSR,
    FSW) for rotdelay 4 ms and rotdelay 0, both without clustering. *)

val driver_clustering_ablation : ?file_mb:int -> unit ->
  (string * float * float * int) list
(** E8: (label, FSR, FSW, coalesced-request count) for no clustering,
    driver-level clustering, and file-system clustering. *)

val musbus_comparison : unit -> (string * float * float) list
(** E13: (config, work-units/sec, sys CPU seconds) for A and D. *)

val border_ablation :
  ?nfiles:int -> unit ->
  (string * (float * float) * (float * float)) list
(** The B_ORDER further-work item: [(label, (create ms/op, drained),
    (rm ms/op, drained))] for synchronous directory metadata vs
    asynchronous ordered writes.  The first of each pair is the
    user-perceived latency; the second includes the queue drain. *)

val extent_fs_comparison : ?file_mb:int -> ?extent_sizes_kb:int list -> unit ->
  (string * float * float) list
(** The title claim, measured: (label, FSR KB/s, FSW KB/s) for a true
    extent-based file system at several user-chosen extent sizes, next
    to the clustered UFS (A) and the old UFS (D) on identical hardware.
    Expect clustered UFS to match the well-tuned extent FS — and the
    badly-tuned extent sizes to show why exposing the knob is a trap. *)

val request_size_sweep : ?file_mb:int -> ?sizes_kb:int list -> unit ->
  (int * float * float) list
(** (request KB, FSR KB/s, CPU seconds per MB) for sequential reads with
    different read(2) sizes on config A — how per-call overhead
    amortises above the block size and why 8 KB calls were the paper's
    norm. *)

val zoned_disk : ?file_mb:int -> unit -> (string * float) list
(** The variable-geometry argument against user-chosen extents: on a
    zoned drive the media rate itself changes across the disk, so the
    same cluster tuning yields different sequential rates at the outer
    and inner zones — "such a drive may have different values for the
    optimal extent size at different locations".  Returns labelled
    KB/s figures: raw media rate per zone and FSR for a file placed in
    each zone. *)

val future_work_ablation : ?file_mb:int -> unit -> (string * float) list
(** Bmap cache, UFS_HOLE skip and getpage-hint random clustering:
    (label, metric) pairs — see the bench output for the metric of each
    row (CPU seconds or KB/s). *)

val vol_stripe_sweep :
  ?file_mb:int -> ?disk_counts:int list -> ?stripe_kbs:int list -> unit ->
  (string * int * int * float * float) list
(** Volume-manager striping vs file-system clustering: [(config, disks,
    stripe KB, FSR KB/s, FSW KB/s)] for configs A and D over 1/2/4-disk
    stripes at several stripe units.  One disk is a single baseline row
    (the stripe unit is moot).  Expect: a stripe unit at or above the
    cluster size keeps each 120 KB cluster a single member I/O and lets
    read-ahead overlap members (FSR above one disk); a small stripe unit
    shatters clusters into per-member fragments; and config D barely
    moves — without clustering there is no big request to split. *)

val vol_mirror :
  ?file_mb:int -> ?readers:int -> unit ->
  (string * float * float * int) list
(** Mirroring: [(label, aggregate concurrent-read KB/s, sequential-write
    KB/s, dropped writes)] for one disk, 2- and 3-way mirrors, and a
    2-way mirror running degraded (member 1 failed before the reads, so
    its row's write rate and dropped count are measured degraded).
    Reads are [readers] concurrent streaming processes — a single
    sequential reader has one request outstanding and cannot use the
    second copy.  Expect read scaling with mirror width, writes at
    roughly the one-disk rate (every copy must land), and the degraded
    mirror back at one-disk read throughput. *)

(* ---------- NFS over the simulated network ---------- *)

type nfs_row = {
  nfs_config : string;
  local_fsr : float;  (** KB/s on the server's own UFS *)
  remote_fsr : float;  (** KB/s through the mount, zero-loss link *)
  local_fsw : float;
  remote_fsw : float;
  remote_ra_issued : int;  (** biod read-ahead clusters issued *)
  read_rpcs : int;  (** READ calls the remote FSR+FSW pair cost *)
  write_rpcs : int;
}

val nfs_local_vs_remote :
  ?file_mb:int -> ?configs:Config.t list -> ?net:Net.config -> unit ->
  nfs_row list
(** The tentpole table: IObench FSR/FSW locally on each config's
    machine vs remotely through a one-client topology on a zero-loss
    link.  With client-side clustering working, config A's remote
    streams move cluster-sized RPCs ([read_rpcs] ~ file / 120 KB) and
    remote FSR holds most of local FSR; without it (configs B-D the
    client still clusters — the {e server} is what changes) the gap
    shows where the time went. *)

type nfs_scale_row = {
  sc_clients : int;
  sc_nfsd : int;
  sc_bandwidth_mb : float;
  aggregate_kb_per_sec : float;  (** all streams, concurrent window *)
  per_client_kb_per_sec : float;
  sc_retransmits : int;
  server_queue_wait_ms : float;  (** mean request wait for an nfsd *)
  sc_dup_evictions : int;
      (** dup-cache entries evicted — nonzero means the exactly-once
          guarantee for retried CREATE/WRITE is at risk at this scale *)
}

val nfs_scale_net : Net.config
(** The default scaling link: shared-Ethernet-class, 600 KB/s — slower
    than the server disk, so one client is link-limited and the
    aggregate has room to grow. *)

val nfs_scaling :
  ?file_mb:int -> ?nfsd:int -> ?net:Net.config -> ?config:Config.t ->
  clients:int -> unit -> nfs_scale_row
(** [clients] concurrent streaming readers, each of its own file,
    spawned at the same instant after an untimed prepare and a
    server-cache cool-down.  On {!nfs_scale_net} links aggregate
    throughput grows with the client count until the server disk
    saturates; on faster links one client already saturates the disk
    and extra clients only add seek interference.  The mount runs with
    a raised retransmission timeout so server queueing under
    saturation is not mistaken for loss. *)

type fleet_row = {
  fl_clients : int;
  fl_servers : int;
  fl_topology : string;  (** ["p2p" | "shared" | "switched"] *)
  fl_aggregate_kb_per_sec : float;  (** all streams, concurrent window *)
  fl_per_client_kb_per_sec : float;
  fl_retransmits : int;  (** all clients, all mounts *)
  fl_server_queue_ms : float;  (** worst server: mean nfsd queue wait *)
  fl_server_cpu_util : float;  (** worst server: CPU busy over window *)
  fl_disk_util : float;  (** worst server: disk busy over window *)
  fl_port_util : float;
      (** worst server switch port busy over window (or medium
          utilization on a shared wire; 0 for p2p) *)
  fl_switch_drops : int;  (** output-buffer tail drops *)
  fl_occ_hwm : int;  (** worst output-buffer occupancy seen *)
  fl_dup_evictions : int;
  fl_bottleneck : string;
      (** the binding resource at this rung: ["server disk"],
          ["server cpu"], ["server port"], ["shared wire"],
          ["switch buffers"] (drops observed) or
          ["client links (offered load)"] when nothing server-side is
          past 50% busy *)
}

val nfs_fleet :
  ?file_mb:int ->
  ?nfsd:int ->
  ?net:Net.config ->
  ?topology:Topology.kind ->
  ?transport:Nfs.Rpc.transport ->
  ?ports_buffer:int ->
  ?config:Config.t ->
  servers:int ->
  clients:int ->
  unit ->
  fleet_row
(** One rung of the fleet bottleneck ladder: [clients] concurrent
    streaming readers of small (default 1 MB) files hash-sharded over
    [servers] servers (default wiring {!Topology.Switched} on
    {!Net.default_config}-class 12.5 MB/s ports, adaptive transport).  Utilizations are busy-time deltas over the concurrent
    measurement window only, so the untimed prepare phase does not
    pollute them.  Aggregate goodput stops scaling when the named
    bottleneck binds — sweeping [clients] at fixed [servers] locates
    the knee, and [fl_bottleneck] says what to buy next. *)

type nfs_cc_row = {
  cc_clients : int;
  cc_transport : string;  (** ["fixed" | "adaptive"] *)
  cc_topology : string;  (** ["p2p" | "shared"] *)
  cc_goodput_kb_per_sec : float;  (** all streams, concurrent window *)
  cc_retransmits : int;  (** all clients, whole measured window *)
  cc_steady_retransmits : int;
      (** second half of the window only — after the adaptive
          estimator converges this should be ~0 *)
  cc_backoffs : int;  (** adaptive RTO backoff events, all clients *)
  cc_dup_hits : int;
  cc_dup_evictions : int;
  cc_srtt_ms : float;  (** client 0's converged estimate; 0 for fixed *)
  cc_rto_ms : float;
  cc_cwnd : float;  (** client 0's final window; 0 for fixed *)
  cc_server_queue_ms : float;
  cc_medium_util : float;  (** shared-wire busy fraction; 0 for p2p *)
}

val nfs_congestion_point :
  ?file_mb:int -> ?net:Net.config -> clients:int ->
  transport:Nfs.Rpc.transport -> topology:Topology.kind -> unit -> nfs_cc_row
(** One cell: [clients] concurrent streaming readers on Ethernet-class
    links ({!nfs_scale_net}), fixed transport at the true NFSv2 default
    timeout (1.1 s) so saturation queueing trips it — the congestion
    collapse — while the adaptive transport must learn the delay
    through srtt/rttvar instead of being handed a safe timeout. *)

val nfs_congestion :
  ?file_mb:int -> ?net:Net.config -> ?client_counts:int list -> unit ->
  nfs_cc_row list
(** The full sweep: client counts × \{fixed, adaptive\} × \{p2p,
    shared medium\}.  Expect fixed goodput to collapse as clients grow
    (retransmit duplicates amplifying the overload) and adaptive
    goodput to hold, with near-zero steady-state retransmits. *)

type nfs_loss_row = {
  loss_pct : float;
  goodput_kb_per_sec : float;  (** application bytes over elapsed *)
  zl_retransmits : int;
  zl_drops : int;  (** messages the link ate (both directions) *)
  zl_dup_hits : int;  (** retransmits answered from the dup cache *)
  creates_applied : int;
  creates_issued : int;
  writes_applied : int;
  writes_issued : int;
}

val nfs_loss : ?file_mb:int -> ?losses:float list -> unit -> nfs_loss_row list
(** FSW + FSR through one lossy link per row (default 0 / 0.1 / 1 / 5 %
    drop probability).  The invariant on display: however many
    retransmissions the loss forces, [creates_applied = creates_issued]
    and [writes_applied = writes_issued] — the duplicate-request cache
    absorbs every replay — while goodput degrades but never reaches
    zero (hard-mount retry). *)
