(** A whole simulated machine: engine, CPU, memory pool with pageout
    daemon, disk, and a mounted UFS.  The unit every experiment runs
    against. *)

type t = {
  config : Config.t;
  engine : Sim.Engine.t;
  cpu : Sim.Cpu.t;
  pool : Vm.Pool.t;
  pageout : Vm.Pageout.t;
  dev : Disk.Blkdev.t;  (** what the file system is mounted on *)
  disks : Disk.Device.t array;  (** the member drives ([disks.(0)] is
      the whole device when [config.vol.disks = 1]) *)
  vol : Vol.t option;  (** the volume, when [config.vol.disks > 1] *)
  mutable fs : Ufs.Types.fs;
      (** the mount; {!Topology.reboot_server} replaces it in place
          after crash recovery *)
}

val create : ?engine:Sim.Engine.t -> Config.t -> t
(** Build the machine, mkfs the disk and mount it.  [engine] runs the
    machine on an existing engine instead of a fresh one — multi-machine
    topologies (M servers, N clients) share one virtual clock. *)

val register_metrics : t -> Sim.Metrics.t -> unit
(** Register every layer of the machine (disks, volume, page pool,
    pageout daemon, UFS) into the registry, using the config name as
    the instance label (member drives get a [.dN] suffix). *)

val with_metrics_sink : Sim.Metrics.t -> (unit -> 'a) -> 'a
(** [with_metrics_sink reg f] makes every machine built during [f]
    register itself into [reg] (as {!register_metrics} would).  Sinks
    nest; the previous sink is restored on exit.  This is how the bench
    harness collects metrics from experiments that build machines
    internally. *)

val current_metrics_sink : unit -> Sim.Metrics.t option
(** The registry installed by the innermost {!with_metrics_sink}, if
    any — for experiment code that builds its layers without a machine
    (the EFS comparison) and wants to register them into the same
    sink. *)

val create_no_format : ?engine:Sim.Engine.t -> Config.t -> Disk.Store.t -> t
(** Build a machine around an existing disk image (the aged-file-system
    experiments reuse a store across machines).  The store is copied
    onto the new machine's disk. *)

val run : t -> (t -> 'a) -> 'a
(** Run [f] as a simulation process, drive the engine until it (and all
    I/O it started) completes, and return its result.  An exception
    raised by [f] is re-raised here with its original backtrace;
    a deadlock raises {!Sim.Engine.Deadlock}. *)

val snapshot_store : t -> Disk.Store.t
(** The machine's live backing store (shared, not copied). *)

val crash : t -> Disk.Store.t
(** Power failure: a deep copy of the disk exactly as it stands —
    whatever is still in the page cache, the metadata cache or the disk
    queue is lost.  Run {!Ufs.Fsck.check} over a device built from the
    copy (or hand it to {!create_no_format}) to study the wreckage.
    The simulation itself keeps running; crash as often as you like.
    Requests queued or in flight at the instant of the crash are
    tallied into the drives' [crash_dropped] counters (the
    ["disk"]-layer [crash_dropped_reqs]/[crash_dropped_bytes] metrics)
    so experiments can report the exposure window. *)

val crash_dropped : t -> int * int
(** (requests, bytes) lost across this machine's drives — see
    {!Disk.Device.crash_dropped}. *)
