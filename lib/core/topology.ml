type kind = Point_to_point | Shared_medium | Switched

type attach =
  | Links of Nfs.Proto.msg Net.t array
  | Station of Nfs.Proto.msg Net.Medium.station
  | Port of Nfs.Proto.msg Net.Switch.port

type mountpoint = {
  m_server : int;
  m_rpc : Nfs.Rpc.t;
  m_mount : Nfs.Client.t;
}

type client = {
  id : int;
  cpu : Sim.Cpu.t;
  attach : attach;
  rpc : Nfs.Rpc.t;
  mount : Nfs.Client.t;
  mounts : mountpoint array;  (* one per server; element 0 = rpc/mount *)
}

type t = {
  server : Machine.t;  (* = servers.(0): the 1-server API keeps working *)
  service : Nfs.Server.t;  (* = services.(0) *)
  servers : Machine.t array;
  services : Nfs.Server.t array;
  clients : client array;
  medium : Nfs.Proto.msg Net.Medium.t option;
  switch : Nfs.Proto.msg Net.Switch.t option;
  srv_stations : Nfs.Proto.msg Net.Medium.station array option;
  srv_ports : Nfs.Proto.msg Net.Switch.port array option;
  crashed : Disk.Store.t option array;
      (* platter images latched at crash_server, consumed by reboot *)
  (* wiring parameters retained so add_mount can attach later *)
  topo_kind : kind;
  net_cfg : Net.config;
  seed : int;
  transport : Nfs.Rpc.transport option;
  rpc_timeout : Sim.Time.t option;
  mutable next_rpc_id : int;  (* unique per rpc channel: dup-cache keys *)
}

let client_link c =
  match c.attach with
  | Links ls -> Some ls.(0)
  | Station _ | Port _ -> None

let medium t = t.medium
let switch t = t.switch

let client_drops c =
  match c.attach with
  | Links ls ->
      Array.fold_left (fun acc l -> acc + (Net.stats l).Net.drops) 0 ls
  | Station _ -> 0
  | Port p -> (Net.Switch.port_stats p).Net.Switch.p_drops

(* Station / port numbering, both shared kinds: server [s] is id [s],
   client [i] is id [servers + i].  At one server this is the historical
   "server = 0, client i = i + 1". *)

let create ?(net = Net.default_config) ?(seed = 0)
    ?(topology = Point_to_point) ?transport ?(nfsd = 4) ?biods ?ra_depth
    ?dirty_limit ?rpc_timeout ?(servers = 1) ?ports_buffer
    ?(register_clients = true) ~clients config =
  if servers < 1 then invalid_arg "Topology.create: servers must be >= 1";
  let server0 = Machine.create config in
  let engine = server0.Machine.engine in
  let machines =
    Array.init servers (fun s ->
        if s = 0 then server0
        else
          Machine.create ~engine
            (Config.with_name config
               (Printf.sprintf "%s.s%d" config.Config.name s)))
  in
  let shared = ref None in
  let switched = ref None in
  let nodes =
    match topology with
    | Point_to_point ->
        Array.init clients (fun id ->
            let cpu = Sim.Cpu.create engine in
            let links =
              Array.init servers (fun s ->
                  let name =
                    if servers = 1 then Printf.sprintf "link.%d" id
                    else Printf.sprintf "link.%d.s%d" id s
                  in
                  Net.create
                    ~seed:(seed + (id * servers) + s)
                    ~name engine net ~a_cpu:cpu
                    ~b_cpu:machines.(s).Machine.cpu)
            in
            (id, cpu, Links links))
    | Shared_medium ->
        let m = Net.Medium.create ~seed ~name:"ether" engine net in
        let stations =
          Array.map (fun sv -> Net.Medium.attach m ~cpu:sv.Machine.cpu) machines
        in
        shared := Some (m, stations);
        Array.init clients (fun id ->
            let cpu = Sim.Cpu.create engine in
            let st = Net.Medium.attach m ~cpu in
            (id, cpu, Station st))
    | Switched ->
        let sw =
          Net.Switch.create ~seed ~name:"switch" ?buffer:ports_buffer engine
            net
        in
        let ports =
          Array.map (fun sv -> Net.Switch.attach sw ~cpu:sv.Machine.cpu) machines
        in
        switched := Some (sw, ports);
        Array.init clients (fun id ->
            let cpu = Sim.Cpu.create engine in
            let p = Net.Switch.attach sw ~cpu in
            (id, cpu, Port p))
  in
  (* the server-side endpoint of server [s]'s channel to one client *)
  let server_ep s (id, _, attach) =
    match attach with
    | Links ls -> Net.b_end ls.(s)
    | Station _ -> (
        match !shared with
        | Some (_, ss) -> Net.Medium.endpoint ss.(s) ~peer:(servers + id)
        | None -> assert false)
    | Port _ -> (
        match !switched with
        | Some (_, ps) -> Net.Switch.endpoint ps.(s) ~peer:(servers + id)
        | None -> assert false)
  in
  let services =
    Array.init servers (fun s ->
        Nfs.Server.create engine ~cpu:machines.(s).Machine.cpu
          ~fs:machines.(s).Machine.fs ~nfsd
          ~endpoints:(Array.to_list (Array.map (server_ep s) nodes))
          ())
  in
  let clients =
    Array.map
      (fun (id, cpu, attach) ->
        let client_ep s =
          match attach with
          | Links ls -> Net.a_end ls.(s)
          | Station st -> Net.Medium.endpoint st ~peer:s
          | Port p -> Net.Switch.endpoint p ~peer:s
        in
        let mounts =
          Array.init servers (fun s ->
              (* per-server congestion state: every future mount from
                 this client to server [s] shares this channel's cstate *)
              let rpc =
                Nfs.Rpc.create engine ~cpu ~ep:(client_ep s) ~client_id:id
                  ?transport ?timeout:rpc_timeout ()
              in
              let m_mount =
                Nfs.Client.mount engine ~cpu ~rpc ?biods ?ra_depth
                  ?dirty_limit ()
              in
              { m_server = s; m_rpc = rpc; m_mount })
        in
        {
          id;
          cpu;
          attach;
          rpc = mounts.(0).m_rpc;
          mount = mounts.(0).m_mount;
          mounts;
        })
      nodes
  in
  let t =
    {
      server = machines.(0);
      service = services.(0);
      servers = machines;
      services;
      clients;
      medium = Option.map fst !shared;
      switch = Option.map fst !switched;
      srv_stations = Option.map snd !shared;
      srv_ports = Option.map snd !switched;
      crashed = Array.make servers None;
      topo_kind = topology;
      net_cfg = net;
      seed;
      transport;
      rpc_timeout;
      next_rpc_id = Array.length clients;
    }
  in
  (match Machine.current_metrics_sink () with
  | Some reg ->
      let name = config.Config.name in
      let sname s =
        if s = 0 then name else Printf.sprintf "%s.s%d" name s
      in
      Array.iteri
        (fun s svc ->
          Nfs.Server.register_metrics svc reg ~instance:(sname s ^ ".server"))
        services;
      (match t.medium with
      | Some m -> Net.Medium.register_metrics m reg ~instance:(name ^ ".net")
      | None -> ());
      (match !switched with
      | Some (sw, ports) ->
          Net.Switch.register_metrics sw reg ~instance:(name ^ ".switch");
          Array.iteri
            (fun s p ->
              Net.Switch.register_port_metrics p reg
                ~instance:(sname s ^ ".port"))
            ports
      | None -> ());
      if register_clients then
        Array.iter
          (fun c ->
            (match c.attach with
            | Links ls ->
                Array.iteri
                  (fun s l ->
                    let instance =
                      if servers = 1 then
                        Printf.sprintf "%s.c%d.link" name c.id
                      else Printf.sprintf "%s.c%d.link.s%d" name c.id s
                    in
                    Net.register_metrics l reg ~instance)
                  ls
            | Station _ | Port _ -> ());
            if servers = 1 then
              Nfs.Client.register_metrics c.mount reg
                ~instance:(Printf.sprintf "%s.c%d" name c.id)
            else
              Array.iter
                (fun m ->
                  Nfs.Client.register_metrics m.m_mount reg
                    ~instance:
                      (Printf.sprintf "%s.c%d.s%d" name c.id m.m_server))
                c.mounts)
          clients
  | None -> ());
  t

let engine t = t.server.Machine.engine
let nservers t = Array.length t.servers

(* ---------- namespace sharding ---------- *)

(* FNV-1a over the path: stable, seed-independent, cheap.  Which server
   owns a file is a pure function of its name, so every client (and the
   bench code preparing files) agrees without coordination. *)
let server_of_path t path =
  let n = Array.length t.servers in
  if n = 1 then 0
  else begin
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c ->
        h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
      path;
    !h mod n
  end

let shard t c path = c.mounts.(server_of_path t path).m_mount
let mount_of c ~server = c.mounts.(server).m_mount

(* ---------- extra mounts (per-server congestion state) ---------- *)

let add_mount t c ~server ?biods ?ra_depth ?dirty_limit () =
  if server < 0 || server >= Array.length t.servers then
    invalid_arg "Topology.add_mount: no such server";
  let engine = engine t in
  let rpc_id = t.next_rpc_id in
  t.next_rpc_id <- t.next_rpc_id + 1;
  (* a genuinely new transport attachment: its own link/station/port,
     its own xid space and dispatcher on the server — but the congestion
     state is the per-server channel's, shared with the existing mount *)
  let ep =
    match c.attach with
    | Links _ ->
        let link =
          Net.create
            ~seed:(t.seed + 7919 + rpc_id)
            ~name:(Printf.sprintf "link.x%d.s%d" rpc_id server)
            engine t.net_cfg ~a_cpu:c.cpu
            ~b_cpu:t.servers.(server).Machine.cpu
        in
        Nfs.Server.add_endpoint t.services.(server) (Net.b_end link);
        Net.a_end link
    | Station _ ->
        let m = Option.get t.medium in
        let st = Net.Medium.attach m ~cpu:c.cpu in
        let sid = Net.Medium.station_id st in
        let srv = (Option.get t.srv_stations).(server) in
        Nfs.Server.add_endpoint t.services.(server)
          (Net.Medium.endpoint srv ~peer:sid);
        Net.Medium.endpoint st ~peer:server
    | Port _ ->
        let sw = Option.get t.switch in
        let np = Net.Switch.attach sw ~cpu:c.cpu in
        let pid = Net.Switch.port_id np in
        let srv = (Option.get t.srv_ports).(server) in
        Nfs.Server.add_endpoint t.services.(server)
          (Net.Switch.endpoint srv ~peer:pid);
        Net.Switch.endpoint np ~peer:server
  in
  let cstate = Nfs.Rpc.cstate_of c.mounts.(server).m_rpc in
  let rpc =
    Nfs.Rpc.create engine ~cpu:c.cpu ~ep ~client_id:rpc_id
      ?transport:t.transport ?timeout:t.rpc_timeout ~cstate ()
  in
  let m_mount =
    Nfs.Client.mount engine ~cpu:c.cpu ~rpc ?biods ?ra_depth ?dirty_limit ()
  in
  { m_server = server; m_rpc = rpc; m_mount }

(* ---------- server crash / reboot ---------- *)

let crash_server ?(server = 0) t =
  let m = t.servers.(server) in
  Nfs.Server.crash t.services.(server);
  (* power-cut the drives: queued and in-flight requests are tallied as
     crash-dropped and the write cutoff latches, so nothing issued by
     the dead instance can reach the platter from here on *)
  Disk.Blkdev.crash_cut m.Machine.dev;
  let src = Disk.Blkdev.store m.Machine.dev in
  let snap = Disk.Store.create ~size:(Disk.Store.size src) in
  Disk.Store.copy_into src snap;
  t.crashed.(server) <- Some snap;
  snap

let reboot_server ?(server = 0) t =
  let m = t.servers.(server) in
  let dev = m.Machine.dev in
  let snap =
    match t.crashed.(server) with
    | Some s -> s
    | None -> invalid_arg "Topology.reboot_server: server has not crashed"
  in
  (* let requests the dead instance still had in flight drain (their
     writes were latched off), then restore the exact crash image and
     clear the latch: the disk is now what a rebooted kernel would see *)
  Disk.Blkdev.quiesce dev;
  Disk.Store.copy_into snap (Disk.Blkdev.store dev);
  Disk.Blkdev.set_write_cutoff dev None;
  t.crashed.(server) <- None;
  (* the page cache died with the machine *)
  Vm.Pool.invalidate_all m.Machine.pool;
  (* timed journal replay, then a clean mount *)
  let report = Ufs.Recover.run dev in
  let fs =
    Ufs.Fs.mount m.Machine.engine m.Machine.cpu m.Machine.pool dev
      ~features:m.Machine.config.Config.features
      ~costs:m.Machine.config.Config.costs ()
  in
  m.Machine.fs <- fs;
  Nfs.Server.restart t.services.(server) ~fs;
  report

let run_clients t f =
  let n = Array.length t.clients in
  let completed = ref 0 in
  let err = ref None in
  Array.iter
    (fun c ->
      Sim.Engine.spawn (engine t)
        ~name:(Printf.sprintf "client.%d" c.id)
        (fun () ->
          (try f c
           with e ->
             if !err = None then
               err := Some (e, Printexc.get_raw_backtrace ()));
          incr completed))
    t.clients;
  Sim.Engine.run (engine t);
  (match !err with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  if !completed < n then
    raise
      (Sim.Engine.Deadlock
         (Printf.sprintf "%d of %d client processes never completed"
            (n - !completed) n))

let run t f =
  let result = ref None in
  Sim.Engine.spawn (engine t) ~name:"experiment" (fun () ->
      match f t with
      | v -> result := Some (Ok v)
      | exception e ->
          result := Some (Error (e, Printexc.get_raw_backtrace ())));
  Sim.Engine.run (engine t);
  match !result with
  | Some (Ok v) -> v
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | None ->
      raise
        (Sim.Engine.Deadlock
           "experiment process never completed (blocked forever)")
