type client = {
  id : int;
  cpu : Sim.Cpu.t;
  link : Nfs.Proto.msg Net.t;
  rpc : Nfs.Rpc.t;
  mount : Nfs.Client.t;
}

type t = {
  server : Machine.t;
  service : Nfs.Server.t;
  clients : client array;
}

let create ?(net = Net.default_config) ?(seed = 0) ?(nfsd = 4) ?biods
    ?ra_depth ?dirty_limit ?rpc_timeout ~clients config =
  let server = Machine.create config in
  let engine = server.Machine.engine in
  let nodes =
    Array.init clients (fun id ->
        let cpu = Sim.Cpu.create engine in
        let link =
          Net.create ~seed:(seed + id)
            ~name:(Printf.sprintf "link.%d" id)
            engine net ~a_cpu:cpu ~b_cpu:server.Machine.cpu
        in
        (id, cpu, link))
  in
  let service =
    Nfs.Server.create engine ~cpu:server.Machine.cpu ~fs:server.Machine.fs
      ~nfsd
      ~endpoints:(Array.to_list (Array.map (fun (_, _, l) -> Net.b_end l) nodes))
      ()
  in
  let clients =
    Array.map
      (fun (id, cpu, link) ->
        let rpc =
          Nfs.Rpc.create engine ~cpu ~ep:(Net.a_end link) ~client_id:id
            ?timeout:rpc_timeout ()
        in
        let mount =
          Nfs.Client.mount engine ~cpu ~rpc ?biods ?ra_depth ?dirty_limit ()
        in
        { id; cpu; link; rpc; mount })
      nodes
  in
  let t = { server; service; clients } in
  (match Machine.current_metrics_sink () with
  | Some reg ->
      let name = config.Config.name in
      Nfs.Server.register_metrics service reg ~instance:(name ^ ".server");
      Array.iter
        (fun c ->
          Net.register_metrics c.link reg
            ~instance:(Printf.sprintf "%s.c%d.link" name c.id);
          Nfs.Client.register_metrics c.mount reg
            ~instance:(Printf.sprintf "%s.c%d" name c.id))
        clients
  | None -> ());
  t

let engine t = t.server.Machine.engine

let run_clients t f =
  let n = Array.length t.clients in
  let completed = ref 0 in
  let err = ref None in
  Array.iter
    (fun c ->
      Sim.Engine.spawn (engine t)
        ~name:(Printf.sprintf "client.%d" c.id)
        (fun () ->
          (try f c
           with e ->
             if !err = None then
               err := Some (e, Printexc.get_raw_backtrace ()));
          incr completed))
    t.clients;
  Sim.Engine.run (engine t);
  (match !err with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  if !completed < n then
    raise
      (Sim.Engine.Deadlock
         (Printf.sprintf "%d of %d client processes never completed"
            (n - !completed) n))

let run t f =
  let result = ref None in
  Sim.Engine.spawn (engine t) ~name:"experiment" (fun () ->
      match f t with
      | v -> result := Some (Ok v)
      | exception e ->
          result := Some (Error (e, Printexc.get_raw_backtrace ())));
  Sim.Engine.run (engine t);
  match !result with
  | Some (Ok v) -> v
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | None ->
      raise
        (Sim.Engine.Deadlock
           "experiment process never completed (blocked forever)")
