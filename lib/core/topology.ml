type kind = Point_to_point | Shared_medium

type attach =
  | Link of Nfs.Proto.msg Net.t
  | Station of Nfs.Proto.msg Net.Medium.station

type client = {
  id : int;
  cpu : Sim.Cpu.t;
  attach : attach;
  rpc : Nfs.Rpc.t;
  mount : Nfs.Client.t;
}

type t = {
  server : Machine.t;
  service : Nfs.Server.t;
  clients : client array;
  medium : Nfs.Proto.msg Net.Medium.t option;
  mutable crashed : Disk.Store.t option;
      (* platter image latched at crash_server, consumed by reboot *)
}

let client_link c = match c.attach with Link l -> Some l | Station _ -> None
let medium t = t.medium

let client_drops c =
  match c.attach with Link l -> (Net.stats l).Net.drops | Station _ -> 0

let create ?(net = Net.default_config) ?(seed = 0)
    ?(topology = Point_to_point) ?transport ?(nfsd = 4) ?biods ?ra_depth
    ?dirty_limit ?rpc_timeout ~clients config =
  let server = Machine.create config in
  let engine = server.Machine.engine in
  (* On the shared medium the server is station 0 and client [i] is
     station [i + 1]; the server reaches each client through a virtual
     per-peer endpoint of its one station. *)
  let shared = ref None in
  let nodes =
    match topology with
    | Point_to_point ->
        Array.init clients (fun id ->
            let cpu = Sim.Cpu.create engine in
            let link =
              Net.create ~seed:(seed + id)
                ~name:(Printf.sprintf "link.%d" id)
                engine net ~a_cpu:cpu ~b_cpu:server.Machine.cpu
            in
            (id, cpu, Link link))
    | Shared_medium ->
        let m = Net.Medium.create ~seed ~name:"ether" engine net in
        let server_station = Net.Medium.attach m ~cpu:server.Machine.cpu in
        shared := Some (m, server_station);
        Array.init clients (fun id ->
            let cpu = Sim.Cpu.create engine in
            let st = Net.Medium.attach m ~cpu in
            (id, cpu, Station st))
  in
  let server_ep (id, _, attach) =
    match attach with
    | Link l -> Net.b_end l
    | Station _ -> (
        match !shared with
        | Some (_, ss) -> Net.Medium.endpoint ss ~peer:(id + 1)
        | None -> assert false)
  in
  let service =
    Nfs.Server.create engine ~cpu:server.Machine.cpu ~fs:server.Machine.fs
      ~nfsd
      ~endpoints:(Array.to_list (Array.map server_ep nodes))
      ()
  in
  let clients =
    Array.map
      (fun (id, cpu, attach) ->
        let ep =
          match attach with
          | Link l -> Net.a_end l
          | Station st -> Net.Medium.endpoint st ~peer:0
        in
        let rpc =
          Nfs.Rpc.create engine ~cpu ~ep ~client_id:id ?transport
            ?timeout:rpc_timeout ()
        in
        let mount =
          Nfs.Client.mount engine ~cpu ~rpc ?biods ?ra_depth ?dirty_limit ()
        in
        { id; cpu; attach; rpc; mount })
      nodes
  in
  let t =
    { server; service; clients; medium = Option.map fst !shared;
      crashed = None }
  in
  (match Machine.current_metrics_sink () with
  | Some reg ->
      let name = config.Config.name in
      Nfs.Server.register_metrics service reg ~instance:(name ^ ".server");
      (match t.medium with
      | Some m -> Net.Medium.register_metrics m reg ~instance:(name ^ ".net")
      | None -> ());
      Array.iter
        (fun c ->
          (match c.attach with
          | Link l ->
              Net.register_metrics l reg
                ~instance:(Printf.sprintf "%s.c%d.link" name c.id)
          | Station _ -> ());
          Nfs.Client.register_metrics c.mount reg
            ~instance:(Printf.sprintf "%s.c%d" name c.id))
        clients
  | None -> ());
  t

let engine t = t.server.Machine.engine

(* ---------- server crash / reboot ---------- *)

let crash_server t =
  Nfs.Server.crash t.service;
  (* power-cut the drives: queued and in-flight requests are tallied as
     crash-dropped and the write cutoff latches, so nothing issued by
     the dead instance can reach the platter from here on *)
  Disk.Blkdev.crash_cut t.server.Machine.dev;
  let src = Disk.Blkdev.store t.server.Machine.dev in
  let snap = Disk.Store.create ~size:(Disk.Store.size src) in
  Disk.Store.copy_into src snap;
  t.crashed <- Some snap;
  snap

let reboot_server t =
  let m = t.server in
  let dev = m.Machine.dev in
  let snap =
    match t.crashed with
    | Some s -> s
    | None -> invalid_arg "Topology.reboot_server: server has not crashed"
  in
  (* let requests the dead instance still had in flight drain (their
     writes were latched off), then restore the exact crash image and
     clear the latch: the disk is now what a rebooted kernel would see *)
  Disk.Blkdev.quiesce dev;
  Disk.Store.copy_into snap (Disk.Blkdev.store dev);
  Disk.Blkdev.set_write_cutoff dev None;
  t.crashed <- None;
  (* the page cache died with the machine *)
  Vm.Pool.invalidate_all m.Machine.pool;
  (* timed journal replay, then a clean mount *)
  let report = Ufs.Recover.run dev in
  let fs =
    Ufs.Fs.mount m.Machine.engine m.Machine.cpu m.Machine.pool dev
      ~features:m.Machine.config.Config.features
      ~costs:m.Machine.config.Config.costs ()
  in
  m.Machine.fs <- fs;
  Nfs.Server.restart t.service ~fs;
  report

let run_clients t f =
  let n = Array.length t.clients in
  let completed = ref 0 in
  let err = ref None in
  Array.iter
    (fun c ->
      Sim.Engine.spawn (engine t)
        ~name:(Printf.sprintf "client.%d" c.id)
        (fun () ->
          (try f c
           with e ->
             if !err = None then
               err := Some (e, Printexc.get_raw_backtrace ()));
          incr completed))
    t.clients;
  Sim.Engine.run (engine t);
  (match !err with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  if !completed < n then
    raise
      (Sim.Engine.Deadlock
         (Printf.sprintf "%d of %d client processes never completed"
            (n - !completed) n))

let run t f =
  let result = ref None in
  Sim.Engine.spawn (engine t) ~name:"experiment" (fun () ->
      match f t with
      | v -> result := Some (Ok v)
      | exception e ->
          result := Some (Error (e, Printexc.get_raw_backtrace ())));
  Sim.Engine.run (engine t);
  match !result with
  | Some (Ok v) -> v
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | None ->
      raise
        (Sim.Engine.Deadlock
           "experiment process never completed (blocked forever)")
