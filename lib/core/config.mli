(** Experiment configurations: one value fully describes a machine —
    disk, memory, file-system layout and kernel feature set.

    The four presets reproduce Figure 9:

    {v
        cluster  rot    UFS          free    write
        size     delay  version      behind  limit
    A   120KB    0      SunOS 4.1.1  Yes     Yes
    B   8KB      4      SunOS 4.1    Yes     Yes
    C   8KB      4      SunOS 4.1    No      Yes
    D   8KB      4      SunOS 4.1    No      No
    v}

    All four share the hardware: an 8 MB, 20 MHz SPARCstation 1 with one
    400 MB 3.5-inch IBM SCSI drive — modelled by
    {!Disk.Device.default_config} and 8 MB of page pool. *)

type vol_spec = {
  disks : int;  (** number of member drives (1 = bare disk, no volume) *)
  layout : Vol.layout;
  stripe_kb : int;  (** stripe unit; only meaningful for [Stripe] *)
}

val single_disk : vol_spec
(** [{ disks = 1; layout = Concat; stripe_kb = 128 }] — the paper's
    hardware. *)

type t = {
  name : string;
  disk : Disk.Device.config;  (** per-member drive model *)
  vol : vol_spec;
  memory_mb : int;
  mkfs : Ufs.Fs.mkfs_options;
  features : Ufs.Types.features;
  costs : Ufs.Costs.t;
}

val config_a : t
(** 120 KB clusters (maxcontig 15), rotdelay 0, clustering + free-behind
    + write limit: the shipped SunOS 4.1.1 tuned as in the paper. *)

val config_b : t
(** Old block I/O, rotdelay 4 ms, but with free-behind and write limit. *)

val config_c : t
(** Old block I/O with only the write limit. *)

val config_d : t
(** Plain SunOS 4.1. *)

val all_figure9 : t list
(** A, B, C, D in paper order. *)

val with_cluster_kb : t -> int -> t
(** Derive a config with a different cluster size (cluster-size sweep);
    8 KB means maxcontig 1. *)

val with_write_limit : t -> int option -> t
val with_free_behind : t -> bool -> t
val with_track_buffer : t -> bool -> t
val with_driver_clustering : t -> bool -> t
val with_queue_policy : t -> Disk.Disksort.policy -> t
val with_vol : t -> ?layout:Vol.layout -> ?stripe_kb:int -> int -> t
(** [with_vol t disks] puts the file system on a volume of [disks]
    identical drives (default stripe, 128 KB unit).  [disks = 1] keeps
    the bare-disk fast path and the name unchanged. *)

val with_journal : ?frags:int -> t -> t
(** Reserve a write-ahead intent journal at mkfs ([frags] defaults to
    {!Ufs.Fs.journal_frags_default}, 1 MB) and append ["/jrnl"] to the
    name.  Metadata mutations then commit through the log; the machine
    becomes crash-recoverable via {!Ufs.Recover} / {!Topology.reboot_server}. *)

val with_rotdelay : t -> int -> t
val with_memory_mb : t -> int -> t
val with_features : t -> Ufs.Types.features -> t
val with_name : t -> string -> t
