type vol_spec = { disks : int; layout : Vol.layout; stripe_kb : int }

let single_disk = { disks = 1; layout = Vol.Concat; stripe_kb = 128 }

type t = {
  name : string;
  disk : Disk.Device.config;
  vol : vol_spec;
  memory_mb : int;
  mkfs : Ufs.Fs.mkfs_options;
  features : Ufs.Types.features;
  costs : Ufs.Costs.t;
}

let base_mkfs = Ufs.Fs.mkfs_defaults

let config_a =
  {
    name = "A";
    disk = Disk.Device.default_config;
    vol = single_disk;
    memory_mb = 8;
    mkfs = { base_mkfs with rotdelay_ms = 0; maxcontig = 15 };
    features = Ufs.Types.features_clustered;
    costs = Ufs.Costs.default;
  }

let config_b =
  {
    name = "B";
    disk = Disk.Device.default_config;
    vol = single_disk;
    memory_mb = 8;
    mkfs = { base_mkfs with rotdelay_ms = 4; maxcontig = 1 };
    features =
      {
        Ufs.Types.features_sunos41 with
        Ufs.Types.free_behind = true;
        write_limit = Some Ufs.Types.write_limit_default;
      };
    costs = Ufs.Costs.default;
  }

let config_c =
  {
    config_b with
    name = "C";
    features =
      {
        Ufs.Types.features_sunos41 with
        Ufs.Types.write_limit = Some Ufs.Types.write_limit_default;
      };
  }

let config_d =
  { config_b with name = "D"; features = Ufs.Types.features_sunos41 }

let all_figure9 = [ config_a; config_b; config_c; config_d ]

let with_cluster_kb t kb =
  let maxcontig = max 1 (kb * 1024 / Ufs.Layout.bsize) in
  {
    t with
    name = Printf.sprintf "%s/cluster%dKB" t.name kb;
    mkfs = { t.mkfs with Ufs.Fs.maxcontig };
  }

let with_write_limit t wl =
  { t with features = { t.features with Ufs.Types.write_limit = wl } }

let with_free_behind t fb =
  { t with features = { t.features with Ufs.Types.free_behind = fb } }

let with_track_buffer t tb =
  { t with disk = { t.disk with Disk.Device.track_buffer = tb } }

let with_driver_clustering t dc =
  { t with disk = { t.disk with Disk.Device.driver_clustering = dc } }

let with_queue_policy t p =
  { t with disk = { t.disk with Disk.Device.policy = p } }

let with_vol t ?(layout = Vol.Stripe) ?(stripe_kb = 128) disks =
  if disks < 1 then invalid_arg "Config.with_vol: disks must be >= 1";
  {
    t with
    name =
      (if disks = 1 then t.name
       else
         Printf.sprintf "%s/%s×%d%s" t.name (Vol.layout_to_string layout) disks
           (if layout = Vol.Stripe then Printf.sprintf "@%dKB" stripe_kb
            else ""));
    vol = { disks; layout; stripe_kb };
  }

let with_journal ?(frags = Ufs.Fs.journal_frags_default) t =
  {
    t with
    name = t.name ^ "/jrnl";
    mkfs = { t.mkfs with Ufs.Fs.journal_frags = frags };
  }

let with_rotdelay t ms = { t with mkfs = { t.mkfs with Ufs.Fs.rotdelay_ms = ms } }
let with_memory_mb t mb = { t with memory_mb = mb }
let with_features t features = { t with features }
let with_name t name = { t with name }
