(** A multi-machine setup: one server machine exporting its UFS over
    NFS to [n] client nodes.

    Everything shares one {!Sim.Engine} (the server machine's), so a
    topology is still a single deterministic simulation.  The server is
    a full {!Machine} — its disk, page pool and pageout daemon behave
    exactly as in local experiments, with an {!Nfs.Server} worker pool
    on top.  Clients are light nodes: a CPU, an RPC channel and an
    {!Nfs.Client} mount, but no local disk or UFS (their cache lives in
    the mount).

    Two wirings ({!kind}):

    - {!Point_to_point} (default): each client gets a private duplex
      {!Net} link to the server — contention only at the server's CPU
      and disk;
    - {!Shared_medium}: every machine is a station on one
      {!Net.Medium} Ethernet segment (server = station 0, client [i] =
      station [i+1]), so clients also contend for the wire itself.

    When a metrics sink is installed ({!Machine.with_metrics_sink}),
    the server machine, the NFS service, the network and every client
    mount register themselves; instances are named [<config>.server],
    [<config>.c<i>.link] (per-client links) or [<config>.net] (the
    shared medium), and [<config>.c<i>]. *)

type kind = Point_to_point | Shared_medium

type attach =
  | Link of Nfs.Proto.msg Net.t  (** private duplex link to the server *)
  | Station of Nfs.Proto.msg Net.Medium.station
      (** this client's station on the shared segment *)

type client = {
  id : int;  (** 0-based; also the RPC client id *)
  cpu : Sim.Cpu.t;
  attach : attach;
  rpc : Nfs.Rpc.t;
  mount : Nfs.Client.t;
}

type t = {
  server : Machine.t;
  service : Nfs.Server.t;
  clients : client array;
  medium : Nfs.Proto.msg Net.Medium.t option;
      (** the shared segment, when [kind] was {!Shared_medium} *)
  mutable crashed : Disk.Store.t option;
      (** platter image latched by {!crash_server}, consumed by
          {!reboot_server} *)
}

val client_link : client -> Nfs.Proto.msg Net.t option
(** The client's private link ([None] on a shared medium). *)

val client_drops : client -> int
(** Drops on the client's private link, both directions; 0 on a shared
    medium (drops there are per-segment — see {!medium}). *)

val medium : t -> Nfs.Proto.msg Net.Medium.t option

val create :
  ?net:Net.config ->
  ?seed:int ->
  ?topology:kind ->
  ?transport:Nfs.Rpc.transport ->
  ?nfsd:int ->
  ?biods:int ->
  ?ra_depth:int ->
  ?dirty_limit:int ->
  ?rpc_timeout:Sim.Time.t ->
  clients:int ->
  Config.t ->
  t
(** Build the server from [Config.t] (mkfs + mount as {!Machine.create})
    and attach [clients] nodes.  [seed] (default 0) derives the
    fault-injection streams ([seed + client id] per link, [seed] for a
    shared medium).  [topology] picks the wiring (default
    {!Point_to_point}); [transport] the RPC retransmission strategy
    (default {!Nfs.Rpc.Fixed}).  [nfsd] sizes the server worker pool
    (default 4); [biods], [ra_depth] and [dirty_limit] configure each
    client mount (see {!Nfs.Client.mount}); [rpc_timeout] is the
    initial retransmission timeout. *)

val engine : t -> Sim.Engine.t

val run_clients : t -> (client -> unit) -> unit
(** Run [f] concurrently on every client node (one simulated process
    per client), drive the engine until everything completes.  An
    exception in any client is re-raised; a client blocked forever
    raises {!Sim.Engine.Deadlock}. *)

val run : t -> (t -> 'a) -> 'a
(** Run a single driver process against the topology (the analogue of
    {!Machine.run} — use {!run_clients} for symmetric load). *)

val crash_server : t -> Disk.Store.t
(** Power-fail the server machine mid-simulation: the NFS service goes
    {e down} (incoming calls dropped, in-progress replies suppressed,
    handle table lost), the drives power-cut ({!Disk.Blkdev.crash_cut} —
    queued and in-flight writes are lost and tallied), and the platter
    image as of this instant is latched for {!reboot_server}.  Clients
    keep running: hard-mount RPCs back off and retransmit until the
    reboot.  Returns the latched image (callers may fsck a copy). *)

val reboot_server : t -> Ufs.Recover.report
(** Bring the crashed server back: restore the latched image, replay
    the intent journal (timed — recovery time lands on the simulation
    clock like any other I/O), mount, and restart the NFS service over
    the new file system with an empty dup cache.  Requires a journaled
    config ({!Config.with_journal}).  Must run inside a simulation
    process (e.g. under {!run}). *)
