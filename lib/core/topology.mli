(** A multi-machine setup: [servers] machines (default 1) exporting
    their UFS file systems over NFS to [n] client nodes.

    Everything shares one {!Sim.Engine} (the first server machine's), so
    a topology is still a single deterministic simulation.  Each server
    is a full {!Machine} — its disk, page pool and pageout daemon behave
    exactly as in local experiments, with an {!Nfs.Server} worker pool
    on top.  Clients are light nodes: a CPU, one RPC channel {e per
    server} and an {!Nfs.Client} mount per server, but no local disk or
    UFS (their cache lives in the mounts).

    Three wirings ({!kind}):

    - {!Point_to_point} (default): each client gets a private duplex
      {!Net} link to every server — contention only at server CPUs and
      disks;
    - {!Shared_medium}: every machine is a station on one {!Net.Medium}
      Ethernet segment (server [s] = station [s], client [i] = station
      [servers + i]), so clients also contend for the wire itself;
    - {!Switched}: every machine hangs off its own full-duplex port of
      one {!Net.Switch} (same numbering as the shared medium) — the
      modern fabric, where the congestion signal is finite output-port
      buffers, not collisions.

    {b Sharding.}  With several servers the namespace is spread by a
    hash of the path ({!server_of_path}); {!shard} picks the mount a
    client should use for a file.  Which server owns a path is a pure
    function of the name, so every client agrees without coordination.

    {b Per-server congestion state.}  A client's RPC channel to each
    server owns one {!Nfs.Rpc.cstate} (RTT estimator, RTO, AIMD
    window).  {!add_mount} attaches an {e additional} mount — its own
    link/station/port, xid space and server dispatcher — that shares
    the existing channel's cstate, so two mounts to one server share one
    cwnd/RTO estimator while mounts to different servers stay
    independent.

    When a metrics sink is installed ({!Machine.with_metrics_sink}),
    the server machines, NFS services, the network and (by default)
    every client mount register themselves; instances are named
    [<config>.server] / [<config>.s<j>.server], [<config>.c<i>.link]
    (per-client links; [.link.s<j>] with several servers),
    [<config>.net] (shared medium) or [<config>.switch] plus
    [<config>(.s<j>).port] (server switch ports), and [<config>.c<i>]
    ([.c<i>.s<j>] with several servers).  Pass
    [~register_clients:false] to skip the per-client sources — at 1024
    clients they would dwarf the snapshot. *)

type kind = Point_to_point | Shared_medium | Switched

type attach =
  | Links of Nfs.Proto.msg Net.t array
      (** private duplex links, one per server *)
  | Station of Nfs.Proto.msg Net.Medium.station
      (** this client's station on the shared segment *)
  | Port of Nfs.Proto.msg Net.Switch.port
      (** this client's switch port *)

type mountpoint = {
  m_server : int;  (** which server this mount points at *)
  m_rpc : Nfs.Rpc.t;
  m_mount : Nfs.Client.t;
}

type client = {
  id : int;  (** 0-based; also the RPC client id *)
  cpu : Sim.Cpu.t;
  attach : attach;
  rpc : Nfs.Rpc.t;  (** = [mounts.(0).m_rpc] *)
  mount : Nfs.Client.t;  (** = [mounts.(0).m_mount] *)
  mounts : mountpoint array;  (** one per server *)
}

type t = {
  server : Machine.t;  (** = [servers.(0)] — the 1-server API *)
  service : Nfs.Server.t;  (** = [services.(0)] *)
  servers : Machine.t array;
  services : Nfs.Server.t array;
  clients : client array;
  medium : Nfs.Proto.msg Net.Medium.t option;
      (** the shared segment, when [kind] was {!Shared_medium} *)
  switch : Nfs.Proto.msg Net.Switch.t option;
      (** the fabric, when [kind] was {!Switched} *)
  srv_stations : Nfs.Proto.msg Net.Medium.station array option;
  srv_ports : Nfs.Proto.msg Net.Switch.port array option;
  crashed : Disk.Store.t option array;
      (** platter images latched by {!crash_server}, consumed by
          {!reboot_server}; indexed by server *)
  topo_kind : kind;
  net_cfg : Net.config;
  seed : int;
  transport : Nfs.Rpc.transport option;
  rpc_timeout : Sim.Time.t option;
  mutable next_rpc_id : int;
}

val client_link : client -> Nfs.Proto.msg Net.t option
(** The client's private link to server 0 ([None] on a shared medium or
    switch). *)

val client_drops : client -> int
(** Drops on the client's private links (all servers, both directions)
    or its switch uplink; 0 on a shared medium (drops there are
    per-segment — see {!medium}). *)

val medium : t -> Nfs.Proto.msg Net.Medium.t option
val switch : t -> Nfs.Proto.msg Net.Switch.t option

val create :
  ?net:Net.config ->
  ?seed:int ->
  ?topology:kind ->
  ?transport:Nfs.Rpc.transport ->
  ?nfsd:int ->
  ?biods:int ->
  ?ra_depth:int ->
  ?dirty_limit:int ->
  ?rpc_timeout:Sim.Time.t ->
  ?servers:int ->
  ?ports_buffer:int ->
  ?register_clients:bool ->
  clients:int ->
  Config.t ->
  t
(** Build [servers] (default 1) server machines from [Config.t] (mkfs +
    mount as {!Machine.create}; extra servers are named
    [<name>.s<j>] and share the first machine's engine) and attach
    [clients] nodes, each with one RPC channel and mount per server.
    [seed] (default 0) derives the fault-injection streams
    ([seed + client*servers + server] per p2p link, [seed] for a shared
    medium or switch).  [topology] picks the wiring (default
    {!Point_to_point}); [transport] the RPC retransmission strategy
    (default {!Nfs.Rpc.Fixed}).  [nfsd] sizes each server's worker pool
    (default 4); [biods], [ra_depth] and [dirty_limit] configure each
    client mount (see {!Nfs.Client.mount}); [rpc_timeout] is the
    initial retransmission timeout.  [ports_buffer] sizes the switch's
    per-output-port buffer in frames (default 64; {!Switched} only).
    [register_clients] (default true) controls per-client metrics
    registration. *)

val engine : t -> Sim.Engine.t

val nservers : t -> int

val server_of_path : t -> string -> int
(** Which server owns a path: FNV-1a hash mod server count (always 0
    with one server). *)

val shard : t -> client -> string -> Nfs.Client.t
(** The mount this client should use for this path. *)

val mount_of : client -> server:int -> Nfs.Client.t

val add_mount :
  t ->
  client ->
  server:int ->
  ?biods:int ->
  ?ra_depth:int ->
  ?dirty_limit:int ->
  unit ->
  mountpoint
(** Attach an additional mount from [client] to [server]: a genuinely
    new transport attachment (own p2p link, station or switch port, own
    xid space, and a new dispatcher on the server) whose RPC channel
    {e shares} the per-server {!Nfs.Rpc.cstate} with the client's
    existing mount to that server — per-server, not per-mount,
    congestion state.  Must be called before driving load (it spawns
    server-side processes).  The returned mountpoint is not added to
    [client.mounts]. *)

val run_clients : t -> (client -> unit) -> unit
(** Run [f] concurrently on every client node (one simulated process
    per client), drive the engine until everything completes.  An
    exception in any client is re-raised; a client blocked forever
    raises {!Sim.Engine.Deadlock}. *)

val run : t -> (t -> 'a) -> 'a
(** Run a single driver process against the topology (the analogue of
    {!Machine.run} — use {!run_clients} for symmetric load). *)

val crash_server : ?server:int -> t -> Disk.Store.t
(** Power-fail one server machine (default 0) mid-simulation: the NFS
    service goes {e down} (incoming calls dropped, in-progress replies
    suppressed, handle table lost), the drives power-cut
    ({!Disk.Blkdev.crash_cut} — queued and in-flight writes are lost and
    tallied), and the platter image as of this instant is latched for
    {!reboot_server}.  Clients keep running: hard-mount RPCs back off
    and retransmit until the reboot.  Returns the latched image (callers
    may fsck a copy). *)

val reboot_server : ?server:int -> t -> Ufs.Recover.report
(** Bring a crashed server back: restore the latched image, replay the
    intent journal (timed — recovery time lands on the simulation clock
    like any other I/O), mount, and restart the NFS service over the new
    file system with an empty dup cache.  Requires a journaled config
    ({!Config.with_journal}).  Must run inside a simulation process
    (e.g. under {!run}). *)
