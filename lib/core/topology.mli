(** A multi-machine setup: one server machine exporting its UFS over
    NFS to [n] client nodes, each behind its own duplex {!Net} link.

    Everything shares one {!Sim.Engine} (the server machine's), so a
    topology is still a single deterministic simulation.  The server is
    a full {!Machine} — its disk, page pool and pageout daemon behave
    exactly as in local experiments, with an {!Nfs.Server} worker pool
    on top.  Clients are light nodes: a CPU, an RPC channel and an
    {!Nfs.Client} mount, but no local disk or UFS (their cache lives in
    the mount).

    When a metrics sink is installed ({!Machine.with_metrics_sink}),
    the server machine, the NFS service, every link and every client
    mount register themselves; instances are named
    [<config>.server], [<config>.c<i>.link] and [<config>.c<i>]. *)

type client = {
  id : int;  (** 0-based; also the RPC client id *)
  cpu : Sim.Cpu.t;
  link : Nfs.Proto.msg Net.t;
  rpc : Nfs.Rpc.t;
  mount : Nfs.Client.t;
}

type t = {
  server : Machine.t;
  service : Nfs.Server.t;
  clients : client array;
}

val create :
  ?net:Net.config ->
  ?seed:int ->
  ?nfsd:int ->
  ?biods:int ->
  ?ra_depth:int ->
  ?dirty_limit:int ->
  ?rpc_timeout:Sim.Time.t ->
  clients:int ->
  Config.t ->
  t
(** Build the server from [Config.t] (mkfs + mount as {!Machine.create})
    and attach [clients] nodes over per-client links.  [seed] (default 0)
    derives each link's fault-injection stream ([seed + client id]).
    [nfsd] sizes the server worker pool (default 4); [biods], [ra_depth]
    and [dirty_limit] configure each client mount (see
    {!Nfs.Client.mount}); [rpc_timeout] is the initial retransmission
    timeout. *)

val engine : t -> Sim.Engine.t

val run_clients : t -> (client -> unit) -> unit
(** Run [f] concurrently on every client node (one simulated process
    per client), drive the engine until everything completes.  An
    exception in any client is re-raised; a client blocked forever
    raises {!Sim.Engine.Deadlock}. *)

val run : t -> (t -> 'a) -> 'a
(** Run a single driver process against the topology (the analogue of
    {!Machine.run} — use {!run_clients} for symmetric load). *)
