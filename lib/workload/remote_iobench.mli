(** IObench over the wire: the same five phases as {!Iobench}, issued
    through an {!Nfs.Client} mount instead of a local UFS.

    The request stream is identical to the local benchmark — same 8 KB
    requests, same seeded random offsets ({!Iobench.random_offsets}) —
    so a remote/local pair of runs isolates exactly the cost of the
    network hop and what the client-side clustering machinery (biod
    read-ahead, write-behind gathering) wins back.

    [engine]/[cpu] are the {e client} machine's engine and CPU: elapsed
    time and system-CPU are measured on the caller's side of the wire.
    Phases start cold via {!Nfs.Client.invalidate}.  Write phases time
    through {!Nfs.Client.fsync}, so every WRITE RPC is acknowledged
    inside the measured window.

    All functions must run inside a simulation process. *)

val run_phase :
  engine:Sim.Engine.t ->
  cpu:Sim.Cpu.t ->
  Nfs.Client.t ->
  Iobench.config ->
  Iobench.kind ->
  Iobench.result

val prepare : Nfs.Client.t -> Iobench.config -> unit
(** Create and fully write the benchmark file (untimed, fsynced). *)

val run_all :
  engine:Sim.Engine.t ->
  cpu:Sim.Cpu.t ->
  Nfs.Client.t ->
  Iobench.config ->
  Iobench.result list
