(** IObench: the paper's transfer-rate benchmark (Figures 9-11).

    Five I/O types, named as in the paper: first letter F(ile system),
    second S(equential)/R(andom), third R(ead)/W(rite)/U(pdate) — "the
    difference between write and update is that in the update case the
    file's blocks have already been allocated".

    Sequential phases stream the whole file in 8 KB requests; random
    phases issue a fixed number of 8 KB requests at uniformly random
    block-aligned offsets.  Writes and updates are timed through a final
    fsync so the asynchronous queue drains inside the measured window
    (and so config "D"'s deep elevator-sorted queue shows its FRU
    advantage, as in the paper).

    Between phases the file's cached pages are invalidated and its
    read-ahead state reset, so each phase starts cold, like a separate
    benchmark run.

    All functions must run inside a simulation process. *)

type kind = FSR | FSU | FSW | FRR | FRU

val kind_to_string : kind -> string

type config = {
  path : string;
  file_mb : int;  (** 16 MB against 8 MB of RAM in the paper's setup *)
  request_bytes : int;  (** 8192 *)
  random_ops : int;  (** requests per random phase *)
  seed : int;
}

val default_config : config

type result = {
  kind : kind;
  bytes_moved : int;
  elapsed : Sim.Time.t;
  kb_per_sec : float;
  sys_cpu : Sim.Time.t;  (** system CPU charged during the phase *)
}

val reset_file_state : Ufs.Types.fs -> Ufs.Types.inode -> unit
(** Push the file's delayed writes, drop its cached pages and reset its
    read-ahead state — the between-phases cold start.  Exported so the
    NFS experiments can cool the {e server's} cache between remote
    phases the way local phases cool theirs. *)

val random_offsets : config -> int array
(** The block-aligned offset sequence of the random phases, derived
    from [cfg.seed] — exported so remote (NFS) variants replay the
    exact same access stream. *)

val run_phase : Ufs.Types.fs -> config -> kind -> result
(** Run one phase.  FSU/FSR/FRR/FRU require the file to exist (run FSW
    first, or call {!prepare}). *)

val prepare : Ufs.Types.fs -> config -> unit
(** Create and fully write the benchmark file (untimed), for running a
    single non-FSW phase in isolation. *)

val run_all : Ufs.Types.fs -> config -> result list
(** FSW, FSU, FSR, FRR, FRU in an order that lets each phase reuse the
    allocation state the paper assumes. *)
