type result = {
  file_mb : int;
  elapsed : Sim.Time.t;
  sys_cpu : Sim.Time.t;
  kb_per_sec : float;
}

let run (fs : Ufs.Types.fs) ~path ~file_mb =
  let ip = Ufs.Fs.namei fs path in
  Fun.protect
    ~finally:(fun () -> Ufs.Iops.iput fs ip)
    (fun () ->
      (* cold start, as in a fresh run *)
      Ufs.Putpage.push_delayed fs ip ~sync:true ();
      Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
      Ufs.Types.reset_rstreams ip;
      let engine = fs.Ufs.Types.engine in
      let cpu = fs.Ufs.Types.cpu in
      let total = file_mb * 1024 * 1024 in
      (* map the file into an address space, figure-1 style: the
         segment's fault handler charges the fault cost and calls the
         vnode's getpage *)
      let asp = Vm.Seg.create engine in
      let vn = Ufs.Iops.vnode_of fs ip in
      let mapping =
        Vm.Seg.map asp ~len:total ~pagesize:Ufs.Layout.bsize
          ~fault:(fun ~off ->
            Sim.Cpu.charge cpu ~label:"fault" fs.Ufs.Types.costs.Ufs.Costs.fault;
            match Vfs.Vnode.getpage vn ~off ~len:Ufs.Layout.bsize ~hint:0 with
            | [ page ] -> page
            | _ -> assert false)
          ()
      in
      let t0 = Sim.Engine.now engine in
      let c0 = Sim.Cpu.sys_time cpu in
      let npages = total / Ufs.Layout.bsize in
      for p = 0 to npages - 1 do
        (* the benchmark touches one word per page: a translation miss
           faults, repeated touches are free *)
        let page = Vm.Seg.fault asp (Vm.Seg.base mapping + (p * Ufs.Layout.bsize)) in
        Vm.Page.set_referenced page true
      done;
      let elapsed = Sim.Engine.now engine - t0 in
      Vm.Seg.unmap asp mapping;
      {
        file_mb;
        elapsed;
        sys_cpu = Sim.Cpu.sys_time cpu - c0;
        kb_per_sec =
          (if elapsed = 0 then 0.
           else float_of_int total /. 1024. /. Sim.Time.to_sec_float elapsed);
      })
