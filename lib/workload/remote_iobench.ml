let strip_slash path =
  if String.length path > 0 && path.[0] = '/' then
    String.sub path 1 (String.length path - 1)
  else path

let measure ~engine ~cpu kind f =
  let t0 = Sim.Engine.now engine in
  let c0 = Sim.Cpu.sys_time cpu in
  let bytes = f () in
  let elapsed = Sim.Engine.now engine - t0 in
  let sys_cpu = Sim.Cpu.sys_time cpu - c0 in
  {
    Iobench.kind;
    bytes_moved = bytes;
    elapsed;
    kb_per_sec =
      (if elapsed = 0 then 0.
       else float_of_int bytes /. 1024. /. Sim.Time.to_sec_float elapsed);
    sys_cpu;
  }

let seq_write file (cfg : Iobench.config) ~fill =
  let total = cfg.file_mb * 1024 * 1024 in
  let buf = Bytes.make cfg.request_bytes fill in
  let rec loop off =
    if off < total then begin
      Nfs.Client.write file ~off ~buf ~len:cfg.request_bytes;
      loop (off + cfg.request_bytes)
    end
  in
  loop 0;
  Nfs.Client.fsync file;
  total

let seq_read file (cfg : Iobench.config) =
  let total = cfg.file_mb * 1024 * 1024 in
  let buf = Bytes.create cfg.request_bytes in
  let rec loop off acc =
    if off < total then begin
      let n = Nfs.Client.read file ~off ~buf ~len:cfg.request_bytes in
      loop (off + cfg.request_bytes) (acc + n)
    end
    else acc
  in
  loop 0 0

let random_read file (cfg : Iobench.config) =
  let buf = Bytes.create cfg.request_bytes in
  Array.fold_left
    (fun acc off -> acc + Nfs.Client.read file ~off ~buf ~len:cfg.request_bytes)
    0
    (Iobench.random_offsets cfg)

let random_update file (cfg : Iobench.config) =
  let buf = Bytes.make cfg.request_bytes 'u' in
  Array.iter
    (fun off -> Nfs.Client.write file ~off ~buf ~len:cfg.request_bytes)
    (Iobench.random_offsets cfg);
  Nfs.Client.fsync file;
  cfg.random_ops * cfg.request_bytes

let the_file mount (cfg : Iobench.config) ~create =
  let name = strip_slash cfg.path in
  if create then Nfs.Client.create mount name
  else
    match Nfs.Client.lookup mount name with
    | Some f -> f
    | None -> failwith ("remote iobench: no such file " ^ name)

let prepare mount (cfg : Iobench.config) =
  let f = the_file mount cfg ~create:true in
  ignore (seq_write f cfg ~fill:'p');
  Nfs.Client.invalidate f

let run_phase ~engine ~cpu mount (cfg : Iobench.config) (kind : Iobench.kind) =
  let measure = measure ~engine ~cpu in
  match kind with
  | Iobench.FSW ->
      let f = the_file mount cfg ~create:true in
      measure Iobench.FSW (fun () -> seq_write f cfg ~fill:'w')
  | Iobench.FSU ->
      let f = the_file mount cfg ~create:false in
      Nfs.Client.invalidate f;
      measure Iobench.FSU (fun () -> seq_write f cfg ~fill:'u')
  | Iobench.FSR ->
      let f = the_file mount cfg ~create:false in
      Nfs.Client.invalidate f;
      measure Iobench.FSR (fun () -> seq_read f cfg)
  | Iobench.FRR ->
      let f = the_file mount cfg ~create:false in
      Nfs.Client.invalidate f;
      measure Iobench.FRR (fun () -> random_read f cfg)
  | Iobench.FRU ->
      let f = the_file mount cfg ~create:false in
      Nfs.Client.invalidate f;
      measure Iobench.FRU (fun () -> random_update f cfg)

let run_all ~engine ~cpu mount cfg =
  List.map
    (run_phase ~engine ~cpu mount cfg)
    [ Iobench.FSW; Iobench.FSU; Iobench.FSR; Iobench.FRR; Iobench.FRU ]
