type kind = FSR | FSU | FSW | FRR | FRU

let kind_to_string = function
  | FSR -> "FSR"
  | FSU -> "FSU"
  | FSW -> "FSW"
  | FRR -> "FRR"
  | FRU -> "FRU"

type config = {
  path : string;
  file_mb : int;
  request_bytes : int;
  random_ops : int;
  seed : int;
}

let default_config =
  { path = "/iobench"; file_mb = 16; request_bytes = 8192; random_ops = 2048; seed = 42 }

type result = {
  kind : kind;
  bytes_moved : int;
  elapsed : Sim.Time.t;
  kb_per_sec : float;
  sys_cpu : Sim.Time.t;
}

(* Start a phase cold: drop the file's cached pages and predictor state,
   as if this were a fresh benchmark run on a warm system. *)
let reset_file_state (fs : Ufs.Types.fs) (ip : Ufs.Types.inode) =
  Ufs.Putpage.push_delayed fs ip ~sync:true ();
  Ufs.Io.wait_writes fs ip;
  Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
  Ufs.Types.reset_rstreams ip;
  ip.Ufs.Types.bmap_cache <- None

let measure (fs : Ufs.Types.fs) kind f =
  let engine = fs.Ufs.Types.engine in
  let t0 = Sim.Engine.now engine in
  let c0 = Sim.Cpu.sys_time fs.Ufs.Types.cpu in
  let bytes = f () in
  let elapsed = Sim.Engine.now engine - t0 in
  let sys_cpu = Sim.Cpu.sys_time fs.Ufs.Types.cpu - c0 in
  {
    kind;
    bytes_moved = bytes;
    elapsed;
    kb_per_sec =
      (if elapsed = 0 then 0.
       else float_of_int bytes /. 1024. /. Sim.Time.to_sec_float elapsed);
    sys_cpu;
  }

(* Write phases time the write(2) loop through a final fsync, so the
   asynchronous queue drains inside the measured window; the queue-depth
   effects the paper discusses (the elevator sorting an unthrottled
   random-update stream into near-sequential order) happen during the
   drain. *)
let seq_write fs ip cfg ~fill =
  let total = cfg.file_mb * 1024 * 1024 in
  let buf = Bytes.make cfg.request_bytes fill in
  let rec loop off =
    if off < total then begin
      Ufs.Fs.write fs ip ~off ~buf ~len:cfg.request_bytes;
      loop (off + cfg.request_bytes)
    end
  in
  loop 0;
  Ufs.Fs.fsync fs ip;
  total

let seq_read fs ip cfg =
  let total = cfg.file_mb * 1024 * 1024 in
  let buf = Bytes.create cfg.request_bytes in
  let rec loop off acc =
    if off < total then begin
      let n = Ufs.Fs.read fs ip ~off ~buf ~len:cfg.request_bytes in
      loop (off + cfg.request_bytes) (acc + n)
    end
    else acc
  in
  loop 0 0

let random_offsets cfg =
  let rng = Sim.Rng.create ~seed:cfg.seed in
  let nblocks = cfg.file_mb * 1024 * 1024 / cfg.request_bytes in
  Array.init cfg.random_ops (fun _ ->
      Sim.Rng.int rng nblocks * cfg.request_bytes)

let random_read fs ip cfg =
  let buf = Bytes.create cfg.request_bytes in
  Array.fold_left
    (fun acc off -> acc + Ufs.Fs.read fs ip ~off ~buf ~len:cfg.request_bytes)
    0 (random_offsets cfg)

let random_update fs ip cfg =
  let buf = Bytes.make cfg.request_bytes 'u' in
  Array.iter
    (fun off -> Ufs.Fs.write fs ip ~off ~buf ~len:cfg.request_bytes)
    (random_offsets cfg);
  Ufs.Fs.fsync fs ip;
  cfg.random_ops * cfg.request_bytes

let with_file fs cfg ~create f =
  let ip =
    if create then Ufs.Fs.creat fs cfg.path else Ufs.Fs.namei fs cfg.path
  in
  Fun.protect
    ~finally:(fun () -> Ufs.Iops.iput fs ip)
    (fun () -> f ip)

let prepare fs cfg =
  with_file fs cfg ~create:true (fun ip ->
      ignore (seq_write fs ip cfg ~fill:'p');
      reset_file_state fs ip)

let run_phase fs cfg kind =
  match kind with
  | FSW ->
      (* fresh allocation: recreate the file *)
      with_file fs cfg ~create:true (fun ip ->
          measure fs FSW (fun () -> seq_write fs ip cfg ~fill:'w'))
  | FSU ->
      with_file fs cfg ~create:false (fun ip ->
          reset_file_state fs ip;
          measure fs FSU (fun () -> seq_write fs ip cfg ~fill:'u'))
  | FSR ->
      with_file fs cfg ~create:false (fun ip ->
          reset_file_state fs ip;
          measure fs FSR (fun () -> seq_read fs ip cfg))
  | FRR ->
      with_file fs cfg ~create:false (fun ip ->
          reset_file_state fs ip;
          measure fs FRR (fun () -> random_read fs ip cfg))
  | FRU ->
      with_file fs cfg ~create:false (fun ip ->
          reset_file_state fs ip;
          measure fs FRU (fun () -> random_update fs ip cfg))

let run_all fs cfg =
  List.map (run_phase fs cfg) [ FSW; FSU; FSR; FRR; FRU ]
