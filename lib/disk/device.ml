type config = {
  geom : Geom.t;
  seek : Seek.t;
  track_buffer : bool;
  bus_bytes_per_sec : int;
  cmd_overhead : Sim.Time.t;
  head_switch : Sim.Time.t;
  policy : Disksort.policy;
  driver_clustering : bool;
}

let default_config =
  {
    geom = Geom.sun0400;
    seek = Seek.default;
    track_buffer = true;
    bus_bytes_per_sec = 4_000_000;
    cmd_overhead = Sim.Time.ms 1;
    head_switch = Sim.Time.ms 1;
    policy = Disksort.Elevator;
    driver_clustering = false;
  }

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable busy : Sim.Time.t;
  mutable seek_time : Sim.Time.t;
  mutable rot_wait : Sim.Time.t;
  mutable transfer_time : Sim.Time.t;
  mutable coalesced : int;
  mutable crash_dropped_reqs : int;
  mutable crash_dropped_bytes : int;
  read_latency : Sim.Stats.Summary.t;
  write_latency : Sim.Stats.Summary.t;
  queue_depth : Sim.Stats.Summary.t;
  queue_wait : Sim.Stats.Summary.t;
  service : Sim.Stats.Summary.t;
  seek_per_io : Sim.Stats.Summary.t;
  rot_per_io : Sim.Stats.Summary.t;
  xfer_per_io : Sim.Stats.Summary.t;
}

type event = {
  at : Sim.Time.t;
  kind : Request.kind;
  sector : int;
  count : int;
  buffered_hit : bool;
}

type t = {
  engine : Sim.Engine.t;
  cfg : config;
  st : Store.t;
  queue : Disksort.t;
  work : Sim.Condition.t;
  idle : Sim.Condition.t;
  tbuf : Track_buffer.t;
  mutable cur_cyl : int;
  mutable cur_head : int;
  mutable head_sector : int;  (* logical sector just past the last transfer *)
  mutable last_read_end : int;  (* for sequential-streaming detection *)
  mutable last_read_end_time : Sim.Time.t;
  mutable servicing : bool;
  mutable inflight : Request.t list;  (* popped from the queue, not yet done *)
  mutable write_cutoff : int option;
      (* crash-point latch: number of further write completions allowed
         to reach the store; once it hits zero, write data is silently
         discarded — the platter state as of the k-th write boundary *)
  stats : stats;
  trace : event Sim.Trace.t;
}

let mk_stats () =
  {
    reads = 0;
    writes = 0;
    sectors_read = 0;
    sectors_written = 0;
    busy = 0;
    seek_time = 0;
    rot_wait = 0;
    transfer_time = 0;
    coalesced = 0;
    crash_dropped_reqs = 0;
    crash_dropped_bytes = 0;
    read_latency = Sim.Stats.Summary.create ();
    write_latency = Sim.Stats.Summary.create ();
    queue_depth = Sim.Stats.Summary.create ();
    queue_wait = Sim.Stats.Summary.create ();
    service = Sim.Stats.Summary.create ();
    seek_per_io = Sim.Stats.Summary.create ();
    rot_per_io = Sim.Stats.Summary.create ();
    xfer_per_io = Sim.Stats.Summary.create ();
  }

(* Split a sector run into per-track segments. *)
let segments geom ~sector ~count =
  let rec loop s n acc =
    if n = 0 then List.rev acc
    else
      let chs = Geom.to_chs geom s in
      let in_track = min n (Geom.sectors_in_track_after geom chs) in
      loop (s + in_track) (n - in_track) ((s, in_track, chs) :: acc)
  in
  loop sector count []

(* Sequential-streaming fast path: drives with a read-ahead buffer keep
   reading past the end of a request, so a read that continues exactly
   where the previous one ended is served partly from the buffer (at
   bus speed) and partly by staying in the data stream (at media rate),
   with no rotational re-alignment — the behaviour that lets the
   clustered file system run the disk at its full bandwidth.  Returns
   the duration, or None when the pattern does not apply (non-
   sequential, buffer wrapped, or track buffering disabled). *)
let try_stream_read d ~t0 (r : Request.t) =
  if
    (not d.cfg.track_buffer)
    || r.Request.kind <> Request.Read
    || r.Request.sector <> d.last_read_end
  then None
  else begin
    let geom = d.cfg.geom in
    let chs = Geom.to_chs geom r.Request.sector in
    let sector_time = Geom.sector_time geom ~spt:chs.Geom.spt in
    let start = t0 + d.cfg.cmd_overhead in
    let elapsed = start - d.last_read_end_time in
    let elapsed_sectors = elapsed / sector_time in
    if elapsed_sectors >= chs.Geom.spt then None (* read-ahead buffer wrapped *)
    else begin
      let buffered = min r.Request.count elapsed_sectors in
      let rest = r.Request.count - buffered in
      let bus =
        buffered * geom.Geom.sector_bytes * 1_000_000 / d.cfg.bus_bytes_per_sec
      in
      let xfer = rest * sector_time in
      Some (d.cfg.cmd_overhead + bus + xfer, bus + xfer)
    end
  end

(* Virtual-time cost of servicing [r] starting at time [t0].  Also
   updates head position and track buffer.  Returns (duration,
   fully_buffered, seek_us, rot_us, xfer_us). *)
let service_cost d ~t0 (r : Request.t) =
  let geom = d.cfg.geom in
  let segs = segments geom ~sector:r.Request.sector ~count:r.Request.count in
  let t = ref (t0 + d.cfg.cmd_overhead) in
  let seek_us = ref 0 and rot_us = ref 0 and xfer_us = ref 0 in
  let all_buffered = ref true in
  let serve_seg (s0, n, (chs : Geom.chs)) =
    let is_read = r.Request.kind = Request.Read in
    let hit =
      d.cfg.track_buffer && is_read
      && Track_buffer.holds d.tbuf ~cyl:chs.cyl ~head:chs.head
    in
    ignore s0;
    if hit then begin
      Track_buffer.record_hit d.tbuf;
      let bytes = n * geom.Geom.sector_bytes in
      let bus = bytes * 1_000_000 / d.cfg.bus_bytes_per_sec in
      t := !t + bus;
      xfer_us := !xfer_us + bus
    end
    else begin
      all_buffered := false;
      if d.cfg.track_buffer && is_read then Track_buffer.record_miss d.tbuf;
      (* mechanical: seek / head switch, rotational latency, transfer *)
      if chs.cyl <> d.cur_cyl then begin
        let sk = Seek.time d.cfg.seek ~from_cyl:d.cur_cyl ~to_cyl:chs.cyl in
        t := !t + sk;
        seek_us := !seek_us + sk;
        d.cur_cyl <- chs.cyl;
        d.cur_head <- chs.head
      end
      else if chs.head <> d.cur_head then begin
        t := !t + d.cfg.head_switch;
        d.cur_head <- chs.head
      end;
      let rot = Geom.rotation_time geom in
      let target = Geom.sector_angle geom chs in
      let cur = Geom.angle_at geom !t in
      let frac = target -. cur in
      let frac = if frac < 0. then frac +. 1. else frac in
      let wait = int_of_float (frac *. float_of_int rot) in
      t := !t + wait;
      rot_us := !rot_us + wait;
      let xfer = n * Geom.sector_time geom ~spt:chs.spt in
      t := !t + xfer;
      xfer_us := !xfer_us + xfer;
      if d.cfg.track_buffer then
        if is_read then Track_buffer.fill d.tbuf ~cyl:chs.cyl ~head:chs.head
        else Track_buffer.invalidate_if d.tbuf ~cyl:chs.cyl ~head:chs.head
    end
  in
  List.iter serve_seg segs;
  (!t - t0, !all_buffered, !seek_us, !rot_us, !xfer_us)

(* Move the data for a completed request between buffer and store.  A
   write past the crash-point latch completes normally from the
   caller's point of view but its bytes never reach the platter — the
   image is frozen at the k-th write boundary. *)
let do_data d (r : Request.t) =
  let sb = d.cfg.geom.Geom.sector_bytes in
  let off = r.Request.sector * sb and len = r.Request.count * sb in
  match r.Request.kind with
  | Request.Read -> Store.read d.st ~off ~len r.Request.buf r.Request.buf_off
  | Request.Write -> (
      match d.write_cutoff with
      | Some n when n <= 0 ->
          d.stats.crash_dropped_reqs <- d.stats.crash_dropped_reqs + 1;
          d.stats.crash_dropped_bytes <- d.stats.crash_dropped_bytes + len
      | cutoff ->
          (match cutoff with
          | Some n -> d.write_cutoff <- Some (n - 1)
          | None -> ());
          Store.write d.st ~off ~len r.Request.buf r.Request.buf_off)

let finish d r =
  do_data d r;
  let now = Sim.Engine.now d.engine in
  Sim.Stats.Summary.add d.stats.queue_wait
    (float_of_int (r.Request.start_at - r.Request.enq_at));
  Sim.Stats.Summary.add d.stats.service
    (float_of_int (now - r.Request.start_at));
  (* latency is measured as now - enq_at, not Request.latency: finish_at
     is only stamped by Request.complete below, so the accessor would
     read an unset field here *)
  (match r.Request.kind with
  | Request.Read ->
      d.stats.reads <- d.stats.reads + 1;
      d.stats.sectors_read <- d.stats.sectors_read + r.Request.count;
      Sim.Stats.Summary.add d.stats.read_latency
        (float_of_int (now - r.Request.enq_at))
  | Request.Write ->
      d.stats.writes <- d.stats.writes + 1;
      d.stats.sectors_written <- d.stats.sectors_written + r.Request.count;
      Sim.Stats.Summary.add d.stats.write_latency
        (float_of_int (now - r.Request.enq_at)));
  Request.complete r ~now

(* Post-service head/stream bookkeeping shared by both service paths. *)
let note_transfer_end d (r : Request.t) ~finish =
  let endsec = Request.end_sector r in
  let chs = Geom.to_chs d.cfg.geom (endsec - 1) in
  d.cur_cyl <- chs.Geom.cyl;
  d.cur_head <- chs.Geom.head;
  d.head_sector <- endsec;
  match r.Request.kind with
  | Request.Read ->
      d.last_read_end <- endsec;
      d.last_read_end_time <- finish;
      if d.cfg.track_buffer then
        Track_buffer.fill d.tbuf ~cyl:chs.Geom.cyl ~head:chs.Geom.head
  | Request.Write ->
      (* the head moved for a write; the read-ahead stream is broken *)
      d.last_read_end <- -1

let rec service_loop d () =
  match Disksort.next d.queue ~head_sector:d.head_sector with
  | None ->
      d.servicing <- false;
      Sim.Condition.broadcast d.idle;
      Sim.Condition.wait d.work;
      d.servicing <- true;
      service_loop d ()
  | Some r ->
      let absorbed =
        if d.cfg.driver_clustering then Disksort.absorb_contiguous d.queue r
        else []
      in
      d.stats.coalesced <- d.stats.coalesced + List.length absorbed;
      let group = List.sort (fun (a : Request.t) b -> compare a.sector b.sector)
          (r :: absorbed)
      in
      let first = List.hd group in
      let total_count =
        List.fold_left (fun acc (x : Request.t) -> acc + x.count) 0 group
      in
      let t0 = Sim.Engine.now d.engine in
      List.iter (fun x -> Request.set_start_at x t0) group;
      (* cost the whole contiguous group as one transfer *)
      let probe =
        if List.length group = 1 then r
        else
          Request.make ~kind:r.Request.kind ~sector:first.Request.sector
            ~count:total_count
            ~buf:(Bytes.create (total_count * d.cfg.geom.Geom.sector_bytes))
            ~buf_off:0 ()
      in
      let dur, hit, sk, rw, xf =
        match try_stream_read d ~t0 probe with
        | Some (dur, xfer) -> (dur, true, 0, 0, xfer)
        | None -> service_cost d ~t0 probe
      in
      note_transfer_end d probe ~finish:(t0 + dur);
      List.iter
        (fun (x : Request.t) ->
          let part v = v * x.Request.count / total_count in
          Request.set_split x ~seek:(part sk) ~rot:(part rw) ~xfer:(part xf))
        group;
      d.stats.busy <- d.stats.busy + dur;
      d.stats.seek_time <- d.stats.seek_time + sk;
      d.stats.rot_wait <- d.stats.rot_wait + rw;
      d.stats.transfer_time <- d.stats.transfer_time + xf;
      Sim.Stats.Summary.add d.stats.seek_per_io (float_of_int sk);
      Sim.Stats.Summary.add d.stats.rot_per_io (float_of_int rw);
      Sim.Stats.Summary.add d.stats.xfer_per_io (float_of_int xf);
      Sim.Trace.emit d.trace (fun () ->
          {
            at = t0;
            kind = r.Request.kind;
            sector = first.Request.sector;
            count = total_count;
            buffered_hit = hit;
          });
      d.inflight <- group;
      Sim.Engine.sleep d.engine dur;
      List.iter (finish d) group;
      d.inflight <- [];
      service_loop d ()

let create ?store engine cfg =
  let st =
    match store with
    | None -> Store.create ~size:(Geom.capacity_bytes cfg.geom)
    | Some st ->
        if Store.size st <> Geom.capacity_bytes cfg.geom then
          invalid_arg "Device.create: store size does not match geometry";
        st
  in
  let d =
    {
      engine;
      cfg;
      st;
      queue = Disksort.create cfg.policy;
      work = Sim.Condition.create engine "disk-work";
      idle = Sim.Condition.create engine "disk-idle";
      tbuf = Track_buffer.create ();
      cur_cyl = 0;
      cur_head = 0;
      head_sector = 0;
      last_read_end = -1;
      last_read_end_time = 0;
      servicing = false;
      inflight = [];
      write_cutoff = None;
      stats = mk_stats ();
      trace = Sim.Trace.create ();
    }
  in
  Sim.Engine.spawn engine ~name:"disk" (service_loop d);
  d

let config d = d.cfg
let store d = d.st
let engine d = d.engine
let sector_bytes d = d.cfg.geom.Geom.sector_bytes
let capacity_bytes d = Geom.capacity_bytes d.cfg.geom

let submit d r =
  let sb = sector_bytes d in
  if (r.Request.sector + r.Request.count) * sb > capacity_bytes d then
    invalid_arg "Device.submit: request past end of disk";
  Request.set_enq_at r (Sim.Engine.now d.engine);
  Sim.Stats.Summary.add d.stats.queue_depth
    (float_of_int (Disksort.length d.queue));
  Disksort.enqueue d.queue r;
  Sim.Condition.signal d.work

let read_sync d ~sector ~count ~buf ~buf_off =
  let r = Request.make ~kind:Request.Read ~sector ~count ~buf ~buf_off () in
  submit d r;
  Request.wait d.engine r

let write_sync d ~sector ~count ~buf ~buf_off =
  let r = Request.make ~kind:Request.Write ~sector ~count ~buf ~buf_off () in
  submit d r;
  Request.wait d.engine r

let queue_length d = Disksort.length d.queue
let busy d = d.servicing || not (Disksort.is_empty d.queue)

let quiesce d =
  while busy d do
    Sim.Condition.wait d.idle
  done

let stats d = d.stats
let set_write_cutoff d n = d.write_cutoff <- n
let completed_writes d = d.stats.writes

let iter_queued d f =
  Disksort.iter d.queue f;
  List.iter f d.inflight

let crash_cut d =
  let sb = sector_bytes d in
  iter_queued d (fun (r : Request.t) ->
      d.stats.crash_dropped_reqs <- d.stats.crash_dropped_reqs + 1;
      d.stats.crash_dropped_bytes <-
        d.stats.crash_dropped_bytes + (r.Request.count * sb));
  d.write_cutoff <- Some 0

let crash_dropped d = (d.stats.crash_dropped_reqs, d.stats.crash_dropped_bytes)
let trace d = d.trace
let track_buffer_stats d = (Track_buffer.hits d.tbuf, Track_buffer.misses d.tbuf)

let register_metrics d reg ~instance =
  Sim.Metrics.register reg ~layer:"disk" ~instance (fun () ->
      let s = d.stats in
      let tb_hits, tb_misses = track_buffer_stats d in
      Sim.Metrics.
        [
          ("reads", Int s.reads);
          ("writes", Int s.writes);
          ("sectors_read", Int s.sectors_read);
          ("sectors_written", Int s.sectors_written);
          ("busy_us", Int s.busy);
          ("seek_us", Int s.seek_time);
          ("rot_wait_us", Int s.rot_wait);
          ("transfer_us", Int s.transfer_time);
          ("coalesced", Int s.coalesced);
          ("crash_dropped_reqs", Int s.crash_dropped_reqs);
          ("crash_dropped_bytes", Int s.crash_dropped_bytes);
          ("queue_wait_us", Summary s.queue_wait);
          ("service_us", Summary s.service);
          ("seek_per_io_us", Summary s.seek_per_io);
          ("rot_per_io_us", Summary s.rot_per_io);
          ("xfer_per_io_us", Summary s.xfer_per_io);
          ("read_latency_us", Summary s.read_latency);
          ("write_latency_us", Summary s.write_latency);
          ("queue_depth", Summary s.queue_depth);
          ("track_buffer_hits", Int tb_hits);
          ("track_buffer_misses", Int tb_misses);
          ("trace_dropped", Int (Sim.Trace.dropped d.trace));
        ])
