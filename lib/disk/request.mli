(** Disk I/O requests.

    A request names a contiguous run of sectors, carries the data buffer
    it reads into / writes from, and records its lifecycle timestamps
    for latency accounting.  Completion is observable two ways: by
    blocking ({!wait}) — the synchronous read path — or by callback
    ({!on_complete}) — the asynchronous write path, where the callback
    releases the inode's write-limit semaphore and marks pages clean.

    [ordered] is the paper's proposed [B_ORDER] flag: the queue must not
    reorder other requests across an ordered one. *)

type kind = Read | Write

type t = private {
  kind : kind;
  sector : int;
  count : int;  (** sectors *)
  buf : bytes;
  buf_off : int;
  ordered : bool;
  id : int;
  mutable enq_at : Sim.Time.t;
  mutable start_at : Sim.Time.t;
  mutable finish_at : Sim.Time.t;
  mutable seek_us : Sim.Time.t;
      (** service-time split stamped by the device; see {!set_split} *)
  mutable rot_us : Sim.Time.t;
  mutable xfer_us : Sim.Time.t;
  mutable completed : bool;
  mutable callbacks : (unit -> unit) list;
  mutable waiters : (unit -> unit) list;
  mutable absorbed_into : t option;
      (** set when driver-level clustering folded this request into a
          neighbouring one; completion then tracks the absorber *)
}

val make :
  ?ordered:bool -> kind:kind -> sector:int -> count:int -> buf:bytes ->
  buf_off:int -> unit -> t
(** [buf] must have at least [count * 512] bytes available at
    [buf_off]. *)

val on_complete : t -> (unit -> unit) -> unit
(** Register a completion callback; called immediately if already
    complete. *)

val wait : Sim.Engine.t -> t -> unit
(** Block the calling process until the request completes (no-op if it
    already has).  If the caller carries a {!Sim.Attrib} clock, the
    blocked time is charged to it as ["disk.queue"]/["disk.seek"]/
    ["disk.rot"]/["disk.xfer"] in proportion to the request's residence
    components (overflow and unsplit time as ["disk.wait"]). *)

val complete : t -> now:Sim.Time.t -> unit
(** Mark complete; fires callbacks then wakes waiters.  Internal to the
    disk layer. *)

val set_enq_at : t -> Sim.Time.t -> unit
(** Internal to the disk layer: stamp enqueue time. *)

val set_start_at : t -> Sim.Time.t -> unit
(** Internal to the disk layer: stamp service-start time. *)

val set_split : t -> seek:Sim.Time.t -> rot:Sim.Time.t -> xfer:Sim.Time.t -> unit
(** Internal to the disk layer: stamp this request's share of the
    mechanical service-time split (a coalesced group's split is
    apportioned to members by sector count). *)

val latency : t -> Sim.Time.t
(** [finish_at - enq_at]; only meaningful once completed. *)

val end_sector : t -> int
(** First sector past the request. *)
