type t = {
  name : string;
  engine : Sim.Engine.t;
  geom : Geom.t;
  capacity : int;
  submit : Request.t -> unit;
  quiesce : unit -> unit;
  busy : unit -> bool;
  queue_length : unit -> int;
  store : Store.t;
  members : Device.t array;
}

let of_device d =
  {
    name = "disk";
    engine = Device.engine d;
    geom = (Device.config d).geom;
    capacity = Device.capacity_bytes d;
    submit = Device.submit d;
    quiesce = (fun () -> Device.quiesce d);
    busy = (fun () -> Device.busy d);
    queue_length = (fun () -> Device.queue_length d);
    store = Device.store d;
    members = [| d |];
  }

let engine t = t.engine
let geom t = t.geom
let sector_bytes t = t.geom.Geom.sector_bytes
let capacity_bytes t = t.capacity
let store t = t.store
let members t = t.members
let submit t r = t.submit r

let read_sync t ~sector ~count ~buf ~buf_off =
  let r = Request.make ~kind:Request.Read ~sector ~count ~buf ~buf_off () in
  t.submit r;
  Request.wait t.engine r

let write_sync t ~sector ~count ~buf ~buf_off =
  let r = Request.make ~kind:Request.Write ~sector ~count ~buf ~buf_off () in
  t.submit r;
  Request.wait t.engine r

let quiesce t = t.quiesce ()
let busy t = t.busy ()
let queue_length t = t.queue_length ()
let crash_cut t = Array.iter Device.crash_cut t.members

let completed_writes t =
  Array.fold_left (fun acc d -> acc + Device.completed_writes d) 0 t.members

let set_write_cutoff t n = Array.iter (fun d -> Device.set_write_cutoff d n) t.members

let crash_dropped t =
  Array.fold_left
    (fun (ar, ab) d ->
      let r, b = Device.crash_dropped d in
      (ar + r, ab + b))
    (0, 0) t.members

type stats = {
  reads : int;
  writes : int;
  sectors_read : int;
  sectors_written : int;
  busy_time : Sim.Time.t;
  seek_time : Sim.Time.t;
  rot_wait : Sim.Time.t;
  transfer_time : Sim.Time.t;
  coalesced : int;
}

let stats t =
  Array.fold_left
    (fun acc d ->
      let s = Device.stats d in
      {
        reads = acc.reads + s.Device.reads;
        writes = acc.writes + s.Device.writes;
        sectors_read = acc.sectors_read + s.Device.sectors_read;
        sectors_written = acc.sectors_written + s.Device.sectors_written;
        busy_time = acc.busy_time + s.Device.busy;
        seek_time = acc.seek_time + s.Device.seek_time;
        rot_wait = acc.rot_wait + s.Device.rot_wait;
        transfer_time = acc.transfer_time + s.Device.transfer_time;
        coalesced = acc.coalesced + s.Device.coalesced;
      })
    {
      reads = 0;
      writes = 0;
      sectors_read = 0;
      sectors_written = 0;
      busy_time = Sim.Time.zero;
      seek_time = Sim.Time.zero;
      rot_wait = Sim.Time.zero;
      transfer_time = Sim.Time.zero;
      coalesced = 0;
    }
    t.members

let set_tracing t on =
  Array.iter (fun d -> Sim.Trace.enable (Device.trace d) on) t.members

let events t =
  let tagged =
    Array.to_list t.members
    |> List.mapi (fun i d ->
           List.map (fun e -> (i, e)) (Sim.Trace.to_list (Device.trace d)))
    |> List.concat
  in
  (* stable sort: members are already oldest-first, so equal timestamps
     keep member-index order *)
  List.stable_sort
    (fun (_, a) (_, b) -> compare a.Device.at b.Device.at)
    tagged
