let chunk_bytes = 8192

type flat = { fsize : int; chunks : (int, bytes) Hashtbl.t }

(* A [View] is a remapped window onto another store: the volume manager
   hands each member drive a view whose [map] sends member-physical
   offsets to logical-volume offsets, so member I/O moves real bytes in
   the one logical image that mkfs/fsck/crash all see. *)
type t =
  | Flat of flat
  | View of { vsize : int; base : t; map : int -> int * int }

let create ~size =
  if size <= 0 then invalid_arg "Store.create: size must be positive";
  Flat { fsize = size; chunks = Hashtbl.create 1024 }

let size = function Flat f -> f.fsize | View v -> v.vsize

let view ~base ~size ~map =
  if size <= 0 then invalid_arg "Store.view: size must be positive";
  View { vsize = size; base; map }

let check t off len =
  if off < 0 || len < 0 || off + len > size t then
    invalid_arg
      (Printf.sprintf "Store: access [%d,%d) outside [0,%d)" off (off + len)
         (size t))

let flat_read f ~off ~len dst dst_off =
  let pos = ref off and remaining = ref len and d = ref dst_off in
  while !remaining > 0 do
    let ci = !pos / chunk_bytes in
    let coff = !pos mod chunk_bytes in
    let n = min !remaining (chunk_bytes - coff) in
    (match Hashtbl.find_opt f.chunks ci with
    | Some c -> Bytes.blit c coff dst !d n
    | None -> Bytes.fill dst !d n '\000');
    pos := !pos + n;
    d := !d + n;
    remaining := !remaining - n
  done

let flat_write f ~off ~len src src_off =
  let pos = ref off and remaining = ref len and s = ref src_off in
  while !remaining > 0 do
    let ci = !pos / chunk_bytes in
    let coff = !pos mod chunk_bytes in
    let n = min !remaining (chunk_bytes - coff) in
    let c =
      match Hashtbl.find_opt f.chunks ci with
      | Some c -> c
      | None ->
          let c = Bytes.make chunk_bytes '\000' in
          Hashtbl.add f.chunks ci c;
          c
    in
    Bytes.blit src !s c coff n;
    pos := !pos + n;
    s := !s + n;
    remaining := !remaining - n
  done

let rec read t ~off ~len dst dst_off =
  check t off len;
  match t with
  | Flat f -> flat_read f ~off ~len dst dst_off
  | View v ->
      let pos = ref off and remaining = ref len and d = ref dst_off in
      while !remaining > 0 do
        let base_off, run = v.map !pos in
        if run <= 0 then invalid_arg "Store.read: view maps to empty run";
        let n = min !remaining run in
        read v.base ~off:base_off ~len:n dst !d;
        pos := !pos + n;
        d := !d + n;
        remaining := !remaining - n
      done

let rec write t ~off ~len src src_off =
  check t off len;
  match t with
  | Flat f -> flat_write f ~off ~len src src_off
  | View v ->
      let pos = ref off and remaining = ref len and s = ref src_off in
      while !remaining > 0 do
        let base_off, run = v.map !pos in
        if run <= 0 then invalid_arg "Store.write: view maps to empty run";
        let n = min !remaining run in
        write v.base ~off:base_off ~len:n src !s;
        pos := !pos + n;
        s := !s + n;
        remaining := !remaining - n
      done

let rec chunks_allocated = function
  | Flat f -> Hashtbl.length f.chunks
  | View v -> chunks_allocated v.base

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (match t with
      | Flat f ->
          let chunks =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) f.chunks []
            |> List.sort (fun (a, _) (b, _) -> compare a b)
          in
          List.iter
            (fun (ci, data) ->
              seek_out oc (ci * chunk_bytes);
              output_bytes oc data)
            chunks
      | View _ ->
          (* materialise through the mapping, keeping the image sparse *)
          let buf = Bytes.create chunk_bytes in
          let total = size t in
          let nchunks = (total + chunk_bytes - 1) / chunk_bytes in
          for ci = 0 to nchunks - 1 do
            let n = min chunk_bytes (total - (ci * chunk_bytes)) in
            read t ~off:(ci * chunk_bytes) ~len:n buf 0;
            if not (Bytes.for_all (fun c -> c = '\000') (Bytes.sub buf 0 n))
            then begin
              seek_out oc (ci * chunk_bytes);
              output_bytes oc (Bytes.sub buf 0 n)
            end
          done);
      (* pin the file length to the full device size *)
      if pos_out oc < size t then begin
        seek_out oc (size t - 1);
        output_char oc '\000'
      end)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fsize = in_channel_length ic in
      let t = create ~size:fsize in
      let f = match t with Flat f -> f | View _ -> assert false in
      let buf = Bytes.create chunk_bytes in
      let nchunks = (fsize + chunk_bytes - 1) / chunk_bytes in
      for ci = 0 to nchunks - 1 do
        let n = min chunk_bytes (fsize - (ci * chunk_bytes)) in
        really_input ic buf 0 n;
        if n < chunk_bytes then Bytes.fill buf n (chunk_bytes - n) '\000';
        if not (Bytes.for_all (fun c -> c = '\000') buf) then
          Hashtbl.replace f.chunks ci (Bytes.sub buf 0 chunk_bytes)
      done;
      t)

let copy_into src dst =
  if size src <> size dst then invalid_arg "Store.copy_into: size mismatch";
  match (src, dst) with
  | Flat s, Flat d ->
      Hashtbl.reset d.chunks;
      Hashtbl.iter
        (fun k v -> Hashtbl.replace d.chunks k (Bytes.copy v))
        s.chunks
  | _ ->
      (* at least one side remaps: go through the generic paths *)
      let buf = Bytes.create chunk_bytes in
      let total = size src in
      let nchunks = (total + chunk_bytes - 1) / chunk_bytes in
      for ci = 0 to nchunks - 1 do
        let n = min chunk_bytes (total - (ci * chunk_bytes)) in
        read src ~off:(ci * chunk_bytes) ~len:n buf 0;
        write dst ~off:(ci * chunk_bytes) ~len:n buf 0
      done
