(** The simulated disk drive: queue + head + platter + controller.

    A dedicated simulation process services the request queue.  For each
    request it charges, in virtual time: fixed controller command
    overhead, a seek when the cylinder changes, a head switch within a
    cylinder, rotational latency to reach the first sector, and the
    media transfer time of every sector — segment by segment across
    track boundaries, honouring track/cylinder skew.  Reads wholly
    inside the buffered track are instead served at SCSI bus speed
    ({!config.bus_bytes_per_sec}); a mechanical read leaves its last
    track in the buffer.  Writes are always mechanical (write-through),
    matching the paper's argument for keeping rotational delays on
    non-clustered writes.

    Data really moves: a read copies from the {!Store.t} into the
    request buffer at completion time; a write copies into the store.

    All timing knobs live in {!config} so experiments can run the same
    file system against drives with and without track buffers, FIFO vs
    elevator queues, and with driver-level clustering (the paper's
    rejected alternative). *)

type config = {
  geom : Geom.t;
  seek : Seek.t;
  track_buffer : bool;
  bus_bytes_per_sec : int;  (** track-buffer hit transfer rate *)
  cmd_overhead : Sim.Time.t;  (** per-command controller overhead *)
  head_switch : Sim.Time.t;  (** head change within a cylinder *)
  policy : Disksort.policy;
  driver_clustering : bool;
      (** coalesce physically adjacent queued requests at service time *)
}

val default_config : config
(** The paper's testbed drive: {!Geom.sun0400}, elevator sort, track
    buffer on, 4 MB/s bus, 1 ms command overhead, 1 ms head switch, no
    driver clustering. *)

type stats = {
  mutable reads : int;
  mutable writes : int;
  mutable sectors_read : int;
  mutable sectors_written : int;
  mutable busy : Sim.Time.t;  (** time spent servicing requests *)
  mutable seek_time : Sim.Time.t;
  mutable rot_wait : Sim.Time.t;
  mutable transfer_time : Sim.Time.t;
  mutable coalesced : int;  (** requests absorbed by driver clustering *)
  mutable crash_dropped_reqs : int;
      (** requests lost to a power cut: queued/in-flight at
          {!crash_cut}, plus writes voided past the cutoff latch *)
  mutable crash_dropped_bytes : int;
  read_latency : Sim.Stats.Summary.t;
  write_latency : Sim.Stats.Summary.t;
  queue_depth : Sim.Stats.Summary.t;  (** sampled at each enqueue *)
  queue_wait : Sim.Stats.Summary.t;
      (** per request: enqueue to service start *)
  service : Sim.Stats.Summary.t;  (** per request: service start to done *)
  seek_per_io : Sim.Stats.Summary.t;  (** per serviced group *)
  rot_per_io : Sim.Stats.Summary.t;
  xfer_per_io : Sim.Stats.Summary.t;
}

type event = {
  at : Sim.Time.t;
  kind : Request.kind;
  sector : int;
  count : int;
  buffered_hit : bool;  (** fully served from the track buffer *)
}

type t

val create : ?store:Store.t -> Sim.Engine.t -> config -> t
(** Creates the drive and spawns its service process.  [store] supplies
    the backing bytes (it must match the geometry's capacity exactly) —
    the volume manager passes remapped {!Store.view}s so member drives
    write through to the logical volume image.  By default the drive
    owns a fresh zeroed store. *)

val config : t -> config
val store : t -> Store.t
(** Direct access to the backing bytes — used by mkfs/fsck for offline
    (un-timed) access and by tests. *)

val engine : t -> Sim.Engine.t
val sector_bytes : t -> int
val capacity_bytes : t -> int

val submit : t -> Request.t -> unit
(** Enqueue; returns immediately.  Completion via
    {!Request.on_complete} or {!Request.wait}. *)

val read_sync : t -> sector:int -> count:int -> buf:bytes -> buf_off:int -> unit
(** Convenience: build, submit and wait.  Must run inside a process. *)

val write_sync : t -> sector:int -> count:int -> buf:bytes -> buf_off:int -> unit

val quiesce : t -> unit
(** Block until the queue is empty and the drive idle (fsync/unmount). *)

val queue_length : t -> int
val busy : t -> bool
val stats : t -> stats

(** {1 Crash-point injection}

    Data reaches the platter only when a write request {e completes}
    (see [do_data]), so the disk-write boundary is the natural crash
    granularity: freezing the store after the k-th completed write
    reproduces exactly the image a power cut at that boundary would
    leave, while the simulation above keeps running to completion. *)

val set_write_cutoff : t -> int option -> unit
(** [set_write_cutoff d (Some k)] lets the next [k] write completions
    reach the store; later writes complete normally for their callers
    but their bytes are discarded (and counted as crash-dropped).
    [None] clears the latch. *)

val completed_writes : t -> int
(** Write requests whose data was applied or voided so far — the sweep
    range for systematic crash-point injection. *)

val crash_cut : t -> unit
(** Power cut now: every queued and in-flight request is tallied into
    the crash-dropped counters and the write cutoff is latched to zero,
    so nothing further reaches the store. *)

val crash_dropped : t -> int * int
(** (requests, bytes) lost to crash cuts and the cutoff latch. *)

val iter_queued : t -> (Request.t -> unit) -> unit
(** Iterate every request the drive holds: queued, then in-flight — what
    a power cut at this instant would lose. *)

val trace : t -> event Sim.Trace.t
val track_buffer_stats : t -> int * int
(** (hits, misses). *)

val register_metrics : t -> Sim.Metrics.t -> instance:string -> unit
(** Register this drive's counters and latency breakdown (queue wait vs
    service vs per-I/O seek/rotation/transfer) as a ["disk"] source. *)
