(** The logical block-device interface the file systems mount on.

    A [Blkdev.t] is anything that accepts sector requests and backs them
    with real bytes: a bare {!Device.t} ({!of_device}) or a volume
    composed of several drives ([Vol.blkdev] in the [vol] library).
    UFS, EFS and the machine builder are written against this record, so
    every experiment config runs unchanged whether the "disk" is one
    spindle or a stripe set.

    The record is a closure table rather than a functor or first-class
    module: implementations differ only in behaviour, not in type
    structure, and a record keeps call sites (`fs.dev.submit r`) as
    cheap and readable as the old direct [Device] calls. *)

type t = {
  name : string;
  engine : Sim.Engine.t;
  geom : Geom.t;
      (** layout-policy geometry: what the FFS allocator consults for
          rotational placement.  For a volume this is member 0's
          geometry — rotdelay is a per-spindle property.  Timing hints
          only: [Geom.capacity_bytes geom] describes one member, never
          the device — size everything from [capacity]. *)
  capacity : int;
      (** logical capacity in bytes — the authoritative size of the
          device; always use this (not [geom]) for bounds and mkfs *)
  submit : Request.t -> unit;
  quiesce : unit -> unit;
  busy : unit -> bool;
  queue_length : unit -> int;  (** total over member queues *)
  store : Store.t;
      (** the logical byte image: offline (un-timed) access for
          mkfs/fsck/tests, byte-coherent with timed I/O *)
  members : Device.t array;  (** underlying drives; length 1 for a disk *)
}

val of_device : Device.t -> t
(** Wrap a bare drive; behaviour-preserving (every closure is a direct
    [Device] call on the same queue). *)

(* ---- accessors mirroring the old [Device] call sites ---- *)

val engine : t -> Sim.Engine.t
val geom : t -> Geom.t
val sector_bytes : t -> int
val capacity_bytes : t -> int
val store : t -> Store.t
val members : t -> Device.t array

val submit : t -> Request.t -> unit
(** Enqueue; returns immediately.  Completion via
    {!Request.on_complete} or {!Request.wait}. *)

val read_sync : t -> sector:int -> count:int -> buf:bytes -> buf_off:int -> unit
(** Build, submit and wait.  Must run inside a process. *)

val write_sync : t -> sector:int -> count:int -> buf:bytes -> buf_off:int -> unit

val quiesce : t -> unit
(** Block until every member queue is empty and idle (fsync/unmount). *)

val busy : t -> bool
val queue_length : t -> int

val crash_cut : t -> unit
(** Power-cut every member: tally queued/in-flight requests as
    crash-dropped and latch the write cutoff (see {!Device.crash_cut}). *)

val completed_writes : t -> int
(** Completed write requests summed over members — the crash-point
    sweep range. *)

val set_write_cutoff : t -> int option -> unit
(** Arm (or clear) the crash-point latch on every member.  With a
    multi-member volume the count applies per member; single-disk
    configs are what the sweep harness uses. *)

val crash_dropped : t -> int * int
(** (requests, bytes) lost to crash cuts, summed over members. *)

(** Aggregate drive statistics summed over members (immutable snapshot;
    see {!Device.stats} for the per-member mutable records). *)
type stats = {
  reads : int;
  writes : int;
  sectors_read : int;
  sectors_written : int;
  busy_time : Sim.Time.t;  (** summed member busy time *)
  seek_time : Sim.Time.t;
  rot_wait : Sim.Time.t;
  transfer_time : Sim.Time.t;
  coalesced : int;
}

val stats : t -> stats

val set_tracing : t -> bool -> unit
(** Enable/disable the request trace of every member drive. *)

val events : t -> (int * Device.event) list
(** Member-tagged request events, merged oldest-first across members
    (ties broken by member index).  The member column is what makes
    striped I/O patterns legible per spindle. *)
