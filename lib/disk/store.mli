(** Sparse backing store for simulated disks.

    Holds the actual bytes of the platter so that the file system above
    is real: what you write is what you later read, fsck walks real
    metadata, and data-integrity tests are meaningful.  Storage is a
    hash table of fixed-size chunks so a 400 MB disk that is mostly
    zeros costs almost nothing; unwritten regions read back as zeros
    (which is also what mkfs assumes). *)

type t

val create : size:int -> t
(** [create ~size] is a zeroed store of [size] bytes. *)

val view : base:t -> size:int -> map:(int -> int * int) -> t
(** [view ~base ~size ~map] is a remapped window of [size] bytes onto
    [base]: [map off] returns [(base_off, run)], meaning view bytes
    [off, off+run)] live at [base_off, base_off+run)] of [base].  [map]
    may raise [Invalid_argument] for offsets that have no backing (e.g.
    the unusable tail of a striped member); accesses are split at run
    boundaries, so [map] is only ever asked about the first byte of each
    run.  The volume manager uses views to give each member drive a
    physical window onto the one logical volume image. *)

val size : t -> int

val read : t -> off:int -> len:int -> bytes -> int -> unit
(** [read t ~off ~len dst dst_off] copies [len] bytes starting at byte
    [off] of the store into [dst] at [dst_off].
    Raises [Invalid_argument] on out-of-range access. *)

val write : t -> off:int -> len:int -> bytes -> int -> unit
(** [write t ~off ~len src src_off] copies [len] bytes from [src] at
    [src_off] into the store at byte [off]. *)

val chunks_allocated : t -> int
(** Number of materialised chunks (memory accounting for tests). *)

val copy_into : t -> t -> unit
(** [copy_into src dst] replaces [dst]'s contents with [src]'s.  Sizes
    must match.  Used to clone disk images between simulated machines. *)

val save : t -> string -> unit
(** Write the store as a flat disk image file (sparse where the host
    file system allows: untouched chunks are seeked over). *)

val load : string -> t
(** Read a flat disk image file produced by {!save} (or any raw image);
    all-zero chunks are not materialised. *)
