type kind = Read | Write

type t = {
  kind : kind;
  sector : int;
  count : int;
  buf : bytes;
  buf_off : int;
  ordered : bool;
  id : int;
  mutable enq_at : Sim.Time.t;
  mutable start_at : Sim.Time.t;
  mutable finish_at : Sim.Time.t;
  mutable seek_us : Sim.Time.t;
  mutable rot_us : Sim.Time.t;
  mutable xfer_us : Sim.Time.t;
  mutable completed : bool;
  mutable callbacks : (unit -> unit) list;
  mutable waiters : (unit -> unit) list;
  mutable absorbed_into : t option;
}

let next_id = ref 0

let make ?(ordered = false) ~kind ~sector ~count ~buf ~buf_off () =
  if sector < 0 || count <= 0 then invalid_arg "Request.make: bad extent";
  if buf_off < 0 || buf_off + (count * 512) > Bytes.length buf then
    invalid_arg "Request.make: buffer too small";
  incr next_id;
  {
    kind;
    sector;
    count;
    buf;
    buf_off;
    ordered;
    id = !next_id;
    enq_at = 0;
    start_at = 0;
    finish_at = 0;
    seek_us = 0;
    rot_us = 0;
    xfer_us = 0;
    completed = false;
    callbacks = [];
    waiters = [];
    absorbed_into = None;
  }

let on_complete t f =
  if t.completed then f () else t.callbacks <- f :: t.callbacks

let rec resolve t =
  match t.absorbed_into with Some a -> resolve a | None -> t

(* Attribute [blocked] (time the waiting fiber actually spent blocked on
   this request) across the request's residence components — queue wait
   and the seek/rot/xfer split stamped by the device — scaled so that
   a late waiter (e.g. one that only joined for the tail of an async
   write) never charges more than it blocked.  Rounding slack and time
   the device spent on coalesced neighbours land in "disk.wait". *)
let charge_blocked t blocked =
  if blocked > 0 then begin
    let r = resolve t in
    let queue = max 0 (r.start_at - r.enq_at) in
    let total = queue + r.seek_us + r.rot_us + r.xfer_us in
    if total <= 0 then Sim.Attrib.charge_current "disk.wait" blocked
    else begin
      let f = Float.min 1.0 (float_of_int blocked /. float_of_int total) in
      let scale x = int_of_float (f *. float_of_int x) in
      let q = scale queue in
      let sk = scale r.seek_us in
      let ro = scale r.rot_us in
      let xf = max 0 (min (blocked - q - sk - ro) (scale r.xfer_us)) in
      Sim.Attrib.charge_current "disk.queue" q;
      Sim.Attrib.charge_current "disk.seek" sk;
      Sim.Attrib.charge_current "disk.rot" ro;
      Sim.Attrib.charge_current "disk.xfer" xf;
      Sim.Attrib.charge_current "disk.wait" (blocked - q - sk - ro - xf)
    end
  end

let wait engine t =
  if not t.completed then begin
    let before = Sim.Engine.now engine in
    Sim.Engine.suspend engine ~register:(fun resume ->
        t.waiters <- resume :: t.waiters);
    let now = Sim.Engine.now engine in
    charge_blocked t (now - before);
    (* traced callers get the wait as a span carrying the device's
       residence split.  The interval is the wait (clamped inside the
       caller's span by construction); an async request enqueued long
       before the waiter arrived keeps its true split in the attrs. *)
    if now > before then begin
      let r = resolve t in
      Sim.Span.interval ~name:"disk.io"
        ~attrs:
          [
            ( "kind",
              Sim.Span.S (match r.kind with Read -> "read" | Write -> "write")
            );
            ("sector", Sim.Span.I r.sector);
            ("count", Sim.Span.I r.count);
            ("queue_us", Sim.Span.I (max 0 (r.start_at - r.enq_at)));
            ("seek_us", Sim.Span.I r.seek_us);
            ("rot_us", Sim.Span.I r.rot_us);
            ("xfer_us", Sim.Span.I r.xfer_us);
          ]
        ~start_us:before ~stop_us:now ()
    end
  end

let complete t ~now =
  assert (not t.completed);
  t.completed <- true;
  t.finish_at <- now;
  let cbs = List.rev t.callbacks and ws = List.rev t.waiters in
  t.callbacks <- [];
  t.waiters <- [];
  List.iter (fun f -> f ()) cbs;
  List.iter (fun w -> w ()) ws

let set_enq_at t at = t.enq_at <- at
let set_start_at t at = t.start_at <- at

let set_split t ~seek ~rot ~xfer =
  t.seek_us <- seek;
  t.rot_us <- rot;
  t.xfer_us <- xfer
let latency t = t.finish_at - t.enq_at
let end_sector t = t.sector + t.count
