(** Simulated network: point-to-point links and a shared medium on the
    {!Sim} engine.

    An {!endpoint} is the transport-facing interface — send, blocking
    receive, pending count — and the RPC layers above are written
    against it alone, so the same client/server code runs over a
    private duplex link ({!create}) or over one station of a
    shared-medium Ethernet ({!Medium}).

    {b Point-to-point links.}  A link is a duplex pipe between two
    endpoints (conventionally a client machine and the server).  Each
    direction is modelled as a serial wire: a message occupies the wire
    for [size / bandwidth], then arrives [latency] later.  Delivery per
    direction is strictly FIFO — a delay spike injected on one message
    pushes every later message behind it, like a queue in a real
    switch.

    Sending charges a per-message plus per-KB serialization cost to the
    {e sender's} CPU (each endpoint is bound to its machine's
    {!Sim.Cpu.t} at link creation), so protocol overhead contends with
    the rest of that machine's work.

    Fault injection is seeded and deterministic: each message is
    dropped with probability [loss] (it still occupied the wire — the
    bits were transmitted, nobody heard them), and delayed by [spike]
    extra with probability [spike_prob].  Loss applies independently to
    each direction, so a request/reply protocol above this layer sees
    both lost calls and lost replies. *)

type config = {
  bandwidth : int;  (** wire rate, bytes of payload per second *)
  latency : Sim.Time.t;  (** propagation delay, per message *)
  loss : float;  (** per-message drop probability, [0, 1) *)
  spike_prob : float;  (** per-message delay-spike probability *)
  spike : Sim.Time.t;  (** extra delay when a spike fires *)
  per_msg_cpu : Sim.Time.t;  (** serialization cost per message *)
  per_kb_cpu : Sim.Time.t;  (** serialization cost per payload KB *)
}

val default_config : config
(** A fast-Ethernet-class link: 12.5 MB/s, 500 us latency, no loss,
    no spikes, 50 us + 10 us/KB serialization. *)

val lossy : config -> float -> config
(** [lossy c p] is [c] with drop probability [p]. *)

type 'a endpoint
(** One transport attachment carrying messages of type ['a]: an end of
    a point-to-point link, or one peer's view of a shared-medium
    station. *)

type 'a t
(** A duplex link. *)

val create :
  ?seed:int -> ?name:string ->
  Sim.Engine.t -> config -> a_cpu:Sim.Cpu.t -> b_cpu:Sim.Cpu.t -> 'a t
(** Build a link; [seed] (default 0) drives the fault injection,
    [name] appears in metrics and diagnostics. *)

val a_end : 'a t -> 'a endpoint
val b_end : 'a t -> 'a endpoint

val send : 'a endpoint -> size:int -> 'a -> unit
(** Transmit a message of [size] wire bytes toward the peer endpoint.
    Charges serialization to the sender's CPU (must run inside a
    simulation process), then occupies the wire and delivers — or
    drops — asynchronously.  Returns once the message is queued for the
    wire, not when it arrives. *)

val recv : 'a endpoint -> 'a
(** Block the calling process until a message arrives, then dequeue it
    (FIFO). *)

val pending : 'a endpoint -> int
(** Messages delivered but not yet received. *)

type stats = {
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable msgs_delivered : int;
  mutable drops : int;
  mutable spikes : int;
  wire_wait_us : Sim.Stats.Summary.t;
      (** time each message waited for the wire (link-queue wait) *)
  transit_us : Sim.Stats.Summary.t;
      (** send-to-delivery time of delivered messages *)
}

val stats : 'a t -> stats
(** Both directions combined. *)

val dir_stats : 'a t -> stats * stats
(** [(a_to_b, b_to_a)]: each direction separately, so asymmetric loss
    and server-side reply queuing are visible rather than averaged away
    in the combined record. *)

val register_metrics : 'a t -> Sim.Metrics.t -> instance:string -> unit
(** Register the link's counters and wire-wait summaries as a ["net"]
    source — combined totals plus [a2b_*]/[b2a_*] per-direction
    counters. *)

(** A shared-medium (Ethernet-class) segment: N stations contending for
    one serial wire.

    Each station keeps a FIFO of outbound frames and runs a transmit
    pump: sense the wire; if free, seize it for [size / bandwidth]; if
    busy, defer with a seeded jittered backoff — binary-exponential in
    the station's consecutive-defer count, in units of [slot] — past
    the end of the transmission it collided with.  A station that wins
    the wire resets its backoff.  This is carrier-sense with
    collision-free deterministic arbitration: same-instant contenders
    are ordered by event sequence and losers back off through the
    medium's RNG, so a run is a pure function of the seed and the
    traffic.

    Frames are addressed (src station, dst station); delivery into the
    destination is FIFO per destination.  Loss and delay spikes are
    drawn per frame at wire-grant time from the same config as
    point-to-point links.  Per-frame serialization is charged to the
    {e sending station's} CPU.

    The medium exports what a shared wire makes scarce: utilization
    (busy time over elapsed time), contention/backoff events, and the
    station queue-wait distribution. *)
module Medium : sig
  type 'a t
  (** One shared wire. *)

  type 'a station
  (** One attachment point (a machine's network interface). *)

  val create :
    ?seed:int -> ?name:string -> ?slot:Sim.Time.t -> ?max_backoff_exp:int ->
    Sim.Engine.t -> config -> 'a t
  (** [slot] (default 51 us — the classic Ethernet slot time) scales
      the backoff jitter; [max_backoff_exp] (default 10) caps the
      binary-exponential window.  [bandwidth] and [latency] come from
      the shared [config]; [loss]/[spike] fault injection applies per
      frame. *)

  val attach : 'a t -> cpu:Sim.Cpu.t -> 'a station
  (** Add a station; ids are assigned in attach order. *)

  val station_id : 'a station -> int

  val endpoint : 'a station -> peer:int -> 'a endpoint
  (** This station's channel to station [peer]: sends address [peer],
      receives are demultiplexed by source, so one station can serve
      many peers through independent endpoints (the NFS server's view
      of its clients). *)

  type m_stats = {
    mutable frames_sent : int;
    mutable m_bytes_sent : int;
    mutable frames_delivered : int;
    mutable m_drops : int;
    mutable m_spikes : int;
    mutable contentions : int;
        (** transmit attempts that found the wire busy and backed off *)
    mutable busy_us : int;  (** total wire occupancy *)
    m_queue_wait_us : Sim.Stats.Summary.t;
        (** frame enqueue -> wire grant, all stations *)
    m_transit_us : Sim.Stats.Summary.t;  (** frame enqueue -> delivery *)
  }

  val stats : 'a t -> m_stats

  val station_queue_wait : 'a station -> Sim.Stats.Summary.t
  (** One station's enqueue -> wire-grant summary. *)

  val utilization : 'a t -> float
  (** Wire busy time over elapsed simulation time, [0, 1]. *)

  val register_metrics : 'a t -> Sim.Metrics.t -> instance:string -> unit
  (** Register the medium's counters, utilization and queue-wait
      summaries as a ["net"] source. *)
end

(** A store-and-forward switch: every host hangs off its own full-duplex
    port (a private uplink and a private downlink, each a serial wire at
    [bandwidth]), and the switch forwards frames between ports through
    finite per-output-port buffers.

    The path of a frame: the sender's CPU pays serialization, the frame
    occupies the sender's uplink for [size / bandwidth] and arrives at
    the switch [latency] later (store-and-forward: forwarding starts
    only once the whole frame is in).  If the destination port's output
    buffer is full the frame is tail-dropped — the congestion signal of
    a switched fabric, replacing the shared medium's collisions.
    Otherwise it waits FIFO in the output buffer, occupies the
    destination's downlink for [size / bandwidth], frees its buffer slot
    when the wire falls silent, and is delivered [latency] after that.
    Delivery is FIFO per output port (one serial downlink), whatever
    input ports the frames came from; there is no cut-through and no
    output-port fan-out contention beyond the buffer itself.

    Seeded fault injection ([loss], [spike]) applies on the uplink, with
    draws at send time in send order, so a run is a pure function of the
    switch seed and the traffic.  Unlike {!Medium} there is no carrier
    sense and no backoff: ports never contend for each other's wires,
    only for output buffers. *)
module Switch : sig
  type 'a t
  (** One switch. *)

  type 'a port
  (** One host's attachment (its full-duplex link to the switch). *)

  val create :
    ?seed:int -> ?name:string -> ?buffer:int ->
    Sim.Engine.t -> config -> 'a t
  (** [buffer] (default 64) is the output-buffer capacity per port, in
      frames; arrivals beyond it are tail-dropped. *)

  val attach : 'a t -> cpu:Sim.Cpu.t -> 'a port
  (** Add a port; ids are assigned in attach order. *)

  val port_id : 'a port -> int

  val endpoint : 'a port -> peer:int -> 'a endpoint
  (** This port's channel to port [peer]: sends address [peer], receives
      are demultiplexed by source port, so one port can serve many peers
      through independent endpoints (a server's view of its clients). *)

  type sw_stats = {
    mutable frames_sent : int;
    mutable sw_bytes_sent : int;
    mutable frames_delivered : int;
    mutable sw_drops : int;  (** seeded uplink loss *)
    mutable overflows : int;  (** tail drops at full output buffers *)
    mutable sw_spikes : int;
    mutable occ_hwm : int;  (** worst output-buffer occupancy, any port *)
    sw_queue_wait_us : Sim.Stats.Summary.t;
        (** switch arrival -> downlink grant, all output ports *)
    sw_transit_us : Sim.Stats.Summary.t;  (** send -> delivery *)
  }

  type p_stats = {
    mutable up_frames : int;
    mutable up_bytes : int;
    mutable up_busy_us : int;  (** host->switch link occupancy *)
    mutable down_frames : int;
    mutable down_bytes : int;
    mutable down_busy_us : int;  (** switch->host link occupancy *)
    mutable p_drops : int;  (** uplink loss on this port *)
    mutable p_overflows : int;  (** frames tail-dropped at this output *)
    mutable p_occ_hwm : int;
    p_queue_wait_us : Sim.Stats.Summary.t;
  }

  val stats : 'a t -> sw_stats
  val port_stats : 'a port -> p_stats

  val port_utilization : 'a port -> float
  (** Busier direction's occupancy over elapsed time, [0, 1]. *)

  val max_port_utilization : 'a t -> float

  val register_metrics : 'a t -> Sim.Metrics.t -> instance:string -> unit
  (** Register switch-wide counters, the occupancy high-water mark and
      queue-wait summaries as a ["net"] source. *)

  val register_port_metrics :
    'a port -> Sim.Metrics.t -> instance:string -> unit
  (** Register one port's counters (typically only server ports: at
      1024 clients, per-client port sources would dwarf the snapshot). *)
end
