(** Simulated network: point-to-point links on the {!Sim} engine.

    A link is a duplex pipe between two endpoints (conventionally a
    client machine and the server).  Each direction is modelled as a
    serial wire: a message occupies the wire for [size / bandwidth],
    then arrives [latency] later.  Delivery per direction is strictly
    FIFO — a delay spike injected on one message pushes every later
    message behind it, like a queue in a real switch.

    Sending charges a per-message plus per-KB serialization cost to the
    {e sender's} CPU (each endpoint is bound to its machine's
    {!Sim.Cpu.t} at link creation), so protocol overhead contends with
    the rest of that machine's work.

    Fault injection is seeded and deterministic: each message is
    dropped with probability [loss] (it still occupied the wire — the
    bits were transmitted, nobody heard them), and delayed by [spike]
    extra with probability [spike_prob].  Loss applies independently to
    each direction, so a request/reply protocol above this layer sees
    both lost calls and lost replies. *)

type config = {
  bandwidth : int;  (** wire rate, bytes of payload per second *)
  latency : Sim.Time.t;  (** propagation delay, per message *)
  loss : float;  (** per-message drop probability, [0, 1) *)
  spike_prob : float;  (** per-message delay-spike probability *)
  spike : Sim.Time.t;  (** extra delay when a spike fires *)
  per_msg_cpu : Sim.Time.t;  (** serialization cost per message *)
  per_kb_cpu : Sim.Time.t;  (** serialization cost per payload KB *)
}

val default_config : config
(** A fast-Ethernet-class link: 12.5 MB/s, 500 us latency, no loss,
    no spikes, 50 us + 10 us/KB serialization. *)

val lossy : config -> float -> config
(** [lossy c p] is [c] with drop probability [p]. *)

type 'a endpoint
(** One end of a link carrying messages of type ['a]. *)

type 'a t
(** A duplex link. *)

val create :
  ?seed:int -> ?name:string ->
  Sim.Engine.t -> config -> a_cpu:Sim.Cpu.t -> b_cpu:Sim.Cpu.t -> 'a t
(** Build a link; [seed] (default 0) drives the fault injection,
    [name] appears in metrics and diagnostics. *)

val a_end : 'a t -> 'a endpoint
val b_end : 'a t -> 'a endpoint

val send : 'a endpoint -> size:int -> 'a -> unit
(** Transmit a message of [size] wire bytes toward the peer endpoint.
    Charges serialization to the sender's CPU (must run inside a
    simulation process), then occupies the wire and delivers — or
    drops — asynchronously.  Returns once the message is on the wire,
    not when it arrives. *)

val recv : 'a endpoint -> 'a
(** Block the calling process until a message arrives, then dequeue it
    (FIFO). *)

val pending : 'a endpoint -> int
(** Messages delivered but not yet received. *)

type stats = {
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable msgs_delivered : int;
  mutable drops : int;
  mutable spikes : int;
  wire_wait_us : Sim.Stats.Summary.t;
      (** time each message waited for the wire (link-queue wait) *)
  transit_us : Sim.Stats.Summary.t;
      (** send-to-delivery time of delivered messages *)
}

val stats : 'a t -> stats
(** Both directions combined. *)

val register_metrics : 'a t -> Sim.Metrics.t -> instance:string -> unit
(** Register the link's counters and wire-wait summaries as a ["net"]
    source. *)
