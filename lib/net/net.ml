type config = {
  bandwidth : int;
  latency : Sim.Time.t;
  loss : float;
  spike_prob : float;
  spike : Sim.Time.t;
  per_msg_cpu : Sim.Time.t;
  per_kb_cpu : Sim.Time.t;
}

let default_config =
  {
    bandwidth = 12_500_000;
    latency = Sim.Time.us 500;
    loss = 0.;
    spike_prob = 0.;
    spike = Sim.Time.ms 20;
    per_msg_cpu = Sim.Time.us 50;
    per_kb_cpu = Sim.Time.us 10;
  }

let lossy c p = { c with loss = p }

let validate ~who cfg =
  if cfg.bandwidth <= 0 then invalid_arg (who ^ ": bandwidth must be > 0");
  if cfg.loss < 0. || cfg.loss >= 1. then
    invalid_arg (who ^ ": loss must be in [0, 1)")

type stats = {
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable msgs_delivered : int;
  mutable drops : int;
  mutable spikes : int;
  wire_wait_us : Sim.Stats.Summary.t;
  transit_us : Sim.Stats.Summary.t;
}

let mk_stats () =
  {
    msgs_sent = 0;
    bytes_sent = 0;
    msgs_delivered = 0;
    drops = 0;
    spikes = 0;
    wire_wait_us = Sim.Stats.Summary.create ();
    transit_us = Sim.Stats.Summary.create ();
  }

let xmit_time cfg ~size =
  (* ceil(size / bandwidth) in integer microseconds *)
  ((size * 1_000_000) + cfg.bandwidth - 1) / cfg.bandwidth

let serialization_cpu cfg ~size =
  cfg.per_msg_cpu + (cfg.per_kb_cpu * ((size + 1023) / 1024))

(* An endpoint is an interface, not a wire: the same RPC machinery runs
   over a private point-to-point link or over one station of a shared
   medium without knowing which. *)
type 'a endpoint = {
  ep_send : size:int -> 'a -> unit;
  ep_recv : unit -> 'a;
  ep_pending : unit -> int;
}

let send ep ~size msg = ep.ep_send ~size msg
let recv ep = ep.ep_recv ()
let pending ep = ep.ep_pending ()

(* ---------- point-to-point duplex links ---------- *)

(* One direction of the wire: its own serialization point, FIFO arrival
   ordering and stats; fault-injection RNG and the combined stats record
   are shared with the reverse direction. *)
type 'a dir = {
  mutable free_at : Sim.Time.t;  (** wire busy until *)
  mutable last_arrival : Sim.Time.t;
  inbox : 'a Queue.t;  (** the RECEIVING endpoint's mailbox *)
  cond : Sim.Condition.t;
  dst : stats;  (** this direction only *)
}

type 'a pep = {
  engine : Sim.Engine.t;
  cfg : config;
  cpu : Sim.Cpu.t;  (** sender's CPU: serialization is charged here *)
  out : 'a dir;  (** direction this endpoint transmits into *)
  inc : 'a dir;  (** direction this endpoint receives from *)
  rng : Sim.Rng.t;
  st : stats;  (** both directions combined *)
}

type 'a t = {
  a : 'a pep;
  b : 'a pep;
  a_ep : 'a endpoint;
  b_ep : 'a endpoint;
  name : string;
}

let mk_dir engine name =
  {
    free_at = Sim.Time.zero;
    last_arrival = Sim.Time.zero;
    inbox = Queue.create ();
    cond = Sim.Condition.create engine name;
    dst = mk_stats ();
  }

let p2p_send ep ~size msg =
  let cfg = ep.cfg in
  Sim.Cpu.charge ep.cpu ~label:"net" (serialization_cpu cfg ~size);
  let now = Sim.Engine.now ep.engine in
  let dir = ep.out in
  let start = max now dir.free_at in
  let wire_wait = start - now in
  dir.free_at <- start + xmit_time cfg ~size;
  ep.st.msgs_sent <- ep.st.msgs_sent + 1;
  ep.st.bytes_sent <- ep.st.bytes_sent + size;
  dir.dst.msgs_sent <- dir.dst.msgs_sent + 1;
  dir.dst.bytes_sent <- dir.dst.bytes_sent + size;
  Sim.Stats.Summary.add ep.st.wire_wait_us (float_of_int wire_wait);
  Sim.Stats.Summary.add dir.dst.wire_wait_us (float_of_int wire_wait);
  (* fault injection: the draws happen at send time, in send order, so
     a run is a pure function of the link seed and the traffic *)
  let dropped = cfg.loss > 0. && Sim.Rng.float ep.rng 1.0 < cfg.loss in
  let spiked =
    cfg.spike_prob > 0. && Sim.Rng.float ep.rng 1.0 < cfg.spike_prob
  in
  if spiked then begin
    ep.st.spikes <- ep.st.spikes + 1;
    dir.dst.spikes <- dir.dst.spikes + 1
  end;
  if dropped then begin
    ep.st.drops <- ep.st.drops + 1;
    dir.dst.drops <- dir.dst.drops + 1
  end
  else begin
    let arrival =
      dir.free_at + cfg.latency + (if spiked then cfg.spike else Sim.Time.zero)
    in
    (* FIFO delivery: a spike on one message holds every later one
       behind it *)
    let arrival = max arrival dir.last_arrival in
    dir.last_arrival <- arrival;
    Sim.Engine.schedule ep.engine ~delay:(arrival - now) (fun () ->
        Queue.push msg dir.inbox;
        ep.st.msgs_delivered <- ep.st.msgs_delivered + 1;
        dir.dst.msgs_delivered <- dir.dst.msgs_delivered + 1;
        Sim.Stats.Summary.add ep.st.transit_us (float_of_int (arrival - now));
        Sim.Stats.Summary.add dir.dst.transit_us (float_of_int (arrival - now));
        Sim.Condition.signal dir.cond)
  end

let rec p2p_recv ep =
  if Queue.is_empty ep.inc.inbox then begin
    Sim.Condition.wait ep.inc.cond;
    p2p_recv ep
  end
  else Queue.pop ep.inc.inbox

let iface_of_pep ep =
  {
    ep_send = (fun ~size msg -> p2p_send ep ~size msg);
    ep_recv = (fun () -> p2p_recv ep);
    ep_pending = (fun () -> Queue.length ep.inc.inbox);
  }

let create ?(seed = 0) ?(name = "link") engine cfg ~a_cpu ~b_cpu =
  validate ~who:"Net.create" cfg;
  let ab = mk_dir engine (name ^ ".ab") in
  let ba = mk_dir engine (name ^ ".ba") in
  let rng = Sim.Rng.create ~seed in
  let st = mk_stats () in
  let a = { engine; cfg; cpu = a_cpu; out = ab; inc = ba; rng; st } in
  let b = { engine; cfg; cpu = b_cpu; out = ba; inc = ab; rng; st } in
  { a; b; a_ep = iface_of_pep a; b_ep = iface_of_pep b; name }

let a_end t = t.a_ep
let b_end t = t.b_ep

let stats t = t.a.st
let dir_stats t = (t.a.out.dst, t.b.out.dst)

let register_metrics t reg ~instance =
  let s = t.a.st in
  let ab = t.a.out.dst and ba = t.b.out.dst in
  Sim.Metrics.register reg ~layer:"net" ~instance (fun () ->
      [
        ("msgs_sent", Sim.Metrics.Int s.msgs_sent);
        ("bytes_sent", Sim.Metrics.Int s.bytes_sent);
        ("msgs_delivered", Sim.Metrics.Int s.msgs_delivered);
        ("drops", Sim.Metrics.Int s.drops);
        ("delay_spikes", Sim.Metrics.Int s.spikes);
        ("wire_wait_us", Sim.Metrics.Summary s.wire_wait_us);
        ("transit_us", Sim.Metrics.Summary s.transit_us);
        (* per direction: asymmetric loss and reply-side queuing show
           up here, invisible in the combined numbers *)
        ("a2b_msgs", Sim.Metrics.Int ab.msgs_sent);
        ("a2b_bytes", Sim.Metrics.Int ab.bytes_sent);
        ("a2b_drops", Sim.Metrics.Int ab.drops);
        ("a2b_wire_wait_us", Sim.Metrics.Summary ab.wire_wait_us);
        ("b2a_msgs", Sim.Metrics.Int ba.msgs_sent);
        ("b2a_bytes", Sim.Metrics.Int ba.bytes_sent);
        ("b2a_drops", Sim.Metrics.Int ba.drops);
        ("b2a_wire_wait_us", Sim.Metrics.Summary ba.wire_wait_us);
      ])

(* ---------- shared medium ---------- *)

module Medium = struct
  type m_stats = {
    mutable frames_sent : int;
    mutable m_bytes_sent : int;
    mutable frames_delivered : int;
    mutable m_drops : int;
    mutable m_spikes : int;
    mutable contentions : int;
    mutable busy_us : int;
    m_queue_wait_us : Sim.Stats.Summary.t;
    m_transit_us : Sim.Stats.Summary.t;
  }

  type 'a frame = {
    src : int;
    f_dst : int;
    fsize : int;
    payload : 'a;
    enq_at : Sim.Time.t;
  }

  type 'a inbox = { q : 'a Queue.t; ib_cond : Sim.Condition.t }

  type 'a t = {
    m_engine : Sim.Engine.t;
    m_cfg : config;
    slot : Sim.Time.t;
    max_exp : int;
    m_name : string;
    m_rng : Sim.Rng.t;
    mutable wire_free_at : Sim.Time.t;
    stations : (int, 'a station) Hashtbl.t;
    mutable nstations : int;
    last_arrival : (int, Sim.Time.t) Hashtbl.t;  (** per-dst FIFO floor *)
    m_st : m_stats;
  }

  and 'a station = {
    med : 'a t;
    sid : int;
    s_cpu : Sim.Cpu.t;
    outq : 'a frame Queue.t;
    mutable pumping : bool;
    mutable backoff_exp : int;
    inboxes : (int, 'a inbox) Hashtbl.t;  (** keyed by source station *)
    s_queue_wait_us : Sim.Stats.Summary.t;
  }

  let create ?(seed = 0) ?(name = "ether") ?(slot = Sim.Time.us 51)
      ?(max_backoff_exp = 10) engine cfg =
    validate ~who:"Net.Medium.create" cfg;
    if slot <= 0 then invalid_arg "Net.Medium.create: slot must be > 0";
    {
      m_engine = engine;
      m_cfg = cfg;
      slot;
      max_exp = max_backoff_exp;
      m_name = name;
      m_rng = Sim.Rng.create ~seed;
      wire_free_at = Sim.Time.zero;
      stations = Hashtbl.create 16;
      nstations = 0;
      last_arrival = Hashtbl.create 16;
      m_st =
        {
          frames_sent = 0;
          m_bytes_sent = 0;
          frames_delivered = 0;
          m_drops = 0;
          m_spikes = 0;
          contentions = 0;
          busy_us = 0;
          m_queue_wait_us = Sim.Stats.Summary.create ();
          m_transit_us = Sim.Stats.Summary.create ();
        };
    }

  let attach t ~cpu =
    let s =
      {
        med = t;
        sid = t.nstations;
        s_cpu = cpu;
        outq = Queue.create ();
        pumping = false;
        backoff_exp = 0;
        inboxes = Hashtbl.create 4;
        s_queue_wait_us = Sim.Stats.Summary.create ();
      }
    in
    Hashtbl.replace t.stations s.sid s;
    t.nstations <- t.nstations + 1;
    s

  let station_id s = s.sid

  let inbox_of s ~src =
    match Hashtbl.find_opt s.inboxes src with
    | Some ib -> ib
    | None ->
        let ib =
          {
            q = Queue.create ();
            ib_cond =
              Sim.Condition.create s.med.m_engine
                (Printf.sprintf "%s.s%d<-%d" s.med.m_name s.sid src);
          }
        in
        Hashtbl.replace s.inboxes src ib;
        ib

  (* The station's transmit pump.  One event chain per backlogged
     station: sense the wire; if busy, defer a seeded jittered backoff
     past the end of the current transmission (binary-exponential in
     the station's consecutive-defer count); if free, seize it for the
     head-of-queue frame.  Contention resolution is deterministic:
     same-instant attempts are ordered by event sequence, losers back
     off through the shared RNG. *)
  let rec try_transmit s () =
    let m = s.med in
    let now = Sim.Engine.now m.m_engine in
    if Queue.is_empty s.outq then s.pumping <- false
    else if now < m.wire_free_at then begin
      m.m_st.contentions <- m.m_st.contentions + 1;
      let window = 1 lsl min s.backoff_exp m.max_exp in
      s.backoff_exp <- s.backoff_exp + 1;
      let jitter = m.slot * (1 + Sim.Rng.int m.m_rng window) in
      Sim.Engine.schedule m.m_engine
        ~delay:(m.wire_free_at - now + jitter)
        (try_transmit s)
    end
    else begin
      let fr = Queue.pop s.outq in
      let wait = now - fr.enq_at in
      Sim.Stats.Summary.add m.m_st.m_queue_wait_us (float_of_int wait);
      Sim.Stats.Summary.add s.s_queue_wait_us (float_of_int wait);
      s.backoff_exp <- 0;
      let xmit = xmit_time m.m_cfg ~size:fr.fsize in
      m.wire_free_at <- now + xmit;
      m.m_st.busy_us <- m.m_st.busy_us + xmit;
      m.m_st.frames_sent <- m.m_st.frames_sent + 1;
      m.m_st.m_bytes_sent <- m.m_st.m_bytes_sent + fr.fsize;
      let cfg = m.m_cfg in
      let dropped = cfg.loss > 0. && Sim.Rng.float m.m_rng 1.0 < cfg.loss in
      let spiked =
        cfg.spike_prob > 0. && Sim.Rng.float m.m_rng 1.0 < cfg.spike_prob
      in
      if spiked then m.m_st.m_spikes <- m.m_st.m_spikes + 1;
      if dropped then m.m_st.m_drops <- m.m_st.m_drops + 1
      else begin
        let arrival =
          m.wire_free_at + cfg.latency
          + (if spiked then cfg.spike else Sim.Time.zero)
        in
        (* one serial wire: everything bound for a station arrives in
           transmission order, spikes push later frames behind them *)
        let floor =
          Option.value
            (Hashtbl.find_opt m.last_arrival fr.f_dst)
            ~default:Sim.Time.zero
        in
        let arrival = max arrival floor in
        Hashtbl.replace m.last_arrival fr.f_dst arrival;
        Sim.Engine.schedule m.m_engine ~delay:(arrival - now) (fun () ->
            match Hashtbl.find_opt m.stations fr.f_dst with
            | None -> ()  (* no such station: the bits fall on the floor *)
            | Some dst ->
                let ib = inbox_of dst ~src:fr.src in
                Queue.push fr.payload ib.q;
                m.m_st.frames_delivered <- m.m_st.frames_delivered + 1;
                Sim.Stats.Summary.add m.m_st.m_transit_us
                  (float_of_int (arrival - fr.enq_at));
                Sim.Condition.signal ib.ib_cond)
      end;
      if Queue.is_empty s.outq then s.pumping <- false
      else Sim.Engine.schedule m.m_engine ~delay:xmit (try_transmit s)
    end

  let send_to s ~dst ~size payload =
    let m = s.med in
    Sim.Cpu.charge s.s_cpu ~label:"net" (serialization_cpu m.m_cfg ~size);
    Queue.push
      {
        src = s.sid;
        f_dst = dst;
        fsize = size;
        payload;
        enq_at = Sim.Engine.now m.m_engine;
      }
      s.outq;
    if not s.pumping then begin
      s.pumping <- true;
      try_transmit s ()
    end

  let rec recv_from s ~src =
    let ib = inbox_of s ~src in
    if Queue.is_empty ib.q then begin
      Sim.Condition.wait ib.ib_cond;
      recv_from s ~src
    end
    else Queue.pop ib.q

  let endpoint s ~peer =
    let ib = inbox_of s ~src:peer in
    {
      ep_send = (fun ~size msg -> send_to s ~dst:peer ~size msg);
      ep_recv = (fun () -> recv_from s ~src:peer);
      ep_pending = (fun () -> Queue.length ib.q);
    }

  let stats t = t.m_st
  let station_queue_wait s = s.s_queue_wait_us

  let utilization t =
    let now = Sim.Engine.now t.m_engine in
    if now = 0 then 0. else float_of_int t.m_st.busy_us /. float_of_int now

  let register_metrics t reg ~instance =
    let s = t.m_st in
    Sim.Metrics.register reg ~layer:"net" ~instance (fun () ->
        [
          ("stations", Sim.Metrics.Int t.nstations);
          ("frames_sent", Sim.Metrics.Int s.frames_sent);
          ("bytes_sent", Sim.Metrics.Int s.m_bytes_sent);
          ("frames_delivered", Sim.Metrics.Int s.frames_delivered);
          ("drops", Sim.Metrics.Int s.m_drops);
          ("delay_spikes", Sim.Metrics.Int s.m_spikes);
          ("contentions", Sim.Metrics.Int s.contentions);
          ("wire_busy_us", Sim.Metrics.Int s.busy_us);
          ("utilization", Sim.Metrics.Float (utilization t));
          ("queue_wait_us", Sim.Metrics.Summary s.m_queue_wait_us);
          ("transit_us", Sim.Metrics.Summary s.m_transit_us);
        ])
end
