type config = {
  bandwidth : int;
  latency : Sim.Time.t;
  loss : float;
  spike_prob : float;
  spike : Sim.Time.t;
  per_msg_cpu : Sim.Time.t;
  per_kb_cpu : Sim.Time.t;
}

let default_config =
  {
    bandwidth = 12_500_000;
    latency = Sim.Time.us 500;
    loss = 0.;
    spike_prob = 0.;
    spike = Sim.Time.ms 20;
    per_msg_cpu = Sim.Time.us 50;
    per_kb_cpu = Sim.Time.us 10;
  }

let lossy c p = { c with loss = p }

let validate ~who cfg =
  if cfg.bandwidth <= 0 then invalid_arg (who ^ ": bandwidth must be > 0");
  if cfg.loss < 0. || cfg.loss >= 1. then
    invalid_arg (who ^ ": loss must be in [0, 1)")

type stats = {
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable msgs_delivered : int;
  mutable drops : int;
  mutable spikes : int;
  wire_wait_us : Sim.Stats.Summary.t;
  transit_us : Sim.Stats.Summary.t;
}

let mk_stats () =
  {
    msgs_sent = 0;
    bytes_sent = 0;
    msgs_delivered = 0;
    drops = 0;
    spikes = 0;
    wire_wait_us = Sim.Stats.Summary.create ();
    transit_us = Sim.Stats.Summary.create ();
  }

let xmit_time cfg ~size =
  (* ceil(size / bandwidth) in integer microseconds *)
  ((size * 1_000_000) + cfg.bandwidth - 1) / cfg.bandwidth

let serialization_cpu cfg ~size =
  cfg.per_msg_cpu + (cfg.per_kb_cpu * ((size + 1023) / 1024))

(* An endpoint is an interface, not a wire: the same RPC machinery runs
   over a private point-to-point link or over one station of a shared
   medium without knowing which. *)
type 'a endpoint = {
  ep_send : size:int -> 'a -> unit;
  ep_recv : unit -> 'a;
  ep_pending : unit -> int;
}

let send ep ~size msg = ep.ep_send ~size msg
let recv ep = ep.ep_recv ()
let pending ep = ep.ep_pending ()

(* ---------- point-to-point duplex links ---------- *)

(* One direction of the wire: its own serialization point, FIFO arrival
   ordering and stats; fault-injection RNG and the combined stats record
   are shared with the reverse direction. *)
type 'a dir = {
  mutable free_at : Sim.Time.t;  (** wire busy until *)
  mutable last_arrival : Sim.Time.t;
  inbox : 'a Queue.t;  (** the RECEIVING endpoint's mailbox *)
  cond : Sim.Condition.t;
  dst : stats;  (** this direction only *)
}

type 'a pep = {
  engine : Sim.Engine.t;
  cfg : config;
  cpu : Sim.Cpu.t;  (** sender's CPU: serialization is charged here *)
  out : 'a dir;  (** direction this endpoint transmits into *)
  inc : 'a dir;  (** direction this endpoint receives from *)
  rng : Sim.Rng.t;
  st : stats;  (** both directions combined *)
}

type 'a t = {
  a : 'a pep;
  b : 'a pep;
  a_ep : 'a endpoint;
  b_ep : 'a endpoint;
  name : string;
}

let mk_dir engine name =
  {
    free_at = Sim.Time.zero;
    last_arrival = Sim.Time.zero;
    inbox = Queue.create ();
    cond = Sim.Condition.create engine name;
    dst = mk_stats ();
  }

let p2p_send ep ~size msg =
  let cfg = ep.cfg in
  Sim.Cpu.charge ep.cpu ~label:"net" (serialization_cpu cfg ~size);
  let now = Sim.Engine.now ep.engine in
  let dir = ep.out in
  let start = max now dir.free_at in
  let wire_wait = start - now in
  dir.free_at <- start + xmit_time cfg ~size;
  ep.st.msgs_sent <- ep.st.msgs_sent + 1;
  ep.st.bytes_sent <- ep.st.bytes_sent + size;
  dir.dst.msgs_sent <- dir.dst.msgs_sent + 1;
  dir.dst.bytes_sent <- dir.dst.bytes_sent + size;
  Sim.Stats.Summary.add ep.st.wire_wait_us (float_of_int wire_wait);
  Sim.Stats.Summary.add dir.dst.wire_wait_us (float_of_int wire_wait);
  (* fault injection: the draws happen at send time, in send order, so
     a run is a pure function of the link seed and the traffic *)
  let dropped = cfg.loss > 0. && Sim.Rng.float ep.rng 1.0 < cfg.loss in
  let spiked =
    cfg.spike_prob > 0. && Sim.Rng.float ep.rng 1.0 < cfg.spike_prob
  in
  if spiked then begin
    ep.st.spikes <- ep.st.spikes + 1;
    dir.dst.spikes <- dir.dst.spikes + 1
  end;
  if dropped then begin
    ep.st.drops <- ep.st.drops + 1;
    dir.dst.drops <- dir.dst.drops + 1
  end
  else begin
    let arrival =
      dir.free_at + cfg.latency + (if spiked then cfg.spike else Sim.Time.zero)
    in
    (* FIFO delivery: a spike on one message holds every later one
       behind it *)
    let arrival = max arrival dir.last_arrival in
    dir.last_arrival <- arrival;
    Sim.Engine.schedule ep.engine ~delay:(arrival - now) (fun () ->
        Queue.push msg dir.inbox;
        ep.st.msgs_delivered <- ep.st.msgs_delivered + 1;
        dir.dst.msgs_delivered <- dir.dst.msgs_delivered + 1;
        Sim.Stats.Summary.add ep.st.transit_us (float_of_int (arrival - now));
        Sim.Stats.Summary.add dir.dst.transit_us (float_of_int (arrival - now));
        Sim.Condition.signal dir.cond)
  end

let rec p2p_recv ep =
  if Queue.is_empty ep.inc.inbox then begin
    Sim.Condition.wait ep.inc.cond;
    p2p_recv ep
  end
  else Queue.pop ep.inc.inbox

let iface_of_pep ep =
  {
    ep_send = (fun ~size msg -> p2p_send ep ~size msg);
    ep_recv = (fun () -> p2p_recv ep);
    ep_pending = (fun () -> Queue.length ep.inc.inbox);
  }

let create ?(seed = 0) ?(name = "link") engine cfg ~a_cpu ~b_cpu =
  validate ~who:"Net.create" cfg;
  let ab = mk_dir engine (name ^ ".ab") in
  let ba = mk_dir engine (name ^ ".ba") in
  let rng = Sim.Rng.create ~seed in
  let st = mk_stats () in
  let a = { engine; cfg; cpu = a_cpu; out = ab; inc = ba; rng; st } in
  let b = { engine; cfg; cpu = b_cpu; out = ba; inc = ab; rng; st } in
  { a; b; a_ep = iface_of_pep a; b_ep = iface_of_pep b; name }

let a_end t = t.a_ep
let b_end t = t.b_ep

let stats t = t.a.st
let dir_stats t = (t.a.out.dst, t.b.out.dst)

let register_metrics t reg ~instance =
  let s = t.a.st in
  let ab = t.a.out.dst and ba = t.b.out.dst in
  Sim.Metrics.register reg ~layer:"net" ~instance (fun () ->
      [
        ("msgs_sent", Sim.Metrics.Int s.msgs_sent);
        ("bytes_sent", Sim.Metrics.Int s.bytes_sent);
        ("msgs_delivered", Sim.Metrics.Int s.msgs_delivered);
        ("drops", Sim.Metrics.Int s.drops);
        ("delay_spikes", Sim.Metrics.Int s.spikes);
        ("wire_wait_us", Sim.Metrics.Summary s.wire_wait_us);
        ("transit_us", Sim.Metrics.Summary s.transit_us);
        (* per direction: asymmetric loss and reply-side queuing show
           up here, invisible in the combined numbers *)
        ("a2b_msgs", Sim.Metrics.Int ab.msgs_sent);
        ("a2b_bytes", Sim.Metrics.Int ab.bytes_sent);
        ("a2b_drops", Sim.Metrics.Int ab.drops);
        ("a2b_wire_wait_us", Sim.Metrics.Summary ab.wire_wait_us);
        ("b2a_msgs", Sim.Metrics.Int ba.msgs_sent);
        ("b2a_bytes", Sim.Metrics.Int ba.bytes_sent);
        ("b2a_drops", Sim.Metrics.Int ba.drops);
        ("b2a_wire_wait_us", Sim.Metrics.Summary ba.wire_wait_us);
      ])

(* ---------- shared medium ---------- *)

module Medium = struct
  type m_stats = {
    mutable frames_sent : int;
    mutable m_bytes_sent : int;
    mutable frames_delivered : int;
    mutable m_drops : int;
    mutable m_spikes : int;
    mutable contentions : int;
    mutable busy_us : int;
    m_queue_wait_us : Sim.Stats.Summary.t;
    m_transit_us : Sim.Stats.Summary.t;
  }

  type 'a frame = {
    src : int;
    f_dst : int;
    fsize : int;
    payload : 'a;
    enq_at : Sim.Time.t;
  }

  type 'a inbox = { q : 'a Queue.t; ib_cond : Sim.Condition.t }

  type 'a t = {
    m_engine : Sim.Engine.t;
    m_cfg : config;
    slot : Sim.Time.t;
    max_exp : int;
    m_name : string;
    m_rng : Sim.Rng.t;
    mutable wire_free_at : Sim.Time.t;
    stations : (int, 'a station) Hashtbl.t;
    mutable nstations : int;
    last_arrival : (int, Sim.Time.t) Hashtbl.t;  (** per-dst FIFO floor *)
    m_st : m_stats;
  }

  and 'a station = {
    med : 'a t;
    sid : int;
    s_cpu : Sim.Cpu.t;
    outq : 'a frame Queue.t;
    mutable pumping : bool;
    mutable backoff_exp : int;
    inboxes : (int, 'a inbox) Hashtbl.t;  (** keyed by source station *)
    s_queue_wait_us : Sim.Stats.Summary.t;
  }

  let create ?(seed = 0) ?(name = "ether") ?(slot = Sim.Time.us 51)
      ?(max_backoff_exp = 10) engine cfg =
    validate ~who:"Net.Medium.create" cfg;
    if slot <= 0 then invalid_arg "Net.Medium.create: slot must be > 0";
    {
      m_engine = engine;
      m_cfg = cfg;
      slot;
      max_exp = max_backoff_exp;
      m_name = name;
      m_rng = Sim.Rng.create ~seed;
      wire_free_at = Sim.Time.zero;
      stations = Hashtbl.create 16;
      nstations = 0;
      last_arrival = Hashtbl.create 16;
      m_st =
        {
          frames_sent = 0;
          m_bytes_sent = 0;
          frames_delivered = 0;
          m_drops = 0;
          m_spikes = 0;
          contentions = 0;
          busy_us = 0;
          m_queue_wait_us = Sim.Stats.Summary.create ();
          m_transit_us = Sim.Stats.Summary.create ();
        };
    }

  let attach t ~cpu =
    let s =
      {
        med = t;
        sid = t.nstations;
        s_cpu = cpu;
        outq = Queue.create ();
        pumping = false;
        backoff_exp = 0;
        inboxes = Hashtbl.create 4;
        s_queue_wait_us = Sim.Stats.Summary.create ();
      }
    in
    Hashtbl.replace t.stations s.sid s;
    t.nstations <- t.nstations + 1;
    s

  let station_id s = s.sid

  let inbox_of s ~src =
    match Hashtbl.find_opt s.inboxes src with
    | Some ib -> ib
    | None ->
        let ib =
          {
            q = Queue.create ();
            ib_cond =
              Sim.Condition.create s.med.m_engine
                (Printf.sprintf "%s.s%d<-%d" s.med.m_name s.sid src);
          }
        in
        Hashtbl.replace s.inboxes src ib;
        ib

  (* The station's transmit pump.  One event chain per backlogged
     station: sense the wire; if busy, defer a seeded jittered backoff
     past the end of the current transmission (binary-exponential in
     the station's consecutive-defer count); if free, seize it for the
     head-of-queue frame.  Contention resolution is deterministic:
     same-instant attempts are ordered by event sequence, losers back
     off through the shared RNG. *)
  let rec try_transmit s () =
    let m = s.med in
    let now = Sim.Engine.now m.m_engine in
    if Queue.is_empty s.outq then s.pumping <- false
    else if now < m.wire_free_at then begin
      m.m_st.contentions <- m.m_st.contentions + 1;
      let window = 1 lsl min s.backoff_exp m.max_exp in
      s.backoff_exp <- s.backoff_exp + 1;
      let jitter = m.slot * (1 + Sim.Rng.int m.m_rng window) in
      Sim.Engine.schedule m.m_engine
        ~delay:(m.wire_free_at - now + jitter)
        (try_transmit s)
    end
    else begin
      let fr = Queue.pop s.outq in
      let wait = now - fr.enq_at in
      Sim.Stats.Summary.add m.m_st.m_queue_wait_us (float_of_int wait);
      Sim.Stats.Summary.add s.s_queue_wait_us (float_of_int wait);
      s.backoff_exp <- 0;
      let xmit = xmit_time m.m_cfg ~size:fr.fsize in
      m.wire_free_at <- now + xmit;
      m.m_st.busy_us <- m.m_st.busy_us + xmit;
      m.m_st.frames_sent <- m.m_st.frames_sent + 1;
      m.m_st.m_bytes_sent <- m.m_st.m_bytes_sent + fr.fsize;
      let cfg = m.m_cfg in
      let dropped = cfg.loss > 0. && Sim.Rng.float m.m_rng 1.0 < cfg.loss in
      let spiked =
        cfg.spike_prob > 0. && Sim.Rng.float m.m_rng 1.0 < cfg.spike_prob
      in
      if spiked then m.m_st.m_spikes <- m.m_st.m_spikes + 1;
      if dropped then m.m_st.m_drops <- m.m_st.m_drops + 1
      else begin
        let arrival =
          m.wire_free_at + cfg.latency
          + (if spiked then cfg.spike else Sim.Time.zero)
        in
        (* one serial wire: everything bound for a station arrives in
           transmission order, spikes push later frames behind them *)
        let floor =
          Option.value
            (Hashtbl.find_opt m.last_arrival fr.f_dst)
            ~default:Sim.Time.zero
        in
        let arrival = max arrival floor in
        Hashtbl.replace m.last_arrival fr.f_dst arrival;
        Sim.Engine.schedule m.m_engine ~delay:(arrival - now) (fun () ->
            match Hashtbl.find_opt m.stations fr.f_dst with
            | None -> ()  (* no such station: the bits fall on the floor *)
            | Some dst ->
                let ib = inbox_of dst ~src:fr.src in
                Queue.push fr.payload ib.q;
                m.m_st.frames_delivered <- m.m_st.frames_delivered + 1;
                Sim.Stats.Summary.add m.m_st.m_transit_us
                  (float_of_int (arrival - fr.enq_at));
                Sim.Condition.signal ib.ib_cond)
      end;
      if Queue.is_empty s.outq then s.pumping <- false
      else Sim.Engine.schedule m.m_engine ~delay:xmit (try_transmit s)
    end

  let send_to s ~dst ~size payload =
    let m = s.med in
    Sim.Cpu.charge s.s_cpu ~label:"net" (serialization_cpu m.m_cfg ~size);
    Queue.push
      {
        src = s.sid;
        f_dst = dst;
        fsize = size;
        payload;
        enq_at = Sim.Engine.now m.m_engine;
      }
      s.outq;
    if not s.pumping then begin
      s.pumping <- true;
      try_transmit s ()
    end

  let rec recv_from s ~src =
    let ib = inbox_of s ~src in
    if Queue.is_empty ib.q then begin
      Sim.Condition.wait ib.ib_cond;
      recv_from s ~src
    end
    else Queue.pop ib.q

  let endpoint s ~peer =
    let ib = inbox_of s ~src:peer in
    {
      ep_send = (fun ~size msg -> send_to s ~dst:peer ~size msg);
      ep_recv = (fun () -> recv_from s ~src:peer);
      ep_pending = (fun () -> Queue.length ib.q);
    }

  let stats t = t.m_st
  let station_queue_wait s = s.s_queue_wait_us

  let utilization t =
    let now = Sim.Engine.now t.m_engine in
    if now = 0 then 0. else float_of_int t.m_st.busy_us /. float_of_int now

  let register_metrics t reg ~instance =
    let s = t.m_st in
    Sim.Metrics.register reg ~layer:"net" ~instance (fun () ->
        [
          ("stations", Sim.Metrics.Int t.nstations);
          ("frames_sent", Sim.Metrics.Int s.frames_sent);
          ("bytes_sent", Sim.Metrics.Int s.m_bytes_sent);
          ("frames_delivered", Sim.Metrics.Int s.frames_delivered);
          ("drops", Sim.Metrics.Int s.m_drops);
          ("delay_spikes", Sim.Metrics.Int s.m_spikes);
          ("contentions", Sim.Metrics.Int s.contentions);
          ("wire_busy_us", Sim.Metrics.Int s.busy_us);
          ("utilization", Sim.Metrics.Float (utilization t));
          ("queue_wait_us", Sim.Metrics.Summary s.m_queue_wait_us);
          ("transit_us", Sim.Metrics.Summary s.m_transit_us);
        ])
end

(* ---------- store-and-forward switch ---------- *)

module Switch = struct
  type sw_stats = {
    mutable frames_sent : int;
    mutable sw_bytes_sent : int;
    mutable frames_delivered : int;
    mutable sw_drops : int;  (** seeded uplink loss *)
    mutable overflows : int;  (** tail drops at full output buffers *)
    mutable sw_spikes : int;
    mutable occ_hwm : int;  (** worst output-buffer occupancy, any port *)
    sw_queue_wait_us : Sim.Stats.Summary.t;
        (** switch arrival -> downlink grant, all output ports *)
    sw_transit_us : Sim.Stats.Summary.t;  (** send -> delivery *)
  }

  type p_stats = {
    mutable up_frames : int;
    mutable up_bytes : int;
    mutable up_busy_us : int;  (** host->switch link occupancy *)
    mutable down_frames : int;
    mutable down_bytes : int;
    mutable down_busy_us : int;  (** switch->host link occupancy *)
    mutable p_drops : int;  (** uplink loss on this port *)
    mutable p_overflows : int;  (** frames tail-dropped at this output *)
    mutable p_occ_hwm : int;
    p_queue_wait_us : Sim.Stats.Summary.t;
  }

  type 'a frame = {
    src : int;
    f_dst : int;
    fsize : int;
    payload : 'a;
    enq_at : Sim.Time.t;  (** handed to the uplink *)
    mutable sw_at : Sim.Time.t;  (** accepted into the output buffer *)
  }

  type 'a inbox = { q : 'a Queue.t; ib_cond : Sim.Condition.t }

  type 'a t = {
    sw_engine : Sim.Engine.t;
    sw_cfg : config;
    buffer : int;  (** frames per output port *)
    sw_name : string;
    sw_rng : Sim.Rng.t;
    ports : (int, 'a port) Hashtbl.t;
    mutable nports : int;
    sw_st : sw_stats;
  }

  and 'a port = {
    sw : 'a t;
    pid : int;
    p_cpu : Sim.Cpu.t;
    (* uplink (host -> switch): a private serial wire, like one
       direction of a p2p link *)
    mutable up_free_at : Sim.Time.t;
    mutable up_last_arrival : Sim.Time.t;
    (* output buffer + downlink (switch -> host) *)
    eq : 'a frame Queue.t;
    mutable occupancy : int;
    mutable down_busy : bool;
    pst : p_stats;
    inboxes : (int, 'a inbox) Hashtbl.t;  (** keyed by source port *)
  }

  let create ?(seed = 0) ?(name = "switch") ?(buffer = 64) engine cfg =
    validate ~who:"Net.Switch.create" cfg;
    if buffer <= 0 then invalid_arg "Net.Switch.create: buffer must be > 0";
    {
      sw_engine = engine;
      sw_cfg = cfg;
      buffer;
      sw_name = name;
      sw_rng = Sim.Rng.create ~seed;
      ports = Hashtbl.create 16;
      nports = 0;
      sw_st =
        {
          frames_sent = 0;
          sw_bytes_sent = 0;
          frames_delivered = 0;
          sw_drops = 0;
          overflows = 0;
          sw_spikes = 0;
          occ_hwm = 0;
          sw_queue_wait_us = Sim.Stats.Summary.create ();
          sw_transit_us = Sim.Stats.Summary.create ();
        };
    }

  let attach t ~cpu =
    let p =
      {
        sw = t;
        pid = t.nports;
        p_cpu = cpu;
        up_free_at = Sim.Time.zero;
        up_last_arrival = Sim.Time.zero;
        eq = Queue.create ();
        occupancy = 0;
        down_busy = false;
        pst =
          {
            up_frames = 0;
            up_bytes = 0;
            up_busy_us = 0;
            down_frames = 0;
            down_bytes = 0;
            down_busy_us = 0;
            p_drops = 0;
            p_overflows = 0;
            p_occ_hwm = 0;
            p_queue_wait_us = Sim.Stats.Summary.create ();
          };
        inboxes = Hashtbl.create 4;
      }
    in
    Hashtbl.replace t.ports p.pid p;
    t.nports <- t.nports + 1;
    p

  let port_id p = p.pid

  let inbox_of p ~src =
    match Hashtbl.find_opt p.inboxes src with
    | Some ib -> ib
    | None ->
        let ib =
          {
            q = Queue.create ();
            ib_cond =
              Sim.Condition.create p.sw.sw_engine
                (Printf.sprintf "%s.p%d<-%d" p.sw.sw_name p.pid src);
          }
        in
        Hashtbl.replace p.inboxes src ib;
        ib

  (* The output-port pump: transmit the head frame over the private
     downlink, release the buffer slot when the wire falls silent, and
     deliver [latency] after that.  One serial downlink per port keeps
     delivery FIFO per output port regardless of which inputs the frames
     came from. *)
  let rec pump p () =
    let m = p.sw in
    match Queue.take_opt p.eq with
    | None -> p.down_busy <- false
    | Some fr ->
        let now = Sim.Engine.now m.sw_engine in
        let wait = now - fr.sw_at in
        Sim.Stats.Summary.add m.sw_st.sw_queue_wait_us (float_of_int wait);
        Sim.Stats.Summary.add p.pst.p_queue_wait_us (float_of_int wait);
        let xmit = xmit_time m.sw_cfg ~size:fr.fsize in
        p.pst.down_frames <- p.pst.down_frames + 1;
        p.pst.down_bytes <- p.pst.down_bytes + fr.fsize;
        p.pst.down_busy_us <- p.pst.down_busy_us + xmit;
        Sim.Engine.schedule m.sw_engine ~delay:xmit (fun () ->
            p.occupancy <- p.occupancy - 1;
            Sim.Engine.schedule m.sw_engine ~delay:m.sw_cfg.latency (fun () ->
                let ib = inbox_of p ~src:fr.src in
                Queue.push fr.payload ib.q;
                m.sw_st.frames_delivered <- m.sw_st.frames_delivered + 1;
                Sim.Stats.Summary.add m.sw_st.sw_transit_us
                  (float_of_int (Sim.Engine.now m.sw_engine - fr.enq_at));
                Sim.Condition.signal ib.ib_cond);
            pump p ())

  (* A frame has fully arrived over its uplink: store (or tail-drop) and
     forward.  Store-and-forward, no cut-through: the downlink can't
     start until the whole frame is in the buffer, which this callback's
     timing already guarantees. *)
  let accept t fr =
    match Hashtbl.find_opt t.ports fr.f_dst with
    | None -> ()  (* no such port: the bits fall on the floor *)
    | Some dst ->
        if dst.occupancy >= t.buffer then begin
          t.sw_st.overflows <- t.sw_st.overflows + 1;
          dst.pst.p_overflows <- dst.pst.p_overflows + 1
        end
        else begin
          dst.occupancy <- dst.occupancy + 1;
          if dst.occupancy > dst.pst.p_occ_hwm then
            dst.pst.p_occ_hwm <- dst.occupancy;
          if dst.occupancy > t.sw_st.occ_hwm then
            t.sw_st.occ_hwm <- dst.occupancy;
          fr.sw_at <- Sim.Engine.now t.sw_engine;
          Queue.push fr dst.eq;
          if not dst.down_busy then begin
            dst.down_busy <- true;
            pump dst ()
          end
        end

  let send_to p ~dst ~size payload =
    let m = p.sw in
    let cfg = m.sw_cfg in
    Sim.Cpu.charge p.p_cpu ~label:"net" (serialization_cpu cfg ~size);
    let now = Sim.Engine.now m.sw_engine in
    (* the port's private uplink: a serialization point, never contended
       by other hosts (full duplex: independent of the downlink) *)
    let start = max now p.up_free_at in
    let xmit = xmit_time cfg ~size in
    p.up_free_at <- start + xmit;
    p.pst.up_frames <- p.pst.up_frames + 1;
    p.pst.up_bytes <- p.pst.up_bytes + size;
    p.pst.up_busy_us <- p.pst.up_busy_us + xmit;
    m.sw_st.frames_sent <- m.sw_st.frames_sent + 1;
    m.sw_st.sw_bytes_sent <- m.sw_st.sw_bytes_sent + size;
    (* fault injection draws happen at send time, in send order: a run
       is a pure function of the switch seed and the traffic *)
    let dropped = cfg.loss > 0. && Sim.Rng.float m.sw_rng 1.0 < cfg.loss in
    let spiked =
      cfg.spike_prob > 0. && Sim.Rng.float m.sw_rng 1.0 < cfg.spike_prob
    in
    if spiked then m.sw_st.sw_spikes <- m.sw_st.sw_spikes + 1;
    if dropped then begin
      m.sw_st.sw_drops <- m.sw_st.sw_drops + 1;
      p.pst.p_drops <- p.pst.p_drops + 1
    end
    else begin
      let arrival =
        p.up_free_at + cfg.latency
        + (if spiked then cfg.spike else Sim.Time.zero)
      in
      (* FIFO per uplink: a spike holds later frames behind it *)
      let arrival = max arrival p.up_last_arrival in
      p.up_last_arrival <- arrival;
      let fr =
        { src = p.pid; f_dst = dst; fsize = size; payload; enq_at = now;
          sw_at = Sim.Time.zero }
      in
      Sim.Engine.schedule m.sw_engine ~delay:(arrival - now) (fun () ->
          accept m fr)
    end

  let rec recv_from p ~src =
    let ib = inbox_of p ~src in
    if Queue.is_empty ib.q then begin
      Sim.Condition.wait ib.ib_cond;
      recv_from p ~src
    end
    else Queue.pop ib.q

  let endpoint p ~peer =
    let ib = inbox_of p ~src:peer in
    {
      ep_send = (fun ~size msg -> send_to p ~dst:peer ~size msg);
      ep_recv = (fun () -> recv_from p ~src:peer);
      ep_pending = (fun () -> Queue.length ib.q);
    }

  let stats t = t.sw_st
  let port_stats p = p.pst

  let port_utilization p =
    let now = Sim.Engine.now p.sw.sw_engine in
    if now = 0 then 0.
    else
      float_of_int (max p.pst.up_busy_us p.pst.down_busy_us)
      /. float_of_int now

  let max_port_utilization t =
    Hashtbl.fold (fun _ p acc -> max acc (port_utilization p)) t.ports 0.

  let register_metrics t reg ~instance =
    let s = t.sw_st in
    Sim.Metrics.register reg ~layer:"net" ~instance (fun () ->
        [
          ("ports", Sim.Metrics.Int t.nports);
          ("buffer_frames", Sim.Metrics.Int t.buffer);
          ("frames_sent", Sim.Metrics.Int s.frames_sent);
          ("bytes_sent", Sim.Metrics.Int s.sw_bytes_sent);
          ("frames_delivered", Sim.Metrics.Int s.frames_delivered);
          ("drops", Sim.Metrics.Int s.sw_drops);
          ("overflow_drops", Sim.Metrics.Int s.overflows);
          ("delay_spikes", Sim.Metrics.Int s.sw_spikes);
          ("occupancy_hwm", Sim.Metrics.Int s.occ_hwm);
          ("max_port_utilization", Sim.Metrics.Float (max_port_utilization t));
          ("queue_wait_us", Sim.Metrics.Summary s.sw_queue_wait_us);
          ("transit_us", Sim.Metrics.Summary s.sw_transit_us);
        ])

  let register_port_metrics p reg ~instance =
    let s = p.pst in
    Sim.Metrics.register reg ~layer:"net" ~instance (fun () ->
        [
          ("up_frames", Sim.Metrics.Int s.up_frames);
          ("up_bytes", Sim.Metrics.Int s.up_bytes);
          ("up_busy_us", Sim.Metrics.Int s.up_busy_us);
          ("down_frames", Sim.Metrics.Int s.down_frames);
          ("down_bytes", Sim.Metrics.Int s.down_bytes);
          ("down_busy_us", Sim.Metrics.Int s.down_busy_us);
          ("drops", Sim.Metrics.Int s.p_drops);
          ("overflow_drops", Sim.Metrics.Int s.p_overflows);
          ("occupancy_hwm", Sim.Metrics.Int s.p_occ_hwm);
          ("utilization", Sim.Metrics.Float (port_utilization p));
          ("queue_wait_us", Sim.Metrics.Summary s.p_queue_wait_us);
        ])
end
