type config = {
  bandwidth : int;
  latency : Sim.Time.t;
  loss : float;
  spike_prob : float;
  spike : Sim.Time.t;
  per_msg_cpu : Sim.Time.t;
  per_kb_cpu : Sim.Time.t;
}

let default_config =
  {
    bandwidth = 12_500_000;
    latency = Sim.Time.us 500;
    loss = 0.;
    spike_prob = 0.;
    spike = Sim.Time.ms 20;
    per_msg_cpu = Sim.Time.us 50;
    per_kb_cpu = Sim.Time.us 10;
  }

let lossy c p = { c with loss = p }

type stats = {
  mutable msgs_sent : int;
  mutable bytes_sent : int;
  mutable msgs_delivered : int;
  mutable drops : int;
  mutable spikes : int;
  wire_wait_us : Sim.Stats.Summary.t;
  transit_us : Sim.Stats.Summary.t;
}

let mk_stats () =
  {
    msgs_sent = 0;
    bytes_sent = 0;
    msgs_delivered = 0;
    drops = 0;
    spikes = 0;
    wire_wait_us = Sim.Stats.Summary.create ();
    transit_us = Sim.Stats.Summary.create ();
  }

(* One direction of the wire: its own serialization point and FIFO
   arrival ordering, shared fault-injection RNG and stats with the
   reverse direction. *)
type 'a dir = {
  mutable free_at : Sim.Time.t;  (** wire busy until *)
  mutable last_arrival : Sim.Time.t;
  inbox : 'a Queue.t;  (** the RECEIVING endpoint's mailbox *)
  cond : Sim.Condition.t;
}

type 'a endpoint = {
  engine : Sim.Engine.t;
  cfg : config;
  cpu : Sim.Cpu.t;  (** sender's CPU: serialization is charged here *)
  out : 'a dir;  (** direction this endpoint transmits into *)
  inc : 'a dir;  (** direction this endpoint receives from *)
  rng : Sim.Rng.t;
  st : stats;
}

type 'a t = { a : 'a endpoint; b : 'a endpoint; name : string }

let mk_dir engine name =
  {
    free_at = Sim.Time.zero;
    last_arrival = Sim.Time.zero;
    inbox = Queue.create ();
    cond = Sim.Condition.create engine name;
  }

let create ?(seed = 0) ?(name = "link") engine cfg ~a_cpu ~b_cpu =
  if cfg.bandwidth <= 0 then invalid_arg "Net.create: bandwidth must be > 0";
  if cfg.loss < 0. || cfg.loss >= 1. then
    invalid_arg "Net.create: loss must be in [0, 1)";
  let ab = mk_dir engine (name ^ ".ab") in
  let ba = mk_dir engine (name ^ ".ba") in
  let rng = Sim.Rng.create ~seed in
  let st = mk_stats () in
  let a = { engine; cfg; cpu = a_cpu; out = ab; inc = ba; rng; st } in
  let b = { engine; cfg; cpu = b_cpu; out = ba; inc = ab; rng; st } in
  { a; b; name }

let a_end t = t.a
let b_end t = t.b

let xmit_time cfg ~size =
  (* ceil(size / bandwidth) in integer microseconds *)
  ((size * 1_000_000) + cfg.bandwidth - 1) / cfg.bandwidth

let send ep ~size msg =
  let cfg = ep.cfg in
  Sim.Cpu.charge ep.cpu ~label:"net"
    (cfg.per_msg_cpu + (cfg.per_kb_cpu * ((size + 1023) / 1024)));
  let now = Sim.Engine.now ep.engine in
  let dir = ep.out in
  let start = max now dir.free_at in
  let wire_wait = start - now in
  dir.free_at <- start + xmit_time cfg ~size;
  ep.st.msgs_sent <- ep.st.msgs_sent + 1;
  ep.st.bytes_sent <- ep.st.bytes_sent + size;
  Sim.Stats.Summary.add ep.st.wire_wait_us (float_of_int wire_wait);
  (* fault injection: the draws happen at send time, in send order, so
     a run is a pure function of the link seed and the traffic *)
  let dropped = cfg.loss > 0. && Sim.Rng.float ep.rng 1.0 < cfg.loss in
  let spiked =
    cfg.spike_prob > 0. && Sim.Rng.float ep.rng 1.0 < cfg.spike_prob
  in
  if spiked then ep.st.spikes <- ep.st.spikes + 1;
  if dropped then ep.st.drops <- ep.st.drops + 1
  else begin
    let arrival =
      dir.free_at + cfg.latency + (if spiked then cfg.spike else Sim.Time.zero)
    in
    (* FIFO delivery: a spike on one message holds every later one
       behind it *)
    let arrival = max arrival dir.last_arrival in
    dir.last_arrival <- arrival;
    Sim.Engine.schedule ep.engine ~delay:(arrival - now) (fun () ->
        Queue.push msg dir.inbox;
        ep.st.msgs_delivered <- ep.st.msgs_delivered + 1;
        Sim.Stats.Summary.add ep.st.transit_us (float_of_int (arrival - now));
        Sim.Condition.signal dir.cond)
  end

let rec recv ep =
  if Queue.is_empty ep.inc.inbox then begin
    Sim.Condition.wait ep.inc.cond;
    recv ep
  end
  else Queue.pop ep.inc.inbox

let pending ep = Queue.length ep.inc.inbox

let stats t = t.a.st

let register_metrics t reg ~instance =
  let s = t.a.st in
  Sim.Metrics.register reg ~layer:"net" ~instance (fun () ->
      [
        ("msgs_sent", Sim.Metrics.Int s.msgs_sent);
        ("bytes_sent", Sim.Metrics.Int s.bytes_sent);
        ("msgs_delivered", Sim.Metrics.Int s.msgs_delivered);
        ("drops", Sim.Metrics.Int s.drops);
        ("delay_spikes", Sim.Metrics.Int s.spikes);
        ("wire_wait_us", Sim.Metrics.Summary s.wire_wait_us);
        ("transit_us", Sim.Metrics.Summary s.transit_us);
      ])
