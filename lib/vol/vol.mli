(** Volume manager: compose several simulated drives into one logical
    block device.

    Three layouts, after SunOS Online: DiskSuite / SVR4 VxVM-era volume
    managers:

    - {b Concat}: members appended end to end.
    - {b Stripe} (RAID-0): logical space interleaved across members in
      fixed stripe units; a request spanning units is split and the
      fragments issued to the member queues concurrently.
    - {b Mirror} (RAID-1): every member holds a full copy; reads go to
      one member (round-robin or shortest-queue), writes fan out to all
      live members and complete when the slowest lands.

    Data movement is real and single-copy: the volume owns one logical
    flat {!Disk.Store.t}, and each member drive is created over a
    {!Disk.Store.view} that remaps member-physical offsets into it.  So
    mkfs/fsck/crash-snapshots operate on the logical image exactly as
    they do on a bare disk, while timed member I/O moves the same bytes.

    Fault injection ({!fail_member}) models a dead spindle: mirror reads
    fall back to a survivor, mirror writes to the failed member are
    dropped (and counted); stripe/concat I/O touching a failed member
    raises — those layouts have no redundancy.  {!repair_member} brings
    a member back; because mirror members are views of the one logical
    image, a repaired member is instantly consistent (no resilver pass —
    a simulation convenience, noted so nobody mistakes it for a recovery
    model). *)

type layout = Concat | Stripe | Mirror

val layout_of_string : string -> layout
(** ["concat" | "stripe" | "mirror"]; raises [Invalid_argument]
    otherwise. *)

val layout_to_string : layout -> string

type read_policy =
  | Round_robin  (** deterministic member rotation (default) *)
  | Shortest_queue  (** pick the live member with the fewest queued *)

type t

val create :
  ?read_policy:read_policy ->
  ?stripe_bytes:int ->
  Sim.Engine.t ->
  layout ->
  Disk.Device.config array ->
  t
(** [create engine layout member_cfgs] builds the member drives (each
    over a view of the volume's logical store) and the volume above
    them.  [stripe_bytes] (default 128 KB) must be a positive multiple
    of the sector size; it is ignored for concat/mirror.  All members
    must share a sector size.  Raises [Invalid_argument] on an empty
    member list or bad stripe unit.

    Capacity rules: concat sums the members; stripe rounds each member
    down to whole stripe units, truncates all to the smallest member,
    and interleaves; mirror is the smallest member. *)

val capacity_bytes : t -> int
val sector_bytes : t -> int
val layout : t -> layout
val stripe_bytes : t -> int
val devices : t -> Disk.Device.t array
val store : t -> Disk.Store.t
(** The logical volume image (offline access). *)

val submit : t -> Disk.Request.t -> unit
(** Split the request at member/stripe boundaries, issue the fragments
    concurrently, complete the parent when all fragments land.  A
    request that maps to exactly one whole member fragment at the same
    sector is passed through untouched, so a 1-member volume is
    byte-and-timing-identical to the bare drive. *)

val quiesce : t -> unit
val busy : t -> bool
val queue_length : t -> int

val fail_member : t -> int -> unit
(** Mark member [i] dead.  Raises [Invalid_argument] on a bad index. *)

val repair_member : t -> int -> unit

val failed : t -> int -> bool

val dropped_writes : t -> int array
(** Per-member count of write fragments dropped while dead. *)

val splits : t -> int
(** Number of parent requests that were split into >1 fragment. *)

val register_metrics : t -> Sim.Metrics.t -> instance:string -> unit
(** Register the volume's split/drop counters and queue gauge as a
    ["vol"] source. *)

val blkdev : t -> Disk.Blkdev.t
(** The volume as a mountable block device.

    Contract: [capacity] is the authoritative logical size — it is what
    mkfs and the extent allocator must size themselves from.  [geom] is
    member 0's geometry and is a {e timing hint only} (the FFS
    allocator's rotational-layout decisions are per-spindle properties;
    the paper's clustering decisions depend only on contiguity, which
    striping preserves within a stripe unit).  In particular
    [Geom.capacity_bytes blkdev.geom] describes one member, not the
    volume — never derive volume capacity from [geom]. *)
