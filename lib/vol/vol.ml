type layout = Concat | Stripe | Mirror

let layout_of_string = function
  | "concat" -> Concat
  | "stripe" -> Stripe
  | "mirror" -> Mirror
  | s -> invalid_arg (Printf.sprintf "Vol.layout_of_string: %S" s)

let layout_to_string = function
  | Concat -> "concat"
  | Stripe -> "stripe"
  | Mirror -> "mirror"

type read_policy = Round_robin | Shortest_queue

type member = {
  dev : Disk.Device.t;
  start : int;  (** concat: member's first logical byte *)
  mutable failed : bool;
  mutable dropped_writes : int;
}

type t = {
  engine : Sim.Engine.t;
  layout : layout;
  read_policy : read_policy;
  stripe_bytes : int;
  sector_bytes : int;
  capacity : int;  (** logical bytes *)
  store : Disk.Store.t;  (** logical flat image *)
  members : member array;
  mutable rr : int;  (** round-robin cursor for mirror reads *)
  mutable splits : int;
}

(* Member-physical byte offset -> (logical byte offset, run length).
   Runs end at the next point where the mapping stops being affine, so
   Store can blit run by run. *)
let concat_map ~start ~mcap mo = (start + mo, mcap - mo)

let stripe_map ~su ~n ~i ~usable mo =
  if mo >= usable then
    invalid_arg "Vol: access to unusable striped-member tail"
  else
    let k = mo / su and o = mo mod su in
    (((k * n) + i) * su + o, su - o)

let mirror_map ~cap mo =
  if mo >= cap then invalid_arg "Vol: access beyond mirrored capacity"
  else (mo, cap - mo)

let create ?(read_policy = Round_robin) ?(stripe_bytes = 128 * 1024) engine
    layout cfgs =
  let n = Array.length cfgs in
  if n = 0 then invalid_arg "Vol.create: no members";
  let sb = (cfgs.(0)).Disk.Device.geom.Disk.Geom.sector_bytes in
  Array.iter
    (fun c ->
      if c.Disk.Device.geom.Disk.Geom.sector_bytes <> sb then
        invalid_arg "Vol.create: members disagree on sector size")
    cfgs;
  if layout = Stripe && (stripe_bytes <= 0 || stripe_bytes mod sb <> 0) then
    invalid_arg "Vol.create: stripe unit must be a positive sector multiple";
  let caps = Array.map (fun c -> Disk.Geom.capacity_bytes c.Disk.Device.geom) cfgs in
  let min_cap = Array.fold_left min caps.(0) caps in
  let capacity, starts =
    match layout with
    | Concat ->
        let starts = Array.make n 0 in
        let total = ref 0 in
        Array.iteri
          (fun i c ->
            starts.(i) <- !total;
            total := !total + c)
          caps;
        (!total, starts)
    | Stripe ->
        let upm = min_cap / stripe_bytes in
        if upm = 0 then
          invalid_arg "Vol.create: stripe unit exceeds smallest member";
        (n * upm * stripe_bytes, Array.make n 0)
    | Mirror -> (min_cap, Array.make n 0)
  in
  let store = Disk.Store.create ~size:capacity in
  let members =
    Array.init n (fun i ->
        let mcap = caps.(i) in
        let map =
          match layout with
          | Concat -> concat_map ~start:starts.(i) ~mcap
          | Stripe ->
              let usable = capacity / n in
              stripe_map ~su:stripe_bytes ~n ~i ~usable
          | Mirror -> mirror_map ~cap:capacity
        in
        let mstore = Disk.Store.view ~base:store ~size:mcap ~map in
        {
          dev = Disk.Device.create ~store:mstore engine cfgs.(i);
          start = starts.(i);
          failed = false;
          dropped_writes = 0;
        })
  in
  {
    engine;
    layout;
    read_policy;
    stripe_bytes;
    sector_bytes = sb;
    capacity;
    store;
    members;
    rr = 0;
    splits = 0;
  }

let capacity_bytes t = t.capacity
let sector_bytes t = t.sector_bytes
let layout t = t.layout
let stripe_bytes t = t.stripe_bytes
let devices t = Array.map (fun m -> m.dev) t.members
let store t = t.store
let n_members t = Array.length t.members

let check_member t i =
  if i < 0 || i >= n_members t then invalid_arg "Vol: bad member index"

let fail_member t i =
  check_member t i;
  t.members.(i).failed <- true

let repair_member t i =
  check_member t i;
  t.members.(i).failed <- false

let failed t i =
  check_member t i;
  t.members.(i).failed

let dropped_writes t = Array.map (fun m -> m.dropped_writes) t.members

let splits t = t.splits

(* ---- fragment planning (sector granularity) ---- *)

(* A fragment: [count] sectors of the parent request that land on member
   [midx] at member sector [msector]; [lsector] is where the fragment
   starts in the parent's logical range (fixes the buffer offset). *)
type frag = { midx : int; msector : int; count : int; lsector : int }

let plan_concat t ~sector ~count =
  let sb = t.sector_bytes in
  let frags = ref [] in
  let cur = ref sector and remaining = ref count in
  let mi = ref 0 in
  while !remaining > 0 do
    let m = t.members.(!mi) in
    let mstart = m.start / sb in
    let msects = Disk.Device.capacity_bytes m.dev / sb in
    if !cur < mstart + msects then begin
      let n = min !remaining (mstart + msects - !cur) in
      frags :=
        { midx = !mi; msector = !cur - mstart; count = n; lsector = !cur }
        :: !frags;
      cur := !cur + n;
      remaining := !remaining - n
    end;
    if !remaining > 0 then incr mi
  done;
  List.rev !frags

let plan_stripe t ~sector ~count =
  let su = t.stripe_bytes / t.sector_bytes in
  let n = n_members t in
  let frags = ref [] in
  let cur = ref sector and remaining = ref count in
  while !remaining > 0 do
    let k = !cur / su and o = !cur mod su in
    let len = min !remaining (su - o) in
    frags :=
      {
        midx = k mod n;
        msector = ((k / n) * su) + o;
        count = len;
        lsector = !cur;
      }
      :: !frags;
    cur := !cur + len;
    remaining := !remaining - len
  done;
  List.rev !frags

let live_members t =
  let live = ref [] in
  Array.iteri (fun i m -> if not m.failed then live := i :: !live) t.members;
  List.rev !live

let pick_read_member t =
  match live_members t with
  | [] -> failwith "Vol: mirror read with all members failed"
  | live -> (
      match t.read_policy with
      | Round_robin ->
          (* advance the cursor to the next live member *)
          let n = n_members t in
          let rec go tries i =
            if tries > n then assert false
            else if List.mem (i mod n) live then i mod n
            else go (tries + 1) (i + 1)
          in
          let i = go 0 t.rr in
          t.rr <- (i + 1) mod n;
          i
      | Shortest_queue ->
          List.fold_left
            (fun best i ->
              if
                Disk.Device.queue_length t.members.(i).dev
                < Disk.Device.queue_length t.members.(best).dev
              then i
              else best)
            (List.hd live) (List.tl live))

(* ---- submission ---- *)

let child_request t (r : Disk.Request.t) f =
  let buf_off =
    r.Disk.Request.buf_off + ((f.lsector - r.Disk.Request.sector) * t.sector_bytes)
  in
  Disk.Request.make ~ordered:r.Disk.Request.ordered ~kind:r.Disk.Request.kind
    ~sector:f.msector ~count:f.count ~buf:r.Disk.Request.buf ~buf_off ()

let submit_frags t (r : Disk.Request.t) frags =
  (* Fan out; the parent completes when the last fragment lands. *)
  (match frags with
  | _ :: _ :: _ ->
      t.splits <- t.splits + 1;
      (* a traced caller sees the fan-out on whatever span covers the
         submission (the members' I/O shows up when it waits) *)
      Sim.Span.add_attr "vol.split" (Sim.Span.I (List.length frags))
  | _ -> ());
  let pending = ref (List.length frags) in
  if !pending = 0 then
    (* every target was a dropped mirror write *)
    Disk.Request.complete r ~now:(Sim.Engine.now t.engine)
  else
    List.iter
      (fun f ->
        let child = child_request t r f in
        Disk.Request.on_complete child (fun () ->
            decr pending;
            if !pending = 0 then
              Disk.Request.complete r ~now:(Sim.Engine.now t.engine));
        Disk.Device.submit t.members.(f.midx).dev child)
      frags

let submit t (r : Disk.Request.t) =
  let sects = t.capacity / t.sector_bytes in
  if r.Disk.Request.sector < 0 || r.Disk.Request.count <= 0
     || r.Disk.Request.sector + r.Disk.Request.count > sects
  then invalid_arg "Vol.submit: request past end of volume";
  match t.layout with
  | Mirror when r.Disk.Request.kind = Disk.Request.Read ->
      (* whole request to one live member; sectors map 1:1 *)
      Disk.Device.submit t.members.(pick_read_member t).dev r
  | Mirror ->
      let targets = live_members t in
      Array.iter
        (fun m -> if m.failed then m.dropped_writes <- m.dropped_writes + 1)
        t.members;
      submit_frags t r
        (List.map
           (fun i ->
             {
               midx = i;
               msector = r.Disk.Request.sector;
               count = r.Disk.Request.count;
               lsector = r.Disk.Request.sector;
             })
           targets)
  | Concat | Stripe -> (
      let frags =
        match t.layout with
        | Concat ->
            plan_concat t ~sector:r.Disk.Request.sector
              ~count:r.Disk.Request.count
        | Stripe ->
            plan_stripe t ~sector:r.Disk.Request.sector
              ~count:r.Disk.Request.count
        | Mirror -> assert false
      in
      List.iter
        (fun f ->
          if t.members.(f.midx).failed then
            failwith
              (Printf.sprintf "Vol: I/O to failed member %d (no redundancy)"
                 f.midx))
        frags;
      match frags with
      | [ f ] when f.msector = r.Disk.Request.sector ->
          (* single whole fragment at the same sector: pass the parent
             through untouched, so a 1-member volume is identical to the
             bare drive *)
          Disk.Device.submit t.members.(f.midx).dev r
      | frags -> submit_frags t r frags)

let quiesce t = Array.iter (fun m -> Disk.Device.quiesce m.dev) t.members
let busy t = Array.exists (fun m -> Disk.Device.busy m.dev) t.members

let queue_length t =
  Array.fold_left (fun acc m -> acc + Disk.Device.queue_length m.dev) 0 t.members

let register_metrics t reg ~instance =
  Sim.Metrics.register reg ~layer:"vol" ~instance (fun () ->
      let dropped = Array.fold_left (fun a m -> a + m.dropped_writes) 0 t.members in
      let failed = Array.fold_left (fun a m -> a + if m.failed then 1 else 0) 0 t.members in
      Sim.Metrics.
        [
          ("splits", Int t.splits);
          ("dropped_writes", Int dropped);
          ("n_members", Int (n_members t));
          ("failed_members", Int failed);
          ("queue_length", Int (queue_length t));
        ])

let blkdev t =
  {
    Disk.Blkdev.name = Printf.sprintf "vol-%s×%d" (layout_to_string t.layout)
        (n_members t);
    engine = t.engine;
    geom = (Disk.Device.config t.members.(0).dev).Disk.Device.geom;
    capacity = t.capacity;
    submit = submit t;
    quiesce = (fun () -> quiesce t);
    busy = (fun () -> busy t);
    queue_length = (fun () -> queue_length t);
    store = t.store;
    members = devices t;
  }
