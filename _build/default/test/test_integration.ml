(* End-to-end integration: the paper's headline claims as assertions,
   cross-config behaviour, full determinism, and fsck after everything. *)

let check_bool = Alcotest.(check bool)

(* paper-shaped configs on the small test disk, full-size memory *)
let shrink (c : Clusterfs.Config.t) =
  {
    c with
    Clusterfs.Config.disk =
      { c.Clusterfs.Config.disk with Disk.Device.geom = Helpers.small_geom };
    mkfs =
      { c.Clusterfs.Config.mkfs with Ufs.Fs.fpg = 4096; ipg = 512 };
    memory_mb = 4;
  }

let bench_cfg =
  { Workload.Iobench.default_config with Workload.Iobench.file_mb = 8; random_ops = 256 }

let seq_read_rate config =
  let m = Clusterfs.Machine.create (shrink config) in
  let r =
    Clusterfs.Machine.run m (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        ignore (Workload.Iobench.run_phase fs bench_cfg Workload.Iobench.FSW);
        Workload.Iobench.run_phase fs bench_cfg Workload.Iobench.FSR)
  in
  (m, r.Workload.Iobench.kb_per_sec)

let test_clustering_doubles_sequential_reads () =
  let m_a, fsr_a = seq_read_rate Clusterfs.Config.config_a in
  let m_d, fsr_d = seq_read_rate Clusterfs.Config.config_d in
  check_bool
    (Printf.sprintf "FSR A (%.0f) ~2x FSR D (%.0f)" fsr_a fsr_d)
    true
    (fsr_a > 1.6 *. fsr_d && fsr_a < 2.6 *. fsr_d);
  (* both leave consistent file systems behind *)
  Helpers.fsck_clean m_a;
  Helpers.fsck_clean m_d

let test_random_reads_unaffected () =
  let rate config =
    let m = Clusterfs.Machine.create (shrink config) in
    Clusterfs.Machine.run m (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        Workload.Iobench.prepare fs bench_cfg;
        (Workload.Iobench.run_phase fs bench_cfg Workload.Iobench.FRR)
          .Workload.Iobench.kb_per_sec)
  in
  let a = rate Clusterfs.Config.config_a and d = rate Clusterfs.Config.config_d in
  check_bool
    (Printf.sprintf "FRR A (%.0f) within 15%% of FRR D (%.0f)" a d)
    true
    (a > 0.85 *. d && a < 1.15 *. d)

let test_cluster_io_counts () =
  let pattern config =
    let m = Clusterfs.Machine.create (shrink config) in
    Clusterfs.Machine.run m (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        ignore (Workload.Iobench.run_phase fs bench_cfg Workload.Iobench.FSW);
        ignore (Workload.Iobench.run_phase fs bench_cfg Workload.Iobench.FSR);
        let s = fs.Ufs.Types.stats in
        let reads = s.Ufs.Types.pgin_ios + s.Ufs.Types.ra_ios in
        let blocks = s.Ufs.Types.pgin_blocks + s.Ufs.Types.ra_blocks in
        ( float_of_int blocks /. float_of_int (max 1 reads),
          float_of_int s.Ufs.Types.push_blocks
          /. float_of_int (max 1 s.Ufs.Types.push_ios) ))
  in
  let ra, wa = pattern Clusterfs.Config.config_a in
  let rd, wd = pattern Clusterfs.Config.config_d in
  check_bool (Printf.sprintf "A reads in clusters (%.1f blocks/I/O)" ra) true
    (ra > 8.);
  check_bool (Printf.sprintf "A writes in clusters (%.1f blocks/I/O)" wa) true
    (wa > 8.);
  check_bool (Printf.sprintf "D reads block-at-a-time (%.2f)" rd) true
    (rd < 1.2);
  check_bool (Printf.sprintf "D writes block-at-a-time (%.2f)" wd) true
    (wd < 1.2)

let test_full_machine_determinism () =
  let run () =
    let m = Clusterfs.Machine.create (shrink Clusterfs.Config.config_a) in
    Clusterfs.Machine.run m (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        ignore (Workload.Iobench.run_all fs bench_cfg);
        ignore
          (Workload.Musbus.run fs
             { Workload.Musbus.default_config with Workload.Musbus.users = 4; iterations = 6 });
        Ufs.Fs.unmount fs;
        Sim.Engine.now m.Clusterfs.Machine.engine)
  in
  Alcotest.(check int) "identical final virtual time" (run ()) (run ())

let test_mixed_workload_fsck_clean () =
  let m = Helpers.machine () in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      (* a mix of everything at once: three concurrent processes *)
      let e = m.Clusterfs.Machine.engine in
      let remaining = ref 3 in
      let done_cv = Sim.Condition.create e "done" in
      let finish () =
        decr remaining;
        if !remaining = 0 then Sim.Condition.broadcast done_cv
      in
      Sim.Engine.spawn e (fun () ->
          let ip = Ufs.Fs.creat fs "/stream" in
          Helpers.write_pattern fs ip ~seed:1 ~off:0 ~len:(3 * 1024 * 1024);
          Ufs.Fs.fsync fs ip;
          Helpers.check_pattern fs ip ~seed:1 ~off:0 ~len:(3 * 1024 * 1024);
          Ufs.Iops.iput fs ip;
          finish ());
      Sim.Engine.spawn e (fun () ->
          Ufs.Fs.mkdir fs "/many";
          for i = 0 to 60 do
            let p = Printf.sprintf "/many/f%d" i in
            let ip = Ufs.Fs.creat fs p in
            Helpers.write_pattern fs ip ~seed:i ~off:0 ~len:(512 * (1 + (i mod 9)));
            Ufs.Iops.iput fs ip;
            if i mod 3 = 0 then Ufs.Fs.unlink fs p
          done;
          finish ());
      Sim.Engine.spawn e (fun () ->
          for i = 0 to 10 do
            let p = Printf.sprintf "/spars%d" i in
            let ip = Ufs.Fs.creat fs p in
            let buf = Bytes.make 100 'z' in
            Ufs.Fs.write fs ip ~off:(i * 100 * 8192) ~buf ~len:100;
            Ufs.Iops.iput fs ip
          done;
          finish ());
      while !remaining > 0 do
        Sim.Condition.wait done_cv
      done;
      (* verify survivors *)
      for i = 0 to 60 do
        if i mod 3 <> 0 then begin
          let ip = Ufs.Fs.namei fs (Printf.sprintf "/many/f%d" i) in
          Helpers.check_pattern fs ip ~seed:i ~off:0 ~len:(512 * (1 + (i mod 9)));
          Ufs.Iops.iput fs ip
        end
      done);
  Helpers.fsck_clean m

let test_allocator_counts_after_everything () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      ignore (Workload.Iobench.run_all fs bench_cfg);
      Alcotest.(check int)
        "incremental counts still match bitmaps" 0
        (List.length (Ufs.Alloc.check_counts fs)))

let suites =
  [
    ( "integration",
      [
        Alcotest.test_case "clustering ~2x sequential reads" `Slow
          test_clustering_doubles_sequential_reads;
        Alcotest.test_case "random reads unaffected" `Slow
          test_random_reads_unaffected;
        Alcotest.test_case "cluster I/O counts" `Slow test_cluster_io_counts;
        Alcotest.test_case "full-machine determinism" `Slow
          test_full_machine_determinism;
        Alcotest.test_case "mixed workload + fsck" `Slow
          test_mixed_workload_fsck_clean;
        Alcotest.test_case "allocator counts after bench" `Slow
          test_allocator_counts_after_everything;
      ] );
  ]
