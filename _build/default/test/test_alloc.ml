(* Tests for the FFS allocator: placement policy, block/fragment
   allocation, inode allocation, count invariants. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let counts_clean fs =
  Alcotest.(check (list string))
    "summary counts match bitmaps" []
    (List.map
       (fun (what, expected, actual) ->
         Printf.sprintf "%s: expected %d got %d" what expected actual)
       (Ufs.Alloc.check_counts fs))

(* run [f fs ip] with a fresh inode on a fresh small machine *)
let with_fs f =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/subject" in
      Fun.protect
        ~finally:(fun () -> Ufs.Iops.iput fs ip)
        (fun () -> f fs ip))

let test_alloc_block_basic () =
  with_fs (fun fs ip ->
      let free0 = Ufs.Alloc.total_free_frags fs in
      let frag = Ufs.Alloc.alloc_block fs ip ~pref:0 in
      check_int "block aligned" 0 (frag mod Ufs.Layout.fpb);
      let cg = Ufs.Superblock.cg_of_frag fs.Ufs.Types.sb frag in
      check_bool "inside a data area" true
        (frag >= Ufs.Cg.data_begin fs.Ufs.Types.sb cg);
      check_int "free count dropped by fpb" (free0 - Ufs.Layout.fpb)
        (Ufs.Alloc.total_free_frags fs);
      check_bool "bits cleared" false
        (Ufs.Cg.frag_free fs.Ufs.Types.cgs.(cg) fs.Ufs.Types.sb frag);
      counts_clean fs;
      Ufs.Alloc.free_block fs (Some ip) frag;
      check_int "free count restored" free0 (Ufs.Alloc.total_free_frags fs);
      counts_clean fs;
      check_int "ip.blocks net zero" 0 ip.Ufs.Types.blocks
      (* 1 frag: the creat'ed empty file has nothing; /subject starts
         with 0... blocks counts this test's net effect only *))

let test_alloc_honors_pref () =
  with_fs (fun fs ip ->
      let a = Ufs.Alloc.alloc_block fs ip ~pref:0 in
      (* the block right after [a] should be free on a fresh fs *)
      let want = a + Ufs.Layout.fpb in
      let b = Ufs.Alloc.alloc_block fs ip ~pref:want in
      check_int "exact preference honored" want b)

let test_blkpref_policy () =
  with_fs (fun fs ip ->
      let sb = fs.Ufs.Types.sb in
      (* first block: the inode's own group *)
      let p0 = Ufs.Alloc.blkpref fs ip ~lbn:0 ~prev_frag:0 in
      check_int "first block in home group"
        (Ufs.Superblock.cg_of_inum sb ip.Ufs.Types.inum)
        (Ufs.Superblock.cg_of_frag sb p0);
      (* with rotdelay 0 (helpers default): strictly contiguous *)
      let p1 = Ufs.Alloc.blkpref fs ip ~lbn:1 ~prev_frag:1000 in
      check_int "contiguous after prev" (1000 + Ufs.Layout.fpb) p1;
      (* with rotdelay 4ms: a gap after each maxcontig run *)
      Ufs.Fs.tunefs fs ~rotdelay_ms:4 ~maxcontig:1 ();
      let gap = Ufs.Alloc.rotdelay_gap_blocks fs in
      check_bool "gap at least one block" true (gap >= 1);
      let p2 = Ufs.Alloc.blkpref fs ip ~lbn:1 ~prev_frag:1000 in
      check_int "gap applied"
        (1000 + ((1 + gap) * Ufs.Layout.fpb))
        p2;
      (* mid-run blocks stay contiguous even with rotdelay, when
         maxcontig > 1 *)
      Ufs.Fs.tunefs fs ~rotdelay_ms:4 ~maxcontig:4 ();
      let p3 = Ufs.Alloc.blkpref fs ip ~lbn:5 ~prev_frag:1000 in
      check_int "inside a maxcontig run: contiguous"
        (1000 + Ufs.Layout.fpb) p3;
      let p4 = Ufs.Alloc.blkpref fs ip ~lbn:4 ~prev_frag:1000 in
      check_bool "run boundary gets the gap" true
        (p4 > 1000 + Ufs.Layout.fpb))

let test_blkpref_cg_switch () =
  with_fs (fun fs ip ->
      let sb = fs.Ufs.Types.sb in
      let maxbpg = sb.Ufs.Superblock.maxbpg in
      let switches0 = fs.Ufs.Types.stats.Ufs.Types.cg_switches in
      let p = Ufs.Alloc.blkpref fs ip ~lbn:maxbpg ~prev_frag:1000 in
      check_bool "switch counted" true
        (fs.Ufs.Types.stats.Ufs.Types.cg_switches > switches0);
      check_bool "preference moved off the previous run" true
        (p <> 1000 + Ufs.Layout.fpb))

let test_alloc_frags_and_extend () =
  with_fs (fun fs ip ->
      let f = Ufs.Alloc.alloc_frags fs ip ~pref:0 ~nfrags:3 in
      counts_clean fs;
      check_bool "extends in place on fresh space" true
        (Ufs.Alloc.extend_frags fs ip ~frag:f ~old_n:3 ~new_n:5);
      counts_clean fs;
      (* block a neighbouring frag, then extension must fail *)
      let blocker = Ufs.Alloc.alloc_frags fs ip ~pref:(f + 5) ~nfrags:1 in
      let extended = Ufs.Alloc.extend_frags fs ip ~frag:f ~old_n:5 ~new_n:7 in
      check_bool "extension blocked by neighbour"
        (blocker <> f + 5)
        extended;
      Ufs.Alloc.free_frags fs (Some ip) ~frag:f ~nfrags:(if extended then 7 else 5);
      counts_clean fs)

let test_alloc_frags_prefers_partial_blocks () =
  with_fs (fun fs ip ->
      (* make one partial block by taking 2 frags *)
      let f1 = Ufs.Alloc.alloc_frags fs ip ~pref:0 ~nfrags:2 in
      (* a second small allocation should land in the same broken block
         rather than breaking a new one *)
      let f2 = Ufs.Alloc.alloc_frags fs ip ~pref:0 ~nfrags:2 in
      check_int "same block"
        (f1 - (f1 mod Ufs.Layout.fpb))
        (f2 - (f2 mod Ufs.Layout.fpb));
      counts_clean fs)

let test_enospc_at_minfree () =
  with_fs (fun fs ip ->
      (* grab blocks until ENOSPC; free space must stop at the reserve *)
      let hit = ref false in
      (try
         while true do
           ignore (Ufs.Alloc.alloc_block fs ip ~pref:0)
         done
       with Vfs.Errno.Error (Vfs.Errno.ENOSPC, _) -> hit := true);
      check_bool "hit the reserve" true !hit;
      let free = Ufs.Alloc.total_free_frags fs in
      let reserve = Ufs.Superblock.minfree_frags fs.Ufs.Types.sb in
      check_bool
        (Printf.sprintf "free (%d) stops within a block of reserve (%d)" free
           reserve)
        true
        (free >= reserve && free < reserve + Ufs.Layout.fpb);
      counts_clean fs)

let test_inode_allocation_policy () =
  with_fs (fun fs _ip ->
      let sb = fs.Ufs.Types.sb in
      (* a file goes to its parent's group *)
      let f = Ufs.Alloc.alloc_inode fs ~dir_hint:Ufs.Types.rootino ~kind:Ufs.Dinode.Reg in
      check_int "file near parent"
        (Ufs.Superblock.cg_of_inum sb Ufs.Types.rootino)
        (Ufs.Superblock.cg_of_inum sb f);
      (* directories spread to emptier groups *)
      let d1 = Ufs.Alloc.alloc_inode fs ~dir_hint:Ufs.Types.rootino ~kind:Ufs.Dinode.Dir in
      let d2 = Ufs.Alloc.alloc_inode fs ~dir_hint:Ufs.Types.rootino ~kind:Ufs.Dinode.Dir in
      check_bool "directories landed in different groups" true
        (Ufs.Superblock.cg_of_inum sb d1 <> Ufs.Superblock.cg_of_inum sb d2);
      Ufs.Alloc.free_inode fs f;
      Alcotest.check_raises "double free"
        (Invalid_argument "Alloc.free_inode: already free") (fun () ->
          Ufs.Alloc.free_inode fs f);
      counts_clean fs)

(* qcheck: a random alloc/free interleaving keeps the bitmaps and the
   incremental counts consistent, and never double-allocates. *)
let prop_alloc_free_consistent =
  Helpers.qtest ~count:30 "allocator invariants under random ops"
    QCheck.(list (pair bool (int_bound 6)))
    (fun ops ->
      Helpers.in_machine (fun m ->
          let fs = m.Clusterfs.Machine.fs in
          let ip = Ufs.Fs.creat fs "/q" in
          let held = ref [] in
          let ok = ref true in
          List.iter
            (fun (is_alloc, sz) ->
              if is_alloc || !held = [] then begin
                match
                  if sz = 0 then
                    Some (Ufs.Alloc.alloc_block fs ip ~pref:0, Ufs.Layout.fpb)
                  else
                    Some (Ufs.Alloc.alloc_frags fs ip ~pref:0 ~nfrags:sz, sz)
                with
                | Some (frag, n) ->
                    (* no double allocation: must not already hold it *)
                    if List.exists (fun (f, m) -> frag < f + m && f < frag + n) !held
                    then ok := false;
                    held := (frag, n) :: !held
                | None -> ()
                | exception Vfs.Errno.Error (Vfs.Errno.ENOSPC, _) -> ()
              end
              else begin
                match !held with
                | (frag, n) :: rest ->
                    held := rest;
                    if n = Ufs.Layout.fpb then
                      Ufs.Alloc.free_block fs (Some ip) frag
                    else Ufs.Alloc.free_frags fs (Some ip) ~frag ~nfrags:n
                | [] -> ()
              end)
            ops;
          !ok && Ufs.Alloc.check_counts fs = []))

let suites =
  [
    ( "ufs-alloc",
      [
        Alcotest.test_case "alloc block basic" `Quick test_alloc_block_basic;
        Alcotest.test_case "alloc honors pref" `Quick test_alloc_honors_pref;
        Alcotest.test_case "blkpref policy" `Quick test_blkpref_policy;
        Alcotest.test_case "blkpref cg switch" `Quick test_blkpref_cg_switch;
        Alcotest.test_case "frags + extend" `Quick test_alloc_frags_and_extend;
        Alcotest.test_case "frags prefer partial blocks" `Quick
          test_alloc_frags_prefers_partial_blocks;
        Alcotest.test_case "ENOSPC at minfree" `Slow test_enospc_at_minfree;
        Alcotest.test_case "inode allocation policy" `Quick
          test_inode_allocation_policy;
        prop_alloc_free_consistent;
      ] );
  ]
