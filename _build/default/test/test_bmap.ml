(* Tests for bmap: translation, the contiguity length, holes, fragment
   tails, indirect blocks, the extent map, and the bmap cache. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bsize = Ufs.Layout.bsize

let with_file ?features f =
  Helpers.in_machine ?features (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/f" in
      Fun.protect
        ~finally:(fun () -> Ufs.Iops.iput fs ip)
        (fun () -> f fs ip))

let write_blocks fs ip ~from ~count =
  let buf = Bytes.make bsize 'b' in
  for i = from to from + count - 1 do
    Ufs.Fs.write fs ip ~off:(i * bsize) ~buf ~len:bsize
  done

let test_bmap_contiguous_run () =
  with_file (fun fs ip ->
      write_blocks fs ip ~from:0 ~count:8;
      let frag0, len0 = Ufs.Bmap.read fs ip ~lbn:0 in
      check_bool "allocated" true (frag0 <> None);
      (* helpers mkfs: maxcontig 8, rotdelay 0 → fully contiguous *)
      check_int "full run from block 0" 8 len0;
      let _, len3 = Ufs.Bmap.read fs ip ~lbn:3 in
      check_int "run shrinks toward the end" 5 len3;
      (* physical contiguity *)
      let f0 = Option.get frag0 in
      let f1, _ = Ufs.Bmap.read fs ip ~lbn:1 in
      check_int "physically adjacent" (f0 + Ufs.Layout.fpb) (Option.get f1))

let test_bmap_len_capped_by_maxcontig () =
  with_file (fun fs ip ->
      write_blocks fs ip ~from:0 ~count:12;
      Ufs.Fs.tunefs fs ~maxcontig:4 ();
      let _, len = Ufs.Bmap.read fs ip ~lbn:0 in
      check_int "capped at maxcontig" 4 len)

let test_bmap_holes () =
  with_file (fun fs ip ->
      (* sparse file: block 0 and block 5 written, 1-4 are holes *)
      write_blocks fs ip ~from:0 ~count:1;
      write_blocks fs ip ~from:5 ~count:1;
      let h, hlen = Ufs.Bmap.read fs ip ~lbn:2 in
      check_bool "hole" true (h = None);
      check_int "hole run measured" 3 hlen;
      (* reading a hole yields zeros *)
      let buf = Bytes.make 100 'x' in
      let n = Ufs.Fs.read fs ip ~off:(2 * bsize) ~buf ~len:100 in
      check_int "read across hole" 100 n;
      check_bool "zero-filled" true (Bytes.for_all (fun c -> c = '\000') buf);
      check_bool "detector sees holes" true (Ufs.Getpage.has_holes ip))

let test_fragment_tail () =
  with_file (fun fs ip ->
      (* 2.5 KB file: 3 fragments, not a whole block *)
      let buf = Bytes.make 2560 't' in
      Ufs.Fs.write fs ip ~off:0 ~buf ~len:2560;
      check_int "3 fragments allocated" 3 ip.Ufs.Types.blocks;
      check_int "block_frags" 3 (Ufs.Bmap.block_frags ip ~lbn:0 ~size:2560);
      (* grow within the block: tail extends (or moves) to 5 frags *)
      Ufs.Fs.write fs ip ~off:2560 ~buf ~len:2560;
      check_int "5 fragments now" 5 ip.Ufs.Types.blocks;
      (* grow past the block: tail becomes a full block + new tail *)
      let big = Bytes.make bsize 'u' in
      Ufs.Fs.write fs ip ~off:5120 ~buf:big ~len:bsize;
      check_int "full block + 5-frag tail" (8 + 5) ip.Ufs.Types.blocks)

let test_fragment_tail_not_beyond_direct () =
  with_file (fun fs ip ->
      (* a file bigger than the direct range keeps NO fragged tail *)
      write_blocks fs ip ~from:0 ~count:13;
      let buf = Bytes.make 100 'z' in
      Ufs.Fs.write fs ip ~off:(13 * bsize) ~buf ~len:100;
      (* 14 blocks of data (last only 100 bytes) + 1 indirect block:
         everything full-block because size > ndaddr * bsize *)
      check_int "no fragged tail past direct range"
        ((14 + 1) * Ufs.Layout.fpb)
        ip.Ufs.Types.blocks)

let test_indirect_blocks () =
  with_file (fun fs ip ->
      (* one block in the single-indirect range *)
      let lbn = Ufs.Layout.ndaddr + 5 in
      let buf = Bytes.make bsize 'i' in
      Ufs.Fs.write fs ip ~off:(lbn * bsize) ~buf ~len:bsize;
      check_bool "single indirect allocated" true (ip.Ufs.Types.ib.(0) <> 0);
      let frag, _ = Ufs.Bmap.read fs ip ~lbn in
      check_bool "mapped" true (frag <> None);
      (* and one in the double-indirect range *)
      let lbn2 = Ufs.Layout.ndaddr + Ufs.Layout.nindir + 7 in
      Ufs.Fs.write fs ip ~off:(lbn2 * bsize) ~buf ~len:bsize;
      check_bool "double indirect allocated" true (ip.Ufs.Types.ib.(1) <> 0);
      let frag2, _ = Ufs.Bmap.read fs ip ~lbn:lbn2 in
      check_bool "mapped through two levels" true (frag2 <> None);
      (* data written through indirection reads back *)
      let r = Bytes.create bsize in
      let n = Ufs.Fs.read fs ip ~off:(lbn2 * bsize) ~buf:r ~len:bsize in
      check_int "read back" bsize n;
      check_bool "content" true (Bytes.equal r buf))

let test_bmap_run_stops_at_structure_boundary () =
  with_file (fun fs ip ->
      write_blocks fs ip ~from:0 ~count:16;
      Ufs.Fs.tunefs fs ~maxcontig:16 ();
      let _, len = Ufs.Bmap.read fs ip ~lbn:10 in
      (* blocks 10, 11 are direct; 12 lives in the indirect block: the
         run must stop at the boundary even if physically contiguous *)
      check_int "stops at direct/indirect boundary" 2 len)

let test_extent_map () =
  with_file (fun fs ip ->
      write_blocks fs ip ~from:0 ~count:8;
      let map = Ufs.Bmap.extent_map fs ip in
      check_int "one extent on fresh fs" 1 (List.length map);
      (match map with
      | [ (lbn, _, blocks) ] ->
          check_int "starts at 0" 0 lbn;
          check_int "covers file" 8 blocks
      | _ -> Alcotest.fail "unexpected map");
      (* total blocks across extents equals file blocks *)
      let total = List.fold_left (fun a (_, _, b) -> a + b) 0 map in
      check_int "covers all blocks" 8 total)

let test_bmap_cache () =
  let features = { Ufs.Types.features_clustered with Ufs.Types.bmap_cache = true } in
  with_file ~features (fun fs ip ->
      write_blocks fs ip ~from:0 ~count:8;
      let r1 = Ufs.Bmap.read fs ip ~lbn:0 in
      let hits0 = fs.Ufs.Types.stats.Ufs.Types.bmap_cache_hits in
      let r2 = Ufs.Bmap.read fs ip ~lbn:0 in
      check_bool "hit counted" true
        (fs.Ufs.Types.stats.Ufs.Types.bmap_cache_hits > hits0);
      check_bool "same answer" true (r1 = r2);
      (* a later block within the cached run also hits, with shorter len *)
      let f3, l3 = Ufs.Bmap.read fs ip ~lbn:3 in
      let f3', l3' =
        (* force a miss for comparison by invalidating *)
        ip.Ufs.Types.bmap_cache <- None;
        Ufs.Bmap.read fs ip ~lbn:3
      in
      check_bool "cached sub-run matches walk" true (f3 = f3' && l3 = l3'))

let test_ensure_is_stable () =
  with_file (fun fs ip ->
      let buf = Bytes.make bsize 'a' in
      Ufs.Fs.write fs ip ~off:0 ~buf ~len:bsize;
      let f1, _ = Ufs.Bmap.read fs ip ~lbn:0 in
      (* rewriting must not reallocate *)
      Ufs.Fs.write fs ip ~off:0 ~buf ~len:bsize;
      let f2, _ = Ufs.Bmap.read fs ip ~lbn:0 in
      check_bool "same physical block" true (f1 = f2))

(* property: after an arbitrary pattern of block writes, every written
   block maps somewhere, no two map to overlapping fragments, and
   extent_map covers exactly the mapped blocks *)
let prop_bmap_no_overlap =
  Helpers.qtest ~count:25 "no overlapping allocations, extents consistent"
    QCheck.(list_of_size (Gen.int_range 1 25) (int_bound 30))
    (fun lbns ->
      Helpers.in_machine (fun m ->
          let fs = m.Clusterfs.Machine.fs in
          let ip = Ufs.Fs.creat fs "/q" in
          let buf = Bytes.make bsize 'p' in
          List.iter
            (fun lbn -> Ufs.Fs.write fs ip ~off:(lbn * bsize) ~buf ~len:bsize)
            lbns;
          let written = List.sort_uniq compare lbns in
          let frags = Hashtbl.create 64 in
          let ok = ref true in
          List.iter
            (fun lbn ->
              match Ufs.Bmap.read fs ip ~lbn with
              | Some frag, _ ->
                  for i = 0 to Ufs.Layout.fpb - 1 do
                    if Hashtbl.mem frags (frag + i) then ok := false;
                    Hashtbl.replace frags (frag + i) ()
                  done
              | None, _ -> ok := false)
            written;
          let map = Ufs.Bmap.extent_map fs ip in
          let covered =
            List.concat_map
              (fun (lbn, _, blocks) -> List.init blocks (fun i -> lbn + i))
              map
          in
          Ufs.Iops.iput fs ip;
          !ok && List.sort compare covered = written))

let suites =
  [
    ( "ufs-bmap",
      [
        Alcotest.test_case "contiguous run" `Quick test_bmap_contiguous_run;
        Alcotest.test_case "len capped by maxcontig" `Quick
          test_bmap_len_capped_by_maxcontig;
        Alcotest.test_case "holes" `Quick test_bmap_holes;
        Alcotest.test_case "fragment tail" `Quick test_fragment_tail;
        Alcotest.test_case "no tail past direct range" `Quick
          test_fragment_tail_not_beyond_direct;
        Alcotest.test_case "indirect blocks" `Quick test_indirect_blocks;
        Alcotest.test_case "run stops at boundary" `Quick
          test_bmap_run_stops_at_structure_boundary;
        Alcotest.test_case "extent map" `Quick test_extent_map;
        Alcotest.test_case "bmap cache" `Quick test_bmap_cache;
        Alcotest.test_case "ensure stable" `Quick test_ensure_is_stable;
        prop_bmap_no_overlap;
      ] );
  ]
