(* Tests for the workload generators: IObench, the mmap CPU benchmark,
   MusBus, extent measurement, the ager — and their determinism. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let small_iobench =
  {
    Workload.Iobench.default_config with
    Workload.Iobench.file_mb = 2;
    random_ops = 64;
  }

let test_iobench_runs_all_phases () =
  Helpers.in_machine ~memory_mb:4 (fun m ->
      let rs = Workload.Iobench.run_all m.Clusterfs.Machine.fs small_iobench in
      check_int "five phases" 5 (List.length rs);
      List.iter
        (fun (r : Workload.Iobench.result) ->
          check_bool
            (Printf.sprintf "%s rate positive"
               (Workload.Iobench.kind_to_string r.Workload.Iobench.kind))
            true
            (r.Workload.Iobench.kb_per_sec > 0.);
          check_bool "time advanced" true (r.Workload.Iobench.elapsed > 0);
          check_bool "CPU charged" true (r.Workload.Iobench.sys_cpu > 0))
        rs;
      let rate k =
        (List.find (fun (r : Workload.Iobench.result) -> r.Workload.Iobench.kind = k) rs)
          .Workload.Iobench.kb_per_sec
      in
      check_bool "sequential read beats random read" true
        (rate Workload.Iobench.FSR > rate Workload.Iobench.FRR))

let test_iobench_bytes_accounted () =
  Helpers.in_machine ~memory_mb:4 (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let r = Workload.Iobench.run_phase fs small_iobench Workload.Iobench.FSW in
      check_int "FSW moves the whole file" (2 * 1024 * 1024)
        r.Workload.Iobench.bytes_moved;
      let r = Workload.Iobench.run_phase fs small_iobench Workload.Iobench.FRR in
      check_int "FRR moves ops * request" (64 * 8192)
        r.Workload.Iobench.bytes_moved)

let test_iobench_deterministic () =
  let run () =
    Helpers.in_machine ~memory_mb:4 (fun m ->
        List.map
          (fun (r : Workload.Iobench.result) -> r.Workload.Iobench.elapsed)
          (Workload.Iobench.run_all m.Clusterfs.Machine.fs small_iobench))
  in
  Alcotest.(check (list int))
    "bit-for-bit repeatable simulated times" (run ()) (run ())

let test_mmap_bench () =
  Helpers.in_machine ~memory_mb:4 (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      Workload.Iobench.prepare fs small_iobench;
      let r = Workload.Mmap_bench.run fs ~path:"/iobench" ~file_mb:2 in
      check_bool "CPU charged" true (r.Workload.Mmap_bench.sys_cpu > 0);
      check_bool "rate positive" true (r.Workload.Mmap_bench.kb_per_sec > 0.);
      check_int "file size" 2 r.Workload.Mmap_bench.file_mb)

let test_musbus () =
  Helpers.in_machine ~memory_mb:4 (fun m ->
      let cfg =
        { Workload.Musbus.default_config with Workload.Musbus.users = 3; iterations = 5 }
      in
      let r = Workload.Musbus.run m.Clusterfs.Machine.fs cfg in
      check_int "all work units" 15 r.Workload.Musbus.work_units;
      check_bool "throughput positive" true (r.Workload.Musbus.units_per_sec > 0.))

let test_extents_measurement () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let meas = Workload.Extents.write_and_measure fs ~path:"/e" ~mb:2 in
      check_int "wrote it all" (2 * 1024 * 1024) meas.Workload.Extents.file_bytes;
      check_bool "few extents on a fresh fs" true
        (meas.Workload.Extents.extents <= 3);
      check_bool "avg consistent with count" true
        (meas.Workload.Extents.avg_extent_kb
         *. float_of_int meas.Workload.Extents.extents
        >= 2040.);
      let again = Workload.Extents.measure_path fs "/e" in
      check_int "measure_path agrees" meas.Workload.Extents.extents
        again.Workload.Extents.extents)

let test_ager_fragments () =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let rng = Sim.Rng.create ~seed:5 in
      let opts =
        {
          Ufs.Ager.defaults with
          Ufs.Ager.target_util = 0.6;
          churn_rounds = 2;
          large_max_kb = 128;
        }
      in
      let live = Ufs.Ager.age fs ~rng ~opts () in
      check_bool "files survive" true (live > 10);
      (* utilisation in the right ballpark *)
      let s = Ufs.Fs.statfs fs in
      let used =
        s.Ufs.Fs.f_frags - ((s.Ufs.Fs.f_bfree * Ufs.Layout.fpb) + s.Ufs.Fs.f_ffree)
      in
      let util = float_of_int used /. float_of_int s.Ufs.Fs.f_frags in
      check_bool
        (Printf.sprintf "utilisation ~0.6 (got %.2f)" util)
        true
        (util > 0.5 && util < 0.75);
      (* a file squeezed into the churned space fragments more than on a
         fresh fs *)
      let meas = Workload.Extents.write_and_measure fs ~path:"/squeezed" ~mb:4 in
      check_bool
        (Printf.sprintf "aged fs fragments files (%d extents)"
           meas.Workload.Extents.extents)
        true
        (meas.Workload.Extents.extents > 3))

let suites =
  [
    ( "workload",
      [
        Alcotest.test_case "iobench all phases" `Quick
          test_iobench_runs_all_phases;
        Alcotest.test_case "iobench byte accounting" `Quick
          test_iobench_bytes_accounted;
        Alcotest.test_case "iobench deterministic" `Quick
          test_iobench_deterministic;
        Alcotest.test_case "mmap bench" `Quick test_mmap_bench;
        Alcotest.test_case "musbus" `Quick test_musbus;
        Alcotest.test_case "extents" `Quick test_extents_measurement;
        Alcotest.test_case "ager fragments" `Slow test_ager_fragments;
      ] );
  ]
