(* Tests for the VFS layer: errno, uio, vnode dispatch. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_errno () =
  Alcotest.(check string) "to_string" "ENOSPC" (Vfs.Errno.to_string Vfs.Errno.ENOSPC);
  check_bool "raise_err raises the right code" true
    (try Vfs.Errno.raise_err Vfs.Errno.ENOENT "x"
     with Vfs.Errno.Error (Vfs.Errno.ENOENT, "x") -> true)

let test_uio_read () =
  let buf = Bytes.make 10 '_' in
  let uio = Vfs.Uio.make ~rw:Vfs.Uio.Read ~off:100 ~len:10 ~buf ~buf_off:0 in
  check_bool "not done" false (Vfs.Uio.done_ uio);
  let src = Bytes.of_string "helloworld!" in
  Vfs.Uio.move uio ~src_or_dst:src ~data_off:0 ~n:5;
  check_int "off advanced" 105 uio.Vfs.Uio.off;
  check_int "resid shrunk" 5 uio.Vfs.Uio.resid;
  Vfs.Uio.move uio ~src_or_dst:src ~data_off:5 ~n:5;
  check_bool "done" true (Vfs.Uio.done_ uio);
  Alcotest.(check string) "data flowed user-ward" "helloworld"
    (Bytes.to_string buf)

let test_uio_write () =
  let buf = Bytes.of_string "abcdef" in
  let uio = Vfs.Uio.make ~rw:Vfs.Uio.Write ~off:0 ~len:6 ~buf ~buf_off:0 in
  let dst = Bytes.make 6 '_' in
  Vfs.Uio.move uio ~src_or_dst:dst ~data_off:0 ~n:6;
  Alcotest.(check string) "data flowed file-ward" "abcdef" (Bytes.to_string dst)

let test_uio_validation () =
  let buf = Bytes.create 4 in
  Alcotest.check_raises "window too large"
    (Invalid_argument "Uio.make: buffer window out of range") (fun () ->
      ignore (Vfs.Uio.make ~rw:Vfs.Uio.Read ~off:0 ~len:8 ~buf ~buf_off:0));
  let uio = Vfs.Uio.make ~rw:Vfs.Uio.Read ~off:0 ~len:4 ~buf ~buf_off:0 in
  Alcotest.check_raises "move too much"
    (Invalid_argument "Uio.move: bad length") (fun () ->
      Vfs.Uio.move uio ~src_or_dst:(Bytes.create 8) ~data_off:0 ~n:5)

let test_vnode_dispatch () =
  let calls = ref [] in
  let note s = calls := s :: !calls in
  let ops =
    {
      Vfs.Vnode.rdwr = (fun _ _ -> note "rdwr");
      getpage =
        (fun _ ~off:_ ~len:_ ~hint:_ ->
          note "getpage";
          []);
      putpage = (fun _ ~off:_ ~len:_ ~flags:_ -> note "putpage");
      fsync = (fun _ -> note "fsync");
      inactive = (fun _ -> note "inactive");
      getsize = (fun _ -> 4242);
      setsize = (fun _ _ -> note "setsize");
    }
  in
  let vn = Vfs.Vnode.make ~vid:1 ~kind:Vfs.Vnode.Reg ~ops in
  let uio =
    Vfs.Uio.make ~rw:Vfs.Uio.Read ~off:0 ~len:0 ~buf:Bytes.empty ~buf_off:0
  in
  Vfs.Vnode.rdwr vn uio;
  ignore (Vfs.Vnode.getpage vn ~off:0 ~len:0 ~hint:0);
  Vfs.Vnode.putpage vn ~off:0 ~len:0 ~flags:[ Vfs.Vnode.P_SYNC ];
  Vfs.Vnode.fsync vn;
  Vfs.Vnode.inactive vn;
  check_int "size via ops" 4242 (Vfs.Vnode.size vn);
  Alcotest.(check (list string))
    "dispatch order"
    [ "rdwr"; "getpage"; "putpage"; "fsync"; "inactive" ]
    (List.rev !calls)

let suites =
  [
    ( "vfs",
      [
        Alcotest.test_case "errno" `Quick test_errno;
        Alcotest.test_case "uio read" `Quick test_uio_read;
        Alcotest.test_case "uio write" `Quick test_uio_write;
        Alcotest.test_case "uio validation" `Quick test_uio_validation;
        Alcotest.test_case "vnode dispatch" `Quick test_vnode_dispatch;
      ] );
  ]
