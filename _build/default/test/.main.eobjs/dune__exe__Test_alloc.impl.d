test/test_alloc.ml: Alcotest Array Clusterfs Fun Helpers List Printf QCheck Ufs Vfs
