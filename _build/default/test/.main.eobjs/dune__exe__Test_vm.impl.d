test/test_vm.ml: Alcotest List Option Sim Vm
