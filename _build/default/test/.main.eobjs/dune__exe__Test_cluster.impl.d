test/test_cluster.ml: Alcotest Bytes Clusterfs Disk Fun Gen Helpers List Printf QCheck Sim Ufs Vm
