test/helpers.ml: Alcotest Bytes Char Clusterfs Disk Printf QCheck QCheck_alcotest Ufs
