test/test_concurrency.ml: Alcotest Bytes Clusterfs Helpers List Printf Sim Ufs Vm
