test/test_disk_props.ml: Bytes Char Disk Gen Helpers List Printf QCheck Sim
