test/test_fsck.ml: Alcotest Array Bytes Clusterfs Disk Helpers Printf Sim String Ufs
