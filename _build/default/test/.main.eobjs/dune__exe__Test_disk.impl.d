test/test_disk.ml: Alcotest Bytes Char Disk Helpers List Option Printf Sim
