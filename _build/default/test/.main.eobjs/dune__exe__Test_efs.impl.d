test/test_efs.ml: Alcotest Bytes Clusterfs Disk Efs Helpers Printf Sim Vfs Vm Workload
