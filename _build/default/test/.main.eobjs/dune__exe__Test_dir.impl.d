test/test_dir.ml: Alcotest Clusterfs Disk Filename Fun Helpers List Printf Sim String Sys Ufs Vfs
