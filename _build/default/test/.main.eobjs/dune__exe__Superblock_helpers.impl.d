test/superblock_helpers.ml: Ufs
