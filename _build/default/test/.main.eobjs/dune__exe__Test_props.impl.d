test/test_props.ml: Bytes Char Clusterfs Hashtbl Helpers List Option Printf QCheck QCheck_alcotest String Ufs Vfs
