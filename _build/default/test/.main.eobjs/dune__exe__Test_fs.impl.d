test/test_fs.ml: Alcotest Bytes Clusterfs Disk Helpers Option Printf Sim String Ufs Vfs Vm
