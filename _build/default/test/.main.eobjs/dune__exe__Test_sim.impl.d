test/test_sim.ml: Alcotest Array Fun Helpers List Printf QCheck Sim String
