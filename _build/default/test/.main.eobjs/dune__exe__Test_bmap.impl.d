test/test_bmap.ml: Alcotest Array Bytes Clusterfs Fun Gen Hashtbl Helpers List Option QCheck Ufs
