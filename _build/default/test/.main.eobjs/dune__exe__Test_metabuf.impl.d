test/test_metabuf.ml: Alcotest Bytes Disk Helpers Sim Ufs
