test/test_vfs.ml: Alcotest Bytes List Vfs
