test/test_ufs_format.ml: Alcotest Array Bytes List Superblock_helpers Ufs Vfs
