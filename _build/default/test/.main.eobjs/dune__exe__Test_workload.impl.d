test/test_workload.ml: Alcotest Clusterfs Helpers List Printf Sim Ufs Workload
