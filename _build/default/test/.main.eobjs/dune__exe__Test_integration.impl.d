test/test_integration.ml: Alcotest Bytes Clusterfs Disk Helpers List Printf Sim Ufs Workload
