test/main.mli:
