test/test_border.ml: Alcotest Clusterfs Disk Helpers List Printf Sim Ufs Vfs Workload
