test/test_crash.ml: Alcotest Bytes Clusterfs Disk Helpers List Printf Sim String Ufs
