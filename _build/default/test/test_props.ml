(* Model-based property testing: a random sequence of file system
   operations is applied both to the simulated UFS and to a trivially
   correct in-memory reference model; every read must agree, the final
   directory tree must agree, and fsck must pass afterwards.

   This is the strongest correctness statement in the suite: whatever
   the clustering machinery, free-behind, write limits, reallocation
   and pageout do, the file system must remain indistinguishable from
   a map of strings. *)

(* ---------- the reference model ---------- *)

module Model = struct
  type t = {
    files : (string, Bytes.t) Hashtbl.t;
    mutable dirs : string list; (* besides "/" *)
  }

  let create () = { files = Hashtbl.create 32; dirs = [] }

  let write t path ~off ~data =
    let old = try Hashtbl.find t.files path with Not_found -> Bytes.empty in
    let newlen = max (Bytes.length old) (off + String.length data) in
    let b = Bytes.make newlen '\000' in
    Bytes.blit old 0 b 0 (Bytes.length old);
    Bytes.blit_string data 0 b off (String.length data);
    Hashtbl.replace t.files path b

  let read t path ~off ~len =
    match Hashtbl.find_opt t.files path with
    | None -> None
    | Some b ->
        if off >= Bytes.length b then Some ""
        else
          let n = max 0 (min len (Bytes.length b - off)) in
          Some (Bytes.sub_string b off n)

  let size t path =
    Option.map Bytes.length (Hashtbl.find_opt t.files path)

  let unlink t path = Hashtbl.remove t.files path

  let rename t src dst =
    match Hashtbl.find_opt t.files src with
    | Some b ->
        Hashtbl.remove t.files src;
        Hashtbl.replace t.files dst b
    | None -> ()
end

(* ---------- operation generation ---------- *)

type op =
  | Write of { file : int; off_kb : int; len : int; fill : char }
  | Read of { file : int; off_kb : int; len : int }
  | Truncate of { file : int }  (* creat over an existing name *)
  | Unlink of { file : int }
  | Rename of { file : int; target : int }
  | Fsync of { file : int }
  | SyncAll

let nfiles = 6

let gen_op =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map4
            (fun file off_kb len fill ->
              Write { file; off_kb; len; fill = Char.chr (97 + fill) })
            (int_bound (nfiles - 1))
            (int_bound 100) (int_range 1 30000) (int_bound 25) );
        ( 4,
          map3
            (fun file off_kb len -> Read { file; off_kb; len })
            (int_bound (nfiles - 1))
            (int_bound 110) (int_range 1 30000) );
        (1, map (fun file -> Truncate { file }) (int_bound (nfiles - 1)));
        (1, map (fun file -> Unlink { file }) (int_bound (nfiles - 1)));
        ( 1,
          map2
            (fun file target -> Rename { file; target })
            (int_bound (nfiles - 1))
            (int_bound (nfiles - 1)) );
        (1, map (fun file -> Fsync { file }) (int_bound (nfiles - 1)));
        (1, return SyncAll);
      ])

let arb_ops = QCheck.make ~print:(fun l -> Printf.sprintf "<%d ops>" (List.length l))
    QCheck.Gen.(list_size (int_range 5 60) gen_op)

(* ---------- execution against both systems ---------- *)

let path_of file = Printf.sprintf "/model/f%d" file

let apply_op fs (model : Model.t) op =
  match op with
  | Write { file; off_kb; len; fill } ->
      let path = path_of file in
      let off = off_kb * 1024 in
      let data = String.make len fill in
      let ip =
        match Ufs.Fs.namei fs path with
        | ip -> ip
        | exception Vfs.Errno.Error (Vfs.Errno.ENOENT, _) -> Ufs.Fs.creat fs path
      in
      Ufs.Fs.write fs ip ~off ~buf:(Bytes.of_string data) ~len;
      Ufs.Iops.iput fs ip;
      Model.write model path ~off ~data;
      true
  | Read { file; off_kb; len } -> (
      let path = path_of file in
      let off = off_kb * 1024 in
      match Model.read model path ~off ~len with
      | None -> (
          match Ufs.Fs.namei fs path with
          | ip ->
              Ufs.Iops.iput fs ip;
              false (* exists in fs but not in model *)
          | exception Vfs.Errno.Error (Vfs.Errno.ENOENT, _) -> true)
      | Some expected -> (
          match Ufs.Fs.namei fs path with
          | exception Vfs.Errno.Error (Vfs.Errno.ENOENT, _) -> false
          | ip ->
              let buf = Bytes.create len in
              let n = Ufs.Fs.read fs ip ~off ~buf ~len in
              Ufs.Iops.iput fs ip;
              n = String.length expected
              && Bytes.sub_string buf 0 n = expected))
  | Truncate { file } ->
      let path = path_of file in
      if Hashtbl.mem model.Model.files path then begin
        let ip = Ufs.Fs.creat fs path in
        Ufs.Iops.iput fs ip;
        Model.write model path ~off:0 ~data:"";
        Hashtbl.replace model.Model.files path Bytes.empty
      end;
      true
  | Unlink { file } -> (
      let path = path_of file in
      let in_model = Hashtbl.mem model.Model.files path in
      match Ufs.Fs.unlink fs path with
      | () ->
          Model.unlink model path;
          in_model
      | exception Vfs.Errno.Error (Vfs.Errno.ENOENT, _) -> not in_model)
  | Rename { file; target } ->
      let src = path_of file and dst = path_of target in
      if file <> target && Hashtbl.mem model.Model.files src then begin
        Ufs.Fs.rename fs src dst;
        Model.rename model src dst
      end;
      true
  | Fsync { file } -> (
      let path = path_of file in
      match Ufs.Fs.namei fs path with
      | ip ->
          Ufs.Fs.fsync fs ip;
          Ufs.Iops.iput fs ip;
          true
      | exception Vfs.Errno.Error (Vfs.Errno.ENOENT, _) -> true)
  | SyncAll ->
      Ufs.Fs.sync fs;
      true

let final_state_agrees fs (model : Model.t) =
  (* every model file exists with the right size and content *)
  Hashtbl.fold
    (fun path data acc ->
      acc
      &&
      match Ufs.Fs.namei fs path with
      | exception Vfs.Errno.Error (Vfs.Errno.ENOENT, _) -> false
      | ip ->
          let ok =
            ip.Ufs.Types.size = Bytes.length data
            &&
            let len = Bytes.length data in
            len = 0
            ||
            let buf = Bytes.create len in
            let n = Ufs.Fs.read fs ip ~off:0 ~buf ~len in
            n = len && Bytes.equal buf data
          in
          Ufs.Iops.iput fs ip;
          ok)
    model.Model.files true

let run_scenario ops =
  let m = Helpers.machine ~memory_mb:2 () in
  let ok =
    Clusterfs.Machine.run m (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        Ufs.Fs.mkdir fs "/model";
        let model = Model.create () in
        let all_ops_ok = List.for_all (apply_op fs model) ops in
        let final_ok = all_ops_ok && final_state_agrees fs model in
        Ufs.Fs.unmount fs;
        final_ok)
  in
  ok && Ufs.Fsck.ok (Ufs.Fsck.check m.Clusterfs.Machine.dev)

let prop_model =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"UFS behaves like a map of strings"
       arb_ops run_scenario)

(* the same property under the OLD (unclustered) configuration — the
   correctness of the fallback paths matters too *)
let prop_model_sunos41 =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20 ~name:"old UFS behaves like a map of strings"
       arb_ops
       (fun ops ->
         let m =
           Helpers.machine ~memory_mb:2 ~features:Ufs.Types.features_sunos41 ()
         in
         let ok =
           Clusterfs.Machine.run m (fun m ->
               let fs = m.Clusterfs.Machine.fs in
               Ufs.Fs.mkdir fs "/model";
               let model = Model.create () in
               let all = List.for_all (apply_op fs model) ops in
               let final = all && final_state_agrees fs model in
               Ufs.Fs.unmount fs;
               final)
         in
         ok && Ufs.Fsck.ok (Ufs.Fsck.check m.Clusterfs.Machine.dev)))

(* and with every further-work feature switched on at once *)
let prop_model_all_features =
  let features =
    {
      Ufs.Types.features_clustered with
      Ufs.Types.bmap_cache = true;
      small_in_inode = true;
      getpage_hint = true;
      skip_bmap_if_no_holes = true;
    }
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:20
       ~name:"UFS with all further-work features behaves like a map" arb_ops
       (fun ops ->
         let m = Helpers.machine ~memory_mb:2 ~features () in
         let ok =
           Clusterfs.Machine.run m (fun m ->
               let fs = m.Clusterfs.Machine.fs in
               Ufs.Fs.mkdir fs "/model";
               let model = Model.create () in
               let all = List.for_all (apply_op fs model) ops in
               let final = all && final_state_agrees fs model in
               Ufs.Fs.unmount fs;
               final)
         in
         ok && Ufs.Fsck.ok (Ufs.Fsck.check m.Clusterfs.Machine.dev)))

let suites =
  [ ("model", [ prop_model; prop_model_sunos41; prop_model_all_features ]) ]
