(* A small consistent superblock for format-level tests (no disk). *)
let make () =
  Ufs.Superblock.create ~nfrags:(4 * 4096) ~ncg:4 ~fpg:4096 ~ipg:512 ()
