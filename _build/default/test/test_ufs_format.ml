(* Tests for the UFS on-disk format layer: codec, layout arithmetic,
   superblock, cylinder groups, dinodes. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Codec ---------- *)

let test_codec_roundtrips () =
  let b = Bytes.make 64 '\000' in
  Ufs.Codec.put_u8 b 0 0xAB;
  check_int "u8" 0xAB (Ufs.Codec.get_u8 b 0);
  Ufs.Codec.put_u16 b 2 0xBEEF;
  check_int "u16" 0xBEEF (Ufs.Codec.get_u16 b 2);
  Ufs.Codec.put_u32 b 4 0xFFFFFFFF;
  check_int "u32 max" 0xFFFFFFFF (Ufs.Codec.get_u32 b 4);
  Ufs.Codec.put_u32 b 4 0;
  check_int "u32 zero" 0 (Ufs.Codec.get_u32 b 4);
  Ufs.Codec.put_u64 b 8 ((1 lsl 40) + 17);
  check_int "u64" ((1 lsl 40) + 17) (Ufs.Codec.get_u64 b 8);
  Ufs.Codec.put_string b 16 10 "hello";
  Alcotest.(check string) "string trims NULs" "hello" (Ufs.Codec.get_string b 16 10)

let test_codec_errors () =
  let b = Bytes.make 8 '\000' in
  Alcotest.check_raises "u32 overflow"
    (Invalid_argument "Codec.put_u32: out of range") (fun () ->
      Ufs.Codec.put_u32 b 0 (1 lsl 33));
  Alcotest.check_raises "string too long"
    (Invalid_argument "Codec.put_string: too long") (fun () ->
      Ufs.Codec.put_string b 0 3 "abcd")

(* ---------- Layout ---------- *)

let test_layout_constants () =
  check_int "fpb" 8 Ufs.Layout.fpb;
  check_int "inodes per block" 64 Ufs.Layout.inodes_per_block;
  check_int "nindir" 2048 Ufs.Layout.nindir;
  check_int "frag->byte" 8192 (Ufs.Layout.frag_to_byte 8);
  check_int "frag->sector" 16 (Ufs.Layout.frag_to_sector 8);
  check_int "lbn of 8191" 0 (Ufs.Layout.lbn_of_off 8191);
  check_int "lbn of 8192" 1 (Ufs.Layout.lbn_of_off 8192);
  check_int "blocks of 0" 0 (Ufs.Layout.blocks_of_size 0);
  check_int "blocks of 1" 1 (Ufs.Layout.blocks_of_size 1);
  check_int "frags of 1025" 2 (Ufs.Layout.frags_of_bytes 1025)

let test_layout_classify () =
  check_bool "direct 0" true (Ufs.Layout.classify 0 = Ufs.Layout.Direct 0);
  check_bool "direct 11" true (Ufs.Layout.classify 11 = Ufs.Layout.Direct 11);
  check_bool "single 0" true (Ufs.Layout.classify 12 = Ufs.Layout.Single 0);
  check_bool "single last" true
    (Ufs.Layout.classify (12 + 2047) = Ufs.Layout.Single 2047);
  check_bool "double start" true
    (Ufs.Layout.classify (12 + 2048) = Ufs.Layout.Double (0, 0));
  check_bool "double (1,1)" true
    (Ufs.Layout.classify (12 + 2048 + 2049) = Ufs.Layout.Double (1, 1));
  check_bool "EFBIG past max" true
    (try
       ignore (Ufs.Layout.classify Ufs.Layout.max_lbn);
       false
     with Vfs.Errno.Error (Vfs.Errno.EFBIG, _) -> true)

(* ---------- Superblock ---------- *)

let mk_sb () =
  Superblock_helpers.make ()

(* ---------- Cg / Dinode below use a real superblock ---------- *)

let test_superblock_roundtrip () =
  let sb = mk_sb () in
  sb.Ufs.Superblock.nbfree <- 123;
  sb.Ufs.Superblock.nffree <- 45;
  sb.Ufs.Superblock.nifree <- 678;
  sb.Ufs.Superblock.clean <- false;
  let sb' = Ufs.Superblock.decode (Ufs.Superblock.encode sb) in
  check_int "nfrags" sb.Ufs.Superblock.nfrags sb'.Ufs.Superblock.nfrags;
  check_int "nbfree" 123 sb'.Ufs.Superblock.nbfree;
  check_int "nffree" 45 sb'.Ufs.Superblock.nffree;
  check_int "nifree" 678 sb'.Ufs.Superblock.nifree;
  check_bool "clean" false sb'.Ufs.Superblock.clean;
  check_int "maxcontig" sb.Ufs.Superblock.maxcontig sb'.Ufs.Superblock.maxcontig

let test_superblock_bad_magic () =
  let b = Bytes.make Ufs.Layout.bsize '\000' in
  check_bool "bad magic raises EINVAL" true
    (try
       ignore (Ufs.Superblock.decode b);
       false
     with Vfs.Errno.Error (Vfs.Errno.EINVAL, _) -> true)

let test_superblock_derived () =
  let sb = mk_sb () in
  check_bool "data frags positive and less than total" true
    (Ufs.Superblock.data_frags sb > 0
    && Ufs.Superblock.data_frags sb < sb.Ufs.Superblock.nfrags);
  check_int "minfree is 10%" (Ufs.Superblock.data_frags sb / 10)
    (Ufs.Superblock.minfree_frags sb);
  check_int "cg_of_frag" 1 (Ufs.Superblock.cg_of_frag sb 4096);
  check_int "cg_of_inum" 1 (Ufs.Superblock.cg_of_inum sb 512)

(* ---------- Cg ---------- *)

let test_cg_bitmaps () =
  let sb = mk_sb () in
  let cg = Ufs.Cg.create_empty sb 1 in
  let f0 = Ufs.Cg.data_begin sb 1 in
  check_bool "starts allocated" false (Ufs.Cg.frag_free cg sb f0);
  Ufs.Cg.set_frag cg sb f0 ~free:true;
  check_bool "freed" true (Ufs.Cg.frag_free cg sb f0);
  check_bool "dirty after mutation" true cg.Ufs.Cg.dirty;
  (* whole-block test needs alignment *)
  let base = f0 + (Ufs.Layout.fpb - (f0 mod Ufs.Layout.fpb)) mod Ufs.Layout.fpb in
  for i = 0 to Ufs.Layout.fpb - 1 do
    Ufs.Cg.set_frag cg sb (base + i) ~free:true
  done;
  check_bool "block free when all bits set" true (Ufs.Cg.block_free cg sb base);
  Ufs.Cg.set_frag cg sb (base + 3) ~free:false;
  check_bool "block not free with one bit clear" false
    (Ufs.Cg.block_free cg sb base);
  Alcotest.check_raises "unaligned block test"
    (Invalid_argument "Cg.block_free: not block-aligned") (fun () ->
      ignore (Ufs.Cg.block_free cg sb (base + 1)))

let test_cg_out_of_group () =
  let sb = mk_sb () in
  let cg = Ufs.Cg.create_empty sb 1 in
  check_bool "frag outside group rejected" true
    (try
       ignore (Ufs.Cg.frag_free cg sb 0);
       false
     with Invalid_argument _ -> true)

let test_cg_roundtrip_and_recount () =
  let sb = mk_sb () in
  let cg = Ufs.Cg.create_empty sb 0 in
  (* free a block-aligned block and two loose frags, three inodes *)
  let d = Ufs.Cg.data_begin sb 0 in
  let base = d + ((Ufs.Layout.fpb - (d mod Ufs.Layout.fpb)) mod Ufs.Layout.fpb) in
  for i = 0 to Ufs.Layout.fpb - 1 do
    Ufs.Cg.set_frag cg sb (base + i) ~free:true
  done;
  Ufs.Cg.set_frag cg sb (base + Ufs.Layout.fpb) ~free:true;
  Ufs.Cg.set_frag cg sb (base + Ufs.Layout.fpb + 1) ~free:true;
  List.iter (fun i -> Ufs.Cg.set_inode cg i ~free:true) [ 3; 4; 5 ];
  let nb, nf, ni = Ufs.Cg.recount cg sb in
  check_int "one free block" 1 nb;
  check_int "two loose frags" 2 nf;
  check_int "three free inodes" 3 ni;
  cg.Ufs.Cg.nbfree <- nb;
  cg.Ufs.Cg.nffree <- nf;
  cg.Ufs.Cg.nifree <- ni;
  cg.Ufs.Cg.rotor <- 99;
  let cg' = Ufs.Cg.decode (Ufs.Cg.encode cg sb) sb 0 in
  check_int "rotor" 99 cg'.Ufs.Cg.rotor;
  let nb', nf', ni' = Ufs.Cg.recount cg' sb in
  check_bool "bitmaps identical after roundtrip" true
    ((nb, nf, ni) = (nb', nf', ni'));
  check_bool "decoded not dirty" false cg'.Ufs.Cg.dirty

let test_cg_dinode_loc () =
  let sb = mk_sb () in
  (* inode 0 of group 0 is at the start of cg0's inode area *)
  let frag, byte = Ufs.Cg.dinode_loc sb 0 in
  check_int "first inode frag" (Ufs.Cg.inode_area_frag sb 0) frag;
  check_int "first inode offset" 0 byte;
  (* 8 dinodes of 128B per 1KB fragment *)
  let frag8, byte8 = Ufs.Cg.dinode_loc sb 8 in
  check_int "inode 8 next frag" (Ufs.Cg.inode_area_frag sb 0 + 1) frag8;
  check_int "inode 8 offset" 0 byte8;
  (* group 1's inodes live in group 1 *)
  let frag_g1, _ = Ufs.Cg.dinode_loc sb sb.Ufs.Superblock.ipg in
  check_int "group 1 inode area" (Ufs.Cg.inode_area_frag sb 1) frag_g1

(* ---------- Dinode ---------- *)

let test_dinode_roundtrip () =
  let d = Ufs.Dinode.empty () in
  d.Ufs.Dinode.kind <- Ufs.Dinode.Reg;
  d.Ufs.Dinode.nlink <- 3;
  d.Ufs.Dinode.size <- 123456789;
  d.Ufs.Dinode.blocks <- 424242;
  d.Ufs.Dinode.gen <- 7;
  Array.iteri (fun i _ -> d.Ufs.Dinode.db.(i) <- 1000 + i) d.Ufs.Dinode.db;
  d.Ufs.Dinode.ib.(0) <- 5555;
  d.Ufs.Dinode.ib.(1) <- 6666;
  let b = Bytes.make Ufs.Layout.bsize '\000' in
  Ufs.Dinode.encode d b 256;
  let d' = Ufs.Dinode.decode b 256 in
  check_bool "kind" true (d'.Ufs.Dinode.kind = Ufs.Dinode.Reg);
  check_int "nlink" 3 d'.Ufs.Dinode.nlink;
  check_int "size" 123456789 d'.Ufs.Dinode.size;
  check_int "blocks" 424242 d'.Ufs.Dinode.blocks;
  check_int "gen" 7 d'.Ufs.Dinode.gen;
  check_int "db 11" 1011 d'.Ufs.Dinode.db.(11);
  check_int "ib 1" 6666 d'.Ufs.Dinode.ib.(1)

let test_dinode_symlink_immediate () =
  let d = Ufs.Dinode.empty () in
  d.Ufs.Dinode.kind <- Ufs.Dinode.Lnk;
  d.Ufs.Dinode.immediate <- "/a/b/target";
  let b = Bytes.make Ufs.Layout.bsize '\000' in
  Ufs.Dinode.encode d b 0;
  let d' = Ufs.Dinode.decode b 0 in
  Alcotest.(check string) "immediate" "/a/b/target" d'.Ufs.Dinode.immediate

let test_dinode_kind_checks () =
  check_bool "bad kind code raises" true
    (let b = Bytes.make Ufs.Layout.dinode_bytes '\000' in
     Ufs.Codec.put_u16 b 0 9;
     try
       ignore (Ufs.Dinode.decode b 0);
       false
     with Vfs.Errno.Error (Vfs.Errno.EINVAL, _) -> true);
  Alcotest.check_raises "free inode has no vnode kind"
    (Invalid_argument "Dinode.kind_to_vnode: free inode") (fun () ->
      ignore (Ufs.Dinode.kind_to_vnode Ufs.Dinode.Free))

let suites =
  [
    ( "ufs-format",
      [
        Alcotest.test_case "codec roundtrips" `Quick test_codec_roundtrips;
        Alcotest.test_case "codec errors" `Quick test_codec_errors;
        Alcotest.test_case "layout constants" `Quick test_layout_constants;
        Alcotest.test_case "layout classify" `Quick test_layout_classify;
        Alcotest.test_case "superblock roundtrip" `Quick
          test_superblock_roundtrip;
        Alcotest.test_case "superblock bad magic" `Quick
          test_superblock_bad_magic;
        Alcotest.test_case "superblock derived" `Quick test_superblock_derived;
        Alcotest.test_case "cg bitmaps" `Quick test_cg_bitmaps;
        Alcotest.test_case "cg group bounds" `Quick test_cg_out_of_group;
        Alcotest.test_case "cg roundtrip+recount" `Quick
          test_cg_roundtrip_and_recount;
        Alcotest.test_case "cg dinode location" `Quick test_cg_dinode_loc;
        Alcotest.test_case "dinode roundtrip" `Quick test_dinode_roundtrip;
        Alcotest.test_case "dinode symlink" `Quick test_dinode_symlink_immediate;
        Alcotest.test_case "dinode kind checks" `Quick test_dinode_kind_checks;
      ] );
  ]
