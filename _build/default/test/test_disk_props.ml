(* qcheck properties over the disk layer: the queue never loses or
   duplicates requests, barriers hold under random traffic, geometry
   decoding is a bijection, and service timing invariants hold. *)

let mk_req ?(ordered = false) sector =
  Disk.Request.make ~ordered ~kind:Disk.Request.Write ~sector ~count:1
    ~buf:(Bytes.create 512) ~buf_off:0 ()

(* drive a queue with interleaved enqueues and services; return the
   requests in service order and in enqueue order *)
let run_queue policy ops =
  let q = Disk.Disksort.create policy in
  let served = ref [] and enqueued = ref [] in
  let head = ref 0 in
  let serve () =
    match Disk.Disksort.next q ~head_sector:!head with
    | Some r ->
        served := r :: !served;
        head := Disk.Request.end_sector r
    | None -> ()
  in
  List.iter
    (fun (enqueue, sector, ordered) ->
      if enqueue then begin
        let r = mk_req ~ordered sector in
        enqueued := r :: !enqueued;
        Disk.Disksort.enqueue q r
      end
      else serve ())
    ops;
  let rec drain () =
    if not (Disk.Disksort.is_empty q) then begin
      serve ();
      drain ()
    end
  in
  drain ();
  (List.rev !served, List.rev !enqueued)

let gen_ops =
  QCheck.(
    list_of_size
      (Gen.int_range 1 60)
      (triple bool (int_bound 5000) (QCheck.map (fun n -> n = 0) (int_bound 4))))

let prop_no_loss policy =
  Helpers.qtest ~count:150
    (Printf.sprintf "%s: every request served exactly once"
       (match policy with Disk.Disksort.Fifo -> "fifo" | Elevator -> "elevator"))
    gen_ops
    (fun ops ->
      let served, enqueued = run_queue policy ops in
      let ids = List.map (fun (r : Disk.Request.t) -> r.Disk.Request.id) served in
      List.length served = List.length enqueued
      && List.length (List.sort_uniq compare ids) = List.length ids)

let prop_barrier_holds =
  Helpers.qtest ~count:150 "elevator: nothing crosses a B_ORDER barrier"
    gen_ops
    (fun ops ->
      let served, enq = run_queue Disk.Disksort.Elevator ops in
      (* for each ordered request O: everything enqueued before O must be
         served before O, everything after must be served after *)
      let pos_served (r : Disk.Request.t) =
        let rec idx i = function
          | [] -> -1
          | (x : Disk.Request.t) :: rest ->
              if x.Disk.Request.id = r.Disk.Request.id then i else idx (i + 1) rest
        in
        idx 0 served
      in
      let rec check_before seen = function
        | [] -> true
        | (r : Disk.Request.t) :: rest ->
            if r.Disk.Request.ordered then
              let po = pos_served r in
              List.for_all (fun s -> pos_served s < po) seen
              && List.for_all (fun s -> pos_served s > po) rest
              && check_before (seen @ [ r ]) rest
            else check_before (seen @ [ r ]) rest
      in
      (* note: serves interleave with enqueues, so "before O" is only
         guaranteed for requests present when O was enqueued — which is
         exactly the [seen] prefix *)
      check_before [] enq)

let prop_geom_bijective =
  Helpers.qtest ~count:300 "geometry: sector -> CHS -> sector"
    QCheck.(int_bound (Disk.Geom.zoned_example.Disk.Geom.total_sectors - 1))
    (fun s ->
      let g = Disk.Geom.zoned_example in
      let chs = Disk.Geom.to_chs g s in
      (* re-linearise: walk zones to find the cylinder's first sector *)
      let rec zone_base cyl_base sec_base = function
        | [] -> assert false
        | (z : Disk.Geom.zone) :: rest ->
            if chs.Disk.Geom.cyl < cyl_base + z.Disk.Geom.cyls then
              sec_base
              + ((chs.Disk.Geom.cyl - cyl_base) * g.Disk.Geom.nheads * z.Disk.Geom.spt)
            else
              zone_base (cyl_base + z.Disk.Geom.cyls)
                (sec_base + (z.Disk.Geom.cyls * g.Disk.Geom.nheads * z.Disk.Geom.spt))
                rest
      in
      let back =
        zone_base 0 0 g.Disk.Geom.zones
        + (chs.Disk.Geom.head * chs.Disk.Geom.spt)
        + chs.Disk.Geom.sector
      in
      back = s)

let prop_device_timing_sane =
  Helpers.qtest ~count:20 "device: service time bounded and data correct"
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_bound 30_000) (int_range 1 32)))
    (fun reqs ->
      let e = Sim.Engine.create () in
      let d = Disk.Device.create e Helpers.small_disk in
      let ok = ref true in
      Sim.Engine.spawn e (fun () ->
          List.iter
            (fun (sector, count) ->
              let w = Bytes.init (count * 512) (fun i -> Char.chr ((sector + i) land 0xff)) in
              let t0 = Sim.Engine.now e in
              Disk.Device.write_sync d ~sector ~count ~buf:w ~buf_off:0;
              let dt = Sim.Engine.now e - t0 in
              (* a single small request can never take longer than a
                 max seek + a few rotations *)
              if dt <= 0 || dt > Sim.Time.ms 120 then ok := false;
              let r = Bytes.create (count * 512) in
              Disk.Device.read_sync d ~sector ~count ~buf:r ~buf_off:0;
              if not (Bytes.equal w r) then ok := false)
            reqs);
      Sim.Engine.run e;
      !ok)

let suites =
  [
    ( "disk-props",
      [
        prop_no_loss Disk.Disksort.Fifo;
        prop_no_loss Disk.Disksort.Elevator;
        prop_barrier_holds;
        prop_geom_bijective;
        prop_device_timing_sane;
      ] );
  ]
