(* Tests for the disk substrate: store, geometry, seek model, requests,
   disksort, and the device's timing/data behaviour. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Store ---------- *)

let test_store_roundtrip () =
  let st = Disk.Store.create ~size:(1 lsl 20) in
  check_int "size" (1 lsl 20) (Disk.Store.size st);
  let src = Bytes.init 1000 (fun i -> Char.chr (i land 0xff)) in
  (* straddle a chunk boundary on purpose *)
  Disk.Store.write st ~off:8000 ~len:1000 src 0;
  let dst = Bytes.create 1000 in
  Disk.Store.read st ~off:8000 ~len:1000 dst 0;
  check_bool "roundtrip" true (Bytes.equal src dst)

let test_store_zero_default () =
  let st = Disk.Store.create ~size:4096 in
  let b = Bytes.make 16 'x' in
  Disk.Store.read st ~off:100 ~len:16 b 0;
  check_bool "reads zeros" true (Bytes.for_all (fun c -> c = '\000') b)

let test_store_bounds () =
  let st = Disk.Store.create ~size:4096 in
  let b = Bytes.create 16 in
  Alcotest.check_raises "past end"
    (Invalid_argument "Store: access [4090,4106) outside [0,4096)") (fun () ->
      Disk.Store.read st ~off:4090 ~len:16 b 0)

let test_store_sparse_and_copy () =
  let st = Disk.Store.create ~size:(1 lsl 24) in
  check_int "no chunks yet" 0 (Disk.Store.chunks_allocated st);
  let b = Bytes.make 1 'z' in
  Disk.Store.write st ~off:1_000_000 ~len:1 b 0;
  check_int "one chunk" 1 (Disk.Store.chunks_allocated st);
  let st2 = Disk.Store.create ~size:(1 lsl 24) in
  Disk.Store.copy_into st st2;
  let r = Bytes.create 1 in
  Disk.Store.read st2 ~off:1_000_000 ~len:1 r 0;
  check_bool "copied" true (Bytes.get r 0 = 'z');
  (* the copy is deep *)
  Disk.Store.write st ~off:1_000_000 ~len:1 (Bytes.make 1 'q') 0;
  Disk.Store.read st2 ~off:1_000_000 ~len:1 r 0;
  check_bool "deep copy" true (Bytes.get r 0 = 'z')

(* ---------- Geom ---------- *)

let test_geom_chs () =
  let g = Disk.Geom.sun0400 in
  let c0 = Disk.Geom.to_chs g 0 in
  check_int "sector 0 cyl" 0 c0.Disk.Geom.cyl;
  check_int "sector 0 head" 0 c0.Disk.Geom.head;
  let spt = c0.Disk.Geom.spt in
  let c1 = Disk.Geom.to_chs g spt in
  check_int "next track head" 1 c1.Disk.Geom.head;
  let per_cyl = g.Disk.Geom.nheads * spt in
  let c2 = Disk.Geom.to_chs g per_cyl in
  check_int "next cylinder" 1 c2.Disk.Geom.cyl;
  check_int "head wraps" 0 c2.Disk.Geom.head;
  Alcotest.check_raises "out of range"
    (Invalid_argument
       (Printf.sprintf "Geom.to_chs: sector %d out of range"
          g.Disk.Geom.total_sectors)) (fun () ->
      ignore (Disk.Geom.to_chs g g.Disk.Geom.total_sectors))

let test_geom_zoned () =
  let g = Disk.Geom.zoned_example in
  (* first zone has 72 sectors/track, last 40 *)
  let first = Disk.Geom.to_chs g 0 in
  check_int "outer zone spt" 72 first.Disk.Geom.spt;
  let last = Disk.Geom.to_chs g (g.Disk.Geom.total_sectors - 1) in
  check_int "inner zone spt" 40 last.Disk.Geom.spt;
  check_int "last cylinder" (g.Disk.Geom.ncyls - 1) last.Disk.Geom.cyl

let test_geom_angles () =
  let g = Disk.Geom.sun0400 in
  for s = 0 to 200 do
    let a = Disk.Geom.sector_angle g (Disk.Geom.to_chs g (s * 37)) in
    check_bool "angle in [0,1)" true (a >= 0. && a < 1.)
  done;
  let rot = Disk.Geom.rotation_time g in
  Alcotest.(check (float 1e-9)) "angle wraps with rotation"
    (Disk.Geom.angle_at g 100)
    (Disk.Geom.angle_at g (100 + rot))

let test_geom_capacity () =
  check_bool "~400MB drive" true
    (Disk.Geom.capacity_bytes Disk.Geom.sun0400 > 400_000_000
    && Disk.Geom.capacity_bytes Disk.Geom.sun0400 < 440_000_000)

(* ---------- Seek ---------- *)

let test_seek_model () =
  let s = Disk.Seek.default in
  check_int "no movement" 0 (Disk.Seek.time s ~from_cyl:5 ~to_cyl:5);
  let near = Disk.Seek.time s ~from_cyl:0 ~to_cyl:1 in
  let far = Disk.Seek.time s ~from_cyl:0 ~to_cyl:1000 in
  check_bool "monotonic" true (near < far);
  check_bool "near seek is settle-dominated" true (near >= 2000 && near < 4000);
  let capped = Disk.Seek.time (Disk.Seek.create ~max_us:10_000 ()) ~from_cyl:0 ~to_cyl:100_000 in
  check_int "capped" 10_000 capped

(* ---------- Request ---------- *)

let test_request_validation () =
  let buf = Bytes.create 512 in
  Alcotest.check_raises "short buffer"
    (Invalid_argument "Request.make: buffer too small") (fun () ->
      ignore
        (Disk.Request.make ~kind:Disk.Request.Read ~sector:0 ~count:2 ~buf
           ~buf_off:0 ()));
  Alcotest.check_raises "bad extent"
    (Invalid_argument "Request.make: bad extent") (fun () ->
      ignore
        (Disk.Request.make ~kind:Disk.Request.Read ~sector:(-1) ~count:1 ~buf
           ~buf_off:0 ()))

let test_request_completion () =
  let buf = Bytes.create 512 in
  let r = Disk.Request.make ~kind:Disk.Request.Read ~sector:0 ~count:1 ~buf ~buf_off:0 () in
  let fired = ref 0 in
  Disk.Request.on_complete r (fun () -> incr fired);
  Disk.Request.complete r ~now:42;
  check_int "callback fired" 1 !fired;
  Disk.Request.on_complete r (fun () -> incr fired);
  check_int "late callback fires immediately" 2 !fired;
  check_int "end_sector" 1 (Disk.Request.end_sector r)

(* ---------- Disksort ---------- *)

let mk_req ?(ordered = false) ?(kind = Disk.Request.Write) sector count =
  Disk.Request.make ~ordered ~kind ~sector ~count
    ~buf:(Bytes.create (count * 512))
    ~buf_off:0 ()

let drain_q q ~head =
  let rec loop acc =
    match Disk.Disksort.next q ~head_sector:head with
    | Some r -> loop (r.Disk.Request.sector :: acc)
    | None -> List.rev acc
  in
  loop []

let test_disksort_fifo () =
  let q = Disk.Disksort.create Disk.Disksort.Fifo in
  List.iter (fun s -> Disk.Disksort.enqueue q (mk_req s 1)) [ 30; 10; 20 ];
  Alcotest.(check (list int)) "arrival order" [ 30; 10; 20 ] (drain_q q ~head:0)

let test_disksort_elevator () =
  let q = Disk.Disksort.create Disk.Disksort.Elevator in
  List.iter (fun s -> Disk.Disksort.enqueue q (mk_req s 1)) [ 30; 10; 50; 20 ];
  (* head at 15: ascending sweep from there, then wrap *)
  let r1 = Disk.Disksort.next q ~head_sector:15 in
  check_int "first >= head" 20 (Option.get r1).Disk.Request.sector;
  let r2 = Disk.Disksort.next q ~head_sector:21 in
  check_int "sweep continues" 30 (Option.get r2).Disk.Request.sector;
  let r3 = Disk.Disksort.next q ~head_sector:31 in
  check_int "sweep continues" 50 (Option.get r3).Disk.Request.sector;
  let r4 = Disk.Disksort.next q ~head_sector:51 in
  check_int "wraps to lowest" 10 (Option.get r4).Disk.Request.sector

let test_disksort_barrier () =
  let q = Disk.Disksort.create Disk.Disksort.Elevator in
  Disk.Disksort.enqueue q (mk_req 50 1);
  Disk.Disksort.enqueue q (mk_req 40 1);
  Disk.Disksort.enqueue q (mk_req ~ordered:true 10 1);
  Disk.Disksort.enqueue q (mk_req 5 1);
  (* the two pre-barrier requests must go first (in elevator order),
     then the barrier, then the rest *)
  Alcotest.(check (list int))
    "barrier respected" [ 40; 50; 10; 5 ] (drain_q q ~head:0)

let test_disksort_absorb () =
  let q = Disk.Disksort.create Disk.Disksort.Elevator in
  let r = mk_req 100 2 in
  (* contiguous after, contiguous before, not contiguous, wrong kind *)
  Disk.Disksort.enqueue q (mk_req 102 2);
  Disk.Disksort.enqueue q (mk_req 98 2);
  Disk.Disksort.enqueue q (mk_req 200 2);
  Disk.Disksort.enqueue q (mk_req ~kind:Disk.Request.Read 104 2);
  let absorbed = Disk.Disksort.absorb_contiguous q r in
  Alcotest.(check (list int))
    "absorbed both neighbours" [ 98; 102 ]
    (List.map (fun (x : Disk.Request.t) -> x.Disk.Request.sector) absorbed);
  check_int "two left" 2 (Disk.Disksort.length q)

(* ---------- Device ---------- *)

let with_device ?(cfg = Helpers.small_disk) f =
  let e = Sim.Engine.create () in
  let d = Disk.Device.create e cfg in
  let result = ref None in
  Sim.Engine.spawn e (fun () -> result := Some (f e d));
  Sim.Engine.run e;
  match !result with Some r -> r | None -> Alcotest.fail "device test hung"

let test_device_data_roundtrip () =
  with_device (fun _e d ->
      let w = Bytes.init 4096 (fun i -> Char.chr (i land 0xff)) in
      Disk.Device.write_sync d ~sector:100 ~count:8 ~buf:w ~buf_off:0;
      let r = Bytes.create 4096 in
      Disk.Device.read_sync d ~sector:100 ~count:8 ~buf:r ~buf_off:0;
      check_bool "data survives" true (Bytes.equal w r))

let test_device_time_advances () =
  with_device (fun e d ->
      let t0 = Sim.Engine.now e in
      let b = Bytes.create 512 in
      Disk.Device.read_sync d ~sector:0 ~count:1 ~buf:b ~buf_off:0;
      check_bool "takes time" true (Sim.Engine.now e > t0);
      let s = Disk.Device.stats d in
      check_int "one read" 1 s.Disk.Device.reads;
      check_int "one sector" 1 s.Disk.Device.sectors_read)

let test_device_sequential_beats_random () =
  let seq =
    with_device (fun e d ->
        let b = Bytes.create 8192 in
        let t0 = Sim.Engine.now e in
        for i = 0 to 63 do
          Disk.Device.read_sync d ~sector:(i * 16) ~count:16 ~buf:b ~buf_off:0
        done;
        Sim.Engine.now e - t0)
  in
  let rand =
    with_device (fun e d ->
        let b = Bytes.create 8192 in
        let rng = Sim.Rng.create ~seed:5 in
        let nblocks = (Disk.Device.capacity_bytes d / 512 / 16) - 1 in
        let t0 = Sim.Engine.now e in
        for _ = 0 to 63 do
          Disk.Device.read_sync d
            ~sector:(Sim.Rng.int rng nblocks * 16)
            ~count:16 ~buf:b ~buf_off:0
        done;
        Sim.Engine.now e - t0)
  in
  check_bool
    (Printf.sprintf "sequential (%dus) at least 3x faster than random (%dus)"
       seq rand)
    true
    (seq * 3 < rand)

let test_device_track_buffer_hits () =
  with_device (fun _e d ->
      let b = Bytes.create 512 in
      (* read a sector mid-track, then re-read neighbours on that track *)
      Disk.Device.read_sync d ~sector:10 ~count:1 ~buf:b ~buf_off:0;
      Disk.Device.read_sync d ~sector:5 ~count:1 ~buf:b ~buf_off:0;
      Disk.Device.read_sync d ~sector:12 ~count:1 ~buf:b ~buf_off:0;
      let hits, _misses = Disk.Device.track_buffer_stats d in
      check_bool "track buffer hits" true (hits >= 2))

let test_device_stream_read_fast () =
  (* back-to-back sequential reads should approach media rate: time for
     the second of two adjacent big reads must be far below one
     rotation + transfer *)
  with_device (fun e d ->
      let b = Bytes.create (48 * 512) in
      Disk.Device.read_sync d ~sector:0 ~count:48 ~buf:b ~buf_off:0;
      let t1 = Sim.Engine.now e in
      Disk.Device.read_sync d ~sector:48 ~count:48 ~buf:b ~buf_off:0;
      let dt = Sim.Engine.now e - t1 in
      let rot = Disk.Geom.rotation_time Helpers.small_geom in
      check_bool
        (Printf.sprintf "streamed continuation (%dus < ~1.5 rotations)" dt)
        true (dt < rot * 3 / 2))

let test_device_quiesce_and_async () =
  with_device (fun e d ->
      let b = Bytes.create 512 in
      let r =
        Disk.Request.make ~kind:Disk.Request.Write ~sector:7 ~count:1 ~buf:b
          ~buf_off:0 ()
      in
      let done_at = ref 0 in
      Disk.Request.on_complete r (fun () -> done_at := Sim.Engine.now e);
      Disk.Device.submit d r;
      check_bool "busy after submit" true (Disk.Device.busy d);
      Disk.Device.quiesce d;
      check_bool "completed by quiesce" true (!done_at > 0);
      check_bool "idle after quiesce" false (Disk.Device.busy d))

let test_device_driver_clustering () =
  let cfg =
    { Helpers.small_disk with Disk.Device.driver_clustering = true }
  in
  with_device ~cfg (fun e d ->
      (* submit 4 adjacent writes while the disk is busy with a far-away
         read, so they are all queued when the disk gets to them *)
      let blocker = Bytes.create 512 in
      let far = (Disk.Device.capacity_bytes d / 512) - 1 in
      let first =
        Disk.Request.make ~kind:Disk.Request.Read ~sector:far ~count:1
          ~buf:blocker ~buf_off:0 ()
      in
      Disk.Device.submit d first;
      let reqs =
        List.init 4 (fun i ->
            let b = Bytes.make 512 (Char.chr (65 + i)) in
            Disk.Request.make ~kind:Disk.Request.Write ~sector:(200 + i)
              ~count:1 ~buf:b ~buf_off:0 ())
      in
      List.iter (Disk.Device.submit d) reqs;
      Disk.Device.quiesce d;
      ignore e;
      let s = Disk.Device.stats d in
      check_bool "requests were coalesced" true (s.Disk.Device.coalesced >= 3);
      (* data of each coalesced request must still land correctly *)
      let b = Bytes.create (4 * 512) in
      Disk.Device.read_sync d ~sector:200 ~count:4 ~buf:b ~buf_off:0;
      List.iteri
        (fun i c -> check_bool "coalesced data intact" true (Bytes.get b (i * 512) = c))
        [ 'A'; 'B'; 'C'; 'D' ])

let test_device_bounds () =
  with_device (fun _e d ->
      let b = Bytes.create 512 in
      let total = Disk.Device.capacity_bytes d / 512 in
      Alcotest.check_raises "past end of disk"
        (Invalid_argument "Device.submit: request past end of disk") (fun () ->
          Disk.Device.read_sync d ~sector:total ~count:1 ~buf:b ~buf_off:0))

let suites =
  [
    ( "disk",
      [
        Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
        Alcotest.test_case "store zero default" `Quick test_store_zero_default;
        Alcotest.test_case "store bounds" `Quick test_store_bounds;
        Alcotest.test_case "store sparse+copy" `Quick test_store_sparse_and_copy;
        Alcotest.test_case "geom chs" `Quick test_geom_chs;
        Alcotest.test_case "geom zoned" `Quick test_geom_zoned;
        Alcotest.test_case "geom angles" `Quick test_geom_angles;
        Alcotest.test_case "geom capacity" `Quick test_geom_capacity;
        Alcotest.test_case "seek model" `Quick test_seek_model;
        Alcotest.test_case "request validation" `Quick test_request_validation;
        Alcotest.test_case "request completion" `Quick test_request_completion;
        Alcotest.test_case "disksort fifo" `Quick test_disksort_fifo;
        Alcotest.test_case "disksort elevator" `Quick test_disksort_elevator;
        Alcotest.test_case "disksort B_ORDER barrier" `Quick
          test_disksort_barrier;
        Alcotest.test_case "disksort absorb" `Quick test_disksort_absorb;
        Alcotest.test_case "device data roundtrip" `Quick
          test_device_data_roundtrip;
        Alcotest.test_case "device time advances" `Quick
          test_device_time_advances;
        Alcotest.test_case "device seq beats random" `Quick
          test_device_sequential_beats_random;
        Alcotest.test_case "device track buffer" `Quick
          test_device_track_buffer_hits;
        Alcotest.test_case "device stream read" `Quick
          test_device_stream_read_fast;
        Alcotest.test_case "device quiesce/async" `Quick
          test_device_quiesce_and_async;
        Alcotest.test_case "device driver clustering" `Quick
          test_device_driver_clustering;
        Alcotest.test_case "device bounds" `Quick test_device_bounds;
      ] );
  ]
