(* Concurrency: multiple simulated processes sharing files, pages and
   the allocator at once.  The cooperative scheduler interleaves at
   every sleep (disk I/O, CPU charge, lock wait), so these exercise the
   same windows a preemptive kernel would. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bsize = Ufs.Layout.bsize

(* run [n] process bodies to completion inside one machine *)
let run_procs m bodies =
  Clusterfs.Machine.run m (fun m ->
      let e = m.Clusterfs.Machine.engine in
      let remaining = ref (List.length bodies) in
      let all_done = Sim.Condition.create e "done" in
      List.iteri
        (fun i body ->
          Sim.Engine.spawn e
            ~name:(Printf.sprintf "proc%d" i)
            (fun () ->
              body m;
              decr remaining;
              if !remaining = 0 then Sim.Condition.broadcast all_done))
        bodies;
      while !remaining > 0 do
        Sim.Condition.wait all_done
      done)

let test_concurrent_readers_share_pages () =
  let m = Helpers.machine () in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/shared" in
      Helpers.write_pattern fs ip ~seed:1 ~off:0 ~len:(256 * 1024);
      Ufs.Fs.fsync fs ip;
      Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
      Ufs.Iops.iput fs ip);
  run_procs m
    (List.init 4 (fun _ m ->
         let fs = m.Clusterfs.Machine.fs in
         let ip = Ufs.Fs.namei fs "/shared" in
         Helpers.check_pattern fs ip ~seed:1 ~off:0 ~len:(256 * 1024);
         Ufs.Iops.iput fs ip));
  (* four full reads of a cold 32-block file: at most one page-in per
     block in total — racing readers must share in-flight I/O, not
     duplicate it *)
  let s = m.Clusterfs.Machine.fs.Ufs.Types.stats in
  check_bool
    (Printf.sprintf "read I/Os shared (%d blocks read for 32-block file)"
       (s.Ufs.Types.pgin_blocks + s.Ufs.Types.ra_blocks))
    true
    (s.Ufs.Types.pgin_blocks + s.Ufs.Types.ra_blocks <= 33)

let test_concurrent_writers_distinct_files () =
  let m = Helpers.machine () in
  run_procs m
    (List.init 5 (fun i m ->
         let fs = m.Clusterfs.Machine.fs in
         let ip = Ufs.Fs.creat fs (Printf.sprintf "/w%d" i) in
         Helpers.write_pattern fs ip ~seed:i ~off:0 ~len:(100 * 1024);
         Ufs.Fs.fsync fs ip;
         Helpers.check_pattern fs ip ~seed:i ~off:0 ~len:(100 * 1024);
         Ufs.Iops.iput fs ip));
  Clusterfs.Machine.run m (fun m ->
      check_int "allocator stayed consistent" 0
        (List.length (Ufs.Alloc.check_counts m.Clusterfs.Machine.fs)));
  Helpers.fsck_clean m

let test_writer_reader_same_file () =
  (* a writer appends while a reader polls: the reader must only ever
     see fully written data (the inode lock serialises rdwr) *)
  let m = Helpers.machine () in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      Ufs.Iops.iput fs (Ufs.Fs.creat fs "/pipe"));
  run_procs m
    [
      (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        let ip = Ufs.Fs.namei fs "/pipe" in
        for i = 0 to 63 do
          Helpers.write_pattern fs ip ~seed:3 ~off:(i * bsize) ~len:bsize
        done;
        Ufs.Fs.fsync fs ip;
        Ufs.Iops.iput fs ip);
      (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        let e = m.Clusterfs.Machine.engine in
        let ip = Ufs.Fs.namei fs "/pipe" in
        let buf = Bytes.create bsize in
        let seen_bytes = ref 0 in
        (* poll until the writer finishes *)
        while !seen_bytes < 64 * bsize do
          let size = ip.Ufs.Types.size in
          if size > !seen_bytes then begin
            (* verify the newly visible region *)
            let off = !seen_bytes in
            let n = min bsize (size - off) in
            let got = Ufs.Fs.read fs ip ~off ~buf ~len:n in
            check_int "read what size promised" n got;
            for k = 0 to n - 1 do
              if Bytes.get buf k <> Helpers.pattern_byte ~seed:3 (off + k) then
                Alcotest.failf "torn read at %d" (off + k)
            done;
            seen_bytes := off + n
          end
          else Sim.Engine.sleep e (Sim.Time.ms 5)
        done;
        Ufs.Iops.iput fs ip);
    ];
  Helpers.fsck_clean m

let test_concurrent_creates_same_dir () =
  (* the dlock race found by MusBus, distilled *)
  let m = Helpers.machine () in
  Clusterfs.Machine.run m (fun m -> Ufs.Fs.mkdir m.Clusterfs.Machine.fs "/race");
  run_procs m
    (List.init 6 (fun i m ->
         let fs = m.Clusterfs.Machine.fs in
         for j = 0 to 9 do
           let p = Printf.sprintf "/race/p%d_%d" i j in
           let ip = Ufs.Fs.creat fs p in
           Ufs.Iops.iput fs ip
         done));
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let dp = Ufs.Fs.namei fs "/race" in
      check_int "all 60 entries present" 62 (Ufs.Dir.count fs dp);
      Ufs.Iops.iput fs dp);
  Helpers.fsck_clean m

let test_memory_pressure_many_streams () =
  (* several streaming readers on a small machine: pageout + free-behind
     under real contention, everything still correct *)
  let m = Helpers.machine ~memory_mb:2 () in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      for i = 0 to 2 do
        let ip = Ufs.Fs.creat fs (Printf.sprintf "/s%d" i) in
        Helpers.write_pattern fs ip ~seed:i ~off:0 ~len:(1024 * 1024);
        Ufs.Fs.fsync fs ip;
        Ufs.Iops.iput fs ip
      done);
  run_procs m
    (List.init 3 (fun i m ->
         let fs = m.Clusterfs.Machine.fs in
         let ip = Ufs.Fs.namei fs (Printf.sprintf "/s%d" i) in
         Helpers.check_pattern fs ip ~seed:i ~off:0 ~len:(1024 * 1024);
         Ufs.Iops.iput fs ip));
  Helpers.fsck_clean m

let suites =
  [
    ( "concurrency",
      [
        Alcotest.test_case "readers share pages" `Quick
          test_concurrent_readers_share_pages;
        Alcotest.test_case "writers, distinct files" `Quick
          test_concurrent_writers_distinct_files;
        Alcotest.test_case "writer + polling reader" `Quick
          test_writer_reader_same_file;
        Alcotest.test_case "creates in one dir" `Quick
          test_concurrent_creates_same_dir;
        Alcotest.test_case "streams under memory pressure" `Slow
          test_memory_pressure_many_streams;
      ] );
  ]
