bin/mkfs.ml: Arg Bytes Cmd Cmdliner Disk Format Sim Term Ufs
