bin/iobench.mli:
