bin/blktrace.ml: Arg Clusterfs Cmd Cmdliner Disk List Printf Sim String Term Workload
