bin/fsck.mli:
