bin/mkfs.mli:
