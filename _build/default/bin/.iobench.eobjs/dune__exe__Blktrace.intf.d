bin/blktrace.mli:
