bin/fsck.ml: Arg Bytes Cmd Cmdliner Disk Format Sim Term Ufs Vfs
