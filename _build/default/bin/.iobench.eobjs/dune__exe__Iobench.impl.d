bin/iobench.ml: Arg Clusterfs Cmd Cmdliner Disk List Option Printf Sim String Term Ufs Workload
