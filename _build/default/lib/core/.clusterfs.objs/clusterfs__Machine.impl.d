lib/core/machine.ml: Config Disk Printexc Sim Ufs Vm
