lib/core/config.mli: Disk Ufs
