lib/core/experiments.ml: Bytes Config Disk Efs List Machine Option Printf Sim Ufs Vfs Vm Workload
