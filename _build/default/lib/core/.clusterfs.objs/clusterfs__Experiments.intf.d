lib/core/experiments.mli: Workload
