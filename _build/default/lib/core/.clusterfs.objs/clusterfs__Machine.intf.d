lib/core/machine.mli: Config Disk Sim Ufs Vm
