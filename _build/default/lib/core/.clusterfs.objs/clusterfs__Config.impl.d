lib/core/config.ml: Disk Printf Ufs
