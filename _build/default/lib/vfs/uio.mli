(** I/O request descriptors, after the kernel's [struct uio].

    A uio names a byte range of a file and the user buffer it moves
    to/from.  The file system consumes it incrementally with {!move}
    (the analogue of [uiomove]), which advances [off]/[buf_off] and
    shrinks [resid]. *)

type rw = Read | Write

type t = {
  rw : rw;
  mutable off : int;  (** current file offset *)
  mutable resid : int;  (** bytes still to transfer *)
  buf : bytes;
  mutable buf_off : int;
}

val make : rw:rw -> off:int -> len:int -> buf:bytes -> buf_off:int -> t
(** Raises [Invalid_argument] if the buffer window is out of range or
    [off]/[len] negative. *)

val done_ : t -> bool

val move : t -> src_or_dst:bytes -> data_off:int -> n:int -> unit
(** Transfer [n] bytes between the uio's buffer and [src_or_dst] at
    [data_off]: for a [Read] uio data flows user-ward (into [buf]), for
    a [Write] uio it flows file-ward (into [src_or_dst]).  Advances the
    uio. *)
