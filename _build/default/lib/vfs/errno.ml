type code =
  | ENOENT
  | EEXIST
  | ENOSPC
  | EISDIR
  | ENOTDIR
  | ENOTEMPTY
  | EFBIG
  | EINVAL
  | EIO
  | EROFS

exception Error of code * string

let raise_err code msg = raise (Error (code, msg))

let to_string = function
  | ENOENT -> "ENOENT"
  | EEXIST -> "EEXIST"
  | ENOSPC -> "ENOSPC"
  | EISDIR -> "EISDIR"
  | ENOTDIR -> "ENOTDIR"
  | ENOTEMPTY -> "ENOTEMPTY"
  | EFBIG -> "EFBIG"
  | EINVAL -> "EINVAL"
  | EIO -> "EIO"
  | EROFS -> "EROFS"

let pp ppf c = Format.pp_print_string ppf (to_string c)

let () =
  Printexc.register_printer (function
    | Error (c, msg) -> Some (Printf.sprintf "Vfs.Errno.Error(%s, %s)" (to_string c) msg)
    | _ -> None)
