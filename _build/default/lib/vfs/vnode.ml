type kind = Reg | Dir | Lnk

type putflag = P_SYNC | P_ASYNC | P_DELAY | P_FREE | P_ORDER

type t = { vid : int; mutable kind : kind; ops : ops }

and ops = {
  rdwr : t -> Uio.t -> unit;
  getpage : t -> off:int -> len:int -> hint:int -> Vm.Page.t list;
  putpage : t -> off:int -> len:int -> flags:putflag list -> unit;
  fsync : t -> unit;
  inactive : t -> unit;
  getsize : t -> int;
  setsize : t -> int -> unit;
}

let make ~vid ~kind ~ops = { vid; kind; ops }
let size t = t.ops.getsize t
let rdwr t uio = t.ops.rdwr t uio
let getpage t ~off ~len ~hint = t.ops.getpage t ~off ~len ~hint
let putpage t ~off ~len ~flags = t.ops.putpage t ~off ~len ~flags
let fsync t = t.ops.fsync t
let inactive t = t.ops.inactive t
