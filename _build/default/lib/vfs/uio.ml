type rw = Read | Write

type t = {
  rw : rw;
  mutable off : int;
  mutable resid : int;
  buf : bytes;
  mutable buf_off : int;
}

let make ~rw ~off ~len ~buf ~buf_off =
  if off < 0 || len < 0 then invalid_arg "Uio.make: negative off/len";
  if buf_off < 0 || buf_off + len > Bytes.length buf then
    invalid_arg "Uio.make: buffer window out of range";
  { rw; off; resid = len; buf; buf_off }

let done_ t = t.resid = 0

let move t ~src_or_dst ~data_off ~n =
  if n < 0 || n > t.resid then invalid_arg "Uio.move: bad length";
  (match t.rw with
  | Read -> Bytes.blit src_or_dst data_off t.buf t.buf_off n
  | Write -> Bytes.blit t.buf t.buf_off src_or_dst data_off n);
  t.off <- t.off + n;
  t.buf_off <- t.buf_off + n;
  t.resid <- t.resid - n
