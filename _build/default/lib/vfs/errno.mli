(** File system error conditions, raised as the single exception
    {!Error} so call sites can match on the code. *)

type code =
  | ENOENT  (** no such file or directory *)
  | EEXIST
  | ENOSPC  (** file system full (or below minfree) *)
  | EISDIR
  | ENOTDIR
  | ENOTEMPTY
  | EFBIG  (** file too large for the inode's block pointers *)
  | EINVAL
  | EIO
  | EROFS

exception Error of code * string
(** The string names the operation/object for diagnostics. *)

val raise_err : code -> string -> 'a
val to_string : code -> string
val pp : Format.formatter -> code -> unit
