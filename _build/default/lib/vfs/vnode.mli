(** Vnodes: the file-system-independent file objects of [Kleiman 86].

    "Each file system type implements two object classes: vfs and
    vnode...  These objects export interface routines that the main body
    of the kernel uses to manipulate a file system without knowing the
    details of how it is implemented."

    We model the three entry points the paper is about — [rdwr],
    [getpage], [putpage] — plus [fsync] and [inactive].  A concrete file
    system builds the [ops] record from closures over its own per-file
    state, so no existential types or casts are needed. *)

type kind = Reg | Dir | Lnk

type putflag =
  | P_SYNC  (** wait for the I/O *)
  | P_ASYNC  (** start it and return *)
  | P_DELAY  (** delayed write: may just mark/accumulate (rdwr path) *)
  | P_FREE  (** free the page once clean (pageout / free-behind) *)
  | P_ORDER
      (** B_ORDER: issue asynchronously but forbid the disk queue from
          reordering other requests across this one (the paper's
          proposed ordered-write flag) *)

type t = { vid : int; mutable kind : kind; ops : ops }

and ops = {
  rdwr : t -> Uio.t -> unit;
      (** Transfer bytes between file and user buffer; extends the file
          on write. *)
  getpage :
    t -> off:int -> len:int -> hint:int -> Vm.Page.t list;
      (** Ensure pages covering [off, off+len) are in the cache and
          valid; return them in order.  [hint] is the total size of the
          enclosing request (the "random clustering" extension uses it;
          pass 0 for no hint). *)
  putpage : t -> off:int -> len:int -> flags:putflag list -> unit;
      (** Write out (or schedule/accumulate, per flags) dirty pages in
          the range; [len = 0] means to end of file. *)
  fsync : t -> unit;  (** flush everything dirty and wait *)
  inactive : t -> unit;  (** last reference dropped *)
  getsize : t -> int;
  setsize : t -> int -> unit;  (** truncate/extend metadata only *)
}

val make : vid:int -> kind:kind -> ops:ops -> t
val size : t -> int
val rdwr : t -> Uio.t -> unit
val getpage : t -> off:int -> len:int -> hint:int -> Vm.Page.t list
val putpage : t -> off:int -> len:int -> flags:putflag list -> unit
val fsync : t -> unit
val inactive : t -> unit
