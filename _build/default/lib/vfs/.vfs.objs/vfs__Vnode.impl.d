lib/vfs/vnode.ml: Uio Vm
