lib/vfs/vnode.mli: Uio Vm
