lib/vfs/uio.ml: Bytes
