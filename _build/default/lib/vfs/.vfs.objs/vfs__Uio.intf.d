lib/vfs/uio.mli:
