lib/vm/param.ml:
