lib/vm/seg.ml: Hashtbl List Page Sim
