lib/vm/pageout.mli: Pool Sim
