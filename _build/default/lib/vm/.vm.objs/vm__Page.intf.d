lib/vm/page.mli: Sim
