lib/vm/param.mli:
