lib/vm/pageout.ml: Array Page Param Pool Sim
