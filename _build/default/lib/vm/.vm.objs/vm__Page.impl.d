lib/vm/page.ml: Bytes List Sim
