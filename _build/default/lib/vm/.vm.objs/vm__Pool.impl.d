lib/vm/pool.ml: Array Hashtbl List Page Param Queue Sim
