lib/vm/pool.mli: Page Param Sim
