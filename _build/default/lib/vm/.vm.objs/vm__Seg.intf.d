lib/vm/seg.mli: Page Sim
