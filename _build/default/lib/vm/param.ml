type t = {
  physmem_pages : int;
  pagesize : int;
  lotsfree : int;
  desfree : int;
  minfree : int;
  handspread : int;
  slowscan : int;
  fastscan : int;
}

let default ?(memory_mb = 8) () =
  let pagesize = 8192 in
  let physmem_pages = memory_mb * 1024 * 1024 / pagesize in
  let lotsfree = max 8 (physmem_pages / 16) in
  let desfree = max 4 (physmem_pages / 32) in
  let minfree = max 2 (desfree / 2) in
  {
    physmem_pages;
    pagesize;
    lotsfree;
    desfree;
    minfree;
    handspread = max 4 (physmem_pages / 4);
    slowscan = 100;
    fastscan = max 200 (physmem_pages / 2);
  }

let validate t =
  if t.physmem_pages <= 0 then invalid_arg "Param: physmem_pages";
  if t.pagesize <= 0 || t.pagesize land (t.pagesize - 1) <> 0 then
    invalid_arg "Param: pagesize must be a positive power of two";
  if not (0 < t.minfree && t.minfree <= t.desfree && t.desfree <= t.lotsfree)
  then invalid_arg "Param: need 0 < minfree <= desfree <= lotsfree";
  if t.lotsfree >= t.physmem_pages then invalid_arg "Param: lotsfree too large";
  if t.handspread <= 0 || t.handspread >= t.physmem_pages then
    invalid_arg "Param: handspread";
  if t.slowscan <= 0 || t.fastscan < t.slowscan then invalid_arg "Param: scan rates"
