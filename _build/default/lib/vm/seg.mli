(** Address spaces and segments — the paper's Figure 1.

    "The address space, associated with a process, is made up of a
    collection of segments each of which refers to a portion of a file
    (vnode)...  The fault is resolved by traversing the object
    hierarchy: the kernel finds the address space associated with the
    process and calls the address fault handler...  The segment's fault
    handler converts the address into a ⟨vnode, offset⟩ pair and calls
    getpage of the associated file system."

    The segment holds its backing object as a fault callback (the VFS
    layer sits above the VM in this code base, so segments cannot name
    vnodes directly — the caller closes over one).  A per-segment soft
    TLB of resolved pages models MMU translations: a repeated touch of
    a translated page costs nothing, and {!invalidate} models an MMU
    flush. *)

type mapping

type t
(** An address space. *)

val create : Sim.Engine.t -> t

val map :
  t -> ?addr:int -> len:int -> pagesize:int -> fault:(off:int -> Page.t) ->
  unit -> mapping
(** Map [len] bytes backed by [fault] (which receives the page-aligned
    offset {e within the mapping}).  With no [addr], the mapping is
    placed after the highest existing one.  Raises [Invalid_argument]
    on overlap or misalignment. *)

val base : mapping -> int
val length : mapping -> int

val unmap : t -> mapping -> unit
(** Remove the mapping and drop its translations.
    Raises [Invalid_argument] if it is not part of the space. *)

val fault : t -> int -> Page.t
(** Resolve a virtual address: find the enclosing segment, consult its
    translations, call the backing fault handler on a miss.  Raises
    [Not_found] for an unmapped address (a segmentation violation). *)

val translated : t -> int -> bool
(** Whether the page containing the address currently has a valid
    translation (no fault would occur). *)

val invalidate : t -> mapping -> unit
(** Drop the mapping's translations (MMU flush) without unmapping. *)

val mappings : t -> mapping list
(** All mappings, by ascending base address. *)

val faults : t -> int
(** Total faults taken (translation misses). *)
