(** Paging parameters (the SunOS tunables that matter here).

    The pageout daemon starts scanning when free memory drops below
    [lotsfree] and scans faster as free memory approaches zero, from
    [slowscan] to [fastscan] pages per second.  [handspread] is the
    distance, in frames, between the reference-clearing front hand and
    the freeing back hand of the two-handed clock. *)

type t = {
  physmem_pages : int;  (** total page frames *)
  pagesize : int;  (** bytes; 8192 to match the UFS block size *)
  lotsfree : int;  (** pageout wakes below this many free pages *)
  desfree : int;
  minfree : int;  (** allocation may block below this *)
  handspread : int;
  slowscan : int;  (** pages/second at shortage = lotsfree *)
  fastscan : int;  (** pages/second at shortage = all of lotsfree *)
}

val default : ?memory_mb:int -> unit -> t
(** SunOS-style defaults scaled to the machine size: [lotsfree] =
    physmem/16, [desfree] = physmem/32, [minfree] = desfree/2,
    [handspread] = physmem/4, slowscan 100, fastscan = physmem/2 per
    second.  [memory_mb] defaults to 8 (the paper's SPARCstation 1). *)

val validate : t -> unit
(** Raises [Invalid_argument] if the parameters are inconsistent
    (e.g. [minfree > lotsfree] or non-positive sizes). *)
