type mapping = {
  base : int;
  len : int;
  pagesize : int;
  fault_cb : off:int -> Page.t;
  tlb : (int, Page.t) Hashtbl.t; (* page-aligned mapping offset -> page *)
}

type t = {
  engine : Sim.Engine.t;
  mutable segs : mapping list; (* ascending base *)
  mutable nfaults : int;
}

let create engine = { engine; segs = []; nfaults = 0 }

let overlaps a b = a.base < b.base + b.len && b.base < a.base + a.len

let map t ?addr ~len ~pagesize ~fault () =
  if len <= 0 then invalid_arg "Seg.map: empty mapping";
  if pagesize <= 0 then invalid_arg "Seg.map: bad pagesize";
  let base =
    match addr with
    | Some a ->
        if a mod pagesize <> 0 then invalid_arg "Seg.map: unaligned address";
        a
    | None -> (
        match List.rev t.segs with
        | [] -> pagesize (* leave page 0 unmapped, as nature intended *)
        | last :: _ ->
            (last.base + last.len + pagesize - 1) / pagesize * pagesize)
  in
  let m = { base; len; pagesize; fault_cb = fault; tlb = Hashtbl.create 64 } in
  List.iter
    (fun other ->
      if overlaps m other then invalid_arg "Seg.map: overlapping mapping")
    t.segs;
  t.segs <-
    List.sort (fun a b -> compare a.base b.base) (m :: t.segs);
  m

let base m = m.base
let length m = m.len

let unmap t m =
  if not (List.memq m t.segs) then invalid_arg "Seg.unmap: unknown mapping";
  Hashtbl.reset m.tlb;
  t.segs <- List.filter (fun s -> s != m) t.segs

let find t addr =
  List.find_opt (fun s -> addr >= s.base && addr < s.base + s.len) t.segs

let fault t addr =
  match find t addr with
  | None -> raise Not_found
  | Some s -> (
      let off = (addr - s.base) / s.pagesize * s.pagesize in
      match Hashtbl.find_opt s.tlb off with
      | Some p when p.Page.valid && p.Page.ident <> None -> p
      | Some _ | None ->
          t.nfaults <- t.nfaults + 1;
          let p = s.fault_cb ~off in
          Hashtbl.replace s.tlb off p;
          p)

let translated t addr =
  match find t addr with
  | None -> false
  | Some s -> (
      let off = (addr - s.base) / s.pagesize * s.pagesize in
      match Hashtbl.find_opt s.tlb off with
      | Some p -> p.Page.valid && p.Page.ident <> None
      | None -> false)

let invalidate _t m = Hashtbl.reset m.tlb
let mappings t = t.segs
let faults t = t.nfaults
