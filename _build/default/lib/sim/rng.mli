(** Deterministic pseudo-random numbers (SplitMix64).

    Every source of randomness in the simulator (workload offsets, ager
    decisions, think times) draws from an explicitly seeded [Rng.t] so
    that a given experiment configuration replays bit-for-bit. *)

type t

val create : seed:int -> t

val split : t -> t
(** [split t] derives an independent stream; both [t] and the result
    advance deterministically from here on. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean (think times). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
