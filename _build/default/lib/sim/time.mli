(** Simulated time.

    All simulated time in the system is expressed as an integer number of
    microseconds since simulation start.  Integer microseconds keep the
    simulation exactly deterministic (no floating-point drift) while still
    resolving individual disk sector passes (a 512-byte sector at 1.6 MB/s
    takes ~320 us). *)

type t = int
(** Microseconds since simulation start.  Always non-negative. *)

val zero : t

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : int -> t
(** [sec n] is [n] seconds. *)

val of_ms_float : float -> t
(** [of_ms_float x] converts a duration in (possibly fractional)
    milliseconds, rounding to the nearest microsecond. *)

val of_sec_float : float -> t
(** [of_sec_float x] converts a duration in seconds, rounding to the
    nearest microsecond. *)

val to_ms_float : t -> float
val to_sec_float : t -> float

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, e.g. ["1.234ms"] or ["2.5s"]. *)

val to_string : t -> string
