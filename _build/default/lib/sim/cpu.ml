type category = Sys | User

type t = {
  engine : Engine.t;
  lock : Mutex.t;
  mutable sys : Time.t;
  mutable user : Time.t;
  labels : (string, Time.t ref) Hashtbl.t;
}

let create engine =
  {
    engine;
    lock = Mutex.create engine "cpu";
    sys = 0;
    user = 0;
    labels = Hashtbl.create 32;
  }

let charge t ?(cat = Sys) ?(label = "other") d =
  if d < 0 then invalid_arg "Cpu.charge: negative duration";
  if d > 0 then
    Mutex.with_lock t.lock (fun () ->
        Engine.sleep t.engine d;
        (match cat with Sys -> t.sys <- t.sys + d | User -> t.user <- t.user + d);
        let cell =
          match Hashtbl.find_opt t.labels label with
          | Some c -> c
          | None ->
              let c = ref 0 in
              Hashtbl.add t.labels label c;
              c
        in
        cell := !cell + d)

let sys_time t = t.sys
let user_time t = t.user

let by_label t =
  Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.labels []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let reset t =
  t.sys <- 0;
  t.user <- 0;
  Hashtbl.reset t.labels
