lib/sim/rng.mli:
