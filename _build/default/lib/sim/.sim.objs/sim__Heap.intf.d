lib/sim/heap.mli:
