lib/sim/cpu.ml: Engine Hashtbl List Mutex Time
