lib/sim/trace.mli:
