lib/sim/trace.ml: List Queue
