lib/sim/engine.ml: Effect Heap Option Printexc Printf Time
