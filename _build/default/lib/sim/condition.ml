type t = {
  engine : Engine.t;
  name : string;
  q : (unit -> unit) Queue.t;
}

let create engine name = { engine; name; q = Queue.create () }

let wait t =
  Engine.suspend t.engine ~register:(fun resume -> Queue.push resume t.q)

let signal t = match Queue.take_opt t.q with None -> () | Some r -> r ()

let broadcast t =
  (* Drain first: a woken process may immediately wait again, and that
     new waiter must not be woken by this same broadcast. *)
  let woken = ref [] in
  Queue.iter (fun r -> woken := r :: !woken) t.q;
  Queue.clear t.q;
  List.iter (fun r -> r ()) (List.rev !woken)

let waiters t = Queue.length t.q
let name t = t.name
