type t = { mutable held : bool; waitq : (unit -> unit) Queue.t; engine : Engine.t }

let create engine _name = { held = false; waitq = Queue.create (); engine }

let lock t =
  if not t.held then t.held <- true
  else Engine.suspend t.engine ~register:(fun resume -> Queue.push resume t.waitq)
(* Ownership transfers directly to the woken waiter: [held] stays true. *)

let unlock t =
  if not t.held then invalid_arg "Mutex.unlock: not locked";
  match Queue.take_opt t.waitq with
  | None -> t.held <- false
  | Some resume -> resume ()

let locked t = t.held

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
