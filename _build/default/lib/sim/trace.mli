(** Bounded event traces.

    Subsystems (disk, getpage, putpage) record typed events here; tests
    assert on the exact I/O patterns of the paper's figures 3, 6 and 7,
    and the bench harness counts I/Os per category.  Disabled traces
    drop events at negligible cost. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Ring buffer; oldest events are dropped past [capacity]
    (default 65536). *)

val enable : 'a t -> bool -> unit
val enabled : 'a t -> bool

val emit : 'a t -> (unit -> 'a) -> unit
(** [emit t f] records [f ()] if the trace is enabled; [f] is not called
    otherwise. *)

val to_list : 'a t -> 'a list
(** Events oldest-first (only the retained window). *)

val length : 'a t -> int

val dropped : 'a t -> int
(** Events lost to ring overflow since the last [clear]. *)

val clear : 'a t -> unit
