(** Array-based binary min-heap.

    The event queue of the simulation engine is the hot path of every
    experiment, so the heap is a plain mutable array of boxed pairs with
    the usual sift-up/sift-down operations.  Keys are compared with a
    user-supplied total order; entries with equal keys pop in unspecified
    order (the engine adds a sequence number to keys to restore FIFO
    determinism). *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> ('k, 'v) t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val peek : ('k, 'v) t -> ('k * 'v) option
(** Smallest entry without removing it. *)

val pop : ('k, 'v) t -> ('k * 'v) option
(** Remove and return the smallest entry. *)

val clear : ('k, 'v) t -> unit

val to_list : ('k, 'v) t -> ('k * 'v) list
(** All entries in unspecified order (for debugging and tests). *)
