type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_state t =
  t.state <- Int64.add t.state golden;
  t.state

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t =
  let seed = Int64.to_int (int64 t) in
  { state = Int64.of_int seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value stays non-negative as a native int *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  (* 53 bits of mantissa *)
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992. *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
