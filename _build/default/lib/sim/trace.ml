type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  mutable on : bool;
  mutable dropped : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; q = Queue.create (); on = false; dropped = 0 }

let enable t b = t.on <- b
let enabled t = t.on

let emit t f =
  if t.on then begin
    if Queue.length t.q >= t.capacity then begin
      ignore (Queue.pop t.q);
      t.dropped <- t.dropped + 1
    end;
    Queue.push (f ()) t.q
  end

let to_list t = List.of_seq (Queue.to_seq t.q)
let length t = Queue.length t.q
let dropped t = t.dropped

let clear t =
  Queue.clear t.q;
  t.dropped <- 0
