(** Counting semaphores.

    Used for the paper's per-file write limit: "adding what is
    essentially a counting semaphore in the inode.  Each process
    decrements the semaphore when writing and increments it when the
    write is complete.  If the semaphore falls below zero, the writing
    process is put to sleep until one of the other writes completes."

    Our [acquire] blocks rather than letting the count go negative; the
    observable behaviour is the same and the invariant [value >= 0]
    becomes checkable. *)

type t

val create : Engine.t -> string -> int -> t
(** [create engine name n] has initial (and maximum observed) value [n].
    [n] must be non-negative. *)

val value : t -> int

val acquire : t -> ?n:int -> unit -> unit
(** Take [n] (default 1) units, blocking the calling process until the
    value is at least [n].  Waiters are served FIFO. *)

val try_acquire : t -> ?n:int -> unit -> bool
(** Non-blocking variant. *)

val release : t -> ?n:int -> unit -> unit
(** Return [n] (default 1) units and wake eligible waiters.  May be
    called from completion callbacks (outside any process). *)
