(** The simulated CPU.

    The paper's machine is a 20 MHz SPARCstation 1 (~12 MIPS).  Kernel
    code paths in the simulator do no real work; instead each path
    charges a calibrated number of microseconds (see {!Costs}) to the
    CPU.  The CPU is an exclusive resource: while one process is charged,
    others queue, which is how CPU contention shows up in multi-process
    workloads (MusBus) and how CPU cost steals time from the I/O pipeline
    in single-stream ones (the rotational-delay window).

    Charges are split into [Sys] and [User] so the Fig. 12 "system CPU
    seconds" comparison can be reported directly, and additionally keyed
    by a free-form label for per-path breakdowns. *)

type category = Sys | User

type t

val create : Engine.t -> t

val charge : t -> ?cat:category -> ?label:string -> Time.t -> unit
(** Occupy the CPU for the given duration of virtual time.  [cat]
    defaults to [Sys], [label] to ["other"].  Must be called from a
    process. *)

val sys_time : t -> Time.t
(** Total virtual time charged as [Sys]. *)

val user_time : t -> Time.t

val by_label : t -> (string * Time.t) list
(** Per-label totals, descending by time. *)

val reset : t -> unit
(** Zero all accounting (the resource itself is unaffected). *)
