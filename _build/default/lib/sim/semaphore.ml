type waiter = { need : int; resume : unit -> unit }

type t = {
  engine : Engine.t;
  name : string;
  mutable count : int;
  q : waiter Queue.t;
}

let create engine name n =
  if n < 0 then invalid_arg "Semaphore.create: negative initial value";
  { engine; name; count = n; q = Queue.create () }

let value t = t.count

(* Wake waiters strictly in FIFO order: the head waiter blocks later
   (smaller) requests behind it, exactly like a kernel sleep queue, so a
   large writer cannot be starved by a stream of small ones. *)
let wake t =
  let rec loop () =
    match Queue.peek_opt t.q with
    | Some w when w.need <= t.count ->
        ignore (Queue.pop t.q);
        t.count <- t.count - w.need;
        w.resume ();
        loop ()
    | Some _ | None -> ()
  in
  loop ()

let acquire t ?(n = 1) () =
  if n < 0 then invalid_arg "Semaphore.acquire: negative count";
  if Queue.is_empty t.q && t.count >= n then t.count <- t.count - n
  else
    Engine.suspend t.engine ~register:(fun resume ->
        Queue.push { need = n; resume } t.q)

let try_acquire t ?(n = 1) () =
  if Queue.is_empty t.q && t.count >= n then begin
    t.count <- t.count - n;
    true
  end
  else false

let release t ?(n = 1) () =
  if n < 0 then invalid_arg "Semaphore.release: negative count";
  t.count <- t.count + n;
  wake t
