(** Mutual exclusion between simulated processes (a binary semaphore with
    an owner check and a convenience [with_lock]). *)

type t

val create : Engine.t -> string -> t
val lock : t -> unit
val unlock : t -> unit
val locked : t -> bool

val with_lock : t -> (unit -> 'a) -> 'a
(** Runs the function with the mutex held; always unlocks, including on
    exceptions. *)
