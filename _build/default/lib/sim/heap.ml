type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  mutable arr : ('k * 'v) array;
  mutable len : int;
}

let create ~cmp = { cmp; arr = [||]; len = 0 }
let length h = h.len
let is_empty h = h.len = 0

let grow h =
  let cap = Array.length h.arr in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let narr = Array.make ncap h.arr.(0) in
  Array.blit h.arr 0 narr 0 h.len;
  h.arr <- narr

let swap h i j =
  let t = h.arr.(i) in
  h.arr.(i) <- h.arr.(j);
  h.arr.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (fst h.arr.(i)) (fst h.arr.(parent)) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.cmp (fst h.arr.(l)) (fst h.arr.(!smallest)) < 0 then
    smallest := l;
  if r < h.len && h.cmp (fst h.arr.(r)) (fst h.arr.(!smallest)) < 0 then
    smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h k v =
  if h.len = 0 && Array.length h.arr = 0 then h.arr <- Array.make 16 (k, v);
  if h.len = Array.length h.arr then grow h;
  h.arr.(h.len) <- (k, v);
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some h.arr.(0)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      sift_down h 0
    end;
    Some top
  end

let clear h = h.len <- 0

let to_list h =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (h.arr.(i) :: acc) in
  loop (h.len - 1) []
