(** Condition variables for simulated processes.

    Unlike kernel condition variables there is no associated mutex: the
    simulation is cooperatively scheduled, so a process that checks a
    predicate and then calls {!wait} cannot race with a signaller. *)

type t

val create : Engine.t -> string -> t
(** [create engine name] makes a condition variable; [name] appears in
    diagnostics. *)

val wait : t -> unit
(** Block the calling process until {!signal} or {!broadcast}. *)

val signal : t -> unit
(** Wake the longest-waiting process, if any.  The woken process resumes
    at the current virtual time, after the signaller's current event. *)

val broadcast : t -> unit
(** Wake all waiting processes (in FIFO order). *)

val waiters : t -> int
val name : t -> string
