lib/workload/extents.mli: Ufs
