lib/workload/metaops.ml: Bytes List Printf Sim Ufs Vfs
