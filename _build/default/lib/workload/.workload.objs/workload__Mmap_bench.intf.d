lib/workload/mmap_bench.mli: Sim Ufs
