lib/workload/mmap_bench.ml: Fun Sim Ufs Vfs Vm
