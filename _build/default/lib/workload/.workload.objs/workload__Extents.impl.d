lib/workload/extents.ml: Bytes List Ufs Vfs
