lib/workload/iobench.mli: Sim Ufs
