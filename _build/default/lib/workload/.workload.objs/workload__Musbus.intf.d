lib/workload/musbus.mli: Sim Ufs
