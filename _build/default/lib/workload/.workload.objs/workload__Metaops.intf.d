lib/workload/metaops.mli: Sim Ufs
