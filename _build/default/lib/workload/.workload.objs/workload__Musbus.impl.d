lib/workload/musbus.ml: Bytes Printf Sim Ufs Vfs
