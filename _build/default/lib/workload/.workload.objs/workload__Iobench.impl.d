lib/workload/iobench.ml: Array Bytes Fun List Sim Ufs Vm
