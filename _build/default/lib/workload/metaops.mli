(** Metadata-heavy workloads: the paper's B_ORDER motivation.

    "A long standing problem with UFS is that it does many operations,
    such as directory updates, synchronously...  The performance of
    commands like rm * would improve substantially."

    {!create_many} populates a directory with empty-ish files;
    {!remove_all} is "rm *".  Both count synchronous stalls through
    their elapsed virtual time. *)

type result = {
  ops : int;
  elapsed : Sim.Time.t;  (** until the last call returned *)
  elapsed_synced : Sim.Time.t;  (** until the disk queue drained *)
  ms_per_op : float;  (** user-perceived: from [elapsed] *)
  ms_per_op_synced : float;
}

val create_many :
  Ufs.Types.fs -> dir:string -> n:int -> ?bytes_per_file:int -> unit -> result
(** Create [n] files of [bytes_per_file] (default 1024) under [dir]
    (created if missing).  Must run inside a process. *)

val remove_all : Ufs.Types.fs -> dir:string -> result
(** Unlink every regular file in [dir]. *)
