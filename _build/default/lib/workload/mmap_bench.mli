(** The Figure 12 CPU benchmark.

    "The benchmark is similar to IObench, in fact it shows identical I/O
    rates, but uses the mmap interface to avoid the copying of data from
    the kernel to the user...  The cpu times show the seconds used by
    the CPU to read a 16MB file."

    We model an mmap sequential read as one page fault per page: each
    fault charges the fault cost and goes through ufs_getpage, but there
    is no block map/unmap and no copyout.  What remains is exactly the
    per-I/O overhead (bmap, driver, interrupt, read-ahead dispatch) that
    clustering amortises — the source of the paper's ~25% system-CPU
    saving. *)

type result = {
  file_mb : int;
  elapsed : Sim.Time.t;
  sys_cpu : Sim.Time.t;
  kb_per_sec : float;
}

val run : Ufs.Types.fs -> path:string -> file_mb:int -> result
(** The file must already exist with the full size (use
    {!Iobench.prepare}).  Must run inside a process. *)
