(** Allocator-quality measurements (the paper's §Allocator details).

    "We tried several tests, ranging from filling up an entire partition
    with one file to filling up the last 15% of a heavily fragmented
    /home partition.  In the best case, the average extent size was
    1.5MB in a 13MB file.  In the worst case, the average extent size
    was 62KB in a 16MB file." *)

type measurement = {
  file_bytes : int;
  extents : int;
  avg_extent_kb : float;
  largest_extent_kb : float;
  smallest_extent_kb : float;
}

val measure_path : Ufs.Types.fs -> string -> measurement
(** Extent statistics of an existing file. *)

val write_and_measure :
  Ufs.Types.fs -> path:string -> mb:int -> measurement
(** Write a fresh [mb]-megabyte file sequentially and measure its
    extents.  Stops early (and measures what was written) if the disk
    fills.  Must run inside a process. *)
