type measurement = {
  file_bytes : int;
  extents : int;
  avg_extent_kb : float;
  largest_extent_kb : float;
  smallest_extent_kb : float;
}

let of_extent_map ~file_bytes map =
  let sizes =
    List.map (fun (_, _, blocks) -> blocks * Ufs.Layout.bsize) map
  in
  let n = List.length sizes in
  let kb x = float_of_int x /. 1024. in
  if n = 0 then
    {
      file_bytes;
      extents = 0;
      avg_extent_kb = 0.;
      largest_extent_kb = 0.;
      smallest_extent_kb = 0.;
    }
  else
    {
      file_bytes;
      extents = n;
      avg_extent_kb = kb (List.fold_left ( + ) 0 sizes) /. float_of_int n;
      largest_extent_kb = kb (List.fold_left max 0 sizes);
      smallest_extent_kb = kb (List.fold_left min max_int sizes);
    }

let measure_path fs path =
  let map = Ufs.Fs.extent_map fs path in
  let st = Ufs.Fs.stat fs path in
  of_extent_map ~file_bytes:st.Ufs.Fs.st_size map

let write_and_measure fs ~path ~mb =
  let ip = Ufs.Fs.creat fs path in
  let buf = Bytes.make Ufs.Layout.bsize 'x' in
  let total = mb * 1024 * 1024 in
  let written = ref 0 in
  (try
     while !written < total do
       Ufs.Fs.write fs ip ~off:!written ~buf ~len:Ufs.Layout.bsize;
       written := !written + Ufs.Layout.bsize
     done
   with Vfs.Errno.Error (Vfs.Errno.ENOSPC, _) -> ());
  Ufs.Fs.fsync fs ip;
  let map = Ufs.Bmap.extent_map fs ip in
  Ufs.Iops.iput fs ip;
  of_extent_map ~file_bytes:!written map
