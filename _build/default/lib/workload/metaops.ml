type result = {
  ops : int;
  elapsed : Sim.Time.t;
  elapsed_synced : Sim.Time.t;
  ms_per_op : float;
  ms_per_op_synced : float;
}

let finish (fs : Ufs.Types.fs) ~t0 ~ops =
  let elapsed = Sim.Engine.now fs.Ufs.Types.engine - t0 in
  (* metadata consistency is only real once the (ordered) queue drains *)
  Ufs.Fs.sync fs;
  let elapsed_synced = Sim.Engine.now fs.Ufs.Types.engine - t0 in
  let per t = Sim.Time.to_ms_float t /. float_of_int (max 1 ops) in
  {
    ops;
    elapsed;
    elapsed_synced;
    ms_per_op = per elapsed;
    ms_per_op_synced = per elapsed_synced;
  }

let create_many (fs : Ufs.Types.fs) ~dir ~n ?(bytes_per_file = 1024) () =
  (try Ufs.Fs.mkdir fs dir with Vfs.Errno.Error (Vfs.Errno.EEXIST, _) -> ());
  let buf = Bytes.make bytes_per_file 'm' in
  let t0 = Sim.Engine.now fs.Ufs.Types.engine in
  for i = 0 to n - 1 do
    let ip = Ufs.Fs.creat fs (Printf.sprintf "%s/f%d" dir i) in
    if bytes_per_file > 0 then
      Ufs.Fs.write fs ip ~off:0 ~buf ~len:bytes_per_file;
    Ufs.Iops.iput fs ip
  done;
  finish fs ~t0 ~ops:n

let remove_all (fs : Ufs.Types.fs) ~dir =
  let dp = Ufs.Fs.namei fs dir in
  let names = ref [] in
  Ufs.Dir.iter fs dp (fun name _ ->
      if name <> "." && name <> ".." then names := name :: !names);
  Ufs.Iops.iput fs dp;
  let t0 = Sim.Engine.now fs.Ufs.Types.engine in
  let n = List.length !names in
  List.iter (fun name -> Ufs.Fs.unlink fs (dir ^ "/" ^ name)) !names;
  finish fs ~t0 ~ops:n
