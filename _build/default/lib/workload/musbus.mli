(** MusBus-like multi-user timesharing benchmark.

    The paper's sobering result: "the time-sharing benchmarks improved
    only slightly...  The benchmark, MusBus, was spending most of its
    time sleeping and the rest of the time running small programs such
    as date(1) and ls(1).  The largest I/O transfer done by MusBus was
    around 8KB which is the file system block size.  In other words,
    MusBus didn't move any substantial amount of data."

    Each simulated user loops over a script of small-program work units:
    think time (sleep), a burst of user CPU, create/write/read/delete a
    small file, and a directory listing.  Because no file exceeds one
    block, clustering has (and should have) almost nothing to bite on. *)

type config = {
  users : int;
  iterations : int;  (** work units per user *)
  think_ms_mean : float;
  small_file_bytes : int;  (** <= 8 KB, per the paper's observation *)
  seed : int;
}

val default_config : config

type result = {
  elapsed : Sim.Time.t;
  work_units : int;
  units_per_sec : float;
  sys_cpu : Sim.Time.t;
}

val run : Ufs.Types.fs -> config -> result
(** Spawns one process per user, waits for all to finish.  Must run
    inside a process. *)
