type config = {
  users : int;
  iterations : int;
  think_ms_mean : float;
  small_file_bytes : int;
  seed : int;
}

let default_config =
  {
    users = 8;
    iterations = 40;
    think_ms_mean = 100.;
    small_file_bytes = 4096;
    seed = 7;
  }

type result = {
  elapsed : Sim.Time.t;
  work_units : int;
  units_per_sec : float;
  sys_cpu : Sim.Time.t;
}

let user_script (fs : Ufs.Types.fs) cfg ~user ~rng ~done_ () =
  let engine = fs.Ufs.Types.engine in
  let cpu = fs.Ufs.Types.cpu in
  let dir = Printf.sprintf "/mus%d" user in
  (try Ufs.Fs.mkdir fs dir with Vfs.Errno.Error (Vfs.Errno.EEXIST, _) -> ());
  let buf = Bytes.make cfg.small_file_bytes 'm' in
  for i = 0 to cfg.iterations - 1 do
    (* think time: "spending most of its time sleeping" *)
    Sim.Engine.sleep engine
      (Sim.Time.of_ms_float (Sim.Rng.exponential rng ~mean:cfg.think_ms_mean));
    (* a small program runs: user-mode CPU burst (e.g. date(1)) *)
    Sim.Cpu.charge cpu ~cat:Sim.Cpu.User ~label:"musbus-user"
      (Sim.Time.ms (2 + Sim.Rng.int rng 8));
    (* create / write / read / delete a small file *)
    let path = Printf.sprintf "%s/tmp%d" dir i in
    let ip = Ufs.Fs.creat fs path in
    Ufs.Fs.write fs ip ~off:0 ~buf ~len:cfg.small_file_bytes;
    let rbuf = Bytes.create cfg.small_file_bytes in
    ignore (Ufs.Fs.read fs ip ~off:0 ~buf:rbuf ~len:cfg.small_file_bytes);
    Ufs.Iops.iput fs ip;
    Ufs.Fs.unlink fs path;
    (* ls(1) over the user's directory *)
    let dp = Ufs.Fs.namei fs dir in
    Ufs.Dir.iter fs dp (fun _ _ -> ());
    Ufs.Iops.iput fs dp
  done;
  done_ ()

let run (fs : Ufs.Types.fs) cfg =
  let engine = fs.Ufs.Types.engine in
  let cpu = fs.Ufs.Types.cpu in
  let t0 = Sim.Engine.now engine in
  let c0 = Sim.Cpu.sys_time cpu in
  let remaining = ref cfg.users in
  let all_done = Sim.Condition.create engine "musbus-done" in
  let rng = Sim.Rng.create ~seed:cfg.seed in
  for u = 0 to cfg.users - 1 do
    let user_rng = Sim.Rng.split rng in
    Sim.Engine.spawn engine
      ~name:(Printf.sprintf "mus-user%d" u)
      (user_script fs cfg ~user:u ~rng:user_rng ~done_:(fun () ->
           decr remaining;
           if !remaining = 0 then Sim.Condition.broadcast all_done))
  done;
  while !remaining > 0 do
    Sim.Condition.wait all_done
  done;
  let elapsed = Sim.Engine.now engine - t0 in
  let work_units = cfg.users * cfg.iterations in
  {
    elapsed;
    work_units;
    units_per_sec =
      (if elapsed = 0 then 0.
       else float_of_int work_units /. Sim.Time.to_sec_float elapsed);
    sys_cpu = Sim.Cpu.sys_time cpu - c0;
  }
