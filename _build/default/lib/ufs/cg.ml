type t = {
  cgx : int;
  fbitmap : bytes;
  ibitmap : bytes;
  mutable nbfree : int;
  mutable nffree : int;
  mutable nifree : int;
  mutable ndirs : int;
  mutable rotor : int;
  mutable dirty : bool;
}

let cg_begin (sb : Superblock.t) c = c * sb.Superblock.fpg

let cg_end (sb : Superblock.t) c =
  min ((c + 1) * sb.Superblock.fpg) sb.Superblock.nfrags

let header_frag sb c =
  if c = 0 then Layout.bootblocks_frags else cg_begin sb c

let inode_area_frag sb c = header_frag sb c + Layout.fpb

let inode_area_frags (sb : Superblock.t) =
  sb.Superblock.ipg / Layout.inodes_per_block * Layout.fpb

let data_begin sb c = inode_area_frag sb c + inode_area_frags sb

let dinode_loc (sb : Superblock.t) inum =
  let c = Superblock.cg_of_inum sb inum in
  let idx = inum mod sb.Superblock.ipg in
  let byte = idx * Layout.dinode_bytes in
  (inode_area_frag sb c + (byte / Layout.fsize), byte mod Layout.fsize)

let nfrags_of sb c = cg_end sb c - cg_begin sb c

let create_empty (sb : Superblock.t) c =
  let nf = nfrags_of sb c in
  {
    cgx = c;
    fbitmap = Bytes.make ((nf + 7) / 8) '\000';
    ibitmap = Bytes.make ((sb.Superblock.ipg + 7) / 8) '\000';
    nbfree = 0;
    nffree = 0;
    nifree = 0;
    ndirs = 0;
    rotor = 0;
    dirty = true;
  }

(* header block layout: counts at 0..32, rotor at 32, inode bitmap at 64,
   frag bitmap right after *)
let encode t (_sb : Superblock.t) =
  let b = Bytes.make Layout.bsize '\000' in
  Codec.put_u32 b 0 t.cgx;
  Codec.put_u32 b 4 t.nbfree;
  Codec.put_u32 b 8 t.nffree;
  Codec.put_u32 b 12 t.nifree;
  Codec.put_u32 b 16 t.ndirs;
  Codec.put_u32 b 32 t.rotor;
  let ioff = 64 in
  let foff = ioff + Bytes.length t.ibitmap in
  if foff + Bytes.length t.fbitmap > Layout.bsize then
    invalid_arg "Cg.encode: bitmaps do not fit the header block";
  Bytes.blit t.ibitmap 0 b ioff (Bytes.length t.ibitmap);
  Bytes.blit t.fbitmap 0 b foff (Bytes.length t.fbitmap);
  b

let decode b (sb : Superblock.t) c =
  let t = create_empty sb c in
  let cgx = Codec.get_u32 b 0 in
  if cgx <> c then Vfs.Errno.raise_err Vfs.Errno.EINVAL "cg: wrong group index";
  t.nbfree <- Codec.get_u32 b 4;
  t.nffree <- Codec.get_u32 b 8;
  t.nifree <- Codec.get_u32 b 12;
  t.ndirs <- Codec.get_u32 b 16;
  t.rotor <- Codec.get_u32 b 32;
  let ioff = 64 in
  let foff = ioff + Bytes.length t.ibitmap in
  Bytes.blit b ioff t.ibitmap 0 (Bytes.length t.ibitmap);
  Bytes.blit b foff t.fbitmap 0 (Bytes.length t.fbitmap);
  t.dirty <- false;
  t

let local t sb frag =
  let lo = cg_begin sb t.cgx and hi = cg_end sb t.cgx in
  if frag < lo || frag >= hi then
    invalid_arg
      (Printf.sprintf "Cg: frag %d outside group %d [%d,%d)" frag t.cgx lo hi);
  frag - lo

let get_bit bm i = Codec.get_u8 bm (i / 8) land (1 lsl (i mod 8)) <> 0

let set_bit bm i v =
  let byte = Codec.get_u8 bm (i / 8) in
  let mask = 1 lsl (i mod 8) in
  Codec.put_u8 bm (i / 8) (if v then byte lor mask else byte land lnot mask)

let frag_free t sb frag = get_bit t.fbitmap (local t sb frag)

let set_frag t sb frag ~free =
  set_bit t.fbitmap (local t sb frag) free;
  t.dirty <- true

let block_free t sb frag =
  let l = local t sb frag in
  if l mod Layout.fpb <> 0 then invalid_arg "Cg.block_free: not block-aligned";
  let rec all i = i = Layout.fpb || (get_bit t.fbitmap (l + i) && all (i + 1)) in
  all 0

let inode_free t idx = get_bit t.ibitmap idx

let set_inode t idx ~free =
  set_bit t.ibitmap idx free;
  t.dirty <- true

let recount t sb =
  let nf = nfrags_of sb t.cgx in
  let nblocks = nf / Layout.fpb in
  let nbfree = ref 0 and nffree = ref 0 in
  for b = 0 to nblocks - 1 do
    let base = b * Layout.fpb in
    let free_in_block = ref 0 in
    for i = 0 to Layout.fpb - 1 do
      if get_bit t.fbitmap (base + i) then incr free_in_block
    done;
    if !free_in_block = Layout.fpb then incr nbfree
    else nffree := !nffree + !free_in_block
  done;
  (* trailing partial block, if the group is short *)
  for i = nblocks * Layout.fpb to nf - 1 do
    if get_bit t.fbitmap i then incr nffree
  done;
  let nifree = ref 0 in
  for i = 0 to sb.Superblock.ipg - 1 do
    if get_bit t.ibitmap i then incr nifree
  done;
  (!nbfree, !nffree, !nifree)
