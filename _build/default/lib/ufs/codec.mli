(** Little-endian binary encoding helpers for the on-disk structures.

    All multi-byte integers on disk are little-endian.  [get_*]/[put_*]
    raise [Invalid_argument] on out-of-bounds access (via the underlying
    [Bytes] primitives), which fsck converts into corruption reports. *)

val get_u8 : bytes -> int -> int
val put_u8 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val put_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
(** Stored as 32 bits; returned as a non-negative OCaml [int]. *)

val put_u32 : bytes -> int -> int -> unit
(** Raises [Invalid_argument] if the value does not fit in 32 bits. *)

val get_u64 : bytes -> int -> int
val put_u64 : bytes -> int -> int -> unit

val get_string : bytes -> int -> int -> string
(** [get_string b off len] reads [len] bytes and trims trailing NULs. *)

val put_string : bytes -> int -> int -> string -> unit
(** [put_string b off len s] writes [s] NUL-padded to [len]; raises
    [Invalid_argument] if [s] is longer than [len]. *)
