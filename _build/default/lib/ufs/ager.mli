(** File system ageing: create/delete churn that fragments the free
    space, reproducing the paper's allocator stress test ("filling up
    the last 15% of a heavily fragmented /home partition").

    Each round creates files with a bimodal size distribution (lots of
    small files, a few large ones — a home-directory mix) until the
    target utilisation is reached, then deletes a random fraction and
    refills.  More rounds → a more scrambled free list. *)

type options = {
  target_util : float;  (** fraction of data capacity to fill, e.g. 0.85 *)
  churn_rounds : int;  (** delete/refill cycles *)
  delete_fraction : float;  (** fraction of files deleted per round *)
  small_max_kb : int;  (** small files are 1..small_max_kb KB *)
  large_max_kb : int;
  large_file_pct : int;  (** percentage of files that are large *)
  dir_fanout : int;  (** files per subdirectory *)
}

val defaults : options

val age : Types.fs -> rng:Sim.Rng.t -> ?opts:options -> unit -> int
(** Run the churn (inside a simulation process); returns the number of
    files left on the file system.  Files live under "/aged". *)
