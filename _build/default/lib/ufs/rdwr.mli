(** ufs_rdwr: the read(2)/write(2) path.

    Reads break the request into block-sized pieces, "map" each block
    (charged as {!Costs.t.map_block}), fault it in via {!Getpage} and
    copy it out.  On unmap, the {e free-behind} compromise applies: "if
    the file is in sequential read mode, at a large enough offset, and
    free memory is close to the low water mark that turns on the pager",
    the just-consumed page is handed to putpage with [P_FREE] — "the
    process that is causing the problem is the process finding the
    solution".

    Writes allocate through {!Bmap.ensure} (growing a fragment tail when
    needed), copy into the page, and hand each block to putpage with
    [P_DELAY], which is where write clustering happens.  Partial-block
    overwrites of existing data page the old contents in first; full
    block writes and writes beyond EOF do not.

    Reads of files <= 2 KB are served from the in-memory inode when
    {!Types.features.small_in_inode} is on (the "data in the inode"
    future-work item): one fragment-sized I/O, no page-cache traffic. *)

val rdwr : Types.fs -> Types.inode -> Vfs.Uio.t -> unit
(** Transfers until the uio is exhausted (or EOF on read: the residual
    count is left non-zero).  Takes the inode lock.  Must run in a
    process. *)
