(** Cylinder groups.

    Each group owns a span of [sb.fpg] fragments and carries, in its
    header block: summary counts, the inode allocation bitmap and the
    fragment free bitmap (bit set = fragment free, FFS convention).
    A {e block} is free iff its eight aligned fragment bits are all set.

    Group 0 additionally hosts the boot area and superblock at the very
    front of the disk; those fragments are marked allocated forever.

    The in-memory form is authoritative while mounted ([dirty] tracks
    divergence from disk); {!encode}/{!decode} move it to/from the
    header block. *)

type t = {
  cgx : int;
  fbitmap : bytes;  (** one bit per fragment of the group *)
  ibitmap : bytes;  (** one bit per inode; bit set = inode free *)
  mutable nbfree : int;
  mutable nffree : int;
  mutable nifree : int;
  mutable ndirs : int;
  mutable rotor : int;  (** last-allocated fragment (local), scan hint *)
  mutable dirty : bool;
}

val cg_begin : Superblock.t -> int -> int
(** First fragment of group [c]. *)

val cg_end : Superblock.t -> int -> int
(** One past the last fragment of group [c]. *)

val header_frag : Superblock.t -> int -> int
(** Fragment address of the group's header block. *)

val inode_area_frag : Superblock.t -> int -> int
val inode_area_frags : Superblock.t -> int

val data_begin : Superblock.t -> int -> int
(** First data fragment of the group. *)

val dinode_loc : Superblock.t -> int -> int * int
(** [dinode_loc sb inum] is [(frag, byte_offset_within_frag)] of the
    on-disk inode. *)

val create_empty : Superblock.t -> int -> t
(** A fresh group with {e everything} marked allocated; mkfs frees the
    data area explicitly so reserved fragments can never leak in. *)

val encode : t -> Superblock.t -> bytes
val decode : bytes -> Superblock.t -> int -> t

val frag_free : t -> Superblock.t -> int -> bool
(** [frag_free t sb frag] — [frag] is an absolute fragment address that
    must lie inside the group. *)

val set_frag : t -> Superblock.t -> int -> free:bool -> unit
val block_free : t -> Superblock.t -> int -> bool
(** The whole (block-aligned) block starting at the given fragment. *)

val inode_free : t -> int -> bool
(** By local inode index within the group. *)

val set_inode : t -> int -> free:bool -> unit

val recount : t -> Superblock.t -> int * int * int
(** Recompute (nbfree, nffree, nifree) from the bitmaps — fsck and
    property tests use this to cross-check the incremental counts. *)
