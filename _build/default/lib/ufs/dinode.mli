(** On-disk inodes ("the inode is initialized when the file is first
    read from disk from an on-disk structure called the dinode").

    128 bytes each, packed [Layout.inodes_per_block] to a block in each
    group's inode area.  Block pointers are fragment addresses; 0 means
    unallocated (a hole).  Fast symlinks store their target in the
    immediate-data area instead of allocating a block, exactly the trick
    the paper's "data in the inode" future-work item generalises. *)

type kind = Free | Reg | Dir | Lnk

type t = {
  mutable kind : kind;
  mutable nlink : int;
  mutable size : int;
  mutable blocks : int;  (** fragments actually allocated (incl. meta) *)
  mutable gen : int;
  db : int array;  (** [Layout.ndaddr] direct pointers *)
  ib : int array;  (** single, double indirect *)
  mutable immediate : string;
      (** fast-symlink target; [""] when unused.  Capacity
          {!immediate_capacity}. *)
}

val immediate_capacity : int

val empty : unit -> t

val encode : t -> bytes -> int -> unit
(** [encode t b off] packs into 128 bytes at [off]. *)

val decode : bytes -> int -> t

val kind_to_vnode : kind -> Vfs.Vnode.kind
(** Raises [Invalid_argument] on [Free]. *)
