type kind = Free | Reg | Dir | Lnk

type t = {
  mutable kind : kind;
  mutable nlink : int;
  mutable size : int;
  mutable blocks : int;
  mutable gen : int;
  db : int array;
  ib : int array;
  mutable immediate : string;
}

let immediate_capacity = 34

let empty () =
  {
    kind = Free;
    nlink = 0;
    size = 0;
    blocks = 0;
    gen = 0;
    db = Array.make Layout.ndaddr 0;
    ib = Array.make 2 0;
    immediate = "";
  }

let kind_code = function Free -> 0 | Reg -> 1 | Dir -> 2 | Lnk -> 3

let kind_of_code = function
  | 0 -> Free
  | 1 -> Reg
  | 2 -> Dir
  | 3 -> Lnk
  | n -> Vfs.Errno.raise_err Vfs.Errno.EINVAL (Printf.sprintf "dinode: kind %d" n)

let encode t b off =
  Bytes.fill b off Layout.dinode_bytes '\000';
  Codec.put_u16 b off (kind_code t.kind);
  Codec.put_u16 b (off + 2) t.nlink;
  Codec.put_u64 b (off + 4) t.size;
  Codec.put_u32 b (off + 12) t.blocks;
  Codec.put_u32 b (off + 16) t.gen;
  Array.iteri (fun i v -> Codec.put_u32 b (off + 20 + (4 * i)) v) t.db;
  Array.iteri (fun i v -> Codec.put_u32 b (off + 68 + (4 * i)) v) t.ib;
  Codec.put_u16 b (off + 76 + 16) (String.length t.immediate);
  Codec.put_string b (off + 94) immediate_capacity t.immediate

let decode b off =
  let t = empty () in
  t.kind <- kind_of_code (Codec.get_u16 b off);
  t.nlink <- Codec.get_u16 b (off + 2);
  t.size <- Codec.get_u64 b (off + 4);
  t.blocks <- Codec.get_u32 b (off + 12);
  t.gen <- Codec.get_u32 b (off + 16);
  for i = 0 to Layout.ndaddr - 1 do
    t.db.(i) <- Codec.get_u32 b (off + 20 + (4 * i))
  done;
  for i = 0 to 1 do
    t.ib.(i) <- Codec.get_u32 b (off + 68 + (4 * i))
  done;
  let ilen = Codec.get_u16 b (off + 92) in
  if ilen > immediate_capacity then
    Vfs.Errno.raise_err Vfs.Errno.EINVAL "dinode: immediate length";
  t.immediate <- Bytes.sub_string b (off + 94) ilen;
  t

let kind_to_vnode = function
  | Reg -> Vfs.Vnode.Reg
  | Dir -> Vfs.Vnode.Dir
  | Lnk -> Vfs.Vnode.Lnk
  | Free -> invalid_arg "Dinode.kind_to_vnode: free inode"
