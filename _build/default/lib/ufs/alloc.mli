(** The FFS block/fragment/inode allocator.

    The paper changed {e nothing} here — its claim is that the existing
    FFS allocator, asked to place blocks contiguously (rotdelay 0),
    already does well enough that preallocation is unnecessary, because
    it "keeps a percentage of the disk (usually 10%) free at all times"
    and "may use any free block at any time as long as it keeps a
    certain percentage free".  This module reproduces that allocator so
    the claim can be measured (experiment E5):

    - {!blkpref} implements the placement policy: first block near the
      inode's group; successive blocks contiguous, with a
      [rotdelay]-derived gap inserted after every [maxcontig] blocks
      when rotdelay is non-zero; a move to a fresh cylinder group every
      [maxbpg] blocks so one file cannot squat on a whole group;
    - {!alloc_block}/{!alloc_frags} honour the preference exactly when
      possible, then scan the preferred group from its rotor, then
      rotate through the other groups;
    - the [minfree] reserve is enforced: data allocations fail with
      [ENOSPC] once free space would drop below it.

    All bitmap work happens on the in-memory groups under [alloc_lock]
    and charges {!Costs.t.alloc_block} CPU; groups are flushed to disk
    by [Fs.sync]/unmount (cg buffers were cached in the buffer cache in
    the real kernel, too). *)

val total_free_frags : Types.fs -> int

val block_pass_us : Types.fs -> int
(** Media time for one logical block to pass under the head (outermost
    zone) — the unit in which [rotdelay] is converted to a gap. *)

val rotdelay_gap_blocks : Types.fs -> int
(** Blocks of gap implied by [sb.rotdelay_ms]; 0 when rotdelay is 0. *)

val blkpref : Types.fs -> Types.inode -> lbn:int -> prev_frag:int -> int
(** Preferred fragment address for logical block [lbn], given the
    physical address of the previous logical block ([0] if none).
    Returns 0 for "no preference". *)

val alloc_block : Types.fs -> Types.inode -> pref:int -> int
(** Allocate a full block; returns its fragment address.
    Raises [ENOSPC] when the reserve would be violated. *)

val alloc_frags : Types.fs -> Types.inode -> pref:int -> nfrags:int -> int
(** Allocate [nfrags] (1..7) contiguous fragments inside one block,
    preferring to split partial blocks before breaking whole ones. *)

val extend_frags :
  Types.fs -> Types.inode -> frag:int -> old_n:int -> new_n:int -> bool
(** Try to grow a fragment run in place; true on success. *)

val free_block : Types.fs -> Types.inode option -> int -> unit
(** Free a full block by fragment address.  [inode] (when given) has its
    [blocks] count reduced. *)

val free_frags : Types.fs -> Types.inode option -> frag:int -> nfrags:int -> unit

val alloc_inode : Types.fs -> dir_hint:int -> kind:Dinode.kind -> int
(** Allocate an inode number.  Directories go to a group with
    above-average free inodes and few directories; files go to the
    group of their parent directory ([dir_hint] is the parent's inum). *)

val free_inode : Types.fs -> int -> unit

val check_counts : Types.fs -> (string * int * int) list
(** Compare incremental per-group counts against bitmap recounts;
    returns discrepancies as [(what, expected, actual)] — empty when
    consistent.  Used by property tests and fsck. *)
