let bsize = 8192
let fsize = 1024
let fpb = bsize / fsize
let sector_bytes = 512
let sectors_per_frag = fsize / sector_bytes
let ndaddr = 12
let nindir = bsize / 4
let dinode_bytes = 128
let inodes_per_block = bsize / dinode_bytes
let max_lbn = ndaddr + nindir + (nindir * nindir)
let sb_frag = 8
let bootblocks_frags = 16
let frag_to_byte f = f * fsize
let frag_to_sector f = f * sectors_per_frag
let byte_to_frag b = b / fsize
let lbn_of_off off = off / bsize
let blk_off off = off mod bsize
let blocks_of_size size = (size + bsize - 1) / bsize
let frags_of_bytes n = (n + fsize - 1) / fsize

type level = Direct of int | Single of int | Double of int * int

let classify lbn =
  if lbn < 0 then invalid_arg "Layout.classify: negative lbn";
  if lbn < ndaddr then Direct lbn
  else
    let l = lbn - ndaddr in
    if l < nindir then Single l
    else
      let l = l - nindir in
      if l < nindir * nindir then Double (l / nindir, l mod nindir)
      else Vfs.Errno.raise_err Vfs.Errno.EFBIG "file too large"
