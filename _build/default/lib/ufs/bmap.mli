(** Logical-to-physical block mapping.

    This is the routine the paper modified: "bmap used to take a logical
    block number and return a physical block number.  We modified it to
    return a length as well...  The portion of the file starting at the
    logical block given to bmap is located at the physical block
    returned and continues for at least the length returned.  The length
    returned is at most maxcontig blocks long and is used as the
    effective cluster size by the caller."

    {!read} returns exactly that ⟨physical, length⟩ pair (with [None]
    for holes, whose length is the run of consecutive holes).  Contiguity
    scanning never crosses a pointer-structure boundary (direct array /
    indirect block), as in the real implementation.

    Indirect-block pointer blocks are fetched through {!Metabuf}, so a
    cold large-file bmap really costs a disk read; the optional per-inode
    last-run cache ({!Types.features.bmap_cache}) implements the paper's
    "bmap cache" future-work item.

    {!ensure} is the allocating flavour used by the write path.  It
    reproduces FFS fragment semantics: files small enough to live
    entirely in direct blocks keep their tail in fragments; growth tries
    to extend the fragment run in place and otherwise moves it (copying
    the data through the disk, as the real allocator's [realloccg]
    effectively does via the cache). *)

val block_frags : Types.inode -> lbn:int -> size:int -> int
(** Fragments logical block [lbn] occupies in a file of [size] bytes
    (fewer than a full block only for an eligible fragged tail). *)

val read : Types.fs -> Types.inode -> lbn:int -> int option * int
(** [(Some frag, len)]: the block lives at [frag] and the file is
    physically contiguous for [len] logical blocks starting there
    (capped at [max 1 maxcontig]).  [(None, len)]: a hole [len] blocks
    long.  Must run in a process (may read an indirect block). *)

val ensure : Types.fs -> Types.inode -> lbn:int -> new_size:int -> int
(** Make sure the block is allocated with enough fragments for a file of
    [new_size] bytes (which must be >= the current size), allocating or
    growing as needed, and return its fragment address.  The caller must
    not have updated [ip.size] yet: the old size determines the current
    tail allocation. *)

val grow_old_tail : Types.fs -> Types.inode -> new_size:int -> unit
(** If the current tail block is fragment-allocated but would no longer
    be an eligible tail at [new_size], expand it to whatever [new_size]
    requires first.  Call before extending a file past its old tail. *)

type chunk =
  | Data of { lbn : int; frag : int; nfrags : int }
  | Indirect of { frag : int }

val iter_allocated : Types.fs -> Types.inode -> (chunk -> unit) -> unit
(** Every allocated fragment run of the file, data and indirect blocks
    both — the truncation path walks this to free them. *)

val extent_map : Types.fs -> Types.inode -> (int * int * int) list
(** Physical extents [(start_lbn, start_frag, blocks)] — maximal runs of
    physically contiguous logical blocks, ignoring maxcontig.  This is
    the measurement behind the paper's allocator-quality numbers
    ("in the best case, the average extent size was 1.5MB..."). *)
