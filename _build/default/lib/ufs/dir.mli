(** Directories.

    A directory file is an array of fixed 64-byte entries:
    [u32 inum | u8 namelen | name bytes] — inum 0 marks a free slot.
    (Real FFS uses variable-length records; the fixed layout keeps the
    on-disk format simple while preserving what the experiments need:
    directory data goes through the same page-cache path as file data,
    and every directory {e update} is synchronous — the behaviour whose
    cost motivates the paper's proposed [B_ORDER] flag.) *)

val entry_size : int
val max_name : int

val check_name : string -> unit
(** Raises [EINVAL] on "", "/"-containing, or over-long names. *)

val lookup : Types.fs -> Types.inode -> string -> int option
(** Scan for a name; charges directory-scan CPU per block examined. *)

val enter : Types.fs -> Types.inode -> name:string -> inum:int -> unit
(** Add an entry (first free slot, extending the directory if needed)
    and write it synchronously.  Raises [EEXIST]. *)

val remove : Types.fs -> Types.inode -> string -> int
(** Delete an entry (synchronously), returning its inum.
    Raises [ENOENT]. *)

val rewrite : Types.fs -> Types.inode -> name:string -> inum:int -> unit
(** Point an existing entry at a different inode (rename of ".."). *)

val iter : Types.fs -> Types.inode -> (string -> int -> unit) -> unit
(** All live entries in directory order. *)

val count : Types.fs -> Types.inode -> int
(** Live entries, including "." and "..". *)

val is_empty : Types.fs -> Types.inode -> bool
(** Nothing but "." and "..". *)
