type t = {
  syscall : Sim.Time.t;
  map_block : Sim.Time.t;
  fault : Sim.Time.t;
  getpage : Sim.Time.t;
  putpage : Sim.Time.t;
  pagecache_lookup : Sim.Time.t;
  page_setup : Sim.Time.t;
  bmap : Sim.Time.t;
  alloc_block : Sim.Time.t;
  driver_submit : Sim.Time.t;
  intr : Sim.Time.t;
  copy_per_kb : Sim.Time.t;
  freebehind : Sim.Time.t;
  dir_op : Sim.Time.t;
}

let default =
  {
    syscall = Sim.Time.us 60;
    map_block = Sim.Time.us 280;
    fault = Sim.Time.us 160;
    getpage = Sim.Time.us 260;
    putpage = Sim.Time.us 180;
    pagecache_lookup = Sim.Time.us 30;
    page_setup = Sim.Time.us 330;
    bmap = Sim.Time.us 70;
    alloc_block = Sim.Time.us 250;
    driver_submit = Sim.Time.us 150;
    intr = Sim.Time.us 120;
    copy_per_kb = Sim.Time.us 230;
    freebehind = Sim.Time.us 60;
    dir_op = Sim.Time.us 150;
  }

let copy_cost t ~bytes = (bytes + 1023) / 1024 * t.copy_per_kb
