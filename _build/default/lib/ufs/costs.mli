(** Calibrated CPU costs of the kernel paths, in microseconds of the
    simulated ~12 MIPS CPU.

    These are the substitution for the paper's SPARCstation 1: every
    value approximates the instruction-path length of the corresponding
    SunOS 4.1 kernel code.  The headline claims depend only on {e which
    paths run per block vs per cluster}, not on the absolute values:

    - per-{e request} costs ([driver_submit], [intr], [bmap],
      [start_io]) are paid once per disk I/O, so clustering divides them
      by the cluster size;
    - per-{e block} costs ([map_block], [fault], [getpage],
      [pagecache_lookup]) are paid for every 8 KB regardless;
    - per-{e byte} costs ([copy_per_kb]) dominate read(2)/write(2) and
      are identical in both systems — which is why the paper needed the
      mmap variant of IObench to exhibit the CPU saving (Fig. 12).

    The defaults were tuned so that the unclustered configuration uses
    roughly half the CPU to move ~750 KB/s, matching "about half of a
    12 MIPS CPU was used to get half of the disk bandwidth of a
    1.5 MB/second disk". *)

type t = {
  syscall : Sim.Time.t;  (** read(2)/write(2) entry/exit *)
  map_block : Sim.Time.t;  (** map+unmap one block into KAS (rdwr) *)
  fault : Sim.Time.t;  (** page-fault entry/resolution per page *)
  getpage : Sim.Time.t;  (** ufs_getpage body per call *)
  putpage : Sim.Time.t;  (** ufs_putpage body per call *)
  pagecache_lookup : Sim.Time.t;  (** per page looked up *)
  page_setup : Sim.Time.t;  (** per page entered/filled from an I/O *)
  bmap : Sim.Time.t;  (** logical-to-physical translation *)
  alloc_block : Sim.Time.t;  (** allocator work per block/frag alloc *)
  driver_submit : Sim.Time.t;  (** build + queue one disk request *)
  intr : Sim.Time.t;  (** completion interrupt + biodone per request *)
  copy_per_kb : Sim.Time.t;  (** copyin/copyout, per KB *)
  freebehind : Sim.Time.t;  (** free-behind per page (cheap: no daemon) *)
  dir_op : Sim.Time.t;  (** directory scan/insert per entry block *)
}

val default : t

val copy_cost : t -> bytes:int -> Sim.Time.t
(** Copy cost of [bytes] at [copy_per_kb], rounded up per KB. *)
