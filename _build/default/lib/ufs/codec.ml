let get_u8 b off = Char.code (Bytes.get b off)
let put_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))
let get_u16 b off = Bytes.get_uint16_le b off
let put_u16 b off v = Bytes.set_uint16_le b off v

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

let put_u32 b off v =
  if v < 0 || v > 0xffffffff then invalid_arg "Codec.put_u32: out of range";
  Bytes.set_int32_le b off (Int32.of_int v)

let get_u64 b off =
  let v = Bytes.get_int64_le b off in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    invalid_arg "Codec.get_u64: out of range";
  Int64.to_int v

let put_u64 b off v =
  if v < 0 then invalid_arg "Codec.put_u64: negative";
  Bytes.set_int64_le b off (Int64.of_int v)

let get_string b off len =
  let s = Bytes.sub_string b off len in
  match String.index_opt s '\000' with
  | Some i -> String.sub s 0 i
  | None -> s

let put_string b off len s =
  if String.length s > len then invalid_arg "Codec.put_string: too long";
  Bytes.fill b off len '\000';
  Bytes.blit_string s 0 b off (String.length s)
