(** In-memory inode lifecycle: the inode cache, dinode read/write-back,
    truncation, allocation of fresh inodes, and the vnode glue that
    exposes an inode through the VFS ops record. *)

val iget : Types.fs -> int -> Types.inode
(** Find in the inode cache or read the dinode from disk (timed, through
    the metadata cache).  Bumps the reference count and registers the
    vnode's pageout flusher on first load.
    Raises [ENOENT] if the on-disk inode is free. *)

val iget_new :
  Types.fs -> dir_hint:int -> kind:Dinode.kind -> Types.inode
(** Allocate a fresh on-disk inode ([nlink] 0 — the caller links it),
    enter it in the cache with one reference. *)

val iput : Types.fs -> Types.inode -> unit
(** Drop a reference.  On the last reference of an unlinked file, the
    storage is released (truncate + free the inode). *)

val iupdat : Types.fs -> Types.inode -> sync:bool -> unit
(** Write the dinode back (through the metadata cache; [sync] forces it
    to disk now, as directory operations require). *)

val itrunc : Types.fs -> Types.inode -> unit
(** Truncate to length 0: discard the delayed-write accumulator, wait
    out in-flight writes, invalidate cached pages, free every data and
    indirect block. *)

val fsync_inode : Types.fs -> Types.inode -> unit
(** fsync(2): push delayed writes, wait for all I/O, write the inode
    and any dirty metadata back synchronously. *)

val vnode_of : Types.fs -> Types.inode -> Vfs.Vnode.t
(** The (cached) vnode exposing this inode via {!Vfs.Vnode.ops}. *)
