type t = {
  fs : Types.fs;
  interval : Sim.Time.t;
  mutable running : bool;
  mutable passes : int;
}

let rec daemon t () =
  Sim.Engine.sleep t.fs.Types.engine t.interval;
  if t.running then begin
    Fs.sync t.fs;
    t.passes <- t.passes + 1;
    daemon t ()
  end

let start fs ?(interval = Sim.Time.sec 30) () =
  if interval <= 0 then invalid_arg "Syncer.start: interval";
  let t = { fs; interval; running = true; passes = 0 } in
  Sim.Engine.spawn fs.Types.engine ~name:"update" (daemon t);
  t

let stop t = t.running <- false
let passes t = t.passes
