(** On-disk layout constants and address arithmetic.

    The format follows BSD FFS structure (simplified field-wise, not
    semantically): 8 KB logical blocks composed of eight 1 KB fragments,
    fragment-granularity allocation bitmaps, cylinder groups each holding
    a header block, a run of inode blocks and a data area.  All disk
    addresses stored in inodes and indirect blocks are {e fragment
    numbers} absolute from the start of the disk (address 0 is the boot
    block and therefore doubles as the "hole" marker, as in FFS).

    Inode block-pointer geometry: [ndaddr] direct pointers, one single
    indirect, one double indirect. *)

val bsize : int
(** Logical block size: 8192 bytes. *)

val fsize : int
(** Fragment size: 1024 bytes. *)

val fpb : int
(** Fragments per block: 8. *)

val sector_bytes : int
(** 512. *)

val sectors_per_frag : int

val ndaddr : int
(** Direct pointers per inode: 12. *)

val nindir : int
(** Pointers per indirect block: bsize / 4 = 2048. *)

val dinode_bytes : int
(** 128. *)

val inodes_per_block : int

val max_lbn : int
(** Largest addressable logical block number + 1. *)

val sb_frag : int
(** Fragment address of the superblock (8, i.e. byte 8192). *)

val bootblocks_frags : int
(** Fragments reserved at the front of the disk (boot + superblock). *)

val frag_to_byte : int -> int
val frag_to_sector : int -> int
val byte_to_frag : int -> int

val lbn_of_off : int -> int
(** Logical block containing a byte offset. *)

val blk_off : int -> int
(** Offset within its logical block. *)

val blocks_of_size : int -> int
(** Number of logical blocks needed for a file of the given size. *)

val frags_of_bytes : int -> int
(** Fragments needed to hold the given byte count (rounded up). *)

type level = Direct of int | Single of int | Double of int * int
(** Where a logical block's pointer lives: in the inode's direct array,
    at index [i] of the single-indirect block, or at [(i, j)] through
    the double-indirect chain. *)

val classify : int -> level
(** Raises [Vfs.Errno.Error EFBIG] past the double-indirect range. *)
