open Types

type options = {
  target_util : float;
  churn_rounds : int;
  delete_fraction : float;
  small_max_kb : int;
  large_max_kb : int;
  large_file_pct : int;
  dir_fanout : int;
}

let defaults =
  {
    target_util = 0.85;
    churn_rounds = 4;
    delete_fraction = 0.5;
    small_max_kb = 64;
    large_max_kb = 1024;
    large_file_pct = 10;
    dir_fanout = 100;
  }

let pick_size rng opts =
  let kb =
    if Sim.Rng.int rng 100 < opts.large_file_pct then
      1 + Sim.Rng.int rng opts.large_max_kb
    else 1 + Sim.Rng.int rng opts.small_max_kb
  in
  kb * 1024

let utilization (fs : fs) =
  let total = Superblock.data_frags fs.sb in
  let free = Alloc.total_free_frags fs in
  float_of_int (total - free) /. float_of_int total

let age fs ~rng ?(opts = defaults) () =
  (try Fs.mkdir fs "/aged" with Vfs.Errno.Error (Vfs.Errno.EEXIST, _) -> ());
  let live = ref [] in
  let counter = ref 0 in
  let buf = Bytes.make Layout.bsize 'a' in
  let make_file () =
    let n = !counter in
    incr counter;
    let dir = Printf.sprintf "/aged/d%d" (n / opts.dir_fanout) in
    if n mod opts.dir_fanout = 0 then (
      try Fs.mkdir fs dir with Vfs.Errno.Error (Vfs.Errno.EEXIST, _) -> ());
    let path = Printf.sprintf "%s/f%d" dir n in
    let size = pick_size rng opts in
    (try
       let ip = Fs.creat fs path in
       let rec fill off =
         if off < size then begin
           let len = min Layout.bsize (size - off) in
           Fs.write fs ip ~off ~buf ~len;
           fill (off + len)
         end
       in
       fill 0;
       Putpage.push_delayed fs ip ~sync:false ();
       Iops.iput fs ip;
       live := path :: !live;
       true
     with Vfs.Errno.Error (Vfs.Errno.ENOSPC, _) -> false)
  in
  let fill_to_target () =
    let continue = ref true in
    while !continue && utilization fs < opts.target_util do
      if not (make_file ()) then continue := false
    done
  in
  let delete_some () =
    let files = Array.of_list !live in
    Sim.Rng.shuffle rng files;
    let ndel =
      int_of_float (float_of_int (Array.length files) *. opts.delete_fraction)
    in
    let deleted = Array.sub files 0 ndel in
    let dead = Hashtbl.create (max 16 ndel) in
    Array.iter
      (fun p ->
        Fs.unlink fs p;
        Hashtbl.replace dead p ())
      deleted;
    live := List.filter (fun p -> not (Hashtbl.mem dead p)) !live
  in
  fill_to_target ();
  for _ = 1 to opts.churn_rounds do
    delete_some ();
    fill_to_target ()
  done;
  Fs.sync fs;
  List.length !live
