lib/ufs/fs.mli: Costs Dinode Disk Sim Types Vm
