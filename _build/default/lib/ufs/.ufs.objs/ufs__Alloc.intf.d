lib/ufs/alloc.mli: Dinode Types
