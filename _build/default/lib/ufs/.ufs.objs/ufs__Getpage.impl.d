lib/ufs/getpage.ml: Bmap Costs Io Layout List Sim Types Vm
