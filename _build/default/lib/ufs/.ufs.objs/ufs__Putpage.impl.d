lib/ufs/putpage.ml: Bmap Costs Io Layout List Sim Types Vfs Vm
