lib/ufs/superblock.mli: Format
