lib/ufs/putpage.mli: Types Vfs Vm
