lib/ufs/metabuf.ml: Bytes Costs Disk Hashtbl Layout List Sim
