lib/ufs/syncer.ml: Fs Sim Types
