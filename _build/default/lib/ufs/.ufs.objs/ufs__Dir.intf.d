lib/ufs/dir.mli: Types
