lib/ufs/costs.ml: Sim
