lib/ufs/layout.mli:
