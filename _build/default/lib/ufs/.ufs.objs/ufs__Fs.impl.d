lib/ufs/fs.ml: Array Bmap Bytes Cg Codec Costs Dinode Dir Disk Hashtbl Io Iops Layout List Metabuf Option Putpage Rdwr Sim String Superblock Types Vfs
