lib/ufs/rdwr.ml: Bmap Bytes Costs Dinode Disk Getpage Io Layout Putpage Sim Types Vfs Vm
