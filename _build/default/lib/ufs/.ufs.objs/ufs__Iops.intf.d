lib/ufs/iops.mli: Dinode Types Vfs
