lib/ufs/dinode.mli: Vfs
