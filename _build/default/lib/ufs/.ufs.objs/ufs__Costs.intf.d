lib/ufs/costs.mli: Sim
