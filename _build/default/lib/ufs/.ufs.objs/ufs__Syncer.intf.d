lib/ufs/syncer.mli: Sim Types
