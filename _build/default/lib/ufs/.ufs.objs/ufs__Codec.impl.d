lib/ufs/codec.ml: Bytes Char Int32 Int64 String
