lib/ufs/getpage.mli: Types Vm
