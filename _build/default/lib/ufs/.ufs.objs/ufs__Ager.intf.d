lib/ufs/ager.mli: Sim Types
