lib/ufs/io.mli: Types Vm
