lib/ufs/ager.ml: Alloc Array Bytes Fs Hashtbl Iops Layout List Printf Putpage Sim Superblock Types Vfs
