lib/ufs/bmap.mli: Types
