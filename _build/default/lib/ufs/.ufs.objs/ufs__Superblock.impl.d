lib/ufs/superblock.ml: Bytes Codec Format Layout Vfs
