lib/ufs/rdwr.mli: Types Vfs
