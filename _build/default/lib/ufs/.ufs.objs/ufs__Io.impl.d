lib/ufs/io.ml: Bmap Bytes Costs Disk Layout List Sim Types Vm
