lib/ufs/metabuf.mli: Costs Disk Sim
