lib/ufs/dir.ml: Bytes Codec Costs Dinode Iops Layout Printf Putpage Rdwr String Types Vfs
