lib/ufs/iops.ml: Alloc Array Bmap Cg Dinode Getpage Hashtbl Io Layout List Metabuf Printf Putpage Rdwr Sim Types Vfs Vm
