lib/ufs/layout.ml: Vfs
