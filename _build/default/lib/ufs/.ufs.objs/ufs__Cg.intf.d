lib/ufs/cg.mli: Superblock
