lib/ufs/types.ml: Array Cg Costs Dinode Disk Hashtbl Layout Metabuf Printf Sim Superblock Vfs Vm
