lib/ufs/codec.mli:
