lib/ufs/fsck.mli: Disk Format
