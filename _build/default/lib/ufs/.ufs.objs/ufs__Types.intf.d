lib/ufs/types.mli: Cg Costs Dinode Disk Hashtbl Metabuf Sim Superblock Vfs Vm
