lib/ufs/fsck.ml: Array Bytes Cg Codec Dinode Dir Disk Format Layout List Queue Superblock Types
