lib/ufs/dinode.ml: Array Bytes Codec Layout Printf String Vfs
