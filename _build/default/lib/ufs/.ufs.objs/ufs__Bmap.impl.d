lib/ufs/bmap.ml: Alloc Array Bytes Codec Costs Disk Layout List Metabuf Superblock Types Vfs
