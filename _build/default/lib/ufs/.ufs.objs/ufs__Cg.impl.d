lib/ufs/cg.ml: Bytes Codec Layout Printf Superblock Vfs
