lib/ufs/alloc.ml: Array Cg Costs Dinode Disk Layout List Option Printf Sim Superblock Types Vfs
