(** ufs_getpage: the read side of the paper.

    Without clustering it is the Figure 2/3 algorithm: find the page,
    page it in if missing, and when the access matches the [nextr]
    prediction, start a one-block read-ahead on the following page.

    With clustering it is the Figure 6 algorithm: a sequential miss
    pages in a whole bmap-sized cluster with one disk request, and every
    time an access lands on [nextrio] (the start of the last prefetched
    cluster — initially 0, so read-ahead starts at the beginning of the
    file, the paper's beneficial heuristic) the next cluster is
    prefetched asynchronously and [nextrio] advances by the current
    cluster's actual (bmap-returned) size — "the code that sets up the
    next read bases its calculations on the returned rather than desired
    cluster size".

    The "random clustering" future-work item is honoured when
    {!Types.features.getpage_hint} is set: a miss inside a request whose
    total size ([hint]) spans several blocks clusters even when the
    sequential predictor disagrees.

    The "UFS_HOLE" item: on a cache hit the bmap call (needed only to
    detect holes) is skipped when {!Types.features.skip_bmap_if_no_holes}
    and the file provably has no holes. *)

val getpage :
  Types.fs -> Types.inode -> off:int -> len:int -> hint:int -> Vm.Page.t list
(** Return valid pages covering [off, off+len) ([off] page-aligned,
    range within the file).  Runs the read-ahead heuristics exactly once
    per covered page, in order.  Must run in a process. *)

val has_holes : Types.inode -> bool
(** Conservative hole detector: compares allocated fragments with the
    file size. *)
