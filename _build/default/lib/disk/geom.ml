type zone = { cyls : int; spt : int }

type t = {
  sector_bytes : int;
  nheads : int;
  zones : zone list;
  rpm : int;
  track_skew : int;
  cyl_skew : int;
  total_sectors : int;
  ncyls : int;
}

type chs = { cyl : int; head : int; sector : int; spt : int }

let create ?(sector_bytes = 512) ?(rpm = 3600) ?(track_skew = 4) ?(cyl_skew = 13)
    ~nheads ~zones () =
  if nheads <= 0 then invalid_arg "Geom.create: nheads";
  if zones = [] then invalid_arg "Geom.create: no zones";
  List.iter
    (fun z ->
      if z.cyls <= 0 || z.spt <= 0 then invalid_arg "Geom.create: bad zone")
    zones;
  let total_sectors =
    List.fold_left (fun acc z -> acc + (z.cyls * nheads * z.spt)) 0 zones
  in
  let ncyls = List.fold_left (fun acc z -> acc + z.cyls) 0 zones in
  { sector_bytes; nheads; zones; rpm; track_skew; cyl_skew; total_sectors; ncyls }

(* The paper's drive was a 400 MB 3.5-inch IBM SCSI disk (the 0661
   "Lightning": ~4316 rpm, 14 heads).  48 sectors/track at 4316 rpm
   gives a ~1.73 MB/s media rate and a 13.9 ms rotation — consistent
   with the paper's "1.5MB/second disk" and "about 16 milliseconds"
   rotation figures. *)
let sun0400 = create ~rpm:4316 ~nheads:14 ~zones:[ { cyls = 1220; spt = 48 } ] ()

let zoned_example =
  create ~nheads:9 ~track_skew:6 ~cyl_skew:16
    ~zones:
      [
        { cyls = 500; spt = 72 };
        { cyls = 600; spt = 54 };
        { cyls = 500; spt = 40 };
      ]
    ()

let rotation_time t = 60 * 1_000_000 / t.rpm
let sector_time t ~spt = rotation_time t / spt

let to_chs t s =
  if s < 0 || s >= t.total_sectors then
    invalid_arg (Printf.sprintf "Geom.to_chs: sector %d out of range" s);
  let rec loop cyl_base sec_base = function
    | [] -> assert false
    | z :: rest ->
        let zone_sectors = z.cyls * t.nheads * z.spt in
        if s < sec_base + zone_sectors then begin
          let rel = s - sec_base in
          let per_cyl = t.nheads * z.spt in
          let cyl = cyl_base + (rel / per_cyl) in
          let in_cyl = rel mod per_cyl in
          { cyl; head = in_cyl / z.spt; sector = in_cyl mod z.spt; spt = z.spt }
        end
        else loop (cyl_base + z.cyls) (sec_base + zone_sectors) rest
  in
  loop 0 0 t.zones

let capacity_bytes t = t.total_sectors * t.sector_bytes

let track_start_angle t chs =
  let skew_sectors = (chs.head * t.track_skew) + (chs.cyl * t.cyl_skew) in
  float_of_int (skew_sectors mod chs.spt) /. float_of_int chs.spt

let sector_angle t chs =
  let a =
    track_start_angle t chs +. (float_of_int chs.sector /. float_of_int chs.spt)
  in
  a -. Float.of_int (int_of_float a)

let angle_at t now =
  let rot = rotation_time t in
  float_of_int (now mod rot) /. float_of_int rot

let sectors_in_track_after _t chs = chs.spt - chs.sector
