type kind = Read | Write

type t = {
  kind : kind;
  sector : int;
  count : int;
  buf : bytes;
  buf_off : int;
  ordered : bool;
  id : int;
  mutable enq_at : Sim.Time.t;
  mutable start_at : Sim.Time.t;
  mutable finish_at : Sim.Time.t;
  mutable completed : bool;
  mutable callbacks : (unit -> unit) list;
  mutable waiters : (unit -> unit) list;
  mutable absorbed_into : t option;
}

let next_id = ref 0

let make ?(ordered = false) ~kind ~sector ~count ~buf ~buf_off () =
  if sector < 0 || count <= 0 then invalid_arg "Request.make: bad extent";
  if buf_off < 0 || buf_off + (count * 512) > Bytes.length buf then
    invalid_arg "Request.make: buffer too small";
  incr next_id;
  {
    kind;
    sector;
    count;
    buf;
    buf_off;
    ordered;
    id = !next_id;
    enq_at = 0;
    start_at = 0;
    finish_at = 0;
    completed = false;
    callbacks = [];
    waiters = [];
    absorbed_into = None;
  }

let on_complete t f =
  if t.completed then f () else t.callbacks <- f :: t.callbacks

let wait engine t =
  if not t.completed then
    Sim.Engine.suspend engine ~register:(fun resume ->
        t.waiters <- resume :: t.waiters)

let complete t ~now =
  assert (not t.completed);
  t.completed <- true;
  t.finish_at <- now;
  let cbs = List.rev t.callbacks and ws = List.rev t.waiters in
  t.callbacks <- [];
  t.waiters <- [];
  List.iter (fun f -> f ()) cbs;
  List.iter (fun w -> w ()) ws

let set_enq_at t at = t.enq_at <- at
let set_start_at t at = t.start_at <- at
let latency t = t.finish_at - t.enq_at
let end_sector t = t.sector + t.count
