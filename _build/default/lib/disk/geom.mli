(** Disk geometry and rotational-position arithmetic.

    The simulated drive is the circa-1990 400 MB SCSI disk of the
    paper's testbed: constant or zoned ("variable geometry") sectors per
    track, 3600 rpm, with track and cylinder {e skew} so that sequential
    transfers crossing a track or cylinder boundary do not lose a full
    revolution — exactly the property that makes contiguous allocation
    pay off at the media rate.

    Addresses are logical sector numbers (0-based, 512-byte sectors),
    mapped to ⟨cylinder, head, sector-within-track⟩ in zone order. *)

type zone = {
  cyls : int;  (** number of cylinders in this zone *)
  spt : int;  (** sectors per track in this zone *)
}

type t = private {
  sector_bytes : int;
  nheads : int;  (** tracks per cylinder *)
  zones : zone list;  (** outermost first *)
  rpm : int;
  track_skew : int;  (** sectors of offset added per head step *)
  cyl_skew : int;  (** sectors of offset added per cylinder step *)
  total_sectors : int;
  ncyls : int;
}

type chs = { cyl : int; head : int; sector : int; spt : int }
(** Decoded address; [spt] is the sectors-per-track of the containing
    zone, [sector] is within-track. *)

val create :
  ?sector_bytes:int ->
  ?rpm:int ->
  ?track_skew:int ->
  ?cyl_skew:int ->
  nheads:int ->
  zones:zone list ->
  unit ->
  t
(** Defaults: 512-byte sectors, 3600 rpm, track skew 4, cylinder
    skew 13. *)

val sun0400 : t
(** The default drive, modelled on the paper's 400 MB 3.5-inch IBM SCSI
    disk (IBM 0661): 1220 cylinders x 14 heads x 48 sectors = 410 MB at
    4316 rpm — media rate ~1.73 MB/s, 13.9 ms rotation. *)

val zoned_example : t
(** A variable-geometry drive (more sectors on outer tracks), used by
    the extent-size-varies ablation. *)

val rotation_time : t -> Sim.Time.t
(** Time for one revolution. *)

val sector_time : t -> spt:int -> Sim.Time.t
(** Time for one sector to pass under the head in a zone with [spt]
    sectors per track. *)

val to_chs : t -> int -> chs
(** Decode a logical sector number.  Raises [Invalid_argument] if out of
    range. *)

val capacity_bytes : t -> int

val track_start_angle : t -> chs -> float
(** Angle (fraction of a revolution, in [0,1)) at which within-track
    sector 0 of the given track begins, accounting for skew. *)

val sector_angle : t -> chs -> float
(** Angle at which the given sector begins. *)

val angle_at : t -> Sim.Time.t -> float
(** Platter angle at a virtual time. *)

val sectors_in_track_after : t -> chs -> int
(** Number of sectors from the given sector to the end of its track,
    inclusive of the sector itself. *)
