type t = { settle_us : int; coeff_us : float; max_us : int }

let create ?(settle_us = 2000) ?(coeff_us = 480.0) ?(max_us = 30000) () =
  { settle_us; coeff_us; max_us }

let default = create ()

let time t ~from_cyl ~to_cyl =
  let d = abs (to_cyl - from_cyl) in
  if d = 0 then 0
  else
    let v = t.settle_us + int_of_float (t.coeff_us *. sqrt (float_of_int d)) in
    min v t.max_us

let average t ~ncyls = time t ~from_cyl:0 ~to_cyl:(ncyls / 3)
