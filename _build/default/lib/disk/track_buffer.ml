type t = {
  mutable track : (int * int) option;
  mutable hits : int;
  mutable misses : int;
}

let create () = { track = None; hits = 0; misses = 0 }
let valid t = t.track <> None
let holds t ~cyl ~head = t.track = Some (cyl, head)
let fill t ~cyl ~head = t.track <- Some (cyl, head)
let invalidate t = t.track <- None

let invalidate_if t ~cyl ~head =
  if holds t ~cyl ~head then invalidate t

let hits t = t.hits
let misses t = t.misses
let record_hit t = t.hits <- t.hits + 1
let record_miss t = t.misses <- t.misses + 1
