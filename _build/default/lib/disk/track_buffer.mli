(** Controller track buffer.

    "A track buffer is a memory cache the size of one track commonly
    found on newer disks...  When a read request for a block is sent to
    the disk, the entire track is read into the buffer.  If successive
    blocks are on the same track, they are serviced immediately from the
    track buffer."  (McVoy & Kleiman, §File system tuning.)

    We model validity/timing only — the data itself always comes from
    the store.  A mechanical read leaves the whole containing track
    buffered; a later read wholly inside that track is a hit, served at
    SCSI-bus speed instead of mechanically.  Writes are write-through
    and invalidate the buffer when they overlap the buffered track
    (conservative). *)

type t

val create : unit -> t
val valid : t -> bool

val holds : t -> cyl:int -> head:int -> bool
(** Is the given track currently buffered? *)

val fill : t -> cyl:int -> head:int -> unit
(** Record that the controller has read this whole track. *)

val invalidate : t -> unit

val invalidate_if : t -> cyl:int -> head:int -> unit
(** Invalidate only if the given track is the buffered one. *)

val hits : t -> int
val misses : t -> int

val record_hit : t -> unit
val record_miss : t -> unit
