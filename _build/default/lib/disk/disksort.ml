type policy = Fifo | Elevator

type t = { policy : policy; mutable q : Request.t list (* arrival order *) }

let create policy = { policy; q = [] }
let length t = List.length t.q
let is_empty t = t.q = []
let enqueue t r = t.q <- t.q @ [ r ]

(* Requests that may legally be served now: the arrival-order prefix up
   to (excluding) the first B_ORDER request — or just that ordered
   request when it is at the head of the queue. *)
let eligible t =
  match t.q with
  | [] -> []
  | first :: _ when first.Request.ordered -> [ first ]
  | q ->
      let rec prefix = function
        | [] -> []
        | r :: _ when r.Request.ordered -> []
        | r :: rest -> r :: prefix rest
      in
      prefix q

let remove t r = t.q <- List.filter (fun x -> x.Request.id <> r.Request.id) t.q

let next t ~head_sector =
  match eligible t with
  | [] -> None
  | [ r ] ->
      remove t r;
      Some r
  | candidates ->
      let chosen =
        match t.policy with
        | Fifo -> List.hd candidates
        | Elevator ->
            let ahead =
              List.filter (fun r -> r.Request.sector >= head_sector) candidates
            in
            let best_of rs =
              List.fold_left
                (fun acc r ->
                  match acc with
                  | None -> Some r
                  | Some b ->
                      if r.Request.sector < b.Request.sector then Some r
                      else acc)
                None rs
            in
            let pick =
              match best_of ahead with Some r -> Some r | None -> best_of candidates
            in
            (match pick with Some r -> r | None -> assert false)
      in
      remove t chosen;
      Some chosen

let absorb_contiguous t (r : Request.t) =
  let chain_lo = ref r.Request.sector
  and chain_hi = ref (Request.end_sector r) in
  let absorbed = ref [] in
  let progress = ref true in
  while !progress do
    progress := false;
    let cands = eligible t in
    let extend c =
      if c.Request.kind = r.Request.kind then
        if c.Request.sector = !chain_hi then begin
          chain_hi := Request.end_sector c;
          absorbed := c :: !absorbed;
          remove t c;
          progress := true
        end
        else if Request.end_sector c = !chain_lo then begin
          chain_lo := c.Request.sector;
          absorbed := c :: !absorbed;
          remove t c;
          progress := true
        end
    in
    List.iter extend cands
  done;
  List.sort (fun a b -> compare a.Request.sector b.Request.sector) !absorbed

let iter t f = List.iter f t.q
