let chunk_bytes = 8192

type t = { size : int; chunks : (int, bytes) Hashtbl.t }

let create ~size =
  if size <= 0 then invalid_arg "Store.create: size must be positive";
  { size; chunks = Hashtbl.create 1024 }

let size t = t.size

let check t off len =
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg
      (Printf.sprintf "Store: access [%d,%d) outside [0,%d)" off (off + len)
         t.size)

let read t ~off ~len dst dst_off =
  check t off len;
  let pos = ref off and remaining = ref len and d = ref dst_off in
  while !remaining > 0 do
    let ci = !pos / chunk_bytes in
    let coff = !pos mod chunk_bytes in
    let n = min !remaining (chunk_bytes - coff) in
    (match Hashtbl.find_opt t.chunks ci with
    | Some c -> Bytes.blit c coff dst !d n
    | None -> Bytes.fill dst !d n '\000');
    pos := !pos + n;
    d := !d + n;
    remaining := !remaining - n
  done

let write t ~off ~len src src_off =
  check t off len;
  let pos = ref off and remaining = ref len and s = ref src_off in
  while !remaining > 0 do
    let ci = !pos / chunk_bytes in
    let coff = !pos mod chunk_bytes in
    let n = min !remaining (chunk_bytes - coff) in
    let c =
      match Hashtbl.find_opt t.chunks ci with
      | Some c -> c
      | None ->
          let c = Bytes.make chunk_bytes '\000' in
          Hashtbl.add t.chunks ci c;
          c
    in
    Bytes.blit src !s c coff n;
    pos := !pos + n;
    s := !s + n;
    remaining := !remaining - n
  done

let chunks_allocated t = Hashtbl.length t.chunks

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let chunks =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.chunks []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      List.iter
        (fun (ci, data) ->
          seek_out oc (ci * chunk_bytes);
          output_bytes oc data)
        chunks;
      (* pin the file length to the full device size *)
      if pos_out oc < t.size then begin
        seek_out oc (t.size - 1);
        output_char oc '\000'
      end)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      let t = create ~size in
      let buf = Bytes.create chunk_bytes in
      let nchunks = (size + chunk_bytes - 1) / chunk_bytes in
      for ci = 0 to nchunks - 1 do
        let n = min chunk_bytes (size - (ci * chunk_bytes)) in
        really_input ic buf 0 n;
        if n < chunk_bytes then Bytes.fill buf n (chunk_bytes - n) '\000';
        if not (Bytes.for_all (fun c -> c = '\000') buf) then
          Hashtbl.replace t.chunks ci (Bytes.sub buf 0 chunk_bytes)
      done;
      t)

let copy_into src dst =
  if src.size <> dst.size then invalid_arg "Store.copy_into: size mismatch";
  Hashtbl.reset dst.chunks;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst.chunks k (Bytes.copy v)) src.chunks
