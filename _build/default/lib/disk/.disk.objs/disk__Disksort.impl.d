lib/disk/disksort.ml: List Request
