lib/disk/request.ml: Bytes List Sim
