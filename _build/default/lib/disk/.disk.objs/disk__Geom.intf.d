lib/disk/geom.mli: Sim
