lib/disk/track_buffer.ml:
