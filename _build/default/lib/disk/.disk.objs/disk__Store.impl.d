lib/disk/store.ml: Bytes Fun Hashtbl List Printf
