lib/disk/store.mli:
