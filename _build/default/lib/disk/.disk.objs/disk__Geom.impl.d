lib/disk/geom.ml: Float List Printf
