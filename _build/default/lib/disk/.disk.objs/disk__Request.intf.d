lib/disk/request.mli: Sim
