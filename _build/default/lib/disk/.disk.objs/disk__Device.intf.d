lib/disk/device.mli: Disksort Geom Request Seek Sim Store
