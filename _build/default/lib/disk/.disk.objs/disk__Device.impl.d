lib/disk/device.ml: Bytes Disksort Geom List Request Seek Sim Store Track_buffer
