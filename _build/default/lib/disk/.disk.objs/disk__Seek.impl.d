lib/disk/seek.ml:
