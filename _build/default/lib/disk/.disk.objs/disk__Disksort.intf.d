lib/disk/disksort.mli: Request
