lib/disk/seek.mli: Sim
