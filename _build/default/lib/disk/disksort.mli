(** The driver request queue and its scheduling policies.

    [Fifo] services requests in arrival order.  [Elevator] is classic
    BSD [disksort()]: a one-way ascending sweep — among queued requests
    the one with the smallest sector at or ahead of the current head
    position is served next; when none remain ahead, the sweep restarts
    from the lowest queued sector.  This is the mechanism behind the
    paper's write-limit trade-off: an unbounded queue lets the elevator
    turn scattered writes into two long sweeps (FRU config "D" beats
    "A"), while a bounded queue sorts only a window.

    The paper's proposed [B_ORDER] flag is honoured by both policies: no
    request may be served across a pending ordered request in either
    direction.

    The queue also implements optional {e driver-level clustering} (the
    paper's rejected "driver clustering" alternative, kept for the E8
    ablation): at service time, queued requests of the same kind that
    are physically contiguous with the chosen one are absorbed into a
    single larger transfer. *)

type policy = Fifo | Elevator

type t

val create : policy -> t
val length : t -> int
val is_empty : t -> bool
val enqueue : t -> Request.t -> unit

val next : t -> head_sector:int -> Request.t option
(** Remove and return the next request to service given the current
    head position.  [None] if empty. *)

val absorb_contiguous : t -> Request.t -> Request.t list
(** For driver clustering: remove and return all queued requests that
    chain contiguously after (or before) [r] with the same kind,
    respecting order barriers.  Returned in sector order; does not
    include [r] itself. *)

val iter : t -> (Request.t -> unit) -> unit
(** Iterate queued requests in arrival order (for stats/tests). *)
