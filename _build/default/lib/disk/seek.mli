(** Head seek-time model.

    The usual three-piece characterisation of a voice-coil actuator:
    zero for no movement, a settle-dominated minimum for short seeks,
    and an [a + b*sqrt(distance)] curve (acceleration-limited) capped at
    a maximum for full-stroke seeks.  Defaults give roughly a 13 ms
    average seek over a 1600-cylinder drive — period-typical. *)

type t

val create :
  ?settle_us:int -> ?coeff_us:float -> ?max_us:int -> unit -> t
(** [settle_us] (default 2000) is charged for any non-zero seek;
    [coeff_us] (default 480.0) multiplies [sqrt cylinders];
    [max_us] (default 30000) caps the total. *)

val default : t

val time : t -> from_cyl:int -> to_cyl:int -> Sim.Time.t
(** Seek duration between two cylinders; zero if equal. *)

val average : t -> ncyls:int -> Sim.Time.t
(** Mean seek time between two uniformly random cylinders, estimated by
    the standard third-stroke approximation. *)
