examples/quickstart.mli:
