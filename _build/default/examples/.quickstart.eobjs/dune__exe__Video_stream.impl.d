examples/video_stream.ml: Bytes Clusterfs List Printf Sim Ufs Vm
