examples/fragmentation.ml: Bytes Clusterfs Disk Printf Sim Ufs Vm Workload
