examples/quickstart.ml: Bytes Clusterfs Format List Printf Sim Ufs Vm
