examples/database.mli:
