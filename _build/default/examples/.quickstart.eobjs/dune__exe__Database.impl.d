examples/database.ml: Bytes Clusterfs List Printf Sim Ufs Vm
