examples/timesharing.mli:
