examples/video_stream.mli:
