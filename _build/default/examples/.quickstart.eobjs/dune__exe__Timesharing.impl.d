examples/timesharing.ml: Clusterfs List Printf Sim Workload
