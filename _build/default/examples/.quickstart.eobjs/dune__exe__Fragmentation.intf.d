examples/fragmentation.mli:
