(* The MusBus lesson: a time-sharing workload of small programs barely
   notices clustering, because it never moves more than a block of data
   at a time — "MusBus didn't move any substantial amount of data."

   Eight simulated users think, run small programs, and do small-file
   work, on the old and the new file system.

   Run with:  dune exec examples/timesharing.exe *)

let () =
  let cfg =
    { Workload.Musbus.default_config with Workload.Musbus.users = 8; iterations = 30 }
  in
  Printf.printf
    "MusBus-like timesharing: %d users x %d work units (think, compute,\n\
     create/write/read/delete a %dKB file, list a directory)\n\n"
    cfg.Workload.Musbus.users cfg.Workload.Musbus.iterations
    (cfg.Workload.Musbus.small_file_bytes / 1024);
  let results =
    List.map
      (fun (label, config) ->
        let m = Clusterfs.Machine.create config in
        let r =
          Clusterfs.Machine.run m (fun m ->
              Workload.Musbus.run m.Clusterfs.Machine.fs cfg)
        in
        (label, r))
      [
        ("old UFS (D)", Clusterfs.Config.config_d);
        ("clustered UFS (A)", Clusterfs.Config.config_a);
      ]
  in
  Printf.printf "%-18s %14s %12s %12s\n" "configuration" "work-units/s"
    "elapsed" "sys CPU";
  List.iter
    (fun (label, (r : Workload.Musbus.result)) ->
      Printf.printf "%-18s %14.2f %12s %12s\n" label
        r.Workload.Musbus.units_per_sec
        (Sim.Time.to_string r.Workload.Musbus.elapsed)
        (Sim.Time.to_string r.Workload.Musbus.sys_cpu))
    results;
  match results with
  | [ (_, old_r); (_, new_r) ] ->
      Printf.printf
        "\nimprovement: %.1f%% — the paper found the same: \"the time-sharing\n\
         benchmarks improved only slightly\"\n"
        (100.
        *. (new_r.Workload.Musbus.units_per_sec
            /. old_r.Workload.Musbus.units_per_sec
           -. 1.))
  | _ -> ()
