(* The paper's behaviour, replayed: read-ahead patterns of figures 3
   and 6, write clustering of figure 7, free-behind, write limits and
   the further-work features. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let bsize = Ufs.Layout.bsize

let mkfs_cluster3 =
  { Helpers.small_mkfs with Ufs.Fs.maxcontig = 3 }

let with_traced_file ?(mkfs = mkfs_cluster3) ?features ?memory_mb ~blocks f =
  Helpers.in_machine ~mkfs ?features ?memory_mb (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/t" in
      let buf = Bytes.make bsize 'c' in
      for i = 0 to blocks - 1 do
        Ufs.Fs.write fs ip ~off:(i * bsize) ~buf ~len:bsize
      done;
      Ufs.Fs.fsync fs ip;
      (* cold cache, fresh predictor *)
      Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
      Ufs.Types.reset_rstreams ip;
      Sim.Trace.enable fs.Ufs.Types.trace true;
      Fun.protect
        ~finally:(fun () -> Ufs.Iops.iput fs ip)
        (fun () -> f m fs ip))

let read_blocks fs ip ~count =
  let buf = Bytes.create bsize in
  for i = 0 to count - 1 do
    ignore (Ufs.Fs.read fs ip ~off:(i * bsize) ~buf ~len:bsize)
  done

let reads_of_trace fs =
  List.filter_map
    (function
      | Ufs.Types.Ev_read_sync { lbn; blocks } -> Some (`Sync, lbn, blocks)
      | Ufs.Types.Ev_read_ahead { lbn; blocks } -> Some (`Ahead, lbn, blocks)
      | _ -> None)
    (Sim.Trace.to_list fs.Ufs.Types.trace)

(* ---------- figure 3: classic one-block read-ahead ---------- *)

let test_figure3_pattern () =
  with_traced_file ~features:Ufs.Types.features_sunos41 ~blocks:6
    (fun _m fs ip ->
      read_blocks fs ip ~count:6;
      (* "the first fault will start an I/O read for page 0 and also
         start up an I/O read ahead on page 1.  The next fault will find
         page 1 in memory and will start up a read on page 2..." *)
      let expected =
        [ (`Sync, 0, 1); (`Ahead, 1, 1); (`Ahead, 2, 1); (`Ahead, 3, 1);
          (`Ahead, 4, 1); (`Ahead, 5, 1) ]
      in
      check_bool "figure 3 I/O pattern" true (reads_of_trace fs = expected);
      ignore ip)

(* ---------- figure 6: clustered read-ahead ---------- *)

let test_figure6_pattern () =
  with_traced_file ~blocks:12 (fun _m fs ip ->
      read_blocks fs ip ~count:12;
      (* maxcontig = 3: sync read of cluster [0,3), then async cluster
         reads of [3,6), [6,9), [9,12) each triggered at a cluster
         boundary fault *)
      let expected =
        [ (`Sync, 0, 3); (`Ahead, 3, 3); (`Ahead, 6, 3); (`Ahead, 9, 3) ]
      in
      check_bool "figure 6 I/O pattern" true (reads_of_trace fs = expected);
      (* the stream's read-ahead frontier advanced cluster by cluster *)
      let w = Option.get (Ufs.Types.mru_rstream ip) in
      check_int "nextrio at last cluster" (9 * bsize) w.Ufs.Types.s_ra_off)

let test_figure6_respects_bmap_length () =
  (* a fragmented file: the allocator is forced to split the file, so
     clusters must shrink to what bmap returns — "the code that sets up
     the next read bases its calculations on the returned rather than
     desired cluster size" *)
  with_traced_file ~blocks:0 (fun _m fs ip ->
      let buf = Bytes.make bsize 'd' in
      (* allocate a blocker block right after each of the file's blocks
         so no two of them can be physically adjacent *)
      for i = 0 to 8 do
        Ufs.Fs.write fs ip ~off:(i * bsize) ~buf ~len:bsize;
        ignore (Ufs.Alloc.alloc_block fs ip ~pref:0)
      done;
      Ufs.Fs.fsync fs ip;
      Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
      Ufs.Types.reset_rstreams ip;
      Sim.Trace.clear fs.Ufs.Types.trace;
      read_blocks fs ip ~count:9;
      let reads = reads_of_trace fs in
      check_bool "single-block reads on a fragmented file" true
        (List.for_all (fun (_, _, blocks) -> blocks = 1) reads);
      check_bool "still reads everything" true
        (List.fold_left (fun a (_, _, b) -> a + b) 0 reads = 9))

(* ---------- figure 7: clustered writes ---------- *)

let test_figure7_pattern () =
  with_traced_file ~blocks:0 (fun _m fs ip ->
      Sim.Trace.clear fs.Ufs.Types.trace;
      let delayed0 = fs.Ufs.Types.stats.Ufs.Types.delayed_pages in
      let buf = Bytes.make bsize 'w' in
      for i = 0 to 5 do
        Ufs.Fs.write fs ip ~off:(i * bsize) ~buf ~len:bsize
      done;
      Ufs.Fs.fsync fs ip;
      let pushes =
        List.filter_map
          (function
            | Ufs.Types.Ev_write_push { off; bytes; _ } -> Some (off, bytes)
            | _ -> None)
          (Sim.Trace.to_list fs.Ufs.Types.trace)
      in
      (* "lie, lie, push 0,1,2 | lie, lie, push 3,4,5" *)
      Alcotest.(check (list (pair int int)))
        "figure 7 push pattern"
        [ (0, 3 * bsize); (3 * bsize, 3 * bsize) ]
        pushes;
      check_int "six delayed pages" 6
        (fs.Ufs.Types.stats.Ufs.Types.delayed_pages - delayed0))

let test_write_nonsequential_flushes () =
  with_traced_file ~blocks:0 (fun _m fs ip ->
      Sim.Trace.clear fs.Ufs.Types.trace;
      let buf = Bytes.make bsize 'w' in
      (* one block at 0, then a jump: the accumulated page must be
         pushed before restarting with the new one *)
      Ufs.Fs.write fs ip ~off:0 ~buf ~len:bsize;
      Ufs.Fs.write fs ip ~off:(10 * bsize) ~buf ~len:bsize;
      let pushes =
        List.filter_map
          (function
            | Ufs.Types.Ev_write_push { off; bytes; _ } -> Some (off, bytes)
            | _ -> None)
          (Sim.Trace.to_list fs.Ufs.Types.trace)
      in
      Alcotest.(check (list (pair int int)))
        "old page pushed on non-sequential write"
        [ (0, bsize) ]
        pushes;
      check_int "new page accumulating" (10 * bsize) ip.Ufs.Types.delayoff)

let test_cluster_write_single_io () =
  (* the whole point: 3 blocks leave as ONE disk request *)
  with_traced_file ~blocks:0 (fun _m fs ip ->
      let p0 = fs.Ufs.Types.stats.Ufs.Types.push_blocks in
      let pio0 = fs.Ufs.Types.stats.Ufs.Types.push_ios in
      let buf = Bytes.make bsize 'w' in
      for i = 0 to 2 do
        Ufs.Fs.write fs ip ~off:(i * bsize) ~buf ~len:bsize
      done;
      Ufs.Fs.fsync fs ip;
      check_int "one data write request" 1
        (fs.Ufs.Types.stats.Ufs.Types.push_ios - pio0);
      check_int "covering three blocks" 3
        (fs.Ufs.Types.stats.Ufs.Types.push_blocks - p0))

(* ---------- free-behind ---------- *)

let test_free_behind () =
  (* 2 MB machine (256 frames), 3 MB file: streaming read with
     free-behind keeps memory fresh without the daemon *)
  with_traced_file ~memory_mb:2 ~blocks:384 (fun m fs ip ->
      read_blocks fs ip ~count:384;
      check_bool "free-behind fired" true
        (fs.Ufs.Types.stats.Ufs.Types.freebehind_pages > 0);
      check_bool "pageout daemon stayed idle" true
        ((Vm.Pageout.stats m.Clusterfs.Machine.pageout).Vm.Pageout.freed
        < fs.Ufs.Types.stats.Ufs.Types.freebehind_pages);
      (* data integrity unaffected *)
      let buf = Bytes.create bsize in
      ignore (Ufs.Fs.read fs ip ~off:(100 * bsize) ~buf ~len:bsize);
      check_bool "data still correct" true (Bytes.get buf 0 = 'c'))

let test_no_free_behind_when_disabled () =
  let features =
    { Ufs.Types.features_clustered with Ufs.Types.free_behind = false }
  in
  with_traced_file ~memory_mb:2 ~features ~blocks:384 (fun _m fs ip ->
      read_blocks fs ip ~count:384;
      check_int "no free-behind" 0 fs.Ufs.Types.stats.Ufs.Types.freebehind_pages;
      ignore ip)

(* ---------- write limit ---------- *)

let test_write_limit_bounds_outstanding () =
  let features =
    { Ufs.Types.features_clustered with Ufs.Types.write_limit = Some (64 * 1024) }
  in
  with_traced_file ~features ~memory_mb:8 ~blocks:0 (fun m fs ip ->
      (* watch outstanding write bytes while streaming out 2 MB *)
      let peak = ref 0 in
      let finished = ref false in
      let e = m.Clusterfs.Machine.engine in
      Sim.Engine.spawn e (fun () ->
          while not !finished do
            peak := max !peak ip.Ufs.Types.outstanding_writes;
            Sim.Engine.sleep e (Sim.Time.ms 1)
          done);
      let buf = Bytes.make bsize 'w' in
      for i = 0 to 255 do
        Ufs.Fs.write fs ip ~off:(i * bsize) ~buf ~len:bsize
      done;
      Ufs.Fs.fsync fs ip;
      finished := true;
      check_bool
        (Printf.sprintf "outstanding writes peaked at %d <= limit+cluster"
           !peak)
        true
        (!peak <= (64 * 1024) + Ufs.Types.cluster_bytes fs);
      check_bool "writer actually slept on the limit" true
        (fs.Ufs.Types.stats.Ufs.Types.wlimit_sleeps > 0))

let test_no_write_limit_unbounded () =
  let features =
    { Ufs.Types.features_clustered with Ufs.Types.write_limit = None }
  in
  with_traced_file ~features ~blocks:0 (fun _m fs ip ->
      let buf = Bytes.make bsize 'w' in
      for i = 0 to 63 do
        Ufs.Fs.write fs ip ~off:(i * bsize) ~buf ~len:bsize
      done;
      check_int "never slept" 0 fs.Ufs.Types.stats.Ufs.Types.wlimit_sleeps;
      Ufs.Fs.fsync fs ip)

(* ---------- further-work features ---------- *)

let test_small_file_in_inode () =
  let features =
    { Ufs.Types.features_clustered with Ufs.Types.small_in_inode = true }
  in
  Helpers.in_machine ~features (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/small" in
      let data = Bytes.of_string "tiny file contents" in
      Ufs.Fs.write fs ip ~off:0 ~buf:data ~len:(Bytes.length data);
      Ufs.Fs.fsync fs ip;
      Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
      let buf = Bytes.create 64 in
      let n = Ufs.Fs.read fs ip ~off:0 ~buf ~len:64 in
      check_int "short read at EOF" (Bytes.length data) n;
      check_bool "served from the inode" true
        (fs.Ufs.Types.stats.Ufs.Types.idata_reads > 0);
      Alcotest.(check string)
        "contents" "tiny file contents"
        (Bytes.sub_string buf 0 n);
      (* a write invalidates the inode copy and data stays coherent *)
      Ufs.Fs.write fs ip ~off:0 ~buf:(Bytes.of_string "TINY") ~len:4;
      let n2 = Ufs.Fs.read fs ip ~off:0 ~buf ~len:64 in
      Alcotest.(check string)
        "coherent after write" "TINY file contents"
        (Bytes.sub_string buf 0 n2);
      Ufs.Iops.iput fs ip)

let test_ufs_hole_skips_bmap () =
  let base_reads fs ip =
    let c0 = fs.Ufs.Types.stats.Ufs.Types.bmap_calls in
    read_blocks fs ip ~count:8;
    fs.Ufs.Types.stats.Ufs.Types.bmap_calls - c0
  in
  let with_feature skip =
    let features =
      { Ufs.Types.features_clustered with Ufs.Types.skip_bmap_if_no_holes = skip }
    in
    with_traced_file ~features ~blocks:8 (fun _m fs ip ->
        (* warm the cache, then re-read: hits only *)
        read_blocks fs ip ~count:8;
        base_reads fs ip)
  in
  let with_skip = with_feature true and without = with_feature false in
  check_bool
    (Printf.sprintf "bmap calls on cached re-read: %d with skip < %d without"
       with_skip without)
    true (with_skip < without)

let test_getpage_hint_clusters_random_reads () =
  let features =
    { Ufs.Types.features_clustered with Ufs.Types.getpage_hint = true }
  in
  with_traced_file ~features ~blocks:30 (fun m fs ip ->
      let r0 = (Disk.Blkdev.stats m.Clusterfs.Machine.dev).Disk.Blkdev.reads in
      (* a 24 KB read at a random (non-predicted) offset *)
      let buf = Bytes.create (3 * bsize) in
      ignore (Ufs.Fs.read fs ip ~off:(17 * bsize) ~buf ~len:(3 * bsize));
      let r1 = (Disk.Blkdev.stats m.Clusterfs.Machine.dev).Disk.Blkdev.reads in
      check_int "one clustered I/O for a 24KB random read" 1 (r1 - r0);
      ignore ip)

(* data integrity under clustering: random reads over a patterned file
   always return the right bytes *)
let prop_clustered_read_integrity =
  Helpers.qtest ~count:20 "clustered reads return correct data"
    QCheck.(list_of_size (Gen.int_range 1 15) (pair (int_bound 200) (int_bound 20000)))
    (fun reads ->
      Helpers.in_machine (fun m ->
          let fs = m.Clusterfs.Machine.fs in
          let ip = Ufs.Fs.creat fs "/q" in
          let size = 220 * 1024 in
          let chunk = 32 * 1024 in
          let rec fill off =
            if off < size then begin
              let len = min chunk (size - off) in
              let buf = Bytes.init len (fun i -> Helpers.pattern_byte ~seed:9 (off + i)) in
              Ufs.Fs.write fs ip ~off ~buf ~len;
              fill (off + len)
            end
          in
          fill 0;
          Ufs.Fs.fsync fs ip;
          Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
          let ok = ref true in
          List.iter
            (fun (kb, raw_len) ->
              let off = kb * 1024 mod size in
              let len = max 1 (min raw_len (size - off)) in
              let buf = Bytes.create len in
              let n = Ufs.Fs.read fs ip ~off ~buf ~len in
              if n <> len then ok := false
              else
                for i = 0 to len - 1 do
                  if Bytes.get buf i <> Helpers.pattern_byte ~seed:9 (off + i)
                  then ok := false
                done)
            reads;
          Ufs.Iops.iput fs ip;
          !ok))

let suites =
  [
    ( "ufs-cluster",
      [
        Alcotest.test_case "figure 3: block read-ahead" `Quick
          test_figure3_pattern;
        Alcotest.test_case "figure 6: clustered read-ahead" `Quick
          test_figure6_pattern;
        Alcotest.test_case "figure 6: bmap-sized clusters" `Quick
          test_figure6_respects_bmap_length;
        Alcotest.test_case "figure 7: clustered writes" `Quick
          test_figure7_pattern;
        Alcotest.test_case "non-sequential write flushes" `Quick
          test_write_nonsequential_flushes;
        Alcotest.test_case "cluster = one disk I/O" `Quick
          test_cluster_write_single_io;
        Alcotest.test_case "free-behind" `Quick test_free_behind;
        Alcotest.test_case "free-behind disabled" `Quick
          test_no_free_behind_when_disabled;
        Alcotest.test_case "write limit bounds queue" `Quick
          test_write_limit_bounds_outstanding;
        Alcotest.test_case "no write limit" `Quick test_no_write_limit_unbounded;
        Alcotest.test_case "small file in inode" `Quick test_small_file_in_inode;
        Alcotest.test_case "UFS_HOLE skips bmap" `Quick test_ufs_hole_skips_bmap;
        Alcotest.test_case "getpage hint clusters" `Quick
          test_getpage_hint_clusters_random_reads;
        prop_clustered_read_integrity;
      ] );
  ]
