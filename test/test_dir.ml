(* Directory internals: name validation, slot reuse, entry iteration,
   rewrite, emptiness, the update daemon, and store save/load. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_dir f =
  Helpers.in_machine (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      Ufs.Fs.mkdir fs "/w";
      let dp = Ufs.Fs.namei fs "/w" in
      Fun.protect
        ~finally:(fun () -> Ufs.Iops.iput fs dp)
        (fun () -> f m fs dp))

let test_name_validation () =
  List.iter
    (fun bad ->
      check_bool
        (Printf.sprintf "%S rejected" bad)
        true
        (try
           Ufs.Dir.check_name bad;
           false
         with Vfs.Errno.Error (Vfs.Errno.EINVAL, _) -> true))
    [ ""; "a/b"; String.make 60 'x' ];
  Ufs.Dir.check_name (String.make Ufs.Dir.max_name 'y')

let test_enter_lookup_remove () =
  with_dir (fun _m fs dp ->
      Ufs.Dir.enter fs dp ~name:"alpha" ~inum:77;
      Ufs.Dir.enter fs dp ~name:"beta" ~inum:88;
      check_bool "lookup alpha" true (Ufs.Dir.lookup fs dp "alpha" = Some 77);
      check_bool "lookup missing" true (Ufs.Dir.lookup fs dp "gamma" = None);
      check_bool "duplicate rejected" true
        (try
           Ufs.Dir.enter fs dp ~name:"alpha" ~inum:99;
           false
         with Vfs.Errno.Error (Vfs.Errno.EEXIST, _) -> true);
      check_int "remove returns inum" 77 (Ufs.Dir.remove fs dp "alpha");
      check_bool "gone" true (Ufs.Dir.lookup fs dp "alpha" = None);
      check_bool "remove missing raises" true
        (try
           ignore (Ufs.Dir.remove fs dp "alpha");
           false
         with Vfs.Errno.Error (Vfs.Errno.ENOENT, _) -> true))

let test_slot_reuse () =
  with_dir (fun _m fs dp ->
      Ufs.Dir.enter fs dp ~name:"one" ~inum:11;
      Ufs.Dir.enter fs dp ~name:"two" ~inum:22;
      let size_before = dp.Ufs.Types.size in
      ignore (Ufs.Dir.remove fs dp "one");
      Ufs.Dir.enter fs dp ~name:"replacement" ~inum:33;
      check_int "freed slot reused, no growth" size_before dp.Ufs.Types.size;
      (* the free slot scan must not shadow a duplicate later in the dir *)
      check_bool "duplicate past free slot still caught" true
        (try
           ignore (Ufs.Dir.remove fs dp "two");
           Ufs.Dir.enter fs dp ~name:"replacement" ~inum:44;
           false
         with Vfs.Errno.Error (Vfs.Errno.EEXIST, _) -> true))

let test_rewrite_and_iter () =
  with_dir (fun _m fs dp ->
      Ufs.Dir.enter fs dp ~name:"x" ~inum:5;
      Ufs.Dir.rewrite fs dp ~name:"x" ~inum:6;
      check_bool "rewritten" true (Ufs.Dir.lookup fs dp "x" = Some 6);
      let seen = ref [] in
      Ufs.Dir.iter fs dp (fun name inum -> seen := (name, inum) :: !seen);
      check_bool "iter sees . .. x" true
        (List.length !seen = 3 && List.mem ("x", 6) !seen);
      check_bool "not empty" false (Ufs.Dir.is_empty fs dp);
      ignore (Ufs.Dir.remove fs dp "x");
      check_bool "empty again" true (Ufs.Dir.is_empty fs dp))

(* ---------- the update daemon ---------- *)

let test_syncer_bounds_data_loss () =
  let m = Helpers.machine () in
  let store =
    Clusterfs.Machine.run m (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        let syncer = Ufs.Syncer.start fs ~interval:(Sim.Time.sec 5) () in
        let ip = Ufs.Fs.creat fs "/survives" in
        Helpers.write_pattern fs ip ~seed:4 ~off:0 ~len:40_000;
        Ufs.Iops.iput fs ip;
        (* wait past a sync pass, then pull the plug — without ever
           calling sync or fsync ourselves *)
        Sim.Engine.sleep m.Clusterfs.Machine.engine (Sim.Time.sec 12);
        check_bool "daemon ran" true (Ufs.Syncer.passes syncer >= 2);
        Ufs.Syncer.stop syncer;
        Clusterfs.Machine.crash m)
  in
  (* the crashed image holds the file intact (only the clean flag is
     missing) *)
  let e = Sim.Engine.create () in
  let dev = Disk.Blkdev.of_device (Disk.Device.create e Helpers.small_disk) in
  Disk.Store.copy_into store (Disk.Blkdev.store dev);
  let r = Ufs.Fsck.check dev in
  check_bool "only the unclean flag" true
    (r.Ufs.Fsck.problems = [ "file system was not unmounted cleanly" ]);
  check_int "file on disk" 1 r.Ufs.Fsck.nfiles

(* ---------- store save/load ---------- *)

let test_store_save_load () =
  let m = Helpers.machine () in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/persisted" in
      Helpers.write_pattern fs ip ~seed:8 ~off:0 ~len:30_000;
      Ufs.Iops.iput fs ip;
      Ufs.Fs.unmount fs);
  let path = Filename.temp_file "clusterfs" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Disk.Store.save (Clusterfs.Machine.snapshot_store m) path;
      let loaded = Disk.Store.load path in
      check_int "size preserved"
        (Disk.Store.size (Clusterfs.Machine.snapshot_store m))
        (Disk.Store.size loaded);
      (* fsck the loaded image BEFORE mounting (mounting marks the
         on-disk superblock unclean), then read the file back *)
      let e2 = Sim.Engine.create () in
      let fsck_dev = Disk.Blkdev.of_device (Disk.Device.create e2 Helpers.small_disk) in
      Disk.Store.copy_into loaded (Disk.Blkdev.store fsck_dev);
      let r = Ufs.Fsck.check fsck_dev in
      Alcotest.(check (list string)) "image consistent" [] r.Ufs.Fsck.problems;
      let config = Helpers.config () in
      let m2 = Clusterfs.Machine.create_no_format config loaded in
      Clusterfs.Machine.run m2 (fun m2 ->
          let fs = m2.Clusterfs.Machine.fs in
          let ip = Ufs.Fs.namei fs "/persisted" in
          Helpers.check_pattern fs ip ~seed:8 ~off:0 ~len:30_000;
          Ufs.Iops.iput fs ip))

let suites =
  [
    ( "ufs-dir",
      [
        Alcotest.test_case "name validation" `Quick test_name_validation;
        Alcotest.test_case "enter/lookup/remove" `Quick test_enter_lookup_remove;
        Alcotest.test_case "slot reuse" `Quick test_slot_reuse;
        Alcotest.test_case "rewrite + iter" `Quick test_rewrite_and_iter;
        Alcotest.test_case "update daemon bounds loss" `Quick
          test_syncer_bounds_data_loss;
        Alcotest.test_case "store save/load" `Quick test_store_save_load;
      ] );
  ]
