(* The observability layer: registry semantics, export formats, the
   free-behind regression it exists to catch (random reads under memory
   pressure must not trigger free-behind), and run-to-run determinism
   of the exported numbers. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let bsize = Ufs.Layout.bsize

(* ---------- registry ---------- *)

let test_registry_basics () =
  let reg = Sim.Metrics.create () in
  let hits = ref 0 in
  Sim.Metrics.register reg ~layer:"disk" ~instance:"a" (fun () ->
      [ ("reads", Sim.Metrics.Int !hits) ]);
  Sim.Metrics.register reg ~layer:"ufs" ~instance:"a" (fun () ->
      [ ("calls", Sim.Metrics.Int 7) ]);
  hits := 3;
  (* closures read live state: the snapshot sees the update *)
  (match Sim.Metrics.get reg ~layer:"disk" ~instance:"a" "reads" with
  | Some (Sim.Metrics.Int n) -> check_int "live value" 3 n
  | _ -> Alcotest.fail "metric missing");
  match Sim.Metrics.snapshot reg with
  | [ ("disk", "a", _); ("ufs", "a", _) ] -> ()
  | _ -> Alcotest.fail "snapshot order should be registration order"

let test_registry_duplicate_instances () =
  (* experiments build several machines with the same config name: the
     registry must keep both, deterministically renamed *)
  let reg = Sim.Metrics.create () in
  for i = 1 to 3 do
    Sim.Metrics.register reg ~layer:"ufs" ~instance:"A" (fun () ->
        [ ("run", Sim.Metrics.Int i) ])
  done;
  let names =
    List.map (fun (_, inst, _) -> inst) (Sim.Metrics.snapshot reg)
  in
  Alcotest.(check (list string))
    "disambiguated in order" [ "A"; "A#2"; "A#3" ] names;
  match Sim.Metrics.get reg ~layer:"ufs" ~instance:"A#3" "run" with
  | Some (Sim.Metrics.Int 3) -> ()
  | _ -> Alcotest.fail "lookup by disambiguated name"

let test_json_export () =
  let reg = Sim.Metrics.create () in
  let summ = Sim.Stats.Summary.create () in
  let empty = Sim.Stats.Summary.create () in
  let hist = Sim.Stats.Hist.create () in
  Sim.Stats.Summary.add summ 2.;
  Sim.Stats.Summary.add summ 4.;
  Sim.Stats.Hist.add hist 3;
  Sim.Metrics.register reg ~layer:"disk" ~instance:"q\"x" (fun () ->
      [
        ("n", Sim.Metrics.Int 42);
        ("ratio", Sim.Metrics.Float 0.5);
        ("lat", Sim.Metrics.Summary summ);
        ("idle", Sim.Metrics.Summary empty);
        ("sizes", Sim.Metrics.Hist hist);
        ("bad", Sim.Metrics.Float Float.nan);
      ]);
  let json = Sim.Metrics.to_json reg ~meta:[ ("section", "test") ] in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "meta present" true (contains "\"section\": \"test\"");
  check_bool "int metric" true (contains "\"n\": 42");
  check_bool "summary mean" true (contains "\"mean\":3");
  check_bool "empty summary renders zeros, not nan" true
    (contains
       "\"idle\": \
        {\"count\":0,\"mean\":0,\"stddev\":0,\"min\":0,\"max\":0,\"total\":0,\"p50\":0,\"p95\":0,\"p99\":0}");
  check_bool "quote escaped in instance" true (contains "q\\\"x");
  check_bool "nan renders as null" true (contains "\"bad\": null");
  check_bool "no bare nan anywhere" false (contains "nan");
  (* structurally sound: braces and brackets balance *)
  let depth = ref 0 in
  String.iter
    (fun c ->
      if c = '{' || c = '[' then incr depth
      else if c = '}' || c = ']' then decr depth)
    json;
  check_int "balanced delimiters" 0 !depth

let test_csv_export () =
  let reg = Sim.Metrics.create () in
  Sim.Metrics.register reg ~layer:"vm.pool" ~instance:"m" (fun () ->
      [ ("hits", Sim.Metrics.Int 9) ]);
  let csv = Sim.Metrics.to_csv reg in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_string "header" "layer,instance,metric,field,value" (List.hd lines);
  check_string "row" "vm.pool,m,hits,value,9" (List.nth lines 1)

(* ---------- the free-behind regression ---------- *)

(* A machine under genuine memory pressure: 2 MB of RAM (256 frames),
   a 3 MB file.  [read_order i] gives the block to read at step [i]. *)
let freebehind_run ~read_order =
  let blocks = 384 in
  Helpers.in_machine ~memory_mb:2 ~mkfs:Helpers.small_mkfs (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      let ip = Ufs.Fs.creat fs "/fb" in
      let buf = Bytes.make bsize 'f' in
      for i = 0 to blocks - 1 do
        Ufs.Fs.write fs ip ~off:(i * bsize) ~buf ~len:bsize
      done;
      Ufs.Fs.fsync fs ip;
      Vm.Pool.invalidate_vnode fs.Ufs.Types.pool ip.Ufs.Types.inum;
      Ufs.Types.reset_rstreams ip;
      for i = 0 to blocks - 1 do
        ignore (Ufs.Fs.read fs ip ~off:(read_order i * bsize) ~buf ~len:bsize)
      done;
      Ufs.Iops.iput fs ip;
      fs.Ufs.Types.stats)

let test_freebehind_fires_on_sequential () =
  let s = freebehind_run ~read_order:(fun i -> i) in
  check_bool "sequential read under pressure free-behinds" true
    (s.Ufs.Types.freebehind_pages > 0)

let test_freebehind_not_on_random () =
  (* stride 191 is coprime to 384: every read lands far from the last,
     so the stream is never sequential.  Before the fix, getpage had
     already advanced nextr by the time free-behind checked it, making
     every access look sequential — this workload free-behind'd
     hundreds of pages and threw its own cache away. *)
  let s = freebehind_run ~read_order:(fun i -> i * 191 mod 384) in
  check_int "random read never free-behinds" 0 s.Ufs.Types.freebehind_pages;
  check_bool "suppression was exercised (pressure + offset held)" true
    (s.Ufs.Types.freebehind_suppressed > 0)

(* ---------- determinism of the export ---------- *)

let golden_run () =
  let reg = Sim.Metrics.create () in
  let rows =
    Clusterfs.Machine.with_metrics_sink reg (fun () ->
        Clusterfs.Experiments.figure10 ~file_mb:1 ~random_ops:32 ())
  in
  (rows, Sim.Metrics.to_json reg, Sim.Metrics.to_csv reg)

let test_golden_determinism () =
  let rows1, json1, csv1 = golden_run () in
  let rows2, json2, csv2 = golden_run () in
  check_bool "fig10 rows identical across runs" true (rows1 = rows2);
  check_string "metrics JSON byte-identical" json1 json2;
  check_string "metrics CSV byte-identical" csv1 csv2;
  check_bool "registry non-trivial" true (String.length json1 > 500)

(* ---------- per-layer registration through the machine ---------- *)

let test_machine_registers_all_layers () =
  let reg = Sim.Metrics.create () in
  Clusterfs.Machine.with_metrics_sink reg (fun () ->
      Helpers.in_machine ~name:"layers" (fun m ->
          let fs = m.Clusterfs.Machine.fs in
          let ip = Ufs.Fs.creat fs "/x" in
          let buf = Bytes.make bsize 'x' in
          Ufs.Fs.write fs ip ~off:0 ~buf ~len:bsize;
          Ufs.Fs.fsync fs ip;
          Ufs.Iops.iput fs ip));
  let layers =
    List.sort_uniq compare
      (List.map (fun (l, _, _) -> l) (Sim.Metrics.snapshot reg))
  in
  Alcotest.(check (list string))
    "every layer present"
    [ "disk"; "sim.engine"; "ufs"; "vm.pageout"; "vm.pool" ]
    layers;
  match Sim.Metrics.get reg ~layer:"ufs" ~instance:"layers" "push_ios" with
  | Some (Sim.Metrics.Int n) -> check_bool "ufs pushed data" true (n > 0)
  | _ -> Alcotest.fail "ufs source missing"

let suites =
  [
    ( "metrics",
      [
        Alcotest.test_case "registry basics" `Quick test_registry_basics;
        Alcotest.test_case "duplicate instances" `Quick
          test_registry_duplicate_instances;
        Alcotest.test_case "JSON export" `Quick test_json_export;
        Alcotest.test_case "CSV export" `Quick test_csv_export;
        Alcotest.test_case "free-behind fires on sequential" `Quick
          test_freebehind_fires_on_sequential;
        Alcotest.test_case "free-behind NOT on random (the bug)" `Quick
          test_freebehind_not_on_random;
        Alcotest.test_case "golden determinism" `Quick test_golden_determinism;
        Alcotest.test_case "machine registers all layers" `Quick
          test_machine_registers_all_layers;
      ] );
  ]
