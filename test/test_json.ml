(* The minimal JSON reader: it must faithfully read back the documents
   this codebase writes (metrics snapshots, Chrome traces) and reject
   malformed input with a located error rather than misparse. *)

module J = Sim.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok s =
  match J.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%S should parse: %s" s e

let bad s =
  match J.parse s with
  | Ok _ -> Alcotest.failf "%S should not parse" s
  | Error _ -> ()

let test_scalars () =
  check_bool "null" true (ok "null" = J.Null);
  check_bool "true" true (ok "true" = J.Bool true);
  check_bool "false" true (ok " false " = J.Bool false);
  check_bool "int" true (ok "42" = J.Num 42.);
  check_bool "negative" true (ok "-17" = J.Num (-17.));
  check_bool "float" true (ok "1.5" = J.Num 1.5);
  check_bool "exponent" true (ok "1.1e6" = J.Num 1.1e6);
  check_bool "neg exponent" true (ok "25e-2" = J.Num 0.25);
  check_bool "string" true (ok "\"hi\"" = J.Str "hi");
  check_bool "empty list" true (ok "[]" = J.List []);
  check_bool "empty obj" true (ok "{}" = J.Obj [])

let test_escapes () =
  check_bool "quote+backslash" true
    (ok {|"a\"b\\c"|} = J.Str {|a"b\c|});
  check_bool "controls" true (ok {|"x\n\t\r\b\f"|} = J.Str "x\n\t\r\b\012");
  check_bool "slash" true (ok {|"a\/b"|} = J.Str "a/b");
  (* \u sequences decode to UTF-8 *)
  check_bool "ascii u" true (ok "\"\\u0041\"" = J.Str "A");
  check_bool "two-byte u" true (ok "\"\\u00e9\"" = J.Str "\xc3\xa9");
  check_bool "three-byte u" true (ok "\"\\u20ac\"" = J.Str "\xe2\x82\xac")

let test_structures () =
  let j = ok {|{"a": 1, "b": [true, null, "x"], "a": 2}|} in
  (* member returns the first of a duplicate name; document order kept *)
  check_bool "member a" true (J.member "a" j = Some (J.Num 1.));
  check_bool "member missing" true (J.member "zz" j = None);
  (match J.member "b" j with
  | Some l ->
      check_int "list len" 3 (List.length (J.to_list l));
      check_bool "list elems" true
        (J.to_list l = [ J.Bool true; J.Null; J.Str "x" ])
  | None -> Alcotest.fail "b missing");
  check_bool "num accessor" true (J.num (J.Num 3.) = Some 3.);
  check_bool "num of str" true (J.num (J.Str "3") = None);
  check_bool "str accessor" true (J.str (J.Str "s") = Some "s");
  check_bool "to_list of non-list" true (J.to_list J.Null = [])

let test_rejects () =
  bad "";
  bad "nul";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "{\"a\" 1}";
  bad "\"unterminated";
  bad "\"bad \\q escape\"";
  bad "01";
  bad "1 2";
  (* trailing garbage *)
  bad "--3"

let test_error_offsets () =
  match J.parse "[1, 2, oops]" with
  | Ok _ -> Alcotest.fail "should not parse"
  | Error e ->
      check_bool "error mentions an offset" true
        (String.exists (fun c -> c >= '0' && c <= '9') e)

(* The reader exists to read what the repo writes: a metrics snapshot
   must round-trip values exactly. *)
let test_reads_metrics_export () =
  let reg = Sim.Metrics.create () in
  Sim.Metrics.register reg ~layer:"l1" ~instance:"i \"quoted\"" (fun () ->
      [ ("a", Sim.Metrics.Int 7); ("b", Sim.Metrics.Float 2.5) ]);
  let j = ok (Sim.Metrics.to_json reg ~meta:[ ("section", "t") ]) in
  check_bool "meta" true (J.member "section" j = Some (J.Str "t"));
  match J.member "sources" j with
  | Some (J.List [ src ]) ->
      check_bool "escaped instance" true
        (J.member "instance" src = Some (J.Str "i \"quoted\""));
      let m = Option.get (J.member "metrics" src) in
      check_bool "int metric" true (J.member "a" m = Some (J.Num 7.));
      check_bool "float metric" true (J.member "b" m = Some (J.Num 2.5))
  | _ -> Alcotest.fail "sources shape"

let suites =
  [
    ( "json",
      [
        Alcotest.test_case "scalars" `Quick test_scalars;
        Alcotest.test_case "string escapes" `Quick test_escapes;
        Alcotest.test_case "objects and lists" `Quick test_structures;
        Alcotest.test_case "malformed input rejected" `Quick test_rejects;
        Alcotest.test_case "errors carry offsets" `Quick test_error_offsets;
        Alcotest.test_case "reads the metrics export" `Quick
          test_reads_metrics_export;
      ] );
  ]
