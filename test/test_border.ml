(* B_ORDER (ordered asynchronous metadata writes): correctness — the
   namespace behaves identically, the image is consistent after
   unmount — and effectiveness — rm * stops stalling per file, and the
   disk never reorders across an ordered request. *)

let check_bool = Alcotest.(check bool)

let features_border =
  { Ufs.Types.features_clustered with Ufs.Types.ordered_metadata = true }

let test_namespace_correct_and_consistent () =
  let m = Helpers.machine ~features:features_border () in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      Ufs.Fs.mkdir fs "/d";
      for i = 0 to 40 do
        let p = Printf.sprintf "/d/f%d" i in
        let ip = Ufs.Fs.creat fs p in
        Helpers.write_pattern fs ip ~seed:i ~off:0 ~len:(700 * (1 + (i mod 5)));
        Ufs.Iops.iput fs ip
      done;
      for i = 0 to 40 do
        if i mod 2 = 0 then Ufs.Fs.unlink fs (Printf.sprintf "/d/f%d" i)
      done;
      Ufs.Fs.rename fs "/d/f1" "/d/renamed";
      (* everything surviving reads back correctly *)
      let ip = Ufs.Fs.namei fs "/d/renamed" in
      Helpers.check_pattern fs ip ~seed:1 ~off:0 ~len:(700 * 2);
      Ufs.Iops.iput fs ip;
      for i = 0 to 40 do
        let p = Printf.sprintf "/d/f%d" i in
        match Ufs.Fs.namei fs p with
        | ip ->
            check_bool "odd files survive" true (i mod 2 = 1 && i <> 1);
            Helpers.check_pattern fs ip ~seed:i ~off:0 ~len:(700 * (1 + (i mod 5)));
            Ufs.Iops.iput fs ip
        | exception Vfs.Errno.Error (Vfs.Errno.ENOENT, _) ->
            check_bool "even files gone" true (i mod 2 = 0 || i = 1)
      done);
  Helpers.fsck_clean m

let test_rm_star_faster () =
  let rm_latency features =
    let m = Helpers.machine ~features () in
    Clusterfs.Machine.run m (fun m ->
        let fs = m.Clusterfs.Machine.fs in
        ignore (Workload.Metaops.create_many fs ~dir:"/many" ~n:60 ());
        (Workload.Metaops.remove_all fs ~dir:"/many").Workload.Metaops.ms_per_op)
  in
  let sync_ms = rm_latency Ufs.Types.features_clustered in
  let ordered_ms = rm_latency features_border in
  check_bool
    (Printf.sprintf "rm* perceived latency: %.1f ordered << %.1f sync"
       ordered_ms sync_ms)
    true
    (ordered_ms *. 2. < sync_ms)

let test_disk_honors_order () =
  (* watch the device trace: ordered writes must complete in issue
     order relative to everything issued around them *)
  let m = Helpers.machine ~features:features_border () in
  Clusterfs.Machine.run m (fun m ->
      let fs = m.Clusterfs.Machine.fs in
      Sim.Trace.enable (Disk.Device.trace m.Clusterfs.Machine.disks.(0)) true;
      for i = 0 to 20 do
        let ip = Ufs.Fs.creat fs (Printf.sprintf "/o%d" i) in
        Ufs.Iops.iput fs ip
      done;
      Ufs.Fs.sync fs;
      (* the dir data fragment is rewritten once per create; those writes
         must appear in strictly increasing create order.  The dir data
         lives at a fixed sector, so repeated writes to that sector in
         the trace are exactly the entry updates, in order of service. *)
      let evs = Sim.Trace.to_list (Disk.Device.trace m.Clusterfs.Machine.disks.(0)) in
      let dir_writes =
        List.filter
          (fun (e : Disk.Device.event) -> e.Disk.Device.kind = Disk.Request.Write)
          evs
      in
      check_bool "saw the metadata writes" true (List.length dir_writes > 20);
      (* service times are monotonically non-decreasing in trace order —
         i.e. the queue really behaved FIFO for this ordered stream *)
      let rec monotone = function
        | (a : Disk.Device.event) :: (b :: _ as rest) ->
            a.Disk.Device.at <= b.Disk.Device.at && monotone rest
        | _ -> true
      in
      check_bool "ordered stream serviced in order" true (monotone dir_writes))

let suites =
  [
    ( "ufs-border",
      [
        Alcotest.test_case "namespace correct + consistent" `Quick
          test_namespace_correct_and_consistent;
        Alcotest.test_case "rm* faster" `Quick test_rm_star_faster;
        Alcotest.test_case "disk honors order" `Quick test_disk_honors_order;
      ] );
  ]
