(* The fio-style workload engine: spec grammar round-trips, runs are
   deterministic under a seed, iodepth lanes complete every op, local
   and remote execution of one spec write the same bytes, and the
   cost-attribution table accounts for exactly 100% of op time. *)

module Spec = Fio.Spec

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

let spec_of s =
  match Spec.parse s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "spec %S did not parse: %s" s e

(* ---------- grammar ---------- *)

let gen_spec =
  QCheck.Gen.(
    let* name_n = int_bound 999 in
    let* file_n = int_bound 999 in
    let* dir =
      oneof
        [
          return Spec.Read;
          return Spec.Write;
          map (fun p -> Spec.Mix p) (int_bound 100);
        ]
    in
    let* pattern = oneofl [ Spec.Seq; Spec.Rand ] in
    let* bs = oneofl [ 512; 1024; 4096; 8192; 12345 ] in
    let* blocks = int_range 1 16 in
    let* stride_mult = int_bound 3 in
    let* iodepth = int_range 1 8 in
    let* numjobs = int_range 1 4 in
    let* share = bool in
    let* oi_mult = int_bound 2 in
    let* think_us = int_bound 500 in
    let* seed = int_bound 10_000 in
    return
      {
        Spec.name = Printf.sprintf "n%d" name_n;
        file = Printf.sprintf "f%d" file_n;
        dir;
        pattern;
        stride = bs * stride_mult;
        bs;
        size = bs * blocks;
        iodepth;
        numjobs;
        share;
        offset_increment = (if share then bs * blocks * oi_mult else 0);
        think_us;
        seed;
      })

let arb_spec = QCheck.make ~print:Spec.to_string gen_spec

let test_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"spec round-trips through to_string"
       arb_spec (fun s -> Spec.parse (Spec.to_string s) = Ok s))

let test_parse_errors () =
  let bad s =
    match Spec.parse s with
    | Ok _ -> Alcotest.failf "spec %S should not parse" s
    | Error _ -> ()
  in
  bad "rw=sideways";
  bad "bs=0";
  bad "bs=8k size=4k";
  bad "iodepth=0";
  bad "numjobs=-1";
  bad "rw=read rwmixread=70";
  bad "rw=rw rwmixread=101";
  bad "frobnicate=1";
  bad "name=";
  bad "noequals"

let test_parse_forms () =
  let s = spec_of "  rw=randrw \t rwmixread=30 # trailing comment\n bs=4k " in
  check_bool "mix parsed" true (s.Spec.dir = Spec.Mix 30);
  check_bool "pattern parsed" true (s.Spec.pattern = Spec.Rand);
  check_int "bs suffix" 4096 s.Spec.bs;
  (* rwmixread before rw must work too *)
  let s = spec_of "rwmixread=30 rw=rw" in
  check_bool "mix parsed either order" true (s.Spec.dir = Spec.Mix 30);
  check_int "ops_per_job floors at one" 1
    (Spec.ops_per_job (spec_of "bs=8k size=8k"))

(* ---------- execution ---------- *)

let run_local spec =
  let m = Helpers.machine ~memory_mb:8 () in
  (m, Clusterfs.Machine.run m (fun m -> Fio.Run.execute (Fio.Target.local m) spec))

let run_remote ?(clients = 1) spec =
  let t = Clusterfs.Topology.create ~clients (Helpers.config ()) in
  ( t,
    Clusterfs.Topology.run t (fun t ->
        Fio.Run.execute (Fio.Target.remote t) spec) )

let small = "name=s file=s rw=randrw rwmixread=60 bs=4k size=64k seed=9"

let test_deterministic () =
  let report () =
    let spec = spec_of (small ^ " iodepth=2 numjobs=2") in
    let _, jobs = run_local spec in
    Fio.Report.to_json (Fio.Report.make spec ~target:"local" jobs)
  in
  check_string "same spec, same seed, byte-identical report" (report ())
    (report ())

let test_iodepth_completes () =
  let spec = spec_of (small ^ " iodepth=4 numjobs=2") in
  let nops = Spec.ops_per_job spec in
  let _, jobs = run_local spec in
  check_int "all jobs report" 2 (List.length jobs);
  List.iter
    (fun (j : Fio.Run.job_result) ->
      check_int "every op completed" nops (j.Fio.Run.read_ops + j.Fio.Run.write_ops);
      check_int "one latency per op" nops (Array.length j.Fio.Run.lat_us);
      Array.iter
        (fun l -> check_bool "latency non-negative" true (l >= 0))
        j.Fio.Run.lat_us;
      check_bool "job took time" true (j.Fio.Run.wall_us > 0);
      (* reads on a fully prewritten file never come up short *)
      check_int "all bytes moved" (nops * spec.Spec.bs) j.Fio.Run.bytes)
    jobs

(* One mixed sequential spec, iodepth 1 so both targets apply the same
   writes in the same order: the local UFS file and the file as the NFS
   server's UFS has it after the closing fsync must be byte-identical. *)
let test_local_remote_same_bytes () =
  let spec =
    spec_of "name=eq file=eq rw=rw rwmixread=50 bs=4k size=32k seed=3"
  in
  let read_fs fs path =
    let ip = Ufs.Fs.namei fs path in
    let size = ip.Ufs.Types.size in
    let buf = Bytes.create size in
    let n = Ufs.Fs.read fs ip ~off:0 ~buf ~len:size in
    Ufs.Iops.iput fs ip;
    Bytes.sub_string buf 0 n
  in
  let m, _ = run_local spec in
  let local =
    Clusterfs.Machine.run m (fun m ->
        read_fs m.Clusterfs.Machine.fs "/eq.0")
  in
  let t, _ = run_remote spec in
  let remote =
    Clusterfs.Topology.run t (fun t ->
        read_fs t.Clusterfs.Topology.server.Clusterfs.Machine.fs "/eq.0")
  in
  check_int "same size" (String.length local) (String.length remote);
  check_bool "same bytes" true (String.equal local remote)

let check_cost_rows what report =
  let rows = Fio.Report.cost_rows report in
  let sum = List.fold_left (fun acc (_, _, pct) -> acc +. pct) 0. rows in
  Alcotest.(check (float 0.001)) (what ^ ": cost rows sum to 100%") 100. sum;
  List.iter
    (fun (phase, us, pct) ->
      check_bool (what ^ ": no negative charge in " ^ phase) true
        (us >= 0 && pct >= 0.))
    rows

let test_cost_sums () =
  let spec = spec_of (small ^ " iodepth=2 numjobs=2") in
  let _, jobs = run_local spec in
  check_cost_rows "local" (Fio.Report.make spec ~target:"local" jobs);
  let _, rjobs = run_remote ~clients:2 spec in
  let remote = Fio.Report.make spec ~target:"remote" rjobs in
  check_cost_rows "remote" remote;
  (* remote ops crossed the wire: RPC phases must show up *)
  check_bool "remote run charged rpc time" true
    (List.exists
       (fun (phase, us, _) -> phase = "rpc.wait" && us > 0)
       (Fio.Report.cost_rows remote))

let suites =
  [
    ( "fio",
      [
        test_roundtrip;
        Alcotest.test_case "parse rejects invalid specs" `Quick
          test_parse_errors;
        Alcotest.test_case "parse accepts comments, order, suffixes" `Quick
          test_parse_forms;
        Alcotest.test_case "seeded runs are byte-identical" `Quick
          test_deterministic;
        Alcotest.test_case "iodepth lanes complete every op" `Quick
          test_iodepth_completes;
        Alcotest.test_case "local and remote write identical bytes" `Quick
          test_local_remote_same_bytes;
        Alcotest.test_case "cost attribution sums to 100%" `Quick
          test_cost_sums;
      ] );
  ]
